# Empty dependencies file for bench_fig15_cache_comp.
# This may be replaced when dependencies are built.
