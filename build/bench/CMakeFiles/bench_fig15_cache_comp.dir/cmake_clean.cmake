file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_cache_comp.dir/bench_fig15_cache_comp.cc.o"
  "CMakeFiles/bench_fig15_cache_comp.dir/bench_fig15_cache_comp.cc.o.d"
  "bench_fig15_cache_comp"
  "bench_fig15_cache_comp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_cache_comp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
