# Empty dependencies file for bench_fig01_vgg_sparsity.
# This may be replaced when dependencies are built.
