file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_vgg_sparsity.dir/bench_fig01_vgg_sparsity.cc.o"
  "CMakeFiles/bench_fig01_vgg_sparsity.dir/bench_fig01_vgg_sparsity.cc.o.d"
  "bench_fig01_vgg_sparsity"
  "bench_fig01_vgg_sparsity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_vgg_sparsity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
