file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_traffic_full.dir/bench_fig13_traffic_full.cc.o"
  "CMakeFiles/bench_fig13_traffic_full.dir/bench_fig13_traffic_full.cc.o.d"
  "bench_fig13_traffic_full"
  "bench_fig13_traffic_full.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_traffic_full.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
