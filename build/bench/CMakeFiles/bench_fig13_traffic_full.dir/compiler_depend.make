# Empty compiler generated dependencies file for bench_fig13_traffic_full.
# This may be replaced when dependencies are built.
