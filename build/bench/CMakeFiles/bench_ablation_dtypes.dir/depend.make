# Empty dependencies file for bench_ablation_dtypes.
# This may be replaced when dependencies are built.
