# Empty dependencies file for bench_fig12_relu_deepbench.
# This may be replaced when dependencies are built.
