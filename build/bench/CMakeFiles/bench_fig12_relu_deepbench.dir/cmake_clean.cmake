file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_relu_deepbench.dir/bench_fig12_relu_deepbench.cc.o"
  "CMakeFiles/bench_fig12_relu_deepbench.dir/bench_fig12_relu_deepbench.cc.o.d"
  "bench_fig12_relu_deepbench"
  "bench_fig12_relu_deepbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_relu_deepbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
