# Empty dependencies file for bench_fig03_footprint.
# This may be replaced when dependencies are built.
