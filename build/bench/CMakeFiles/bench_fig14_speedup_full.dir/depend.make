# Empty dependencies file for bench_fig14_speedup_full.
# This may be replaced when dependencies are built.
