file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_speedup_full.dir/bench_fig14_speedup_full.cc.o"
  "CMakeFiles/bench_fig14_speedup_full.dir/bench_fig14_speedup_full.cc.o.d"
  "bench_fig14_speedup_full"
  "bench_fig14_speedup_full.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_speedup_full.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
