# Empty dependencies file for bench_ablation_logic_latency.
# This may be replaced when dependencies are built.
