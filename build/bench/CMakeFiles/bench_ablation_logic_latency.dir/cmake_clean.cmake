file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_logic_latency.dir/bench_ablation_logic_latency.cc.o"
  "CMakeFiles/bench_ablation_logic_latency.dir/bench_ablation_logic_latency.cc.o.d"
  "bench_ablation_logic_latency"
  "bench_ablation_logic_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_logic_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
