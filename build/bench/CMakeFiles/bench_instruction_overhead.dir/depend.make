# Empty dependencies file for bench_instruction_overhead.
# This may be replaced when dependencies are built.
