file(REMOVE_RECURSE
  "CMakeFiles/bench_instruction_overhead.dir/bench_instruction_overhead.cc.o"
  "CMakeFiles/bench_instruction_overhead.dir/bench_instruction_overhead.cc.o.d"
  "bench_instruction_overhead"
  "bench_instruction_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_instruction_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
