file(REMOVE_RECURSE
  "libzcomp_bench_common.a"
)
