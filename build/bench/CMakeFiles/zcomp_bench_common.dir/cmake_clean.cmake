file(REMOVE_RECURSE
  "CMakeFiles/zcomp_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/zcomp_bench_common.dir/bench_common.cc.o.d"
  "libzcomp_bench_common.a"
  "libzcomp_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zcomp_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
