# Empty compiler generated dependencies file for zcomp_bench_common.
# This may be replaced when dependencies are built.
