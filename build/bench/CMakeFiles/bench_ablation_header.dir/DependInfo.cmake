
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_header.cc" "bench/CMakeFiles/bench_ablation_header.dir/bench_ablation_header.cc.o" "gcc" "bench/CMakeFiles/bench_ablation_header.dir/bench_ablation_header.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/zcomp_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/zcomp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/zcomp_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/dnn/CMakeFiles/zcomp_dnn.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/zcomp_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/zcomp_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/cachecomp/CMakeFiles/zcomp_cachecomp.dir/DependInfo.cmake"
  "/root/repo/build/src/zcomp/CMakeFiles/zcomp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/zcomp_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/zcomp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
