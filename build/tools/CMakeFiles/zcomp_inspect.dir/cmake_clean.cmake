file(REMOVE_RECURSE
  "CMakeFiles/zcomp_inspect.dir/zcomp_inspect.cc.o"
  "CMakeFiles/zcomp_inspect.dir/zcomp_inspect.cc.o.d"
  "zcomp_inspect"
  "zcomp_inspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zcomp_inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
