# Empty compiler generated dependencies file for zcomp_inspect.
# This may be replaced when dependencies are built.
