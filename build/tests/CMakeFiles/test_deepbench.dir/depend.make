# Empty dependencies file for test_deepbench.
# This may be replaced when dependencies are built.
