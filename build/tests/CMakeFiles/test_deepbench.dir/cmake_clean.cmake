file(REMOVE_RECURSE
  "CMakeFiles/test_deepbench.dir/test_deepbench.cc.o"
  "CMakeFiles/test_deepbench.dir/test_deepbench.cc.o.d"
  "test_deepbench"
  "test_deepbench.pdb"
  "test_deepbench[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_deepbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
