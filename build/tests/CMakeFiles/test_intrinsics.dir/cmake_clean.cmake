file(REMOVE_RECURSE
  "CMakeFiles/test_intrinsics.dir/test_intrinsics.cc.o"
  "CMakeFiles/test_intrinsics.dir/test_intrinsics.cc.o.d"
  "test_intrinsics"
  "test_intrinsics.pdb"
  "test_intrinsics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_intrinsics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
