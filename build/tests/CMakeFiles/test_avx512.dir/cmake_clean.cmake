file(REMOVE_RECURSE
  "CMakeFiles/test_avx512.dir/test_avx512.cc.o"
  "CMakeFiles/test_avx512.dir/test_avx512.cc.o.d"
  "test_avx512"
  "test_avx512.pdb"
  "test_avx512[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_avx512.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
