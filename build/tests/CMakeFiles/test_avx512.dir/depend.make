# Empty dependencies file for test_avx512.
# This may be replaced when dependencies are built.
