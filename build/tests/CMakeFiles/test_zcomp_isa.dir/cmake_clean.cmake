file(REMOVE_RECURSE
  "CMakeFiles/test_zcomp_isa.dir/test_zcomp_isa.cc.o"
  "CMakeFiles/test_zcomp_isa.dir/test_zcomp_isa.cc.o.d"
  "test_zcomp_isa"
  "test_zcomp_isa.pdb"
  "test_zcomp_isa[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_zcomp_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
