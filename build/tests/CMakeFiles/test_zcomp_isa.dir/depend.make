# Empty dependencies file for test_zcomp_isa.
# This may be replaced when dependencies are built.
