file(REMOVE_RECURSE
  "CMakeFiles/test_vspace.dir/test_vspace.cc.o"
  "CMakeFiles/test_vspace.dir/test_vspace.cc.o.d"
  "test_vspace"
  "test_vspace.pdb"
  "test_vspace[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vspace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
