# Empty dependencies file for test_vspace.
# This may be replaced when dependencies are built.
