file(REMOVE_RECURSE
  "CMakeFiles/test_cachecomp.dir/test_cachecomp.cc.o"
  "CMakeFiles/test_cachecomp.dir/test_cachecomp.cc.o.d"
  "test_cachecomp"
  "test_cachecomp.pdb"
  "test_cachecomp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cachecomp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
