# Empty compiler generated dependencies file for test_cachecomp.
# This may be replaced when dependencies are built.
