file(REMOVE_RECURSE
  "CMakeFiles/zcomp_mem.dir/cache.cc.o"
  "CMakeFiles/zcomp_mem.dir/cache.cc.o.d"
  "CMakeFiles/zcomp_mem.dir/dram.cc.o"
  "CMakeFiles/zcomp_mem.dir/dram.cc.o.d"
  "CMakeFiles/zcomp_mem.dir/hierarchy.cc.o"
  "CMakeFiles/zcomp_mem.dir/hierarchy.cc.o.d"
  "CMakeFiles/zcomp_mem.dir/noc.cc.o"
  "CMakeFiles/zcomp_mem.dir/noc.cc.o.d"
  "CMakeFiles/zcomp_mem.dir/prefetcher.cc.o"
  "CMakeFiles/zcomp_mem.dir/prefetcher.cc.o.d"
  "CMakeFiles/zcomp_mem.dir/replacement.cc.o"
  "CMakeFiles/zcomp_mem.dir/replacement.cc.o.d"
  "CMakeFiles/zcomp_mem.dir/vspace.cc.o"
  "CMakeFiles/zcomp_mem.dir/vspace.cc.o.d"
  "libzcomp_mem.a"
  "libzcomp_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zcomp_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
