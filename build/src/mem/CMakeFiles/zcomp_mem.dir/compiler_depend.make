# Empty compiler generated dependencies file for zcomp_mem.
# This may be replaced when dependencies are built.
