file(REMOVE_RECURSE
  "libzcomp_mem.a"
)
