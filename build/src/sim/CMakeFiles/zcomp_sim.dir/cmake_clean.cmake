file(REMOVE_RECURSE
  "CMakeFiles/zcomp_sim.dir/exec_context.cc.o"
  "CMakeFiles/zcomp_sim.dir/exec_context.cc.o.d"
  "CMakeFiles/zcomp_sim.dir/kernels.cc.o"
  "CMakeFiles/zcomp_sim.dir/kernels.cc.o.d"
  "CMakeFiles/zcomp_sim.dir/network_sim.cc.o"
  "CMakeFiles/zcomp_sim.dir/network_sim.cc.o.d"
  "libzcomp_sim.a"
  "libzcomp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zcomp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
