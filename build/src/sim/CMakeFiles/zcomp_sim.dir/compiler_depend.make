# Empty compiler generated dependencies file for zcomp_sim.
# This may be replaced when dependencies are built.
