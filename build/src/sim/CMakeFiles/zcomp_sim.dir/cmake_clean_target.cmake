file(REMOVE_RECURSE
  "libzcomp_sim.a"
)
