# Empty compiler generated dependencies file for zcomp_core.
# This may be replaced when dependencies are built.
