file(REMOVE_RECURSE
  "CMakeFiles/zcomp_core.dir/intrinsics.cc.o"
  "CMakeFiles/zcomp_core.dir/intrinsics.cc.o.d"
  "CMakeFiles/zcomp_core.dir/partition.cc.o"
  "CMakeFiles/zcomp_core.dir/partition.cc.o.d"
  "CMakeFiles/zcomp_core.dir/stream.cc.o"
  "CMakeFiles/zcomp_core.dir/stream.cc.o.d"
  "libzcomp_core.a"
  "libzcomp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zcomp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
