file(REMOVE_RECURSE
  "libzcomp_core.a"
)
