
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/isa/assembler.cc" "src/isa/CMakeFiles/zcomp_isa.dir/assembler.cc.o" "gcc" "src/isa/CMakeFiles/zcomp_isa.dir/assembler.cc.o.d"
  "/root/repo/src/isa/avx512.cc" "src/isa/CMakeFiles/zcomp_isa.dir/avx512.cc.o" "gcc" "src/isa/CMakeFiles/zcomp_isa.dir/avx512.cc.o.d"
  "/root/repo/src/isa/emulator.cc" "src/isa/CMakeFiles/zcomp_isa.dir/emulator.cc.o" "gcc" "src/isa/CMakeFiles/zcomp_isa.dir/emulator.cc.o.d"
  "/root/repo/src/isa/encoding.cc" "src/isa/CMakeFiles/zcomp_isa.dir/encoding.cc.o" "gcc" "src/isa/CMakeFiles/zcomp_isa.dir/encoding.cc.o.d"
  "/root/repo/src/isa/latency.cc" "src/isa/CMakeFiles/zcomp_isa.dir/latency.cc.o" "gcc" "src/isa/CMakeFiles/zcomp_isa.dir/latency.cc.o.d"
  "/root/repo/src/isa/zcomp_isa.cc" "src/isa/CMakeFiles/zcomp_isa.dir/zcomp_isa.cc.o" "gcc" "src/isa/CMakeFiles/zcomp_isa.dir/zcomp_isa.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/zcomp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
