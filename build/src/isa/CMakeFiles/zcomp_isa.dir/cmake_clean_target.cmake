file(REMOVE_RECURSE
  "libzcomp_isa.a"
)
