file(REMOVE_RECURSE
  "CMakeFiles/zcomp_isa.dir/assembler.cc.o"
  "CMakeFiles/zcomp_isa.dir/assembler.cc.o.d"
  "CMakeFiles/zcomp_isa.dir/avx512.cc.o"
  "CMakeFiles/zcomp_isa.dir/avx512.cc.o.d"
  "CMakeFiles/zcomp_isa.dir/emulator.cc.o"
  "CMakeFiles/zcomp_isa.dir/emulator.cc.o.d"
  "CMakeFiles/zcomp_isa.dir/encoding.cc.o"
  "CMakeFiles/zcomp_isa.dir/encoding.cc.o.d"
  "CMakeFiles/zcomp_isa.dir/latency.cc.o"
  "CMakeFiles/zcomp_isa.dir/latency.cc.o.d"
  "CMakeFiles/zcomp_isa.dir/zcomp_isa.cc.o"
  "CMakeFiles/zcomp_isa.dir/zcomp_isa.cc.o.d"
  "libzcomp_isa.a"
  "libzcomp_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zcomp_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
