# Empty compiler generated dependencies file for zcomp_isa.
# This may be replaced when dependencies are built.
