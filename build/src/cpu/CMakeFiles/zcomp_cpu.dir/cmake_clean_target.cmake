file(REMOVE_RECURSE
  "libzcomp_cpu.a"
)
