file(REMOVE_RECURSE
  "CMakeFiles/zcomp_cpu.dir/core.cc.o"
  "CMakeFiles/zcomp_cpu.dir/core.cc.o.d"
  "CMakeFiles/zcomp_cpu.dir/system.cc.o"
  "CMakeFiles/zcomp_cpu.dir/system.cc.o.d"
  "libzcomp_cpu.a"
  "libzcomp_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zcomp_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
