# Empty compiler generated dependencies file for zcomp_cpu.
# This may be replaced when dependencies are built.
