# Empty compiler generated dependencies file for zcomp_dnn.
# This may be replaced when dependencies are built.
