
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dnn/gemm.cc" "src/dnn/CMakeFiles/zcomp_dnn.dir/gemm.cc.o" "gcc" "src/dnn/CMakeFiles/zcomp_dnn.dir/gemm.cc.o.d"
  "/root/repo/src/dnn/im2col.cc" "src/dnn/CMakeFiles/zcomp_dnn.dir/im2col.cc.o" "gcc" "src/dnn/CMakeFiles/zcomp_dnn.dir/im2col.cc.o.d"
  "/root/repo/src/dnn/layers/activation.cc" "src/dnn/CMakeFiles/zcomp_dnn.dir/layers/activation.cc.o" "gcc" "src/dnn/CMakeFiles/zcomp_dnn.dir/layers/activation.cc.o.d"
  "/root/repo/src/dnn/layers/conv.cc" "src/dnn/CMakeFiles/zcomp_dnn.dir/layers/conv.cc.o" "gcc" "src/dnn/CMakeFiles/zcomp_dnn.dir/layers/conv.cc.o.d"
  "/root/repo/src/dnn/layers/fc.cc" "src/dnn/CMakeFiles/zcomp_dnn.dir/layers/fc.cc.o" "gcc" "src/dnn/CMakeFiles/zcomp_dnn.dir/layers/fc.cc.o.d"
  "/root/repo/src/dnn/layers/norm.cc" "src/dnn/CMakeFiles/zcomp_dnn.dir/layers/norm.cc.o" "gcc" "src/dnn/CMakeFiles/zcomp_dnn.dir/layers/norm.cc.o.d"
  "/root/repo/src/dnn/layers/pool.cc" "src/dnn/CMakeFiles/zcomp_dnn.dir/layers/pool.cc.o" "gcc" "src/dnn/CMakeFiles/zcomp_dnn.dir/layers/pool.cc.o.d"
  "/root/repo/src/dnn/layers/structure.cc" "src/dnn/CMakeFiles/zcomp_dnn.dir/layers/structure.cc.o" "gcc" "src/dnn/CMakeFiles/zcomp_dnn.dir/layers/structure.cc.o.d"
  "/root/repo/src/dnn/models/alexnet.cc" "src/dnn/CMakeFiles/zcomp_dnn.dir/models/alexnet.cc.o" "gcc" "src/dnn/CMakeFiles/zcomp_dnn.dir/models/alexnet.cc.o.d"
  "/root/repo/src/dnn/models/googlenet.cc" "src/dnn/CMakeFiles/zcomp_dnn.dir/models/googlenet.cc.o" "gcc" "src/dnn/CMakeFiles/zcomp_dnn.dir/models/googlenet.cc.o.d"
  "/root/repo/src/dnn/models/inception_resnet_v2.cc" "src/dnn/CMakeFiles/zcomp_dnn.dir/models/inception_resnet_v2.cc.o" "gcc" "src/dnn/CMakeFiles/zcomp_dnn.dir/models/inception_resnet_v2.cc.o.d"
  "/root/repo/src/dnn/models/resnet32.cc" "src/dnn/CMakeFiles/zcomp_dnn.dir/models/resnet32.cc.o" "gcc" "src/dnn/CMakeFiles/zcomp_dnn.dir/models/resnet32.cc.o.d"
  "/root/repo/src/dnn/models/vgg16.cc" "src/dnn/CMakeFiles/zcomp_dnn.dir/models/vgg16.cc.o" "gcc" "src/dnn/CMakeFiles/zcomp_dnn.dir/models/vgg16.cc.o.d"
  "/root/repo/src/dnn/network.cc" "src/dnn/CMakeFiles/zcomp_dnn.dir/network.cc.o" "gcc" "src/dnn/CMakeFiles/zcomp_dnn.dir/network.cc.o.d"
  "/root/repo/src/dnn/tensor.cc" "src/dnn/CMakeFiles/zcomp_dnn.dir/tensor.cc.o" "gcc" "src/dnn/CMakeFiles/zcomp_dnn.dir/tensor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mem/CMakeFiles/zcomp_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/zcomp_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/zcomp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
