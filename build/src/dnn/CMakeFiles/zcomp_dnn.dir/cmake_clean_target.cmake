file(REMOVE_RECURSE
  "libzcomp_dnn.a"
)
