file(REMOVE_RECURSE
  "CMakeFiles/zcomp_dnn.dir/gemm.cc.o"
  "CMakeFiles/zcomp_dnn.dir/gemm.cc.o.d"
  "CMakeFiles/zcomp_dnn.dir/im2col.cc.o"
  "CMakeFiles/zcomp_dnn.dir/im2col.cc.o.d"
  "CMakeFiles/zcomp_dnn.dir/layers/activation.cc.o"
  "CMakeFiles/zcomp_dnn.dir/layers/activation.cc.o.d"
  "CMakeFiles/zcomp_dnn.dir/layers/conv.cc.o"
  "CMakeFiles/zcomp_dnn.dir/layers/conv.cc.o.d"
  "CMakeFiles/zcomp_dnn.dir/layers/fc.cc.o"
  "CMakeFiles/zcomp_dnn.dir/layers/fc.cc.o.d"
  "CMakeFiles/zcomp_dnn.dir/layers/norm.cc.o"
  "CMakeFiles/zcomp_dnn.dir/layers/norm.cc.o.d"
  "CMakeFiles/zcomp_dnn.dir/layers/pool.cc.o"
  "CMakeFiles/zcomp_dnn.dir/layers/pool.cc.o.d"
  "CMakeFiles/zcomp_dnn.dir/layers/structure.cc.o"
  "CMakeFiles/zcomp_dnn.dir/layers/structure.cc.o.d"
  "CMakeFiles/zcomp_dnn.dir/models/alexnet.cc.o"
  "CMakeFiles/zcomp_dnn.dir/models/alexnet.cc.o.d"
  "CMakeFiles/zcomp_dnn.dir/models/googlenet.cc.o"
  "CMakeFiles/zcomp_dnn.dir/models/googlenet.cc.o.d"
  "CMakeFiles/zcomp_dnn.dir/models/inception_resnet_v2.cc.o"
  "CMakeFiles/zcomp_dnn.dir/models/inception_resnet_v2.cc.o.d"
  "CMakeFiles/zcomp_dnn.dir/models/resnet32.cc.o"
  "CMakeFiles/zcomp_dnn.dir/models/resnet32.cc.o.d"
  "CMakeFiles/zcomp_dnn.dir/models/vgg16.cc.o"
  "CMakeFiles/zcomp_dnn.dir/models/vgg16.cc.o.d"
  "CMakeFiles/zcomp_dnn.dir/network.cc.o"
  "CMakeFiles/zcomp_dnn.dir/network.cc.o.d"
  "CMakeFiles/zcomp_dnn.dir/tensor.cc.o"
  "CMakeFiles/zcomp_dnn.dir/tensor.cc.o.d"
  "libzcomp_dnn.a"
  "libzcomp_dnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zcomp_dnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
