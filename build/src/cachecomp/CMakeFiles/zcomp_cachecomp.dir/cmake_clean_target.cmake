file(REMOVE_RECURSE
  "libzcomp_cachecomp.a"
)
