file(REMOVE_RECURSE
  "CMakeFiles/zcomp_cachecomp.dir/cache_model.cc.o"
  "CMakeFiles/zcomp_cachecomp.dir/cache_model.cc.o.d"
  "CMakeFiles/zcomp_cachecomp.dir/fpc.cc.o"
  "CMakeFiles/zcomp_cachecomp.dir/fpc.cc.o.d"
  "CMakeFiles/zcomp_cachecomp.dir/fpcd.cc.o"
  "CMakeFiles/zcomp_cachecomp.dir/fpcd.cc.o.d"
  "libzcomp_cachecomp.a"
  "libzcomp_cachecomp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zcomp_cachecomp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
