# Empty compiler generated dependencies file for zcomp_cachecomp.
# This may be replaced when dependencies are built.
