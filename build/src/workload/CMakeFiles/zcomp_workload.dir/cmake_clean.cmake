file(REMOVE_RECURSE
  "CMakeFiles/zcomp_workload.dir/deepbench.cc.o"
  "CMakeFiles/zcomp_workload.dir/deepbench.cc.o.d"
  "CMakeFiles/zcomp_workload.dir/snapshot.cc.o"
  "CMakeFiles/zcomp_workload.dir/snapshot.cc.o.d"
  "libzcomp_workload.a"
  "libzcomp_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zcomp_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
