file(REMOVE_RECURSE
  "libzcomp_workload.a"
)
