# Empty dependencies file for zcomp_workload.
# This may be replaced when dependencies are built.
