# Empty dependencies file for zcomp_common.
# This may be replaced when dependencies are built.
