file(REMOVE_RECURSE
  "CMakeFiles/zcomp_common.dir/config.cc.o"
  "CMakeFiles/zcomp_common.dir/config.cc.o.d"
  "CMakeFiles/zcomp_common.dir/log.cc.o"
  "CMakeFiles/zcomp_common.dir/log.cc.o.d"
  "CMakeFiles/zcomp_common.dir/rng.cc.o"
  "CMakeFiles/zcomp_common.dir/rng.cc.o.d"
  "CMakeFiles/zcomp_common.dir/stats.cc.o"
  "CMakeFiles/zcomp_common.dir/stats.cc.o.d"
  "CMakeFiles/zcomp_common.dir/table.cc.o"
  "CMakeFiles/zcomp_common.dir/table.cc.o.d"
  "libzcomp_common.a"
  "libzcomp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zcomp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
