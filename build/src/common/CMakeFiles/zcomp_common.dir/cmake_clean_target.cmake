file(REMOVE_RECURSE
  "libzcomp_common.a"
)
