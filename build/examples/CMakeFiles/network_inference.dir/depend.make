# Empty dependencies file for network_inference.
# This may be replaced when dependencies are built.
