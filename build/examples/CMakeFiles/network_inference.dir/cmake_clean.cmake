file(REMOVE_RECURSE
  "CMakeFiles/network_inference.dir/network_inference.cpp.o"
  "CMakeFiles/network_inference.dir/network_inference.cpp.o.d"
  "network_inference"
  "network_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
