file(REMOVE_RECURSE
  "CMakeFiles/zcomp_asm.dir/zcomp_asm.cpp.o"
  "CMakeFiles/zcomp_asm.dir/zcomp_asm.cpp.o.d"
  "zcomp_asm"
  "zcomp_asm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zcomp_asm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
