# Empty compiler generated dependencies file for zcomp_asm.
# This may be replaced when dependencies are built.
