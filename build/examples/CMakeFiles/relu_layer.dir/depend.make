# Empty dependencies file for relu_layer.
# This may be replaced when dependencies are built.
