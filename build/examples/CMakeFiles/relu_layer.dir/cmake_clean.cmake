file(REMOVE_RECURSE
  "CMakeFiles/relu_layer.dir/relu_layer.cpp.o"
  "CMakeFiles/relu_layer.dir/relu_layer.cpp.o.d"
  "relu_layer"
  "relu_layer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relu_layer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
