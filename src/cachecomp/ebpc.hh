/**
 * @file
 * EBPC - Extended Bit-Plane Compression (Cavigelli et al., see
 * PAPERS.md) - modeled at cache-line granularity for the Figure 15
 * comparison.
 *
 * EBPC couples a zero-runlength front end with bit-plane coding of
 * the surviving nonzero words. Our line-granular model keeps both
 * stages but drops the streaming dictionary adaptivity (a 64-byte
 * window is too short for it to engage):
 *
 *  - front end: each maximal zero run costs 5 bits (a run flag plus a
 *    4-bit length, runs of up to 16 words); each nonzero word costs a
 *    1-bit keep flag;
 *  - back end: the first nonzero word is transmitted verbatim
 *    (32 bits); the remaining k-1 words are XOR-delta coded against
 *    their predecessor and sent as 32 bit-planes, where an all-zero
 *    plane costs 1 bit and a populated plane costs 1 + (k-1) bits.
 *
 * Worked golden values (tests/test_scheme.cc):
 *  - all-zero line: one 16-word run = 5 bits -> 1 byte;
 *  - 16 identical nonzeros: 16 flags + 32 verbatim + 32 empty planes
 *    = 80 bits -> 10 bytes;
 *  - alternating nonzero/zero (8 nonzeros, equal values): 8 flags +
 *    8 runs * 5 + 32 + 32 = 112 bits -> 14 bytes.
 */

#ifndef ZCOMP_CACHECOMP_EBPC_HH
#define ZCOMP_CACHECOMP_EBPC_HH

#include <cstdint>

namespace zcomp {

/** EBPC compressed size of one 64-byte line, in bytes (<= 64). */
int ebpcLineBytes(const uint8_t *line);

/** One-time registration hook for the "ebpc" CompressionScheme. */
void registerEbpcScheme();

} // namespace zcomp

#endif // ZCOMP_CACHECOMP_EBPC_HH
