/**
 * @file
 * Frequent Pattern Compression (FPC) [11]: each 32-bit word is encoded
 * with a 3-bit prefix selecting one of eight patterns. This is the
 * classic significance-based cache-line compression scheme that FPC-D
 * extends; it serves as a reference point and a building block for the
 * Figure 15 cache-compression comparison.
 */

#ifndef ZCOMP_CACHECOMP_FPC_HH
#define ZCOMP_CACHECOMP_FPC_HH

#include <cstdint>

namespace zcomp {

/** FPC pattern classes, in prefix order. */
enum class FpcPattern : uint8_t
{
    ZeroRun = 0,        //!< all-zero word (runs share one prefix)
    SignExt4,           //!< 4-bit sign-extended
    SignExt8,           //!< 8-bit sign-extended
    SignExt16,          //!< 16-bit sign-extended
    ZeroPaddedHalf,     //!< lower half zero, upper half data
    SignExtHalves,      //!< two 16-bit halves, each 8-bit sign-ext
    RepeatedBytes,      //!< all four bytes identical
    Uncompressed,
};

/** Classify one 32-bit word. */
FpcPattern fpcClassify(uint32_t word);

/** Encoded payload bits for a pattern (excluding the 3-bit prefix). */
int fpcPayloadBits(FpcPattern p);

/**
 * Compressed size in bits of a 64-byte line under FPC (sixteen 3-bit
 * prefixes plus payloads; consecutive zero words collapse into runs of
 * up to 8 sharing one prefix + 3-bit run length).
 */
int fpcLineBits(const uint8_t *line);

/** fpcLineBits rounded up to bytes and capped at the raw 64 B. */
int fpcLineBytes(const uint8_t *line);

} // namespace zcomp

#endif // ZCOMP_CACHECOMP_FPC_HH
