#include "cachecomp/scheme.hh"

#include <algorithm>
#include <cstring>

#include "cachecomp/cache_model.hh"
#include "cachecomp/ebpc.hh"
#include "cachecomp/zvc.hh"
#include "common/error.hh"
#include "common/log.hh"

namespace zcomp {

namespace {

/**
 * The registry vector. Mutated only inside ensureRegistered()'s
 * one-time initialisation (thread-safe by the C++11 static-init
 * guarantee), read-only afterwards, so lookups need no lock. A plain
 * vector - not a map - so iteration order is registration order, per
 * the determinism contract.
 */
std::vector<const CompressionScheme *> &
mutableRegistry()
{
    static std::vector<const CompressionScheme *> registry;
    return registry;
}

/**
 * Drive every scheme-defining translation unit's registration hook in
 * a fixed sequence. Called from every registry accessor, so the full
 * scheme set exists before any lookup - lazy hooks (rather than
 * static initialisers in each .cc) sidestep both the static-init
 * order fiasco and the linker dead-stripping registration objects out
 * of the static library.
 */
void
ensureRegistered()
{
    static const bool once = [] {
        registerBuiltinSchemes();   // uncompressed, avx512-comp, zcomp
        registerCacheModelSchemes();    // limitcc, twotagcc
        registerEbpcScheme();
        registerZvcScheme();
        return true;
    }();
    (void)once;
}

class UncompressedScheme : public CompressionScheme
{
  public:
    const char *name() const override { return "uncompressed"; }
    int lineBytes(const uint8_t *) const override
    {
        return schemeLineBytes;
    }
};

class Avx512CompScheme : public CompressionScheme
{
  public:
    const char *name() const override { return "avx512-comp"; }
    int lineBytes(const uint8_t *line) const override
    {
        return zcompLineBytes(line);
    }
    // Software compress/expand around every vector: mask compute +
    // vcompressstoreu + mask-array store on the way out, mask load +
    // vexpandloadu + stream-pointer update on the way back (the
    // Figure 10/11 instruction overhead).
    double packCyclesPerLine() const override { return 3; }
    double unpackCyclesPerLine() const override { return 3; }
};

class ZcompScheme : public CompressionScheme
{
  public:
    const char *name() const override { return "zcomp"; }
    int lineBytes(const uint8_t *line) const override
    {
        return zcompLineBytes(line);
    }
    // zcomps/zcompl do the header bookkeeping in hardware; ReLU
    // stores fuse the LTEZ compare, leaving ~one extra uop per
    // vector on each path.
    double packCyclesPerLine() const override { return 1; }
    double unpackCyclesPerLine() const override { return 1; }
};

} // namespace

int
zcompLineBytes(const uint8_t *line)
{
    int nnz = 0;
    for (int w = 0; w < schemeLineWords; w++) {
        uint32_t word = 0;
        std::memcpy(&word, line + w * 4, 4);
        nnz += word != 0;
    }
    return std::min(schemeLineBytes, 2 + nnz * 4);
}

void
registerBuiltinSchemes()
{
    static const UncompressedScheme uncompressed;
    static const Avx512CompScheme avx512;
    static const ZcompScheme zcomp;
    static const bool once = [] {
        registerScheme(uncompressed);
        registerScheme(avx512);
        registerScheme(zcomp);
        return true;
    }();
    (void)once;
}

void
registerScheme(const CompressionScheme &s)
{
    std::vector<const CompressionScheme *> &reg = mutableRegistry();
    for (const CompressionScheme *existing : reg) {
        panic_if(std::strcmp(existing->name(), s.name()) == 0,
                 "compression scheme '%s' registered twice", s.name());
    }
    reg.push_back(&s);
}

const CompressionScheme *
schemeByName(const std::string &name)
{
    ensureRegistered();
    for (const CompressionScheme *s : mutableRegistry()) {
        if (name == s->name())
            return s;
    }
    return nullptr;
}

const std::vector<const CompressionScheme *> &
allSchemes()
{
    ensureRegistered();
    return mutableRegistry();
}

void
checkSnapshotAligned(size_t bytes)
{
    if (bytes % schemeLineBytes != 0) {
        decodeError("snapshot not line-aligned: %zu bytes (need a "
                    "multiple of %d)",
                    bytes, schemeLineBytes);
    }
}

double
CompressionScheme::snapshotRatio(const uint8_t *data,
                                 size_t bytes) const
{
    checkSnapshotAligned(bytes);
    if (bytes == 0)
        return 1.0;
    uint64_t compressed = 0;
    for (size_t off = 0; off < bytes; off += schemeLineBytes)
        compressed += static_cast<uint64_t>(lineBytes(data + off));
    return static_cast<double>(bytes) /
           static_cast<double>(compressed);
}

} // namespace zcomp
