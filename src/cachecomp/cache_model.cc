#include "cachecomp/cache_model.hh"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "cachecomp/fpcd.hh"
#include "cachecomp/scheme.hh"
#include "common/log.hh"

namespace zcomp {

namespace {

/**
 * FPC-D size of one line as the cache-compression models store it:
 * never past the physical line. fpcdLineBytes() already saturates at
 * 64, but the models clamp again at their use site so the invariant
 * cannot silently regress if the codec changes (ISSUE 9: an
 * unclamped size deflated limitCCRatio() below 1 and wedged TwoTagCC
 * slots past any possible partner).
 */
int
storedFpcdLineBytes(const uint8_t *line)
{
    return std::min(schemeLineBytes, fpcdLineBytes(line));
}

} // namespace

double
zcompSnapshotRatio(const uint8_t *data, size_t bytes)
{
    checkSnapshotAligned(bytes);
    if (bytes == 0)
        return 1.0;
    uint64_t compressed = 0;
    for (size_t off = 0; off < bytes; off += 64)
        compressed += static_cast<uint64_t>(zcompLineBytes(data + off));
    return static_cast<double>(bytes) / static_cast<double>(compressed);
}

double
limitCCRatio(const uint8_t *data, size_t bytes)
{
    checkSnapshotAligned(bytes);
    if (bytes == 0)
        return 1.0;
    uint64_t compressed = 0;
    for (size_t off = 0; off < bytes; off += 64)
        compressed +=
            static_cast<uint64_t>(storedFpcdLineBytes(data + off));
    return static_cast<double>(bytes) / static_cast<double>(compressed);
}

double
twoTagCCRatio(const uint8_t *data, size_t bytes, int sets)
{
    checkSnapshotAligned(bytes);
    fatal_if(sets <= 0, "need at least one set");
    if (bytes == 0)
        return 1.0;
    size_t lines = bytes / 64;

    // Greedy in-set pairing: walk each set's lines in order, packing a
    // line together with the previous unpaired one when their
    // compressed sizes fit a single 64 B physical line.
    std::vector<int> pending(static_cast<size_t>(sets), -1);
    uint64_t physical = 0;
    for (size_t l = 0; l < lines; l++) {
        int set = static_cast<int>(l % static_cast<size_t>(sets));
        int sz = storedFpcdLineBytes(data + l * 64);
        int prev = pending[static_cast<size_t>(set)];
        if (prev >= 0 && prev + sz <= 64) {
            // Pair completes: the two logical lines share one
            // physical line (already counted when prev was opened).
            pending[static_cast<size_t>(set)] = -1;
        } else {
            physical++;
            pending[static_cast<size_t>(set)] = sz;
        }
    }
    return static_cast<double>(lines) / static_cast<double>(physical);
}

CompRatios
analyzeSnapshot(const uint8_t *data, size_t bytes, int sets)
{
    CompRatios r;
    r.zcomp = zcompSnapshotRatio(data, bytes);
    r.limitCC = limitCCRatio(data, bytes);
    r.twoTagCC = twoTagCCRatio(data, bytes, sets);
    return r;
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 1.0;
    double log_sum = 0;
    for (double v : values)
        log_sum += std::log(v);
    return std::exp(log_sum / static_cast<double>(values.size()));
}

namespace {

class LimitCCScheme : public CompressionScheme
{
  public:
    const char *name() const override { return "limitcc"; }
    int lineBytes(const uint8_t *line) const override
    {
        return storedFpcdLineBytes(line);
    }
    double snapshotRatio(const uint8_t *data,
                         size_t bytes) const override
    {
        return limitCCRatio(data, bytes);
    }
    // Hardware FPC-D behind the cache: compression is off the store
    // path, decompression adds a short serial decode on fills.
    double unpackCyclesPerLine() const override { return 2; }
};

class TwoTagCCScheme : public CompressionScheme
{
  public:
    const char *name() const override { return "twotagcc"; }
    int lineBytes(const uint8_t *line) const override
    {
        return storedFpcdLineBytes(line);
    }
    // The effective ratio is set by in-set pairing, not the per-line
    // sum, so the snapshot walk is overridden wholesale.
    double snapshotRatio(const uint8_t *data,
                         size_t bytes) const override
    {
        return twoTagCCRatio(data, bytes);
    }
    double unpackCyclesPerLine() const override { return 2; }
};

} // namespace

void
registerCacheModelSchemes()
{
    static const LimitCCScheme limitcc;
    static const TwoTagCCScheme twotagcc;
    static const bool once = [] {
        registerScheme(limitcc);
        registerScheme(twotagcc);
        return true;
    }();
    (void)once;
}

} // namespace zcomp
