#include "cachecomp/cache_model.hh"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "cachecomp/fpcd.hh"
#include "common/log.hh"

namespace zcomp {

double
zcompSnapshotRatio(const uint8_t *data, size_t bytes)
{
    fatal_if(bytes % 64 != 0, "snapshot must be line-aligned");
    uint64_t compressed = 0;
    for (size_t off = 0; off < bytes; off += 64) {
        int nnz = 0;
        for (int w = 0; w < 16; w++) {
            uint32_t word = 0;
            std::memcpy(&word, data + off + w * 4, 4);
            nnz += word != 0;
        }
        compressed += 2 + static_cast<uint64_t>(nnz) * 4;
    }
    return static_cast<double>(bytes) / static_cast<double>(compressed);
}

double
limitCCRatio(const uint8_t *data, size_t bytes)
{
    fatal_if(bytes % 64 != 0, "snapshot must be line-aligned");
    uint64_t compressed = 0;
    for (size_t off = 0; off < bytes; off += 64)
        compressed += static_cast<uint64_t>(fpcdLineBytes(data + off));
    return static_cast<double>(bytes) / static_cast<double>(compressed);
}

double
twoTagCCRatio(const uint8_t *data, size_t bytes, int sets)
{
    fatal_if(bytes % 64 != 0, "snapshot must be line-aligned");
    fatal_if(sets <= 0, "need at least one set");
    size_t lines = bytes / 64;

    // Greedy in-set pairing: walk each set's lines in order, packing a
    // line together with the previous unpaired one when their
    // compressed sizes fit a single 64 B physical line.
    std::vector<int> pending(static_cast<size_t>(sets), -1);
    uint64_t physical = 0;
    for (size_t l = 0; l < lines; l++) {
        int set = static_cast<int>(l % static_cast<size_t>(sets));
        int sz = fpcdLineBytes(data + l * 64);
        int prev = pending[static_cast<size_t>(set)];
        if (prev >= 0 && prev + sz <= 64) {
            // Pair completes: the two logical lines share one
            // physical line (already counted when prev was opened).
            pending[static_cast<size_t>(set)] = -1;
        } else {
            physical++;
            pending[static_cast<size_t>(set)] = sz;
        }
    }
    return static_cast<double>(lines) / static_cast<double>(physical);
}

CompRatios
analyzeSnapshot(const uint8_t *data, size_t bytes, int sets)
{
    CompRatios r;
    r.zcomp = zcompSnapshotRatio(data, bytes);
    r.limitCC = limitCCRatio(data, bytes);
    r.twoTagCC = twoTagCCRatio(data, bytes, sets);
    return r;
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 1.0;
    double log_sum = 0;
    for (double v : values)
        log_sum += std::log(v);
    return std::exp(log_sum / static_cast<double>(values.size()));
}

} // namespace zcomp
