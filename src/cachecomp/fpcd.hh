/**
 * @file
 * FPC-D [9]: Frequent Pattern Compression with a Limited Dictionary,
 * the algorithm both cache-compression baselines of Section 5.4 use.
 *
 * Each 32-bit word of a 64-byte line is encoded with a 4-bit code:
 * the classic FPC significance patterns plus hits in a small
 * recent-words dictionary (full 32-bit match, or a partial match of
 * the upper 24 bits with the low byte transmitted). The 16 codes form
 * a fixed 8-byte per-line prefix - the overhead the paper contrasts
 * with ZCOMP's 2-byte header when explaining why LimitCC trails ZCOMP
 * on feature maps.
 */

#ifndef ZCOMP_CACHECOMP_FPCD_HH
#define ZCOMP_CACHECOMP_FPCD_HH

#include <cstdint>

namespace zcomp {

/** FPC-D compressed size of one 64-byte line, in bytes (<= 64). */
int fpcdLineBytes(const uint8_t *line);

/** Fixed per-line metadata bytes (16 x 4-bit codes). */
constexpr int fpcdPrefixBytes = 8;

/** Dictionary entries maintained while compressing a line. */
constexpr int fpcdDictEntries = 2;

} // namespace zcomp

#endif // ZCOMP_CACHECOMP_FPCD_HH
