#include "cachecomp/zvc.hh"

#include <algorithm>
#include <cstring>

#include "cachecomp/scheme.hh"

namespace zcomp {

int
zvcLineBytes(const uint8_t *line)
{
    int nnz = 0;
    for (int w = 0; w < schemeLineWords; w++) {
        uint32_t word = 0;
        std::memcpy(&word, line + w * 4, 4);
        nnz += word != 0;
    }
    int raw = 2 + nnz * 4;
    int padded = (raw + zvcBeatBytes - 1) / zvcBeatBytes * zvcBeatBytes;
    return std::min(schemeLineBytes, padded);
}

namespace {

class ZvcScheme : public CompressionScheme
{
  public:
    const char *name() const override { return "zvc"; }
    int lineBytes(const uint8_t *line) const override
    {
        return zvcLineBytes(line);
    }
    // The DMA engine compresses off the core's critical path; the
    // residual cost is the mask lookup when the burst is reassembled.
    double packCyclesPerLine() const override { return 1; }
    double unpackCyclesPerLine() const override { return 1; }
};

} // namespace

void
registerZvcScheme()
{
    static const ZvcScheme zvc;
    static const bool once = [] {
        registerScheme(zvc);
        return true;
    }();
    (void)once;
}

} // namespace zcomp
