/**
 * @file
 * CompressionScheme - the pluggable interface behind the Section 5.4
 * comparison (Figure 15) and the bench-layer policy plumbing.
 *
 * A scheme models one compression approach at cache-line granularity:
 * its compressed size for a 64-byte line of fp32 data, an optional
 * whole-snapshot ratio override (for architectures whose effective
 * ratio is not a pure per-line sum, e.g. TwoTagCC's in-set pairing),
 * and stream pack/unpack cost hooks consumed by the Figure 15
 * bandwidth-bound speedup model.
 *
 * Registration contract (see DESIGN.md Section 4.10):
 *  - every scheme is a static-storage singleton registered exactly
 *    once via registerScheme(); the registry panics on duplicate
 *    names, so two schemes can never collide on report keys;
 *  - allSchemes() returns schemes in registration order, which is
 *    fixed by the one-time initialisation sequence in scheme.cc -
 *    never by hash-map iteration - so every consumer (tables, report
 *    rows, cache keys) sees the same deterministic order on every
 *    run and worker count;
 *  - each scheme-defining translation unit exposes a
 *    register<X>Schemes() hook that scheme.cc drives; the zcomp_lint
 *    scheme-registration rule enforces that any cachecomp source
 *    defining a CompressionScheme subclass calls registerScheme().
 */

#ifndef ZCOMP_CACHECOMP_SCHEME_HH
#define ZCOMP_CACHECOMP_SCHEME_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace zcomp {

/** Uncompressed cache-line geometry every scheme models against. */
constexpr int schemeLineBytes = 64;
constexpr int schemeLineWords = 16;

class CompressionScheme
{
  public:
    virtual ~CompressionScheme() = default;

    /** Stable lowercase identifier ("zcomp", "ebpc", ...); used as
     *  the report/table/cache-key label for this scheme. */
    virtual const char *name() const = 0;

    /**
     * Compressed size of one 64-byte line, in bytes. Implementations
     * must clamp to [1, 64]: a real cache stores an incompressible
     * line uncompressed rather than letting metadata expand it past
     * the physical line (the Figure 15 accounting bug this interface
     * fixed - see ISSUE 9).
     */
    virtual int lineBytes(const uint8_t *line) const = 0;

    /**
     * Stream conversion cost hooks for the Figure 15 speedup model:
     * extra core cycles charged per 64-byte line on the store
     * (pack) and load (unpack) path. Zero means the conversion is
     * free / fully hidden (uncompressed, or hardware off the critical
     * path).
     */
    virtual double packCyclesPerLine() const { return 0; }
    virtual double unpackCyclesPerLine() const { return 0; }

    /**
     * Effective compression ratio over a line-aligned fp32 snapshot
     * (original bytes / compressed bytes, >= 1 by the lineBytes()
     * clamp). The default sums lineBytes(); schemes with cross-line
     * packing constraints (TwoTagCC) override it. Throws DecodeError
     * on a misaligned snapshot so a truncated input fails its study
     * cell in isolation instead of killing the sweep.
     */
    virtual double snapshotRatio(const uint8_t *data,
                                 size_t bytes) const;
};

/**
 * Add a scheme to the registry. The scheme must outlive the process
 * (schemes are static singletons); panics on a duplicate name.
 * Intended to be called from the one-time registration hooks driven
 * by scheme.cc, which keeps the order deterministic.
 */
void registerScheme(const CompressionScheme &s);

/** Look a scheme up by name(); nullptr when unknown. */
const CompressionScheme *schemeByName(const std::string &name);

/** Every registered scheme, in deterministic registration order. */
const std::vector<const CompressionScheme *> &allSchemes();

/**
 * Validate that a snapshot is line-aligned; throws DecodeError (via
 * decodeError(), bumping the detection counter) when it is not.
 * Shared by every snapshotRatio() implementation.
 */
void checkSnapshotAligned(size_t bytes);

/** ZCOMP compressed size of one 64-byte line: a 2-byte interleaved
 *  header per 16-lane vector plus the packed nonzero words, clamped
 *  to the physical line. Shared by the zcomp and avx512-comp schemes
 *  (the avx512-comp mask array has the same 2-byte-per-vector
 *  footprint, just stored out of line). */
int zcompLineBytes(const uint8_t *line);

/** One-time registration hook for the schemes defined in scheme.cc
 *  (uncompressed, avx512-comp, zcomp). */
void registerBuiltinSchemes();

} // namespace zcomp

#endif // ZCOMP_CACHECOMP_SCHEME_HH
