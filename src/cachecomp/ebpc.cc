#include "cachecomp/ebpc.hh"

#include <algorithm>
#include <cstring>

#include "cachecomp/scheme.hh"

namespace zcomp {

int
ebpcLineBytes(const uint8_t *line)
{
    uint32_t words[schemeLineWords];
    std::memcpy(words, line, schemeLineBytes);

    // Zero-runlength front end over the 16 words.
    uint32_t nonzeros[schemeLineWords];
    int k = 0;
    int bits = 0;
    for (int w = 0; w < schemeLineWords;) {
        if (words[w] == 0) {
            int run = 0;
            while (w < schemeLineWords && words[w] == 0) {
                run++;
                w++;
            }
            bits += 5;      // run flag + 4-bit length (run <= 16)
            (void)run;
        } else {
            bits += 1;      // keep flag
            nonzeros[k++] = words[w];
            w++;
        }
    }

    // Bit-plane back end over the nonzero stream.
    if (k > 0) {
        bits += 32;         // first value verbatim
        if (k > 1) {
            for (int plane = 0; plane < 32; plane++) {
                bool populated = false;
                for (int i = 1; i < k; i++) {
                    uint32_t delta = nonzeros[i] ^ nonzeros[i - 1];
                    if ((delta >> plane) & 1) {
                        populated = true;
                        break;
                    }
                }
                bits += populated ? 1 + (k - 1) : 1;
            }
        }
    }
    return std::min(schemeLineBytes, (bits + 7) / 8);
}

namespace {

class EbpcScheme : public CompressionScheme
{
  public:
    const char *name() const override { return "ebpc"; }
    int lineBytes(const uint8_t *line) const override
    {
        return ebpcLineBytes(line);
    }
    // Bit-plane transposition is the expensive part of the codec: the
    // hardware encoder/decoder sits on the memory path and serialises
    // plane by plane, so both directions carry a real per-line cost.
    double packCyclesPerLine() const override { return 4; }
    double unpackCyclesPerLine() const override { return 4; }
};

} // namespace

void
registerEbpcScheme()
{
    static const EbpcScheme ebpc;
    static const bool once = [] {
        registerScheme(ebpc);
        return true;
    }();
    (void)once;
}

} // namespace zcomp
