/**
 * @file
 * ZVC - cDMA-style Zero-Value Compression (Rhu et al., see
 * PAPERS.md) - modeled at cache-line granularity for the Figure 15
 * comparison.
 *
 * cDMA compresses activation maps on the DMA path with the simplest
 * possible scheme: a 1-bit-per-word presence mask followed by the
 * nonzero words packed back to back. The DMA engine moves data in
 * fixed bursts, so the compressed payload of every line is rounded up
 * to the burst beat:
 *
 *   bytes = min(64, roundUp(2 + 4 * nnz, zvcBeatBytes))
 *
 * (2 mask bytes for 16 words, 8-byte beats). Worked golden values
 * (tests/test_scheme.cc): all-zero line -> 8 bytes, dense line ->
 * 64 bytes (clamped), alternating half-sparse line -> 40 bytes.
 */

#ifndef ZCOMP_CACHECOMP_ZVC_HH
#define ZCOMP_CACHECOMP_ZVC_HH

#include <cstdint>

namespace zcomp {

/** DMA burst beat the compressed payload is padded to. */
constexpr int zvcBeatBytes = 8;

/** ZVC compressed size of one 64-byte line, in bytes (<= 64). */
int zvcLineBytes(const uint8_t *line);

/** One-time registration hook for the "zvc" CompressionScheme. */
void registerZvcScheme();

} // namespace zcomp

#endif // ZCOMP_CACHECOMP_ZVC_HH
