/**
 * @file
 * Effective compression-ratio models for the Section 5.4 comparison
 * (Figure 15):
 *
 *  - LimitCC : an upper-bound cache compression architecture that can
 *    pack FPC-D-compressed lines at byte granularity with no physical
 *    line-boundary restrictions (approachable by e.g. Skewed
 *    Compressed Caches [47]).
 *  - TwoTagCC : a practical two-tag architecture [26] that can hold at
 *    most two logical lines in one physical line - which requires the
 *    pair's compressed sizes to fit in 64 bytes together.
 *  - ZCOMP : the proposed scheme's ratio (interleaved 2-byte headers,
 *    zero-value compression only).
 */

#ifndef ZCOMP_CACHECOMP_CACHE_MODEL_HH
#define ZCOMP_CACHECOMP_CACHE_MODEL_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace zcomp {

struct CompRatios
{
    double zcomp = 1.0;
    double limitCC = 1.0;
    double twoTagCC = 1.0;
};

/**
 * Analyze a raw fp32 snapshot (byte length must be a multiple of 64)
 * and return all three effective compression ratios.
 *
 * All the ratio functions below clamp per-line compressed sizes to
 * the 64-byte physical line (a real cache stores incompressible
 * lines uncompressed rather than expanding them), and throw
 * DecodeError on a misaligned snapshot so a truncated input fails
 * its study cell in isolation instead of killing the sweep.
 *
 * @param sets number of cache sets the TwoTagCC pairing models
 *        (consecutive lines round-robin over sets, pairs form within
 *        a set).
 */
CompRatios analyzeSnapshot(const uint8_t *data, size_t bytes,
                           int sets = 64);

/** ZCOMP ratio of a snapshot: 64B vs per-vector header + non-zeros. */
double zcompSnapshotRatio(const uint8_t *data, size_t bytes);

/** LimitCC ratio: byte-granular packing of FPC-D lines. */
double limitCCRatio(const uint8_t *data, size_t bytes);

/** TwoTagCC ratio: greedy in-set pairing of FPC-D lines. */
double twoTagCCRatio(const uint8_t *data, size_t bytes, int sets = 64);

/** One-time registration hook for the Figure 15 cache-compression
 *  CompressionSchemes defined here ("limitcc", "twotagcc"). */
void registerCacheModelSchemes();

/** Geometric mean helper for aggregating per-snapshot ratios. */
double geomean(const std::vector<double> &values);

} // namespace zcomp

#endif // ZCOMP_CACHECOMP_CACHE_MODEL_HH
