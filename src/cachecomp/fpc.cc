#include "cachecomp/fpc.hh"

#include <algorithm>
#include <cstring>

#include "common/simd.hh"

namespace zcomp {

namespace {

bool
fitsSignExt(uint32_t word, int bits)
{
    auto v = static_cast<int32_t>(word);
    int32_t lo = -(1 << (bits - 1));
    int32_t hi = (1 << (bits - 1)) - 1;
    return v >= lo && v <= hi;
}

} // namespace

FpcPattern
fpcClassify(uint32_t word)
{
    if (word == 0)
        return FpcPattern::ZeroRun;
    if (fitsSignExt(word, 4))
        return FpcPattern::SignExt4;
    if (fitsSignExt(word, 8))
        return FpcPattern::SignExt8;
    if (fitsSignExt(word, 16))
        return FpcPattern::SignExt16;
    if ((word & 0xFFFFu) == 0)
        return FpcPattern::ZeroPaddedHalf;
    {
        auto lo = static_cast<uint16_t>(word);
        auto hi = static_cast<uint16_t>(word >> 16);
        auto fits16 = [](uint16_t h) {
            auto v = static_cast<int16_t>(h);
            return v >= -128 && v <= 127;
        };
        if (fits16(lo) && fits16(hi))
            return FpcPattern::SignExtHalves;
    }
    {
        uint8_t b0 = word & 0xFF;
        if (((word >> 8) & 0xFF) == b0 && ((word >> 16) & 0xFF) == b0 &&
            ((word >> 24) & 0xFF) == b0) {
            return FpcPattern::RepeatedBytes;
        }
    }
    return FpcPattern::Uncompressed;
}

int
fpcPayloadBits(FpcPattern p)
{
    switch (p) {
      case FpcPattern::ZeroRun:
        return 3;       // run length 1..8
      case FpcPattern::SignExt4:
        return 4;
      case FpcPattern::SignExt8:
        return 8;
      case FpcPattern::SignExt16:
        return 16;
      case FpcPattern::ZeroPaddedHalf:
        return 16;
      case FpcPattern::SignExtHalves:
        return 16;
      case FpcPattern::RepeatedBytes:
        return 8;
      case FpcPattern::Uncompressed:
        return 32;
    }
    return 32;
}

int
fpcLineBits(const uint8_t *line)
{
    int bits = 0;
    int zero_run = 0;
    uint8_t wbits[16];
    uint16_t zmask = 0;
    if (simd::fpcBitsLine(line, wbits, zmask)) {
        // All sixteen words classified at once; only the sequential
        // zero-run state machine remains scalar.
        for (int w = 0; w < 16; w++) {
            if ((zmask >> w) & 1) {
                if (zero_run == 0 || zero_run == 8) {
                    bits += 3 + 3;
                    zero_run = 1;
                } else {
                    zero_run++;
                }
                continue;
            }
            zero_run = 0;
            bits += 3 + wbits[w];
        }
        return bits;
    }
    for (int w = 0; w < 16; w++) {
        uint32_t word = 0;
        std::memcpy(&word, line + w * 4, 4);
        FpcPattern p = fpcClassify(word);
        if (p == FpcPattern::ZeroRun) {
            if (zero_run == 0 || zero_run == 8) {
                bits += 3 + fpcPayloadBits(p);
                zero_run = 1;
            } else {
                zero_run++;
            }
            continue;
        }
        zero_run = 0;
        bits += 3 + fpcPayloadBits(p);
    }
    return bits;
}

int
fpcLineBytes(const uint8_t *line)
{
    return std::min(64, (fpcLineBits(line) + 7) / 8);
}

} // namespace zcomp
