#include "cachecomp/fpcd.hh"

#include <algorithm>
#include <cstring>

#include "cachecomp/fpc.hh"
#include "common/simd.hh"

namespace zcomp {

int
fpcdLineBytes(const uint8_t *line)
{
    // Batch-classify the whole line up front when a vector backend is
    // active; the FIFO dictionary scan below stays scalar (it is
    // sequential by construction) but then only needs a table lookup
    // for each word that misses the dictionary.
    uint8_t wbits[16];
    uint16_t zmask = 0;
    const bool classified = simd::fpcBitsLine(line, wbits, zmask);

    // Small FIFO dictionary of recent in-line words.
    uint32_t dict[fpcdDictEntries] = {};
    int dict_fill = 0;
    int next_slot = 0;

    int payload_bits = 0;
    for (int w = 0; w < 16; w++) {
        uint32_t word = 0;
        std::memcpy(&word, line + w * 4, 4);

        // Zero words use the dedicated pattern code and bypass the
        // dictionary entirely.
        if (word == 0)
            continue;

        // Dictionary full / partial matches take priority over the
        // significance patterns (they capture repeated fp32 values and
        // values sharing exponent+high-mantissa bits).
        bool full = false, partial = false;
        for (int d = 0; d < dict_fill; d++) {
            if (dict[d] == word) {
                full = true;
                break;
            }
            if ((dict[d] >> 8) == (word >> 8))
                partial = true;
        }
        if (full) {
            payload_bits += 1;      // dictionary index
        } else if (partial) {
            payload_bits += 1 + 8;  // index + low byte
        } else {
            payload_bits += classified
                ? wbits[w]
                : fpcPayloadBits(fpcClassify(word));
        }
        if (!full) {
            dict[next_slot] = word;
            next_slot = (next_slot + 1) % fpcdDictEntries;
            dict_fill = std::min(dict_fill + 1, fpcdDictEntries);
        }
    }

    int bytes = fpcdPrefixBytes + (payload_bits + 7) / 8;
    return std::min(64, bytes);
}

} // namespace zcomp
