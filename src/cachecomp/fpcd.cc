#include "cachecomp/fpcd.hh"

#include <algorithm>
#include <cstring>

#include "cachecomp/fpc.hh"

namespace zcomp {

int
fpcdLineBytes(const uint8_t *line)
{
    // Small FIFO dictionary of recent in-line words.
    uint32_t dict[fpcdDictEntries] = {};
    int dict_fill = 0;
    int next_slot = 0;

    int payload_bits = 0;
    for (int w = 0; w < 16; w++) {
        uint32_t word = 0;
        std::memcpy(&word, line + w * 4, 4);

        // Zero words use the dedicated pattern code and bypass the
        // dictionary entirely.
        if (word == 0)
            continue;

        // Dictionary full / partial matches take priority over the
        // significance patterns (they capture repeated fp32 values and
        // values sharing exponent+high-mantissa bits).
        bool full = false, partial = false;
        for (int d = 0; d < dict_fill; d++) {
            if (dict[d] == word) {
                full = true;
                break;
            }
            if ((dict[d] >> 8) == (word >> 8))
                partial = true;
        }
        if (full) {
            payload_bits += 1;      // dictionary index
        } else if (partial) {
            payload_bits += 1 + 8;  // index + low byte
        } else {
            payload_bits += fpcPayloadBits(fpcClassify(word));
        }
        if (!full) {
            dict[next_slot] = word;
            next_slot = (next_slot + 1) % fpcdDictEntries;
            dict_fill = std::min(dict_fill + 1, fpcdDictEntries);
        }
    }

    int bytes = fpcdPrefixBytes + (payload_bits + 7) / 8;
    return std::min(64, bytes);
}

} // namespace zcomp
