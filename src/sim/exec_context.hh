/**
 * @file
 * ExecContext couples the functional and timing halves of the
 * simulator: it owns the simulated virtual address space (whose
 * buffers the functional kernels read and write on the host) and the
 * multicore timing system that replays the kernels' trace phases.
 */

#ifndef ZCOMP_SIM_EXEC_CONTEXT_HH
#define ZCOMP_SIM_EXEC_CONTEXT_HH

#include <memory>

#include "common/json.hh"
#include "common/metrics.hh"
#include "cpu/system.hh"
#include "mem/vspace.hh"

namespace zcomp {

/** Timing + traffic delta of one or more phases. */
struct RunStats
{
    double cycles = 0;
    CycleBreakdown breakdown;
    HierSnapshot traffic;

    RunStats &operator+=(const RunStats &o);
};

/**
 * Serialize a RunStats delta: cycles, the compute/memory/sync
 * breakdown, and every per-level traffic counter (plus the derived
 * onChip/total byte aggregates the figures report).
 */
Json runStatsToJson(const RunStats &s);

/**
 * Rebuild a RunStats from its runStatsToJson() form (the derived
 * onChipBytes/totalBytes aggregates are ignored - they are
 * recomputed). Round-trips exactly: Json prints doubles with
 * enough digits and integers verbatim. Throws std::runtime_error on
 * missing or mistyped fields, so corrupt result-cache entries fail
 * loudly instead of decoding to zeros.
 */
RunStats runStatsFromJson(const Json &j);

class ExecContext
{
  public:
    explicit ExecContext(const ArchConfig &cfg);

    /**
     * Back the context's VSpace with a caller-owned bump arena: every
     * tensor and scratch buffer is carved from @p arena instead of
     * individual heap allocations. The arena must outlive the context
     * and may only be reset() after the context (and everything
     * holding its buffers) is gone.
     */
    ExecContext(const ArchConfig &cfg, BumpArena *arena);

    VSpace &vs() { return vs_; }
    MultiCoreSystem &sys() { return sys_; }
    const ArchConfig &config() const { return sys_.config(); }

    /**
     * Run one phase and return its cycle/traffic delta (counters are
     * snapshotted around the phase; cache contents persist).
     */
    RunStats run(const TracePhase &phase);

    /** Run a phase without accounting (cache warmup). */
    void warm(const TracePhase &phase);

    /**
     * Route subsequent run() phases to a Perfetto track group: each
     * phase becomes one span per active core (lane = core id, ts =
     * simulated cycles) under the given trace pid. -1 (the default)
     * disables emission; a null global TraceWriter also disables it.
     */
    void setTracePid(int pid) { tracePid_ = pid; }
    int tracePid() const { return tracePid_; }

    /**
     * Build a cycle-domain MetricsSampler for one (cell, policy)
     * simulation against this context's system: the standard probe
     * set (DRAM bytes, per-level hits/misses, zcomp busy cycles, NoC
     * hops), the --metrics-interval from the global MetricsSink, and
     * the current trace pid for Perfetto counter tracks. Returns null
     * when no global sink is installed (no --metrics flag), so the
     * caller's attach stays a simple null check. The sampler holds a
     * reference to this context and must not outlive it.
     */
    std::unique_ptr<MetricsSampler> makeMetricsSampler(
        const std::string &cell, const std::string &policy);

  private:
    VSpace vs_;
    MultiCoreSystem sys_;
    int tracePid_ = -1;
};

} // namespace zcomp

#endif // ZCOMP_SIM_EXEC_CONTEXT_HH
