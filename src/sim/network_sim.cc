#include "sim/network_sim.hh"

#include <algorithm>
#include <unordered_map>

#include "common/bitops.hh"
#include "common/fault.hh"
#include "common/simd.hh"
#include "common/log.hh"
#include "common/trace_writer.hh"
#include "dnn/layers/conv.hh"
#include "dnn/layers/fc.hh"

namespace zcomp {

const char *
ioPolicyName(IoPolicy p)
{
    switch (p) {
      case IoPolicy::Uncompressed:
        return "uncompressed";
      case IoPolicy::Avx512Comp:
        return "avx512-comp";
      case IoPolicy::Zcomp:
        return "zcomp";
    }
    // An out-of-range value here would otherwise flow silently into
    // report rows and result-cache keys, colliding distinct invalid
    // policies on one cached entry (ISSUE 9).
    panic("invalid IoPolicy %d", static_cast<int>(p));
}

bool
ioPolicyFromName(const std::string &name, IoPolicy &out)
{
    for (int p = 0; p < numIoPolicies; p++) {
        IoPolicy pol = static_cast<IoPolicy>(p);
        if (name == ioPolicyName(pol)) {
            out = pol;
            return true;
        }
    }
    return false;
}

namespace {

constexpr uint64_t hdrB = 2;            //!< fp32 header/mask bytes
constexpr size_t scratchBytes = 128 * KiB;  //!< per-core pack buffer

/** One tensor's role in a streaming pass. */
struct StreamSpec
{
    const Tensor *tensor = nullptr;
    Buffer *mask = nullptr;     //!< avx512-comp header array (or null)
    const uint16_t *nnz = nullptr;  //!< memoized per-vector nonzeros
    bool write = false;
    bool fusedLtez = false;     //!< zcomps does the ReLU comparison
    bool compress = false;      //!< this tensor moves compressed
    int extraUops = 0;          //!< layer compute attached per vector
};

/** Whether a tensor is cross-layer data the policy may compress. */
bool
isCrossLayer(const Tensor &t)
{
    return t.allocClass() == AllocClass::FeatureMap ||
           t.allocClass() == AllocClass::GradientMap;
}

/**
 * Interleaved headers must amortize their metadata to stay within the
 * original allocation (Section 4.1: >= 3.125% compressibility for
 * fp32/512-bit). Dense tensors - e.g. pre-activation conv outputs -
 * therefore move uncompressed under every policy.
 */
constexpr double minSparsityToCompress = 0.05;

/** Count non-zero fp32 lanes in one vector of a tensor. */
uint32_t
vecNnz(const Tensor &t, size_t vec)
{
    const float *d = t.data() + vec * 16;
    uint32_t n = 0;
    for (int i = 0; i < 16; i++)
        n += d[i] != 0.0f;
    return n;
}

/**
 * Builds one barrier-delimited TracePhase for a layer pass and runs
 * it. Streams are partitioned over cores and sub-blocks; compressed
 * streams replay exact per-vector sizes scanned from tensor values.
 */
class PassBuilder
{
  public:
    PassBuilder(ExecContext &ctx, const NetworkSimConfig &cfg,
                std::string name, MetricsSampler *sampler = nullptr)
        : ctx_(ctx), cfg_(cfg),
          phase_(std::move(name), ctx.config().numCores),
          cores_(ctx.config().numCores),
          logicLat_(static_cast<uint8_t>(
              ctx.config().zcomp.logicLatency)),
          sampler_(sampler)
    {}

    /** Emit an interleaved streaming pass over the given tensors. */
    void
    stream(const std::vector<StreamSpec> &specs)
    {
        int subs = std::max(
            1, std::min(cfg_.subBlocks,
                        CoreModel::maxStreams /
                            std::max<int>(1, specs.size())));
        // Static compression ratio of this pass's streams, for the
        // sampler's live per-layer metric. Only paid when a sampler
        // exists (--metrics); the per-vector sizes are the memoized
        // nnz counts the emit loop replays anyway.
        if (sampler_) {
            for (const StreamSpec &spec : specs) {
                size_t vecs = spec.tensor->elems() / 16;
                uint64_t orig = static_cast<uint64_t>(vecs) * 64;
                uint64_t comp = orig;
                if (spec.compress) {
                    uint64_t payload = 0;
                    for (size_t v = 0; v < vecs; v++)
                        payload += spec.nnz
                                       ? spec.nnz[v]
                                       : vecNnz(*spec.tensor, v);
                    comp = vecs * hdrB + payload * 4;
                }
                origBytes_ += orig;
                compBytes_ += comp;
            }
        }
        for (int c = 0; c < cores_; c++)
            emitCore(c, specs, subs);
    }

    /**
     * Emit a blocked-GEMM compute pass, partitioned over the panel
     * (output-channel / N-K) dimension: each core owns a disjoint
     * 1/cores slice of the weight panel and walks *all* m_rows
     * against it, re-reading its slice once per `gemmBlockRows` rows.
     * This is how library GEMMs parallelize when M is small (batch-
     * sized FC layers read the weights exactly once in total) and is
     * traffic-equivalent to M-partitioning when M is large; per-core
     * slices also stay L2-resident across panel re-reads.
     *
     * Issue uops charge 2 per 16-lane FMA (32 MACs/cycle/core peak).
     * Total MACs = m_rows * panel_bytes / 4.
     */
    void
    gemmCompute(Addr panel_base, uint64_t panel_bytes, uint64_t m_rows)
    {
        if (panel_bytes == 0 || m_rows == 0)
            return;
        if (sampler_) {
            // Weight panels always move uncompressed: ratio 1.
            origBytes_ += panel_bytes;
            compBytes_ += panel_bytes;
        }
        uint64_t lines = divCeil(panel_bytes, lineBytes);
        for (int c = 0; c < cores_; c++) {
            uint64_t line_begin =
                lines * static_cast<uint64_t>(c) /
                static_cast<uint64_t>(cores_);
            uint64_t line_end =
                lines * (static_cast<uint64_t>(c) + 1) /
                static_cast<uint64_t>(cores_);
            if (line_begin == line_end)
                continue;
            CoreTrace &t = phase_.perCore[static_cast<size_t>(c)];
            uint64_t done = 0;
            while (done < m_rows) {
                uint64_t panel_rows = std::min<uint64_t>(
                    m_rows - done, cfg_.gemmBlockRows);
                // 2 uops per 16-lane FMA, panel_rows FMAs per line.
                uint16_t uops = static_cast<uint16_t>(
                    std::min<uint64_t>(2 * panel_rows, 60000));
                for (uint64_t l = line_begin; l < line_end; l++) {
                    t.push_back(TraceOp::load(
                        panel_base + l * lineBytes, lineBytes, uops,
                        /*pc=*/200));
                }
                done += panel_rows;
            }
        }
    }

    RunStats
    run()
    {
        if (sampler_) {
            sampler_->setLayerContext(
                phase_.name,
                compBytes_ > 0 ? static_cast<double>(origBytes_) /
                                     static_cast<double>(compBytes_)
                               : 1.0);
        }
        return ctx_.run(phase_);
    }

  private:
    struct StreamState
    {
        size_t vecBegin = 0;
        size_t vecCount = 0;
        size_t byteOff = 0;     //!< running offset within the window
        Addr base = 0;          //!< window base (simulated address)
        Addr maskBase = 0;
    };

    void
    emitCore(int core, const std::vector<StreamSpec> &specs, int subs)
    {
        CoreTrace &t = phase_.perCore[static_cast<size_t>(core)];
        // Per (spec, sub) stream state.
        std::vector<std::vector<StreamState>> st(specs.size());
        size_t max_count = 0;
        for (size_t s = 0; s < specs.size(); s++) {
            const Tensor &ten = *specs[s].tensor;
            size_t vecs = ten.elems() / 16;
            size_t core_begin = vecs * static_cast<size_t>(core) /
                                static_cast<size_t>(cores_);
            size_t core_end = vecs * (static_cast<size_t>(core) + 1) /
                              static_cast<size_t>(cores_);
            st[s].resize(static_cast<size_t>(subs));
            for (int k = 0; k < subs; k++) {
                StreamState &ss = st[s][static_cast<size_t>(k)];
                size_t b = core_begin + (core_end - core_begin) *
                                            static_cast<size_t>(k) /
                                            static_cast<size_t>(subs);
                size_t e = core_begin + (core_end - core_begin) *
                                            (static_cast<size_t>(k) +
                                             1) /
                                            static_cast<size_t>(subs);
                ss.vecBegin = b;
                ss.vecCount = e - b;
                // Compressed streams live in the original allocation
                // window of their slice (Section 4.1).
                ss.base = specs[s].tensor->addrAt(b * 16);
                if (specs[s].mask)
                    ss.maskBase = specs[s].mask->addrAt(b * hdrB);
                max_count = std::max(max_count, ss.vecCount);
            }
        }

        for (size_t g = 0; g < max_count; g++) {
            for (int k = 0; k < subs; k++) {
                for (size_t s = 0; s < specs.size(); s++) {
                    StreamState &ss = st[s][static_cast<size_t>(k)];
                    if (g >= ss.vecCount)
                        continue;
                    const StreamSpec &spec = specs[s];
                    bool comp = spec.compress;
                    size_t vec = ss.vecBegin + g;
                    int stream_id =
                        static_cast<int>(s) * subs + k;
                    emitVec(t, spec, ss, vec, comp, stream_id);
                }
            }
        }

        // Tail elements (tensor size not a multiple of 16): one plain
        // access on core 0.
        if (core == 0) {
            for (const StreamSpec &spec : specs) {
                size_t tail = spec.tensor->elems() % 16;
                if (tail == 0)
                    continue;
                size_t off = spec.tensor->elems() - tail;
                TraceOp op = TraceOp::load(
                    spec.tensor->addrAt(off),
                    static_cast<uint32_t>(tail * 4), 2, 99);
                op.isWrite = spec.write;
                t.push_back(op);
            }
        }
    }

    void
    emitVec(CoreTrace &t, const StreamSpec &spec, StreamState &ss,
            size_t vec, bool comp, int stream_id)
    {
        if (!comp) {
            // Plain AVX512 vector move.
            TraceOp op = TraceOp::load(
                spec.tensor->addrAt(vec * 16), 64,
                static_cast<uint16_t>(1 + spec.extraUops +
                                      (spec.write ? 1 : 0)),
                static_cast<uint16_t>(1 + stream_id));
            op.isWrite = spec.write;
            t.push_back(op);
            return;
        }

        uint32_t nnz = spec.nnz ? spec.nnz[vec]
                                : vecNnz(*spec.tensor, vec);
        if (cfg_.policy == IoPolicy::Zcomp) {
            TraceOp op = TraceOp::load(
                ss.base + ss.byteOff,
                static_cast<uint32_t>(hdrB) + nnz * 4,
                static_cast<uint16_t>(
                    1 + spec.extraUops +
                    (spec.fusedLtez ? 0 : (spec.write ? 1 : 0))),
                static_cast<uint16_t>(1 + stream_id));
            op.isWrite = spec.write;
            op.stream = static_cast<int8_t>(stream_id %
                                            CoreModel::maxStreams);
            op.chainLat = logicLat_;
            op.zcompUnit = true;
            t.push_back(op);
            ss.byteOff += hdrB + nnz * 4;
            return;
        }

        // Avx512Comp: separate mask array + packed payload.
        TraceOp mask_op = TraceOp::load(
            ss.maskBase + (vec - ss.vecBegin) * hdrB,
            static_cast<uint32_t>(hdrB), 1,
            static_cast<uint16_t>(64 + stream_id));
        mask_op.isWrite = spec.write;
        t.push_back(mask_op);
        TraceOp data_op = TraceOp::load(
            ss.base + ss.byteOff, nnz * 4,
            static_cast<uint16_t>((spec.write ? 8 : 6) +
                                  spec.extraUops),
            static_cast<uint16_t>(1 + stream_id));
        data_op.isWrite = spec.write;
        t.push_back(data_op);
        ss.byteOff += nnz * 4;
    }

    ExecContext &ctx_;
    const NetworkSimConfig &cfg_;
    TracePhase phase_;
    int cores_;
    uint8_t logicLat_;
    MetricsSampler *sampler_;
    uint64_t origBytes_ = 0;    //!< pass bytes before compression
    uint64_t compBytes_ = 0;    //!< pass bytes as the policy moves them
};

/** Per-vector compute uops attached to a layer's streaming pass. */
int
computeUops(LayerKind kind)
{
    switch (kind) {
      case LayerKind::Relu:
        return 1;       // vmaxps
      case LayerKind::Dropout:
        return 2;       // mask load + blend
      case LayerKind::Lrn:
        return 10;      // square/sum window + pow approximation
      case LayerKind::EltwiseAdd:
        return 1;       // vaddps
      case LayerKind::MaxPool:
      case LayerKind::AvgPool:
        return 6;       // window max/accumulate per output vector
      case LayerKind::Softmax:
        return 8;
      default:
        return 1;
    }
}

} // namespace

NetworkSim::NetworkSim(ExecContext &ctx, Network &net)
    : ctx_(ctx), net_(net)
{
    maskArena_.assign(net.numNodes(), nullptr);
    gradMaskArena_.assign(net.numNodes(), nullptr);
}

Buffer &
NetworkSim::maskFor(int node, bool grad)
{
    auto &arena = grad ? gradMaskArena_ : maskArena_;
    Buffer *&slot = arena[static_cast<size_t>(node)];
    if (!slot) {
        const Tensor &t = grad ? *net_.gradient(node)
                               : net_.activation(node);
        size_t vecs = divCeil(t.elems(), static_cast<size_t>(16));
        slot = &ctx_.vs().alloc(
            format("netsim.mask.%d.%s", node, grad ? "g" : "a"),
            std::max<size_t>(1, vecs * hdrB),
            t.allocClass());
    }
    return *slot;
}

Buffer &
NetworkSim::scratchFor(int core)
{
    while (scratch_.size() <= static_cast<size_t>(core)) {
        scratch_.push_back(&ctx_.vs().alloc(
            format("netsim.scratch.%zu", scratch_.size()),
            scratchBytes, AllocClass::Scratch));
    }
    return *scratch_[static_cast<size_t>(core)];
}

const NetworkSim::TensorScan &
NetworkSim::scanFor(const Tensor &t)
{
    // Lookup-or-compute only; see the determinism note on scans_ in
    // the header before adding any iteration over the map.
    auto it = scans_.find(&t);
    if (it != scans_.end())
        return it->second;

    TensorScan scan;
    const float *d = t.data();
    const size_t elems = t.elems();
    const size_t vecs = elems / 16;
    scan.nnz.resize(vecs);
    if (!simd::vecNnzF32(d, vecs, scan.nnz.data())) {
        for (size_t v = 0; v < vecs; v++) {
            uint32_t n = 0;
            for (int i = 0; i < 16; i++)
                n += d[v * 16 + i] != 0.0f;
            scan.nnz[v] = static_cast<uint16_t>(n);
        }
    }
    size_t nnz_total = 0;
    for (size_t v = 0; v < vecs; v++)
        nnz_total += scan.nnz[v];
    for (size_t i = vecs * 16; i < elems; i++)
        nnz_total += d[i] != 0.0f;
    // Same integer zero count as Tensor::sparsity(), so the derived
    // double (and hence the compressibility gate) is bit-identical.
    scan.sparsity = static_cast<double>(elems - nnz_total) /
                    static_cast<double>(elems);
    return scans_.emplace(&t, std::move(scan)).first->second;
}

NetworkSimResult
NetworkSim::run(const NetworkSimConfig &cfg)
{
    // Transient launch fault: thrown before any simulation state is
    // mutated so a retried cell replays from a clean slate. This is
    // the site the study runner's retry loop is tested against.
    FaultInjector::global().maybeInject(faultsite::KernelTransient);

    if (cfg.coldCaches)
        ctx_.sys().resetAll();

    // Each (network, policy) run gets its own simulated track group
    // so the per-core lanes of back-to-back policy runs (which all
    // restart at cycle 0) do not overlap in the trace.
    const std::string label =
        cfg.traceLabel.empty() ? net_.name() : cfg.traceLabel;
    int prev_pid = ctx_.tracePid();
    if (TraceWriter *tw = TraceWriter::global()) {
        int pid = tw->newProcess(
            label + " [" + ioPolicyName(cfg.policy) + "]");
        for (int c = 0; c < ctx_.config().numCores; c++)
            tw->nameThread(pid, c, format("core %d", c));
        ctx_.setTracePid(pid);
    }

    // Cycle-domain sampler for this (cell, policy) run; null without
    // --metrics. Created after the resetAll/newProcess above so its
    // cycle stream starts at this run's cycle 0 and its counter
    // tracks land in this run's track group. The scope guard drains
    // the final partial window and detaches on every return path.
    std::unique_ptr<MetricsSampler> sampler =
        ctx_.makeMetricsSampler(label, ioPolicyName(cfg.policy));
    struct SamplerScope
    {
        ExecContext &ctx;
        MetricsSampler *s;
        ~SamplerScope()
        {
            if (s) {
                s->finish(ctx.sys().now());
                ctx.sys().attachSampler(nullptr);
            }
        }
    } sampler_scope{ctx_, sampler.get()};
    if (sampler)
        ctx_.sys().attachSampler(sampler.get());

    NetworkSimResult result;
    bool avx = cfg.policy == IoPolicy::Avx512Comp;

    // Compressibility gate off the memoized tensor scan (shared with
    // the other policy runs on this NetworkSim).
    auto compressible = [&](const Tensor &t) {
        if (cfg.policy == IoPolicy::Uncompressed || !isCrossLayer(t))
            return false;
        return scanFor(t).sparsity >= minSparsityToCompress;
    };

    // Build one stream spec, resolving policy, gate and mask arena.
    auto spec = [&](int node, bool grad, bool write, bool fused,
                    int uops) {
        const Tensor &t = grad ? *net_.gradient(node)
                               : net_.activation(node);
        StreamSpec s;
        s.tensor = &t;
        s.write = write;
        s.fusedLtez = fused;
        s.extraUops = uops;
        s.compress = compressible(t);
        if (s.compress) {
            s.nnz = scanFor(t).nnz.data();
            if (avx)
                s.mask = &maskFor(node, grad);
        }
        return s;
    };

    auto record = [&](const std::string &name, bool backward,
                      RunStats stats) {
        result.layers.push_back({name, backward, stats});
        result.total += stats;
    };

    // Pre-create the per-core pack scratch (stable addresses).
    for (int c = 0; c < ctx_.config().numCores; c++)
        scratchFor(c);

    // Conv/FC + ReLU fusion (Intel-Caffe/MKL style, and what the
    // paper's zcomps-LTEZ fusion assumes): when a conv/fc feeds
    // exactly one ReLU, the dense pre-activation map never reaches
    // memory - the producer writes the ReLU's (sparse) output
    // directly, and on the way back the consumer's dx pass writes the
    // masked gradient below the ReLU. The standalone ReLU passes are
    // skipped.
    std::vector<int> fuse_out(net_.numNodes(), -1);
    std::vector<bool> fused_relu(net_.numNodes(), false);
    for (size_t i = 1; i < net_.numNodes(); i++) {
        const auto &n = net_.node(static_cast<int>(i));
        if (n.layer->kind() != LayerKind::Relu)
            continue;
        int producer = n.inputs[0];
        const auto &p = net_.node(producer);
        if ((p.layer->kind() == LayerKind::Conv ||
             p.layer->kind() == LayerKind::Fc) &&
            p.consumers == 1) {
            fuse_out[static_cast<size_t>(producer)] =
                static_cast<int>(i);
            fused_relu[i] = true;
        }
    }
    // A fused ReLU's gradient is written by its consumer's dx pass
    // into the node *below* the ReLU; resolve that indirection.
    auto grad_target = [&](int node) {
        if (node > 0 && fused_relu[static_cast<size_t>(node)])
            return net_.node(node).inputs[0];
        return node;
    };

    // ------------------------------------------------------ forward
    for (size_t i = 1; i < net_.numNodes(); i++) {
        int node = static_cast<int>(i);
        const auto &n = net_.node(node);
        LayerKind kind = n.layer->kind();
        Tensor &out = net_.activation(node);

        if (fused_relu[i])
            continue;   // folded into the producing conv/fc

        if (kind == LayerKind::Conv || kind == LayerKind::Fc) {
            const Tensor &x = net_.activation(n.inputs[0]);
            // Pack: read input through the policy, expand into the
            // per-core L2-resident scratch (whose writes are absorbed
            // locally and charged as the extra uop).
            {
                PassBuilder pb(ctx_, cfg, n.layer->name() + ".pack",
                               sampler.get());
                pb.stream({spec(n.inputs[0], false, false, false, 1)});
                record(n.layer->name() + ".pack", false, pb.run());
            }
            // GEMM: weight panels re-read per Mc rows.
            {
                std::vector<TensorShape> in_shapes{x.shape()};
                uint64_t macs = n.layer->forwardMacs(in_shapes);
                uint64_t wbytes = n.layer->weightBytes();
                Addr wbase = 0;
                if (kind == LayerKind::Conv) {
                    wbase = static_cast<const ConvLayer &>(*n.layer)
                                .weights()
                                .addrAt(0);
                } else {
                    wbase = static_cast<const FcLayer &>(*n.layer)
                                .weights()
                                .addrAt(0);
                }
                uint64_t m_rows =
                    wbytes ? macs / (wbytes / 4) : 0;
                PassBuilder pb(ctx_, cfg, n.layer->name() + ".gemm",
                               sampler.get());
                pb.gemmCompute(wbase, wbytes, m_rows);
                record(n.layer->name() + ".gemm", false, pb.run());
            }
            // Output write through the policy. With a fused ReLU the
            // producer writes the ReLU's sparse output directly
            // (zcomps-LTEZ fuses the comparison, costing no extra
            // uops).
            {
                int out_node = fuse_out[i] >= 0 ? fuse_out[i] : node;
                bool fused = fuse_out[i] >= 0 &&
                             cfg.policy == IoPolicy::Zcomp &&
                             compressible(net_.activation(out_node));
                PassBuilder pb(ctx_, cfg, n.layer->name() + ".out",
                               sampler.get());
                pb.stream({spec(out_node, false, true, fused,
                                fused ? 0 : 1)});
                record(n.layer->name() + ".out", false, pb.run());
            }
            continue;
        }

        // Streaming layers: inputs + output interleaved.
        std::vector<StreamSpec> specs;
        for (int in : n.inputs)
            specs.push_back(spec(in, false, false, false,
                                 computeUops(kind)));
        bool fused = kind == LayerKind::Relu &&
                     cfg.policy == IoPolicy::Zcomp &&
                     compressible(out);
        specs.push_back(spec(node, false, true, fused, fused ? 0 : 1));
        PassBuilder pb(ctx_, cfg, n.layer->name(), sampler.get());
        pb.stream(specs);
        record(n.layer->name(), false, pb.run());
    }

    if (!net_.training()) {
        ctx_.setTracePid(prev_pid);
        return result;
    }

    // ----------------------------------------------------- backward
    for (size_t i = net_.numNodes(); i-- > 1;) {
        int node = static_cast<int>(i);
        const auto &n = net_.node(node);
        LayerKind kind = n.layer->kind();
        Tensor &dy = *net_.gradient(node);

        if (fused_relu[i])
            continue;   // mask applied by the consumer's dx pass

        if (kind == LayerKind::Conv || kind == LayerKind::Fc) {
            const Tensor &x = net_.activation(n.inputs[0]);
            std::vector<TensorShape> in_shapes{x.shape()};
            uint64_t macs = n.layer->forwardMacs(in_shapes);
            uint64_t wbytes = n.layer->weightBytes();
            uint64_t m_rows = wbytes ? macs / (wbytes / 4) : 0;

            // dW: re-read dY and X (packed), accumulate into the
            // weight-gradient region (modeled over the weight panel).
            {
                PassBuilder pb(ctx_, cfg, n.layer->name() + ".dw",
                               sampler.get());
                pb.stream({spec(node, true, false, false, 1),
                           spec(n.inputs[0], false, false, false, 1)});
                Addr wbase =
                    kind == LayerKind::Conv
                        ? static_cast<const ConvLayer &>(*n.layer)
                              .weights()
                              .addrAt(0)
                        : static_cast<const FcLayer &>(*n.layer)
                              .weights()
                              .addrAt(0);
                pb.gemmCompute(wbase, wbytes, m_rows);
                record(n.layer->name() + ".dw", true, pb.run());
            }
            // dX: weight panels again, write the input gradient map.
            // When the input comes through a fused ReLU, the mask is
            // applied inline (reading the sparse ReLU output for the
            // mask) and the gradient lands below the ReLU.
            int dx_node = grad_target(n.inputs[0]);
            if (dx_node != 0) {
                PassBuilder pb(ctx_, cfg, n.layer->name() + ".dx",
                               sampler.get());
                Addr wbase =
                    kind == LayerKind::Conv
                        ? static_cast<const ConvLayer &>(*n.layer)
                              .weights()
                              .addrAt(0)
                        : static_cast<const FcLayer &>(*n.layer)
                              .weights()
                              .addrAt(0);
                pb.gemmCompute(wbase, wbytes, m_rows);
                std::vector<StreamSpec> dx_specs;
                if (dx_node != n.inputs[0]) {
                    // Mask source: the fused ReLU's sparse output.
                    dx_specs.push_back(
                        spec(n.inputs[0], false, false, false, 0));
                }
                dx_specs.push_back(spec(dx_node, true, true, false, 1));
                pb.stream(dx_specs);
                record(n.layer->name() + ".dx", true, pb.run());
            }
            continue;
        }

        // Streaming backward: read dY (and X where the derivative
        // needs it), write dX per input.
        (void)dy;
        std::vector<StreamSpec> specs;
        specs.push_back(
            spec(node, true, false, false, computeUops(kind)));
        if (kind == LayerKind::Relu || kind == LayerKind::MaxPool)
            specs.push_back(spec(n.inputs[0], false, false, false, 0));
        for (int in : n.inputs) {
            if (in == 0)
                continue;
            specs.push_back(spec(in, true, true, false, 1));
        }
        PassBuilder pb(ctx_, cfg, n.layer->name() + ".bwd",
                               sampler.get());
        pb.stream(specs);
        record(n.layer->name() + ".bwd", true, pb.run());
    }

    ctx_.setTracePid(prev_pid);
    return result;
}

} // namespace zcomp
