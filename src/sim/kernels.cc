#include "sim/kernels.hh"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/fault.hh"
#include "common/log.hh"
#include "isa/avx512.hh"
#include "zcomp/intrinsics.hh"

namespace zcomp {

const char *
reluImplName(ReluImpl impl)
{
    switch (impl) {
      case ReluImpl::Avx512Vec:
        return "avx512-vec";
      case ReluImpl::Avx512Comp:
        return "avx512-comp";
      case ReluImpl::Zcomp:
        return "zcomp";
    }
    return "?";
}

namespace {

/** Per-(core, sub-block) layout and per-vector compressed sizes. */
struct SubStream
{
    Chunk chunk;                    //!< element range + region window
    std::vector<uint8_t> nnzX;      //!< per-vector input NNZ
    std::vector<uint8_t> nnzY;      //!< per-vector output NNZ
};

struct ExperimentState
{
    Buffer *x = nullptr;
    Buffer *y = nullptr;
    Buffer *xMask = nullptr;        //!< avx512-comp header arrays
    Buffer *yMask = nullptr;
    std::vector<std::vector<SubStream>> subs;   //!< [core][sub]
    StreamStats xStream;
    StreamStats yStream;
};

constexpr uint64_t hdrB = 2;        //!< fp32 header bytes

/**
 * Compressed-window layout with header slack.
 *
 * Small sub-chunks (down to one vector) cannot amortize interleaved
 * headers locally: a dense vector needs 66 bytes. Section 4.1's
 * fallback for unknown compressibility is to enlarge the allocation
 * by the metadata size, so every sub-chunk window gets hdrB bytes of
 * slack per vector and region offsets shift accordingly.
 */
size_t
slackOffset(const Chunk &sub)
{
    return sub.regionOffset + (sub.elemBegin / 16) * hdrB;
}

size_t
slackBytes(const Chunk &sub)
{
    return sub.regionBytes + (sub.elems() / 16) * hdrB;
}

/** Region bytes for n elements including per-vector header slack. */
size_t
regionWithSlack(size_t n)
{
    return n * 4 + (n / 16) * hdrB;
}

/**
 * Functional pass: build compressed/uncompressed X and Y contents and
 * the per-vector NNZ records for the timing replay.
 */
ExperimentState
prepare(ExecContext &ctx, ReluImpl impl, const ReluExperimentConfig &cfg)
{
    fatal_if(cfg.elems == 0 || cfg.elems % 16 != 0,
             "relu experiment needs a multiple of 16 elements, got %zu",
             cfg.elems);
    fatal_if(cfg.subBlocks < 1 || cfg.subBlocks > 8,
             "subBlocks must be in [1, 8]");

    const int cores = ctx.config().numCores;
    const size_t n = cfg.elems;

    SnapshotParams sp;
    sp.sparsity = cfg.sparsity;
    sp.negFraction = cfg.negFraction;
    std::vector<float> raw = makeActivations(n, sp, cfg.seed);

    ExperimentState st;
    st.x = &ctx.vs().alloc("relu.x", regionWithSlack(n),
                           AllocClass::FeatureMap);
    st.y = &ctx.vs().alloc("relu.y", regionWithSlack(n),
                           AllocClass::FeatureMap);
    if (impl == ReluImpl::Avx512Comp ||
        (impl == ReluImpl::Zcomp && cfg.separateHeader)) {
        st.xMask = &ctx.vs().alloc("relu.xmask", (n / 16) * hdrB,
                                   AllocClass::FeatureMap);
        st.yMask = &ctx.vs().alloc("relu.ymask", (n / 16) * hdrB,
                                   AllocClass::FeatureMap);
    }

    auto coreChunks = partitionElements(n, cores, ElemType::F32);
    st.subs.resize(static_cast<size_t>(cores));

    for (int c = 0; c < cores; c++) {
        auto subChunks = subPartition(coreChunks[static_cast<size_t>(c)],
                                      cfg.subBlocks, ElemType::F32);
        for (const Chunk &sub : subChunks) {
            SubStream ss;
            ss.chunk = sub;
            if (sub.elems() == 0) {
                st.subs[static_cast<size_t>(c)].push_back(std::move(ss));
                continue;
            }
            switch (impl) {
              case ReluImpl::Avx512Vec: {
                // X plain; Y = relu(X) plain.
                std::memcpy(st.x->host + sub.regionOffset,
                            raw.data() + sub.elemBegin, sub.elems() * 4);
                float *yp = reinterpret_cast<float *>(
                    st.y->host + sub.regionOffset);
                for (size_t i = 0; i < sub.elems(); i++) {
                    float v = raw[sub.elemBegin + i];
                    yp[i] = v > 0 ? v : 0.0f;
                }
                break;
              }
              case ReluImpl::Avx512Comp: {
                // Separate mask arrays indexed by global vector id.
                CompressedWriter wx(
                    st.x->host + sub.regionOffset, sub.regionBytes,
                    st.xMask->host + (sub.elemBegin / 16) * hdrB,
                    (sub.elems() / 16) * hdrB, ElemType::F32, Ccf::EQZ);
                CompressedWriter wy(
                    st.y->host + sub.regionOffset, sub.regionBytes,
                    st.yMask->host + (sub.elemBegin / 16) * hdrB,
                    (sub.elems() / 16) * hdrB, ElemType::F32, Ccf::LTEZ);
                for (size_t i = sub.elemBegin; i < sub.elemEnd; i += 16) {
                    Vec512 v = Vec512::load(raw.data() + i);
                    wx.put(v);
                    wy.put(v);
                }
                ss.nnzX = wx.nnzRecord();
                ss.nnzY = wy.nnzRecord();
                st.xStream += wx.stats();
                st.yStream += wy.stats();
                break;
              }
              case ReluImpl::Zcomp: {
                if (cfg.separateHeader) {
                    // Section 3.2/4.1 option 2: payload stays within
                    // the original allocation, headers live in their
                    // own store with a decoupled auto-incremented
                    // pointer (no memory-violation risk).
                    CompressedWriter wx(
                        st.x->host + sub.regionOffset, sub.regionBytes,
                        st.xMask->host + (sub.elemBegin / 16) * hdrB,
                        (sub.elems() / 16) * hdrB, ElemType::F32,
                        Ccf::EQZ);
                    CompressedWriter wy(
                        st.y->host + sub.regionOffset, sub.regionBytes,
                        st.yMask->host + (sub.elemBegin / 16) * hdrB,
                        (sub.elems() / 16) * hdrB, ElemType::F32,
                        Ccf::LTEZ);
                    for (size_t i = sub.elemBegin; i < sub.elemEnd;
                         i += 16) {
                        Vec512 v = Vec512::load(raw.data() + i);
                        wx.put(v);
                        wy.put(v);
                    }
                    ss.nnzX = wx.nnzRecord();
                    ss.nnzY = wy.nnzRecord();
                    st.xStream += wx.stats();
                    st.yStream += wy.stats();
                    break;
                }
                // Interleaved-header streams within the original
                // allocation windows (Section 4.1).
                CompressedWriter wx(st.x->host + slackOffset(sub),
                                    slackBytes(sub), ElemType::F32,
                                    Ccf::EQZ);
                CompressedWriter wy(st.y->host + slackOffset(sub),
                                    slackBytes(sub), ElemType::F32,
                                    Ccf::LTEZ);
                for (size_t i = sub.elemBegin; i < sub.elemEnd; i += 16) {
                    Vec512 v = Vec512::load(raw.data() + i);
                    wx.put(v);
                    wy.put(v);
                }
                ss.nnzX = wx.nnzRecord();
                ss.nnzY = wy.nnzRecord();
                st.xStream += wx.stats();
                st.yStream += wy.stats();
                break;
              }
            }
            st.subs[static_cast<size_t>(c)].push_back(std::move(ss));
        }
    }

    if (cfg.verify) {
        // Expanding Y must reproduce relu(raw) exactly.
        for (int c = 0; c < cores; c++) {
            for (const SubStream &ss : st.subs[static_cast<size_t>(c)]) {
                if (ss.chunk.elems() == 0)
                    continue;
                const Chunk &sub = ss.chunk;
                for (size_t i = sub.elemBegin; i < sub.elemEnd; i++) {
                    float expect = raw[i] > 0 ? raw[i] : 0.0f;
                    float got = 0.0f;
                    if (impl == ReluImpl::Avx512Vec) {
                        got = reinterpret_cast<float *>(
                            st.y->host +
                            sub.regionOffset)[i - sub.elemBegin];
                        panic_if(got != expect, "vec mismatch at %zu", i);
                    }
                }
                if (impl == ReluImpl::Zcomp && !cfg.separateHeader) {
                    CompressedReader r(st.y->host + slackOffset(sub),
                                       slackBytes(sub), ElemType::F32);
                    for (size_t i = sub.elemBegin; i < sub.elemEnd;
                         i += 16) {
                        Vec512 v = r.get();
                        for (int l = 0; l < 16; l++) {
                            float expect = raw[i + l] > 0 ? raw[i + l]
                                                          : 0.0f;
                            panic_if(v.lane<float>(l) != expect,
                                     "zcomp mismatch at %zu", i);
                        }
                    }
                }
            }
        }
    }
    return st;
}

/** Pseudo-PC ids: keep per-sub streams distinct for the prefetcher. */
uint16_t
pcOf(int sub, int which)
{
    return static_cast<uint16_t>(1 + sub * 8 + which);
}

/** Build the store (activation) pass trace. */
TracePhase
buildStorePhase(const ExperimentState &st, ReluImpl impl,
                const ReluExperimentConfig &cfg, int cores, int logic_lat)
{
    TracePhase phase("relu-store", cores);
    for (int c = 0; c < cores; c++) {
        const auto &subs = st.subs[static_cast<size_t>(c)];
        CoreTrace &t = phase.perCore[static_cast<size_t>(c)];

        size_t max_vecs = 0;
        for (const auto &ss : subs)
            max_vecs = std::max(max_vecs, ss.chunk.elems() / 16);

        std::vector<size_t> xOff(subs.size(), 0), yOff(subs.size(), 0);
        for (size_t i = 0; i < max_vecs; i++) {
            for (size_t s = 0; s < subs.size(); s++) {
                const SubStream &ss = subs[s];
                if (i >= ss.chunk.elems() / 16)
                    continue;
                const Chunk &sub = ss.chunk;
                size_t gvec = sub.elemBegin / 16 + i;
                switch (impl) {
                  case ReluImpl::Avx512Vec: {
                    // vmovups; vmaxps; vmovups; loop.
                    t.push_back(TraceOp::load(
                        st.x->addrAt(sub.regionOffset + i * 64), 64, 1,
                        pcOf(static_cast<int>(s), 0)));
                    t.push_back(TraceOp::store(
                        st.y->addrAt(sub.regionOffset + i * 64), 64, 4,
                        pcOf(static_cast<int>(s), 1)));
                    break;
                  }
                  case ReluImpl::Avx512Comp: {
                    uint32_t nx = ss.nnzX[i], ny = ss.nnzY[i];
                    // headers[i] load (independent address).
                    t.push_back(TraceOp::load(
                        st.xMask->addrAt(gvec * hdrB),
                        static_cast<uint32_t>(hdrB), 1,
                        pcOf(static_cast<int>(s), 0)));
                    // kmov+vexpandload+popcnt+index add.
                    t.push_back(TraceOp::load(
                        st.x->addrAt(sub.regionOffset + xOff[s]), nx * 4,
                        6, pcOf(static_cast<int>(s), 1)));
                    // vcmp+popcnt+vcompressstore+index add.
                    t.push_back(TraceOp::store(
                        st.y->addrAt(sub.regionOffset + yOff[s]), ny * 4,
                        7, pcOf(static_cast<int>(s), 2)));
                    // headers store + loop.
                    t.push_back(TraceOp::store(
                        st.yMask->addrAt(gvec * hdrB),
                        static_cast<uint32_t>(hdrB), 3,
                        pcOf(static_cast<int>(s), 3)));
                    xOff[s] += nx * 4;
                    yOff[s] += ny * 4;
                    break;
                  }
                  case ReluImpl::Zcomp: {
                    uint32_t nx = ss.nnzX[i], ny = ss.nnzY[i];
                    bool sep = cfg.separateHeader;
                    if (sep) {
                        // Header reads/writes have statically-known
                        // addresses (fixed reg3 stride): independent
                        // accesses issued as part of the same
                        // instruction (no extra uops).
                        t.push_back(TraceOp::load(
                            st.xMask->addrAt(gvec * hdrB),
                            static_cast<uint32_t>(hdrB), 0,
                            pcOf(static_cast<int>(s), 2)));
                    }
                    // zcompl X payload (chained via reg2; interleaved
                    // mode also carries the header inline).
                    TraceOp ld = TraceOp::load(
                        st.x->addrAt(sep ? sub.regionOffset + xOff[s]
                                         : slackOffset(sub) + xOff[s]),
                        (sep ? 0 : static_cast<uint32_t>(hdrB)) +
                            nx * 4,
                        1, pcOf(static_cast<int>(s), 0));
                    ld.stream = static_cast<int8_t>(2 * s);
                    ld.chainLat = static_cast<uint8_t>(logic_lat);
                    ld.zcompUnit = true;
                    t.push_back(ld);
                    // zcomps Y (LTEZ fused ReLU) + loop overhead.
                    TraceOp stp = TraceOp::store(
                        st.y->addrAt(sep ? sub.regionOffset + yOff[s]
                                         : slackOffset(sub) + yOff[s]),
                        (sep ? 0 : static_cast<uint32_t>(hdrB)) +
                            ny * 4,
                        3, pcOf(static_cast<int>(s), 1));
                    stp.stream = static_cast<int8_t>(2 * s + 1);
                    stp.chainLat = static_cast<uint8_t>(logic_lat);
                    stp.zcompUnit = true;
                    t.push_back(stp);
                    if (sep) {
                        TraceOp hw = TraceOp::store(
                            st.yMask->addrAt(gvec * hdrB),
                            static_cast<uint32_t>(hdrB), 0,
                            pcOf(static_cast<int>(s), 3));
                        t.push_back(hw);
                    }
                    xOff[s] += (sep ? 0 : hdrB) + nx * 4;
                    yOff[s] += (sep ? 0 : hdrB) + ny * 4;
                    break;
                  }
                }
            }
        }
        (void)cfg;
    }
    return phase;
}

/** Build the retrieve (consumer) pass trace. */
TracePhase
buildRetrievePhase(const ExperimentState &st, ReluImpl impl,
                   const ReluExperimentConfig &cfg, int cores,
                   int logic_lat)
{
    TracePhase phase("relu-retrieve", cores);
    for (int c = 0; c < cores; c++) {
        const auto &subs = st.subs[static_cast<size_t>(c)];
        CoreTrace &t = phase.perCore[static_cast<size_t>(c)];

        size_t max_vecs = 0;
        for (const auto &ss : subs)
            max_vecs = std::max(max_vecs, ss.chunk.elems() / 16);

        std::vector<size_t> yOff(subs.size(), 0);
        for (size_t i = 0; i < max_vecs; i++) {
            for (size_t s = 0; s < subs.size(); s++) {
                const SubStream &ss = subs[s];
                if (i >= ss.chunk.elems() / 16)
                    continue;
                const Chunk &sub = ss.chunk;
                size_t gvec = sub.elemBegin / 16 + i;
                switch (impl) {
                  case ReluImpl::Avx512Vec: {
                    // vmovups + consume + loop.
                    t.push_back(TraceOp::load(
                        st.y->addrAt(sub.regionOffset + i * 64), 64, 4,
                        pcOf(static_cast<int>(s), 4)));
                    break;
                  }
                  case ReluImpl::Avx512Comp: {
                    uint32_t ny = ss.nnzY[i];
                    t.push_back(TraceOp::load(
                        st.yMask->addrAt(gvec * hdrB),
                        static_cast<uint32_t>(hdrB), 1,
                        pcOf(static_cast<int>(s), 4)));
                    // kmov+vexpandload+popcnt+add+consume+loop.
                    t.push_back(TraceOp::load(
                        st.y->addrAt(sub.regionOffset + yOff[s]), ny * 4,
                        8, pcOf(static_cast<int>(s), 5)));
                    yOff[s] += ny * 4;
                    break;
                  }
                  case ReluImpl::Zcomp: {
                    uint32_t ny = ss.nnzY[i];
                    bool sep = cfg.separateHeader;
                    if (sep) {
                        t.push_back(TraceOp::load(
                            st.yMask->addrAt(gvec * hdrB),
                            static_cast<uint32_t>(hdrB), 0,
                            pcOf(static_cast<int>(s), 5)));
                    }
                    // zcompl + consume + loop.
                    TraceOp ld = TraceOp::load(
                        st.y->addrAt(sep ? sub.regionOffset + yOff[s]
                                         : slackOffset(sub) + yOff[s]),
                        (sep ? 0 : static_cast<uint32_t>(hdrB)) +
                            ny * 4,
                        4, pcOf(static_cast<int>(s), 4));
                    ld.stream = static_cast<int8_t>(2 * s);
                    ld.chainLat = static_cast<uint8_t>(logic_lat);
                    ld.zcompUnit = true;
                    t.push_back(ld);
                    yOff[s] += (sep ? 0 : hdrB) + ny * 4;
                    break;
                  }
                }
            }
        }
    }
    return phase;
}

} // namespace

ReluExperimentResult
runReluExperiment(ExecContext &ctx, ReluImpl impl,
                  const ReluExperimentConfig &cfg)
{
    const int cores = ctx.config().numCores;
    const int logic_lat = ctx.config().zcomp.logicLatency;

    // See NetworkSim::run(): fault before any state is prepared.
    FaultInjector::global().maybeInject(faultsite::KernelTransient);

    ExperimentState st = prepare(ctx, impl, cfg);
    TracePhase store = buildStorePhase(st, impl, cfg, cores, logic_lat);
    TracePhase retrieve =
        buildRetrievePhase(st, impl, cfg, cores, logic_lat);

    if (cfg.warmup) {
        ctx.warm(store);
        ctx.warm(retrieve);
    }

    ReluExperimentResult res;
    int repeats = std::max(1, cfg.repeats);
    for (int rep = 0; rep < repeats; rep++) {
        res.store += ctx.run(store);
        res.retrieve += ctx.run(retrieve);
    }
    res.xStream = st.xStream;
    res.yStream = st.yStream;
    return res;
}

KernelBody
reluStoreBody(ReluImpl impl)
{
    KernelBody body;
    switch (impl) {
      case ReluImpl::Avx512Vec:
        body.name = "relu-store avx512-vec";
        body.instrs = {{InstrClass::VecLoad, 1},
                       {InstrClass::VecMax, 1},
                       {InstrClass::VecStore, 1},
                       {InstrClass::LoopOverhead, 1}};
        body.vecRegs = 2;       // tvec, zero vector
        body.scalarRegs = 3;    // X, Y, i
        break;
      case ReluImpl::Avx512Comp:
        // Figure 10 loop body.
        body.name = "relu-store avx512-comp";
        body.instrs = {{InstrClass::VecLoad, 1},
                       {InstrClass::VecCmpMask, 1},
                       {InstrClass::KMov, 1},
                       {InstrClass::Popcnt, 1},
                       {InstrClass::VecCompressStore, 1},
                       {InstrClass::ScalarAlu, 1},
                       {InstrClass::ScalarStore, 1},
                       {InstrClass::LoopOverhead, 1}};
        body.vecRegs = 2;       // tvec, zvec
        body.maskRegs = 1;
        body.scalarRegs = 6;    // X, Y, headers, index, nnz_cnt, i
        break;
      case ReluImpl::Zcomp:
        // Figure 8 loop body: one intrinsic replaces the store.
        body.name = "relu-store zcomp";
        body.instrs = {{InstrClass::VecLoad, 1},
                       {InstrClass::ZcompS, 1},
                       {InstrClass::LoopOverhead, 1}};
        body.vecRegs = 1;       // tvec
        body.scalarRegs = 3;    // X, Y_ptr, i
        break;
    }
    return body;
}

KernelBody
reluRetrieveBody(ReluImpl impl)
{
    KernelBody body;
    switch (impl) {
      case ReluImpl::Avx512Vec:
        body.name = "retrieve avx512-vec";
        body.instrs = {{InstrClass::VecLoad, 1},
                       {InstrClass::LoopOverhead, 1}};
        body.vecRegs = 1;
        body.scalarRegs = 2;
        break;
      case ReluImpl::Avx512Comp:
        // Figure 11 loop body.
        body.name = "retrieve avx512-comp";
        body.instrs = {{InstrClass::ScalarLoad, 1},
                       {InstrClass::KMov, 1},
                       {InstrClass::VecExpandLoad, 1},
                       {InstrClass::Popcnt, 1},
                       {InstrClass::ScalarAlu, 1},
                       {InstrClass::LoopOverhead, 1}};
        body.vecRegs = 1;
        body.maskRegs = 1;
        body.scalarRegs = 5;    // X, headers, index, nnz_cnt, i
        break;
      case ReluImpl::Zcomp:
        // Figure 9 loop body.
        body.name = "retrieve zcomp";
        body.instrs = {{InstrClass::ZcompL, 1},
                       {InstrClass::LoopOverhead, 1}};
        body.vecRegs = 1;
        body.scalarRegs = 2;    // X_ptr, i
        break;
    }
    return body;
}

} // namespace zcomp
