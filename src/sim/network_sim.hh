/**
 * @file
 * NetworkSim - replays a functionally-executed Network through the
 * timing model under a cross-layer I/O policy.
 *
 * Policies (the three systems Figures 13/14 compare):
 *  - Uncompressed : plain AVX512 loads/stores of every tensor.
 *  - Avx512Comp   : software compression of cross-layer tensors with
 *                   vcompressstoreu/vexpandloadu and explicit mask
 *                   arrays (Figures 10/11 style).
 *  - Zcomp        : the proposed instructions with interleaved
 *                   headers; ReLU stores fuse the LTEZ comparison.
 *
 * Only cross-layer data (feature maps and gradient maps) is
 * compressed; inputs, weights and within-layer scratch always move
 * uncompressed, exactly as Section 4 prescribes.
 *
 * Timing model per layer (see DESIGN.md Section 4.3):
 *  - streaming layers (ReLU/LRN/dropout/eltwise/softmax/concat) read
 *    their inputs and write their output vector-by-vector;
 *  - pooling reads the input once (window reuse is L1-resident) and
 *    writes the smaller output;
 *  - conv/FC run three phases: pack (read input via the policy,
 *    expand into a per-core L2-resident scratch), GEMM (weight panels
 *    re-read once per Mc-row block, compute charged at 2 uops per
 *    16-lane FMA = 32 MACs/cycle/core peak), and output write (via
 *    the policy);
 *  - the backward pass mirrors this with gradient maps: dW needs
 *    dY + packed X, dX needs the weight panels again and writes a
 *    gradient map.
 * Every layer pass ends in a barrier (sync time in the Figure 2
 * breakdown).
 */

#ifndef ZCOMP_SIM_NETWORK_SIM_HH
#define ZCOMP_SIM_NETWORK_SIM_HH

#include <string>
#include <unordered_map>

#include "dnn/network.hh"
#include "sim/exec_context.hh"

namespace zcomp {

enum class IoPolicy
{
    Uncompressed = 0,
    Avx512Comp,
    Zcomp,
};

constexpr int numIoPolicies = 3;

/** Stable policy label ("uncompressed"/"avx512-comp"/"zcomp"), also
 *  the matching CompressionScheme name; panics on an out-of-range
 *  value so a bad policy can never reach report rows or result-cache
 *  keys under a shared "?" label. */
const char *ioPolicyName(IoPolicy p);

/** Reverse of ioPolicyName(); false (out untouched) on an unknown
 *  name, so callers can report bad input in their own terms. */
bool ioPolicyFromName(const std::string &name, IoPolicy &out);

struct NetworkSimConfig
{
    IoPolicy policy = IoPolicy::Uncompressed;
    int subBlocks = 8;          //!< unroll streams per thread
    size_t gemmBlockRows = 2048; //!< Mc: rows per weight-panel re-read
    bool coldCaches = true;     //!< resetAll() before the run

    /**
     * Label for this run's Perfetto track group ("<model> (train)");
     * empty uses the network's name. Only consulted when a global
     * TraceWriter is installed (--trace).
     */
    std::string traceLabel;
};

/** Per-layer-pass accounting (also powers the examples). */
struct LayerPassStats
{
    std::string name;
    bool backward = false;
    RunStats stats;
};

struct NetworkSimResult
{
    RunStats total;
    std::vector<LayerPassStats> layers;

    double cycles() const { return total.cycles; }

    /** Aggregate traffic across all links incl. DRAM (Figure 13). */
    uint64_t trafficBytes() const { return total.traffic.totalBytes(); }
};

class NetworkSim
{
  public:
    /**
     * @param net a built Network whose functional forward (and, for
     *        training, backward) pass has already run, so tensor
     *        values - and hence compressed sizes - are real.
     */
    NetworkSim(ExecContext &ctx, Network &net);

    /** Replay one full pass (forward, plus backward when training). */
    NetworkSimResult run(const NetworkSimConfig &cfg);

  private:
    struct Impl;

    /**
     * One full scan of a tensor's values: per-16-lane-vector nonzero
     * counts plus the derived sparsity. Tensor values are frozen once
     * the functional pass has run, so the scan is computed once per
     * tensor and shared by every policy run on this NetworkSim (the
     * same tensor streams in several passes of each of the three
     * policy runs; rescanning per emitted vector dominated trace
     * construction).
     */
    struct TensorScan
    {
        std::vector<uint16_t> nnz;  //!< per elems/16 full vectors
        double sparsity = 0.0;      //!< == Tensor::sparsity() exactly
    };

    const TensorScan &scanFor(const Tensor &t);

    ExecContext &ctx_;
    Network &net_;
    std::vector<Buffer *> maskArena_;   //!< avx512-comp header arrays
    std::vector<Buffer *> scratch_;     //!< per-core pack scratch

    Buffer &maskFor(int node, bool grad);
    Buffer &scratchFor(int core);

    std::vector<Buffer *> gradMaskArena_;
    // Determinism note: this map is a pure memo keyed by tensor
    // identity - only ever probed with find()/emplace(), never
    // iterated - so its (pointer-hashed, run-varying) internal order
    // cannot reach simulated state or study output. The zcomp_lint
    // unordered-iteration rule enforces exactly this invariant.
    std::unordered_map<const Tensor *, TensorScan> scans_;
};

} // namespace zcomp

#endif // ZCOMP_SIM_NETWORK_SIM_HH
