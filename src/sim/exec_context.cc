#include "sim/exec_context.hh"

#include <stdexcept>

#include "common/log.hh"
#include "common/stats.hh"
#include "common/trace_writer.hh"

namespace zcomp {

namespace {

HierSnapshot
diff(const HierSnapshot &after, const HierSnapshot &before)
{
    HierSnapshot d;
    d.coreL1Bytes = after.coreL1Bytes - before.coreL1Bytes;
    d.l1L2Bytes = after.l1L2Bytes - before.l1L2Bytes;
    d.l2L3Bytes = after.l2L3Bytes - before.l2L3Bytes;
    d.l3DramBytes = after.l3DramBytes - before.l3DramBytes;
    d.l1Hits = after.l1Hits - before.l1Hits;
    d.l1Misses = after.l1Misses - before.l1Misses;
    d.l2Hits = after.l2Hits - before.l2Hits;
    d.l2Misses = after.l2Misses - before.l2Misses;
    d.l3Hits = after.l3Hits - before.l3Hits;
    d.l3Misses = after.l3Misses - before.l3Misses;
    d.l2PrefIssued = after.l2PrefIssued - before.l2PrefIssued;
    d.l2PrefUseful = after.l2PrefUseful - before.l2PrefUseful;
    d.l2PrefUnused = after.l2PrefUnused - before.l2PrefUnused;
    d.l2DemandMissesBelow =
        after.l2DemandMissesBelow - before.l2DemandMissesBelow;
    d.nocHops = after.nocHops - before.nocHops;
    return d;
}

CycleBreakdown
diff(const CycleBreakdown &after, const CycleBreakdown &before)
{
    CycleBreakdown d;
    d.compute = after.compute - before.compute;
    d.memory = after.memory - before.memory;
    d.sync = after.sync - before.sync;
    return d;
}

} // namespace

RunStats &
RunStats::operator+=(const RunStats &o)
{
    cycles += o.cycles;
    breakdown += o.breakdown;
    traffic.coreL1Bytes += o.traffic.coreL1Bytes;
    traffic.l1L2Bytes += o.traffic.l1L2Bytes;
    traffic.l2L3Bytes += o.traffic.l2L3Bytes;
    traffic.l3DramBytes += o.traffic.l3DramBytes;
    traffic.l1Hits += o.traffic.l1Hits;
    traffic.l1Misses += o.traffic.l1Misses;
    traffic.l2Hits += o.traffic.l2Hits;
    traffic.l2Misses += o.traffic.l2Misses;
    traffic.l3Hits += o.traffic.l3Hits;
    traffic.l3Misses += o.traffic.l3Misses;
    traffic.l2PrefIssued += o.traffic.l2PrefIssued;
    traffic.l2PrefUseful += o.traffic.l2PrefUseful;
    traffic.l2PrefUnused += o.traffic.l2PrefUnused;
    traffic.l2DemandMissesBelow += o.traffic.l2DemandMissesBelow;
    traffic.nocHops += o.traffic.nocHops;
    return *this;
}

Json
runStatsToJson(const RunStats &s)
{
    Json j = Json::object();
    j["cycles"] = s.cycles;

    Json &bd = j["breakdown"];
    bd = Json::object();
    bd["compute"] = s.breakdown.compute;
    bd["memory"] = s.breakdown.memory;
    bd["sync"] = s.breakdown.sync;

    const HierSnapshot &t = s.traffic;
    Json &tr = j["traffic"];
    tr = Json::object();
    tr["coreL1Bytes"] = t.coreL1Bytes;
    tr["l1L2Bytes"] = t.l1L2Bytes;
    tr["l2L3Bytes"] = t.l2L3Bytes;
    tr["l3DramBytes"] = t.l3DramBytes;
    tr["onChipBytes"] = t.onChipBytes();
    tr["totalBytes"] = t.totalBytes();
    tr["l1Hits"] = t.l1Hits;
    tr["l1Misses"] = t.l1Misses;
    tr["l2Hits"] = t.l2Hits;
    tr["l2Misses"] = t.l2Misses;
    tr["l3Hits"] = t.l3Hits;
    tr["l3Misses"] = t.l3Misses;
    tr["l2PrefIssued"] = t.l2PrefIssued;
    tr["l2PrefUseful"] = t.l2PrefUseful;
    tr["l2PrefUnused"] = t.l2PrefUnused;
    tr["l2DemandMissesBelow"] = t.l2DemandMissesBelow;
    tr["nocHops"] = t.nocHops;
    return j;
}

namespace {

/** Fetch an object member that must be a number; throws otherwise. */
const Json &
numField(const Json &obj, const char *key)
{
    const Json *p = obj.isObject() ? obj.find(key) : nullptr;
    if (!p || !p->isNumber())
        throw std::runtime_error(
            format("RunStats JSON: missing numeric field '%s'", key));
    return *p;
}

} // namespace

RunStats
runStatsFromJson(const Json &j)
{
    if (!j.isObject())
        throw std::runtime_error("RunStats JSON: not an object");
    RunStats s;
    s.cycles = numField(j, "cycles").asDouble();

    const Json *bd = j.find("breakdown");
    if (!bd)
        throw std::runtime_error("RunStats JSON: missing breakdown");
    s.breakdown.compute = numField(*bd, "compute").asDouble();
    s.breakdown.memory = numField(*bd, "memory").asDouble();
    s.breakdown.sync = numField(*bd, "sync").asDouble();

    const Json *tr = j.find("traffic");
    if (!tr)
        throw std::runtime_error("RunStats JSON: missing traffic");
    HierSnapshot &t = s.traffic;
    t.coreL1Bytes = numField(*tr, "coreL1Bytes").asUint();
    t.l1L2Bytes = numField(*tr, "l1L2Bytes").asUint();
    t.l2L3Bytes = numField(*tr, "l2L3Bytes").asUint();
    t.l3DramBytes = numField(*tr, "l3DramBytes").asUint();
    t.l1Hits = numField(*tr, "l1Hits").asUint();
    t.l1Misses = numField(*tr, "l1Misses").asUint();
    t.l2Hits = numField(*tr, "l2Hits").asUint();
    t.l2Misses = numField(*tr, "l2Misses").asUint();
    t.l3Hits = numField(*tr, "l3Hits").asUint();
    t.l3Misses = numField(*tr, "l3Misses").asUint();
    t.l2PrefIssued = numField(*tr, "l2PrefIssued").asUint();
    t.l2PrefUseful = numField(*tr, "l2PrefUseful").asUint();
    t.l2PrefUnused = numField(*tr, "l2PrefUnused").asUint();
    t.l2DemandMissesBelow =
        numField(*tr, "l2DemandMissesBelow").asUint();
    t.nocHops = numField(*tr, "nocHops").asUint();
    return s;
}

ExecContext::ExecContext(const ArchConfig &cfg) : sys_(cfg)
{
}

ExecContext::ExecContext(const ArchConfig &cfg, BumpArena *arena)
    : vs_(0x10000, /*allocate_host=*/true, arena), sys_(cfg)
{
}

RunStats
ExecContext::run(const TracePhase &phase)
{
    HierSnapshot before = sys_.mem().snapshot();
    CycleBreakdown bd_before = sys_.breakdown();
    PhaseResult r = sys_.runPhase(phase);
    RunStats stats;
    stats.cycles = r.cycles;
    stats.traffic = diff(sys_.mem().snapshot(), before);
    stats.breakdown = diff(sys_.breakdown(), bd_before);

    // One span per active core on the simulated-cycle timebase; the
    // gap to the next phase's start is that core's barrier wait.
    TraceWriter *tw = TraceWriter::global();
    if (tw && tracePid_ >= 0) {
        for (size_t c = 0; c < r.coreEndTimes.size(); c++) {
            if (c >= phase.perCore.size() || phase.perCore[c].empty())
                continue;
            Json args = Json::object();
            args["ops"] = phase.perCore[c].size();
            tw->span(tracePid_, static_cast<int>(c), r.startTime,
                     r.coreEndTimes[c] - r.startTime, phase.name,
                     "sim", args);
        }
    }
    return stats;
}

void
ExecContext::warm(const TracePhase &phase)
{
    sys_.runPhase(phase);
}

std::unique_ptr<MetricsSampler>
ExecContext::makeMetricsSampler(const std::string &cell,
                                const std::string &policy)
{
    MetricsSink *sink = MetricsSink::global();
    if (!sink)
        return nullptr;
    auto s = std::make_unique<MetricsSampler>(
        sink, cell, policy, sink->intervalCycles(),
        sys_.config().numCores,
        [this](StatGroup &g) { sys_.dumpStats(g); });
    // The probe patterns sum over dumpStats() subtrees; leaf names
    // must come from the registered addCounter() inventory (enforced
    // by the zcomp_lint metrics-names rule).
    s->addCounterProbe("mem.dram.bytes_read");
    s->addCounterProbe("mem.dram.bytes_written");
    s->addCounterProbe("mem.links.l3_dram_bytes");
    s->addCounterProbe("mem.l1_*.hits");
    s->addCounterProbe("mem.l1_*.misses");
    s->addCounterProbe("mem.l2_*.hits");
    s->addCounterProbe("mem.l2_*.misses");
    s->addCounterProbe("mem.l3.hits");
    s->addCounterProbe("mem.l3.misses");
    s->addCounterProbe("core*.zcomp_busy_cycles");
    s->addCounterProbe("mem.noc.hops");
    s->setTracePid(tracePid_);
    s->rebase(sys_.now());
    return s;
}

} // namespace zcomp
