/**
 * @file
 * The ReLU activation-layer kernels the paper evaluates in Figure 12,
 * in three implementations:
 *
 *  - avx512-vec  : the uncompressed AVX512 baseline (load, vmaxps,
 *                  store; retrieval is a plain vector load).
 *  - avx512-comp : software compression with existing AVX512
 *                  vcompressstoreu/vexpandloadu and explicit mask
 *                  arrays (Figures 10 and 11).
 *  - zcomp       : the proposed instructions, ReLU fused into zcomps
 *                  via the LTEZ condition (Figures 8 and 9).
 *
 * Each experiment runs two barrier-separated passes over a snapshot-
 * initialized feature map X:
 *   store pass    - read X, apply ReLU, write Y (compressed or not)
 *   retrieve pass - the consuming layer reads Y back.
 * In the compression-enabled implementations X itself is stored
 * compressed (it is cross-layer data produced by the previous layer),
 * exactly as a mid-network layer would see it.
 *
 * Every kernel executes functionally on host memory (values are
 * checked in tests) and emits a compact per-core trace replayed by the
 * timing model. Parallelization uses the partitioned-chunk strategy of
 * Section 4.3 with `subBlocks` independent streams per thread
 * (sub-block unrolling), matching the compiler unrolling of the
 * baseline.
 */

#ifndef ZCOMP_SIM_KERNELS_HH
#define ZCOMP_SIM_KERNELS_HH

#include "isa/latency.hh"
#include "sim/exec_context.hh"
#include "workload/snapshot.hh"
#include "zcomp/partition.hh"

namespace zcomp {

enum class ReluImpl
{
    Avx512Vec = 0,
    Avx512Comp,
    Zcomp,
};

constexpr int numReluImpls = 3;

const char *reluImplName(ReluImpl impl);

struct ReluExperimentConfig
{
    size_t elems = 0;           //!< fp32 elements, multiple of 16
    double sparsity = 0.53;     //!< input snapshot zero fraction
    double negFraction = 0.05;  //!< negative values for ReLU to clamp
    int subBlocks = 8;          //!< unroll streams per thread (<= 8),
                                //!< matching compiler unrolling (S4.3)
    uint64_t seed = 1;
    bool warmup = true;         //!< untimed priming pass first
    bool verify = false;        //!< check functional results
    int repeats = 1;            //!< timed store+retrieve iterations
                                //!< (amortizes startup on tiny maps)
    bool separateHeader = false; //!< zcomp only: decoupled header
                                 //!< store (Section 3.2)
};

struct ReluExperimentResult
{
    RunStats store;         //!< activation (write) pass
    RunStats retrieve;      //!< consumer (read) pass
    StreamStats xStream;    //!< input compression stats (if any)
    StreamStats yStream;    //!< output compression stats (if any)

    RunStats
    total() const
    {
        RunStats t = store;
        t += retrieve;
        return t;
    }
};

/** Run the two-pass ReLU experiment with the given implementation. */
ReluExperimentResult runReluExperiment(ExecContext &ctx, ReluImpl impl,
                                       const ReluExperimentConfig &cfg);

/** Static loop body of the store pass (Section 4.4 comparison). */
KernelBody reluStoreBody(ReluImpl impl);

/** Static loop body of the retrieve pass. */
KernelBody reluRetrieveBody(ReluImpl impl);

} // namespace zcomp

#endif // ZCOMP_SIM_KERNELS_HH
