#include "zcomp/partition.hh"

#include "common/bitops.hh"
#include "common/log.hh"

namespace zcomp {

std::vector<Chunk>
partitionElements(size_t n, int num_chunks, ElemType t)
{
    fatal_if(num_chunks <= 0, "need at least one chunk");
    const size_t lanes = static_cast<size_t>(lanesPerVec(t));
    fatal_if(n % lanes != 0,
             "element count %zu is not a multiple of the %zu-lane vector",
             n, lanes);

    const size_t vectors = n / lanes;
    const size_t nc = static_cast<size_t>(num_chunks);
    std::vector<Chunk> chunks;
    chunks.reserve(nc);
    size_t begin_vec = 0;
    for (size_t c = 0; c < nc; c++) {
        size_t end_vec = vectors * (c + 1) / nc;
        Chunk ch;
        ch.elemBegin = begin_vec * lanes;
        ch.elemEnd = end_vec * lanes;
        ch.regionOffset = ch.elemBegin * static_cast<size_t>(elemBytes(t));
        ch.regionBytes = ch.elems() * static_cast<size_t>(elemBytes(t));
        chunks.push_back(ch);
        begin_vec = end_vec;
    }
    return chunks;
}

std::vector<Chunk>
subPartition(const Chunk &chunk, int num_sub, ElemType t)
{
    fatal_if(num_sub <= 0, "need at least one sub-block");
    const size_t lanes = static_cast<size_t>(lanesPerVec(t));
    const size_t vectors = chunk.elems() / lanes;
    const size_t ns = static_cast<size_t>(num_sub);
    std::vector<Chunk> subs;
    subs.reserve(ns);
    size_t begin_vec = 0;
    for (size_t s = 0; s < ns; s++) {
        size_t end_vec = vectors * (s + 1) / ns;
        Chunk sub;
        sub.elemBegin = chunk.elemBegin + begin_vec * lanes;
        sub.elemEnd = chunk.elemBegin + end_vec * lanes;
        sub.regionOffset = chunk.regionOffset +
                           begin_vec * lanes *
                               static_cast<size_t>(elemBytes(t));
        sub.regionBytes =
            sub.elems() * static_cast<size_t>(elemBytes(t));
        subs.push_back(sub);
        begin_vec = end_vec;
    }
    return subs;
}

PartitionedStream
compressPartitionedPs(const float *src, size_t n, uint8_t *dst_region,
                      size_t region_bytes, int num_chunks, Ccf ccf)
{
    fatal_if(region_bytes < n * sizeof(float),
             "destination region smaller than the original allocation");
    PartitionedStream ps;
    ps.etype = ElemType::F32;
    ps.chunks = partitionElements(n, num_chunks, ps.etype);
    for (const Chunk &ch : ps.chunks) {
        CompressedWriter w(dst_region + ch.regionOffset, ch.regionBytes,
                           ps.etype, ccf);
        for (size_t i = ch.elemBegin; i < ch.elemEnd; i += 16)
            w.put(Vec512::load(src + i));
        ps.chunkBytes.push_back(w.bytesWritten());
        ps.chunkNnz.push_back(w.nnzRecord());
        ps.stats += w.stats();
    }
    return ps;
}

void
expandPartitionedPs(const PartitionedStream &ps, const uint8_t *src_region,
                    size_t region_bytes, float *dst, size_t n)
{
    fatal_if(region_bytes < n * sizeof(float),
             "source region smaller than the original allocation");
    fatal_if(ps.chunks.empty() || ps.chunks.back().elemEnd != n,
             "partition layout does not cover the %zu-element buffer", n);
    for (size_t c = 0; c < ps.chunks.size(); c++) {
        const Chunk &ch = ps.chunks[c];
        CompressedReader r(src_region + ch.regionOffset, ps.chunkBytes[c],
                           ps.etype);
        for (size_t i = ch.elemBegin; i < ch.elemEnd; i += 16) {
            Vec512 v = r.get();
            v.store(dst + i);
        }
    }
}

} // namespace zcomp
