#include "zcomp/stream.hh"

#include <cstring>

#include "common/bitops.hh"
#include "common/error.hh"
#include "common/fault.hh"
#include "common/log.hh"

namespace zcomp {

double
StreamStats::ratio() const
{
    uint64_t total = totalBytes();
    if (total == 0)
        return 1.0;
    return static_cast<double>(originalBytes()) /
           static_cast<double>(total);
}

double
StreamStats::sparsity(ElemType t) const
{
    uint64_t elems = vectors * static_cast<uint64_t>(lanesPerVec(t));
    if (elems == 0)
        return 0.0;
    return 1.0 - static_cast<double>(nnz) / static_cast<double>(elems);
}

StreamStats &
StreamStats::operator+=(const StreamStats &o)
{
    vectors += o.vectors;
    nnz += o.nnz;
    payloadBytes += o.payloadBytes;
    headerBytes += o.headerBytes;
    return *this;
}

CompressedWriter::CompressedWriter(uint8_t *data, size_t data_capacity,
                                   ElemType t, Ccf ccf, bool record_nnz)
    : dataBase_(data), dataPtr_(data), dataCap_(data_capacity), etype_(t),
      ccf_(ccf), recordNnz_(record_nnz)
{
}

CompressedWriter::CompressedWriter(uint8_t *data, size_t data_capacity,
                                   uint8_t *hdr, size_t hdr_capacity,
                                   ElemType t, Ccf ccf, bool record_nnz)
    : dataBase_(data), dataPtr_(data), dataCap_(data_capacity),
      hdrBase_(hdr), hdrPtr_(hdr), hdrCap_(hdr_capacity), etype_(t),
      ccf_(ccf), recordNnz_(record_nnz)
{
}

bool
CompressedWriter::fitsWorstCase() const
{
    size_t payload_max =
        separateHeader() ? 64u : static_cast<size_t>(
                                     maxCompressedBytes(etype_));
    if (bytesWritten() + payload_max > dataCap_)
        return false;
    if (separateHeader() &&
        hdrBytesWritten() + static_cast<size_t>(headerBytes(etype_)) >
            hdrCap_) {
        return false;
    }
    return true;
}

ZcompResult
CompressedWriter::put(const Vec512 &v)
{
    // The header is computed once, drives the capacity pre-check, and
    // is then handed to the WithHeader entry points so the lane
    // comparison is not repeated inside the ISA routine.
    ZcompResult r;
    const uint64_t header = computeHeader(v, etype_, ccf_);
    size_t payload = static_cast<size_t>(popcount64(header)) *
                     static_cast<size_t>(elemBytes(etype_));
    if (separateHeader()) {
        fatal_if(hdrBytesWritten() + static_cast<size_t>(
                     headerBytes(etype_)) > hdrCap_,
                 "header store overflow at vector %llu",
                 (unsigned long long)stats_.vectors);
        fatal_if(bytesWritten() + payload > dataCap_,
                 "compressed data overflow at vector %llu",
                 (unsigned long long)stats_.vectors);
        r = zcompsSeparateWithHeader(v, etype_, header, dataPtr_,
                                     hdrPtr_);
        dataPtr_ += r.dataBytes;
        hdrPtr_ += headerBytes(etype_);
    } else {
        size_t need = static_cast<size_t>(headerBytes(etype_)) + payload;
        fatal_if(bytesWritten() + need > dataCap_,
                 "interleaved stream memory violation at vector %llu: "
                 "data is not compressible enough for the original "
                 "allocation (Section 4.1)",
                 (unsigned long long)stats_.vectors);
        r = zcompsInterleavedWithHeader(v, etype_, header, dataPtr_);
        dataPtr_ += r.totalBytes;
    }
    stats_.vectors++;
    stats_.nnz += static_cast<uint64_t>(r.nnz);
    stats_.payloadBytes += static_cast<uint64_t>(r.dataBytes);
    stats_.headerBytes += static_cast<uint64_t>(headerBytes(etype_));
    if (recordNnz_)
        nnzRecord_.push_back(static_cast<uint8_t>(r.nnz));
    return r;
}

CompressedReader::CompressedReader(const uint8_t *data,
                                   size_t data_capacity, ElemType t)
    : dataBase_(data), dataPtr_(data), dataCap_(data_capacity), etype_(t)
{
}

CompressedReader::CompressedReader(const uint8_t *data,
                                   size_t data_capacity,
                                   const uint8_t *hdr, size_t hdr_capacity,
                                   ElemType t)
    : dataBase_(data), dataPtr_(data), dataCap_(data_capacity),
      hdrBase_(hdr), hdrPtr_(hdr), hdrCap_(hdr_capacity), etype_(t)
{
}

Vec512
CompressedReader::get()
{
    const unsigned long long vec = stats_.vectors;
    FaultInjector &faults = FaultInjector::global();
    if (faults.enabled()) {
        // Both sites model corruption the decoder *detects*; they take
        // the same DecodeError path real validation failures do.
        if (faults.shouldInject(faultsite::ZcompHeader)) {
            decodeError("injected header corruption at vector %llu", vec);
        }
        if (faults.shouldInject(faultsite::StreamTruncate)) {
            decodeError("injected stream truncation at vector %llu", vec);
        }
    }

    // Validate the vector fully - header reachable, lanes in range,
    // payload within capacity - before unpacking any payload byte.
    const size_t hb = static_cast<size_t>(headerBytes(etype_));
    const size_t eb = static_cast<size_t>(elemBytes(etype_));
    uint64_t header;
    if (hdrBase_) {
        if (hdrBytesRead() + hb > hdrCap_) {
            decodeError("header store truncated at vector %llu: "
                        "%zu of %zu header bytes remain",
                        vec, hdrCap_ - hdrBytesRead(), hb);
        }
        header = loadBytesLe(hdrPtr_, static_cast<int>(hb));
    } else {
        if (bytesRead() + hb > dataCap_) {
            decodeError("compressed stream truncated at vector %llu: "
                        "%zu of %zu header bytes remain",
                        vec, dataCap_ - bytesRead(), hb);
        }
        header = loadBytesLe(dataPtr_, static_cast<int>(hb));
    }
    if (!headerInRange(header, etype_)) {
        // Lane-count validation runs in every build type: a header
        // selecting lanes the element type does not have is corrupted
        // input data, not a simulator bug.
        decodeError("vector %llu header 0x%llx selects lanes beyond "
                    "the %d lanes of the element type",
                    vec, (unsigned long long)header,
                    lanesPerVec(etype_));
    }
    const size_t nnz = static_cast<size_t>(popcount64(header));
    if (nnzRecord_) {
        if (stats_.vectors >= nnzRecord_->size()) {
            decodeError("decoding vector %llu but the writer recorded "
                        "only %zu vectors",
                        vec, nnzRecord_->size());
        }
        if ((*nnzRecord_)[stats_.vectors] != nnz) {
            decodeError("vector %llu header popcount %zu does not match "
                        "the writer's recorded nnz %u",
                        vec, nnz,
                        (unsigned)(*nnzRecord_)[stats_.vectors]);
        }
    }
    const size_t payload = nnz * eb;
    if (hdrBase_) {
        if (bytesRead() + payload > dataCap_) {
            decodeError("compressed payload truncated at vector %llu: "
                        "header promises %zu bytes, %zu remain",
                        vec, payload, dataCap_ - bytesRead());
        }
    } else {
        if (bytesRead() + hb + payload > dataCap_) {
            decodeError("compressed payload truncated at vector %llu: "
                        "header promises %zu bytes, %zu remain",
                        vec, payload, dataCap_ - bytesRead() - hb);
        }
    }

    // The pre-check above read and fully validated the header, so the
    // expand passes it down instead of re-reading it; the WithHeader
    // routines keep their own validation under ZCOMP_DCHECK only.
    Vec512 out;
    ZcompResult r;
    if (hdrBase_) {
        r = zcomplSeparateWithHeader(dataPtr_, etype_, header, out);
        dataPtr_ += r.dataBytes;
        hdrPtr_ += hb;
    } else {
        r = zcomplInterleavedWithHeader(dataPtr_, etype_, header, out);
        dataPtr_ += r.totalBytes;
    }
    stats_.vectors++;
    stats_.nnz += static_cast<uint64_t>(r.nnz);
    stats_.payloadBytes += static_cast<uint64_t>(r.dataBytes);
    stats_.headerBytes += static_cast<uint64_t>(headerBytes(etype_));
    return out;
}

void
CompressedReader::finish() const
{
    if (bytesRead() != dataCap_) {
        decodeError("compressed stream has %zu undecoded trailing bytes "
                    "after %llu vectors",
                    dataCap_ - bytesRead(),
                    (unsigned long long)stats_.vectors);
    }
    if (hdrBase_ && hdrBytesRead() != hdrCap_) {
        decodeError("header store has %zu undecoded trailing bytes "
                    "after %llu vectors",
                    hdrCap_ - hdrBytesRead(),
                    (unsigned long long)stats_.vectors);
    }
}

StreamStats
compressBufferPs(const float *src, size_t n, uint8_t *dst,
                 size_t dst_capacity, Ccf ccf)
{
    fatal_if(n % 16 != 0, "element count %zu is not a multiple of 16", n);
    CompressedWriter w(dst, dst_capacity, ElemType::F32, ccf,
                       /*record_nnz=*/false);
    for (size_t i = 0; i < n; i += 16)
        w.put(Vec512::load(src + i));
    return w.stats();
}

StreamStats
expandBufferPs(const uint8_t *src, size_t src_capacity, float *dst,
               size_t n)
{
    fatal_if(n % 16 != 0, "element count %zu is not a multiple of 16", n);
    CompressedReader r(src, src_capacity, ElemType::F32);
    for (size_t i = 0; i < n; i += 16) {
        Vec512 v = r.get();
        v.store(dst + i);
    }
    return r.stats();
}

size_t
validateStream(const uint8_t *data, size_t capacity, size_t num_vectors,
               ElemType t)
{
    size_t off = 0;
    const int hb = headerBytes(t);
    for (size_t i = 0; i < num_vectors; i++) {
        if (off + static_cast<size_t>(hb) > capacity)
            return 0;
        uint64_t header = 0;
        std::memcpy(&header, data + off, static_cast<size_t>(hb));
        size_t total =
            static_cast<size_t>(hb) +
            static_cast<size_t>(popcount64(header) * elemBytes(t));
        if (off + total > capacity)
            return 0;
        off += total;
    }
    return off;
}

} // namespace zcomp
