/**
 * @file
 * Bounds-checked compressed stream abstractions over the ZCOMP
 * intrinsics, plus whole-buffer convenience routines and stream
 * statistics (compression ratios, per-vector NNZ records).
 *
 * The per-vector NNZ record produced by CompressedWriter is what the
 * timing simulator consumes to regenerate the exact byte-accurate
 * address stream of a compressed region without storing a full trace.
 */

#ifndef ZCOMP_ZCOMP_STREAM_HH
#define ZCOMP_ZCOMP_STREAM_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "zcomp/intrinsics.hh"

namespace zcomp {

/** Aggregate statistics over a compressed stream. */
struct StreamStats
{
    uint64_t vectors = 0;       //!< vectors compressed/expanded
    uint64_t nnz = 0;           //!< total surviving elements
    uint64_t payloadBytes = 0;  //!< compressed element bytes
    uint64_t headerBytes = 0;   //!< metadata bytes

    uint64_t totalBytes() const { return payloadBytes + headerBytes; }

    /** Uncompressed bytes these vectors would occupy. */
    uint64_t originalBytes() const { return vectors * 64; }

    /** original / (payload + header); 1.0 when empty. */
    double ratio() const;

    /** Fraction of elements dropped (zero/negative). */
    double sparsity(ElemType t) const;

    StreamStats &operator+=(const StreamStats &o);
};

/**
 * Sequential compressing writer with capacity checking.
 *
 * Interleaved mode: construct with the data region only. Separate
 * mode: also supply a header region. put() fatal()s (memory violation,
 * Section 4.1) if the next vector would overflow the data region —
 * mirroring what happens on real hardware when interleaved headers are
 * used on insufficiently compressible data without enlarged
 * allocations.
 */
class CompressedWriter
{
  public:
    /** Interleaved-header writer. */
    CompressedWriter(uint8_t *data, size_t data_capacity, ElemType t,
                     Ccf ccf, bool record_nnz = true);

    /** Separate-header writer. */
    CompressedWriter(uint8_t *data, size_t data_capacity, uint8_t *hdr,
                     size_t hdr_capacity, ElemType t, Ccf ccf,
                     bool record_nnz = true);

    /** Compress-store the next vector. */
    ZcompResult put(const Vec512 &v);

    /** True if another (worst-case incompressible) vector fits. */
    bool fitsWorstCase() const;

    const StreamStats &stats() const { return stats_; }
    size_t bytesWritten() const { return dataPtr_ - dataBase_; }
    size_t hdrBytesWritten() const { return hdrPtr_ - hdrBase_; }
    bool separateHeader() const { return hdrBase_ != nullptr; }

    /** Per-vector NNZ values (for timing replay); empty if disabled. */
    const std::vector<uint8_t> &nnzRecord() const { return nnzRecord_; }

  private:
    uint8_t *dataBase_;
    uint8_t *dataPtr_;
    size_t dataCap_;
    uint8_t *hdrBase_ = nullptr;
    uint8_t *hdrPtr_ = nullptr;
    size_t hdrCap_ = 0;
    ElemType etype_;
    Ccf ccf_;
    bool recordNnz_;
    StreamStats stats_;
    std::vector<uint8_t> nnzRecord_;
};

/**
 * Sequential expanding reader with decode validation.
 *
 * Every get() validates the next vector *before* touching payload
 * bytes: the header must lie within the remaining stream, it may only
 * select lanes the element type has, and the payload it implies must
 * fit the remaining capacity. Violations raise DecodeError (and bump
 * the global zcomp.decode_errors counter) in all build types - a
 * corrupted stream is a recoverable input-data failure, not a
 * simulator bug. The reader is also a fault-injection client: the
 * zcomp.header and zcomp.stream.truncate sites model corruption that
 * the decoder detects.
 */
class CompressedReader
{
  public:
    /** Interleaved-header reader. */
    CompressedReader(const uint8_t *data, size_t data_capacity, ElemType t);

    /** Separate-header reader. */
    CompressedReader(const uint8_t *data, size_t data_capacity,
                     const uint8_t *hdr, size_t hdr_capacity, ElemType t);

    /** Load-expand the next vector; DecodeError on a malformed stream. */
    Vec512 get();

    /**
     * Cross-check each decoded header's popcount against the writer's
     * per-vector NNZ record (see CompressedWriter::nnzRecord()). Any
     * mismatch - including reading more vectors than were written -
     * raises DecodeError at the offending vector. The record must
     * outlive the reader; pass nullptr to disable.
     */
    void expectNnzRecord(const std::vector<uint8_t> *record)
    {
        nnzRecord_ = record;
    }

    /**
     * Assert the stream was consumed exactly: for exactly-sized
     * streams, trailing unread bytes mean a truncated decode loop or a
     * header that under-reported its payload. DecodeError on leftovers.
     */
    void finish() const;

    const StreamStats &stats() const { return stats_; }
    size_t bytesRead() const { return dataPtr_ - dataBase_; }
    size_t hdrBytesRead() const { return hdrPtr_ - hdrBase_; }

  private:
    const uint8_t *dataBase_;
    const uint8_t *dataPtr_;
    size_t dataCap_;
    const uint8_t *hdrBase_ = nullptr;
    const uint8_t *hdrPtr_ = nullptr;
    size_t hdrCap_ = 0;
    ElemType etype_;
    StreamStats stats_;
    const std::vector<uint8_t> *nnzRecord_ = nullptr;
};

/**
 * Compress a whole fp32 buffer (n must be a multiple of 16) into dst
 * with interleaved headers. Returns the stream statistics.
 */
StreamStats compressBufferPs(const float *src, size_t n, uint8_t *dst,
                             size_t dst_capacity, Ccf ccf);

/**
 * Expand a whole interleaved-header fp32 stream of n elements
 * (multiple of 16) into dst. Returns the stream statistics.
 */
StreamStats expandBufferPs(const uint8_t *src, size_t src_capacity,
                           float *dst, size_t n);

/**
 * Walk an interleaved stream of num_vectors vectors and verify that it
 * stays within capacity; returns the total bytes it occupies or 0 if
 * it would overflow.
 */
size_t validateStream(const uint8_t *data, size_t capacity,
                      size_t num_vectors, ElemType t);

} // namespace zcomp

#endif // ZCOMP_ZCOMP_STREAM_HH
