#include "zcomp/intrinsics.hh"

namespace zcomp {

ZcompResult
zcompsI(uint8_t *&dst_ptr, const Vec512 &v, ElemType t, Ccf ccf)
{
    ZcompResult r = zcompsInterleaved(v, t, ccf, dst_ptr);
    dst_ptr += r.totalBytes;
    return r;
}

Vec512
zcomplI(const uint8_t *&src_ptr, ElemType t)
{
    Vec512 out;
    ZcompResult r = zcomplInterleaved(src_ptr, t, out);
    src_ptr += r.totalBytes;
    return out;
}

ZcompResult
zcompsS(uint8_t *&dst_ptr, const Vec512 &v, uint8_t *&hdr_ptr, ElemType t,
        Ccf ccf)
{
    ZcompResult r = zcompsSeparate(v, t, ccf, dst_ptr, hdr_ptr);
    dst_ptr += r.dataBytes;
    hdr_ptr += headerBytes(t);
    return r;
}

Vec512
zcomplS(const uint8_t *&src_ptr, const uint8_t *&hdr_ptr, ElemType t)
{
    Vec512 out;
    ZcompResult r = zcomplSeparate(src_ptr, hdr_ptr, t, out);
    src_ptr += r.dataBytes;
    hdr_ptr += headerBytes(t);
    return out;
}

ZcompResult
zcompsIPs(uint8_t *&dst_ptr, const Vec512 &v, Ccf ccf)
{
    return zcompsI(dst_ptr, v, ElemType::F32, ccf);
}

Vec512
zcomplIPs(const uint8_t *&src_ptr)
{
    return zcomplI(src_ptr, ElemType::F32);
}

ZcompResult
zcompsSPs(uint8_t *&dst_ptr, const Vec512 &v, uint8_t *&hdr_ptr, Ccf ccf)
{
    return zcompsS(dst_ptr, v, hdr_ptr, ElemType::F32, ccf);
}

Vec512
zcomplSPs(const uint8_t *&src_ptr, const uint8_t *&hdr_ptr)
{
    return zcomplS(src_ptr, hdr_ptr, ElemType::F32);
}

} // namespace zcomp
