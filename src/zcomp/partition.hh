/**
 * @file
 * Partitioned parallel compression (Section 4.3, Figure 7b).
 *
 * A naive parallelization that compresses a feature map into one
 * contiguous stream serializes every thread behind a shared compressed
 * data pointer. ZCOMP instead slices the feature map into chunks:
 * each thread receives the memory region its slice would occupy
 * uncompressed, and compresses into it as an independent stream with a
 * private pointer. Expansion must use the same partitioning to find
 * the streams again.
 *
 * Chunks can be further sliced into sub-blocks to enable loop
 * unrolling across independent streams (the degree of unrolling equals
 * the number of sub-blocks per chunk).
 */

#ifndef ZCOMP_ZCOMP_PARTITION_HH
#define ZCOMP_ZCOMP_PARTITION_HH

#include <cstddef>
#include <vector>

#include "zcomp/stream.hh"

namespace zcomp {

/** One independently-compressed slice of a larger buffer. */
struct Chunk
{
    size_t elemBegin = 0;       //!< first element (inclusive)
    size_t elemEnd = 0;         //!< last element (exclusive)
    size_t regionOffset = 0;    //!< byte offset of this chunk's stream
    size_t regionBytes = 0;     //!< region reserved for the stream

    size_t elems() const { return elemEnd - elemBegin; }
};

/**
 * Slice n elements into num_chunks contiguous chunks. Every chunk
 * boundary is aligned to the vector lane count, and each chunk's
 * region is the uncompressed footprint of its slice (the original
 * allocation stays unchanged, Section 4.1).
 */
std::vector<Chunk> partitionElements(size_t n, int num_chunks, ElemType t);

/** Slice one chunk into num_sub sub-blocks for unrolled compression. */
std::vector<Chunk> subPartition(const Chunk &chunk, int num_sub,
                                ElemType t);

/**
 * A partitioned compressed buffer: the chunk layout plus the
 * per-chunk compressed sizes and NNZ records needed to read it back
 * (and to replay its address stream in the timing model).
 */
struct PartitionedStream
{
    ElemType etype = ElemType::F32;
    std::vector<Chunk> chunks;
    std::vector<size_t> chunkBytes;             //!< compressed bytes/chunk
    std::vector<std::vector<uint8_t>> chunkNnz; //!< per-vector NNZ/chunk
    StreamStats stats;
};

/**
 * Compress an fp32 buffer of n elements (multiple of 16) into
 * dst_region using partitioned streams.
 */
PartitionedStream compressPartitionedPs(const float *src, size_t n,
                                        uint8_t *dst_region,
                                        size_t region_bytes,
                                        int num_chunks, Ccf ccf);

/** Expand a partitioned fp32 buffer back into dst (n elements). */
void expandPartitionedPs(const PartitionedStream &ps,
                         const uint8_t *src_region, size_t region_bytes,
                         float *dst, size_t n);

} // namespace zcomp

#endif // ZCOMP_ZCOMP_PARTITION_HH
