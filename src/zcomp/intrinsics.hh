/**
 * @file
 * Intrinsic-function software interface for ZCOMP (Figure 6).
 *
 * A single intrinsic replaces a vector store or load: the programmer
 * never generates masks, manages metadata, or maintains compressed
 * pointers. Input and output pointers are passed by reference so that
 * the instruction's auto-increment shows through to software — after
 * each call the pointer(s) address the next compressed vector, which
 * is what makes iterative loop usage work (Section 3.1).
 *
 * The trailing suffix selects element precision, mirroring AVX512
 * intrinsic naming: _ps = fp32 (the default type used throughout the
 * paper). Generic ElemType-parameterized forms are also provided.
 */

#ifndef ZCOMP_ZCOMP_INTRINSICS_HH
#define ZCOMP_ZCOMP_INTRINSICS_HH

#include <cstdint>

#include "isa/zcomp_isa.hh"

namespace zcomp {

/**
 * _mm512_zcomps_i_ps: compress-store v at *dst_ptr (interleaved
 * header) and auto-increment dst_ptr by header + payload bytes.
 * @return per-vector result (header, nnz, bytes written)
 */
ZcompResult zcompsIPs(uint8_t *&dst_ptr, const Vec512 &v, Ccf ccf);

/**
 * _mm512_zcompl_i_ps: load-expand the vector at *src_ptr (interleaved
 * header) and auto-increment src_ptr by header + payload bytes.
 */
Vec512 zcomplIPs(const uint8_t *&src_ptr);

/**
 * _mm512_zcomps_s_ps: separate-header compress-store. Payload goes to
 * *dst_ptr, header to *hdr_ptr; both pointers auto-increment.
 */
ZcompResult zcompsSPs(uint8_t *&dst_ptr, const Vec512 &v,
                      uint8_t *&hdr_ptr, Ccf ccf);

/** _mm512_zcompl_s_ps: separate-header load-expand. */
Vec512 zcomplSPs(const uint8_t *&src_ptr, const uint8_t *&hdr_ptr);

/** Generic (runtime ElemType) interleaved compress-store. */
ZcompResult zcompsI(uint8_t *&dst_ptr, const Vec512 &v, ElemType t,
                    Ccf ccf);

/** Generic interleaved load-expand. */
Vec512 zcomplI(const uint8_t *&src_ptr, ElemType t);

/** Generic separate-header compress-store. */
ZcompResult zcompsS(uint8_t *&dst_ptr, const Vec512 &v,
                    uint8_t *&hdr_ptr, ElemType t, Ccf ccf);

/** Generic separate-header load-expand. */
Vec512 zcomplS(const uint8_t *&src_ptr, const uint8_t *&hdr_ptr,
               ElemType t);

} // namespace zcomp

#endif // ZCOMP_ZCOMP_INTRINSICS_HH
