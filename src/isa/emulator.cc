#include "isa/emulator.hh"

#include "common/bitops.hh"
#include "common/check.hh"
#include "common/error.hh"
#include "common/log.hh"

namespace zcomp {

ZcompEmulator::ZcompEmulator(uint8_t *mem, size_t size, Addr base)
    : mem_(mem), size_(size), base_(base)
{
    for (auto &v : vregs_)
        v = Vec512::zero();
}

Vec512 &
ZcompEmulator::vreg(int i)
{
    panic_if(i < 0 || i > 31, "bad vector register %d", i);
    return vregs_[i];
}

uint64_t &
ZcompEmulator::reg(int i)
{
    panic_if(i < 0 || i > 31, "bad scalar register %d", i);
    return regs_[i];
}

uint8_t *
ZcompEmulator::translate(Addr a, size_t bytes)
{
    // Recoverable: a corrupted header can promise payload past the
    // window, and the caller (study runner, fuzz harness) must be able
    // to detect and report it rather than die.
    if (a < base_ || a + bytes > base_ + size_) {
        decodeError("emulated access [0x%llx, +%zu) outside the memory "
                    "window",
                    (unsigned long long)a, bytes);
    }
    return mem_ + (a - base_);
}

ZcompResult
ZcompEmulator::exec(const ZcompInstr &instr)
{
    ZcompResult r;
    uint64_t &data_ptr = regs_[instr.dataPtrReg];
    const int hb = headerBytes(instr.etype);

    if (instr.isStore) {
        const Vec512 &src = vregs_[instr.vreg];
        if (instr.sepHeader) {
            uint64_t &hdr_ptr = regs_[instr.hdrPtrReg];
            // Reserve worst case before translation checks.
            uint8_t *dst = translate(data_ptr, 64);
            uint8_t *hdr = translate(hdr_ptr, static_cast<size_t>(hb));
            r = zcompsSeparate(src, instr.etype, instr.ccf, dst, hdr);
            // Header round-trip: the bits just stored must decode to
            // the header the compression computed.
            ZCOMP_DCHECK(loadBytesLe(hdr, hb) == r.header,
                         "stored header does not round-trip");
            data_ptr += static_cast<uint64_t>(r.dataBytes);
            hdr_ptr += static_cast<uint64_t>(hb);
        } else {
            uint8_t *dst = translate(
                data_ptr,
                static_cast<size_t>(maxCompressedBytes(instr.etype)));
            r = zcompsInterleaved(src, instr.etype, instr.ccf, dst);
            ZCOMP_DCHECK(loadBytesLe(dst, hb) == r.header,
                         "stored header does not round-trip");
            data_ptr += static_cast<uint64_t>(r.totalBytes);
        }
    } else {
        Vec512 &dst = vregs_[instr.vreg];
        if (instr.sepHeader) {
            uint64_t &hdr_ptr = regs_[instr.hdrPtrReg];
            const uint8_t *hdr =
                translate(hdr_ptr, static_cast<size_t>(hb));
            // Peek the header to know how much payload to map.
            uint64_t header = loadBytesLe(hdr, hb);
            int payload = popcount64(header) * elemBytes(instr.etype);
            const uint8_t *src =
                translate(data_ptr, static_cast<size_t>(payload));
            r = zcomplSeparate(src, hdr, instr.etype, dst);
            ZCOMP_DCHECK(r.header == header && r.dataBytes == payload,
                         "decoded header disagrees with the peek");
            data_ptr += static_cast<uint64_t>(r.dataBytes);
            hdr_ptr += static_cast<uint64_t>(hb);
        } else {
            const uint8_t *hdr_probe =
                translate(data_ptr, static_cast<size_t>(hb));
            uint64_t header = loadBytesLe(hdr_probe, hb);
            int total = hb + popcount64(header) * elemBytes(instr.etype);
            const uint8_t *src =
                translate(data_ptr, static_cast<size_t>(total));
            r = zcomplInterleaved(src, instr.etype, dst);
            ZCOMP_DCHECK(r.header == header && r.totalBytes == total,
                         "decoded header disagrees with the peek");
            data_ptr += static_cast<uint64_t>(r.totalBytes);
        }
    }
    retired_++;
    return r;
}

ZcompResult
ZcompEmulator::exec(uint32_t word)
{
    auto instr = decode(word);
    if (!instr.has_value()) {
        decodeError("illegal instruction word 0x%08x", word);
    }
    return exec(*instr);
}

ZcompResult
ZcompEmulator::exec(const std::string &line)
{
    auto instr = assemble(line);
    fatal_if(!instr.has_value(), "syntax error: '%s'", line.c_str());
    return exec(*instr);
}

} // namespace zcomp
