/**
 * @file
 * Binary instruction encoding for the ZCOMP family.
 *
 * The paper defines ZCOMP as an x86-AVX512-style extension but does not
 * fix a binary format; we define a concrete 32-bit instruction word so
 * that toolchain-facing pieces (assembler, disassembler, decoder tests)
 * are implementable:
 *
 *   [31:26] opcode      0x35 = zcomps, 0x36 = zcompl
 *   [25]    sep header  0 = interleaved, 1 = separate
 *   [24:22] elem type   ElemType enum value
 *   [21:20] ccf         Ccf enum value (zcomps only, else 0)
 *   [19:15] vreg        vector register zmm0..zmm31 (reg1)
 *   [14:10] data ptr    scalar register r0..r31 (reg2)
 *   [9:5]   hdr ptr     scalar register r0..r31 (reg3, separate only)
 *   [4:0]   reserved    must be zero
 */

#ifndef ZCOMP_ISA_ENCODING_HH
#define ZCOMP_ISA_ENCODING_HH

#include <cstdint>
#include <optional>

#include "isa/ccf.hh"
#include "isa/dtype.hh"

namespace zcomp {

constexpr uint32_t opcodeZcomps = 0x35;
constexpr uint32_t opcodeZcompl = 0x36;

/** Decoded form of one ZCOMP instruction. */
struct ZcompInstr
{
    bool isStore = true;        //!< zcomps (true) vs zcompl (false)
    bool sepHeader = false;     //!< separate-header variant
    ElemType etype = ElemType::F32;
    Ccf ccf = Ccf::EQZ;         //!< only meaningful for zcomps
    int vreg = 0;               //!< reg1: vector source/destination
    int dataPtrReg = 0;         //!< reg2: compressed data pointer
    int hdrPtrReg = 0;          //!< reg3: header pointer (separate only)

    bool operator==(const ZcompInstr &) const = default;
};

/**
 * Encode an instruction to its 32-bit word.
 * @return std::nullopt if any field is out of range or inconsistent
 *         (e.g. a header register on an interleaved variant).
 */
std::optional<uint32_t> encode(const ZcompInstr &instr);

/**
 * Decode a 32-bit word.
 * @return std::nullopt if the word is not a valid ZCOMP instruction
 *         (wrong opcode, reserved bits set, invalid element type).
 */
std::optional<ZcompInstr> decode(uint32_t word);

} // namespace zcomp

#endif // ZCOMP_ISA_ENCODING_HH
