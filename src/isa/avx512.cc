#include "isa/avx512.hh"

#include <bit>

namespace zcomp {

Vec512
setzeroPs()
{
    return Vec512::zero();
}

Vec512
loadPs(const float *src)
{
    return Vec512::load(src);
}

void
storePs(float *dst, const Vec512 &v)
{
    v.store(dst);
}

Vec512
set1Ps(float val)
{
    Vec512 v;
    for (int i = 0; i < 16; i++)
        v.setLane<float>(i, val);
    return v;
}

Mask16
cmpPsMask(const Vec512 &a, const Vec512 &b, CmpPred pred)
{
    Mask16 m = 0;
    for (int i = 0; i < 16; i++) {
        float x = a.lane<float>(i);
        float y = b.lane<float>(i);
        bool hit = false;
        switch (pred) {
          case CmpPred::EQ:
            hit = x == y;
            break;
          case CmpPred::NEQ:
            hit = x != y;
            break;
          case CmpPred::LT:
            hit = x < y;
            break;
          case CmpPred::LE:
            hit = x <= y;
            break;
          case CmpPred::GT:
            hit = x > y;
            break;
          case CmpPred::GE:
            hit = x >= y;
            break;
        }
        if (hit)
            m |= static_cast<Mask16>(1U << i);
    }
    return m;
}

Vec512
maxPs(const Vec512 &a, const Vec512 &b)
{
    Vec512 r;
    for (int i = 0; i < 16; i++) {
        float x = a.lane<float>(i);
        float y = b.lane<float>(i);
        r.setLane<float>(i, x > y ? x : y);
    }
    return r;
}

Vec512
addPs(const Vec512 &a, const Vec512 &b)
{
    Vec512 r;
    for (int i = 0; i < 16; i++)
        r.setLane<float>(i, a.lane<float>(i) + b.lane<float>(i));
    return r;
}

Vec512
mulPs(const Vec512 &a, const Vec512 &b)
{
    Vec512 r;
    for (int i = 0; i < 16; i++)
        r.setLane<float>(i, a.lane<float>(i) * b.lane<float>(i));
    return r;
}

Vec512
fmaddPs(const Vec512 &a, const Vec512 &b, const Vec512 &c)
{
    Vec512 r;
    for (int i = 0; i < 16; i++) {
        r.setLane<float>(i,
                         a.lane<float>(i) * b.lane<float>(i) +
                             c.lane<float>(i));
    }
    return r;
}

int
popcnt32(uint32_t v)
{
    return std::popcount(v);
}

int
maskCompressStoreuPs(float *dst, Mask16 mask, const Vec512 &v)
{
    int out = 0;
    for (int i = 0; i < 16; i++) {
        if ((mask >> i) & 1)
            dst[out++] = v.lane<float>(i);
    }
    return out;
}

Vec512
maskzExpandLoaduPs(Mask16 mask, const float *src)
{
    Vec512 r = Vec512::zero();
    int in = 0;
    for (int i = 0; i < 16; i++) {
        if ((mask >> i) & 1)
            r.setLane<float>(i, src[in++]);
    }
    return r;
}

float
reduceAddPs(const Vec512 &v)
{
    float s = 0.0f;
    for (int i = 0; i < 16; i++)
        s += v.lane<float>(i);
    return s;
}

} // namespace zcomp
