#include "isa/encoding.hh"

#include "common/bitops.hh"

namespace zcomp {

std::optional<uint32_t>
encode(const ZcompInstr &instr)
{
    if (instr.vreg < 0 || instr.vreg > 31)
        return std::nullopt;
    if (instr.dataPtrReg < 0 || instr.dataPtrReg > 31)
        return std::nullopt;
    if (instr.hdrPtrReg < 0 || instr.hdrPtrReg > 31)
        return std::nullopt;
    if (!instr.sepHeader && instr.hdrPtrReg != 0)
        return std::nullopt;
    if (!instr.isStore && instr.ccf != Ccf::EQZ) {
        // zcompl carries no CCF; require the canonical zero encoding.
        return std::nullopt;
    }
    if (static_cast<int>(instr.etype) >= numElemTypes)
        return std::nullopt;

    uint64_t w = 0;
    w = insertBits(w, 31, 26, instr.isStore ? opcodeZcomps : opcodeZcompl);
    w = insertBits(w, 25, 25, instr.sepHeader ? 1 : 0);
    w = insertBits(w, 24, 22, static_cast<uint64_t>(instr.etype));
    w = insertBits(w, 21, 20, static_cast<uint64_t>(instr.ccf));
    w = insertBits(w, 19, 15, static_cast<uint64_t>(instr.vreg));
    w = insertBits(w, 14, 10, static_cast<uint64_t>(instr.dataPtrReg));
    w = insertBits(w, 9, 5, static_cast<uint64_t>(instr.hdrPtrReg));
    return static_cast<uint32_t>(w);
}

std::optional<ZcompInstr>
decode(uint32_t word)
{
    uint64_t w = word;
    uint64_t opcode = bits(w, 31, 26);
    if (opcode != opcodeZcomps && opcode != opcodeZcompl)
        return std::nullopt;
    if (bits(w, 4, 0) != 0)
        return std::nullopt;

    ZcompInstr instr;
    instr.isStore = opcode == opcodeZcomps;
    instr.sepHeader = bits(w, 25, 25) != 0;
    uint64_t et = bits(w, 24, 22);
    if (et >= static_cast<uint64_t>(numElemTypes))
        return std::nullopt;
    instr.etype = static_cast<ElemType>(et);
    uint64_t ccf = bits(w, 21, 20);
    if (ccf > static_cast<uint64_t>(Ccf::LTEZ))
        return std::nullopt;
    instr.ccf = static_cast<Ccf>(ccf);
    if (!instr.isStore && instr.ccf != Ccf::EQZ)
        return std::nullopt;
    instr.vreg = static_cast<int>(bits(w, 19, 15));
    instr.dataPtrReg = static_cast<int>(bits(w, 14, 10));
    instr.hdrPtrReg = static_cast<int>(bits(w, 9, 5));
    if (!instr.sepHeader && instr.hdrPtrReg != 0)
        return std::nullopt;
    return instr;
}

} // namespace zcomp
