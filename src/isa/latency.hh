/**
 * @file
 * Per-instruction-class uop counts, latencies, and throughputs.
 *
 * Values follow the style of Agner Fog's Skylake-X tables [23] for the
 * AVX512 subset, and Section 3.3 for the ZCOMP instructions (logic
 * component: 2-cycle latency, 1 instruction/cycle throughput; the
 * memory component is charged separately by the memory hierarchy).
 */

#ifndef ZCOMP_ISA_LATENCY_HH
#define ZCOMP_ISA_LATENCY_HH

#include <string>
#include <vector>

namespace zcomp {

enum class InstrClass
{
    VecLoad,            //!< vmovups zmm, [mem]
    VecStore,           //!< vmovups [mem], zmm
    VecCmpMask,         //!< vcmpps k, zmm, zmm
    VecMax,             //!< vmaxps
    VecAdd,             //!< vaddps
    VecMul,             //!< vmulps
    VecFma,             //!< vfmadd231ps
    Popcnt,             //!< popcnt r32
    KMov,               //!< kmovw r32, k
    ScalarAlu,          //!< add/lea/shift on GPRs
    ScalarLoad,         //!< mov r, [mem]
    ScalarStore,        //!< mov [mem], r
    VecCompressStore,   //!< vcompressps [mem]{k}, zmm
    VecExpandLoad,      //!< vexpandps zmm{k}{z}, [mem]
    ZcompS,             //!< proposed zcomps (logic + store uop)
    ZcompL,             //!< proposed zcompl (load uop + logic)
    LoopOverhead,       //!< index increment + fused cmp/branch
};

/** Static cost of one instruction of a class. */
struct InstrCost
{
    int uops;           //!< fused-domain uops issued
    int latency;        //!< result latency in cycles (logic only)
    double throughput;  //!< reciprocal throughput (cycles/instr)
};

/** Look up the default cost table entry for a class. */
const InstrCost &instrCost(InstrClass c);

/** Human-readable class name. */
const char *instrClassName(InstrClass c);

/**
 * A static loop body description: the instruction mix one iteration of
 * a kernel executes, plus its architectural register footprint. Used
 * by the core timing model for issue-cost accounting and by the
 * Section 4.4 instruction-overhead comparison.
 */
struct KernelBody
{
    std::string name;
    std::vector<std::pair<InstrClass, int>> instrs;
    int vecRegs = 0;
    int maskRegs = 0;
    int scalarRegs = 0;

    /** Static instructions per iteration. */
    int totalInstrs() const;

    /** Fused-domain uops per iteration. */
    int totalUops() const;

    /** Total architectural registers used. */
    int totalRegs() const { return vecRegs + maskRegs + scalarRegs; }
};

} // namespace zcomp

#endif // ZCOMP_ISA_LATENCY_HH
