/**
 * @file
 * Comparison Condition Flags (CCF) for the zcomps instruction.
 *
 * The CCF immediate selects which lanes are *dropped* by compression:
 *   EQZ  - drop lanes whose value is (+)zero. Used for generic layers
 *          that write already-sparse feature maps.
 *   LTEZ - drop lanes that are less than or equal to zero. This fuses
 *          the ReLU activation with compression in a single zcomps
 *          (Section 3.1): negative inputs become zeros on expansion.
 *
 * Per Section 3.3 the hardware implements the checks on the raw lane
 * bits: "equal to zero" is an OR-reduction of all bits, "less than or
 * equal" additionally examines the sign bit. We model exactly that, so
 * a floating-point -0.0 (sign bit set, magnitude zero) is dropped by
 * LTEZ but kept by EQZ, and integers use two's-complement sign.
 */

#ifndef ZCOMP_ISA_CCF_HH
#define ZCOMP_ISA_CCF_HH

#include <cstdint>

#include "isa/dtype.hh"

namespace zcomp {

enum class Ccf : uint8_t
{
    EQZ = 0,    //!< compress away lanes equal to zero
    LTEZ = 1,   //!< compress away lanes <= 0 (fused ReLU)
};

constexpr const char *
ccfName(Ccf c)
{
    return c == Ccf::EQZ ? "eqz" : "ltez";
}

/**
 * Decide whether a lane survives compression.
 *
 * @param raw   lane bits, right-aligned in a uint64_t
 * @param t     element type (determines the sign bit position)
 * @param ccf   comparison condition
 * @return      true if the lane is kept (header bit = 1)
 */
constexpr bool
laneKept(uint64_t raw, ElemType t, Ccf ccf)
{
    const int sign_bit = elemBytes(t) * 8 - 1;
    const bool is_zero = raw == 0;
    if (ccf == Ccf::EQZ)
        return !is_zero;
    const bool is_neg = ((raw >> sign_bit) & 1) != 0;
    return !is_zero && !is_neg;
}

} // namespace zcomp

#endif // ZCOMP_ISA_CCF_HH
