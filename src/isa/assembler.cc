#include "isa/assembler.hh"

#include <cctype>
#include <cstdlib>
#include <vector>

#include "common/log.hh"

namespace zcomp {

std::string
disassemble(const ZcompInstr &i)
{
    std::string mnem = i.isStore ? "zcomps" : "zcompl";
    mnem += i.sepHeader ? ".s." : ".i.";
    mnem += elemSuffix(i.etype);

    std::string data_ptr = format("[r%d]", i.dataPtrReg);
    std::string vreg = format("zmm%d", i.vreg);
    std::string hdr_ptr = format("[r%d]", i.hdrPtrReg);

    if (i.isStore) {
        std::string s = mnem + " " + data_ptr + ", " + vreg;
        if (i.sepHeader)
            s += ", " + hdr_ptr;
        s += ", ";
        s += ccfName(i.ccf);
        return s;
    }
    std::string s = mnem + " " + vreg + ", " + data_ptr;
    if (i.sepHeader)
        s += ", " + hdr_ptr;
    return s;
}

namespace {

/** Split on whitespace and commas; strip an optional trailing comment. */
std::vector<std::string>
tokenize(const std::string &line)
{
    std::vector<std::string> toks;
    std::string cur;
    for (char c : line) {
        if (c == ';' || c == '#')
            break;
        if (std::isspace(static_cast<unsigned char>(c)) || c == ',') {
            if (!cur.empty()) {
                toks.push_back(cur);
                cur.clear();
            }
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        toks.push_back(cur);
    return toks;
}

/** Parse "[rN]" -> N. */
std::optional<int>
parseMemOperand(const std::string &tok)
{
    if (tok.size() < 4 || tok.front() != '[' || tok.back() != ']')
        return std::nullopt;
    std::string inner = tok.substr(1, tok.size() - 2);
    if (inner.size() < 2 || inner[0] != 'r')
        return std::nullopt;
    char *end = nullptr;
    long n = std::strtol(inner.c_str() + 1, &end, 10);
    if (!end || *end != '\0' || n < 0 || n > 31)
        return std::nullopt;
    return static_cast<int>(n);
}

/** Parse "zmmN" -> N. */
std::optional<int>
parseVecReg(const std::string &tok)
{
    if (tok.size() < 4 || tok.rfind("zmm", 0) != 0)
        return std::nullopt;
    char *end = nullptr;
    long n = std::strtol(tok.c_str() + 3, &end, 10);
    if (!end || *end != '\0' || n < 0 || n > 31)
        return std::nullopt;
    return static_cast<int>(n);
}

std::optional<ElemType>
parseSuffix(const std::string &s)
{
    for (int i = 0; i < numElemTypes; i++) {
        auto t = static_cast<ElemType>(i);
        if (s == elemSuffix(t))
            return t;
    }
    return std::nullopt;
}

std::optional<Ccf>
parseCcf(const std::string &s)
{
    if (s == "eqz")
        return Ccf::EQZ;
    if (s == "ltez")
        return Ccf::LTEZ;
    return std::nullopt;
}

} // namespace

std::optional<ZcompInstr>
assemble(const std::string &line)
{
    auto toks = tokenize(line);
    if (toks.empty())
        return std::nullopt;

    // Mnemonic: zcomps|zcompl '.' i|s '.' suffix
    const std::string &m = toks[0];
    ZcompInstr instr;
    std::string base;
    auto dot1 = m.find('.');
    if (dot1 == std::string::npos)
        return std::nullopt;
    base = m.substr(0, dot1);
    if (base == "zcomps") {
        instr.isStore = true;
    } else if (base == "zcompl") {
        instr.isStore = false;
    } else {
        return std::nullopt;
    }
    auto dot2 = m.find('.', dot1 + 1);
    if (dot2 == std::string::npos)
        return std::nullopt;
    std::string hdr_mode = m.substr(dot1 + 1, dot2 - dot1 - 1);
    if (hdr_mode == "i") {
        instr.sepHeader = false;
    } else if (hdr_mode == "s") {
        instr.sepHeader = true;
    } else {
        return std::nullopt;
    }
    auto etype = parseSuffix(m.substr(dot2 + 1));
    if (!etype)
        return std::nullopt;
    instr.etype = *etype;

    size_t expect = instr.isStore ? (instr.sepHeader ? 5u : 4u)
                                  : (instr.sepHeader ? 4u : 3u);
    if (toks.size() != expect)
        return std::nullopt;

    if (instr.isStore) {
        auto data_ptr = parseMemOperand(toks[1]);
        auto vreg = parseVecReg(toks[2]);
        if (!data_ptr || !vreg)
            return std::nullopt;
        instr.dataPtrReg = *data_ptr;
        instr.vreg = *vreg;
        size_t next = 3;
        if (instr.sepHeader) {
            auto hdr = parseMemOperand(toks[next++]);
            if (!hdr)
                return std::nullopt;
            instr.hdrPtrReg = *hdr;
        }
        auto ccf = parseCcf(toks[next]);
        if (!ccf)
            return std::nullopt;
        instr.ccf = *ccf;
    } else {
        auto vreg = parseVecReg(toks[1]);
        auto data_ptr = parseMemOperand(toks[2]);
        if (!vreg || !data_ptr)
            return std::nullopt;
        instr.vreg = *vreg;
        instr.dataPtrReg = *data_ptr;
        if (instr.sepHeader) {
            auto hdr = parseMemOperand(toks[3]);
            if (!hdr)
                return std::nullopt;
            instr.hdrPtrReg = *hdr;
        }
    }

    // Round-trip through the binary encoder to enforce range rules.
    if (!encode(instr))
        return std::nullopt;
    return instr;
}

} // namespace zcomp
