/**
 * @file
 * Vec512 - the 512-bit SIMD register value type used by the functional
 * models of both the AVX512 subset and the ZCOMP instruction family.
 */

#ifndef ZCOMP_ISA_VEC_HH
#define ZCOMP_ISA_VEC_HH

#include <cstdint>
#include <cstring>

#include "common/bitops.hh"

namespace zcomp {

/** 512-bit vector register value (64 bytes). */
struct Vec512
{
    alignas(64) uint8_t bytes[64];

    /** All-zero vector. */
    static Vec512
    zero()
    {
        Vec512 v;
        std::memset(v.bytes, 0, sizeof(v.bytes));
        return v;
    }

    /** Load 64 bytes from host memory (unaligned OK). */
    static Vec512
    load(const void *src)
    {
        Vec512 v;
        std::memcpy(v.bytes, src, sizeof(v.bytes));
        return v;
    }

    /** Store 64 bytes to host memory (unaligned OK). */
    void
    store(void *dst) const
    {
        std::memcpy(dst, bytes, sizeof(bytes));
    }

    /** Typed lane read; T must be a trivially-copyable lane type. */
    template <typename T>
    T
    lane(int i) const
    {
        return loadAs<T>(bytes, sizeof(bytes),
                         static_cast<size_t>(i) * sizeof(T));
    }

    /** Typed lane write. */
    template <typename T>
    void
    setLane(int i, T v)
    {
        storeAs<T>(bytes, sizeof(bytes),
                   static_cast<size_t>(i) * sizeof(T), v);
    }

    bool
    operator==(const Vec512 &o) const
    {
        return std::memcmp(bytes, o.bytes, sizeof(bytes)) == 0;
    }
};

} // namespace zcomp

#endif // ZCOMP_ISA_VEC_HH
