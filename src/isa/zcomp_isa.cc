#include "isa/zcomp_isa.hh"

#include <cstring>

#include "common/bitops.hh"

namespace zcomp {

uint64_t
laneRaw(const Vec512 &v, ElemType t, int i)
{
    const int eb = elemBytes(t);
    uint64_t raw = 0;
    std::memcpy(&raw, v.bytes + static_cast<size_t>(i) * eb,
                static_cast<size_t>(eb));
    return raw;
}

uint64_t
computeHeader(const Vec512 &v, ElemType t, Ccf ccf)
{
    const int lanes = lanesPerVec(t);
    uint64_t header = 0;
    for (int i = 0; i < lanes; i++) {
        if (laneKept(laneRaw(v, t, i), t, ccf))
            header |= 1ULL << i;
    }
    return header;
}

namespace {

/** Pack surviving lanes of src densely into dst; returns payload bytes. */
int
packLanes(const Vec512 &src, ElemType t, uint64_t header, uint8_t *dst)
{
    const int eb = elemBytes(t);
    const int lanes = lanesPerVec(t);
    int out = 0;
    for (int i = 0; i < lanes; i++) {
        if ((header >> i) & 1) {
            std::memcpy(dst + static_cast<size_t>(out) * eb,
                        src.bytes + static_cast<size_t>(i) * eb,
                        static_cast<size_t>(eb));
            out++;
        }
    }
    return out * eb;
}

/** Scatter packed payload back to lanes selected by header. */
void
unpackLanes(const uint8_t *payload, ElemType t, uint64_t header,
            Vec512 &out)
{
    const int eb = elemBytes(t);
    const int lanes = lanesPerVec(t);
    out = Vec512::zero();
    int in = 0;
    for (int i = 0; i < lanes; i++) {
        if ((header >> i) & 1) {
            std::memcpy(out.bytes + static_cast<size_t>(i) * eb,
                        payload + static_cast<size_t>(in) * eb,
                        static_cast<size_t>(eb));
            in++;
        }
    }
}

/** Read headerBytes(t) little-endian header bits from src. */
uint64_t
readHeader(const uint8_t *src, ElemType t)
{
    uint64_t header = 0;
    std::memcpy(&header, src, static_cast<size_t>(headerBytes(t)));
    return header;
}

/** Write headerBytes(t) little-endian header bits to dst. */
void
writeHeader(uint8_t *dst, ElemType t, uint64_t header)
{
    std::memcpy(dst, &header, static_cast<size_t>(headerBytes(t)));
}

} // namespace

ZcompResult
zcompsInterleaved(const Vec512 &src, ElemType t, Ccf ccf, uint8_t *dst)
{
    ZcompResult r;
    r.header = computeHeader(src, t, ccf);
    r.nnz = popcount64(r.header);
    writeHeader(dst, t, r.header);
    r.dataBytes = packLanes(src, t, r.header, dst + headerBytes(t));
    r.totalBytes = r.dataBytes + headerBytes(t);
    return r;
}

ZcompResult
zcompsSeparate(const Vec512 &src, ElemType t, Ccf ccf, uint8_t *dst,
               uint8_t *hdr)
{
    ZcompResult r;
    r.header = computeHeader(src, t, ccf);
    r.nnz = popcount64(r.header);
    writeHeader(hdr, t, r.header);
    r.dataBytes = packLanes(src, t, r.header, dst);
    r.totalBytes = r.dataBytes;
    return r;
}

ZcompResult
zcomplInterleaved(const uint8_t *src, ElemType t, Vec512 &out)
{
    ZcompResult r;
    r.header = readHeader(src, t);
    r.nnz = popcount64(r.header);
    r.dataBytes = r.nnz * elemBytes(t);
    r.totalBytes = r.dataBytes + headerBytes(t);
    unpackLanes(src + headerBytes(t), t, r.header, out);
    return r;
}

ZcompResult
zcomplSeparate(const uint8_t *src, const uint8_t *hdr, ElemType t,
               Vec512 &out)
{
    ZcompResult r;
    r.header = readHeader(hdr, t);
    r.nnz = popcount64(r.header);
    r.dataBytes = r.nnz * elemBytes(t);
    r.totalBytes = r.dataBytes;
    unpackLanes(src, t, r.header, out);
    return r;
}

} // namespace zcomp
