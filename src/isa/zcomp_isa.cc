#include "isa/zcomp_isa.hh"

#include <bit>
#include <cstring>

#include "common/bitops.hh"
#include "common/check.hh"
#include "common/error.hh"
#include "common/simd.hh"

namespace zcomp {

uint64_t
laneRaw(const Vec512 &v, ElemType t, int i)
{
    const int eb = elemBytes(t);
    ZCOMP_DCHECK(i >= 0 && i < lanesPerVec(t), "lane %d out of range", i);
    return loadBytesLe(v.bytes + static_cast<size_t>(i) * eb, eb);
}

uint64_t
computeHeader(const Vec512 &v, ElemType t, Ccf ccf)
{
    uint64_t header = 0;
    if (simd::laneHeader(v.bytes, elemBytes(t), ccf == Ccf::LTEZ, header))
        return header;
    // Scalar reference: laneKept() on each lane's raw bits.
    const int lanes = lanesPerVec(t);
    for (int i = 0; i < lanes; i++) {
        if (laneKept(laneRaw(v, t, i), t, ccf))
            header |= 1ULL << i;
    }
    return header;
}

namespace {

/**
 * Scalar reference pack: walk the set header bits and move one lane
 * at a time. The memcpy of a compile-time lane width compiles to a
 * single move, replacing the old per-byte loadBytesLe loops.
 */
template <typename T>
void
packLanesScalar(const uint8_t *src, uint64_t header, uint8_t *dst)
{
    size_t out = 0;
    for (uint64_t m = header; m != 0; m &= m - 1) {
        const int i = std::countr_zero(m);
        std::memcpy(dst + out * sizeof(T),
                    src + static_cast<size_t>(i) * sizeof(T), sizeof(T));
        out++;
    }
}

/** Pack surviving lanes of src densely into dst; returns payload bytes. */
int
packLanes(const Vec512 &src, ElemType t, uint64_t header, uint8_t *dst)
{
    const int eb = elemBytes(t);
    const int bytes = popcount64(header) * eb;
    if (simd::packLanes(src.bytes, eb, header, dst))
        return bytes;
    switch (eb) {
      case 1: packLanesScalar<uint8_t>(src.bytes, header, dst); break;
      case 2: packLanesScalar<uint16_t>(src.bytes, header, dst); break;
      case 4: packLanesScalar<uint32_t>(src.bytes, header, dst); break;
      default: packLanesScalar<uint64_t>(src.bytes, header, dst); break;
    }
    return bytes;
}

/** Scalar reference expand for one lane width. */
template <typename T>
void
unpackLanesScalar(const uint8_t *payload, uint64_t header, uint8_t *out)
{
    size_t in = 0;
    for (uint64_t m = header; m != 0; m &= m - 1) {
        const int i = std::countr_zero(m);
        std::memcpy(out + static_cast<size_t>(i) * sizeof(T),
                    payload + in * sizeof(T), sizeof(T));
        in++;
    }
}

/** Scatter packed payload back to lanes selected by header. */
void
unpackLanes(const uint8_t *payload, ElemType t, uint64_t header,
            Vec512 &out)
{
    const int eb = elemBytes(t);
    if (simd::unpackLanes(payload, eb, header, out.bytes))
        return;
    out = Vec512::zero();
    switch (eb) {
      case 1: unpackLanesScalar<uint8_t>(payload, header, out.bytes); break;
      case 2: unpackLanesScalar<uint16_t>(payload, header, out.bytes); break;
      case 4: unpackLanesScalar<uint32_t>(payload, header, out.bytes); break;
      default: unpackLanesScalar<uint64_t>(payload, header, out.bytes); break;
    }
}

/** Read headerBytes(t) little-endian header bits from src. */
uint64_t
readHeader(const uint8_t *src, ElemType t)
{
    return loadBytesLe(src, headerBytes(t));
}

/** Write headerBytes(t) little-endian header bits to dst. */
void
writeHeader(uint8_t *dst, ElemType t, uint64_t header)
{
    storeBytesLe(dst, headerBytes(t), header);
}

} // namespace

bool
headerInRange(uint64_t header, ElemType t)
{
    const int lanes = lanesPerVec(t);
    return lanes >= 64 || (header >> lanes) == 0;
}

ZcompResult
zcompsInterleavedWithHeader(const Vec512 &src, ElemType t,
                            uint64_t header, uint8_t *dst)
{
    ZCOMP_DCHECK(headerInRange(header, t), "header selects absent lanes");
    ZcompResult r;
    r.header = header;
    r.nnz = popcount64(r.header);
    writeHeader(dst, t, r.header);
    r.dataBytes = packLanes(src, t, r.header, dst + headerBytes(t));
    r.totalBytes = r.dataBytes + headerBytes(t);
    ZCOMP_DCHECK(readHeader(dst, t) == r.header,
                 "header round-trip mismatch");
    ZCOMP_DCHECK(r.dataBytes == r.nnz * elemBytes(t),
                 "payload %d != %d lanes * %d B", r.dataBytes, r.nnz,
                 elemBytes(t));
    ZCOMP_DCHECK(r.totalBytes <= maxCompressedBytes(t),
                 "compressed vector overflows worst case");
    return r;
}

ZcompResult
zcompsInterleaved(const Vec512 &src, ElemType t, Ccf ccf, uint8_t *dst)
{
    return zcompsInterleavedWithHeader(src, t, computeHeader(src, t, ccf),
                                       dst);
}

ZcompResult
zcompsSeparateWithHeader(const Vec512 &src, ElemType t, uint64_t header,
                         uint8_t *dst, uint8_t *hdr)
{
    ZCOMP_DCHECK(headerInRange(header, t), "header selects absent lanes");
    ZcompResult r;
    r.header = header;
    r.nnz = popcount64(r.header);
    writeHeader(hdr, t, r.header);
    r.dataBytes = packLanes(src, t, r.header, dst);
    r.totalBytes = r.dataBytes;
    ZCOMP_DCHECK(readHeader(hdr, t) == r.header,
                 "header round-trip mismatch");
    ZCOMP_DCHECK(r.dataBytes <= 64, "payload exceeds a full vector");
    return r;
}

ZcompResult
zcompsSeparate(const Vec512 &src, ElemType t, Ccf ccf, uint8_t *dst,
               uint8_t *hdr)
{
    return zcompsSeparateWithHeader(src, t, computeHeader(src, t, ccf),
                                    dst, hdr);
}

ZcompResult
zcomplInterleavedWithHeader(const uint8_t *src, ElemType t,
                            uint64_t header, Vec512 &out)
{
    // Callers (zcomplInterleaved, CompressedReader) have already
    // validated the lane range of the header they pass down.
    ZCOMP_DCHECK(headerInRange(header, t), "header selects absent lanes");
    ZcompResult r;
    r.header = header;
    r.nnz = popcount64(r.header);
    r.dataBytes = r.nnz * elemBytes(t);
    r.totalBytes = r.dataBytes + headerBytes(t);
    unpackLanes(src + headerBytes(t), t, r.header, out);
    // Dropped lanes must expand to exact zeros: the expanded vector's
    // nonzero-lane map is a subset of the header.
    ZCOMP_DCHECK((computeHeader(out, t, Ccf::EQZ) & ~r.header) == 0,
                 "dropped lane expanded to a nonzero value");
    return r;
}

ZcompResult
zcomplInterleaved(const uint8_t *src, ElemType t, Vec512 &out)
{
    const uint64_t header = readHeader(src, t);
    if (!headerInRange(header, t)) {
        // Lane-count validation runs in every build type: a header
        // selecting lanes the element type does not have is corrupted
        // input data, not a simulator bug.
        decodeError("zcompl header 0x%llx selects lanes beyond the %d "
                    "lanes of the element type",
                    (unsigned long long)header, lanesPerVec(t));
    }
    return zcomplInterleavedWithHeader(src, t, header, out);
}

ZcompResult
zcomplSeparateWithHeader(const uint8_t *src, ElemType t, uint64_t header,
                         Vec512 &out)
{
    ZCOMP_DCHECK(headerInRange(header, t), "header selects absent lanes");
    ZcompResult r;
    r.header = header;
    r.nnz = popcount64(r.header);
    r.dataBytes = r.nnz * elemBytes(t);
    r.totalBytes = r.dataBytes;
    unpackLanes(src, t, r.header, out);
    ZCOMP_DCHECK((computeHeader(out, t, Ccf::EQZ) & ~r.header) == 0,
                 "dropped lane expanded to a nonzero value");
    return r;
}

ZcompResult
zcomplSeparate(const uint8_t *src, const uint8_t *hdr, ElemType t,
               Vec512 &out)
{
    const uint64_t header = readHeader(hdr, t);
    if (!headerInRange(header, t)) {
        decodeError("zcompl header 0x%llx selects lanes beyond the %d "
                    "lanes of the element type",
                    (unsigned long long)header, lanesPerVec(t));
    }
    return zcomplSeparateWithHeader(src, t, header, out);
}

} // namespace zcomp
