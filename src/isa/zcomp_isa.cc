#include "isa/zcomp_isa.hh"

#include "common/bitops.hh"
#include "common/check.hh"
#include "common/error.hh"

namespace zcomp {

uint64_t
laneRaw(const Vec512 &v, ElemType t, int i)
{
    const int eb = elemBytes(t);
    ZCOMP_DCHECK(i >= 0 && i < lanesPerVec(t), "lane %d out of range", i);
    return loadBytesLe(v.bytes + static_cast<size_t>(i) * eb, eb);
}

uint64_t
computeHeader(const Vec512 &v, ElemType t, Ccf ccf)
{
    const int lanes = lanesPerVec(t);
    uint64_t header = 0;
    for (int i = 0; i < lanes; i++) {
        if (laneKept(laneRaw(v, t, i), t, ccf))
            header |= 1ULL << i;
    }
    return header;
}

namespace {

/** Pack surviving lanes of src densely into dst; returns payload bytes. */
int
packLanes(const Vec512 &src, ElemType t, uint64_t header, uint8_t *dst)
{
    const int eb = elemBytes(t);
    const int lanes = lanesPerVec(t);
    int out = 0;
    for (int i = 0; i < lanes; i++) {
        if ((header >> i) & 1) {
            storeBytesLe(dst + static_cast<size_t>(out) * eb, eb,
                         laneRaw(src, t, i));
            out++;
        }
    }
    return out * eb;
}

/** Scatter packed payload back to lanes selected by header. */
void
unpackLanes(const uint8_t *payload, ElemType t, uint64_t header,
            Vec512 &out)
{
    const int eb = elemBytes(t);
    const int lanes = lanesPerVec(t);
    out = Vec512::zero();
    int in = 0;
    for (int i = 0; i < lanes; i++) {
        if ((header >> i) & 1) {
            storeBytesLe(out.bytes + static_cast<size_t>(i) * eb, eb,
                         loadBytesLe(payload +
                                         static_cast<size_t>(in) * eb,
                                     eb));
            in++;
        }
    }
}

/** Read headerBytes(t) little-endian header bits from src. */
uint64_t
readHeader(const uint8_t *src, ElemType t)
{
    return loadBytesLe(src, headerBytes(t));
}

/** Write headerBytes(t) little-endian header bits to dst. */
void
writeHeader(uint8_t *dst, ElemType t, uint64_t header)
{
    storeBytesLe(dst, headerBytes(t), header);
}

/** A header may only select lanes the element type actually has. */
bool
headerInRange(uint64_t header, ElemType t)
{
    const int lanes = lanesPerVec(t);
    return lanes >= 64 || (header >> lanes) == 0;
}

} // namespace

ZcompResult
zcompsInterleaved(const Vec512 &src, ElemType t, Ccf ccf, uint8_t *dst)
{
    ZcompResult r;
    r.header = computeHeader(src, t, ccf);
    r.nnz = popcount64(r.header);
    writeHeader(dst, t, r.header);
    r.dataBytes = packLanes(src, t, r.header, dst + headerBytes(t));
    r.totalBytes = r.dataBytes + headerBytes(t);
    ZCOMP_DCHECK(readHeader(dst, t) == r.header,
                 "header round-trip mismatch");
    ZCOMP_DCHECK(r.dataBytes == r.nnz * elemBytes(t),
                 "payload %d != %d lanes * %d B", r.dataBytes, r.nnz,
                 elemBytes(t));
    ZCOMP_DCHECK(r.totalBytes <= maxCompressedBytes(t),
                 "compressed vector overflows worst case");
    return r;
}

ZcompResult
zcompsSeparate(const Vec512 &src, ElemType t, Ccf ccf, uint8_t *dst,
               uint8_t *hdr)
{
    ZcompResult r;
    r.header = computeHeader(src, t, ccf);
    r.nnz = popcount64(r.header);
    writeHeader(hdr, t, r.header);
    r.dataBytes = packLanes(src, t, r.header, dst);
    r.totalBytes = r.dataBytes;
    ZCOMP_DCHECK(readHeader(hdr, t) == r.header,
                 "header round-trip mismatch");
    ZCOMP_DCHECK(r.dataBytes <= 64, "payload exceeds a full vector");
    return r;
}

ZcompResult
zcomplInterleaved(const uint8_t *src, ElemType t, Vec512 &out)
{
    ZcompResult r;
    r.header = readHeader(src, t);
    if (!headerInRange(r.header, t)) {
        // Lane-count validation runs in every build type: a header
        // selecting lanes the element type does not have is corrupted
        // input data, not a simulator bug.
        decodeError("zcompl header 0x%llx selects lanes beyond the %d "
                    "lanes of the element type",
                    (unsigned long long)r.header, lanesPerVec(t));
    }
    r.nnz = popcount64(r.header);
    r.dataBytes = r.nnz * elemBytes(t);
    r.totalBytes = r.dataBytes + headerBytes(t);
    unpackLanes(src + headerBytes(t), t, r.header, out);
    // Dropped lanes must expand to exact zeros: the expanded vector's
    // nonzero-lane map is a subset of the header.
    ZCOMP_DCHECK((computeHeader(out, t, Ccf::EQZ) & ~r.header) == 0,
                 "dropped lane expanded to a nonzero value");
    return r;
}

ZcompResult
zcomplSeparate(const uint8_t *src, const uint8_t *hdr, ElemType t,
               Vec512 &out)
{
    ZcompResult r;
    r.header = readHeader(hdr, t);
    if (!headerInRange(r.header, t)) {
        decodeError("zcompl header 0x%llx selects lanes beyond the %d "
                    "lanes of the element type",
                    (unsigned long long)r.header, lanesPerVec(t));
    }
    r.nnz = popcount64(r.header);
    r.dataBytes = r.nnz * elemBytes(t);
    r.totalBytes = r.dataBytes;
    unpackLanes(src, t, r.header, out);
    ZCOMP_DCHECK((computeHeader(out, t, Ccf::EQZ) & ~r.header) == 0,
                 "dropped lane expanded to a nonzero value");
    return r;
}

} // namespace zcomp
