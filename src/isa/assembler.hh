/**
 * @file
 * Textual assembler and disassembler for the ZCOMP instruction family.
 *
 * Syntax (matching Section 3's operand order):
 *   zcomps.i.ps [r2], zmm1, eqz          ; interleaved-header compress
 *   zcomps.s.ps [r2], zmm1, [r3], ltez   ; separate-header compress
 *   zcompl.i.ps zmm1, [r2]               ; interleaved-header expand
 *   zcompl.s.ps zmm1, [r2], [r3]         ; separate-header expand
 *
 * The type suffix selects the element variant: ps (fp32), ph (fp16),
 * b (int8), d (int32), pd (fp64).
 */

#ifndef ZCOMP_ISA_ASSEMBLER_HH
#define ZCOMP_ISA_ASSEMBLER_HH

#include <optional>
#include <string>

#include "isa/encoding.hh"

namespace zcomp {

/** Render an instruction in canonical assembly syntax. */
std::string disassemble(const ZcompInstr &instr);

/**
 * Parse one line of assembly.
 * @return std::nullopt on any syntax or range error.
 */
std::optional<ZcompInstr> assemble(const std::string &line);

} // namespace zcomp

#endif // ZCOMP_ISA_ASSEMBLER_HH
