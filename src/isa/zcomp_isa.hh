/**
 * @file
 * Functional semantics of the ZCOMP instruction family (Section 3).
 *
 * zcomps ("compress-store") compares every lane of a vector register
 * against the CCF, forms a 1-bit-per-lane header (bit = 1 for lanes
 * that are kept), and writes the header and the surviving lanes,
 * densely packed, to memory. zcompl ("load-expand") reads the header,
 * popcounts it to learn how many compressed elements follow, and
 * scatters them back to their lanes, filling dropped lanes with zero.
 *
 * Two variants exist:
 *  - interleaved header: header immediately precedes the compressed
 *    elements in the data stream; a single pointer walks both.
 *  - separate header: header bytes go to a decoupled header store with
 *    its own pointer (Section 3.2).
 *
 * Both variants auto-increment their pointer operand(s) by the number
 * of bytes produced/consumed, which is what makes iterative loop usage
 * metadata-free for software.
 *
 * These routines are the pure value transformations; pointer
 * auto-increment, memory timing, and uop accounting live in the zcomp
 * library and the simulator layers.
 */

#ifndef ZCOMP_ISA_ZCOMP_ISA_HH
#define ZCOMP_ISA_ZCOMP_ISA_HH

#include <cstdint>

#include "isa/ccf.hh"
#include "isa/dtype.hh"
#include "isa/vec.hh"

namespace zcomp {

/** Result of one compress or expand step. */
struct ZcompResult
{
    uint64_t header = 0;    //!< lane-kept bitmap (bit i = lane i kept)
    int nnz = 0;            //!< number of surviving lanes
    int dataBytes = 0;      //!< bytes of compressed element payload
    int totalBytes = 0;     //!< payload plus header when interleaved
};

/** Worst-case bytes one compressed vector can occupy (incompressible). */
constexpr int
maxCompressedBytes(ElemType t)
{
    return 64 + headerBytes(t);
}

/** Read lane i of v as raw right-aligned bits. */
uint64_t laneRaw(const Vec512 &v, ElemType t, int i);

/** Compute the lane-kept header for a vector under the given CCF. */
uint64_t computeHeader(const Vec512 &v, ElemType t, Ccf ccf);

/** A header may only select lanes the element type actually has. */
bool headerInRange(uint64_t header, ElemType t);

/**
 * Functional zcomps, interleaved header.
 *
 * Writes headerBytes(t) of header followed by the surviving lanes at
 * dst. dst must have room for maxCompressedBytes(t).
 */
ZcompResult zcompsInterleaved(const Vec512 &src, ElemType t, Ccf ccf,
                              uint8_t *dst);

/**
 * Functional zcomps, separate header.
 *
 * Writes the surviving lanes at dst and the header at hdr. totalBytes
 * of the result equals dataBytes (the header store advances
 * independently by headerBytes(t)).
 */
ZcompResult zcompsSeparate(const Vec512 &src, ElemType t, Ccf ccf,
                           uint8_t *dst, uint8_t *hdr);

/**
 * Functional zcompl, interleaved header. Reads header + payload from
 * src and expands into out (dropped lanes become zero).
 */
ZcompResult zcomplInterleaved(const uint8_t *src, ElemType t, Vec512 &out);

/** Functional zcompl, separate header. */
ZcompResult zcomplSeparate(const uint8_t *src, const uint8_t *hdr,
                           ElemType t, Vec512 &out);

/**
 * WithHeader entry points: identical semantics with the header
 * supplied by the caller instead of being (re)computed or (re)read.
 * The stream codec uses these to avoid doing the lane comparison and
 * header load twice per vector - it already computed the header for
 * its capacity pre-check / record validation. The header must be in
 * range for the element type (DCHECKed; the plain entry points above
 * validate unconditionally before delegating here).
 */
ZcompResult zcompsInterleavedWithHeader(const Vec512 &src, ElemType t,
                                        uint64_t header, uint8_t *dst);
ZcompResult zcompsSeparateWithHeader(const Vec512 &src, ElemType t,
                                     uint64_t header, uint8_t *dst,
                                     uint8_t *hdr);
ZcompResult zcomplInterleavedWithHeader(const uint8_t *src, ElemType t,
                                        uint64_t header, Vec512 &out);
ZcompResult zcomplSeparateWithHeader(const uint8_t *src, ElemType t,
                                     uint64_t header, Vec512 &out);

} // namespace zcomp

#endif // ZCOMP_ISA_ZCOMP_ISA_HH
