/**
 * @file
 * Element data types supported by the ZCOMP instruction family.
 *
 * As is common in x86, each ZCOMP instruction has variants for multiple
 * element precisions (Section 3). The header carries one bit per vector
 * lane, so the header size is a function of the element width:
 *   fp64 ->  8 lanes -> 1-byte header
 *   fp32 -> 16 lanes -> 2-byte header
 *   fp16 -> 32 lanes -> 4-byte header
 *   int8 -> 64 lanes -> 8-byte header
 */

#ifndef ZCOMP_ISA_DTYPE_HH
#define ZCOMP_ISA_DTYPE_HH

#include <cstdint>

#include "common/log.hh"

namespace zcomp {

enum class ElemType : uint8_t
{
    F32 = 0,
    F16 = 1,
    I8 = 2,
    I32 = 3,
    F64 = 4,
};

constexpr int numElemTypes = 5;

/** Bytes per element. */
constexpr int
elemBytes(ElemType t)
{
    switch (t) {
      case ElemType::F32:
      case ElemType::I32:
        return 4;
      case ElemType::F16:
        return 2;
      case ElemType::I8:
        return 1;
      case ElemType::F64:
        return 8;
    }
    return 4;
}

/** Lanes in a 512-bit vector. */
constexpr int
lanesPerVec(ElemType t)
{
    return 64 / elemBytes(t);
}

/** Header bytes: one bit per lane. */
constexpr int
headerBytes(ElemType t)
{
    return lanesPerVec(t) / 8;
}

/** Short mnemonic suffix (ps, ph, b, d, pd). */
constexpr const char *
elemSuffix(ElemType t)
{
    switch (t) {
      case ElemType::F32:
        return "ps";
      case ElemType::F16:
        return "ph";
      case ElemType::I8:
        return "b";
      case ElemType::I32:
        return "d";
      case ElemType::F64:
        return "pd";
    }
    return "?";
}

} // namespace zcomp

#endif // ZCOMP_ISA_DTYPE_HH
