/**
 * @file
 * ZcompEmulator - an architectural-state emulator for the ZCOMP
 * instruction family.
 *
 * It holds 32 vector registers and 32 scalar registers and executes
 * decoded ZcompInstr values (or raw 32-bit words, or assembly text)
 * against a byte-addressable memory window, implementing the full
 * instruction semantics of Section 3: CCF comparison, header
 * generation/consumption, lane packing/expansion, and the automatic
 * pointer increments of reg2 (and reg3 for separate-header variants).
 *
 * This is the reference executable model that the encoding, assembler
 * and functional-semantics layers are integration-tested against.
 */

#ifndef ZCOMP_ISA_EMULATOR_HH
#define ZCOMP_ISA_EMULATOR_HH

#include <string>

#include "common/units.hh"

#include "isa/assembler.hh"
#include "isa/zcomp_isa.hh"

namespace zcomp {

class ZcompEmulator
{
  public:
    /**
     * @param mem  host backing store for the emulated memory window
     * @param size window size in bytes
     * @param base emulated address of mem[0]
     */
    ZcompEmulator(uint8_t *mem, size_t size, Addr base);

    Vec512 &vreg(int i);
    uint64_t &reg(int i);

    /** Execute one decoded instruction; returns its ZcompResult. */
    ZcompResult exec(const ZcompInstr &instr);

    /** Decode and execute a 32-bit instruction word. */
    ZcompResult exec(uint32_t word);

    /** Assemble and execute one line of assembly. */
    ZcompResult exec(const std::string &line);

    /** Instructions retired so far. */
    uint64_t retired() const { return retired_; }

  private:
    uint8_t *translate(Addr a, size_t bytes);

    uint8_t *mem_;
    size_t size_;
    Addr base_;
    Vec512 vregs_[32];
    uint64_t regs_[32] = {};
    uint64_t retired_ = 0;
};

} // namespace zcomp

#endif // ZCOMP_ISA_EMULATOR_HH
