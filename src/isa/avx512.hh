/**
 * @file
 * Functional model of the AVX512 instruction subset the paper's
 * baselines use (Figures 10 and 11): vector load/store, compare-to-mask,
 * max, popcount, and the vcompressstoreu / vexpandload pair that the
 * avx512-comp scheme builds its software compression from.
 *
 * These are pure value operations on Vec512; memory timing is attached
 * by the simulation layer.
 */

#ifndef ZCOMP_ISA_AVX512_HH
#define ZCOMP_ISA_AVX512_HH

#include <cstdint>

#include "isa/vec.hh"

namespace zcomp {

/** One bit per fp32 lane of a 512-bit vector. */
using Mask16 = uint16_t;

/** Comparison predicates for cmpPsMask (subset of _MM_CMPINT_*). */
enum class CmpPred { EQ, NEQ, LT, LE, GT, GE };

/** _mm512_setzero_ps */
Vec512 setzeroPs();

/** _mm512_loadu_ps */
Vec512 loadPs(const float *src);

/** _mm512_storeu_ps */
void storePs(float *dst, const Vec512 &v);

/** _mm512_set1_ps */
Vec512 set1Ps(float v);

/** _mm512_cmp_ps_mask */
Mask16 cmpPsMask(const Vec512 &a, const Vec512 &b, CmpPred pred);

/** _mm512_max_ps */
Vec512 maxPs(const Vec512 &a, const Vec512 &b);

/** _mm512_add_ps */
Vec512 addPs(const Vec512 &a, const Vec512 &b);

/** _mm512_mul_ps */
Vec512 mulPs(const Vec512 &a, const Vec512 &b);

/** _mm512_fmadd_ps: a*b + c */
Vec512 fmaddPs(const Vec512 &a, const Vec512 &b, const Vec512 &c);

/** _mm_popcnt_u32 */
int popcnt32(uint32_t v);

/**
 * _mm512_mask_compressstoreu_ps: store the lanes selected by mask,
 * densely packed, at dst. Returns the number of floats written.
 */
int maskCompressStoreuPs(float *dst, Mask16 mask, const Vec512 &v);

/**
 * _mm512_maskz_expandload_ps: read popcount(mask) floats from src and
 * expand them into the lanes selected by mask; other lanes are zeroed.
 */
Vec512 maskzExpandLoaduPs(Mask16 mask, const float *src);

/** Horizontal sum of the 16 fp32 lanes (reduction helper). */
float reduceAddPs(const Vec512 &v);

} // namespace zcomp

#endif // ZCOMP_ISA_AVX512_HH
