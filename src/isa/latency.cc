#include "isa/latency.hh"

#include "common/log.hh"

namespace zcomp {

namespace {

// {uops, latency, reciprocal throughput}
const InstrCost costTable[] = {
    /* VecLoad */          {1, 4, 0.5},
    /* VecStore */         {1, 1, 1.0},
    /* VecCmpMask */       {1, 3, 1.0},
    /* VecMax */           {1, 4, 0.5},
    /* VecAdd */           {1, 4, 0.5},
    /* VecMul */           {1, 4, 0.5},
    /* VecFma */           {1, 4, 0.5},
    /* Popcnt */           {1, 3, 1.0},
    /* KMov */             {1, 2, 1.0},
    /* ScalarAlu */        {1, 1, 0.25},
    /* ScalarLoad */       {1, 4, 0.5},
    /* ScalarStore */      {1, 1, 1.0},
    /* VecCompressStore */ {4, 6, 2.0},
    /* VecExpandLoad */    {3, 6, 2.0},
    // Single fused-domain issue slot each: the 2-cycle logic stage
    // runs in the dedicated ZCOMP pipeline (Section 3.3), modeled
    // separately as a 1-instr/cycle port in the core model.
    /* ZcompS */           {1, 2, 1.0},
    /* ZcompL */           {1, 2, 1.0},
    /* LoopOverhead */     {2, 1, 1.0},
};

const char *classNames[] = {
    "vload",  "vstore", "vcmp",     "vmax",    "vadd",      "vmul",
    "vfma",   "popcnt", "kmov",     "alu",     "load",      "store",
    "vcompress", "vexpand", "zcomps", "zcompl", "loop",
};

} // namespace

const InstrCost &
instrCost(InstrClass c)
{
    auto idx = static_cast<size_t>(c);
    panic_if(idx >= sizeof(costTable) / sizeof(costTable[0]),
             "bad instruction class %zu", idx);
    return costTable[idx];
}

const char *
instrClassName(InstrClass c)
{
    auto idx = static_cast<size_t>(c);
    panic_if(idx >= sizeof(classNames) / sizeof(classNames[0]),
             "bad instruction class %zu", idx);
    return classNames[idx];
}

int
KernelBody::totalInstrs() const
{
    int n = 0;
    for (const auto &[c, count] : instrs)
        n += count;
    return n;
}

int
KernelBody::totalUops() const
{
    int n = 0;
    for (const auto &[c, count] : instrs)
        n += instrCost(c).uops * count;
    return n;
}

} // namespace zcomp
