#include "cpu/system.hh"

#include <algorithm>
#include <queue>
#include <utility>
#include <vector>

#include "common/log.hh"
#include "common/metrics.hh"

namespace zcomp {

MultiCoreSystem::MultiCoreSystem(const ArchConfig &cfg)
    : cfg_(cfg), mem_(cfg)
{
    for (int c = 0; c < cfg.numCores; c++)
        cores_.push_back(std::make_unique<CoreModel>(c, cfg_, mem_));
}

PhaseResult
MultiCoreSystem::runPhase(const TracePhase &phase)
{
    fatal_if(phase.perCore.size() >
                 static_cast<size_t>(cfg_.numCores),
             "phase '%s' targets %zu cores, system has %d",
             phase.name.c_str(), phase.perCore.size(), cfg_.numCores);

    PhaseResult result;
    result.startTime = globalTime_;

    static const CoreTrace emptyTrace;
    for (int c = 0; c < cfg_.numCores; c++) {
        const CoreTrace *t =
            static_cast<size_t>(c) < phase.perCore.size()
                ? &phase.perCore[static_cast<size_t>(c)]
                : &emptyTrace;
        cores_[static_cast<size_t>(c)]->startPhase(t, globalTime_);
    }

    // Interleave: always advance the core with the smallest local
    // time. A min-heap keyed (time, coreId) replaces the former
    // linear scan over all cores per step; the lexicographic order
    // reproduces the scan's pick exactly (strictly-smaller time wins,
    // lowest core id wins ties), so the step sequence - and therefore
    // every timing result - is unchanged. Each live core has exactly
    // one heap entry, kept current by re-pushing after its step.
    using TimeSlot = std::pair<double, int>;
    std::priority_queue<TimeSlot, std::vector<TimeSlot>,
                        std::greater<TimeSlot>>
        ready;
    for (int c = 0; c < cfg_.numCores; c++)
        ready.push({cores_[static_cast<size_t>(c)]->time(), c});
    int remaining = cfg_.numCores;
    while (remaining > 0) {
        // The heap top is the global time low-water mark: every live
        // core's clock is >= it and it only moves forward, so one
        // comparison per step is the entire metrics hot-path cost
        // (sampleAt_ is +infinity when no sampler is attached).
        if (ready.top().first >= sampleAt_) {
            sampler_->sample(ready.top().first);
            sampleAt_ = sampler_->nextSampleCycle();
        }
        const int id = ready.top().second;
        ready.pop();
        CoreModel *next = cores_[static_cast<size_t>(id)].get();
        next->step();
        if (next->done())
            remaining--;
        else
            ready.push({next->time(), id});
    }

    // Barrier: everyone waits for the slowest core.
    double end = globalTime_;
    result.coreEndTimes.reserve(cores_.size());
    for (auto &core : cores_) {
        result.coreEndTimes.push_back(core->time());
        end = std::max(end, core->time());
    }
    for (auto &core : cores_)
        core->syncTo(end);

    globalTime_ = end;
    result.endTime = end;
    result.cycles = end - result.startTime;
    return result;
}

CycleBreakdown
MultiCoreSystem::breakdown() const
{
    CycleBreakdown sum;
    for (const auto &core : cores_)
        sum += core->breakdown();
    return sum;
}

void
MultiCoreSystem::dumpStats(StatGroup &group) const
{
    group.addCounter("cycles", "global cycles")
        .set(static_cast<uint64_t>(globalTime_));
    for (const auto &core : cores_) {
        StatGroup &g =
            group.addChild(format("core%d", core->id()));
        const CycleBreakdown &bd = core->breakdown();
        g.addCounter("compute_cycles", "issue/logic-bound cycles")
            .set(static_cast<uint64_t>(bd.compute));
        g.addCounter("memory_cycles", "load/store stall cycles")
            .set(static_cast<uint64_t>(bd.memory));
        g.addCounter("sync_cycles", "barrier wait cycles")
            .set(static_cast<uint64_t>(bd.sync));
        g.addCounter("zcomp_busy_cycles",
                     "ZCOMP logic-unit occupancy")
            .set(static_cast<uint64_t>(core->zcompBusyCycles()));
    }
    mem_.dumpStats(group.addChild("mem"));
}

void
MultiCoreSystem::resetStats()
{
    for (auto &core : cores_)
        core->resetBreakdown();
    mem_.resetStats();
    // Note: globalTime_ keeps advancing monotonically; callers measure
    // deltas via PhaseResult.
}

void
MultiCoreSystem::attachSampler(MetricsSampler *sampler)
{
    sampler_ = sampler;
    sampleAt_ = sampler
                    ? sampler->nextSampleCycle()
                    : std::numeric_limits<double>::infinity();
}

void
MultiCoreSystem::resetAll()
{
    resetStats();
    mem_.resetAll();
    // Rewind the clocks so back-to-back experiments are bit-identical:
    // double-precision timestamps round differently at large offsets,
    // which would otherwise perturb the core interleaving order.
    for (auto &core : cores_)
        core->resetTime();
    globalTime_ = 0;
}

} // namespace zcomp
