/**
 * @file
 * CoreModel - a throughput/latency core timing model in the style of
 * high-level mechanistic simulators (Sniper [15]):
 *
 *  - 4-wide issue: every op charges uops / issueWidth cycles of issue
 *    time (compute).
 *  - Loads that miss beyond L1 occupy an MSHR; with all MSHRs busy the
 *    core stalls until the oldest miss returns (memory). Independent
 *    streaming loads therefore achieve MLP = #MSHRs while dependent
 *    chains serialize.
 *  - Stores retire through a finite store buffer that drains at the
 *    hierarchy's pace; a full buffer stalls the core (memory).
 *  - Dependency streams model ZCOMP/compressed-pointer chains: an op
 *    in stream s waits until the stream's ready time, then publishes
 *    a new ready time (completion + chainLat for loads, issue time +
 *    chainLat for stores whose next address needs only the logic
 *    stage).
 *  - The ZCOMP logic unit accepts one instruction per logicThroughput
 *    cycles (Section 3.3), modeled as a per-core busy-until server.
 *
 * Every cycle of core time is attributed to exactly one bucket of the
 * CycleBreakdown (compute / memory / sync), which is what Figure 2
 * reports.
 */

#ifndef ZCOMP_CPU_CORE_HH
#define ZCOMP_CPU_CORE_HH

#include <queue>
#include <vector>

#include "common/config.hh"
#include "cpu/trace.hh"
#include "mem/hierarchy.hh"

namespace zcomp {

/** Where a core's cycles went. */
struct CycleBreakdown
{
    double compute = 0;     //!< issuing instructions / logic-unit bound
    double memory = 0;      //!< stalled on loads, MSHRs or store buffer
    double sync = 0;        //!< waiting at a barrier

    double total() const { return compute + memory + sync; }

    CycleBreakdown &
    operator+=(const CycleBreakdown &o)
    {
        compute += o.compute;
        memory += o.memory;
        sync += o.sync;
        return *this;
    }
};

class CoreModel
{
  public:
    static constexpr int maxStreams = 16;

    CoreModel(int id, const ArchConfig &cfg, MemoryHierarchy &mem);

    /** Begin executing a trace at the given start time. */
    void startPhase(const CoreTrace *trace, double start_time);

    /** All ops executed and outstanding work drained. */
    bool done() const { return trace_ == nullptr; }

    /** Execute the next op (or the final drain). */
    void step();

    /** Jump forward to a barrier release time (sync stall). */
    void syncTo(double t);

    double time() const { return time_; }
    int id() const { return id_; }
    const CycleBreakdown &breakdown() const { return breakdown_; }

    /**
     * Cycles the ZCOMP logic unit was occupied on this core (each
     * zcompUnit op holds its pipe for logicThroughput cycles) -
     * Section 3.3 occupancy, reported in the stats tree.
     */
    double zcompBusyCycles() const { return zcompBusyCycles_; }

    void resetBreakdown()
    {
        breakdown_ = {};
        zcompBusyCycles_ = 0;
    }

    /** Rewind the local clock (only valid between phases). */
    void resetTime() { time_ = 0; }

  private:
    using MinHeap = std::priority_queue<double, std::vector<double>,
                                        std::greater<double>>;

    void execOp(const TraceOp &op);
    void drain();

    int id_;
    const ArchConfig &cfg_;
    MemoryHierarchy &mem_;

    const CoreTrace *trace_ = nullptr;
    size_t idx_ = 0;

    double time_ = 0;
    double zcompBusy_[2] = {0, 0};  //!< load-side / store-side pipes
    double streamReady_[maxStreams] = {};
    MinHeap outstanding_;   //!< in-flight load completions (<= MSHRs)
    MinHeap storeQ_;        //!< store-buffer entry completions

    CycleBreakdown breakdown_;
    double zcompBusyCycles_ = 0;
};

} // namespace zcomp

#endif // ZCOMP_CPU_CORE_HH
