#include "cpu/core.hh"

#include <algorithm>

#include "common/check.hh"
#include "common/log.hh"

namespace zcomp {

CoreModel::CoreModel(int id, const ArchConfig &cfg, MemoryHierarchy &mem)
    : id_(id), cfg_(cfg), mem_(mem)
{
}

void
CoreModel::startPhase(const CoreTrace *trace, double start_time)
{
    panic_if(trace_ != nullptr, "core %d already has an active phase",
             id_);
    trace_ = trace;
    idx_ = 0;
    time_ = std::max(time_, start_time);
    for (auto &s : streamReady_)
        s = 0;
    zcompBusy_[0] = zcompBusy_[1] = 0;
}

void
CoreModel::step()
{
    panic_if(done(), "step on a finished core");
    if (idx_ < trace_->size()) {
        execOp((*trace_)[idx_++]);
    } else {
        drain();
        trace_ = nullptr;
    }
}

void
CoreModel::syncTo(double t)
{
    if (t > time_) {
        breakdown_.sync += t - time_;
        time_ = t;
    }
}

void
CoreModel::execOp(const TraceOp &op)
{
    ZCOMP_DCHECK(op.stream < maxStreams, "stream id %d out of range",
                 op.stream);
    double t = time_;

    // Issue cost.
    double issue = static_cast<double>(op.uops) /
                   static_cast<double>(cfg_.core.issueWidth);
    breakdown_.compute += issue;
    t += issue;

    if (op.bytes == 0) {
        time_ = t;
        return;
    }

    // Dependency stream: wait for the chain result that produces this
    // op's address.
    if (op.stream >= 0) {
        double ready = streamReady_[op.stream];
        if (ready > t) {
            breakdown_.memory += ready - t;
            t = ready;
        }
    }

    // ZCOMP logic unit throughput: the load-side (zcompl) and
    // store-side (zcomps) pipelines each accept one instruction per
    // logicThroughput cycles (Section 3.3).
    if (op.zcompUnit) {
        double &busy = zcompBusy_[op.isWrite ? 1 : 0];
        if (busy > t) {
            breakdown_.compute += busy - t;
            t = busy;
        }
        busy = t + static_cast<double>(cfg_.zcomp.logicThroughput);
        zcompBusyCycles_ +=
            static_cast<double>(cfg_.zcomp.logicThroughput);
    }

    if (!op.isWrite) {
        // MSHR occupancy: stall when all miss slots are busy.
        while (static_cast<int>(outstanding_.size()) >=
               cfg_.core.mshrs) {
            double c = outstanding_.top();
            outstanding_.pop();
            if (c > t) {
                breakdown_.memory += c - t;
                t = c;
            }
        }
        ZCOMP_DCHECK(static_cast<int>(outstanding_.size()) <
                         cfg_.core.mshrs,
                     "MSHR stall loop left %zu of %d slots busy",
                     outstanding_.size(), cfg_.core.mshrs);
        AccessResult r = mem_.access(id_, op.addr, op.bytes, false, t,
                                     op.pc);
        double completion = t + r.latency;
        if (r.latency > cfg_.l1.latency + 0.5)
            outstanding_.push(completion);
        if (op.stream >= 0)
            streamReady_[op.stream] = completion + op.chainLat;
    } else {
        AccessResult r = mem_.access(id_, op.addr, op.bytes, true, t,
                                     op.pc);
        while (static_cast<int>(storeQ_.size()) >=
               cfg_.core.storeBuffer) {
            double c = storeQ_.top();
            storeQ_.pop();
            if (c > t) {
                breakdown_.memory += c - t;
                t = c;
            }
        }
        storeQ_.push(t + r.latency);
        ZCOMP_DCHECK(static_cast<int>(storeQ_.size()) <=
                         cfg_.core.storeBuffer,
                     "store buffer overfilled: %zu of %d entries",
                     storeQ_.size(), cfg_.core.storeBuffer);
        // The next compressed store address depends only on the logic
        // stage of this instruction, not on the store completing.
        if (op.stream >= 0)
            streamReady_[op.stream] = t + op.chainLat;
    }

    // The local clock only moves forward: every stall above advanced
    // t, never rewound it.
    ZCOMP_DCHECK(t >= time_, "core %d clock went backwards: %f < %f",
                 id_, t, time_);
    time_ = t;
}

void
CoreModel::drain()
{
    double end = time_;
    while (!outstanding_.empty()) {
        end = std::max(end, outstanding_.top());
        outstanding_.pop();
    }
    while (!storeQ_.empty()) {
        end = std::max(end, storeQ_.top());
        storeQ_.pop();
    }
    if (end > time_) {
        breakdown_.memory += end - time_;
        time_ = end;
    }
    // A finished phase leaves no in-flight misses or buffered stores.
    ZCOMP_CHECK(outstanding_.empty() && storeQ_.empty(),
                "core %d drain left %zu misses and %zu stores pending",
                id_, outstanding_.size(), storeQ_.size());
}

} // namespace zcomp
