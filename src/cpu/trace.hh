/**
 * @file
 * Compact kernel-trace representation consumed by the core timing
 * model.
 *
 * Kernels run functionally on host memory first; the timing pass then
 * replays a per-core sequence of TraceOps. An op either issues pure
 * compute uops, or performs one memory access (with the uops that
 * accompany it in the loop body). Memory accesses carry:
 *
 *  - `stream`: a dependency stream id. Ops in the same stream execute
 *    in order, each waiting for the previous op's chain result. This
 *    models ZCOMP's pointer auto-increment chain (the next compressed
 *    address is produced `chainLat` cycles into the previous
 *    instruction's execution - for zcompl, after its header data
 *    arrives; for zcomps, after the logic stage only). Sub-block
 *    unrolling (Section 4.3) maps to multiple independent streams.
 *
 *  - `pc`: a pseudo instruction pointer used by the L1 IP-stride
 *    prefetcher to recognize strided access patterns.
 *
 *  - `zcompUnit`: the op occupies the ZCOMP logic unit, which accepts
 *    one instruction per `logicThroughput` cycles (Section 3.3).
 */

#ifndef ZCOMP_CPU_TRACE_HH
#define ZCOMP_CPU_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hh"

namespace zcomp {

struct TraceOp
{
    Addr addr = 0;
    uint32_t bytes = 0;     //!< 0 = pure issue op (no memory access)
    uint16_t uops = 0;      //!< fused-domain uops issued with this op
    uint16_t pc = 0;        //!< pseudo-PC for the L1 prefetcher
    int8_t stream = -1;     //!< dependency stream id; -1 = independent
    uint8_t chainLat = 0;   //!< added to the stream-ready time
    bool isWrite = false;
    bool zcompUnit = false; //!< uses the ZCOMP logic pipeline

    /** Pure compute op issuing n uops. */
    static TraceOp
    issue(uint16_t n)
    {
        TraceOp op;
        op.uops = n;
        return op;
    }

    /** Independent load. */
    static TraceOp
    load(Addr a, uint32_t n, uint16_t uops, uint16_t pc)
    {
        TraceOp op;
        op.addr = a;
        op.bytes = n;
        op.uops = uops;
        op.pc = pc;
        return op;
    }

    /** Independent store. */
    static TraceOp
    store(Addr a, uint32_t n, uint16_t uops, uint16_t pc)
    {
        TraceOp op = load(a, n, uops, pc);
        op.isWrite = true;
        return op;
    }
};

/** One core's op sequence for a phase. */
using CoreTrace = std::vector<TraceOp>;

/** A barrier-delimited parallel region across all cores. */
struct TracePhase
{
    std::string name;
    std::vector<CoreTrace> perCore;

    explicit TracePhase(std::string n = "", int num_cores = 0)
        : name(std::move(n)),
          perCore(static_cast<size_t>(num_cores))
    {}

    size_t
    totalOps() const
    {
        size_t n = 0;
        for (const auto &t : perCore)
            n += t.size();
        return n;
    }
};

} // namespace zcomp

#endif // ZCOMP_CPU_TRACE_HH
