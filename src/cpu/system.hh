/**
 * @file
 * MultiCoreSystem - runs barrier-delimited TracePhases over all cores
 * against the shared memory hierarchy.
 *
 * Cores are interleaved op-by-op in (approximate) global time order:
 * at every step the core with the smallest local clock executes its
 * next op, so contention at the shared L3 slices and DRAM channels is
 * resolved in the order it would occur. At the end of a phase every
 * core synchronizes to the slowest core (barrier), and the waiting
 * time is charged to the sync bucket - this is the source of the
 * "sync" component in the Figure 2 cycle breakdown.
 */

#ifndef ZCOMP_CPU_SYSTEM_HH
#define ZCOMP_CPU_SYSTEM_HH

#include <limits>
#include <memory>
#include <vector>

#include "cpu/core.hh"

namespace zcomp {

class MetricsSampler;

/** Timing results of one phase. */
struct PhaseResult
{
    double cycles = 0;          //!< wall-clock cycles of the phase
    double startTime = 0;
    double endTime = 0;

    /**
     * Each core's completion time before the barrier (index = core
     * id); endTime - coreEndTimes[c] is core c's sync wait. Feeds the
     * per-core lanes of the Perfetto trace.
     */
    std::vector<double> coreEndTimes;
};

class MultiCoreSystem
{
  public:
    explicit MultiCoreSystem(const ArchConfig &cfg);

    /** Execute one parallel phase; all cores barrier at the end. */
    PhaseResult runPhase(const TracePhase &phase);

    /** Global time (cycles since construction / reset). */
    double now() const { return globalTime_; }

    /** Simulated seconds elapsed. */
    double seconds() const
    {
        return globalTime_ / (cfg_.core.freqGHz * 1e9);
    }

    /** Aggregate cycle breakdown summed over all cores. */
    CycleBreakdown breakdown() const;

    /** Populate a gem5-style stats report (cores + hierarchy). */
    void dumpStats(StatGroup &group) const;

    MemoryHierarchy &mem() { return mem_; }
    const ArchConfig &config() const { return cfg_; }

    /** Reset time, breakdowns and hierarchy statistics (keep caches). */
    void resetStats();

    /** Full reset including cache contents. */
    void resetAll();

    /**
     * Attach (null: detach) a cycle-domain metrics sampler. The
     * stepping loop invokes it whenever the global time low-water
     * mark crosses the sampler's next sample cycle. The sampler must
     * outlive its attachment; detached (the default) the loop's only
     * cost is one always-false comparison against +infinity.
     */
    void attachSampler(MetricsSampler *sampler);

  private:
    ArchConfig cfg_;
    MemoryHierarchy mem_;
    std::vector<std::unique_ptr<CoreModel>> cores_;
    double globalTime_ = 0;
    MetricsSampler *sampler_ = nullptr;
    double sampleAt_ = std::numeric_limits<double>::infinity();
};

} // namespace zcomp

#endif // ZCOMP_CPU_SYSTEM_HH
