#include "dnn/network.hh"

#include <cmath>
#include <cstring>

#include "common/log.hh"
#include "dnn/layers/structure.hh"

namespace zcomp {

const char *
layerKindName(LayerKind k)
{
    switch (k) {
      case LayerKind::Input:
        return "input";
      case LayerKind::Conv:
        return "conv";
      case LayerKind::Fc:
        return "fc";
      case LayerKind::Relu:
        return "relu";
      case LayerKind::MaxPool:
        return "maxpool";
      case LayerKind::AvgPool:
        return "avgpool";
      case LayerKind::Lrn:
        return "lrn";
      case LayerKind::Dropout:
        return "dropout";
      case LayerKind::Softmax:
        return "softmax";
      case LayerKind::EltwiseAdd:
        return "eltwise-add";
      case LayerKind::Concat:
        return "concat";
    }
    return "?";
}

Network::Network(std::string name, VSpace &vs, TensorShape input_shape)
    : name_(std::move(name)), vs_(vs), inputShape_(input_shape)
{
    Node input;
    input.layer = std::make_unique<InputLayer>("input", input_shape);
    input.shape = input_shape;
    nodes_.push_back(std::move(input));
}

int
Network::add(std::unique_ptr<Layer> layer, std::vector<int> inputs)
{
    panic_if(built_, "network %s already built", name_.c_str());
    int id = static_cast<int>(nodes_.size());
    for (int in : inputs) {
        fatal_if(in < 0 || in >= id,
                 "layer %s references node %d out of topological order",
                 layer->name().c_str(), in);
        nodes_[static_cast<size_t>(in)].consumers++;
    }
    Node node;
    node.layer = std::move(layer);
    node.inputs = std::move(inputs);
    nodes_.push_back(std::move(node));
    return id;
}

int
Network::add(std::unique_ptr<Layer> layer)
{
    return add(std::move(layer), {outputNode()});
}

void
Network::build(bool training, uint64_t seed)
{
    panic_if(built_, "network %s already built", name_.c_str());
    built_ = true;
    training_ = training;
    Rng rng(seed);

    size_t ws_elems = 0;
    size_t max_elems = 0;
    for (size_t i = 0; i < nodes_.size(); i++) {
        Node &node = nodes_[i];
        std::vector<TensorShape> in_shapes;
        for (int in : node.inputs)
            in_shapes.push_back(nodes_[static_cast<size_t>(in)].shape);
        node.shape = node.layer->outputShape(in_shapes);
        node.layer->init(vs_, in_shapes, rng);
        node.layer->setTraining(training);
        ws_elems = std::max(ws_elems,
                            node.layer->workspaceElems(in_shapes));
        max_elems = std::max(max_elems, node.shape.elems());

        AllocClass cls = i == 0 ? AllocClass::Input
                                : AllocClass::FeatureMap;
        node.act = std::make_unique<Tensor>(
            vs_, name_ + "." + node.layer->name() + ".y", node.shape,
            cls);
        if (training && i > 0) {
            node.grad = std::make_unique<Tensor>(
                vs_, name_ + "." + node.layer->name() + ".dy",
                node.shape, AllocClass::GradientMap);
        }
    }
    if (vs_.hostBacked())
        ws_.ensure(ws_elems);
    if (training) {
        gradScratch_ = std::make_unique<Tensor>(
            vs_, name_ + ".gradscratch",
            TensorShape{1, 1, 1, static_cast<int>(max_elems)},
            AllocClass::Scratch);
    }
}

void
Network::setInput(const float *data)
{
    std::memcpy(nodes_[0].act->data(), data, nodes_[0].act->bytes());
}

void
Network::fillSyntheticInput(Rng &rng)
{
    float *d = nodes_[0].act->data();
    for (size_t i = 0; i < nodes_[0].act->elems(); i++)
        d[i] = static_cast<float>(rng.gaussian());
}

void
Network::forward()
{
    panic_if(!built_, "network %s not built", name_.c_str());
    for (size_t i = 1; i < nodes_.size(); i++) {
        Node &node = nodes_[i];
        std::vector<const Tensor *> ins;
        for (int in : node.inputs)
            ins.push_back(nodes_[static_cast<size_t>(in)].act.get());
        node.layer->forward(ins, *node.act, ws_);
    }
}

double
Network::lossAndBackward(const std::vector<int> &labels)
{
    panic_if(!training_, "network %s built for inference",
             name_.c_str());
    Node &out = nodes_.back();
    fatal_if(out.layer->kind() != LayerKind::Softmax,
             "network %s must end in softmax for training",
             name_.c_str());
    size_t n = static_cast<size_t>(out.shape.n);
    size_t classes = out.act->elems() / n;
    fatal_if(labels.size() != n, "need %zu labels, got %zu", n,
             labels.size());

    // Cross-entropy loss and fused softmax gradient: dz = (p - y)/N.
    double loss = 0.0;
    float *dy = out.grad->data();
    const float *p = out.act->data();
    for (size_t i = 0; i < n; i++) {
        int label = labels[i];
        fatal_if(label < 0 || static_cast<size_t>(label) >= classes,
                 "label %d out of range", label);
        double pi = std::max(1e-12, static_cast<double>(
                                        p[i * classes +
                                          static_cast<size_t>(label)]));
        loss -= std::log(pi);
        for (size_t j = 0; j < classes; j++) {
            float target = static_cast<size_t>(label) == j ? 1.0f : 0.0f;
            dy[i * classes + j] =
                (p[i * classes + j] - target) / static_cast<float>(n);
        }
    }
    loss /= static_cast<double>(n);

    // Multi-consumer nodes accumulate; zero their gradients first.
    for (size_t i = 1; i < nodes_.size(); i++) {
        if (nodes_[i].consumers > 1)
            nodes_[i].grad->zero();
    }

    for (size_t i = nodes_.size(); i-- > 1;) {
        Node &node = nodes_[i];
        std::vector<const Tensor *> ins;
        for (int in : node.inputs)
            ins.push_back(nodes_[static_cast<size_t>(in)].act.get());

        std::vector<Tensor *> grad_in(node.inputs.size(), nullptr);
        // Single-consumer inputs receive their gradient directly;
        // multi-consumer inputs accumulate via the scratch tensor.
        bool used_scratch = false;
        for (size_t k = 0; k < node.inputs.size(); k++) {
            Node &src = nodes_[static_cast<size_t>(node.inputs[k])];
            if (node.inputs[k] == 0) {
                grad_in[k] = nullptr;   // no gradient for the input
            } else if (src.consumers == 1) {
                grad_in[k] = src.grad.get();
            } else {
                panic_if(used_scratch,
                         "layer %s: two multi-consumer inputs",
                         node.layer->name().c_str());
                grad_in[k] = gradScratch_.get();
                used_scratch = true;
            }
        }
        node.layer->backward(ins, *node.act, *node.grad, grad_in, ws_);
        if (used_scratch) {
            for (size_t k = 0; k < node.inputs.size(); k++) {
                if (grad_in[k] != gradScratch_.get())
                    continue;
                Node &src =
                    nodes_[static_cast<size_t>(node.inputs[k])];
                float *dst = src.grad->data();
                const float *s = gradScratch_->data();
                for (size_t e = 0; e < src.grad->elems(); e++)
                    dst[e] += s[e];
            }
        }
    }
    return loss;
}

void
Network::sgdStep(float lr)
{
    for (auto &node : nodes_)
        node.layer->sgdStep(lr);
}

uint64_t
Network::totalMacs() const
{
    uint64_t macs = 0;
    for (const auto &node : nodes_) {
        std::vector<TensorShape> in_shapes;
        for (int in : node.inputs)
            in_shapes.push_back(nodes_[static_cast<size_t>(in)].shape);
        macs += node.layer->forwardMacs(in_shapes);
    }
    return macs;
}

Network::Footprint
Network::footprint() const
{
    Footprint f;
    f.inputBytes = nodes_[0].act->bytes();
    for (size_t i = 0; i < nodes_.size(); i++) {
        f.weightBytes += nodes_[i].layer->weightBytes();
        if (i > 0) {
            f.featureMapBytes += nodes_[i].act->bytes();
            if (nodes_[i].grad)
                f.gradientMapBytes += nodes_[i].grad->bytes();
        }
    }
    return f;
}

} // namespace zcomp
