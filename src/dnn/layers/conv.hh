/**
 * @file
 * 2D convolution layer, lowered to GEMM via im2col.
 *
 * Weights are stored as a (Cout) x (Cin*kh*kw) row-major matrix so the
 * forward pass is W * cols per image. The backward pass computes both
 * the weight gradient (dW += dY * cols^T) and the input gradient
 * (dX = col2im(W^T * dY)).
 */

#ifndef ZCOMP_DNN_LAYERS_CONV_HH
#define ZCOMP_DNN_LAYERS_CONV_HH

#include "dnn/im2col.hh"
#include "dnn/layer.hh"

namespace zcomp {

class ConvLayer : public Layer
{
  public:
    /**
     * @param cout   output channels
     * @param kh,kw  kernel size
     * @param stride convolution stride (same both dims)
     * @param pad    zero padding (same both dims)
     */
    ConvLayer(std::string name, int cout, int kh, int kw, int stride,
              int pad);

    TensorShape
    outputShape(const std::vector<TensorShape> &in) const override;
    void init(VSpace &vs, const std::vector<TensorShape> &in,
              Rng &rng) override;
    size_t
    workspaceElems(const std::vector<TensorShape> &in) const override;
    void forward(const std::vector<const Tensor *> &in, Tensor &out,
                 Workspace &ws) override;
    void backward(const std::vector<const Tensor *> &in,
                  const Tensor &out, const Tensor &grad_out,
                  const std::vector<Tensor *> &grad_in,
                  Workspace &ws) override;
    void sgdStep(float lr) override;
    uint64_t
    forwardMacs(const std::vector<TensorShape> &in) const override;
    uint64_t weightBytes() const override;

    const Tensor &weights() const { return *w_; }
    ConvGeom geom(const TensorShape &in) const;
    int cout() const { return cout_; }

  private:
    int cout_;
    int kh_;
    int kw_;
    int stride_;
    int pad_;
    std::unique_ptr<Tensor> w_;     //!< (cout) x (cin*kh*kw)
    std::unique_ptr<Tensor> b_;     //!< (cout)
    std::vector<float> dw_;
    std::vector<float> db_;
};

} // namespace zcomp

#endif // ZCOMP_DNN_LAYERS_CONV_HH
