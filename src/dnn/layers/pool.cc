#include "dnn/layers/pool.hh"

#include <limits>

#include "common/log.hh"

namespace zcomp {

PoolLayer::PoolLayer(std::string name, LayerKind kind, int ksize,
                     int stride, int pad)
    : Layer(std::move(name), kind), ksize_(ksize), stride_(stride),
      pad_(pad)
{
    panic_if(kind != LayerKind::MaxPool && kind != LayerKind::AvgPool,
             "pool layer with non-pool kind");
}

std::unique_ptr<PoolLayer>
PoolLayer::globalAvg(std::string name)
{
    auto p = std::make_unique<PoolLayer>(std::move(name),
                                         LayerKind::AvgPool, 1, 1, 0);
    p->global_ = true;
    return p;
}

int
PoolLayer::outDim(int in, int k) const
{
    return (in + 2 * pad_ - k) / stride_ + 1;
}

TensorShape
PoolLayer::outputShape(const std::vector<TensorShape> &in) const
{
    fatal_if(in.size() != 1, "pool %s expects one input",
             name().c_str());
    if (global_)
        return {in[0].n, in[0].c, 1, 1};
    int ho = outDim(in[0].h, ksize_);
    int wo = outDim(in[0].w, ksize_);
    fatal_if(ho <= 0 || wo <= 0, "pool %s output degenerates",
             name().c_str());
    return {in[0].n, in[0].c, ho, wo};
}

void
PoolLayer::forward(const std::vector<const Tensor *> &in, Tensor &out,
                   Workspace &ws)
{
    (void)ws;
    const Tensor &x = *in[0];
    const TensorShape &is = x.shape();
    const TensorShape &os = out.shape();
    int k = global_ ? is.h : ksize_;
    int kw = global_ ? is.w : ksize_;
    int stride = global_ ? 1 : stride_;

    bool is_max = kind() == LayerKind::MaxPool;
    if (is_max)
        argmax_.assign(out.elems(), 0);

    size_t oi = 0;
    for (int n = 0; n < os.n; n++) {
        for (int c = 0; c < os.c; c++) {
            for (int oy = 0; oy < os.h; oy++) {
                for (int ox = 0; ox < os.w; ox++, oi++) {
                    float best = -std::numeric_limits<float>::infinity();
                    uint32_t best_idx = 0;
                    float sum = 0.0f;
                    int count = 0;
                    for (int ky = 0; ky < k; ky++) {
                        int iy = oy * stride - pad_ + ky;
                        if (iy < 0 || iy >= is.h)
                            continue;
                        for (int kx = 0; kx < kw; kx++) {
                            int ix = ox * stride - pad_ + kx;
                            if (ix < 0 || ix >= is.w)
                                continue;
                            size_t ii =
                                ((static_cast<size_t>(n) * is.c + c) *
                                     is.h +
                                 iy) *
                                    is.w +
                                ix;
                            float v = x.data()[ii];
                            if (v > best) {
                                best = v;
                                best_idx = static_cast<uint32_t>(ii);
                            }
                            sum += v;
                            count++;
                        }
                    }
                    if (is_max) {
                        out.data()[oi] = best;
                        argmax_[oi] = best_idx;
                    } else {
                        out.data()[oi] = count ? sum / count : 0.0f;
                    }
                }
            }
        }
    }
}

void
PoolLayer::backward(const std::vector<const Tensor *> &in,
                    const Tensor &out, const Tensor &grad_out,
                    const std::vector<Tensor *> &grad_in, Workspace &ws)
{
    (void)out;
    (void)ws;
    Tensor *dx = grad_in[0];
    if (!dx)
        return;
    dx->zero();
    const TensorShape &is = in[0]->shape();
    const TensorShape &os = grad_out.shape();

    if (kind() == LayerKind::MaxPool) {
        for (size_t oi = 0; oi < grad_out.elems(); oi++)
            dx->data()[argmax_[oi]] += grad_out.data()[oi];
        return;
    }

    int k = global_ ? is.h : ksize_;
    int kw = global_ ? is.w : ksize_;
    int stride = global_ ? 1 : stride_;
    size_t oi = 0;
    for (int n = 0; n < os.n; n++) {
        for (int c = 0; c < os.c; c++) {
            for (int oy = 0; oy < os.h; oy++) {
                for (int ox = 0; ox < os.w; ox++, oi++) {
                    // Count the in-bounds window size, then spread.
                    int count = 0;
                    for (int ky = 0; ky < k; ky++) {
                        int iy = oy * stride - pad_ + ky;
                        if (iy < 0 || iy >= is.h)
                            continue;
                        for (int kx = 0; kx < kw; kx++) {
                            int ix = ox * stride - pad_ + kx;
                            if (ix >= 0 && ix < is.w)
                                count++;
                        }
                    }
                    if (count == 0)
                        continue;
                    float g = grad_out.data()[oi] / count;
                    for (int ky = 0; ky < k; ky++) {
                        int iy = oy * stride - pad_ + ky;
                        if (iy < 0 || iy >= is.h)
                            continue;
                        for (int kx = 0; kx < kw; kx++) {
                            int ix = ox * stride - pad_ + kx;
                            if (ix < 0 || ix >= is.w)
                                continue;
                            size_t ii =
                                ((static_cast<size_t>(n) * is.c + c) *
                                     is.h +
                                 iy) *
                                    is.w +
                                ix;
                            dx->data()[ii] += g;
                        }
                    }
                }
            }
        }
    }
}

} // namespace zcomp
