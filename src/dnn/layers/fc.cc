#include "dnn/layers/fc.hh"

#include <cmath>

#include "common/log.hh"
#include "dnn/gemm.hh"

namespace zcomp {

FcLayer::FcLayer(std::string name, int out_features)
    : Layer(std::move(name), LayerKind::Fc), outFeatures_(out_features)
{
}

TensorShape
FcLayer::outputShape(const std::vector<TensorShape> &in) const
{
    fatal_if(in.size() != 1, "fc %s expects one input", name().c_str());
    return {in[0].n, outFeatures_, 1, 1};
}

void
FcLayer::init(VSpace &vs, const std::vector<TensorShape> &in, Rng &rng)
{
    int features = static_cast<int>(in[0].elems()) / in[0].n;
    w_ = std::make_unique<Tensor>(vs, name() + ".w",
                                  TensorShape{1, outFeatures_, 1,
                                              features},
                                  AllocClass::Weight);
    b_ = std::make_unique<Tensor>(vs, name() + ".b",
                                  TensorShape{1, outFeatures_, 1, 1},
                                  AllocClass::Weight);
    if (!vs.hostBacked())
        return;     // plan-only build: footprint accounting only
    dw_.assign(w_->elems(), 0.0f);
    db_.assign(b_->elems(), 0.0f);
    double sigma = std::sqrt(2.0 / features);
    float *w = w_->data();
    for (size_t i = 0; i < w_->elems(); i++)
        w[i] = static_cast<float>(rng.gaussian(0.0, sigma));
}

void
FcLayer::forward(const std::vector<const Tensor *> &in, Tensor &out,
                 Workspace &ws)
{
    (void)ws;
    const Tensor &x = *in[0];
    size_t n = static_cast<size_t>(x.shape().n);
    size_t features = x.elems() / n;
    size_t m = static_cast<size_t>(outFeatures_);
    // out(n x m) = x(n x f) * W(m x f)^T
    gemmABt(n, m, features, x.data(), w_->data(), out.data());
    const float *bias = b_->data();
    for (size_t i = 0; i < n; i++) {
        float *row = out.data() + i * m;
        for (size_t j = 0; j < m; j++)
            row[j] += bias[j];
    }
}

void
FcLayer::backward(const std::vector<const Tensor *> &in,
                  const Tensor &out, const Tensor &grad_out,
                  const std::vector<Tensor *> &grad_in, Workspace &ws)
{
    (void)out;
    (void)ws;
    const Tensor &x = *in[0];
    size_t n = static_cast<size_t>(x.shape().n);
    size_t features = x.elems() / n;
    size_t m = static_cast<size_t>(outFeatures_);

    // dW(m x f) += dY(n x m)^T * X(n x f)
    gemmAtB(m, features, n, grad_out.data(), x.data(), dw_.data(), 1.0f);
    for (size_t i = 0; i < n; i++) {
        const float *row = grad_out.data() + i * m;
        for (size_t j = 0; j < m; j++)
            db_[j] += row[j];
    }
    if (grad_in[0]) {
        // dX(n x f) = dY(n x m) * W(m x f)
        gemm(n, features, m, grad_out.data(), w_->data(),
             grad_in[0]->data());
    }
}

void
FcLayer::sgdStep(float lr)
{
    float *w = w_->data();
    for (size_t i = 0; i < w_->elems(); i++) {
        w[i] -= lr * dw_[i];
        dw_[i] = 0.0f;
    }
    float *b = b_->data();
    for (size_t i = 0; i < b_->elems(); i++) {
        b[i] -= lr * db_[i];
        db_[i] = 0.0f;
    }
}

uint64_t
FcLayer::forwardMacs(const std::vector<TensorShape> &in) const
{
    return in[0].elems() * static_cast<uint64_t>(outFeatures_);
}

uint64_t
FcLayer::weightBytes() const
{
    return (w_ ? w_->bytes() : 0) + (b_ ? b_->bytes() : 0);
}

} // namespace zcomp
