#include "dnn/layers/norm.hh"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/log.hh"

namespace zcomp {

LrnLayer::LrnLayer(std::string name, int size, double alpha, double beta,
                   double k)
    : Layer(std::move(name), LayerKind::Lrn), size_(size), alpha_(alpha),
      beta_(beta), k_(k)
{
}

TensorShape
LrnLayer::outputShape(const std::vector<TensorShape> &in) const
{
    fatal_if(in.size() != 1, "lrn %s expects one input", name().c_str());
    return in[0];
}

void
LrnLayer::forward(const std::vector<const Tensor *> &in, Tensor &out,
                  Workspace &ws)
{
    (void)ws;
    const Tensor &x = *in[0];
    const TensorShape &s = x.shape();
    scale_.resize(x.elems());
    const int half = size_ / 2;
    const size_t hw = static_cast<size_t>(s.h) * s.w;

    for (int n = 0; n < s.n; n++) {
        for (int c = 0; c < s.c; c++) {
            int c0 = std::max(0, c - half);
            int c1 = std::min(s.c - 1, c + half);
            for (size_t p = 0; p < hw; p++) {
                double acc = 0.0;
                for (int cc = c0; cc <= c1; cc++) {
                    float v = x.data()[(static_cast<size_t>(n) * s.c +
                                        cc) *
                                           hw +
                                       p];
                    acc += static_cast<double>(v) * v;
                }
                size_t i =
                    (static_cast<size_t>(n) * s.c + c) * hw + p;
                double sc = k_ + alpha_ / size_ * acc;
                scale_[i] = static_cast<float>(sc);
                out.data()[i] = static_cast<float>(
                    x.data()[i] / std::pow(sc, beta_));
            }
        }
    }
}

void
LrnLayer::backward(const std::vector<const Tensor *> &in,
                   const Tensor &out, const Tensor &grad_out,
                   const std::vector<Tensor *> &grad_in, Workspace &ws)
{
    (void)in;
    (void)out;
    (void)ws;
    if (!grad_in[0])
        return;
    // First-order approximation: dx ~= dy / scale^beta (the
    // cross-channel second term is small for the alpha values used in
    // practice). Documented deviation; values are only consumed for
    // gradient-sparsity statistics.
    const float *dy = grad_out.data();
    float *dx = grad_in[0]->data();
    for (size_t i = 0; i < grad_out.elems(); i++) {
        dx[i] = static_cast<float>(
            dy[i] / std::pow(static_cast<double>(scale_[i]), beta_));
    }
}

SoftmaxLayer::SoftmaxLayer(std::string name)
    : Layer(std::move(name), LayerKind::Softmax)
{
}

TensorShape
SoftmaxLayer::outputShape(const std::vector<TensorShape> &in) const
{
    fatal_if(in.size() != 1, "softmax %s expects one input",
             name().c_str());
    return in[0];
}

void
SoftmaxLayer::forward(const std::vector<const Tensor *> &in, Tensor &out,
                      Workspace &ws)
{
    (void)ws;
    const Tensor &x = *in[0];
    size_t n = static_cast<size_t>(x.shape().n);
    size_t classes = x.elems() / n;
    for (size_t i = 0; i < n; i++) {
        const float *row = x.data() + i * classes;
        float *yrow = out.data() + i * classes;
        float mx = row[0];
        for (size_t j = 1; j < classes; j++)
            mx = std::max(mx, row[j]);
        double sum = 0.0;
        for (size_t j = 0; j < classes; j++) {
            yrow[j] = std::exp(row[j] - mx);
            sum += yrow[j];
        }
        for (size_t j = 0; j < classes; j++)
            yrow[j] = static_cast<float>(yrow[j] / sum);
    }
}

void
SoftmaxLayer::backward(const std::vector<const Tensor *> &in,
                       const Tensor &out, const Tensor &grad_out,
                       const std::vector<Tensor *> &grad_in,
                       Workspace &ws)
{
    (void)in;
    (void)out;
    (void)ws;
    if (!grad_in[0])
        return;
    std::memcpy(grad_in[0]->data(), grad_out.data(), grad_out.bytes());
}

} // namespace zcomp
