#include "dnn/layers/activation.hh"

#include <cstring>

#include "common/log.hh"

namespace zcomp {

ReluLayer::ReluLayer(std::string name)
    : Layer(std::move(name), LayerKind::Relu)
{
}

TensorShape
ReluLayer::outputShape(const std::vector<TensorShape> &in) const
{
    fatal_if(in.size() != 1, "relu %s expects one input",
             name().c_str());
    return in[0];
}

void
ReluLayer::forward(const std::vector<const Tensor *> &in, Tensor &out,
                   Workspace &ws)
{
    (void)ws;
    const float *x = in[0]->data();
    float *y = out.data();
    for (size_t i = 0; i < out.elems(); i++)
        y[i] = x[i] > 0 ? x[i] : 0.0f;
}

void
ReluLayer::backward(const std::vector<const Tensor *> &in,
                    const Tensor &out, const Tensor &grad_out,
                    const std::vector<Tensor *> &grad_in, Workspace &ws)
{
    (void)out;
    (void)ws;
    if (!grad_in[0])
        return;
    const float *x = in[0]->data();
    const float *dy = grad_out.data();
    float *dx = grad_in[0]->data();
    for (size_t i = 0; i < grad_out.elems(); i++)
        dx[i] = x[i] > 0 ? dy[i] : 0.0f;
}

DropoutLayer::DropoutLayer(std::string name, double drop_prob,
                           uint64_t seed)
    : Layer(std::move(name), LayerKind::Dropout), dropProb_(drop_prob),
      rng_(seed)
{
}

TensorShape
DropoutLayer::outputShape(const std::vector<TensorShape> &in) const
{
    fatal_if(in.size() != 1, "dropout %s expects one input",
             name().c_str());
    return in[0];
}

void
DropoutLayer::forward(const std::vector<const Tensor *> &in, Tensor &out,
                      Workspace &ws)
{
    (void)ws;
    const float *x = in[0]->data();
    float *y = out.data();
    if (!training_) {
        std::memcpy(y, x, out.bytes());
        return;
    }
    mask_.resize(out.elems());
    float scale = static_cast<float>(1.0 / (1.0 - dropProb_));
    for (size_t i = 0; i < out.elems(); i++) {
        bool keep = !rng_.chance(dropProb_);
        mask_[i] = keep;
        y[i] = keep ? x[i] * scale : 0.0f;
    }
}

void
DropoutLayer::backward(const std::vector<const Tensor *> &in,
                       const Tensor &out, const Tensor &grad_out,
                       const std::vector<Tensor *> &grad_in,
                       Workspace &ws)
{
    (void)in;
    (void)out;
    (void)ws;
    if (!grad_in[0])
        return;
    const float *dy = grad_out.data();
    float *dx = grad_in[0]->data();
    if (!training_) {
        std::memcpy(dx, dy, grad_out.bytes());
        return;
    }
    float scale = static_cast<float>(1.0 / (1.0 - dropProb_));
    for (size_t i = 0; i < grad_out.elems(); i++)
        dx[i] = mask_[i] ? dy[i] * scale : 0.0f;
}

} // namespace zcomp
