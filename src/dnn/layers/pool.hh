/**
 * @file
 * Max and average pooling layers.
 *
 * MaxPool records the argmax of each window during forward so the
 * backward pass routes each gradient to the winning element. Pooling
 * layers reduce the activation footprint and *reduce* the sparsity at
 * their inputs (Section 2.2): a max window is zero only if the whole
 * window is.
 */

#ifndef ZCOMP_DNN_LAYERS_POOL_HH
#define ZCOMP_DNN_LAYERS_POOL_HH

#include "dnn/layer.hh"

namespace zcomp {

class PoolLayer : public Layer
{
  public:
    PoolLayer(std::string name, LayerKind kind, int ksize, int stride,
              int pad = 0);

    TensorShape
    outputShape(const std::vector<TensorShape> &in) const override;
    void forward(const std::vector<const Tensor *> &in, Tensor &out,
                 Workspace &ws) override;
    void backward(const std::vector<const Tensor *> &in,
                  const Tensor &out, const Tensor &grad_out,
                  const std::vector<Tensor *> &grad_in,
                  Workspace &ws) override;

    /** Global average pooling over the full spatial extent. */
    static std::unique_ptr<PoolLayer> globalAvg(std::string name);

  private:
    int outDim(int in, int k) const;

    int ksize_;
    int stride_;
    int pad_;
    bool global_ = false;
    std::vector<uint32_t> argmax_;  //!< winning input index per output
};

} // namespace zcomp

#endif // ZCOMP_DNN_LAYERS_POOL_HH
