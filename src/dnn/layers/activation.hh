/**
 * @file
 * ReLU and Dropout layers - the two sources of feature-map sparsity
 * the paper identifies (Section 2.2): ReLU maps all negative inputs
 * to zero; dropout randomly discards activations during training.
 */

#ifndef ZCOMP_DNN_LAYERS_ACTIVATION_HH
#define ZCOMP_DNN_LAYERS_ACTIVATION_HH

#include "dnn/layer.hh"

namespace zcomp {

class ReluLayer : public Layer
{
  public:
    explicit ReluLayer(std::string name);

    TensorShape
    outputShape(const std::vector<TensorShape> &in) const override;
    void forward(const std::vector<const Tensor *> &in, Tensor &out,
                 Workspace &ws) override;
    void backward(const std::vector<const Tensor *> &in,
                  const Tensor &out, const Tensor &grad_out,
                  const std::vector<Tensor *> &grad_in,
                  Workspace &ws) override;
};

class DropoutLayer : public Layer
{
  public:
    DropoutLayer(std::string name, double drop_prob, uint64_t seed = 99);

    TensorShape
    outputShape(const std::vector<TensorShape> &in) const override;
    void forward(const std::vector<const Tensor *> &in, Tensor &out,
                 Workspace &ws) override;
    void backward(const std::vector<const Tensor *> &in,
                  const Tensor &out, const Tensor &grad_out,
                  const std::vector<Tensor *> &grad_in,
                  Workspace &ws) override;
    void setTraining(bool training) override { training_ = training; }

  private:
    double dropProb_;
    Rng rng_;
    bool training_ = true;
    std::vector<uint8_t> mask_;
};

} // namespace zcomp

#endif // ZCOMP_DNN_LAYERS_ACTIVATION_HH
