/**
 * @file
 * Fully-connected (inner product) layer. Input (N x C [x H x W] is
 * flattened per image); weights are (M) x (C*H*W) row-major.
 */

#ifndef ZCOMP_DNN_LAYERS_FC_HH
#define ZCOMP_DNN_LAYERS_FC_HH

#include "dnn/layer.hh"

namespace zcomp {

class FcLayer : public Layer
{
  public:
    FcLayer(std::string name, int out_features);

    TensorShape
    outputShape(const std::vector<TensorShape> &in) const override;
    void init(VSpace &vs, const std::vector<TensorShape> &in,
              Rng &rng) override;
    void forward(const std::vector<const Tensor *> &in, Tensor &out,
                 Workspace &ws) override;
    void backward(const std::vector<const Tensor *> &in,
                  const Tensor &out, const Tensor &grad_out,
                  const std::vector<Tensor *> &grad_in,
                  Workspace &ws) override;
    void sgdStep(float lr) override;
    uint64_t
    forwardMacs(const std::vector<TensorShape> &in) const override;
    uint64_t weightBytes() const override;

    const Tensor &weights() const { return *w_; }

  private:
    int outFeatures_;
    std::unique_ptr<Tensor> w_;     //!< (out) x (in features)
    std::unique_ptr<Tensor> b_;
    std::vector<float> dw_;
    std::vector<float> db_;
};

} // namespace zcomp

#endif // ZCOMP_DNN_LAYERS_FC_HH
