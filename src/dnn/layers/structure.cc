#include "dnn/layers/structure.hh"

#include <cstring>

#include "common/log.hh"

namespace zcomp {

InputLayer::InputLayer(std::string name, TensorShape shape)
    : Layer(std::move(name), LayerKind::Input), shape_(shape)
{
}

TensorShape
InputLayer::outputShape(const std::vector<TensorShape> &in) const
{
    fatal_if(!in.empty(), "input layer %s takes no inputs",
             name().c_str());
    return shape_;
}

void
InputLayer::forward(const std::vector<const Tensor *> &in, Tensor &out,
                    Workspace &ws)
{
    // The network fills the input tensor directly; nothing to do.
    (void)in;
    (void)out;
    (void)ws;
}

void
InputLayer::backward(const std::vector<const Tensor *> &in,
                     const Tensor &out, const Tensor &grad_out,
                     const std::vector<Tensor *> &grad_in, Workspace &ws)
{
    (void)in;
    (void)out;
    (void)grad_out;
    (void)grad_in;
    (void)ws;
}

EltwiseAddLayer::EltwiseAddLayer(std::string name)
    : Layer(std::move(name), LayerKind::EltwiseAdd)
{
}

TensorShape
EltwiseAddLayer::outputShape(const std::vector<TensorShape> &in) const
{
    fatal_if(in.size() != 2, "eltwise %s expects two inputs",
             name().c_str());
    fatal_if(!(in[0] == in[1]), "eltwise %s shape mismatch %s vs %s",
             name().c_str(), in[0].str().c_str(), in[1].str().c_str());
    return in[0];
}

void
EltwiseAddLayer::forward(const std::vector<const Tensor *> &in,
                         Tensor &out, Workspace &ws)
{
    (void)ws;
    const float *a = in[0]->data();
    const float *b = in[1]->data();
    float *y = out.data();
    for (size_t i = 0; i < out.elems(); i++)
        y[i] = a[i] + b[i];
}

void
EltwiseAddLayer::backward(const std::vector<const Tensor *> &in,
                          const Tensor &out, const Tensor &grad_out,
                          const std::vector<Tensor *> &grad_in,
                          Workspace &ws)
{
    (void)in;
    (void)out;
    (void)ws;
    for (Tensor *dx : grad_in) {
        if (dx)
            std::memcpy(dx->data(), grad_out.data(), grad_out.bytes());
    }
}

ConcatLayer::ConcatLayer(std::string name)
    : Layer(std::move(name), LayerKind::Concat)
{
}

TensorShape
ConcatLayer::outputShape(const std::vector<TensorShape> &in) const
{
    fatal_if(in.empty(), "concat %s needs at least one input",
             name().c_str());
    TensorShape out = in[0];
    for (size_t i = 1; i < in.size(); i++) {
        fatal_if(in[i].n != out.n || in[i].h != out.h ||
                     in[i].w != out.w,
                 "concat %s spatial mismatch", name().c_str());
        out.c += in[i].c;
    }
    return out;
}

void
ConcatLayer::forward(const std::vector<const Tensor *> &in, Tensor &out,
                     Workspace &ws)
{
    (void)ws;
    const TensorShape &os = out.shape();
    const size_t hw = static_cast<size_t>(os.h) * os.w;
    for (int n = 0; n < os.n; n++) {
        int c_off = 0;
        for (const Tensor *x : in) {
            const TensorShape &is = x->shape();
            size_t chunk = static_cast<size_t>(is.c) * hw;
            std::memcpy(out.data() +
                            (static_cast<size_t>(n) * os.c + c_off) *
                                hw,
                        x->data() + static_cast<size_t>(n) * chunk,
                        chunk * sizeof(float));
            c_off += is.c;
        }
    }
}

void
ConcatLayer::backward(const std::vector<const Tensor *> &in,
                      const Tensor &out, const Tensor &grad_out,
                      const std::vector<Tensor *> &grad_in,
                      Workspace &ws)
{
    (void)out;
    (void)ws;
    const TensorShape &os = grad_out.shape();
    const size_t hw = static_cast<size_t>(os.h) * os.w;
    for (int n = 0; n < os.n; n++) {
        int c_off = 0;
        for (size_t i = 0; i < in.size(); i++) {
            const TensorShape &is = in[i]->shape();
            size_t chunk = static_cast<size_t>(is.c) * hw;
            if (grad_in[i]) {
                std::memcpy(
                    grad_in[i]->data() +
                        static_cast<size_t>(n) * chunk,
                    grad_out.data() +
                        (static_cast<size_t>(n) * os.c + c_off) * hw,
                    chunk * sizeof(float));
            }
            c_off += is.c;
        }
    }
}

} // namespace zcomp
