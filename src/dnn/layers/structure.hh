/**
 * @file
 * Structural layers: the network input placeholder, residual
 * element-wise addition (ResNet / Inception-ResNet), and channel
 * concatenation (GoogLeNet inception modules).
 */

#ifndef ZCOMP_DNN_LAYERS_STRUCTURE_HH
#define ZCOMP_DNN_LAYERS_STRUCTURE_HH

#include "dnn/layer.hh"

namespace zcomp {

class InputLayer : public Layer
{
  public:
    InputLayer(std::string name, TensorShape shape);
    TensorShape
    outputShape(const std::vector<TensorShape> &in) const override;
    void forward(const std::vector<const Tensor *> &in, Tensor &out,
                 Workspace &ws) override;
    void backward(const std::vector<const Tensor *> &in,
                  const Tensor &out, const Tensor &grad_out,
                  const std::vector<Tensor *> &grad_in,
                  Workspace &ws) override;

  private:
    TensorShape shape_;
};

class EltwiseAddLayer : public Layer
{
  public:
    explicit EltwiseAddLayer(std::string name);
    TensorShape
    outputShape(const std::vector<TensorShape> &in) const override;
    void forward(const std::vector<const Tensor *> &in, Tensor &out,
                 Workspace &ws) override;
    void backward(const std::vector<const Tensor *> &in,
                  const Tensor &out, const Tensor &grad_out,
                  const std::vector<Tensor *> &grad_in,
                  Workspace &ws) override;
};

class ConcatLayer : public Layer
{
  public:
    explicit ConcatLayer(std::string name);
    TensorShape
    outputShape(const std::vector<TensorShape> &in) const override;
    void forward(const std::vector<const Tensor *> &in, Tensor &out,
                 Workspace &ws) override;
    void backward(const std::vector<const Tensor *> &in,
                  const Tensor &out, const Tensor &grad_out,
                  const std::vector<Tensor *> &grad_in,
                  Workspace &ws) override;
};

} // namespace zcomp

#endif // ZCOMP_DNN_LAYERS_STRUCTURE_HH
