#include "dnn/layers/conv.hh"

#include <cmath>
#include <cstring>

#include "common/log.hh"
#include "dnn/gemm.hh"

namespace zcomp {

ConvLayer::ConvLayer(std::string name, int cout, int kh, int kw,
                     int stride, int pad)
    : Layer(std::move(name), LayerKind::Conv), cout_(cout), kh_(kh),
      kw_(kw), stride_(stride), pad_(pad)
{
}

ConvGeom
ConvLayer::geom(const TensorShape &in) const
{
    ConvGeom g;
    g.cin = in.c;
    g.hin = in.h;
    g.win = in.w;
    g.kh = kh_;
    g.kw = kw_;
    g.stride = stride_;
    g.pad = pad_;
    return g;
}

TensorShape
ConvLayer::outputShape(const std::vector<TensorShape> &in) const
{
    fatal_if(in.size() != 1, "conv %s expects one input", name().c_str());
    ConvGeom g = geom(in[0]);
    fatal_if(g.hout() <= 0 || g.wout() <= 0,
             "conv %s output degenerates for input %s", name().c_str(),
             in[0].str().c_str());
    return {in[0].n, cout_, g.hout(), g.wout()};
}

void
ConvLayer::init(VSpace &vs, const std::vector<TensorShape> &in, Rng &rng)
{
    ConvGeom g = geom(in[0]);
    int k = static_cast<int>(g.patchRows());
    w_ = std::make_unique<Tensor>(vs, name() + ".w",
                                  TensorShape{1, cout_, 1, k},
                                  AllocClass::Weight);
    b_ = std::make_unique<Tensor>(vs, name() + ".b",
                                  TensorShape{1, cout_, 1, 1},
                                  AllocClass::Weight);
    if (!vs.hostBacked())
        return;     // plan-only build: footprint accounting only
    dw_.assign(w_->elems(), 0.0f);
    db_.assign(b_->elems(), 0.0f);

    // He initialization keeps pre-activations roughly unit-variance so
    // ReLU outputs are ~50% sparse from the start, as real nets are.
    double sigma = std::sqrt(2.0 / k);
    float *w = w_->data();
    for (size_t i = 0; i < w_->elems(); i++)
        w[i] = static_cast<float>(rng.gaussian(0.0, sigma));
}

size_t
ConvLayer::workspaceElems(const std::vector<TensorShape> &in) const
{
    ConvGeom g = geom(in[0]);
    return g.patchRows() * g.outPixels();
}

void
ConvLayer::forward(const std::vector<const Tensor *> &in, Tensor &out,
                   Workspace &ws)
{
    const Tensor &x = *in[0];
    ConvGeom g = geom(x.shape());
    const size_t k = g.patchRows();
    const size_t p = g.outPixels();
    const size_t in_img = x.elems() / x.shape().n;
    const size_t out_img = out.elems() / out.shape().n;

    for (int img = 0; img < x.shape().n; img++) {
        im2col(g, x.data() + img * in_img, ws.cols.data());
        float *y = out.data() + img * out_img;
        gemm(static_cast<size_t>(cout_), p, k, w_->data(),
             ws.cols.data(), y);
        const float *bias = b_->data();
        for (int c = 0; c < cout_; c++) {
            float bv = bias[c];
            if (bv == 0.0f)
                continue;
            float *row = y + static_cast<size_t>(c) * p;
            for (size_t i = 0; i < p; i++)
                row[i] += bv;
        }
    }
}

void
ConvLayer::backward(const std::vector<const Tensor *> &in,
                    const Tensor &out, const Tensor &grad_out,
                    const std::vector<Tensor *> &grad_in, Workspace &ws)
{
    (void)out;
    const Tensor &x = *in[0];
    ConvGeom g = geom(x.shape());
    const size_t k = g.patchRows();
    const size_t p = g.outPixels();
    const size_t in_img = x.elems() / x.shape().n;
    const size_t out_img = grad_out.elems() / grad_out.shape().n;
    Tensor *dx = grad_in[0];
    if (dx)
        dx->zero();

    for (int img = 0; img < x.shape().n; img++) {
        const float *dy = grad_out.data() + img * out_img;
        im2col(g, x.data() + img * in_img, ws.cols.data());
        // dW(cout x k) += dY(cout x p) * cols(k x p)^T
        gemmABt(static_cast<size_t>(cout_), k, p, dy, ws.cols.data(),
                dw_.data(), 1.0f);
        // db += row sums of dY
        for (int c = 0; c < cout_; c++) {
            const float *row = dy + static_cast<size_t>(c) * p;
            float acc = 0.0f;
            for (size_t i = 0; i < p; i++)
                acc += row[i];
            db_[static_cast<size_t>(c)] += acc;
        }
        if (dx) {
            // dCols(k x p) = W(cout x k)^T * dY(cout x p)
            gemmAtB(k, p, static_cast<size_t>(cout_), w_->data(), dy,
                    ws.dcols.data());
            col2im(g, ws.dcols.data(), dx->data() + img * in_img);
        }
    }
}

void
ConvLayer::sgdStep(float lr)
{
    float *w = w_->data();
    for (size_t i = 0; i < w_->elems(); i++) {
        w[i] -= lr * dw_[i];
        dw_[i] = 0.0f;
    }
    float *b = b_->data();
    for (size_t i = 0; i < b_->elems(); i++) {
        b[i] -= lr * db_[i];
        db_[i] = 0.0f;
    }
}

uint64_t
ConvLayer::forwardMacs(const std::vector<TensorShape> &in) const
{
    ConvGeom g = geom(in[0]);
    return static_cast<uint64_t>(in[0].n) * cout_ * g.outPixels() *
           g.patchRows();
}

uint64_t
ConvLayer::weightBytes() const
{
    return (w_ ? w_->bytes() : 0) + (b_ ? b_->bytes() : 0);
}

} // namespace zcomp
