/**
 * @file
 * The five-network zoo the paper evaluates (Section 5.3): AlexNet,
 * GoogLeNet, Inception-ResNet-v2, ResNet-32 and VGG-16.
 *
 * Topologies are faithful to the originals with documented
 * substitutions (see each builder): batch-norm is omitted (ResNet /
 * Inception-ResNet use plain residual blocks), the two huge
 * 4096-wide FC layers are narrowed to `fcWidth`, Inception-ResNet-v2
 * is width-reduced, and the classifier defaults to 100 classes
 * (matching the ImageNet-100k-subset scale of the paper's training
 * runs).
 */

#ifndef ZCOMP_DNN_MODELS_HH
#define ZCOMP_DNN_MODELS_HH

#include <memory>

#include "dnn/network.hh"

namespace zcomp {

enum class ModelId
{
    AlexNet = 0,
    GoogLeNet,
    InceptionResnetV2,
    Resnet32,
    Vgg16,
};

constexpr int numModels = 5;

const char *modelName(ModelId id);

/** Per-model build options. */
struct ModelOptions
{
    int batch = 2;
    int classes = 100;
    int imageSize = 0;      //!< 0 = the model's native input size
    int fcWidth = 1024;     //!< width of the big FC layers (orig. 4096)
    double widthScale = 1.0; //!< channel scale (Inception-ResNet only)
};

/** Native input edge length (227/224/149/32). */
int nativeImageSize(ModelId id);

/** Construct (but do not build()) the requested network. */
std::unique_ptr<Network> buildModel(ModelId id, VSpace &vs,
                                    const ModelOptions &opt);

std::unique_ptr<Network> buildAlexNet(VSpace &vs, const ModelOptions &);
std::unique_ptr<Network> buildGoogleNet(VSpace &vs, const ModelOptions &);
std::unique_ptr<Network> buildInceptionResnetV2(VSpace &vs,
                                                const ModelOptions &);
std::unique_ptr<Network> buildResnet32(VSpace &vs, const ModelOptions &);
std::unique_ptr<Network> buildVgg16(VSpace &vs, const ModelOptions &);

} // namespace zcomp

#endif // ZCOMP_DNN_MODELS_HH
