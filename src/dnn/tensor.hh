/**
 * @file
 * NCHW fp32 tensors backed by the simulated address space.
 *
 * Tensors carry both host data (so the framework computes real values
 * whose sparsity drives compression) and a simulated base address (so
 * the timing model can replay their access streams).
 */

#ifndef ZCOMP_DNN_TENSOR_HH
#define ZCOMP_DNN_TENSOR_HH

#include <string>

#include "common/check.hh"
#include "mem/vspace.hh"

namespace zcomp {

/** N x C x H x W shape; FC activations use (n, c, 1, 1). */
struct TensorShape
{
    int n = 1;
    int c = 1;
    int h = 1;
    int w = 1;

    size_t
    elems() const
    {
        return static_cast<size_t>(n) * c * h * w;
    }

    size_t bytes() const { return elems() * sizeof(float); }

    bool operator==(const TensorShape &) const = default;

    std::string str() const;
};

class Tensor
{
  public:
    /** Allocate a zero-filled tensor in the simulated address space. */
    Tensor(VSpace &vs, const std::string &name, TensorShape shape,
           AllocClass cls);

    Tensor(const Tensor &) = delete;
    Tensor &operator=(const Tensor &) = delete;

    const TensorShape &shape() const { return shape_; }
    size_t elems() const { return shape_.elems(); }
    size_t bytes() const { return shape_.bytes(); }

    float *data() { return buf_->f32(); }
    const float *data() const { return buf_->f32(); }

    /** Element access in NCHW order. */
    float &
    at(int n, int c, int h, int w)
    {
        return data()[idx(n, c, h, w)];
    }

    float
    at(int n, int c, int h, int w) const
    {
        return data()[idx(n, c, h, w)];
    }

    /** Simulated virtual address of element offset. */
    Addr
    addrAt(size_t elem_off) const
    {
        ZCOMP_DCHECK(elem_off < elems(),
                     "element offset %zu outside %zu-element tensor",
                     elem_off, elems());
        return buf_->addrAt(elem_off * 4);
    }

    const std::string &name() const { return buf_->name; }
    AllocClass allocClass() const { return buf_->cls; }

    /** Zero all elements. */
    void zero();

    /** Fraction of exact-zero elements. */
    double sparsity() const;

  private:
    size_t
    idx(int n, int c, int h, int w) const
    {
        ZCOMP_DCHECK(n >= 0 && n < shape_.n && c >= 0 && c < shape_.c &&
                         h >= 0 && h < shape_.h && w >= 0 &&
                         w < shape_.w,
                     "index (%d, %d, %d, %d) outside shape %s", n, c, h,
                     w, shape_.str().c_str());
        return ((static_cast<size_t>(n) * shape_.c + c) * shape_.h + h) *
                   shape_.w +
               w;
    }

    TensorShape shape_;
    Buffer *buf_;
};

} // namespace zcomp

#endif // ZCOMP_DNN_TENSOR_HH
