/**
 * @file
 * Network - a DAG of layers with exact forward/backward execution and
 * SGD training, plus the footprint accounting behind Figures 1 and 3.
 *
 * Nodes must be added in topological order (every builder in
 * dnn/models does). Activation tensors are allocated per node as
 * FeatureMap allocations; gradient tensors (training builds only) as
 * GradientMap allocations, so the Figure 3 breakdown falls directly
 * out of the address-space accounting.
 */

#ifndef ZCOMP_DNN_NETWORK_HH
#define ZCOMP_DNN_NETWORK_HH

#include "dnn/layer.hh"

namespace zcomp {

class Network
{
  public:
    struct Node
    {
        std::unique_ptr<Layer> layer;
        std::vector<int> inputs;
        TensorShape shape;
        std::unique_ptr<Tensor> act;
        std::unique_ptr<Tensor> grad;   //!< training builds only
        int consumers = 0;
    };

    /** Footprint by data class (Figure 3 categories). */
    struct Footprint
    {
        uint64_t inputBytes = 0;
        uint64_t weightBytes = 0;
        uint64_t featureMapBytes = 0;
        uint64_t gradientMapBytes = 0;

        uint64_t
        total() const
        {
            return inputBytes + weightBytes + featureMapBytes +
                   gradientMapBytes;
        }
    };

    Network(std::string name, VSpace &vs, TensorShape input_shape);

    /** Append a layer fed by the given nodes; returns its node id. */
    int add(std::unique_ptr<Layer> layer, std::vector<int> inputs);

    /** Convenience for linear chains: feed from the last added node. */
    int add(std::unique_ptr<Layer> layer);

    /**
     * Infer shapes, allocate tensors and parameters. Training builds
     * also allocate gradient maps.
     */
    void build(bool training, uint64_t seed = 1234);

    /** Copy data into the input tensor. */
    void setInput(const float *data);

    /** Fill the input with synthetic unit-gaussian images. */
    void fillSyntheticInput(Rng &rng);

    /** Run the functional forward pass. */
    void forward();

    /**
     * Cross-entropy loss against labels (one per image) on the final
     * softmax node, then run the full backward pass. @return the loss.
     */
    double lossAndBackward(const std::vector<int> &labels);

    /** Apply SGD to every layer's parameters. */
    void sgdStep(float lr);

    int inputNode() const { return 0; }
    int outputNode() const { return static_cast<int>(nodes_.size()) - 1; }
    size_t numNodes() const { return nodes_.size(); }
    const Node &node(int i) const { return nodes_[static_cast<size_t>(i)]; }
    Tensor &activation(int i) { return *nodes_[static_cast<size_t>(i)].act; }
    Tensor *gradient(int i) { return nodes_[static_cast<size_t>(i)].grad.get(); }

    const std::string &name() const { return name_; }
    bool training() const { return training_; }
    TensorShape inputShape() const { return inputShape_; }

    /** Total forward multiply-accumulates. */
    uint64_t totalMacs() const;

    /** Footprint by data class. */
    Footprint footprint() const;

  private:
    std::string name_;
    VSpace &vs_;
    TensorShape inputShape_;
    std::vector<Node> nodes_;
    Workspace ws_;
    std::unique_ptr<Tensor> gradScratch_;
    bool built_ = false;
    bool training_ = false;
};

} // namespace zcomp

#endif // ZCOMP_DNN_NETWORK_HH
