/**
 * @file
 * Single-precision GEMM for the DNN framework's functional pass.
 *
 * The kernels are cache-blocked (fixed Mc row / Kc depth tiles) with
 * a contiguous-j inner loop the compiler auto-vectorizes, and large
 * products split their row blocks across the global ThreadPool; this
 * is the numeric workhorse behind conv (via im2col) and FC layers.
 * Row blocks write disjoint C rows and every element accumulates its
 * K products in ascending order, so results are bitwise identical
 * for any worker count (including ZCOMP_JOBS=1). Timing for GEMMs is
 * generated separately by the simulation layer's blocked-walk emitter
 * - functional math and timing replay are deliberately decoupled (see
 * DESIGN.md Section 4.1).
 */

#ifndef ZCOMP_DNN_GEMM_HH
#define ZCOMP_DNN_GEMM_HH

#include <cstddef>

namespace zcomp {

/**
 * C(MxN) = A(MxK) * B(KxN) + beta * C.
 * Row-major, densely packed.
 */
void gemm(size_t m, size_t n, size_t k, const float *a, const float *b,
          float *c, float beta = 0.0f);

/** C(MxN) = A(KxM)^T * B(KxN) + beta * C. */
void gemmAtB(size_t m, size_t n, size_t k, const float *a, const float *b,
             float *c, float beta = 0.0f);

/** C(MxN) = A(MxK) * B(NxK)^T + beta * C. */
void gemmABt(size_t m, size_t n, size_t k, const float *a, const float *b,
             float *c, float beta = 0.0f);

} // namespace zcomp

#endif // ZCOMP_DNN_GEMM_HH
