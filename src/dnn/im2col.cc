#include "dnn/im2col.hh"

namespace zcomp {

void
im2col(const ConvGeom &g, const float *img, float *cols)
{
    const int ho = g.hout();
    const int wo = g.wout();
    const size_t pixels = g.outPixels();
    size_t row = 0;
    for (int c = 0; c < g.cin; c++) {
        for (int ky = 0; ky < g.kh; ky++) {
            for (int kx = 0; kx < g.kw; kx++, row++) {
                float *dst = cols + row * pixels;
                for (int oy = 0; oy < ho; oy++) {
                    int iy = oy * g.stride - g.pad + ky;
                    for (int ox = 0; ox < wo; ox++) {
                        int ix = ox * g.stride - g.pad + kx;
                        float v = 0.0f;
                        if (iy >= 0 && iy < g.hin && ix >= 0 &&
                            ix < g.win) {
                            v = img[(static_cast<size_t>(c) * g.hin +
                                     iy) *
                                        g.win +
                                    ix];
                        }
                        dst[static_cast<size_t>(oy) * wo + ox] = v;
                    }
                }
            }
        }
    }
}

void
col2im(const ConvGeom &g, const float *cols, float *img)
{
    const int ho = g.hout();
    const int wo = g.wout();
    const size_t pixels = g.outPixels();
    size_t row = 0;
    for (int c = 0; c < g.cin; c++) {
        for (int ky = 0; ky < g.kh; ky++) {
            for (int kx = 0; kx < g.kw; kx++, row++) {
                const float *src = cols + row * pixels;
                for (int oy = 0; oy < ho; oy++) {
                    int iy = oy * g.stride - g.pad + ky;
                    if (iy < 0 || iy >= g.hin)
                        continue;
                    for (int ox = 0; ox < wo; ox++) {
                        int ix = ox * g.stride - g.pad + kx;
                        if (ix < 0 || ix >= g.win)
                            continue;
                        img[(static_cast<size_t>(c) * g.hin + iy) *
                                g.win +
                            ix] +=
                            src[static_cast<size_t>(oy) * wo + ox];
                    }
                }
            }
        }
    }
}

} // namespace zcomp
