/**
 * @file
 * im2col / col2im transforms for convolution lowering.
 *
 * im2col rewrites one image's C x H x W input into a (C*kh*kw) x
 * (Hout*Wout) patch matrix so convolution becomes a GEMM; col2im is
 * its scatter-adjoint used by the backward pass.
 */

#ifndef ZCOMP_DNN_IM2COL_HH
#define ZCOMP_DNN_IM2COL_HH

#include <cstddef>

namespace zcomp {

struct ConvGeom
{
    int cin = 1;
    int hin = 1;
    int win = 1;
    int kh = 1;
    int kw = 1;
    int stride = 1;
    int pad = 0;

    int hout() const { return (hin + 2 * pad - kh) / stride + 1; }
    int wout() const { return (win + 2 * pad - kw) / stride + 1; }
    size_t patchRows() const
    {
        return static_cast<size_t>(cin) * kh * kw;
    }
    size_t outPixels() const
    {
        return static_cast<size_t>(hout()) * wout();
    }
};

/**
 * Expand one image (cin x hin x win) into cols, a (cin*kh*kw) x
 * (hout*wout) row-major matrix. Out-of-bounds (padding) samples are 0.
 */
void im2col(const ConvGeom &g, const float *img, float *cols);

/**
 * Scatter-add cols back into an image-shaped gradient buffer
 * (the buffer must be zeroed by the caller).
 */
void col2im(const ConvGeom &g, const float *cols, float *img);

} // namespace zcomp

#endif // ZCOMP_DNN_IM2COL_HH
