#include "dnn/gemm.hh"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/simd.hh"
#include "common/thread_pool.hh"

namespace zcomp {

namespace {

/*
 * Cache-blocked kernels, parallel over disjoint row blocks of C.
 *
 * The tile sizes are fixed constants (never derived from the worker
 * count) and every C element accumulates its K-dimension products in
 * strictly ascending p order, exactly like the old naive loops. Row
 * blocks touch disjoint output rows, so the results are bitwise
 * independent of how many threads execute them - the determinism the
 * study runner relies on (jobs=1 and jobs=N agree exactly).
 */
constexpr size_t Mc = 32;       //!< C rows per parallel chunk
constexpr size_t Kc = 256;      //!< K panel kept hot across the block

/** Small products are not worth the fork/join overhead. */
constexpr size_t minParallelFlops = size_t(1) << 22;

void
forRowBlocks(size_t m, size_t n, size_t k,
             const std::function<void(size_t, size_t)> &body)
{
    ThreadPool &pool = ThreadPool::global();
    if (pool.jobs() <= 1 || 2 * m * n * k < minParallelFlops) {
        body(0, m);
        return;
    }
    pool.parallelFor(0, m, Mc, body);
}

void
gemmRows(size_t i0, size_t i1, size_t n, size_t k, const float *a,
         const float *b, float *c, float beta)
{
    if (beta == 0.0f)
        std::memset(c + i0 * n, 0, (i1 - i0) * n * sizeof(float));
    for (size_t pc = 0; pc < k; pc += Kc) {
        size_t pe = std::min(k, pc + Kc);
        for (size_t i = i0; i < i1; i++) {
            const float *arow = a + i * k;
            float *crow = c + i * n;
            for (size_t p = pc; p < pe; p++) {
                float av = arow[p];
                if (av == 0.0f)
                    continue;
                const float *brow = b + p * n;
                if (simd::axpyF32(av, brow, crow, n))
                    continue;
                for (size_t j = 0; j < n; j++)
                    crow[j] += av * brow[j];
            }
        }
    }
}

void
gemmAtBRows(size_t i0, size_t i1, size_t m, size_t n, size_t k,
            const float *a, const float *b, float *c, float beta)
{
    // A is (K x M): A^T(i, p) = a[p*m + i].
    if (beta == 0.0f)
        std::memset(c + i0 * n, 0, (i1 - i0) * n * sizeof(float));
    for (size_t pc = 0; pc < k; pc += Kc) {
        size_t pe = std::min(k, pc + Kc);
        for (size_t p = pc; p < pe; p++) {
            const float *arow = a + p * m;
            const float *brow = b + p * n;
            for (size_t i = i0; i < i1; i++) {
                float av = arow[i];
                if (av == 0.0f)
                    continue;
                float *crow = c + i * n;
                if (simd::axpyF32(av, brow, crow, n))
                    continue;
                for (size_t j = 0; j < n; j++)
                    crow[j] += av * brow[j];
            }
        }
    }
}

void
gemmABtRows(size_t i0, size_t i1, size_t n, size_t k, const float *a,
            const float *b, float *c, float beta)
{
    // B is (N x K): B^T(p, j) = b[j*k + p]. Dot products over K,
    // K-blocked so the touched B panel stays cache-resident across
    // the rows of the block. Storing the running sums through C
    // between panels keeps the per-element operation sequence
    // identical to the unblocked dot product (float stores are
    // exact).
    for (size_t i = i0; i < i1; i++) {
        float *crow = c + i * n;
        if (beta == 0.0f) {
            std::memset(crow, 0, n * sizeof(float));
        } else {
            for (size_t j = 0; j < n; j++)
                crow[j] *= beta;
        }
    }
    // Probe whether the active backend has a vector path (a zero-
    // length panel is a no-op either way); falling back mid-block is
    // impossible since the backend is fixed for the run.
    float probe[16] = {};
    const bool vec = simd::dotPanel16F32(probe, probe, 0, probe);
    static thread_local std::vector<float> btbuf;
    if (vec)
        btbuf.resize(Kc * 16);
    for (size_t pc = 0; pc < k; pc += Kc) {
        size_t pe = std::min(k, pc + Kc);
        const size_t plen = pe - pc;
        size_t j0 = 0;
        if (vec) {
            // 16-column panels: transpose the B^T panel once (exact
            // copies) and reuse it for every row of the block. Each
            // c(i,j) still accumulates its products in ascending p
            // with separate multiply and add, so the value computed
            // for every element is bit-identical to the scalar loop
            // below; only the order *across* independent elements
            // changes.
            for (; j0 + 16 <= n; j0 += 16) {
                for (size_t l = 0; l < 16; l++) {
                    const float *bcol = b + (j0 + l) * k + pc;
                    for (size_t p = 0; p < plen; p++)
                        btbuf[p * 16 + l] = bcol[p];
                }
                for (size_t i = i0; i < i1; i++) {
                    simd::dotPanel16F32(a + i * k + pc, btbuf.data(),
                                        plen, c + i * n + j0);
                }
            }
        }
        for (size_t i = i0; i < i1; i++) {
            const float *arow = a + i * k;
            float *crow = c + i * n;
            for (size_t j = j0; j < n; j++) {
                const float *brow = b + j * k;
                float acc = crow[j];
                for (size_t p = pc; p < pe; p++)
                    acc += arow[p] * brow[p];
                crow[j] = acc;
            }
        }
    }
}

} // namespace

void
gemm(size_t m, size_t n, size_t k, const float *a, const float *b,
     float *c, float beta)
{
    forRowBlocks(m, n, k, [&](size_t i0, size_t i1) {
        gemmRows(i0, i1, n, k, a, b, c, beta);
    });
}

void
gemmAtB(size_t m, size_t n, size_t k, const float *a, const float *b,
        float *c, float beta)
{
    forRowBlocks(m, n, k, [&](size_t i0, size_t i1) {
        gemmAtBRows(i0, i1, m, n, k, a, b, c, beta);
    });
}

void
gemmABt(size_t m, size_t n, size_t k, const float *a, const float *b,
        float *c, float beta)
{
    forRowBlocks(m, n, k, [&](size_t i0, size_t i1) {
        gemmABtRows(i0, i1, n, k, a, b, c, beta);
    });
}

} // namespace zcomp
