#include "dnn/gemm.hh"

#include <cstring>

namespace zcomp {

void
gemm(size_t m, size_t n, size_t k, const float *a, const float *b,
     float *c, float beta)
{
    if (beta == 0.0f)
        std::memset(c, 0, m * n * sizeof(float));
    for (size_t i = 0; i < m; i++) {
        const float *arow = a + i * k;
        float *crow = c + i * n;
        for (size_t p = 0; p < k; p++) {
            float av = arow[p];
            if (av == 0.0f)
                continue;
            const float *brow = b + p * n;
            for (size_t j = 0; j < n; j++)
                crow[j] += av * brow[j];
        }
    }
}

void
gemmAtB(size_t m, size_t n, size_t k, const float *a, const float *b,
        float *c, float beta)
{
    // A is (K x M): A^T(i, p) = a[p*m + i].
    if (beta == 0.0f)
        std::memset(c, 0, m * n * sizeof(float));
    for (size_t p = 0; p < k; p++) {
        const float *arow = a + p * m;
        const float *brow = b + p * n;
        for (size_t i = 0; i < m; i++) {
            float av = arow[i];
            if (av == 0.0f)
                continue;
            float *crow = c + i * n;
            for (size_t j = 0; j < n; j++)
                crow[j] += av * brow[j];
        }
    }
}

void
gemmABt(size_t m, size_t n, size_t k, const float *a, const float *b,
        float *c, float beta)
{
    // B is (N x K): B^T(p, j) = b[j*k + p]. Dot products over K.
    for (size_t i = 0; i < m; i++) {
        const float *arow = a + i * k;
        float *crow = c + i * n;
        for (size_t j = 0; j < n; j++) {
            const float *brow = b + j * k;
            float acc = beta == 0.0f ? 0.0f : beta * crow[j];
            for (size_t p = 0; p < k; p++)
                acc += arow[p] * brow[p];
            crow[j] = acc;
        }
    }
}

} // namespace zcomp
