#include "dnn/tensor.hh"

#include <cstring>

#include "common/log.hh"
#include "common/simd.hh"

namespace zcomp {

std::string
TensorShape::str() const
{
    return format("%dx%dx%dx%d", n, c, h, w);
}

Tensor::Tensor(VSpace &vs, const std::string &name, TensorShape shape,
               AllocClass cls)
    : shape_(shape)
{
    // Each dimension must be positive: a negative pair would slip
    // past an elems()-only test with a positive product.
    ZCOMP_CHECK(shape.n > 0 && shape.c > 0 && shape.h > 0 && shape.w > 0,
                "tensor %s has invalid shape %s", name.c_str(),
                shape.str().c_str());
    fatal_if(shape.elems() == 0, "tensor %s has zero elements",
             name.c_str());
    buf_ = &vs.alloc(name, shape.bytes(), cls);
}

void
Tensor::zero()
{
    std::memset(data(), 0, bytes());
}

double
Tensor::sparsity() const
{
    const float *d = data();
    size_t nnz = 0;
    if (simd::countNonzeroF32(d, elems(), nnz))
        return static_cast<double>(elems() - nnz) /
               static_cast<double>(elems());
    size_t zeros = 0;
    for (size_t i = 0; i < elems(); i++) {
        if (d[i] == 0.0f)
            zeros++;
    }
    return static_cast<double>(zeros) / static_cast<double>(elems());
}

} // namespace zcomp
