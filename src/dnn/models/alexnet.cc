/**
 * @file
 * AlexNet [37]: 5 conv layers (LRN after conv1/conv2), 3 max pools,
 * 3 FC layers with dropout. Native input 227x227x3.
 */

#include "common/log.hh"
#include "dnn/layers/activation.hh"
#include "dnn/layers/conv.hh"
#include "dnn/layers/fc.hh"
#include "dnn/layers/norm.hh"
#include "dnn/layers/pool.hh"
#include "dnn/models.hh"

namespace zcomp {

const char *
modelName(ModelId id)
{
    switch (id) {
      case ModelId::AlexNet:
        return "alexnet";
      case ModelId::GoogLeNet:
        return "googlenet";
      case ModelId::InceptionResnetV2:
        return "inception-resnet-v2";
      case ModelId::Resnet32:
        return "resnet-32";
      case ModelId::Vgg16:
        return "vgg-16";
    }
    return "?";
}

int
nativeImageSize(ModelId id)
{
    switch (id) {
      case ModelId::AlexNet:
        return 227;
      case ModelId::GoogLeNet:
      case ModelId::Vgg16:
        return 224;
      case ModelId::InceptionResnetV2:
        return 149;
      case ModelId::Resnet32:
        return 32;
    }
    return 224;
}

std::unique_ptr<Network>
buildModel(ModelId id, VSpace &vs, const ModelOptions &opt)
{
    switch (id) {
      case ModelId::AlexNet:
        return buildAlexNet(vs, opt);
      case ModelId::GoogLeNet:
        return buildGoogleNet(vs, opt);
      case ModelId::InceptionResnetV2:
        return buildInceptionResnetV2(vs, opt);
      case ModelId::Resnet32:
        return buildResnet32(vs, opt);
      case ModelId::Vgg16:
        return buildVgg16(vs, opt);
    }
    panic("bad model id");
}

std::unique_ptr<Network>
buildAlexNet(VSpace &vs, const ModelOptions &opt)
{
    int sz = opt.imageSize ? opt.imageSize : 227;
    auto net = std::make_unique<Network>(
        "alexnet", vs, TensorShape{opt.batch, 3, sz, sz});

    net->add(std::make_unique<ConvLayer>("conv1", 96, 11, 11, 4, 0));
    net->add(std::make_unique<ReluLayer>("relu1"));
    net->add(std::make_unique<LrnLayer>("norm1"));
    net->add(std::make_unique<PoolLayer>("pool1", LayerKind::MaxPool, 3,
                                         2));
    net->add(std::make_unique<ConvLayer>("conv2", 256, 5, 5, 1, 2));
    net->add(std::make_unique<ReluLayer>("relu2"));
    net->add(std::make_unique<LrnLayer>("norm2"));
    net->add(std::make_unique<PoolLayer>("pool2", LayerKind::MaxPool, 3,
                                         2));
    net->add(std::make_unique<ConvLayer>("conv3", 384, 3, 3, 1, 1));
    net->add(std::make_unique<ReluLayer>("relu3"));
    net->add(std::make_unique<ConvLayer>("conv4", 384, 3, 3, 1, 1));
    net->add(std::make_unique<ReluLayer>("relu4"));
    net->add(std::make_unique<ConvLayer>("conv5", 256, 3, 3, 1, 1));
    net->add(std::make_unique<ReluLayer>("relu5"));
    net->add(std::make_unique<PoolLayer>("pool5", LayerKind::MaxPool, 3,
                                         2));
    net->add(std::make_unique<FcLayer>("fc6", opt.fcWidth));
    net->add(std::make_unique<ReluLayer>("relu6"));
    net->add(std::make_unique<DropoutLayer>("drop6", 0.5));
    net->add(std::make_unique<FcLayer>("fc7", opt.fcWidth));
    net->add(std::make_unique<ReluLayer>("relu7"));
    net->add(std::make_unique<DropoutLayer>("drop7", 0.5));
    net->add(std::make_unique<FcLayer>("fc8", opt.classes));
    net->add(std::make_unique<SoftmaxLayer>("prob"));
    return net;
}

} // namespace zcomp
