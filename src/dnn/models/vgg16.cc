/**
 * @file
 * VGG-16 [51]: 13 3x3 convolutions in five blocks separated by 2x2
 * max pools, then three FC layers. Native input 224x224x3.
 */

#include "common/log.hh"
#include "dnn/layers/activation.hh"
#include "dnn/layers/conv.hh"
#include "dnn/layers/fc.hh"
#include "dnn/layers/norm.hh"
#include "dnn/layers/pool.hh"
#include "dnn/models.hh"

namespace zcomp {

std::unique_ptr<Network>
buildVgg16(VSpace &vs, const ModelOptions &opt)
{
    int sz = opt.imageSize ? opt.imageSize : 224;
    auto net = std::make_unique<Network>(
        "vgg-16", vs, TensorShape{opt.batch, 3, sz, sz});

    struct Block
    {
        int convs;
        int channels;
    };
    const Block blocks[] = {{2, 64}, {2, 128}, {3, 256}, {3, 512},
                            {3, 512}};

    int bi = 1;
    for (const Block &b : blocks) {
        for (int c = 1; c <= b.convs; c++) {
            std::string tag = format("%d_%d", bi, c);
            net->add(std::make_unique<ConvLayer>("conv" + tag,
                                                 b.channels, 3, 3, 1,
                                                 1));
            net->add(std::make_unique<ReluLayer>("relu" + tag));
        }
        net->add(std::make_unique<PoolLayer>(format("pool%d", bi),
                                             LayerKind::MaxPool, 2, 2));
        bi++;
    }

    net->add(std::make_unique<FcLayer>("fc6", opt.fcWidth));
    net->add(std::make_unique<ReluLayer>("relu6"));
    net->add(std::make_unique<DropoutLayer>("drop6", 0.5));
    net->add(std::make_unique<FcLayer>("fc7", opt.fcWidth));
    net->add(std::make_unique<ReluLayer>("relu7"));
    net->add(std::make_unique<DropoutLayer>("drop7", 0.5));
    net->add(std::make_unique<FcLayer>("fc8", opt.classes));
    net->add(std::make_unique<SoftmaxLayer>("prob"));
    return net;
}

} // namespace zcomp
