/**
 * @file
 * GoogLeNet (Inception v1): 7x7 stem, two LRN-flanked convolutions,
 * nine inception modules (3a-5b) and a global-average-pool classifier.
 * Native input 224x224x3.
 */

#include "common/log.hh"
#include "dnn/layers/activation.hh"
#include "dnn/layers/conv.hh"
#include "dnn/layers/fc.hh"
#include "dnn/layers/norm.hh"
#include "dnn/layers/pool.hh"
#include "dnn/layers/structure.hh"
#include "dnn/models.hh"

namespace zcomp {

namespace {

/** conv + relu helper; returns the relu node. */
int
convRelu(Network &net, int in, const std::string &name, int cout, int k,
         int stride, int pad)
{
    int c = net.add(std::make_unique<ConvLayer>(name, cout, k, k,
                                                stride, pad),
                    {in});
    return net.add(std::make_unique<ReluLayer>(name + ".relu"), {c});
}

/**
 * One inception module: 1x1, 1x1->3x3, 1x1->5x5 and pool->1x1
 * branches concatenated along channels.
 */
int
inception(Network &net, int in, const std::string &tag, int c1, int c3r,
          int c3, int c5r, int c5, int cp)
{
    int b1 = convRelu(net, in, tag + ".1x1", c1, 1, 1, 0);
    int b3r = convRelu(net, in, tag + ".3x3r", c3r, 1, 1, 0);
    int b3 = convRelu(net, b3r, tag + ".3x3", c3, 3, 1, 1);
    int b5r = convRelu(net, in, tag + ".5x5r", c5r, 1, 1, 0);
    int b5 = convRelu(net, b5r, tag + ".5x5", c5, 5, 1, 2);
    int bp = net.add(std::make_unique<PoolLayer>(tag + ".pool",
                                                 LayerKind::MaxPool, 3,
                                                 1, 1),
                     {in});
    int bpc = convRelu(net, bp, tag + ".poolproj", cp, 1, 1, 0);
    return net.add(std::make_unique<ConcatLayer>(tag + ".concat"),
                   {b1, b3, b5, bpc});
}

} // namespace

std::unique_ptr<Network>
buildGoogleNet(VSpace &vs, const ModelOptions &opt)
{
    int sz = opt.imageSize ? opt.imageSize : 224;
    auto net = std::make_unique<Network>(
        "googlenet", vs, TensorShape{opt.batch, 3, sz, sz});

    int node = convRelu(*net, 0, "conv1", 64, 7, 2, 3);
    node = net->add(std::make_unique<PoolLayer>("pool1",
                                                LayerKind::MaxPool, 3,
                                                2, 1),
                    {node});
    node = net->add(std::make_unique<LrnLayer>("norm1"), {node});
    node = convRelu(*net, node, "conv2r", 64, 1, 1, 0);
    node = convRelu(*net, node, "conv2", 192, 3, 1, 1);
    node = net->add(std::make_unique<LrnLayer>("norm2"), {node});
    node = net->add(std::make_unique<PoolLayer>("pool2",
                                                LayerKind::MaxPool, 3,
                                                2, 1),
                    {node});

    node = inception(*net, node, "3a", 64, 96, 128, 16, 32, 32);
    node = inception(*net, node, "3b", 128, 128, 192, 32, 96, 64);
    node = net->add(std::make_unique<PoolLayer>("pool3",
                                                LayerKind::MaxPool, 3,
                                                2, 1),
                    {node});
    node = inception(*net, node, "4a", 192, 96, 208, 16, 48, 64);
    node = inception(*net, node, "4b", 160, 112, 224, 24, 64, 64);
    node = inception(*net, node, "4c", 128, 128, 256, 24, 64, 64);
    node = inception(*net, node, "4d", 112, 144, 288, 32, 64, 64);
    node = inception(*net, node, "4e", 256, 160, 320, 32, 128, 128);
    node = net->add(std::make_unique<PoolLayer>("pool4",
                                                LayerKind::MaxPool, 3,
                                                2, 1),
                    {node});
    node = inception(*net, node, "5a", 256, 160, 320, 32, 128, 128);
    node = inception(*net, node, "5b", 384, 192, 384, 48, 128, 128);

    node = net->add(PoolLayer::globalAvg("pool5"), {node});
    node = net->add(std::make_unique<DropoutLayer>("drop", 0.4),
                    {node});
    node = net->add(std::make_unique<FcLayer>("fc", opt.classes),
                    {node});
    net->add(std::make_unique<SoftmaxLayer>("prob"), {node});
    return net;
}

} // namespace zcomp
