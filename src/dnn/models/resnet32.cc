/**
 * @file
 * ResNet-32 [32], the CIFAR variant: a 3x3 stem then three stages of
 * five basic residual blocks at 16/32/64 channels, spatially
 * downsampling (stride 2, with 1x1 projection on the skip path) at
 * stage transitions, global average pooling and a linear classifier.
 * Native input 32x32x3.
 *
 * Substitution: batch normalization is omitted (our framework trains
 * only for sparsity statistics, not accuracy); He initialization keeps
 * activations well-scaled through the residual adds.
 */

#include "common/log.hh"
#include "dnn/layers/activation.hh"
#include "dnn/layers/conv.hh"
#include "dnn/layers/fc.hh"
#include "dnn/layers/norm.hh"
#include "dnn/layers/pool.hh"
#include "dnn/layers/structure.hh"
#include "dnn/models.hh"

namespace zcomp {

namespace {

/** One basic block: conv-relu-conv plus skip, then relu. */
int
basicBlock(Network &net, int in_node, const std::string &tag,
           int channels, int stride)
{
    int skip = in_node;
    if (stride != 1) {
        // Projection shortcut when downsampling / widening.
        skip = net.add(std::make_unique<ConvLayer>(tag + ".proj",
                                                   channels, 1, 1,
                                                   stride, 0),
                       {in_node});
    }
    int c1 = net.add(std::make_unique<ConvLayer>(tag + ".conv1",
                                                 channels, 3, 3, stride,
                                                 1),
                     {in_node});
    int r1 = net.add(std::make_unique<ReluLayer>(tag + ".relu1"), {c1});
    int c2 = net.add(std::make_unique<ConvLayer>(tag + ".conv2",
                                                 channels, 3, 3, 1, 1),
                     {r1});
    int sum = net.add(std::make_unique<EltwiseAddLayer>(tag + ".add"),
                      {c2, skip});
    return net.add(std::make_unique<ReluLayer>(tag + ".relu2"), {sum});
}

} // namespace

std::unique_ptr<Network>
buildResnet32(VSpace &vs, const ModelOptions &opt)
{
    int sz = opt.imageSize ? opt.imageSize : 32;
    auto net = std::make_unique<Network>(
        "resnet-32", vs, TensorShape{opt.batch, 3, sz, sz});

    int stem = net->add(std::make_unique<ConvLayer>("conv1", 16, 3, 3,
                                                    1, 1),
                        {0});
    int node = net->add(std::make_unique<ReluLayer>("relu1"), {stem});

    const int channels[] = {16, 32, 64};
    for (int stage = 0; stage < 3; stage++) {
        for (int block = 0; block < 5; block++) {
            int stride = (stage > 0 && block == 0) ? 2 : 1;
            node = basicBlock(*net,
                              node,
                              format("res%d.%d", stage + 1, block + 1),
                              channels[stage], stride);
        }
    }

    node = net->add(PoolLayer::globalAvg("pool"), {node});
    node = net->add(std::make_unique<FcLayer>("fc", opt.classes),
                    {node});
    net->add(std::make_unique<SoftmaxLayer>("prob"), {node});
    return net;
}

} // namespace zcomp
