/**
 * @file
 * Inception-ResNet-v2 (width-reduced).
 *
 * The per-block topology follows the original: a convolutional stem,
 * five Inception-ResNet-A blocks, a Reduction-A, ten
 * Inception-ResNet-B blocks, a Reduction-B, five Inception-ResNet-C
 * blocks, then global average pooling, dropout and the classifier.
 *
 * Documented substitutions (DESIGN.md Section 6):
 *  - channel counts are scaled by ModelOptions::widthScale (default
 *    0.5 from the bench configs) to keep single-host simulation sane;
 *  - the 1x7/7x1 asymmetric factorizations of block B and the 1x3/3x1
 *    of block C are replaced by single 3x3 convolutions of the same
 *    output width;
 *  - batch normalization is omitted and the residual scaling factor
 *    is folded away (plain element-wise adds).
 */

#include "common/log.hh"
#include "dnn/layers/activation.hh"
#include "dnn/layers/conv.hh"
#include "dnn/layers/fc.hh"
#include "dnn/layers/norm.hh"
#include "dnn/layers/pool.hh"
#include "dnn/layers/structure.hh"
#include "dnn/models.hh"

namespace zcomp {

namespace {

struct Builder
{
    Network &net;
    double scale;

    int
    ch(int c) const
    {
        return std::max(4, static_cast<int>(c * scale));
    }

    int
    convRelu(int in, const std::string &name, int cout, int kh, int kw,
             int stride, int pad)
    {
        int c = net.add(std::make_unique<ConvLayer>(name, ch(cout), kh,
                                                    kw, stride, pad),
                        {in});
        return net.add(std::make_unique<ReluLayer>(name + ".relu"),
                       {c});
    }

    /** Linear (no relu) 1x1 used to match residual widths. */
    int
    convLinear(int in, const std::string &name, int cout_scaled)
    {
        return net.add(std::make_unique<ConvLayer>(name, cout_scaled, 1,
                                                   1, 1, 0),
                       {in});
    }

    int
    residual(int in, int branch_concat, const std::string &tag,
             int width_scaled)
    {
        int up = convLinear(branch_concat, tag + ".up", width_scaled);
        int sum = net.add(std::make_unique<EltwiseAddLayer>(tag +
                                                            ".add"),
                          {up, in});
        return net.add(std::make_unique<ReluLayer>(tag + ".relu"),
                       {sum});
    }
};

} // namespace

std::unique_ptr<Network>
buildInceptionResnetV2(VSpace &vs, const ModelOptions &opt)
{
    int sz = opt.imageSize ? opt.imageSize : 149;
    auto net = std::make_unique<Network>(
        "inception-resnet-v2", vs, TensorShape{opt.batch, 3, sz, sz});
    Builder b{*net, opt.widthScale};

    // Stem: 149 -> 74 -> 72 -> 35 -> 33 -> 16.
    int node = b.convRelu(0, "stem.conv1", 32, 3, 3, 2, 0);
    node = b.convRelu(node, "stem.conv2", 32, 3, 3, 1, 0);
    node = b.convRelu(node, "stem.conv3", 64, 3, 3, 1, 1);
    node = net->add(std::make_unique<PoolLayer>("stem.pool1",
                                                LayerKind::MaxPool, 3,
                                                2),
                    {node});
    node = b.convRelu(node, "stem.conv4", 80, 1, 1, 1, 0);
    node = b.convRelu(node, "stem.conv5", 192, 3, 3, 1, 0);
    node = net->add(std::make_unique<PoolLayer>("stem.pool2",
                                                LayerKind::MaxPool, 3,
                                                2),
                    {node});
    // Widen to the block-A working width (orig. 320).
    int width_a = b.ch(320);
    node = net->add(std::make_unique<ConvLayer>("stem.proj", width_a, 1,
                                                1, 1, 0),
                    {node});
    node = net->add(std::make_unique<ReluLayer>("stem.proj.relu"),
                    {node});

    // 5x Inception-ResNet-A.
    for (int i = 1; i <= 5; i++) {
        std::string tag = format("a%d", i);
        int b1 = b.convRelu(node, tag + ".b1", 32, 1, 1, 1, 0);
        int b2 = b.convRelu(node, tag + ".b2a", 32, 1, 1, 1, 0);
        b2 = b.convRelu(b2, tag + ".b2b", 32, 3, 3, 1, 1);
        int b3 = b.convRelu(node, tag + ".b3a", 32, 1, 1, 1, 0);
        b3 = b.convRelu(b3, tag + ".b3b", 48, 3, 3, 1, 1);
        b3 = b.convRelu(b3, tag + ".b3c", 64, 3, 3, 1, 1);
        int cat = net->add(std::make_unique<ConcatLayer>(tag +
                                                         ".concat"),
                           {b1, b2, b3});
        node = b.residual(node, cat, tag, width_a);
    }

    // Reduction-A: 16 -> 7 spatial, widen (orig. 1088).
    {
        int p = net->add(std::make_unique<PoolLayer>("ra.pool",
                                                     LayerKind::MaxPool,
                                                     3, 2),
                         {node});
        int c1 = b.convRelu(node, "ra.c1", 384, 3, 3, 2, 0);
        int c2 = b.convRelu(node, "ra.c2a", 256, 1, 1, 1, 0);
        c2 = b.convRelu(c2, "ra.c2b", 256, 3, 3, 1, 1);
        c2 = b.convRelu(c2, "ra.c2c", 384, 3, 3, 2, 0);
        node = net->add(std::make_unique<ConcatLayer>("ra.concat"),
                        {p, c1, c2});
    }
    int width_b = b.ch(320) + b.ch(384) * 2;

    // 10x Inception-ResNet-B (1x7/7x1 replaced by 3x3).
    for (int i = 1; i <= 10; i++) {
        std::string tag = format("b%d", i);
        int b1 = b.convRelu(node, tag + ".b1", 192, 1, 1, 1, 0);
        int b2 = b.convRelu(node, tag + ".b2a", 128, 1, 1, 1, 0);
        b2 = b.convRelu(b2, tag + ".b2b", 192, 3, 3, 1, 1);
        int cat = net->add(std::make_unique<ConcatLayer>(tag +
                                                         ".concat"),
                           {b1, b2});
        node = b.residual(node, cat, tag, width_b);
    }

    // Reduction-B: 7 -> 3 spatial.
    {
        int p = net->add(std::make_unique<PoolLayer>("rb.pool",
                                                     LayerKind::MaxPool,
                                                     3, 2),
                         {node});
        int c1 = b.convRelu(node, "rb.c1a", 256, 1, 1, 1, 0);
        c1 = b.convRelu(c1, "rb.c1b", 384, 3, 3, 2, 0);
        int c2 = b.convRelu(node, "rb.c2a", 256, 1, 1, 1, 0);
        c2 = b.convRelu(c2, "rb.c2b", 288, 3, 3, 2, 0);
        int c3 = b.convRelu(node, "rb.c3a", 256, 1, 1, 1, 0);
        c3 = b.convRelu(c3, "rb.c3b", 288, 3, 3, 1, 1);
        c3 = b.convRelu(c3, "rb.c3c", 320, 3, 3, 2, 0);
        node = net->add(std::make_unique<ConcatLayer>("rb.concat"),
                        {p, c1, c2, c3});
    }
    int width_c = width_b + b.ch(384) + b.ch(288) + b.ch(320);

    // 5x Inception-ResNet-C (1x3/3x1 replaced by 3x3).
    for (int i = 1; i <= 5; i++) {
        std::string tag = format("c%d", i);
        int b1 = b.convRelu(node, tag + ".b1", 192, 1, 1, 1, 0);
        int b2 = b.convRelu(node, tag + ".b2a", 192, 1, 1, 1, 0);
        b2 = b.convRelu(b2, tag + ".b2b", 256, 3, 3, 1, 1);
        int cat = net->add(std::make_unique<ConcatLayer>(tag +
                                                         ".concat"),
                           {b1, b2});
        node = b.residual(node, cat, tag, width_c);
    }

    node = net->add(PoolLayer::globalAvg("pool"), {node});
    node = net->add(std::make_unique<DropoutLayer>("drop", 0.2),
                    {node});
    node = net->add(std::make_unique<FcLayer>("fc", opt.classes),
                    {node});
    net->add(std::make_unique<SoftmaxLayer>("prob"), {node});
    return net;
}

} // namespace zcomp
