/**
 * @file
 * Layer - the base class of the DNN framework's network layers.
 *
 * Layers implement exact functional forward and backward passes on
 * host memory. Their *timing* behaviour (trace emission, cross-layer
 * compression policies) lives in the simulation layer, which inspects
 * LayerKind and the shapes/addresses of the tensors involved.
 */

#ifndef ZCOMP_DNN_LAYER_HH
#define ZCOMP_DNN_LAYER_HH

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "dnn/tensor.hh"

namespace zcomp {

enum class LayerKind
{
    Input = 0,
    Conv,
    Fc,
    Relu,
    MaxPool,
    AvgPool,
    Lrn,
    Dropout,
    Softmax,
    EltwiseAdd,
    Concat,
};

const char *layerKindName(LayerKind k);

/** Shared scratch space for im2col/col2im patch matrices. */
struct Workspace
{
    std::vector<float> cols;
    std::vector<float> dcols;

    void
    ensure(size_t elems)
    {
        if (cols.size() < elems) {
            cols.resize(elems);
            dcols.resize(elems);
        }
    }
};

class Layer
{
  public:
    Layer(std::string name, LayerKind kind) : name_(std::move(name)),
                                              kind_(kind)
    {}
    virtual ~Layer() = default;

    Layer(const Layer &) = delete;
    Layer &operator=(const Layer &) = delete;

    /** Output shape from input shapes (fatal on mismatch). */
    virtual TensorShape
    outputShape(const std::vector<TensorShape> &in) const = 0;

    /** Allocate and initialize parameters. Called once at build. */
    virtual void
    init(VSpace &vs, const std::vector<TensorShape> &in, Rng &rng)
    {
        (void)vs;
        (void)in;
        (void)rng;
    }

    /** Patch-matrix scratch elements needed (0 for most layers). */
    virtual size_t
    workspaceElems(const std::vector<TensorShape> &in) const
    {
        (void)in;
        return 0;
    }

    /** Exact functional forward pass. */
    virtual void forward(const std::vector<const Tensor *> &in,
                         Tensor &out, Workspace &ws) = 0;

    /**
     * Exact functional backward pass: consume grad_out, accumulate
     * parameter gradients, and write input gradients (entries of
     * grad_in may be null when that input needs no gradient).
     */
    virtual void backward(const std::vector<const Tensor *> &in,
                          const Tensor &out, const Tensor &grad_out,
                          const std::vector<Tensor *> &grad_in,
                          Workspace &ws) = 0;

    /** Apply one SGD step to the parameters and clear their grads. */
    virtual void
    sgdStep(float lr)
    {
        (void)lr;
    }

    /** Multiply-accumulate count of one forward pass. */
    virtual uint64_t
    forwardMacs(const std::vector<TensorShape> &in) const
    {
        (void)in;
        return 0;
    }

    /** Parameter bytes (weights + biases). */
    virtual uint64_t weightBytes() const { return 0; }

    /** Training-only layers (dropout) become identity in inference. */
    virtual void setTraining(bool training) { (void)training; }

    const std::string &name() const { return name_; }
    LayerKind kind() const { return kind_; }

  private:
    std::string name_;
    LayerKind kind_;
};

} // namespace zcomp

#endif // ZCOMP_DNN_LAYER_HH
