#include "common/metrics.hh"

#include <atomic>
#include <cmath>
#include <limits>

#include "common/log.hh"
#include "common/stats.hh"
#include "common/trace_writer.hh"

namespace zcomp {

// ------------------------------------------------------ MetricsSink

MetricsSink::MetricsSink(std::string path, double interval_cycles)
    : path_(std::move(path)), interval_(interval_cycles),
      t0_(Clock::now())
{
    std::FILE *f = std::fopen(path_.c_str(), "w");
    if (!f)
        warn("cannot write metrics file %s", path_.c_str());
    LockGuard lk(mu_);
    f_ = f;
}

MetricsSink::~MetricsSink()
{
    LockGuard lk(mu_);
    if (f_) {
        std::fclose(f_);
        f_ = nullptr;
    }
}

void
MetricsSink::append(Json record)
{
    record["hostMs"] =
        std::chrono::duration<double, std::milli>(Clock::now() - t0_)
            .count();
    std::string line = record.dump();
    line += '\n';
    LockGuard lk(mu_);
    if (!f_)
        return;
    std::fwrite(line.data(), 1, line.size(), f_);
    // Flushed per record so a live sweep can be tailed
    // (zcomp_metrics.py tail) and a killed run keeps every complete
    // sample.
    std::fflush(f_);
}

namespace {
std::atomic<MetricsSink *> globalSink{nullptr};
} // namespace

MetricsSink *
MetricsSink::global()
{
    return globalSink.load(std::memory_order_acquire);
}

void
MetricsSink::enableGlobal(const std::string &path,
                          double interval_cycles)
{
    MetricsSink *prev =                 // zcomp-lint: allow(raw-new)
        globalSink.exchange(new MetricsSink(path, interval_cycles),
                            std::memory_order_acq_rel);
    delete prev;        // zcomp-lint: allow(raw-new)
}

void
MetricsSink::finishGlobal()
{
    MetricsSink *s =
        globalSink.exchange(nullptr, std::memory_order_acq_rel);
    delete s;           // zcomp-lint: allow(raw-new)
}

// --------------------------------------------------- MetricsSampler

namespace {

/** Match one path segment; a trailing '*' prefix-matches. */
bool
segMatch(const std::string &seg, const std::string &name)
{
    if (!seg.empty() && seg.back() == '*')
        return name.compare(0, seg.size() - 1, seg, 0,
                            seg.size() - 1) == 0;
    return seg == name;
}

/** Sum every counter the pattern's remaining segments reach. */
uint64_t
sumMatches(const StatGroup &g, const std::vector<std::string> &segs,
           size_t i)
{
    uint64_t sum = 0;
    if (i + 1 == segs.size()) {
        for (const auto &c : g.counters())
            if (segMatch(segs[i], c->name()))
                sum += c->value();
        return sum;
    }
    for (const auto &child : g.children())
        if (segMatch(segs[i], child->name()))
            sum += sumMatches(*child, segs, i + 1);
    return sum;
}

std::vector<std::string>
splitPath(const std::string &pattern)
{
    std::vector<std::string> segs;
    size_t start = 0;
    while (true) {
        size_t dot = pattern.find('.', start);
        if (dot == std::string::npos) {
            segs.push_back(pattern.substr(start));
            return segs;
        }
        segs.push_back(pattern.substr(start, dot - start));
        start = dot + 1;
    }
}

} // namespace

MetricsSampler::MetricsSampler(
    MetricsSink *sink, std::string cell, std::string policy,
    double interval_cycles, int num_cores,
    std::function<void(StatGroup &)> provider)
    : sink_(sink), cell_(std::move(cell)), policy_(std::move(policy)),
      interval_(interval_cycles), numCores_(num_cores),
      provider_(std::move(provider))
{
    fatal_if(!(interval_ > 0),
             "metrics interval must be positive (got %g)", interval_);
    nextAt_ = interval_;
}

void
MetricsSampler::addCounterProbe(const std::string &pattern)
{
    Probe p;
    p.pattern = pattern;
    p.segments = splitPath(pattern);
    probes_.push_back(std::move(p));
}

void
MetricsSampler::evalAll()
{
    StatGroup g("metrics");
    provider_(g);
    current_.resize(probes_.size());
    for (size_t i = 0; i < probes_.size(); i++)
        current_[i] = sumMatches(g, probes_[i].segments, 0);
}

void
MetricsSampler::rebase(double now_cycle)
{
    evalAll();
    for (size_t i = 0; i < probes_.size(); i++)
        probes_[i].last = current_[i];
    lastCycle_ = now_cycle;
    nextAt_ = (std::floor(now_cycle / interval_) + 1) * interval_;
}

void
MetricsSampler::setLayerContext(const std::string &layer, double ratio)
{
    layer_ = layer;
    layerRatio_ = ratio;
}

double
MetricsSampler::delta(const char *pattern) const
{
    for (size_t i = 0; i < probes_.size(); i++)
        if (probes_[i].pattern == pattern)
            return static_cast<double>(current_[i] -
                                       probes_[i].last);
    return 0.0;
}

void
MetricsSampler::emit(double now_cycle, bool drain)
{
    const double window = now_cycle - lastCycle_;
    evalAll();

    Json rec = Json::object();
    rec["schema"] = metricsSchemaVersion;
    rec["kind"] = "sample";
    rec["cell"] = cell_;
    rec["policy"] = policy_;
    rec["cycle"] = now_cycle;
    rec["window"] = window;
    if (drain)
        rec["drain"] = true;
    rec["layer"] = layer_;

    Json &counters = rec["counters"];
    counters = Json::object();
    for (size_t i = 0; i < probes_.size(); i++)
        counters[probes_[i].pattern] =
            current_[i] - probes_[i].last;

    const double inv = window > 0 ? 1.0 / window : 0.0;
    auto rate = [](double misses, double hits) {
        double total = misses + hits;
        return total > 0 ? misses / total : 0.0;
    };
    Json &derived = rec["derived"];
    derived = Json::object();
    derived["dramReadBytesPerCycle"] =
        delta("mem.dram.bytes_read") * inv;
    derived["dramWriteBytesPerCycle"] =
        delta("mem.dram.bytes_written") * inv;
    derived["l1MissRate"] =
        rate(delta("mem.l1_*.misses"), delta("mem.l1_*.hits"));
    derived["l2MissRate"] =
        rate(delta("mem.l2_*.misses"), delta("mem.l2_*.hits"));
    derived["l3MissRate"] =
        rate(delta("mem.l3.misses"), delta("mem.l3.hits"));
    derived["zcompBusyFraction"] =
        numCores_ > 0 ? delta("core*.zcomp_busy_cycles") * inv /
                            static_cast<double>(numCores_)
                      : 0.0;
    derived["nocHopsPerCycle"] = delta("mem.noc.hops") * inv;
    derived["layerCompressionRatio"] = layerRatio_;

    // The counter tracks mirror the derived block 1:1, on the same
    // simulated-cycle timebase as the PR 2 per-core spans.
    TraceWriter *tw = TraceWriter::global();
    if (tw && tracePid_ >= 0) {
        for (const auto &[name, value] : derived.members())
            tw->counter(tracePid_, now_cycle, name,
                        value.asDouble());
    }

    if (sink_)
        sink_->append(std::move(rec));

    for (size_t i = 0; i < probes_.size(); i++)
        probes_[i].last = current_[i];
    lastCycle_ = now_cycle;
    emitted_++;
}

void
MetricsSampler::sample(double now_cycle)
{
    emit(now_cycle, /*drain=*/false);
    // The smallest interval multiple strictly beyond this sample, so
    // a crossing observed late (the low-water mark jumps in op-sized
    // steps) never re-fires inside the same interval.
    nextAt_ = (std::floor(now_cycle / interval_) + 1) * interval_;
}

void
MetricsSampler::finish(double now_cycle)
{
    if (now_cycle > lastCycle_)
        emit(now_cycle, /*drain=*/true);
    nextAt_ = std::numeric_limits<double>::infinity();
}

// ---------------------------------------------------- SweepProgress

SweepProgress::SweepProgress(uint64_t total_cells, bool live)
    : total_(total_cells), live_(live), t0_(Clock::now())
{
}

SweepProgress::~SweepProgress()
{
    finish();
}

void
SweepProgress::finish()
{
    LockGuard lk(mu_);
    if (live_) {
        clearStatusLine();
        live_ = false;
    }
}

void
SweepProgress::cellDone(bool cached, bool failed, int attempts)
{
    LockGuard lk(mu_);
    done_++;
    cached_ += cached;
    failed_ += failed;
    retried_ += attempts > 1;

    const double elapsed =
        std::chrono::duration<double>(Clock::now() - t0_).count();
    const double rate =
        elapsed > 0 ? static_cast<double>(done_) / elapsed : 0.0;
    const uint64_t left = total_ > done_ ? total_ - done_ : 0;
    const double eta =
        rate > 0 ? static_cast<double>(left) / rate : 0.0;

    if (MetricsSink *sink = MetricsSink::global()) {
        Json rec = Json::object();
        rec["schema"] = metricsSchemaVersion;
        rec["kind"] = "progress";
        rec["done"] = done_;
        rec["total"] = total_;
        rec["cached"] = cached_;
        rec["failed"] = failed_;
        rec["retried"] = retried_;
        rec["cellsPerSec"] = rate;
        rec["etaSec"] = eta;
        sink->append(std::move(rec));
    }

    if (live_) {
        setStatusLine(format(
            "sweep %llu/%llu | %llu cached, %llu failed | "
            "%.2f cells/s | eta %.0f s",
            static_cast<unsigned long long>(done_),
            static_cast<unsigned long long>(total_),
            static_cast<unsigned long long>(cached_),
            static_cast<unsigned long long>(failed_), rate, eta));
    }
}

uint64_t
SweepProgress::done() const
{
    LockGuard lk(mu_);
    return done_;
}

} // namespace zcomp
