/**
 * @file
 * SweepSupervisor - crash-isolated multi-process execution of study
 * cells (--isolate-cells / --workers N).
 *
 * The in-process study runner is resilient only to *exceptions*:
 * --retries / --cell-timeout / --fail-budget all assume the cell
 * unwinds cooperatively, and the Deadline in bench_common.cc is
 * checked at phase boundaries - a cell that SIGSEGVs, deadlocks or
 * spins never reaches a check and takes the whole sweep (and every
 * in-flight result) with it. The supervisor closes that gap by
 * running each cell in its own worker process, so the blast radius
 * of any failure is exactly one cell:
 *
 *  - Sharding: (model, mode) cells are dealt to up to N concurrent
 *    worker processes; each worker is the same bench binary
 *    re-invoked with a hidden `--worker-cell <spec>` flag, computes
 *    one cell, stores the row into the shared --cache dir, and
 *    reports it back over stdout.
 *  - Protocol: worker stdout is a JSONL status channel (hello /
 *    heartbeat / result records); worker stderr carries human log
 *    lines, which the supervisor forwards through logRawLine() so
 *    they never tear the sticky --progress status line.
 *  - Hard deadlines: every worker is monitored against a wall-clock
 *    hard timeout and a heartbeat-silence timeout. A hung or crashed
 *    cell is SIGKILLed and recorded as a typed failed row carrying
 *    the signal name - enforcement the cooperative Deadline cannot
 *    provide.
 *  - Restart with backoff: after a crash the next spawn is delayed
 *    by a doubling backoff (reset on any clean exit), so a broken
 *    binary degrades to a paced trickle of typed failures instead of
 *    a fork storm.
 *  - Work stealing: once the pending queue drains, idle slots run
 *    speculative duplicates of the longest-running straggler cells;
 *    the first copy to finish wins and the loser is terminated.
 *    Duplicates are safe because cell results are deterministic and
 *    cache stores of identical bytes are idempotent.
 *
 * Failure domains: a cell that fails with a typed in-process error
 * (SimError and friends) is *not* a supervisor failure - the worker
 * reports a failed row and exits 0. The supervisor only synthesizes
 * failures for the out-of-process domain: death by signal, hard
 * timeout, heartbeat loss, or a worker exiting without reporting.
 * Signal-killed cells are never retried in-process determinism means
 * they would die again; --resume after a fixed binary heals the
 * report byte-identically from the cache.
 *
 * The run loop is single-threaded by design (no locks, no signal
 * handlers beyond what Subprocess needs); everything is driven by
 * non-blocking pipe drains and WNOHANG reaps on a ~5ms tick.
 */

#ifndef ZCOMP_COMMON_SWEEP_SUPERVISOR_HH
#define ZCOMP_COMMON_SWEEP_SUPERVISOR_HH

#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/json.hh"
#include "common/subprocess.hh"

namespace zcomp {

/** One unit of isolated work: an opaque spec the worker binary
 *  understands (via --worker-cell) plus a human-readable label. */
struct SweepCell {
    std::string spec;
    std::string label;
};

/** Outcome of one cell, in the supervisor's failure domain. */
struct SweepCellResult {
    std::string spec;
    std::string label;
    /** Worker reported a result record and exited cleanly. The row
     *  itself may still describe a typed in-process failure - that
     *  domain belongs to the worker, not the supervisor. */
    bool ok = false;
    /** The "row" payload of the worker's result record (when ok). */
    Json row;
    /** Supervisor-domain failure description when !ok. */
    std::string error;
    /** Signal that terminated the worker ("SIGKILL", "SIGSEGV", ...)
     *  or empty for a plain bad exit. */
    std::string signalName;
    /** Worker processes launched for this cell (steals included). */
    int attempts = 0;
};

struct SweepSupervisorOptions {
    /** Base argv of the worker binary; the supervisor appends
     *  "--worker-cell <spec>" per launch. */
    std::vector<std::string> workerArgv;
    /** Maximum concurrent worker processes. */
    int workers = 2;
    /** Per-attempt wall-clock hard deadline in seconds (0 = none). */
    double hardTimeoutSec = 0;
    /** Max seconds of stdout silence before a worker is declared
     *  hung and SIGKILLed (0 = none). Heartbeat records, result
     *  records and hello all count as signs of life. */
    double heartbeatTimeoutSec = 0;
    /** Initial respawn delay after a crash; doubles per consecutive
     *  crash (capped), resets on a clean exit. */
    int backoffMillis = 50;
    /** Speculatively duplicate straggler cells onto idle slots. */
    bool workStealing = true;
    /** A cell must run at least this long before it is stolen. */
    int stealAfterMillis = 500;
    /** Invoked once per finished cell, in completion order. */
    std::function<void(const SweepCellResult &)> onCellDone;
};

class SweepSupervisor
{
  public:
    explicit SweepSupervisor(SweepSupervisorOptions opt);

    /**
     * Run every cell to completion (success, typed failure, or
     * supervisor-domain failure - never an abort), returning results
     * in input order. Degrades gracefully: a crashing cell yields a
     * typed result and the sweep continues.
     */
    std::vector<SweepCellResult> run(const std::vector<SweepCell> &cells);

  private:
    using Clock = std::chrono::steady_clock;

    struct CellState;
    struct WorkerSlot;

    void spawnWorker(std::vector<WorkerSlot> &live,
                     std::vector<CellState> &state, size_t cell_idx,
                     bool stolen);
    void handleRecord(WorkerSlot &w, std::vector<CellState> &state,
                      const std::string &line);
    void finishWorker(WorkerSlot &w, std::vector<WorkerSlot> &live,
                      std::vector<CellState> &state);

    SweepSupervisorOptions opt_;
    int backoff_;
    Clock::time_point nextSpawnAt_;
    int nextWorkerId_ = 0;
};

} // namespace zcomp

#endif // ZCOMP_COMMON_SWEEP_SUPERVISOR_HH
