/**
 * @file
 * Lightweight statistics package.
 *
 * Components register named counters and histograms in a StatGroup.
 * Groups can be nested (hierarchy -> cache -> counters) and dumped as an
 * indented text report. This is a deliberately small subset of the gem5
 * stats package: scalar counters, averages derived at dump time, and
 * fixed-bucket histograms.
 */

#ifndef ZCOMP_COMMON_STATS_HH
#define ZCOMP_COMMON_STATS_HH

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "common/json.hh"

namespace zcomp {

/** A named 64-bit event counter. */
class Counter
{
  public:
    Counter() = default;
    Counter(std::string name, std::string desc)
        : name_(std::move(name)), desc_(std::move(desc))
    {}

    void inc(uint64_t n = 1) { value_ += n; }
    void set(uint64_t v) { value_ = v; }
    void reset() { value_ = 0; }
    uint64_t value() const { return value_; }
    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

    Counter &operator+=(uint64_t n) { value_ += n; return *this; }
    Counter &operator++() { ++value_; return *this; }

  private:
    std::string name_;
    std::string desc_;
    uint64_t value_ = 0;
};

/** A histogram with linear buckets over [0, max). */
class Histogram
{
  public:
    Histogram() = default;
    Histogram(std::string name, std::string desc, uint64_t max_value,
              int num_buckets);

    void sample(uint64_t v, uint64_t count = 1);
    void reset();

    uint64_t samples() const { return samples_; }
    uint64_t sum() const { return sum_; }
    double mean() const;
    uint64_t bucketCount(int i) const { return buckets_[i]; }
    int numBuckets() const { return static_cast<int>(buckets_.size()); }
    uint64_t maxValue() const { return maxValue_; }
    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

  private:
    std::string name_;
    std::string desc_;
    uint64_t maxValue_ = 1;
    std::vector<uint64_t> buckets_;
    uint64_t samples_ = 0;
    uint64_t sum_ = 0;
};

/**
 * A named collection of counters and histograms with child groups.
 *
 * Components own their StatGroup by value; pointers returned by the
 * add* functions remain stable for the lifetime of the group (the
 * members are stored via unique ownership behind the scenes).
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name = "stats");

    // Groups own their stats; no copying.
    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;
    StatGroup(StatGroup &&) = default;
    StatGroup &operator=(StatGroup &&) = default;

    /** Create (or retrieve) a counter with a stable address. */
    Counter &addCounter(const std::string &name, const std::string &desc);

    /** Create (or retrieve) a histogram with a stable address. */
    Histogram &addHistogram(const std::string &name, const std::string &desc,
                            uint64_t max_value, int num_buckets);

    /** Create (or retrieve) a nested child group. */
    StatGroup &addChild(const std::string &name);

    /** Find a counter by path ("child.grandchild.counter"), or null. */
    const Counter *findCounter(const std::string &path) const;

    /** This group's own counters, in registration order. */
    const std::vector<std::unique_ptr<Counter>> &counters() const
    {
        return counters_;
    }

    /** This group's child groups, in registration order. */
    const std::vector<std::unique_ptr<StatGroup>> &children() const
    {
        return children_;
    }

    /** Find a histogram by path, analogous to findCounter(). */
    const Histogram *findHistogram(const std::string &path) const;

    /** Reset every counter and histogram in this subtree. */
    void resetAll();

    /** Dump an indented text report of the subtree. */
    void dump(std::ostream &os, int indent = 0) const;

    /**
     * Export the subtree as JSON: counters as a name -> value object,
     * histograms as name -> {samples, sum, mean, maxValue, buckets},
     * children recursively. Empty sections are omitted so leaf groups
     * stay compact.
     */
    Json dumpJson() const;

    const std::string &name() const { return name_; }

  private:
    std::string name_;
    std::vector<std::unique_ptr<Counter>> counters_;
    std::vector<std::unique_ptr<Histogram>> histograms_;
    std::vector<std::unique_ptr<StatGroup>> children_;
};

} // namespace zcomp

#endif // ZCOMP_COMMON_STATS_HH
