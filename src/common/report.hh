/**
 * @file
 * RunReport - the structured run report behind the bench binaries'
 * --report flag.
 *
 * One report is one JSON document in a stable schema
 * ("zcomp-run-report-v1"): what ran (title, argv), on what machine
 * (the Table 1 ArchConfig), the study rows the run produced (filled
 * by the bench study runner: per-policy cycles, per-level traffic,
 * per-layer attribution, stats-tree snapshots), and host wall-clock.
 * BENCH_*.json perf-trajectory entries can be generated from it
 * directly instead of scraping stdout tables.
 *
 * Top-level schema:
 *   {
 *     "schema":  "zcomp-run-report-v1",
 *     "title":   string,
 *     "argv":    [string...],
 *     "machine": { summary + every ArchConfig section },
 *     "host":    { "wallMillis": number, "jobs": int },
 *     "rows":    [ study-row objects, see bench::studyRowToJson() ],
 *     ...        any extra sections a binary attaches via root()
 *   }
 *
 * addRow() and withRoot() access is mutex-guarded so study cells
 * running on pool workers can contribute concurrently; the bench
 * runner nevertheless appends rows in deterministic study order.
 */

#ifndef ZCOMP_COMMON_REPORT_HH
#define ZCOMP_COMMON_REPORT_HH

#include <chrono>
#include <functional>
#include <string>
#include <vector>

#include "common/annotate.hh"
#include "common/config.hh"
#include "common/json.hh"

namespace zcomp {

/** Every ArchConfig knob as a JSON object (the Table 1 banner data). */
Json machineToJson(const ArchConfig &cfg);

class RunReport
{
  public:
    RunReport(std::string path, std::string title,
              std::vector<std::string> argv);

    RunReport(const RunReport &) = delete;
    RunReport &operator=(const RunReport &) = delete;

    /** Fill the "machine" section from an ArchConfig. */
    void setMachine(const ArchConfig &cfg) ZCOMP_EXCLUDES(mu_);

    /** Append one study-row object to "rows". Thread-safe. */
    void addRow(Json row) ZCOMP_EXCLUDES(mu_);

    /**
     * Run fn on the document with the lock held, for binaries that
     * attach extra sections:
     *   report->withRoot([&](Json &doc) { doc["extra"] = ...; });
     * The callback must not call back into this RunReport.
     */
    void withRoot(const std::function<void(Json &)> &fn)
        ZCOMP_EXCLUDES(mu_);

    /**
     * Stamp the "host" section (wall-clock since construction, pool
     * size) and write the document. Idempotent.
     */
    void write() ZCOMP_EXCLUDES(mu_);

    const std::string &path() const { return path_; }

    // ------------------------------------------------ global report
    /** The process-wide report enabled by --report, or null. */
    static RunReport *global();

    /** Install the process-wide report (replaces any previous one). */
    static void enableGlobal(const std::string &path,
                             const std::string &title,
                             std::vector<std::string> argv);

    /** Write and drop the process-wide report (atexit-safe). */
    static void finishGlobal();

  private:
    using Clock = std::chrono::steady_clock;

    // Lock contract: mu_ guards the document and the write-once
    // latch; path_ and t0_ are constructor-set and read-only. The
    // host wall-clock stamp is host-domain data (the report is never
    // part of the deterministic study stdout), hence the wall-clock
    // lint allowlist entry for this TU.
    std::string path_;
    Clock::time_point t0_;
    Mutex mu_;
    Json doc_ ZCOMP_GUARDED_BY(mu_);
    bool written_ ZCOMP_GUARDED_BY(mu_) = false;
};

} // namespace zcomp

#endif // ZCOMP_COMMON_REPORT_HH
