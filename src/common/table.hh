/**
 * @file
 * Console table printer used by the bench harness to emit the rows and
 * series the paper's figures report, with aligned columns.
 */

#ifndef ZCOMP_COMMON_TABLE_HH
#define ZCOMP_COMMON_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace zcomp {

class Table
{
  public:
    explicit Table(std::string title = "");

    /** Set the column headers; must be called before addRow. */
    void setHeader(std::vector<std::string> header);

    /** Append a fully-formatted row; cell count must match the header. */
    void addRow(std::vector<std::string> row);

    /** Format a double with the given precision. */
    static std::string fmt(double v, int precision = 2);

    /** Format a byte count with a human-readable suffix (KiB/MiB/GiB). */
    static std::string fmtBytes(double bytes);

    /** Format a ratio as a percentage string, e.g. 0.31 -> "31.0%". */
    static std::string fmtPct(double ratio, int precision = 1);

    /** Print the table with aligned columns and a separator rule. */
    void print(std::ostream &os) const;

    size_t numRows() const { return rows_.size(); }

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace zcomp

#endif // ZCOMP_COMMON_TABLE_HH
