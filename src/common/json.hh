/**
 * @file
 * A small dependency-free JSON value tree.
 *
 * Json is the document model behind every machine-readable output of
 * the simulator: StatGroup::dumpJson(), the RunReport written by the
 * bench binaries' --report flag, and zcomp_inspect --json. It keeps
 * object keys in insertion order so emitted schemas are stable, and
 * it round-trips: parse(dump(v)) reproduces v for any tree built
 * through this API (integers stay exact; doubles print with enough
 * digits to survive the trip).
 *
 * The parser validates the full JSON grammar (used by the tests and
 * by tools that re-read reports); it is recursive descent over an
 * in-memory string, which is plenty for report-sized documents.
 */

#ifndef ZCOMP_COMMON_JSON_HH
#define ZCOMP_COMMON_JSON_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace zcomp {

class Json
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Int,        //!< signed 64-bit integer (printed exactly)
        Uint,       //!< unsigned 64-bit integer (printed exactly)
        Double,
        String,
        Array,
        Object,
    };

    Json() = default;
    Json(bool b) : kind_(Kind::Bool), bool_(b) {}
    Json(int v) : kind_(Kind::Int), int_(v) {}
    Json(long v) : kind_(Kind::Int), int_(v) {}
    Json(long long v) : kind_(Kind::Int), int_(v) {}
    Json(unsigned v) : kind_(Kind::Uint), uint_(v) {}
    Json(unsigned long v) : kind_(Kind::Uint), uint_(v) {}
    Json(unsigned long long v) : kind_(Kind::Uint), uint_(v) {}
    Json(double v) : kind_(Kind::Double), double_(v) {}
    Json(const char *s) : kind_(Kind::String), string_(s) {}
    Json(std::string s) : kind_(Kind::String), string_(std::move(s)) {}

    static Json array() { Json j; j.kind_ = Kind::Array; return j; }
    static Json object() { Json j; j.kind_ = Kind::Object; return j; }

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const
    {
        return kind_ == Kind::Int || kind_ == Kind::Uint ||
               kind_ == Kind::Double;
    }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    bool asBool() const { return bool_; }
    double asDouble() const;
    int64_t asInt() const;
    uint64_t asUint() const;
    const std::string &asString() const { return string_; }

    /** Array element count / object member count / 0 otherwise. */
    size_t size() const;

    /** Append to an array (Null promotes to Array). */
    void push(Json v);

    /** Array element access (no bounds promotion). */
    Json &at(size_t i) { return array_[i]; }
    const Json &at(size_t i) const { return array_[i]; }

    /**
     * Object member access; inserts a Null member for missing keys
     * (Null promotes to Object). Keys keep insertion order.
     */
    Json &operator[](const std::string &key);

    /** Object member lookup without insertion; null if absent. */
    const Json *find(const std::string &key) const;

    /** Object members in insertion order. */
    const std::vector<std::pair<std::string, Json>> &members() const
    {
        return object_;
    }

    /**
     * Serialize. indent < 0 gives the compact one-line form;
     * indent >= 0 pretty-prints with that many spaces per level.
     * Non-finite doubles serialize as null (JSON has no NaN/Inf).
     */
    std::string dump(int indent = -1) const;

    /**
     * Parse a complete JSON document (trailing whitespace allowed,
     * trailing garbage is an error). On failure returns Null and, if
     * err is non-null, stores a message with the byte offset.
     */
    static Json parse(const std::string &text,
                      std::string *err = nullptr);

    bool operator==(const Json &o) const;
    bool operator!=(const Json &o) const { return !(*this == o); }

  private:
    void dumpTo(std::string &out, int indent, int depth) const;

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    int64_t int_ = 0;
    uint64_t uint_ = 0;
    double double_ = 0;
    std::string string_;
    std::vector<Json> array_;
    std::vector<std::pair<std::string, Json>> object_;
};

/** Escape a string for embedding between JSON double quotes. */
std::string jsonEscape(const std::string &s);

/** Shortest %g form of a double that parses back to the same value. */
std::string jsonNumber(double v);

} // namespace zcomp

#endif // ZCOMP_COMMON_JSON_HH
