#include "common/arena.hh"

#include <algorithm>
#include <cstring>

#include "common/bitops.hh"
#include "common/check.hh"

namespace zcomp {

BumpArena::BumpArena(size_t chunkBytes)
    : chunkBytes_(std::max(chunkBytes, size_t{1} << 16))
{
}

size_t
BumpArena::alignedOff(const Chunk &c)
{
    const auto base = reinterpret_cast<uintptr_t>(c.mem.get());
    return alignUp(base + c.used, kAlign) - base;
}

BumpArena::Chunk &
BumpArena::chunkWithRoom(size_t bytes)
{
    while (cur_ < chunks_.size()) {
        Chunk &c = chunks_[cur_];
        if (alignedOff(c) + bytes <= c.size)
            return c;
        cur_++;
    }
    Chunk c;
    c.size = std::max(chunkBytes_, bytes + kAlign);
    // make_unique value-initializes the array: fresh chunks are zero.
    c.mem = std::make_unique<uint8_t[]>(c.size);
    reserved_ += c.size;
    chunks_.push_back(std::move(c));
    cur_ = chunks_.size() - 1;
    return chunks_.back();
}

uint8_t *
BumpArena::alloc(size_t bytes)
{
    ZCOMP_CHECK(bytes > 0, "arena alloc of zero bytes");
    Chunk &c = chunkWithRoom(bytes);
    const size_t off = alignedOff(c);
    uint8_t *p = c.mem.get() + off;
    // Only the part of the block below the chunk's dirty high-water
    // mark has ever been written; everything above it is still zero
    // from the chunk's value-initialization.
    if (off < c.dirty)
        std::memset(p, 0, std::min(bytes, c.dirty - off));
    c.used = off + bytes + kRedzone;
    c.dirty = std::max(c.dirty, c.used);
    allocated_ += bytes;
    allocCount_++;
    return p;
}

void
BumpArena::reset()
{
    for (Chunk &c : chunks_)
        c.used = 0;
    cur_ = 0;
    allocated_ = 0;
    allocCount_ = 0;
    resetCount_++;
}

} // namespace zcomp
