#include "common/stats.hh"

#include <algorithm>
#include <iomanip>

#include "common/log.hh"

namespace zcomp {

Histogram::Histogram(std::string name, std::string desc, uint64_t max_value,
                     int num_buckets)
    : name_(std::move(name)), desc_(std::move(desc)), maxValue_(max_value),
      buckets_(static_cast<size_t>(num_buckets), 0)
{
    panic_if(num_buckets <= 0, "histogram %s needs at least one bucket",
             name_.c_str());
    panic_if(max_value == 0, "histogram %s needs a non-zero range",
             name_.c_str());
}

void
Histogram::sample(uint64_t v, uint64_t count)
{
    samples_ += count;
    sum_ += v * count;
    uint64_t nb = buckets_.size();
    uint64_t idx = std::min<uint64_t>(v * nb / maxValue_, nb - 1);
    buckets_[idx] += count;
}

void
Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    samples_ = 0;
    sum_ = 0;
}

double
Histogram::mean() const
{
    return samples_ == 0 ? 0.0
                         : static_cast<double>(sum_) /
                               static_cast<double>(samples_);
}

StatGroup::StatGroup(std::string name) : name_(std::move(name))
{
}

Counter &
StatGroup::addCounter(const std::string &name, const std::string &desc)
{
    for (auto &c : counters_) {
        if (c->name() == name)
            return *c;
    }
    counters_.push_back(std::make_unique<Counter>(name, desc));
    return *counters_.back();
}

Histogram &
StatGroup::addHistogram(const std::string &name, const std::string &desc,
                        uint64_t max_value, int num_buckets)
{
    for (auto &h : histograms_) {
        if (h->name() == name)
            return *h;
    }
    histograms_.push_back(
        std::make_unique<Histogram>(name, desc, max_value, num_buckets));
    return *histograms_.back();
}

StatGroup &
StatGroup::addChild(const std::string &name)
{
    for (auto &c : children_) {
        if (c->name() == name)
            return *c;
    }
    children_.push_back(std::make_unique<StatGroup>(name));
    return *children_.back();
}

const Counter *
StatGroup::findCounter(const std::string &path) const
{
    auto dot = path.find('.');
    if (dot == std::string::npos) {
        for (const auto &c : counters_) {
            if (c->name() == path)
                return c.get();
        }
        return nullptr;
    }
    std::string head = path.substr(0, dot);
    std::string rest = path.substr(dot + 1);
    for (const auto &child : children_) {
        if (child->name() == head)
            return child->findCounter(rest);
    }
    return nullptr;
}

const Histogram *
StatGroup::findHistogram(const std::string &path) const
{
    auto dot = path.find('.');
    if (dot == std::string::npos) {
        for (const auto &h : histograms_) {
            if (h->name() == path)
                return h.get();
        }
        return nullptr;
    }
    std::string head = path.substr(0, dot);
    std::string rest = path.substr(dot + 1);
    for (const auto &child : children_) {
        if (child->name() == head)
            return child->findHistogram(rest);
    }
    return nullptr;
}

void
StatGroup::resetAll()
{
    for (auto &c : counters_)
        c->reset();
    for (auto &h : histograms_)
        h->reset();
    for (auto &child : children_)
        child->resetAll();
}

void
StatGroup::dump(std::ostream &os, int indent) const
{
    std::string pad(static_cast<size_t>(indent) * 2, ' ');
    os << pad << name_ << "\n";
    for (const auto &c : counters_) {
        os << pad << "  " << std::left << std::setw(32) << c->name()
           << std::right << std::setw(16) << c->value() << "  # "
           << c->desc() << "\n";
    }
    for (const auto &h : histograms_) {
        os << pad << "  " << std::left << std::setw(32) << h->name()
           << std::right << std::setw(16) << h->samples()
           << "  # samples, mean=" << h->mean() << "\n";
    }
    for (const auto &child : children_)
        child->dump(os, indent + 1);
}

Json
StatGroup::dumpJson() const
{
    Json g = Json::object();
    if (!counters_.empty()) {
        Json &cs = g["counters"];
        cs = Json::object();
        for (const auto &c : counters_)
            cs[c->name()] = c->value();
    }
    if (!histograms_.empty()) {
        Json &hs = g["histograms"];
        hs = Json::object();
        for (const auto &h : histograms_) {
            Json &hj = hs[h->name()];
            hj = Json::object();
            hj["samples"] = h->samples();
            hj["sum"] = h->sum();
            hj["mean"] = h->mean();
            hj["maxValue"] = h->maxValue();
            Json &buckets = hj["buckets"];
            buckets = Json::array();
            for (int i = 0; i < h->numBuckets(); i++)
                buckets.push(h->bucketCount(i));
        }
    }
    if (!children_.empty()) {
        Json &ch = g["children"];
        ch = Json::object();
        for (const auto &child : children_)
            ch[child->name()] = child->dumpJson();
    }
    return g;
}

} // namespace zcomp
