#include "common/trace_writer.hh"

#include <algorithm>
#include <atomic>
#include <cstdio>

#include "common/log.hh"

namespace zcomp {

/**
 * One thread's event buffer. The owning thread appends under buf.mu
 * (uncontended in steady state - only finish() ever takes it from
 * another thread), so tracing never serializes pool workers against
 * each other.
 */
struct TraceWriter::Buffer
{
    Mutex mu;
    std::vector<Event> events ZCOMP_GUARDED_BY(mu);
};

namespace {

std::atomic<uint64_t> nextWriterId{1};

struct ThreadSlot
{
    uint64_t writerId = 0;
    TraceWriter::Buffer *buffer = nullptr;
    int hostTid = -1;
};

// Each writer instance gets a process-unique id (never reused, unlike
// heap addresses), so a stale slot left behind by a destroyed writer
// can never be mistaken for the current one.
thread_local ThreadSlot tlSlot;
thread_local std::string tlThreadLabel;

} // namespace

TraceWriter::TraceWriter(std::string path)
    : path_(std::move(path)), t0_(Clock::now())
{
    id_ = nextWriterId.fetch_add(1, std::memory_order_relaxed);
}

TraceWriter::~TraceWriter()
{
    finish();
}

double
TraceWriter::nowUs() const
{
    return std::chrono::duration<double, std::micro>(Clock::now() -
                                                     t0_)
        .count();
}

int
TraceWriter::newProcess(const std::string &name)
{
    LockGuard lk(mu_);
    int pid = nextPid_++;
    processNames_.emplace_back(pid, name);
    return pid;
}

void
TraceWriter::nameThread(int pid, int tid, const std::string &name)
{
    LockGuard lk(mu_);
    threadNames_.push_back({{pid, tid}, name});
}

TraceWriter::Buffer &
TraceWriter::threadBuffer()
{
    if (tlSlot.writerId != id_) {
        auto buf = std::make_unique<Buffer>();
        Buffer *raw = buf.get();
        int tid;
        {
            LockGuard lk(mu_);
            buffers_.push_back(std::move(buf));
            tid = nextHostTid_++;
            threadNames_.push_back(
                {{hostPid, tid},
                 tlThreadLabel.empty()
                     ? "thread " + std::to_string(tid)
                     : tlThreadLabel});
        }
        tlSlot = {id_, raw, tid};
    }
    return *tlSlot.buffer;
}

void
TraceWriter::span(int pid, int tid, double ts, double dur,
                  const std::string &name, const std::string &cat,
                  const Json &args)
{
    Buffer &buf = threadBuffer();
    Event ev;
    ev.pid = pid;
    ev.tid = tid;
    ev.ts = ts;
    ev.dur = dur;
    ev.name = name;
    ev.cat = cat;
    if (!args.isNull())
        ev.args = args.dump();
    LockGuard lk(buf.mu);
    buf.events.push_back(std::move(ev));
}

void
TraceWriter::counter(int pid, double ts, const std::string &name,
                     double value)
{
    Buffer &buf = threadBuffer();
    Event ev;
    ev.pid = pid;
    ev.ts = ts;
    ev.ph = 'C';
    ev.name = name;
    ev.cat = "metrics";
    ev.args = "{\"value\":" + jsonNumber(value) + "}";
    LockGuard lk(buf.mu);
    buf.events.push_back(std::move(ev));
}

void
TraceWriter::hostSpan(const std::string &name, double start_us,
                      double end_us, const Json &args)
{
    threadBuffer();     // registers the calling thread's lane
    span(hostPid, tlSlot.hostTid, start_us,
         std::max(0.0, end_us - start_us), name, "host", args);
}

std::vector<TraceWriter::Event>
TraceWriter::mergedEvents()
{
    std::vector<Event> all;
    LockGuard lk(mu_);
    for (auto &buf : buffers_) {
        LockGuard blk(buf->mu);
        all.insert(all.end(), buf->events.begin(), buf->events.end());
    }
    std::stable_sort(all.begin(), all.end(),
                     [](const Event &a, const Event &b) {
                         if (a.pid != b.pid)
                             return a.pid < b.pid;
                         if (a.tid != b.tid)
                             return a.tid < b.tid;
                         return a.ts < b.ts;
                     });
    return all;
}

size_t
TraceWriter::pendingEvents()
{
    LockGuard lk(mu_);
    size_t n = 0;
    for (auto &buf : buffers_) {
        LockGuard blk(buf->mu);
        n += buf->events.size();
    }
    return n;
}

std::vector<TraceWriter::Event>
TraceWriter::snapshotEvents()
{
    return mergedEvents();
}

void
TraceWriter::finish()
{
    {
        LockGuard lk(mu_);
        if (finished_)
            return;
        finished_ = true;
    }

    std::vector<Event> events = mergedEvents();

    std::FILE *f = std::fopen(path_.c_str(), "w");
    if (!f) {
        warn("cannot write trace file %s", path_.c_str());
        return;
    }

    std::string out;
    out.reserve(events.size() * 96 + 4096);
    out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";

    bool first = true;
    auto emit = [&](const std::string &line) {
        if (!first)
            out += ",\n";
        first = false;
        out += line;
    };

    // Metadata first: process and thread names / sort order. The host
    // process sorts before the simulated ones.
    {
        LockGuard lk(mu_);
        emit(format("{\"ph\":\"M\",\"pid\":%d,\"name\":"
                    "\"process_name\",\"args\":{\"name\":\"host\"}}",
                    hostPid));
        emit(format("{\"ph\":\"M\",\"pid\":%d,\"name\":"
                    "\"process_sort_index\",\"args\":{\"sort_index\":"
                    "0}}",
                    hostPid));
        for (const auto &[pid, name] : processNames_) {
            emit(format("{\"ph\":\"M\",\"pid\":%d,\"name\":"
                        "\"process_name\",\"args\":{\"name\":\"%s\"}}",
                        pid, jsonEscape(name).c_str()));
            emit(format("{\"ph\":\"M\",\"pid\":%d,\"name\":"
                        "\"process_sort_index\",\"args\":{"
                        "\"sort_index\":%d}}",
                        pid, pid));
        }
        for (const auto &[lane, name] : threadNames_) {
            emit(format("{\"ph\":\"M\",\"pid\":%d,\"tid\":%d,"
                        "\"name\":\"thread_name\",\"args\":{\"name\":"
                        "\"%s\"}}",
                        lane.first, lane.second,
                        jsonEscape(name).c_str()));
        }
    }

    for (const Event &ev : events) {
        std::string line;
        if (ev.ph == 'C') {
            // Counter samples carry no duration or lane; Perfetto
            // keys the track by (pid, name).
            line = format(
                "{\"ph\":\"C\",\"pid\":%d,\"ts\":%s,"
                "\"cat\":\"%s\",\"name\":\"%s\"",
                ev.pid, jsonNumber(ev.ts).c_str(),
                jsonEscape(ev.cat).c_str(),
                jsonEscape(ev.name).c_str());
        } else {
            line = format(
                "{\"ph\":\"X\",\"pid\":%d,\"tid\":%d,\"ts\":%s,"
                "\"dur\":%s,\"cat\":\"%s\",\"name\":\"%s\"",
                ev.pid, ev.tid, jsonNumber(ev.ts).c_str(),
                jsonNumber(ev.dur).c_str(),
                jsonEscape(ev.cat).c_str(),
                jsonEscape(ev.name).c_str());
        }
        if (!ev.args.empty())
            line += ",\"args\":" + ev.args;
        line += "}";
        emit(line);
    }
    out += "\n]}\n";

    std::fwrite(out.data(), 1, out.size(), f);
    std::fclose(f);
}

// ---------------------------------------------------- global writer

namespace {
std::atomic<TraceWriter *> globalWriter{nullptr};
} // namespace

TraceWriter *
TraceWriter::global()
{
    return globalWriter.load(std::memory_order_acquire);
}

void
TraceWriter::enableGlobal(const std::string &path)
{
    TraceWriter *prev =                 // zcomp-lint: allow(raw-new)
        globalWriter.exchange(new TraceWriter(path),
                              std::memory_order_acq_rel);
    if (prev) {
        prev->finish();
        delete prev;    // zcomp-lint: allow(raw-new)
    }
}

void
TraceWriter::finishGlobal()
{
    TraceWriter *w =
        globalWriter.exchange(nullptr, std::memory_order_acq_rel);
    if (w) {
        w->finish();
        delete w;       // zcomp-lint: allow(raw-new)
    }
}

void
TraceWriter::setThreadLabel(const std::string &label)
{
    tlThreadLabel = label;
    // Re-label an already-registered lane.
    if (TraceWriter *w = global()) {
        if (tlSlot.writerId == w->id_ && tlSlot.hostTid >= 0)
            w->nameThread(hostPid, tlSlot.hostTid, label);
    }
}

} // namespace zcomp
