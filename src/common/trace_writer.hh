/**
 * @file
 * Chrome-trace-event writer (the JSON flavour Perfetto's ui.perfetto.dev
 * loads directly).
 *
 * One TraceWriter collects complete ("ph":"X") events from many
 * threads and writes a single trace file at finish(). Two kinds of
 * track groups share the file:
 *
 *  - simulated processes: one per (study cell, I/O policy) simulation,
 *    opened with newProcess(); lanes (tids) are simulated core ids and
 *    timestamps are simulated cycles (rendered as microseconds, so
 *    1 us on screen = 1 core cycle);
 *  - the host process (pid 0): lanes are real threads (main, pool
 *    workers) and timestamps are wall-clock microseconds since the
 *    writer was created. Study-runner cells and pool tasks land here.
 *
 * Thread safety: events buffer into per-thread vectors (a mutex is
 * taken only to register a new thread and at finish()), so pool
 * workers can trace without contending. finish() merges the buffers
 * and stable-sorts by (pid, tid, ts), so each lane's events are
 * monotonically ordered in the file.
 */

#ifndef ZCOMP_COMMON_TRACE_WRITER_HH
#define ZCOMP_COMMON_TRACE_WRITER_HH

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "common/annotate.hh"
#include "common/json.hh"

namespace zcomp {

class TraceWriter
{
  public:
    /** One complete event, fully resolved to its lane. */
    struct Event
    {
        int pid = 0;
        int tid = 0;
        double ts = 0;      //!< microseconds (host) or cycles (sim)
        double dur = 0;
        char ph = 'X';      //!< 'X' complete span, 'C' counter sample
        std::string name;
        std::string cat;
        std::string args;   //!< pre-serialized JSON object, or empty
    };

    struct Buffer;      //!< one thread's event buffer (see .cc)

    explicit TraceWriter(std::string path);
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** The host track group's pid. */
    static constexpr int hostPid = 0;

    /**
     * Open a new simulated track group; returns its pid. Lanes under
     * it are whatever tids the caller emits (core ids, typically
     * labeled "core N" lazily by the UI).
     */
    int newProcess(const std::string &name) ZCOMP_EXCLUDES(mu_);

    /** Attach a thread_name metadata record to a lane. */
    void nameThread(int pid, int tid, const std::string &name)
        ZCOMP_EXCLUDES(mu_);

    /** Emit one complete event on an explicit lane. */
    void span(int pid, int tid, double ts, double dur,
              const std::string &name, const std::string &cat,
              const Json &args = Json());

    /**
     * Emit one sample of a named counter track under a track group.
     * Perfetto renders the samples of each (pid, name) pair as a
     * filled line chart alongside that group's span lanes; the
     * MetricsSampler uses this for its derived per-cycle rates.
     */
    void counter(int pid, double ts, const std::string &name,
                 double value);

    /** Wall-clock microseconds since this writer was created. */
    double nowUs() const;

    /**
     * Emit a host-side span on the calling thread's lane. The lane is
     * auto-registered on first use and labeled with the thread label
     * (see setThreadLabel) or "thread N".
     */
    void hostSpan(const std::string &name, double start_us,
                  double end_us, const Json &args = Json());

    /**
     * Merge every per-thread buffer, sort each lane's events by
     * timestamp, and write the trace file. Idempotent; also invoked
     * by the destructor if never called explicitly.
     */
    void finish() ZCOMP_EXCLUDES(mu_);

    /** Number of events currently buffered (tests). */
    size_t pendingEvents() ZCOMP_EXCLUDES(mu_);

    /** Merged, sorted event list without writing a file (tests). */
    std::vector<Event> snapshotEvents() ZCOMP_EXCLUDES(mu_);

    // ------------------------------------------------- global writer
    /** The process-wide writer enabled by --trace, or null. */
    static TraceWriter *global();

    /** Install the process-wide writer (replaces any previous one). */
    static void enableGlobal(const std::string &path);

    /** Finish and drop the process-wide writer (atexit-safe). */
    static void finishGlobal();

    /**
     * Label the calling thread's host lane (e.g. "pool worker 3").
     * Safe to call with no writer installed: the label is remembered
     * thread-locally and applied when the thread first emits.
     */
    static void setThreadLabel(const std::string &label);

  private:
    Buffer &threadBuffer() ZCOMP_EXCLUDES(mu_);
    std::vector<Event> mergedEvents() ZCOMP_EXCLUDES(mu_);

    using Clock = std::chrono::steady_clock;

    // Lock contract: mu_ guards buffer registration, the name
    // tables, pid/tid allocation and the finished_ latch; each
    // Buffer's own mutex guards that thread's event vector (appends
    // are uncontended in steady state). mergedEvents() nests them
    // strictly mu_ -> buffer.mu; no path acquires in the other
    // order. path_, t0_ and id_ are constructor-set and read-only.
    std::string path_;
    Clock::time_point t0_;
    uint64_t id_ = 0;   //!< process-unique; keys thread-local buffers

    Mutex mu_;
    std::vector<std::unique_ptr<Buffer>> buffers_
        ZCOMP_GUARDED_BY(mu_);
    std::vector<std::pair<int, std::string>> processNames_
        ZCOMP_GUARDED_BY(mu_);
    std::vector<std::pair<std::pair<int, int>, std::string>>
        threadNames_ ZCOMP_GUARDED_BY(mu_);
    int nextPid_ ZCOMP_GUARDED_BY(mu_) = 1; //!< 0 is the host process
    int nextHostTid_ ZCOMP_GUARDED_BY(mu_) = 1;
    bool finished_ ZCOMP_GUARDED_BY(mu_) = false;
};

} // namespace zcomp

#endif // ZCOMP_COMMON_TRACE_WRITER_HH
