/**
 * @file
 * A small fixed-size thread pool shared by the functional kernels and
 * the bench study runner.
 *
 * Two usage patterns are supported:
 *  - submit(): fire-and-collect task futures (exceptions propagate
 *    through std::future::get), used to fan independent simulations
 *    out across workers;
 *  - parallelFor(): blocking data-parallel loops over an index range.
 *    The calling thread participates in the loop, so nested use from
 *    inside a submitted task cannot deadlock even when every worker
 *    is busy: the task's own thread chews through the chunks itself.
 *
 * A pool built with jobs == 1 spawns no worker threads at all and
 * runs everything inline on the caller - the degenerate case is
 * exactly the old sequential code path.
 *
 * The process-wide pool returned by global() sizes itself from the
 * ZCOMP_JOBS environment variable, falling back to
 * hardware_concurrency(); benches override it with --jobs N via
 * setGlobalJobs().
 */

#ifndef ZCOMP_COMMON_THREAD_POOL_HH
#define ZCOMP_COMMON_THREAD_POOL_HH

#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/annotate.hh"

namespace zcomp {

class ThreadPool
{
  public:
    /** @param jobs total parallelism; clamped to >= 1. */
    explicit ThreadPool(int jobs);

    /**
     * Destruction drains: tasks already queued still run to
     * completion (on the workers, as they shut down) and their
     * futures are satisfied - including exceptional results. Only
     * submitting *new* work during/after shutdown is an error, and
     * panics rather than leaving a future forever unready.
     */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    int jobs() const { return jobs_; }

    /**
     * Queue a task and return its future. With jobs == 1 the task
     * runs inline before submit() returns (exceptions still arrive
     * via the future, never thrown from submit itself).
     */
    template <typename F>
    auto
    submit(F &&fn) -> std::future<std::invoke_result_t<F>>
    {
        using R = std::invoke_result_t<F>;
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<F>(fn));
        std::future<R> fut = task->get_future();
        if (jobs_ <= 1) {
            (*task)();
            return fut;
        }
        enqueue([task] { (*task)(); });
        return fut;
    }

    /**
     * Run body(chunk_begin, chunk_end) over [begin, end) split into
     * chunks of at most `grain` indices. Chunks run concurrently on
     * the workers *and* the calling thread; the call returns once the
     * whole range is done. The first exception thrown by any chunk is
     * rethrown here (remaining chunks are skipped, already-running
     * ones finish).
     *
     * The partitioning is a pure function of (begin, end, grain), so
     * any body whose chunks touch disjoint state produces results
     * independent of the worker count.
     */
    void parallelFor(size_t begin, size_t end, size_t grain,
                     const std::function<void(size_t, size_t)> &body);

    /** The process-wide pool (lazily built with defaultJobs()). */
    static ThreadPool &global();

    /**
     * Resize the process-wide pool (benches' --jobs N, tests). Only
     * safe while no tasks are in flight on the old pool.
     */
    static void setGlobalJobs(int jobs);

    /** ZCOMP_JOBS if set to a positive integer, else
     *  hardware_concurrency() (>= 1). */
    static int defaultJobs();

  private:
    void enqueue(std::function<void()> fn) ZCOMP_EXCLUDES(mu_);
    void workerLoop() ZCOMP_EXCLUDES(mu_);

    // Lock contract: mu_ guards the task queue and the shutdown
    // flag; cv_ signals "queue_ grew or stop_ flipped". jobs_ and
    // workers_ are written only by the constructor/destructor (the
    // pool is externally owned, so construction/destruction cannot
    // race public calls) and are read-only everywhere else.
    int jobs_;
    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_ ZCOMP_GUARDED_BY(mu_);
    Mutex mu_;
    CondVar cv_;
    bool stop_ ZCOMP_GUARDED_BY(mu_) = false;
};

} // namespace zcomp

#endif // ZCOMP_COMMON_THREAD_POOL_HH
