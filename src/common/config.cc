#include "common/config.hh"

#include <cmath>
#include <cstdlib>

#include "common/log.hh"

namespace zcomp {

int
ArchConfig::dramLatencyCycles() const
{
    return static_cast<int>(std::lround(dram.latencyNs * core.freqGHz));
}

double
ArchConfig::dramBytesPerCycle() const
{
    // GB/s -> bytes per core cycle: (GB/s) / (Gcycles/s).
    return dram.totalBandwidthGBps / core.freqGHz;
}

std::string
ArchConfig::summary() const
{
    return format(
        "%d cores @ %.1f GHz, %d-issue | L1 %lluKB/%d-way | "
        "L2 %lluKB/%d-way | L3 %lluMB/%d-way | %d ch DDR4 %.0f GB/s",
        numCores, core.freqGHz, core.issueWidth,
        (unsigned long long)(l1.size / KiB), l1.assoc,
        (unsigned long long)(l2.size / KiB), l2.assoc,
        (unsigned long long)(l3.size / MiB), l3.assoc, dram.channels,
        dram.totalBandwidthGBps);
}

namespace {

bool
parseU64(const std::string &s, uint64_t &out)
{
    char *end = nullptr;
    out = std::strtoull(s.c_str(), &end, 0);
    return end && *end == '\0';
}

bool
parseDouble(const std::string &s, double &out)
{
    char *end = nullptr;
    out = std::strtod(s.c_str(), &end);
    return end && *end == '\0';
}

} // namespace

bool
ArchConfig::applyOverride(const std::string &kv)
{
    auto eq = kv.find('=');
    if (eq == std::string::npos)
        return false;
    std::string key = kv.substr(0, eq);
    std::string val = kv.substr(eq + 1);

    uint64_t u = 0;
    double d = 0.0;

    auto as_u64 = [&](uint64_t &field) {
        if (!parseU64(val, u))
            fatal("override %s: expected integer", kv.c_str());
        field = u;
        return true;
    };
    auto as_int = [&](int &field) {
        if (!parseU64(val, u))
            fatal("override %s: expected integer", kv.c_str());
        field = static_cast<int>(u);
        return true;
    };
    auto as_double = [&](double &field) {
        if (!parseDouble(val, d))
            fatal("override %s: expected number", kv.c_str());
        field = d;
        return true;
    };
    auto as_bool = [&](bool &field) {
        if (!parseU64(val, u))
            fatal("override %s: expected 0/1", kv.c_str());
        field = u != 0;
        return true;
    };

    if (key == "numCores")
        return as_int(numCores);
    if (key == "core.issueWidth")
        return as_int(core.issueWidth);
    if (key == "core.freqGHz")
        return as_double(core.freqGHz);
    if (key == "core.mshrs")
        return as_int(core.mshrs);
    if (key == "core.storeBuffer")
        return as_int(core.storeBuffer);
    if (key == "l1.size")
        return as_u64(l1.size);
    if (key == "l1.assoc")
        return as_int(l1.assoc);
    if (key == "l1.latency")
        return as_int(l1.latency);
    if (key == "l2.size")
        return as_u64(l2.size);
    if (key == "l2.assoc")
        return as_int(l2.assoc);
    if (key == "l2.latency")
        return as_int(l2.latency);
    if (key == "l3.size")
        return as_u64(l3.size);
    if (key == "l3.assoc")
        return as_int(l3.assoc);
    if (key == "l3.latency")
        return as_int(l3.latency);
    if (key == "prefetch.l1IpStride")
        return as_bool(prefetch.l1IpStride);
    if (key == "prefetch.l2Stream")
        return as_bool(prefetch.l2Stream);
    if (key == "prefetch.l2Degree")
        return as_int(prefetch.l2Degree);
    if (key == "prefetch.l2Distance")
        return as_int(prefetch.l2Distance);
    if (key == "dram.channels")
        return as_int(dram.channels);
    if (key == "dram.totalBandwidthGBps")
        return as_double(dram.totalBandwidthGBps);
    if (key == "dram.latencyNs")
        return as_double(dram.latencyNs);
    if (key == "noc.hopCycles")
        return as_int(noc.hopCycles);
    if (key == "zcomp.logicLatency")
        return as_int(zcomp.logicLatency);
    if (key == "zcomp.logicThroughput")
        return as_int(zcomp.logicThroughput);
    return false;
}

void
ArchConfig::applyOverrides(const std::vector<std::string> &args)
{
    for (const auto &kv : args) {
        if (!applyOverride(kv))
            fatal("unknown configuration override '%s'", kv.c_str());
    }
}

} // namespace zcomp
