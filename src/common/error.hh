/**
 * @file
 * Typed recoverable simulator errors.
 *
 * The panic()/fatal() machinery in log.hh is for conditions the
 * process cannot survive: internal invariant violations and bad user
 * input at startup. Everything in between - a corrupted compressed
 * stream, an injected transient fault, a study cell that must be
 * abandoned - is *recoverable*: the study runner isolates the failing
 * cell, retries it, and records the outcome per cell instead of
 * killing the sweep. Those paths throw the SimError hierarchy below so
 * callers can distinguish real error classes instead of pattern
 * matching on what() strings:
 *
 *   SimError       - base; carries a stable machine-readable kind().
 *   DecodeError    - a ZCOMP header/stream (or emulated memory) decode
 *                    failed validation. Every throw bumps the global
 *                    zcomp.decode_errors counter so detection events
 *                    are observable in reports even when the error is
 *                    swallowed by a retry loop.
 *   FaultInjected  - a deterministic FaultInjector site fired
 *                    (common/fault.hh); carries the site name.
 *   CellAbort      - the current study cell is not worth retrying
 *                    (deterministic failure); the runner records it
 *                    failed after the first attempt.
 */

#ifndef ZCOMP_COMMON_ERROR_HH
#define ZCOMP_COMMON_ERROR_HH

#include <cstdint>
#include <stdexcept>
#include <string>

namespace zcomp {

/** Base class of all recoverable simulator errors. */
class SimError : public std::runtime_error
{
  public:
    SimError(const char *kind, const std::string &what)
        : std::runtime_error(what), kind_(kind)
    {}

    /** Stable machine-readable class name ("decode", "fault", ...). */
    const char *kind() const { return kind_; }

  private:
    const char *kind_;
};

/** A compressed header/stream failed validation during decode. */
class DecodeError : public SimError
{
  public:
    explicit DecodeError(const std::string &what)
        : SimError("decode", what)
    {}
};

/** A FaultInjector site fired. */
class FaultInjected : public SimError
{
  public:
    FaultInjected(std::string site, const std::string &what)
        : SimError("fault", what), site_(std::move(site))
    {}

    /** The fault site that fired (e.g. "kernel.transient"). */
    const std::string &site() const { return site_; }

  private:
    std::string site_;
};

/** The current study cell must be abandoned without retries. */
class CellAbort : public SimError
{
  public:
    explicit CellAbort(const std::string &what)
        : SimError("abort", what)
    {}
};

/**
 * Throw a DecodeError with a printf-style message, bumping the global
 * zcomp.decode_errors counter. All decode-validation sites route
 * through here so every detection event is counted exactly once.
 */
[[noreturn]] void decodeError(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Decode errors detected since process start (or the last reset). */
uint64_t decodeErrorCount();

/** Reset the decode-error counter (tests and the fuzz harness). */
void resetDecodeErrorCount();

} // namespace zcomp

#endif // ZCOMP_COMMON_ERROR_HH
