/**
 * @file
 * BumpArena - a chunked bump allocator for per-study-cell tensor and
 * scratch memory.
 *
 * The study runner allocates the same set of buffers for every retry
 * of a cell and for every policy within a cell; going through the
 * general-purpose heap made each (model, mode) cell pay malloc + page
 * fault + memset costs repeatedly. A BumpArena instead grows a small
 * list of large chunks once, hands out zeroed 64-byte-aligned blocks
 * by bumping an offset, and reclaims everything at once with reset()
 * while keeping the chunks (and their warmed pages) for the next use.
 *
 * Allocations are zero-filled, matching the heap path they replace.
 * Fresh chunk memory is zero by construction; reset() does not wipe,
 * instead each chunk tracks a high-water "dirty" offset and alloc()
 * re-zeroes only the prefix of the block that was handed out before.
 *
 * Blocks are separated by a small redzone pad so a modest buffer
 * overrun clobbers padding, not a neighbouring tensor.
 *
 * Not thread-safe; each study cell owns its arena exclusively.
 */

#ifndef ZCOMP_COMMON_ARENA_HH
#define ZCOMP_COMMON_ARENA_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace zcomp {

class BumpArena
{
  public:
    static constexpr size_t kAlign = 64;
    static constexpr size_t kRedzone = 64;

    explicit BumpArena(size_t chunkBytes = size_t{64} << 20);

    BumpArena(const BumpArena &) = delete;
    BumpArena &operator=(const BumpArena &) = delete;

    /** Zero-filled block of @p bytes, aligned to kAlign. */
    uint8_t *alloc(size_t bytes);

    /**
     * Reclaim every allocation at once. Chunks (and the OS pages
     * backing them) are retained for reuse; outstanding pointers into
     * the arena become invalid.
     */
    void reset();

    /** Bytes handed out since the last reset (excluding padding). */
    size_t allocatedBytes() const { return allocated_; }

    /** Total chunk capacity currently reserved from the heap. */
    size_t reservedBytes() const { return reserved_; }

    /** Number of allocations since the last reset. */
    size_t allocCount() const { return allocCount_; }

    /** Number of times reset() has been called. */
    size_t resetCount() const { return resetCount_; }

  private:
    struct Chunk
    {
        std::unique_ptr<uint8_t[]> mem; //< zero-initialized at birth
        size_t size = 0;
        size_t used = 0;  //< bump offset of the current epoch
        size_t dirty = 0; //< high-water mark across all epochs
    };

    /**
     * Bump offset of the next block in c: the smallest offset at or
     * above the used mark whose *host address* is kAlign-aligned
     * (operator new only guarantees 16-byte alignment for the chunk
     * base itself).
     */
    static size_t alignedOff(const Chunk &c);

    Chunk &chunkWithRoom(size_t bytes);

    std::vector<Chunk> chunks_;
    size_t cur_ = 0; //< index of the chunk being bumped
    size_t chunkBytes_;
    size_t allocated_ = 0;
    size_t reserved_ = 0;
    size_t allocCount_ = 0;
    size_t resetCount_ = 0;
};

} // namespace zcomp

#endif // ZCOMP_COMMON_ARENA_HH
