/**
 * @file
 * Time-series telemetry in two clock domains (schema zcomp-metrics-v1).
 *
 * Cycle domain - MetricsSampler: registers probes against the names of
 * existing StatGroup counters and samples them every N *simulated*
 * cycles from the MultiCoreSystem stepping loop, emitting one JSONL
 * record per crossing with the windowed counter deltas and derived
 * rates (DRAM bytes/cycle, per-level miss rates, zcomp busy fraction,
 * NoC hops/cycle, the live per-layer compression ratio). When a
 * Perfetto trace is active (--trace), every derived metric is also
 * emitted as a counter track on the run's simulated track group, so
 * the timelines render next to the PR 2 spans.
 *
 * Host domain - SweepProgress: tracks a study sweep's cells
 * done/total/cached/failed/retried, throughput and ETA on the host
 * wall clock, emitting progress records into the same JSONL stream
 * and (opt-in) a single sticky status line on stderr.
 *
 * Both domains append to one MetricsSink (--metrics out.jsonl). Every
 * record carries "schema" and a "kind" of "sample" or "progress";
 * the sink stamps "hostMs" (milliseconds since the sink was created)
 * on each line. Records from concurrent cells interleave freely in
 * the file, but each (cell, policy) pair's sample stream is strictly
 * monotonic in "cycle" - the property zcomp_inspect --metrics checks.
 *
 * Invariants: with no --metrics flag there is no sink, no sampler is
 * ever constructed, and the stepping loop's only cost is one
 * always-false comparison against +infinity; stdout and every other
 * artifact stay byte-identical. Sampling never mutates simulation
 * state (probes read a scratch stats tree), so RunStats are identical
 * with metrics on or off.
 */

#ifndef ZCOMP_COMMON_METRICS_HH
#define ZCOMP_COMMON_METRICS_HH

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "common/annotate.hh"
#include "common/json.hh"

namespace zcomp {

class StatGroup;

/** Schema tag carried by every metrics record. */
constexpr const char *metricsSchemaVersion = "zcomp-metrics-v1";

/**
 * Thread-safe append-only JSONL writer shared by every sampler and
 * progress reporter in the process. One record per line; each line is
 * written and flushed atomically under a mutex, so records from
 * concurrent study cells interleave whole-line (never torn) and a
 * live `tail -f` / zcomp_metrics.py tail sees complete records.
 */
class MetricsSink
{
  public:
    /** Default cycle-domain sampling interval (--metrics-interval). */
    static constexpr double defaultIntervalCycles = 100000;

    explicit MetricsSink(std::string path,
                         double interval_cycles = defaultIntervalCycles);
    ~MetricsSink();

    MetricsSink(const MetricsSink &) = delete;
    MetricsSink &operator=(const MetricsSink &) = delete;

    /**
     * Stamp "hostMs" (wall milliseconds since the sink was created)
     * on the record and append it as one flushed JSONL line.
     */
    void append(Json record) ZCOMP_EXCLUDES(mu_);

    double intervalCycles() const { return interval_; }
    const std::string &path() const { return path_; }

    // ------------------------------------------------- global sink
    /** The process-wide sink enabled by --metrics, or null. */
    static MetricsSink *global();

    /** Install the process-wide sink (replaces any previous one). */
    static void enableGlobal(const std::string &path,
                             double interval_cycles =
                                 defaultIntervalCycles);

    /** Close and drop the process-wide sink (atexit-safe). */
    static void finishGlobal();

  private:
    using Clock = std::chrono::steady_clock;

    // Lock contract: mu_ guards the output stream; path_, interval_
    // and t0_ are set once in the constructor and read-only after.
    std::string path_;
    double interval_;
    Clock::time_point t0_;
    Mutex mu_;
    std::FILE *f_ ZCOMP_GUARDED_BY(mu_) = nullptr;
};

/**
 * Cycle-domain sampler for one (cell, policy) simulation run.
 *
 * Probes are registered by stat-path pattern against the tree a
 * provider callback populates (MultiCoreSystem::dumpStats for the
 * real simulator; tests hand-build trees). A pattern is a '.'-joined
 * path whose segments may end in a '*' suffix wildcard - e.g.
 * "mem.l1_*.misses" sums the misses counter of every per-core L1 and
 * "core*.zcomp_busy_cycles" sums over all cores. The leaf segment
 * must name a registered counter (tools/zcomp_lint.py metrics-names
 * enforces this against the addCounter() inventory).
 *
 * sample(now) is invoked from the stepping loop whenever the global
 * low-water mark crosses nextSampleCycle(); it evaluates every probe,
 * emits one "sample" record with the per-probe deltas over the
 * window (now - previous sample) plus derived rates, and advances the
 * next crossing to the smallest interval multiple > now. finish(now)
 * emits a final short-window record (flagged "drain": true) covering
 * any cycles after the last crossing - a run shorter than one
 * interval yields exactly one drain record.
 *
 * Not thread-safe: one sampler belongs to one simulation run on one
 * thread (the sink it appends to is shared and mutexed).
 */
class MetricsSampler
{
  public:
    MetricsSampler(MetricsSink *sink, std::string cell,
                   std::string policy, double interval_cycles,
                   int num_cores,
                   std::function<void(StatGroup &)> provider);

    /** Register a counter probe (see class comment for the syntax). */
    void addCounterProbe(const std::string &pattern);

    /**
     * Re-evaluate every probe as the new delta baseline and restart
     * the window at @p now_cycle. Call once after registering probes
     * (counters may be nonzero when caches start warm).
     */
    void rebase(double now_cycle);

    /**
     * Route the derived metrics to Perfetto counter tracks under the
     * given simulated track group; -1 (the default) disables them.
     */
    void setTracePid(int pid) { tracePid_ = pid; }

    /**
     * The layer pass the stepping loop is currently replaying and its
     * static compression ratio (original bytes / policy bytes over
     * the pass's tensor streams; 1.0 when nothing is compressed).
     * Samples report these as "layer" / derived.layerCompressionRatio.
     */
    void setLayerContext(const std::string &layer, double ratio);

    /** Emit one windowed sample at simulated cycle @p now_cycle. */
    void sample(double now_cycle);

    /** Emit the final drain record if any cycles are unsampled. */
    void finish(double now_cycle);

    /** The next cycle at which sample() should run. */
    double nextSampleCycle() const { return nextAt_; }

    /** Records emitted so far (tests). */
    uint64_t samplesEmitted() const { return emitted_; }

  private:
    struct Probe
    {
        std::string pattern;
        std::vector<std::string> segments;
        uint64_t last = 0;      //!< value at the previous sample
    };

    void emit(double now_cycle, bool drain);
    void evalAll();
    double delta(const char *pattern) const;

    MetricsSink *sink_;
    std::string cell_;
    std::string policy_;
    double interval_;
    int numCores_;
    std::function<void(StatGroup &)> provider_;

    std::vector<Probe> probes_;
    double lastCycle_ = 0;
    double nextAt_;
    int tracePid_ = -1;
    std::string layer_;
    double layerRatio_ = 1.0;
    uint64_t emitted_ = 0;

    // Scratch for one evaluation pass; reused across samples.
    mutable std::vector<uint64_t> current_;
};

/**
 * Host-domain progress reporter for one study sweep. Thread-safe:
 * pool workers call cellDone() as their cells finish (in completion
 * order, not row order). Every completed cell emits one "progress"
 * record - done/total/cached/failed/retried counts, cells-per-second
 * throughput and the remaining-time estimate, all on the host wall
 * clock - and, when live display is on, redraws a single sticky
 * status line through the log sink (so concurrent inform()/warn()
 * lines and the status line never tear each other).
 */
class SweepProgress
{
  public:
    /**
     * @param total_cells cells the sweep will run
     * @param live draw the stderr status line (callers gate this on
     *        --progress, !quiet() and stderr being a TTY)
     */
    SweepProgress(uint64_t total_cells, bool live);

    /** Clears the status line (records stay in the JSONL). */
    ~SweepProgress();

    SweepProgress(const SweepProgress &) = delete;
    SweepProgress &operator=(const SweepProgress &) = delete;

    /**
     * Record one finished cell. @p attempts is the simulation
     * attempts the cell consumed (> 1 counts it as retried).
     */
    void cellDone(bool cached, bool failed, int attempts)
        ZCOMP_EXCLUDES(mu_);

    /**
     * Clear the status line now, once every cell has reported. The
     * destructor also clears, but worker-held copies of a shared
     * reporter can outlive the sweep loop (pool task objects release
     * their captures lazily) - call this before printing the result
     * tables so they never append to a stale status line.
     */
    void finish() ZCOMP_EXCLUDES(mu_);

    uint64_t done() const ZCOMP_EXCLUDES(mu_);

  private:
    using Clock = std::chrono::steady_clock;

    // Lock contract: mu_ guards every tally plus the live-display
    // flag (finish() clears it exactly once); total_ and t0_ are
    // constructor-set and read-only after. The status line itself is
    // guarded separately by the log sink's output mutex - cellDone()
    // takes mu_ then that mutex, never the other way around.
    mutable Mutex mu_;
    uint64_t total_;
    bool live_ ZCOMP_GUARDED_BY(mu_);
    Clock::time_point t0_;
    uint64_t done_ ZCOMP_GUARDED_BY(mu_) = 0;
    uint64_t cached_ ZCOMP_GUARDED_BY(mu_) = 0;
    uint64_t failed_ ZCOMP_GUARDED_BY(mu_) = 0;
    uint64_t retried_ ZCOMP_GUARDED_BY(mu_) = 0;
};

} // namespace zcomp

#endif // ZCOMP_COMMON_METRICS_HH
