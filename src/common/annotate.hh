/**
 * @file
 * Clang thread-safety ("capability") annotations and the annotated
 * synchronization primitives the whole tree locks with.
 *
 * Every mutex in the repo is a zcomp::Mutex, every critical section a
 * zcomp::LockGuard, and every wait a zcomp::CondVar - so under clang
 * the static analysis (-Wthread-safety, turned into errors by the CI
 * static-analysis leg) proves at compile time that
 *
 *  - every member annotated ZCOMP_GUARDED_BY(mu) is only touched with
 *    mu held,
 *  - every function annotated ZCOMP_REQUIRES(mu) is only called with
 *    mu held (the "Locked" helper idiom: eraseStatusLocked,
 *    specLocked, ...), and
 *  - no path acquires a capability it already holds or releases one
 *    it does not.
 *
 * On non-clang compilers every macro expands to nothing and the
 * wrappers degrade to a plain std::mutex / std::lock_guard /
 * std::condition_variable with zero overhead - GCC builds, TSan
 * builds, and the runtime behavior are completely unchanged.
 *
 * The tools/zcomp_lint.py `raw-mutex` rule bans std::mutex and
 * friends everywhere outside this header, so new concurrent code
 * inherits the compile-time lock checking automatically.
 *
 * Style contract for annotated code:
 *  - private data a mutex protects carries ZCOMP_GUARDED_BY(mu_);
 *  - public entry points that take the lock carry ZCOMP_EXCLUDES(mu_)
 *    (documents non-reentrancy and catches self-deadlock);
 *  - private *Locked() helpers carry ZCOMP_REQUIRES(mu_);
 *  - condition waits are explicit while-loops around CondVar::wait()
 *    so the predicate's guarded reads stay inside the analyzed scope
 *    (lambda predicates cannot carry REQUIRES annotations).
 */

#ifndef ZCOMP_COMMON_ANNOTATE_HH
#define ZCOMP_COMMON_ANNOTATE_HH

#include <condition_variable>
#include <mutex>

// ------------------------------------------------ capability macros

#if defined(__clang__) && !defined(ZCOMP_DISABLE_THREAD_SAFETY_ANALYSIS)
#define ZCOMP_TSA_(x) __attribute__((x))
#else
#define ZCOMP_TSA_(x)
#endif

/** Marks a class as a lockable capability (e.g. zcomp::Mutex). */
#define ZCOMP_CAPABILITY(name) ZCOMP_TSA_(capability(name))

/** Marks an RAII class that holds a capability for its lifetime. */
#define ZCOMP_SCOPED_CAPABILITY ZCOMP_TSA_(scoped_lockable)

/** Data member readable/writable only with the given lock(s) held. */
#define ZCOMP_GUARDED_BY(...) ZCOMP_TSA_(guarded_by(__VA_ARGS__))

/** Pointer member whose pointee is protected by the given lock(s). */
#define ZCOMP_PT_GUARDED_BY(...) ZCOMP_TSA_(pt_guarded_by(__VA_ARGS__))

/** Function that must be called with the given lock(s) already held. */
#define ZCOMP_REQUIRES(...) ZCOMP_TSA_(requires_capability(__VA_ARGS__))

/** Function that must NOT be called with the given lock(s) held. */
#define ZCOMP_EXCLUDES(...) ZCOMP_TSA_(locks_excluded(__VA_ARGS__))

/** Function that acquires the given lock(s) and returns holding them. */
#define ZCOMP_ACQUIRE(...) ZCOMP_TSA_(acquire_capability(__VA_ARGS__))

/** Function that releases the given lock(s). */
#define ZCOMP_RELEASE(...) ZCOMP_TSA_(release_capability(__VA_ARGS__))

/** Function that acquires the lock(s) iff it returns `ret`. */
#define ZCOMP_TRY_ACQUIRE(ret, ...)                                         \
    ZCOMP_TSA_(try_acquire_capability(ret, __VA_ARGS__))

/** Function returning a reference to the capability guarding it. */
#define ZCOMP_RETURN_CAPABILITY(x) ZCOMP_TSA_(lock_returned(x))

/** Escape hatch: disables the analysis inside one function body. */
#define ZCOMP_NO_ANALYSIS ZCOMP_TSA_(no_thread_safety_analysis)

namespace zcomp {

class CondVar;

/**
 * A std::mutex the clang analysis can reason about. Prefer LockGuard
 * over calling lock()/unlock() manually; try_lock() exists for
 * non-blocking probes and tests.
 */
class ZCOMP_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() ZCOMP_ACQUIRE() { mu_.lock(); }
    void unlock() ZCOMP_RELEASE() { mu_.unlock(); }
    bool try_lock() ZCOMP_TRY_ACQUIRE(true) { return mu_.try_lock(); }

    /** Lets EXCLUDES/REQUIRES name the negation (!mu) under clang. */
    const Mutex &operator!() const { return *this; }

  private:
    friend class CondVar;
    std::mutex mu_;
};

/**
 * RAII critical section over a zcomp::Mutex - the one way the tree
 * takes a lock. Not movable: a critical section begins and ends in
 * the scope that opened it (APIs that used to hand locks to callers,
 * like RunReport::root(), become callback-style instead - see
 * RunReport::withRoot()).
 */
class ZCOMP_SCOPED_CAPABILITY LockGuard
{
  public:
    explicit LockGuard(Mutex &mu) ZCOMP_ACQUIRE(mu) : mu_(mu)
    {
        mu_.lock();
    }

    ~LockGuard() ZCOMP_RELEASE() { mu_.unlock(); }

    LockGuard(const LockGuard &) = delete;
    LockGuard &operator=(const LockGuard &) = delete;

  private:
    Mutex &mu_;
};

/**
 * Condition variable bound to zcomp::Mutex. wait() atomically
 * releases the mutex, blocks, and reacquires before returning, so
 * from the analysis' point of view the caller holds the lock across
 * the call - which is exactly the contract a condition wait gives a
 * predicate loop:
 *
 *     LockGuard lk(mu_);
 *     while (!ready_)         // ready_ is ZCOMP_GUARDED_BY(mu_)
 *         cv_.wait(mu_);
 *
 * Use an explicit while-loop, not a lambda predicate: the lambda
 * would be analyzed as a separate function that cannot declare it
 * requires the lock.
 */
class CondVar
{
  public:
    CondVar() = default;
    CondVar(const CondVar &) = delete;
    CondVar &operator=(const CondVar &) = delete;

    /** Release @p mu, block until notified, reacquire, return. */
    void
    wait(Mutex &mu) ZCOMP_REQUIRES(mu)
    {
        std::unique_lock<std::mutex> lk(mu.mu_, std::adopt_lock);
        cv_.wait(lk);
        lk.release();
    }

    void notify_one() { cv_.notify_one(); }
    void notify_all() { cv_.notify_all(); }

  private:
    std::condition_variable cv_;
};

} // namespace zcomp

#endif // ZCOMP_COMMON_ANNOTATE_HH
