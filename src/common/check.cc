#include "common/check.hh"

#include <cstdarg>

namespace zcomp {

void
checkFailedImpl(const char *file, int line, const char *cond,
                const char *fmt, ...)
{
    std::string msg;
    if (fmt) {
        va_list ap;
        va_start(ap, fmt);
        msg = vformat(fmt, ap);
        va_end(ap);
    }
    if (msg.empty()) {
        panicImpl(file, line, "check failed: %s", cond);
    } else {
        panicImpl(file, line, "check failed: %s: %s", cond, msg.c_str());
    }
}

} // namespace zcomp
