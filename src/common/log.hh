/**
 * @file
 * Logging and error reporting in the gem5 style.
 *
 * panic()  - an internal invariant was violated; this is a simulator bug.
 *            Prints and aborts (core dump friendly).
 * fatal()  - the simulation cannot continue due to user input (bad
 *            configuration, invalid arguments). Prints and exits(1).
 * warn()   - something is approximated or suspicious but the run continues.
 * inform() - normal operating status messages.
 *
 * Lock contract: all stderr output (log lines and the sticky status
 * line of setStatusLine()) is serialized by one internal mutex in
 * log.cc; each message is pre-formatted outside the lock and emitted
 * as a single fprintf, so the mutex only orders whole lines. Callers
 * may log while holding their own locks (the sink acquires nothing
 * else), but nothing may call into the log sink from code the sink
 * itself invokes.
 */

#ifndef ZCOMP_COMMON_LOG_HH
#define ZCOMP_COMMON_LOG_HH

#include <cstdarg>
#include <string>

namespace zcomp {

/** Format a printf-style message into a std::string. */
std::string vformat(const char *fmt, va_list ap);

/** Format a printf-style message into a std::string. */
std::string format(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

[[noreturn]] void panicImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

[[noreturn]] void fatalImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

void warnImpl(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

void informImpl(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Silence inform()/warn() output (used by tests and benches). */
void setQuiet(bool quiet);
bool quiet();

/**
 * Draw (or update) a single sticky status line at the bottom of
 * stderr - the study runner's live sweep progress. The line shares
 * the output mutex with inform()/warn()/panic()/fatal(): every log
 * message erases the status line, prints itself on its own line, and
 * redraws the status below it, so concurrent cells cannot tear each
 * other's lines and the status never interleaves mid-message.
 *
 * Uses ANSI erase-line, so callers only enable it when stderr is a
 * TTY (see SweepProgress). An empty line is equivalent to
 * clearStatusLine().
 */
void setStatusLine(const std::string &line);

/** Erase the status line and stop redrawing it. */
void clearStatusLine();

/**
 * Emit one pre-formatted line through the status-aware sink, with no
 * "info:"/"warn:" prefix added - the line is forwarded verbatim. The
 * sweep supervisor routes worker-process stderr through this so a
 * worker's (already prefixed) log lines land whole between status
 * redraws instead of tearing the sticky --progress line. Respects
 * setQuiet() like inform()/warn().
 */
void logRawLine(const std::string &line);

} // namespace zcomp

#define panic(...) ::zcomp::panicImpl(__FILE__, __LINE__, __VA_ARGS__)
#define fatal(...) ::zcomp::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)
#define warn(...) ::zcomp::warnImpl(__VA_ARGS__)
#define inform(...) ::zcomp::informImpl(__VA_ARGS__)

/** Panic unless the given condition holds. */
#define panic_if(cond, ...)                                                 \
    do {                                                                    \
        if (cond) {                                                         \
            panic(__VA_ARGS__);                                             \
        }                                                                   \
    } while (0)

#define fatal_if(cond, ...)                                                 \
    do {                                                                    \
        if (cond) {                                                         \
            fatal(__VA_ARGS__);                                             \
        }                                                                   \
    } while (0)

#endif // ZCOMP_COMMON_LOG_HH
