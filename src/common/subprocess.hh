/**
 * @file
 * Subprocess - the one place in the tree allowed to fork/exec.
 *
 * The sweep supervisor runs every study cell in its own worker
 * process so that a SIGSEGV, deadlock, or runaway loop takes down
 * exactly one cell instead of the whole sweep. This wrapper owns all
 * of the raw process plumbing that makes that safe:
 *
 *  - fork + execve with a pipe pair capturing the child's stdout
 *    (the machine-readable JSONL status channel) and stderr (human
 *    log lines), both switched to non-blocking in the parent;
 *  - exit-status decoding that distinguishes a normal exit code from
 *    death by signal (and names the signal, e.g. "SIGKILL"), because
 *    the two land in different failure domains: exit codes map to
 *    typed in-process errors, signals to crashes only process
 *    isolation can survive;
 *  - kill with SIGTERM -> SIGKILL escalation for graceful teardown,
 *    plus an immediate SIGKILL for hard-deadline enforcement.
 *
 * A zcomp_lint rule (process-isolation) bans raw fork/execv/kill/
 * waitpid everywhere outside subprocess.cc, mirroring how
 * simd-isolation keeps intrinsics inside the SIMD backend.
 *
 * Not thread-safe: a Subprocess must be polled/killed from one
 * thread (the supervisor event loop is single-threaded by design).
 */

#ifndef ZCOMP_COMMON_SUBPROCESS_HH
#define ZCOMP_COMMON_SUBPROCESS_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include <sys/types.h>

namespace zcomp {

/** Decoded wait() status of a finished (or still running) process. */
struct ExitStatus
{
    enum Kind {
        Running,    ///< not reaped yet
        Exited,     ///< normal termination; code is the exit code
        Signaled,   ///< killed by a signal; sig is the signal number
    };

    Kind kind = Running;
    int code = 0;
    int sig = 0;

    bool running() const { return kind == Running; }
    bool ok() const { return kind == Exited && code == 0; }
    bool signaled() const { return kind == Signaled; }

    /** "exit 0" / "signal 11 (SIGSEGV)" / "running". */
    std::string describe() const;

    /** "SIGKILL", "SIGSEGV", ... or "SIG<n>" for exotic signals. */
    static std::string signalName(int sig);

    /** Decode a raw waitpid() status word. */
    static ExitStatus fromWaitStatus(int wstatus);
};

/**
 * Incremental newline splitter over a non-blocking pipe fd. The
 * supervisor polls many workers from one loop; a worker that has
 * written half a JSONL record must neither block the loop nor have
 * the half-line surface anywhere - poll() buffers partial lines
 * internally and only ever emits complete ones (this is also what
 * keeps worker stderr from tearing the sticky --progress status
 * line).
 */
class LineReader
{
  public:
    /** Takes a non-owning reference to an O_NONBLOCK read fd. */
    explicit LineReader(int fd) : fd_(fd) {}

    /**
     * Drain whatever is available without blocking, appending each
     * complete line (newline stripped) to out. On EOF any trailing
     * unterminated partial line is flushed as a final line. Returns
     * false once the fd has hit EOF (or an unrecoverable error) and
     * everything has been emitted.
     */
    bool poll(std::vector<std::string> &out);

    bool eof() const { return eof_; }

  private:
    int fd_;
    bool eof_ = false;
    std::string partial_;
};

/**
 * One spawned child process with captured stdout/stderr. The
 * destructor hard-kills and reaps a still-running child, so a
 * supervisor unwinding on error never leaks orphans.
 */
class Subprocess
{
  public:
    struct Options {
        /** argv[0] is the binary to exec (absolute path or on PATH). */
        std::vector<std::string> argv;
        /** Extra environment entries appended to the parent's. */
        std::vector<std::pair<std::string, std::string>> extraEnv;
    };

    /**
     * fork+exec per opt. fatal()s on fork/pipe failure (resource
     * exhaustion, not a per-cell condition); an exec failure in the
     * child surfaces as exit code 127.
     */
    explicit Subprocess(const Options &opt);

    Subprocess(const Subprocess &) = delete;
    Subprocess &operator=(const Subprocess &) = delete;
    ~Subprocess();

    pid_t pid() const { return pid_; }

    /** Non-blocking read ends of the child's stdout / stderr. */
    int stdoutFd() const { return stdout_fd_; }
    int stderrFd() const { return stderr_fd_; }

    /**
     * Non-blocking reap attempt. Returns true once the child has
     * terminated (idempotent afterwards); status() is then final.
     */
    bool poll();

    const ExitStatus &status() const { return status_; }

    /**
     * Graceful stop: SIGTERM, wait up to grace_millis for exit, then
     * SIGKILL and block until reaped. With grace_millis == 0 this is
     * an immediate SIGKILL - what the supervisor uses when a hard
     * deadline fires and the child cannot be trusted to cooperate.
     */
    void terminate(int grace_millis);

    /** Immediate SIGKILL + blocking reap (terminate(0)). */
    void kill();

  private:
    pid_t pid_ = -1;
    int stdout_fd_ = -1;
    int stderr_fd_ = -1;
    ExitStatus status_;
};

} // namespace zcomp

#endif // ZCOMP_COMMON_SUBPROCESS_HH
