#include "common/sweep_supervisor.hh"

#include <algorithm>
#include <deque>
#include <thread>

#include "common/log.hh"
#include "common/metrics.hh"

namespace zcomp {

namespace {

/** Worker status-channel schema (stdout JSONL records). */
constexpr const char *workerSchema = "zcomp-worker-v1";

/** Backoff after consecutive crashes is capped here (ms). */
constexpr int maxBackoffMillis = 5000;

/** At most one speculative duplicate per cell (original + steal). */
constexpr int maxAttemptsPerCell = 2;

double
secondsSince(std::chrono::steady_clock::time_point t,
             std::chrono::steady_clock::time_point now)
{
    return std::chrono::duration<double>(now - t).count();
}

} // namespace

struct SweepSupervisor::CellState {
    const SweepCell *cell = nullptr;
    bool done = false;
    int attempts = 0;
    int liveWorkers = 0;
    std::string lastError;
    std::string lastSignal;
    SweepCellResult result;
};

struct SweepSupervisor::WorkerSlot {
    int id = 0;
    size_t cellIdx = 0;
    bool stolen = false;
    std::unique_ptr<Subprocess> proc;
    std::unique_ptr<LineReader> out;
    std::unique_ptr<LineReader> err;
    Clock::time_point started;
    Clock::time_point lastHeard;
    bool gotResult = false;
    Json row;
    /** Deadline enforcement reason, set before the SIGKILL. */
    const char *killReason = nullptr;
    std::string killError;
    bool finished = false;
};

SweepSupervisor::SweepSupervisor(SweepSupervisorOptions opt)
    : opt_(std::move(opt)), backoff_(opt_.backoffMillis),
      nextSpawnAt_(Clock::now())
{
    fatal_if(opt_.workerArgv.empty(),
             "sweep supervisor needs a worker argv");
    fatal_if(opt_.workers < 1, "sweep supervisor needs >= 1 worker");
    if (backoff_ < 1)
        backoff_ = 1;
}

void
SweepSupervisor::spawnWorker(std::vector<WorkerSlot> &live,
                             std::vector<CellState> &state,
                             size_t cell_idx, bool stolen)
{
    CellState &cs = state[cell_idx];
    Subprocess::Options sopt;
    sopt.argv = opt_.workerArgv;
    sopt.argv.push_back("--worker-cell");
    sopt.argv.push_back(cs.cell->spec);

    WorkerSlot w;
    w.id = nextWorkerId_++;
    w.cellIdx = cell_idx;
    w.stolen = stolen;
    w.proc = std::make_unique<Subprocess>(sopt);
    w.out = std::make_unique<LineReader>(w.proc->stdoutFd());
    w.err = std::make_unique<LineReader>(w.proc->stderrFd());
    w.started = w.lastHeard = Clock::now();
    cs.attempts++;
    cs.liveWorkers++;

    if (MetricsSink *sink = MetricsSink::global()) {
        Json r = Json::object();
        r["schema"] = metricsSchemaVersion;
        r["kind"] = "worker";
        r["event"] = stolen ? "steal" : "spawn";
        r["worker"] = static_cast<int64_t>(w.id);
        r["pid"] = static_cast<int64_t>(w.proc->pid());
        r["cell"] = cs.cell->label;
        r["attempt"] = static_cast<int64_t>(cs.attempts);
        sink->append(std::move(r));
    }
    live.push_back(std::move(w));
}

void
SweepSupervisor::handleRecord(WorkerSlot &w,
                              std::vector<CellState> &state,
                              const std::string &line)
{
    if (line.empty())
        return;
    std::string err;
    Json rec = Json::parse(line, &err);
    if (!err.empty() || !rec.isObject()) {
        // Not protocol traffic - some stray stdout print. Forward it
        // like a log line rather than silently dropping it.
        logRawLine(line);
        return;
    }
    const Json *schema = rec.find("schema");
    if (!schema || !schema->isString() ||
        schema->asString() != workerSchema) {
        logRawLine(line); // JSON, but not ours - treat as stray output
        return;
    }
    const Json *kind = rec.find("kind");
    if (!kind || !kind->isString())
        return;
    if (kind->asString() == "result") {
        const Json *row = rec.find("row");
        if (row) {
            w.gotResult = true;
            w.row = *row;
        } else {
            warn("worker %d sent a result record with no row", w.id);
        }
    }
    // hello / heartbeat / result all count as signs of life; the
    // lastHeard update in the drain loop already covered this line.
    (void)state;
}

void
SweepSupervisor::finishWorker(WorkerSlot &w,
                              std::vector<WorkerSlot> &live,
                              std::vector<CellState> &state)
{
    // Drain both pipes first: the worker may have written its result
    // record microseconds before exiting, and declaring "exited
    // without result" on a still-buffered pipe would turn a success
    // into a phantom crash. One poll() suffices - it consumes
    // everything buffered up to EAGAIN/EOF, and the dead worker can
    // write no more. Never wait for EOF here: an orphaned grandchild
    // (a shell's sleep, say) can hold the write end open long after
    // the worker itself is gone.
    std::vector<std::string> lines;
    w.out->poll(lines);
    for (const std::string &l : lines)
        handleRecord(w, state, l);
    lines.clear();
    w.err->poll(lines);
    for (const std::string &l : lines)
        logRawLine(l);

    const ExitStatus &st = w.proc->status();
    CellState &cs = state[w.cellIdx];
    cs.liveWorkers--;
    w.finished = true;

    if (MetricsSink *sink = MetricsSink::global()) {
        Json r = Json::object();
        r["schema"] = metricsSchemaVersion;
        r["kind"] = "worker";
        r["event"] = "exit";
        r["worker"] = static_cast<int64_t>(w.id);
        r["pid"] = static_cast<int64_t>(w.proc->pid());
        r["cell"] = cs.cell->label;
        r["status"] = st.describe();
        sink->append(std::move(r));
    }

    bool success = w.gotResult && st.ok();
    if (cs.done) {
        // A duplicate lost the race (or was terminated after the
        // winner reported); nothing more to record.
        return;
    }

    if (success) {
        cs.done = true;
        cs.result.spec = cs.cell->spec;
        cs.result.label = cs.cell->label;
        cs.result.ok = true;
        cs.result.row = std::move(w.row);
        cs.result.attempts = cs.attempts;
        backoff_ = opt_.backoffMillis;
        // Terminate any speculative duplicate still running.
        for (WorkerSlot &other : live) {
            if (&other != &w && !other.finished &&
                other.cellIdx == w.cellIdx)
                other.proc->kill();
        }
        if (opt_.onCellDone)
            opt_.onCellDone(cs.result);
        return;
    }

    // Supervisor-domain failure: signal, enforced deadline, or an
    // exit with no result record.
    std::string error;
    std::string signal_name;
    const char *crash_reason = nullptr;
    if (w.killReason) {
        error = w.killError;
        signal_name = "SIGKILL";
        crash_reason = w.killReason;
    } else if (st.signaled()) {
        error = format("killed by %s",
                       ExitStatus::signalName(st.sig).c_str());
        signal_name = ExitStatus::signalName(st.sig);
        crash_reason = "signal";
    } else {
        error = format("worker exited without result (%s)",
                       st.describe().c_str());
    }

    if (crash_reason) {
        if (MetricsSink *sink = MetricsSink::global()) {
            Json r = Json::object();
            r["schema"] = metricsSchemaVersion;
            r["kind"] = "crash";
            r["worker"] = static_cast<int64_t>(w.id);
            r["cell"] = cs.cell->label;
            r["signal"] = signal_name;
            r["reason"] = crash_reason;
            sink->append(std::move(r));
        }
    }
    warn("worker %d: cell %s: %s", w.id, cs.cell->label.c_str(),
         error.c_str());

    // Pace the next spawn: a binary that crashes instantly must
    // degrade to a trickle of typed failures, not a fork storm.
    nextSpawnAt_ = Clock::now() + std::chrono::milliseconds(backoff_);
    backoff_ = std::min(backoff_ * 2, maxBackoffMillis);

    cs.lastError = error;
    cs.lastSignal = signal_name;
    if (cs.liveWorkers > 0)
        return; // a speculative duplicate may still succeed
    cs.done = true;
    cs.result.spec = cs.cell->spec;
    cs.result.label = cs.cell->label;
    cs.result.ok = false;
    cs.result.error = cs.lastError;
    cs.result.signalName = cs.lastSignal;
    cs.result.attempts = cs.attempts;
    if (opt_.onCellDone)
        opt_.onCellDone(cs.result);
}

std::vector<SweepCellResult>
SweepSupervisor::run(const std::vector<SweepCell> &cells)
{
    std::vector<CellState> state(cells.size());
    std::deque<size_t> pending;
    for (size_t i = 0; i < cells.size(); i++) {
        state[i].cell = &cells[i];
        pending.push_back(i);
    }

    std::vector<WorkerSlot> live;
    size_t completed = 0;

    while (completed < cells.size()) {
        Clock::time_point now = Clock::now();

        // ------------------------------------------------ spawn
        while (static_cast<int>(live.size()) < opt_.workers &&
               now >= nextSpawnAt_) {
            if (!pending.empty()) {
                size_t idx = pending.front();
                pending.pop_front();
                spawnWorker(live, state, idx, /*stolen=*/false);
                continue;
            }
            if (!opt_.workStealing)
                break;
            // Work-steal: duplicate the longest-running straggler
            // that has no duplicate yet and has run long enough to
            // look like a straggler rather than a fresh cell.
            ssize_t best = -1;
            double best_age = opt_.stealAfterMillis / 1000.0;
            for (size_t i = 0; i < live.size(); i++) {
                const WorkerSlot &w = live[i];
                const CellState &cs = state[w.cellIdx];
                if (w.finished || cs.done || cs.liveWorkers != 1 ||
                    cs.attempts >= maxAttemptsPerCell)
                    continue;
                double age = secondsSince(w.started, now);
                if (age >= best_age) {
                    best_age = age;
                    best = static_cast<ssize_t>(i);
                }
            }
            if (best < 0)
                break;
            spawnWorker(live, state, live[best].cellIdx,
                        /*stolen=*/true);
        }

        // ------------------------------------------------ poll
        bool activity = false;
        for (WorkerSlot &w : live) {
            if (w.finished)
                continue;
            std::vector<std::string> lines;
            w.out->poll(lines);
            if (!lines.empty()) {
                activity = true;
                w.lastHeard = now;
                for (const std::string &l : lines)
                    handleRecord(w, state, l);
            }
            lines.clear();
            w.err->poll(lines);
            for (const std::string &l : lines) {
                activity = true;
                logRawLine(l);
            }

            if (!w.proc->poll()) {
                // Still running: enforce the hard deadlines the
                // cell itself cannot be trusted to honor.
                if (opt_.hardTimeoutSec > 0 &&
                    secondsSince(w.started, now) >
                        opt_.hardTimeoutSec) {
                    w.killReason = "timeout";
                    w.killError = format(
                        "hard timeout after %.1fs (SIGKILL)",
                        opt_.hardTimeoutSec);
                } else if (opt_.heartbeatTimeoutSec > 0 &&
                           secondsSince(w.lastHeard, now) >
                               opt_.heartbeatTimeoutSec) {
                    w.killReason = "heartbeat";
                    w.killError = format(
                        "no heartbeat for %.1fs (SIGKILL)",
                        opt_.heartbeatTimeoutSec);
                } else {
                    continue;
                }
                w.proc->kill(); // blocking SIGKILL + reap
            }
            activity = true;
            finishWorker(w, live, state);
        }

        // Compact finished slots and tally completed cells.
        live.erase(std::remove_if(live.begin(), live.end(),
                                  [](const WorkerSlot &w) {
                                      return w.finished;
                                  }),
                   live.end());
        completed = 0;
        for (const CellState &cs : state)
            if (cs.done)
                completed++;

        if (!activity && completed < cells.size())
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }

    std::vector<SweepCellResult> results;
    results.reserve(cells.size());
    for (CellState &cs : state)
        results.push_back(std::move(cs.result));
    return results;
}

} // namespace zcomp
