#include "error.hh"

#include <atomic>
#include <cstdarg>

#include "log.hh"

namespace zcomp {

namespace {

// Relaxed is enough: the counter is a monotonic event tally read for
// reporting, never used to synchronize other data.
std::atomic<uint64_t> decodeErrors_{0};

} // namespace

void
decodeError(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    decodeErrors_.fetch_add(1, std::memory_order_relaxed);
    throw DecodeError(msg);
}

uint64_t
decodeErrorCount()
{
    return decodeErrors_.load(std::memory_order_relaxed);
}

void
resetDecodeErrorCount()
{
    decodeErrors_.store(0, std::memory_order_relaxed);
}

} // namespace zcomp
