/**
 * @file
 * Invariant-check macros layered on the panic machinery in log.hh.
 *
 * ZCOMP_CHECK(cond, ...)  - always-on invariant. A failure is a
 *                           simulator bug: prints the stringified
 *                           condition plus an optional printf-style
 *                           message and aborts via panic. Use on cold
 *                           paths (construction, drains, stat
 *                           snapshots) where the cost is irrelevant.
 * ZCOMP_DCHECK(cond, ...) - debug-only invariant for hot paths
 *                           (per-access, per-lane). Compiles to
 *                           nothing when NDEBUG is defined (Release /
 *                           RelWithDebInfo): the condition is type
 *                           checked but never evaluated, so Release
 *                           binaries pay zero cost and produce
 *                           bit-identical results.
 *
 * ZCOMP_DCHECK_ENABLED is 1 when DCHECKs are live; code that needs a
 * debug-only helper variable can guard it with
 * `#if ZCOMP_DCHECK_ENABLED`. Defining ZCOMP_FORCE_DCHECKS turns
 * DCHECKs on regardless of NDEBUG (used by tests that must exercise
 * them in every build configuration).
 */

#ifndef ZCOMP_COMMON_CHECK_HH
#define ZCOMP_COMMON_CHECK_HH

#include "common/log.hh"

namespace zcomp {

/**
 * Report a failed check and abort. @p fmt may be null when the caller
 * supplied no message beyond the condition itself.
 */
[[noreturn]] void checkFailedImpl(const char *file, int line,
                                  const char *cond,
                                  const char *fmt = nullptr, ...)
    __attribute__((format(printf, 4, 5)));

} // namespace zcomp

#if !defined(NDEBUG) || defined(ZCOMP_FORCE_DCHECKS)
#define ZCOMP_DCHECK_ENABLED 1
#else
#define ZCOMP_DCHECK_ENABLED 0
#endif

/** Abort unless cond holds; optional printf-style message. */
#define ZCOMP_CHECK(cond, ...)                                              \
    do {                                                                    \
        if (!(cond)) [[unlikely]] {                                         \
            ::zcomp::checkFailedImpl(__FILE__, __LINE__,                    \
                                     #cond __VA_OPT__(, ) __VA_ARGS__);     \
        }                                                                   \
    } while (0)

#if ZCOMP_DCHECK_ENABLED
#define ZCOMP_DCHECK(cond, ...) ZCOMP_CHECK(cond __VA_OPT__(, ) __VA_ARGS__)
#else
/* The dead branch keeps the operands type-checked (and silences
 * "unused variable" warnings for debug-only state) while the optimizer
 * removes every trace of it. */
#define ZCOMP_DCHECK(cond, ...)                                             \
    do {                                                                    \
        if (false) {                                                        \
            ZCOMP_CHECK(cond __VA_OPT__(, ) __VA_ARGS__);                   \
        }                                                                   \
    } while (0)
#endif

#endif // ZCOMP_COMMON_CHECK_HH
