#include "common/rng.hh"

#include <cmath>

namespace zcomp {

namespace {

uint64_t
splitMix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t x = seed;
    for (auto &s : s_)
        s = splitMix64(x);
}

uint64_t
Rng::next64()
{
    uint64_t result = rotl(s_[1] * 5, 7) * 9;
    uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> [0, 1).
    return static_cast<double>(next64() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

uint64_t
Rng::below(uint64_t n)
{
    // Modulo bias is negligible for the ranges used here (n << 2^64).
    return next64() % n;
}

double
Rng::gaussian()
{
    if (haveSpare_) {
        haveSpare_ = false;
        return spare_;
    }
    double u1 = 0.0;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    double u2 = uniform();
    double r = std::sqrt(-2.0 * std::log(u1));
    double theta = 2.0 * M_PI * u2;
    spare_ = r * std::sin(theta);
    haveSpare_ = true;
    return r * std::cos(theta);
}

double
Rng::gaussian(double mean, double sigma)
{
    return mean + sigma * gaussian();
}

bool
Rng::chance(double p)
{
    return uniform() < p;
}

} // namespace zcomp
