/**
 * @file
 * Runtime-dispatched SIMD backend for the simulator's hot loops.
 *
 * Design rules (enforced by zcomp_lint):
 *  - This header declares the backend API only; it must NOT include
 *    immintrin.h. The one and only immintrin.h include in the repo
 *    lives in src/common/simd.cc, where every vector kernel is a
 *    non-inline function compiled with an explicit target attribute.
 *  - Every kernel is an exact-behavior accelerator: given the same
 *    inputs it produces results bit-identical to the scalar reference
 *    loop at its call site. Kernels therefore return `bool` (or a
 *    sentinel) meaning "handled"; when the active backend has no
 *    vector path for the request, the caller runs its scalar loop.
 *    This keeps exactly one authoritative scalar implementation: the
 *    pre-existing code in the caller.
 *
 * Backend selection:
 *  - The active backend resolves once from the ZCOMP_SIMD environment
 *    variable (off | scalar | avx2 | avx512 | auto; default auto) and
 *    host CPU capability, and can be overridden programmatically with
 *    setBackend() (tests and the differential fuzzer do this).
 */

#ifndef ZCOMP_COMMON_SIMD_HH
#define ZCOMP_COMMON_SIMD_HH

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace zcomp {
namespace simd {

enum class Backend : uint8_t
{
    Scalar = 0, //< reference loops at the call sites; always available
    Avx2 = 1,   //< 256-bit kernels for the widest-impact paths
    Avx512 = 2, //< full kernel set (F+BW+VL+DQ; no VBMI2 required)
};

/** Stable lowercase name ("scalar", "avx2", "avx512"). */
const char *backendName(Backend b);

/** True when the host CPU can execute kernels of this backend. */
bool backendSupported(Backend b);

/** Best backend the host supports (ignores ZCOMP_SIMD). */
Backend bestSupportedBackend();

/**
 * The backend all kernels dispatch on. First use resolves ZCOMP_SIMD
 * against host capability; later reads are lock-free.
 */
Backend activeBackend();

/**
 * Override the active backend (tests / fuzzing / bench). Fatal if the
 * host cannot execute it. Not thread-safe against concurrent kernels;
 * call only from single-threaded phases.
 */
void setBackend(Backend b);

/**
 * Parse a ZCOMP_SIMD-style name into a backend. Returns true and sets
 * `out` for off|scalar|avx2|avx512; "auto" maps to
 * bestSupportedBackend(). Unknown names return false.
 */
bool parseBackend(const char *name, Backend &out);

// ---------------------------------------------------------------------
// Kernels. All return whether the active backend handled the request;
// on `false` the caller must run its scalar reference loop.
// ---------------------------------------------------------------------

namespace detail {

/**
 * Hot-path dispatch pointer for findTag64. The cache model issues
 * billions of tag probes per sweep, so this one kernel dispatches
 * through a pointer kept in sync by setBackend()/activeBackend()
 * instead of a per-call backend switch. It starts on a trampoline
 * that resolves ZCOMP_SIMD on first use; null means scalar (caller
 * runs its reference loop).
 */
using FindTag64Fn = int (*)(const uint64_t *tags, int n,
                            uint64_t needle);
extern std::atomic<FindTag64Fn> findTag64Fn;

} // namespace detail

/**
 * Find the index in [0, n) whose 64-bit tag equals `needle`, or -1.
 * Requires the caller to guarantee at most one match (cache sets hold
 * unique tags), which makes the result backend-independent.
 */
inline bool
findTag64(const uint64_t *tags, int n, uint64_t needle, int &way)
{
    detail::FindTag64Fn fn =
        detail::findTag64Fn.load(std::memory_order_relaxed);
    if (!fn)
        return false;
    way = fn(tags, n, needle);
    return true;
}

/**
 * Compute the zcomps keep-header of a 64-byte vector of `elemBytes`-
 * wide lanes: bit i set iff lane i is kept. Matches laneKept() on raw
 * lane bits: kept iff raw != 0, and additionally (for dropNonPositive
 * / LTEZ mode) the lane sign bit is clear.
 */
bool laneHeader(const uint8_t *vec, int elemBytes, bool dropNonPositive,
                uint64_t &header);

/**
 * Pack lanes of `vec` selected by `header` densely into dst (exact
 * byte moves, ascending lane order). dst must have room for
 * popcount(header) * elemBytes bytes; nothing beyond is written.
 */
bool packLanes(const uint8_t *vec, int elemBytes, uint64_t header,
               uint8_t *dst);

/**
 * Expand a dense payload into a 64-byte vector: lane i gets the next
 * payload element if header bit i is set, else zero. Reads exactly
 * popcount(header) * elemBytes payload bytes. `out` must be 64 bytes.
 */
bool unpackLanes(const uint8_t *payload, int elemBytes, uint64_t header,
                 uint8_t *out);

/**
 * Count of floats with d[i] != 0.0f (IEEE compare: -0.0f counts as
 * zero, NaN counts as nonzero), added into `nnz`.
 */
bool countNonzeroF32(const float *d, size_t n, size_t &nnz);

/**
 * Per-16-lane-group nonzero counts: out[v] = number of lanes with
 * d[16v + i] != 0.0f for v in [0, vecs). Same compare semantics as
 * countNonzeroF32.
 */
bool vecNnzF32(const float *d, size_t vecs, uint16_t *out);

/**
 * FPC word classification for one 64-byte line (16 little-endian
 * 32-bit words): bits[w] = payload bits of the best non-zero-run FPC
 * class for word w (3-bit prefix excluded), zeroMask bit w = word w
 * is zero. The caller runs the zero-run state machine on zeroMask and
 * sums bits[w] (+3 prefix) for nonzero words.
 */
bool fpcBitsLine(const uint8_t *line, uint8_t *bits,
                 uint16_t &zeroMask);

/**
 * GEMM inner kernels. Both mirror the scalar loops bit-exactly:
 * separate IEEE multiply then add per lane (the build targets a
 * baseline ISA without FMA contraction), same accumulation order.
 */

/** c[j] += av * b[j] for j in [0, n). Caller keeps the av==0 skip. */
bool axpyF32(float av, const float *b, float *c, size_t n);

/**
 * acc[l] += sum_p a[p] * bt[p*16 + l] for l in [0,16), p ascending —
 * 16 independent dot products against a 16-column transposed panel.
 */
bool dotPanel16F32(const float *a, const float *bt, size_t plen,
                   float *acc);

} // namespace simd
} // namespace zcomp

#endif // ZCOMP_COMMON_SIMD_HH
