#include "common/table.hh"

#include <algorithm>
#include <cstdio>

#include "common/log.hh"

namespace zcomp {

Table::Table(std::string title) : title_(std::move(title))
{
}

void
Table::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
Table::addRow(std::vector<std::string> row)
{
    panic_if(!header_.empty() && row.size() != header_.size(),
             "table row has %zu cells, header has %zu", row.size(),
             header_.size());
    rows_.push_back(std::move(row));
}

std::string
Table::fmt(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
Table::fmtBytes(double bytes)
{
    const char *suffix = "B";
    if (bytes >= 1024.0 * 1024.0 * 1024.0) {
        bytes /= 1024.0 * 1024.0 * 1024.0;
        suffix = "GiB";
    } else if (bytes >= 1024.0 * 1024.0) {
        bytes /= 1024.0 * 1024.0;
        suffix = "MiB";
    } else if (bytes >= 1024.0) {
        bytes /= 1024.0;
        suffix = "KiB";
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.2f %s", bytes, suffix);
    return buf;
}

std::string
Table::fmtPct(double ratio, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, ratio * 100.0);
    return buf;
}

void
Table::print(std::ostream &os) const
{
    size_t ncols = header_.size();
    for (const auto &row : rows_)
        ncols = std::max(ncols, row.size());
    if (ncols == 0)
        return;

    std::vector<size_t> widths(ncols, 0);
    for (size_t i = 0; i < header_.size(); i++)
        widths[i] = header_[i].size();
    for (const auto &row : rows_) {
        for (size_t i = 0; i < row.size(); i++)
            widths[i] = std::max(widths[i], row[i].size());
    }

    auto print_row = [&](const std::vector<std::string> &row) {
        for (size_t i = 0; i < ncols; i++) {
            const std::string cell = i < row.size() ? row[i] : "";
            os << cell;
            if (i + 1 < ncols) {
                os << std::string(widths[i] - cell.size() + 2, ' ');
            }
        }
        os << "\n";
    };

    if (!title_.empty())
        os << "== " << title_ << " ==\n";
    if (!header_.empty()) {
        print_row(header_);
        size_t total = 0;
        for (size_t i = 0; i < ncols; i++)
            total += widths[i] + (i + 1 < ncols ? 2 : 0);
        os << std::string(total, '-') << "\n";
    }
    for (const auto &row : rows_)
        print_row(row);
}

} // namespace zcomp
