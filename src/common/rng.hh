/**
 * @file
 * Deterministic pseudo-random number generation (xoshiro256**).
 *
 * All stochastic behaviour in the repository (synthetic inputs, weight
 * initialization, dropout masks, snapshot generation) flows through Rng
 * so that every experiment is exactly reproducible from its seed.
 */

#ifndef ZCOMP_COMMON_RNG_HH
#define ZCOMP_COMMON_RNG_HH

#include <cstdint>

namespace zcomp {

class Rng
{
  public:
    /** Seed via SplitMix64 so any 64-bit seed yields a good state. */
    explicit Rng(uint64_t seed = 0x5eedULL);

    /** Next raw 64-bit value. */
    uint64_t next64();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). n must be non-zero. */
    uint64_t below(uint64_t n);

    /** Standard normal via Box-Muller. */
    double gaussian();

    /** Normal with the given mean and standard deviation. */
    double gaussian(double mean, double sigma);

    /** Bernoulli trial with probability p of returning true. */
    bool chance(double p);

  private:
    uint64_t s_[4];
    bool haveSpare_ = false;
    double spare_ = 0.0;
};

} // namespace zcomp

#endif // ZCOMP_COMMON_RNG_HH
