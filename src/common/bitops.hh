/**
 * @file
 * Small bit-manipulation and arithmetic helpers used throughout the
 * simulator and the ZCOMP functional models.
 */

#ifndef ZCOMP_COMMON_BITOPS_HH
#define ZCOMP_COMMON_BITOPS_HH

#include <bit>
#include <cstdint>
#include <type_traits>

namespace zcomp {

/** Population count of a 64-bit value. */
constexpr int
popcount64(uint64_t v)
{
    return std::popcount(v);
}

/** True iff v is a power of two (0 is not). */
constexpr bool
isPow2(uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Floor of log2(v); v must be non-zero. */
constexpr int
floorLog2(uint64_t v)
{
    return 63 - std::countl_zero(v);
}

/** Ceiling of log2(v); v must be non-zero. */
constexpr int
ceilLog2(uint64_t v)
{
    return isPow2(v) ? floorLog2(v) : floorLog2(v) + 1;
}

/** Round v up to the next multiple of align (align must be a power of 2). */
constexpr uint64_t
alignUp(uint64_t v, uint64_t align)
{
    return (v + align - 1) & ~(align - 1);
}

/** Round v down to a multiple of align (align must be a power of 2). */
constexpr uint64_t
alignDown(uint64_t v, uint64_t align)
{
    return v & ~(align - 1);
}

/** Ceiling division for unsigned integral types. */
template <typename T>
constexpr T
divCeil(T a, T b)
{
    static_assert(std::is_integral_v<T>);
    return (a + b - 1) / b;
}

/** Extract bits [first, last] (inclusive, last >= first) from v. */
constexpr uint64_t
bits(uint64_t v, int last, int first)
{
    int nbits = last - first + 1;
    uint64_t mask = nbits >= 64 ? ~0ULL : ((1ULL << nbits) - 1);
    return (v >> first) & mask;
}

/** Insert value val into bits [first, last] of v and return the result. */
constexpr uint64_t
insertBits(uint64_t v, int last, int first, uint64_t val)
{
    int nbits = last - first + 1;
    uint64_t mask = nbits >= 64 ? ~0ULL : ((1ULL << nbits) - 1);
    return (v & ~(mask << first)) | ((val & mask) << first);
}

} // namespace zcomp

#endif // ZCOMP_COMMON_BITOPS_HH
