/**
 * @file
 * Small bit-manipulation and arithmetic helpers used throughout the
 * simulator and the ZCOMP functional models.
 */

#ifndef ZCOMP_COMMON_BITOPS_HH
#define ZCOMP_COMMON_BITOPS_HH

#include <bit>
#include <cstdint>
#include <cstring>
#include <type_traits>

#include "common/check.hh"

namespace zcomp {

/** Population count of a 64-bit value. */
constexpr int
popcount64(uint64_t v)
{
    return std::popcount(v);
}

/** True iff v is a power of two (0 is not). */
constexpr bool
isPow2(uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Floor of log2(v); v must be non-zero. */
constexpr int
floorLog2(uint64_t v)
{
    return 63 - std::countl_zero(v);
}

/** Ceiling of log2(v); v must be non-zero. */
constexpr int
ceilLog2(uint64_t v)
{
    return isPow2(v) ? floorLog2(v) : floorLog2(v) + 1;
}

/** Round v up to the next multiple of align (align must be a power of 2). */
constexpr uint64_t
alignUp(uint64_t v, uint64_t align)
{
    return (v + align - 1) & ~(align - 1);
}

/** Round v down to a multiple of align (align must be a power of 2). */
constexpr uint64_t
alignDown(uint64_t v, uint64_t align)
{
    return v & ~(align - 1);
}

/** Ceiling division for unsigned integral types. */
template <typename T>
constexpr T
divCeil(T a, T b)
{
    static_assert(std::is_integral_v<T>);
    return (a + b - 1) / b;
}

/** Extract bits [first, last] (inclusive, last >= first) from v. */
constexpr uint64_t
bits(uint64_t v, int last, int first)
{
    int nbits = last - first + 1;
    uint64_t mask = nbits >= 64 ? ~0ULL : ((1ULL << nbits) - 1);
    return (v >> first) & mask;
}

/** Insert value val into bits [first, last] of v and return the result. */
constexpr uint64_t
insertBits(uint64_t v, int last, int first, uint64_t val)
{
    int nbits = last - first + 1;
    uint64_t mask = nbits >= 64 ? ~0ULL : ((1ULL << nbits) - 1);
    return (v & ~(mask << first)) | ((val & mask) << first);
}

/**
 * Read a T from possibly-unaligned memory without violating strict
 * aliasing. The single sanctioned type-punning primitive; raw
 * std::memcpy punning elsewhere is a lint smell.
 */
template <typename T>
inline T
loadAs(const void *src)
{
    static_assert(std::is_trivially_copyable_v<T>);
    T v;
    std::memcpy(&v, src, sizeof(T));
    return v;
}

/** Write a T to possibly-unaligned memory. */
template <typename T>
inline void
storeAs(void *dst, const T &v)
{
    static_assert(std::is_trivially_copyable_v<T>);
    std::memcpy(dst, &v, sizeof(T));
}

/**
 * Bounds-checked flavor: read the T at byte offset @p off of the
 * @p len -byte buffer at @p base.
 */
template <typename T>
inline T
loadAs(const uint8_t *base, size_t len, size_t off)
{
    ZCOMP_DCHECK(off + sizeof(T) <= len,
                 "load of %zu bytes at offset %zu overruns %zu-byte buffer",
                 sizeof(T), off, len);
    return loadAs<T>(base + off);
}

/** Bounds-checked flavor: write the T at byte offset @p off. */
template <typename T>
inline void
storeAs(uint8_t *base, size_t len, size_t off, const T &v)
{
    ZCOMP_DCHECK(off + sizeof(T) <= len,
                 "store of %zu bytes at offset %zu overruns %zu-byte buffer",
                 sizeof(T), off, len);
    storeAs<T>(base + off, v);
}

/**
 * Assemble @p nbytes (<= 8) little-endian bytes into a uint64_t.
 * Used for the variable-width ZCOMP headers; byte shifts keep the
 * result host-endianness independent.
 */
inline uint64_t
loadBytesLe(const uint8_t *src, int nbytes)
{
    ZCOMP_DCHECK(nbytes >= 0 && nbytes <= 8, "bad field width %d", nbytes);
    uint64_t v = 0;
    for (int i = 0; i < nbytes; i++)
        v |= static_cast<uint64_t>(src[i]) << (8 * i);
    return v;
}

/** Write the low @p nbytes (<= 8) of v as little-endian bytes. */
inline void
storeBytesLe(uint8_t *dst, int nbytes, uint64_t v)
{
    ZCOMP_DCHECK(nbytes >= 0 && nbytes <= 8, "bad field width %d", nbytes);
    for (int i = 0; i < nbytes; i++)
        dst[i] = static_cast<uint8_t>(v >> (8 * i));
}

} // namespace zcomp

#endif // ZCOMP_COMMON_BITOPS_HH
