/**
 * @file
 * ResultCache - a content-addressed on-disk store of JSON values,
 * the persistence layer behind the study runner's --cache/--resume
 * flags.
 *
 * A cache maps an arbitrary key string (by convention a canonical
 * JSON dump of everything that determines the result: code-schema
 * version, machine config, cell parameters) to a Json value. Entries
 * live one per file under the cache directory, named by the 64-bit
 * FNV-1a hash of the key:
 *
 *   <dir>/<16-hex-digits>.json =
 *       { "schema": "zcomp-result-cache-v1",
 *         "key":    "<the full key string>",
 *         "value":  <the stored value> }
 *
 * lookup() re-validates the schema marker and compares the full key
 * string, so hash collisions and truncated/corrupted entries degrade
 * to a miss (the caller recomputes and store() overwrites), never to
 * wrong data. store() writes through a temp file + rename, so a
 * process killed mid-store never leaves a half-written entry that a
 * later --resume would trip over.
 *
 * Thread-safe: concurrent store()/lookup() calls from pool workers
 * are fine (distinct keys go to distinct files; same-key races are
 * benign because every store writes the same bytes).
 */

#ifndef ZCOMP_COMMON_RESULT_CACHE_HH
#define ZCOMP_COMMON_RESULT_CACHE_HH

#include <cstdint>
#include <optional>
#include <string>

#include "common/annotate.hh"
#include "common/json.hh"

namespace zcomp {

class ResultCache
{
  public:
    /** Opens (creating if needed) the cache directory; fatal()s if
     *  the directory cannot be created. */
    explicit ResultCache(std::string dir);

    ResultCache(const ResultCache &) = delete;
    ResultCache &operator=(const ResultCache &) = delete;

    /**
     * Fetch the value stored for key. Absent, unreadable, corrupt,
     * schema-mismatched and key-mismatched (hash collision) entries
     * all return nullopt - a cache problem is never an error, just a
     * recompute.
     */
    std::optional<Json> lookup(const std::string &key)
        ZCOMP_EXCLUDES(mu_);

    /** Store (or overwrite) the value for key. Failures warn only. */
    void store(const std::string &key, const Json &value)
        ZCOMP_EXCLUDES(mu_);

    /** The entry file a key maps to (exists only once stored). */
    std::string entryPath(const std::string &key) const;

    /** 64-bit FNV-1a content hash of a key string. */
    static uint64_t keyHash(const std::string &key);

    /**
     * The temp file store() writes before its atomic rename:
     * <entry_path>.tmp.<pid>.<seq>. The PID is part of the name
     * because multiple worker processes share one cache dir under
     * --isolate-cells; the per-process counter alone is not unique
     * across them.
     */
    static std::string tempPath(const std::string &entry_path,
                                uint64_t seq);

    /**
     * Pin the next store() sequence number (test-only). Lets a
     * regression test force two processes onto identical sequence
     * numbers to prove the PID keeps their temp names distinct.
     */
    static void setNextStoreSequenceForTest(uint64_t seq);

    const std::string &dir() const { return dir_; }

    // Harness-visible traffic counters (thread-safe).
    uint64_t hits() const ZCOMP_EXCLUDES(mu_);
    uint64_t misses() const ZCOMP_EXCLUDES(mu_);
    uint64_t stores() const ZCOMP_EXCLUDES(mu_);

  private:
    /** Remove orphaned .tmp.* files left by crashed writers (called
     *  once from the constructor; only files comfortably older than
     *  this open are touched, so live writers are safe). */
    void sweepStaleTempFiles();

    // Lock contract: mu_ guards only the traffic counters; file I/O
    // deliberately happens outside it (distinct keys hit distinct
    // files, same-key store races write identical bytes), so lookups
    // never serialize on each other.
    std::string dir_;
    mutable Mutex mu_;
    uint64_t hits_ ZCOMP_GUARDED_BY(mu_) = 0;
    uint64_t misses_ ZCOMP_GUARDED_BY(mu_) = 0;
    uint64_t stores_ ZCOMP_GUARDED_BY(mu_) = 0;
};

} // namespace zcomp

#endif // ZCOMP_COMMON_RESULT_CACHE_HH
