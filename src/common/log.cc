#include "common/log.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <vector>

namespace zcomp {

namespace {
std::atomic<bool> quietFlag{false};

/**
 * Serializes the message lines of concurrent warn()/inform() callers
 * (study-runner tasks log from worker threads). Each message is
 * pre-formatted into one string and written by a single fprintf, so
 * the mutex only orders whole lines - the single-threaded output is
 * unchanged.
 */
std::mutex outputMu;
} // namespace

void
setQuiet(bool q)
{
    quietFlag = q;
}

bool
quiet()
{
    return quietFlag;
}

std::string
vformat(const char *fmt, va_list ap)
{
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap2);
    va_end(ap2);
    if (n < 0)
        return std::string(fmt);
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap);
    return std::string(buf.data(), static_cast<size_t>(n));
}

std::string
format(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vformat(fmt, ap);
    va_end(ap);
    return s;
}

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    {
        std::lock_guard<std::mutex> lk(outputMu);
        std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file,
                     line);
    }
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    {
        std::lock_guard<std::mutex> lk(outputMu);
        std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file,
                     line);
    }
    std::exit(1);
}

void
warnImpl(const char *fmt, ...)
{
    if (quietFlag)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::lock_guard<std::mutex> lk(outputMu);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const char *fmt, ...)
{
    if (quietFlag)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::lock_guard<std::mutex> lk(outputMu);
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace zcomp
