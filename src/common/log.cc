#include "common/log.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/annotate.hh"

namespace zcomp {

namespace {
std::atomic<bool> quietFlag{false};

/**
 * Serializes the message lines of concurrent warn()/inform() callers
 * (study-runner tasks log from worker threads). Each message is
 * pre-formatted into one string and written by a single fprintf, so
 * the mutex only orders whole lines - the single-threaded output is
 * unchanged.
 */
Mutex outputMu;

/**
 * The sticky status line (setStatusLine), guarded by outputMu. Log
 * messages erase it, print, and redraw it so whole lines and the
 * status can never tear each other under --jobs > 1.
 */
std::string statusLine ZCOMP_GUARDED_BY(outputMu);

/** Erase the currently drawn status line. Caller holds outputMu. */
void
eraseStatusLocked() ZCOMP_REQUIRES(outputMu)
{
    if (!statusLine.empty())
        std::fprintf(stderr, "\r\x1b[2K");
}

/** Redraw the status line (no newline). Caller holds outputMu. */
void
redrawStatusLocked() ZCOMP_REQUIRES(outputMu)
{
    if (!statusLine.empty()) {
        std::fprintf(stderr, "%s", statusLine.c_str());
        std::fflush(stderr);
    }
}

/**
 * Emit one complete log line, keeping the status line intact below
 * it. Caller holds outputMu.
 */
void
emitLineLocked(const char *prefix, const std::string &msg)
    ZCOMP_REQUIRES(outputMu)
{
    eraseStatusLocked();
    std::fprintf(stderr, "%s: %s\n", prefix, msg.c_str());
    redrawStatusLocked();
}
} // namespace

void
setStatusLine(const std::string &line)
{
    LockGuard lk(outputMu);
    eraseStatusLocked();
    statusLine = line;
    redrawStatusLocked();
}

void
clearStatusLine()
{
    LockGuard lk(outputMu);
    eraseStatusLocked();
    statusLine.clear();
}

void
setQuiet(bool q)
{
    quietFlag = q;
}

bool
quiet()
{
    return quietFlag;
}

std::string
vformat(const char *fmt, va_list ap)
{
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap2);
    va_end(ap2);
    if (n < 0)
        return std::string(fmt);
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap);
    return std::string(buf.data(), static_cast<size_t>(n));
}

std::string
format(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vformat(fmt, ap);
    va_end(ap);
    return s;
}

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    {
        LockGuard lk(outputMu);
        eraseStatusLocked();    // dying: print clean, no redraw
        std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file,
                     line);
    }
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    {
        LockGuard lk(outputMu);
        eraseStatusLocked();    // dying: print clean, no redraw
        std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file,
                     line);
    }
    std::exit(1);
}

void
warnImpl(const char *fmt, ...)
{
    if (quietFlag)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    LockGuard lk(outputMu);
    emitLineLocked("warn", msg);
}

void
informImpl(const char *fmt, ...)
{
    if (quietFlag)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    LockGuard lk(outputMu);
    emitLineLocked("info", msg);
}

void
logRawLine(const std::string &line)
{
    if (quietFlag)
        return;
    LockGuard lk(outputMu);
    eraseStatusLocked();
    std::fprintf(stderr, "%s\n", line.c_str());
    redrawStatusLocked();
}

} // namespace zcomp
