#include "fault.hh"

#include <cerrno>
#include <cstdlib>
#include <vector>

#include "error.hh"
#include "log.hh"

namespace zcomp {

namespace {

const char *const knownSites[] = {
    faultsite::DramBitflip,
    faultsite::ZcompHeader,
    faultsite::StreamTruncate,
    faultsite::KernelTransient,
};

bool
isKnownSite(const std::string &name)
{
    for (const char *site : knownSites) {
        if (name == site) {
            return true;
        }
    }
    return false;
}

// FNV-1a, so distinct sites sharing the default seed still draw
// independent deterministic sequences.
uint64_t
hashSiteName(const std::string &name)
{
    uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : name) {
        h = (h ^ c) * 0x100000001b3ULL;
    }
    return h;
}

std::vector<std::string>
split(const std::string &text, char sep)
{
    std::vector<std::string> out;
    size_t start = 0;
    while (true) {
        size_t end = text.find(sep, start);
        if (end == std::string::npos) {
            out.push_back(text.substr(start));
            return out;
        }
        out.push_back(text.substr(start, end - start));
        start = end + 1;
    }
}

double
parseProb(const std::string &text, const std::string &entry)
{
    errno = 0;
    char *end = nullptr;
    double v = std::strtod(text.c_str(), &end);
    fatal_if(text.empty() || end != text.c_str() + text.size() ||
                 errno == ERANGE || !(v >= 0.0 && v <= 1.0),
             "--fault-spec '%s': probability '%s' is not in [0, 1]",
             entry.c_str(), text.c_str());
    return v;
}

uint64_t
parseU64(const std::string &text, const std::string &entry,
         const char *what)
{
    errno = 0;
    char *end = nullptr;
    unsigned long long v = std::strtoull(text.c_str(), &end, 10);
    fatal_if(text.empty() || text[0] == '-' ||
                 end != text.c_str() + text.size() || errno == ERANGE,
             "--fault-spec '%s': %s '%s' is not a non-negative integer",
             entry.c_str(), what, text.c_str());
    return v;
}

} // namespace

FaultInjector &
FaultInjector::global()
{
    static FaultInjector injector;
    return injector;
}

void
FaultInjector::configure(const std::string &spec)
{
    LockGuard lock(mutex_);
    // Replace semantics: an empty spec must actually disarm sites
    // configured earlier, not silently leave them live.
    sites_.clear();
    if (spec.empty()) {
        enabled_.store(false, std::memory_order_relaxed);
        return;
    }
    for (const std::string &entry : split(spec, ',')) {
        std::vector<std::string> parts = split(entry, ':');
        fatal_if(parts.size() < 2 || parts.size() > 4,
                 "--fault-spec entry '%s' is not site:prob[:seed[:max]]",
                 entry.c_str());
        fatal_if(!isKnownSite(parts[0]),
                 "--fault-spec names unknown fault site '%s' "
                 "(known: dram.bitflip, zcomp.header, "
                 "zcomp.stream.truncate, kernel.transient)",
                 parts[0].c_str());
        Site &site = sites_[parts[0]];
        site.prob = parseProb(parts[1], entry);
        site.hasSeed = parts.size() >= 3;
        site.seed = site.hasSeed ? parseU64(parts[2], entry, "seed")
                                 : hashSiteName(parts[0]);
        site.hasMax = parts.size() >= 4;
        site.maxInjections =
            site.hasMax ? parseU64(parts[3], entry, "max") : 0;
        site.fired = 0;
        site.rng = Rng(site.seed);
    }
    enabled_.store(!sites_.empty(), std::memory_order_relaxed);
}

bool
FaultInjector::shouldInject(const char *site)
{
    if (!enabled()) {
        return false;
    }
    LockGuard lock(mutex_);
    auto it = sites_.find(site);
    if (it == sites_.end()) {
        return false;
    }
    Site &s = it->second;
    if (s.hasMax && s.fired >= s.maxInjections) {
        return false;
    }
    if (!s.rng.chance(s.prob)) {
        return false;
    }
    s.fired++;
    return true;
}

void
FaultInjector::maybeInject(const char *site)
{
    if (shouldInject(site)) {
        throw FaultInjected(site,
                            format("injected fault at site %s", site));
    }
}

std::string
FaultInjector::specLocked() const
{
    std::string out;
    for (const auto &kv : sites_) {
        if (!out.empty()) {
            out += ',';
        }
        out += kv.first + ':' + jsonNumber(kv.second.prob);
        if (kv.second.hasSeed) {
            out += ':' + std::to_string(kv.second.seed);
        }
        if (kv.second.hasMax) {
            out += ':' + std::to_string(kv.second.maxInjections);
        }
    }
    return out;
}

std::string
FaultInjector::spec() const
{
    LockGuard lock(mutex_);
    return specLocked();
}

uint64_t
FaultInjector::injected(const char *site) const
{
    LockGuard lock(mutex_);
    auto it = sites_.find(site);
    return it == sites_.end() ? 0 : it->second.fired;
}

uint64_t
FaultInjector::totalInjected() const
{
    LockGuard lock(mutex_);
    uint64_t total = 0;
    for (const auto &kv : sites_) {
        total += kv.second.fired;
    }
    return total;
}

Json
FaultInjector::toJson() const
{
    LockGuard lock(mutex_);
    Json out = Json::object();
    out["spec"] = Json(specLocked());
    Json injected = Json::object();
    for (const auto &kv : sites_) {
        if (kv.second.fired > 0) {
            injected[kv.first] = Json(kv.second.fired);
        }
    }
    out["injected"] = injected;
    return out;
}

void
FaultInjector::reset()
{
    LockGuard lock(mutex_);
    sites_.clear();
    enabled_.store(false, std::memory_order_relaxed);
}

Json
faultStatsJson()
{
    Json out = FaultInjector::global().toJson();
    out["decodeErrors"] = Json(decodeErrorCount());
    return out;
}

} // namespace zcomp
