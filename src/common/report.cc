#include "common/report.hh"

#include <atomic>
#include <cstdio>

#include "common/log.hh"
#include "common/thread_pool.hh"

namespace zcomp {

namespace {

const char *
replName(ReplPolicy p)
{
    return p == ReplPolicy::LRU ? "LRU" : "SRRIP";
}

Json
cacheToJson(const CacheConfig &c)
{
    Json j = Json::object();
    j["sizeBytes"] = c.size;
    j["assoc"] = c.assoc;
    j["latency"] = c.latency;
    j["repl"] = replName(c.repl);
    j["bytesPerCycle"] = c.bytesPerCycle;
    j["hashIndex"] = c.hashIndex;
    return j;
}

} // namespace

Json
machineToJson(const ArchConfig &cfg)
{
    Json m = Json::object();
    m["summary"] = cfg.summary();
    m["numCores"] = cfg.numCores;

    Json &core = m["core"];
    core = Json::object();
    core["issueWidth"] = cfg.core.issueWidth;
    core["freqGHz"] = cfg.core.freqGHz;
    core["mshrs"] = cfg.core.mshrs;
    core["storeBuffer"] = cfg.core.storeBuffer;
    core["loadPorts"] = cfg.core.loadPorts;
    core["storePorts"] = cfg.core.storePorts;

    m["l1"] = cacheToJson(cfg.l1);
    m["l2"] = cacheToJson(cfg.l2);
    m["l3"] = cacheToJson(cfg.l3);

    Json &pf = m["prefetch"];
    pf = Json::object();
    pf["l1IpStride"] = cfg.prefetch.l1IpStride;
    pf["l2Stream"] = cfg.prefetch.l2Stream;
    pf["l2Degree"] = cfg.prefetch.l2Degree;
    pf["l2Distance"] = cfg.prefetch.l2Distance;
    pf["l2StreamTableSize"] = cfg.prefetch.l2StreamTableSize;

    Json &dram = m["dram"];
    dram = Json::object();
    dram["channels"] = cfg.dram.channels;
    dram["totalBandwidthGBps"] = cfg.dram.totalBandwidthGBps;
    dram["latencyNs"] = cfg.dram.latencyNs;
    dram["interleaveBytes"] = cfg.dram.interleaveBytes;

    Json &noc = m["noc"];
    noc = Json::object();
    noc["meshX"] = cfg.noc.meshX;
    noc["meshY"] = cfg.noc.meshY;
    noc["hopCycles"] = cfg.noc.hopCycles;

    Json &zc = m["zcomp"];
    zc = Json::object();
    zc["logicLatency"] = cfg.zcomp.logicLatency;
    zc["logicThroughput"] = cfg.zcomp.logicThroughput;
    return m;
}

RunReport::RunReport(std::string path, std::string title,
                     std::vector<std::string> argv)
    : path_(std::move(path)), t0_(Clock::now())
{
    LockGuard lk(mu_);
    doc_["schema"] = "zcomp-run-report-v1";
    doc_["title"] = std::move(title);
    Json &av = doc_["argv"];
    av = Json::array();
    for (std::string &a : argv)
        av.push(std::move(a));
    doc_["machine"] = Json::object();
    doc_["host"] = Json::object();
    doc_["rows"] = Json::array();
}

void
RunReport::setMachine(const ArchConfig &cfg)
{
    LockGuard lk(mu_);
    doc_["machine"] = machineToJson(cfg);
}

void
RunReport::addRow(Json row)
{
    LockGuard lk(mu_);
    doc_["rows"].push(std::move(row));
}

void
RunReport::withRoot(const std::function<void(Json &)> &fn)
{
    LockGuard lk(mu_);
    fn(doc_);
}

void
RunReport::write()
{
    LockGuard lk(mu_);
    if (written_)
        return;
    written_ = true;

    Json &host = doc_["host"];
    host["wallMillis"] =
        std::chrono::duration<double, std::milli>(Clock::now() - t0_)
            .count();
    host["jobs"] = ThreadPool::global().jobs();

    std::FILE *f = std::fopen(path_.c_str(), "w");
    if (!f) {
        warn("cannot write report file %s", path_.c_str());
        return;
    }
    std::string text = doc_.dump(2);
    text += '\n';
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
}

// ---------------------------------------------------- global report

namespace {
std::atomic<RunReport *> globalReport{nullptr};
} // namespace

RunReport *
RunReport::global()
{
    return globalReport.load(std::memory_order_acquire);
}

void
RunReport::enableGlobal(const std::string &path,
                        const std::string &title,
                        std::vector<std::string> argv)
{
    RunReport *prev = globalReport.exchange(
        new RunReport(path, title,  // zcomp-lint: allow(raw-new)
                      std::move(argv)),
        std::memory_order_acq_rel);
    if (prev) {
        prev->write();
        delete prev;    // zcomp-lint: allow(raw-new)
    }
}

void
RunReport::finishGlobal()
{
    RunReport *r =
        globalReport.exchange(nullptr, std::memory_order_acq_rel);
    if (r) {
        r->write();
        delete r;       // zcomp-lint: allow(raw-new)
    }
}

} // namespace zcomp
