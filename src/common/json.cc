#include "common/json.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/log.hh"

namespace zcomp {

double
Json::asDouble() const
{
    switch (kind_) {
      case Kind::Int:
        return static_cast<double>(int_);
      case Kind::Uint:
        return static_cast<double>(uint_);
      case Kind::Double:
        return double_;
      default:
        return 0.0;
    }
}

int64_t
Json::asInt() const
{
    switch (kind_) {
      case Kind::Int:
        return int_;
      case Kind::Uint:
        return static_cast<int64_t>(uint_);
      case Kind::Double:
        return static_cast<int64_t>(double_);
      default:
        return 0;
    }
}

uint64_t
Json::asUint() const
{
    switch (kind_) {
      case Kind::Int:
        return static_cast<uint64_t>(int_);
      case Kind::Uint:
        return uint_;
      case Kind::Double:
        return static_cast<uint64_t>(double_);
      default:
        return 0;
    }
}

size_t
Json::size() const
{
    if (kind_ == Kind::Array)
        return array_.size();
    if (kind_ == Kind::Object)
        return object_.size();
    return 0;
}

void
Json::push(Json v)
{
    panic_if(kind_ != Kind::Null && kind_ != Kind::Array,
             "Json::push on a non-array value");
    kind_ = Kind::Array;
    array_.push_back(std::move(v));
}

Json &
Json::operator[](const std::string &key)
{
    panic_if(kind_ != Kind::Null && kind_ != Kind::Object,
             "Json::operator[] on a non-object value");
    kind_ = Kind::Object;
    for (auto &m : object_) {
        if (m.first == key)
            return m.second;
    }
    object_.emplace_back(key, Json());
    return object_.back().second;
}

const Json *
Json::find(const std::string &key) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    for (const auto &m : object_) {
        if (m.first == key)
            return &m.second;
    }
    return nullptr;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\b':
            out += "\\b";
            break;
          case '\f':
            out += "\\f";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "null";
    char buf[40];
    // Shortest form that survives a round trip.
    for (int prec = 15; prec <= 17; prec++) {
        std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
        if (std::strtod(buf, nullptr) == v)
            break;
    }
    return buf;
}

void
Json::dumpTo(std::string &out, int indent, int depth) const
{
    auto newline = [&](int d) {
        if (indent < 0)
            return;
        out += '\n';
        out.append(static_cast<size_t>(indent) *
                       static_cast<size_t>(d),
                   ' ');
    };
    switch (kind_) {
      case Kind::Null:
        out += "null";
        break;
      case Kind::Bool:
        out += bool_ ? "true" : "false";
        break;
      case Kind::Int:
        out += std::to_string(int_);
        break;
      case Kind::Uint:
        out += std::to_string(uint_);
        break;
      case Kind::Double:
        out += jsonNumber(double_);
        break;
      case Kind::String:
        out += '"';
        out += jsonEscape(string_);
        out += '"';
        break;
      case Kind::Array:
        if (array_.empty()) {
            out += "[]";
            break;
        }
        out += '[';
        for (size_t i = 0; i < array_.size(); i++) {
            if (i)
                out += ',';
            newline(depth + 1);
            array_[i].dumpTo(out, indent, depth + 1);
        }
        newline(depth);
        out += ']';
        break;
      case Kind::Object:
        if (object_.empty()) {
            out += "{}";
            break;
        }
        out += '{';
        for (size_t i = 0; i < object_.size(); i++) {
            if (i)
                out += ',';
            newline(depth + 1);
            out += '"';
            out += jsonEscape(object_[i].first);
            out += indent < 0 ? "\":" : "\": ";
            object_[i].second.dumpTo(out, indent, depth + 1);
        }
        newline(depth);
        out += '}';
        break;
    }
}

std::string
Json::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

bool
Json::operator==(const Json &o) const
{
    if (isNumber() && o.isNumber()) {
        // Exact integer comparison where both sides are integral.
        if (kind_ != Kind::Double && o.kind_ != Kind::Double) {
            bool neg_a = kind_ == Kind::Int && int_ < 0;
            bool neg_b = o.kind_ == Kind::Int && o.int_ < 0;
            if (neg_a != neg_b)
                return false;
            return asUint() == o.asUint() || asInt() == o.asInt();
        }
        return asDouble() == o.asDouble();
    }
    if (kind_ != o.kind_)
        return false;
    switch (kind_) {
      case Kind::Null:
        return true;
      case Kind::Bool:
        return bool_ == o.bool_;
      case Kind::String:
        return string_ == o.string_;
      case Kind::Array:
        if (array_.size() != o.array_.size())
            return false;
        for (size_t i = 0; i < array_.size(); i++) {
            if (array_[i] != o.array_[i])
                return false;
        }
        return true;
      case Kind::Object:
        if (object_.size() != o.object_.size())
            return false;
        for (const auto &m : object_) {
            const Json *v = o.find(m.first);
            if (!v || *v != m.second)
                return false;
        }
        return true;
      default:
        return false;   // numbers handled above
    }
}

namespace {

/** Recursive-descent JSON parser over an in-memory string. */
class Parser
{
  public:
    Parser(const std::string &text, std::string *err)
        : s_(text), err_(err)
    {}

    Json
    parseDocument()
    {
        Json v = parseValue();
        if (failed_)
            return Json();
        skipWs();
        if (pos_ != s_.size()) {
            fail("trailing garbage");
            return Json();
        }
        return v;
    }

    bool failed() const { return failed_; }

  private:
    void
    fail(const std::string &what)
    {
        if (!failed_ && err_)
            *err_ = what + " at byte " + std::to_string(pos_);
        failed_ = true;
    }

    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                s_[pos_] == '\n' || s_[pos_] == '\r'))
            pos_++;
    }

    bool
    consume(char c)
    {
        if (pos_ < s_.size() && s_[pos_] == c) {
            pos_++;
            return true;
        }
        return false;
    }

    bool
    literal(const char *word)
    {
        size_t n = std::strlen(word);
        if (s_.compare(pos_, n, word) == 0) {
            pos_ += n;
            return true;
        }
        return false;
    }

    Json
    parseValue()
    {
        if (depth_ > maxDepth_) {
            fail("nesting too deep");
            return Json();
        }
        skipWs();
        if (pos_ >= s_.size()) {
            fail("unexpected end of input");
            return Json();
        }
        char c = s_[pos_];
        if (c == '{')
            return parseObject();
        if (c == '[')
            return parseArray();
        if (c == '"')
            return parseString();
        if (literal("true"))
            return Json(true);
        if (literal("false"))
            return Json(false);
        if (literal("null"))
            return Json();
        if (c == '-' || (c >= '0' && c <= '9'))
            return parseNumber();
        fail("unexpected character");
        return Json();
    }

    Json
    parseObject()
    {
        consume('{');
        depth_++;
        Json obj = Json::object();
        skipWs();
        if (consume('}')) {
            depth_--;
            return obj;
        }
        for (;;) {
            skipWs();
            if (pos_ >= s_.size() || s_[pos_] != '"') {
                fail("expected object key");
                return Json();
            }
            Json key = parseString();
            if (failed_)
                return Json();
            skipWs();
            if (!consume(':')) {
                fail("expected ':'");
                return Json();
            }
            Json value = parseValue();
            if (failed_)
                return Json();
            obj[key.asString()] = std::move(value);
            skipWs();
            if (consume(','))
                continue;
            if (consume('}')) {
                depth_--;
                return obj;
            }
            fail("expected ',' or '}'");
            return Json();
        }
    }

    Json
    parseArray()
    {
        consume('[');
        depth_++;
        Json arr = Json::array();
        skipWs();
        if (consume(']')) {
            depth_--;
            return arr;
        }
        for (;;) {
            Json value = parseValue();
            if (failed_)
                return Json();
            arr.push(std::move(value));
            skipWs();
            if (consume(','))
                continue;
            if (consume(']')) {
                depth_--;
                return arr;
            }
            fail("expected ',' or ']'");
            return Json();
        }
    }

    int
    hex4()
    {
        if (pos_ + 4 > s_.size()) {
            fail("truncated \\u escape");
            return -1;
        }
        int v = 0;
        for (int i = 0; i < 4; i++) {
            char c = s_[pos_++];
            v <<= 4;
            if (c >= '0' && c <= '9')
                v |= c - '0';
            else if (c >= 'a' && c <= 'f')
                v |= c - 'a' + 10;
            else if (c >= 'A' && c <= 'F')
                v |= c - 'A' + 10;
            else {
                fail("bad \\u escape");
                return -1;
            }
        }
        return v;
    }

    void
    appendUtf8(std::string &out, uint32_t cp)
    {
        if (cp < 0x80) {
            out += static_cast<char>(cp);
        } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else if (cp < 0x10000) {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else {
            out += static_cast<char>(0xF0 | (cp >> 18));
            out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        }
    }

    Json
    parseString()
    {
        consume('"');
        std::string out;
        for (;;) {
            if (pos_ >= s_.size()) {
                fail("unterminated string");
                return Json();
            }
            char c = s_[pos_++];
            if (c == '"')
                return Json(std::move(out));
            if (static_cast<unsigned char>(c) < 0x20) {
                fail("raw control character in string");
                return Json();
            }
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= s_.size()) {
                fail("truncated escape");
                return Json();
            }
            char e = s_[pos_++];
            switch (e) {
              case '"':
              case '\\':
              case '/':
                out += e;
                break;
              case 'b':
                out += '\b';
                break;
              case 'f':
                out += '\f';
                break;
              case 'n':
                out += '\n';
                break;
              case 'r':
                out += '\r';
                break;
              case 't':
                out += '\t';
                break;
              case 'u': {
                int hi = hex4();
                if (hi < 0)
                    return Json();
                uint32_t cp = static_cast<uint32_t>(hi);
                if (cp >= 0xD800 && cp <= 0xDBFF) {
                    // Surrogate pair.
                    if (!literal("\\u")) {
                        fail("unpaired surrogate");
                        return Json();
                    }
                    int lo = hex4();
                    if (lo < 0)
                        return Json();
                    if (lo < 0xDC00 || lo > 0xDFFF) {
                        fail("bad low surrogate");
                        return Json();
                    }
                    cp = 0x10000 +
                         ((cp - 0xD800) << 10) +
                         (static_cast<uint32_t>(lo) - 0xDC00);
                } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
                    fail("unpaired surrogate");
                    return Json();
                }
                appendUtf8(out, cp);
                break;
              }
              default:
                fail("unknown escape");
                return Json();
            }
        }
    }

    Json
    parseNumber()
    {
        size_t start = pos_;
        bool neg = consume('-');
        // Integer part: 0 or [1-9][0-9]*.
        if (consume('0')) {
            // no leading zeros
        } else if (pos_ < s_.size() && s_[pos_] >= '1' &&
                   s_[pos_] <= '9') {
            while (pos_ < s_.size() && s_[pos_] >= '0' &&
                   s_[pos_] <= '9')
                pos_++;
        } else {
            fail("malformed number");
            return Json();
        }
        bool integral = true;
        if (consume('.')) {
            integral = false;
            if (pos_ >= s_.size() || s_[pos_] < '0' || s_[pos_] > '9') {
                fail("malformed fraction");
                return Json();
            }
            while (pos_ < s_.size() && s_[pos_] >= '0' &&
                   s_[pos_] <= '9')
                pos_++;
        }
        if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
            integral = false;
            pos_++;
            if (pos_ < s_.size() &&
                (s_[pos_] == '+' || s_[pos_] == '-'))
                pos_++;
            if (pos_ >= s_.size() || s_[pos_] < '0' || s_[pos_] > '9') {
                fail("malformed exponent");
                return Json();
            }
            while (pos_ < s_.size() && s_[pos_] >= '0' &&
                   s_[pos_] <= '9')
                pos_++;
        }
        std::string tok = s_.substr(start, pos_ - start);
        if (integral) {
            errno = 0;
            if (neg) {
                long long v = std::strtoll(tok.c_str(), nullptr, 10);
                if (errno != ERANGE)
                    return Json(static_cast<int64_t>(v));
            } else {
                unsigned long long v =
                    std::strtoull(tok.c_str(), nullptr, 10);
                if (errno != ERANGE)
                    return Json(static_cast<uint64_t>(v));
            }
        }
        return Json(std::strtod(tok.c_str(), nullptr));
    }

    static constexpr int maxDepth_ = 256;

    const std::string &s_;
    std::string *err_;
    size_t pos_ = 0;
    int depth_ = 0;
    bool failed_ = false;
};

} // namespace

Json
Json::parse(const std::string &text, std::string *err)
{
    Parser p(text, err);
    Json v = p.parseDocument();
    return p.failed() ? Json() : v;
}

} // namespace zcomp
