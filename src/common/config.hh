/**
 * @file
 * Machine and simulation configuration.
 *
 * ArchConfig defaults reproduce Table 1 of the paper:
 *   16 cores, x86 AVX512, 2.4 GHz, 4-issue
 *   L1-D/I 32 KB private 8-way LRU
 *   L2 1 MB private 16-way SRRIP, stream/stride prefetcher
 *   L3 24 MB shared 12-way SRRIP
 *   NoC 2D-mesh, XY routing, 2-cycle hop
 *   Memory 4 channels DDR4-2133, 68 GB/s total
 */

#ifndef ZCOMP_COMMON_CONFIG_HH
#define ZCOMP_COMMON_CONFIG_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hh"

namespace zcomp {

/** Cache replacement policies supported by the hierarchy. */
enum class ReplPolicy { LRU, SRRIP };

struct CacheConfig
{
    uint64_t size = 32 * KiB;
    int assoc = 8;
    int latency = 4;                    //!< hit latency in core cycles
    ReplPolicy repl = ReplPolicy::LRU;
    double bytesPerCycle = 64.0;        //!< sustained fill/access bandwidth
    bool hashIndex = false;             //!< XOR-folded set index (L3)
};

struct PrefetchConfig
{
    bool l1IpStride = true;     //!< IP-based stride prefetcher at L1
    bool l2Stream = true;       //!< stream/stride prefetcher at L2
    int l2Degree = 8;           //!< prefetches issued per trained stream hit
    int l2Distance = 32;        //!< how far ahead (in lines) streams run
    int l2StreamTableSize = 32; //!< concurrently tracked streams
};

struct DramConfig
{
    int channels = 4;
    double totalBandwidthGBps = 68.0;   //!< DDR4-2133 x4 channels
    double latencyNs = 60.0;            //!< idle round-trip latency
    uint64_t interleaveBytes = 256;     //!< channel interleave granularity
};

struct NocConfig
{
    int meshX = 4;
    int meshY = 4;
    int hopCycles = 2;
};

struct CoreConfig
{
    int issueWidth = 4;
    double freqGHz = 2.4;
    int mshrs = 10;             //!< outstanding misses per core
    int storeBuffer = 56;       //!< store buffer entries
    int loadPorts = 2;          //!< L1 loads accepted per cycle
    int storePorts = 1;         //!< L1 stores accepted per cycle
};

/** ZCOMP micro-architecture knobs (Section 3.3). */
struct ZcompConfig
{
    int logicLatency = 2;       //!< pipeline cycles for the logic component
    int logicThroughput = 1;    //!< instructions accepted per cycle
};

struct ArchConfig
{
    int numCores = 16;
    CoreConfig core;
    // The shared L3 hashes its set index (as Intel LLCs do) so that
    // power-of-two-strided parallel streams do not alias into the
    // same sets in lockstep.
    CacheConfig l1 = {32 * KiB, 8, 4, ReplPolicy::LRU, 192.0, false};
    CacheConfig l2 = {1 * MiB, 16, 14, ReplPolicy::SRRIP, 64.0, false};
    CacheConfig l3 = {24 * MiB, 12, 36, ReplPolicy::SRRIP, 32.0, true};
    PrefetchConfig prefetch;
    DramConfig dram;
    NocConfig noc;
    ZcompConfig zcomp;

    /** DRAM latency converted to core cycles. */
    int dramLatencyCycles() const;

    /** Total DRAM bytes per core cycle across all channels. */
    double dramBytesPerCycle() const;

    /** One-line summary for bench banners. */
    std::string summary() const;

    /**
     * Apply a "key=value" override (e.g. "numCores=8", "l3.size=8388608",
     * "prefetch.l2Stream=0"). Returns false for unknown keys.
     */
    bool applyOverride(const std::string &kv);

    /** Apply every "key=value" argument; fatal() on malformed input. */
    void applyOverrides(const std::vector<std::string> &args);
};

} // namespace zcomp

#endif // ZCOMP_COMMON_CONFIG_HH
