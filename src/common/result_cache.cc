#include "common/result_cache.hh"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "common/log.hh"

namespace zcomp {

namespace {

constexpr const char *cacheSchema = "zcomp-result-cache-v1";

/** Read a whole file; nullopt if it cannot be opened or read. */
std::optional<std::string>
readFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return std::nullopt;
    std::string text;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, n);
    bool ok = !std::ferror(f);
    std::fclose(f);
    if (!ok)
        return std::nullopt;
    return text;
}

} // namespace

ResultCache::ResultCache(std::string dir) : dir_(std::move(dir))
{
    fatal_if(dir_.empty(), "result cache needs a directory");
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    fatal_if(ec && !std::filesystem::is_directory(dir_),
             "cannot create result cache directory %s: %s",
             dir_.c_str(), ec.message().c_str());
}

uint64_t
ResultCache::keyHash(const std::string &key)
{
    // FNV-1a 64-bit; collisions are guarded by the full-key compare
    // in lookup(), so the hash only has to spread file names.
    uint64_t h = 14695981039346656037ULL;
    for (unsigned char c : key) {
        h ^= c;
        h *= 1099511628211ULL;
    }
    return h;
}

std::string
ResultCache::entryPath(const std::string &key) const
{
    return dir_ + "/" +
           format("%016llx.json",
                  static_cast<unsigned long long>(keyHash(key)));
}

std::optional<Json>
ResultCache::lookup(const std::string &key)
{
    auto miss = [this]() -> std::optional<Json> {
        LockGuard lk(mu_);
        misses_++;
        return std::nullopt;
    };

    std::string path = entryPath(key);
    std::optional<std::string> text = readFile(path);
    if (!text)
        return miss();

    std::string err;
    Json entry = Json::parse(*text, &err);
    if (!err.empty() || !entry.isObject()) {
        warn("result cache: corrupt entry %s (%s); re-simulating",
             path.c_str(), err.empty() ? "not an object" : err.c_str());
        return miss();
    }
    const Json *schema = entry.find("schema");
    if (!schema || !schema->isString() ||
        schema->asString() != cacheSchema) {
        warn("result cache: %s has unknown schema; re-simulating",
             path.c_str());
        return miss();
    }
    const Json *stored_key = entry.find("key");
    if (!stored_key || !stored_key->isString() ||
        stored_key->asString() != key) {
        // Hash collision or stale layout: never serve a wrong value.
        warn("result cache: key mismatch in %s; re-simulating",
             path.c_str());
        return miss();
    }
    const Json *value = entry.find("value");
    if (!value)
        return miss();

    {
        LockGuard lk(mu_);
        hits_++;
    }
    return *value;
}

void
ResultCache::store(const std::string &key, const Json &value)
{
    Json entry = Json::object();
    entry["schema"] = cacheSchema;
    entry["key"] = key;
    entry["value"] = value;
    std::string text = entry.dump(2);
    text += '\n';

    // Unique temp name per in-flight store; rename() is atomic, so a
    // SIGKILL mid-write leaves only a stray .tmp file behind and the
    // entry itself is either fully old or fully new.
    static std::atomic<uint64_t> seq{0};
    std::string path = entryPath(key);
    std::string tmp =
        path + format(".tmp.%llu",
                      static_cast<unsigned long long>(
                          seq.fetch_add(1, std::memory_order_relaxed)));
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f) {
        warn("result cache: cannot write %s: %s", tmp.c_str(),
             std::strerror(errno));
        return;
    }
    size_t wrote = std::fwrite(text.data(), 1, text.size(), f);
    bool ok = wrote == text.size() && std::fclose(f) == 0;
    if (!ok) {
        warn("result cache: short write to %s", tmp.c_str());
        std::remove(tmp.c_str());
        return;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        warn("result cache: cannot rename %s -> %s: %s", tmp.c_str(),
             path.c_str(), std::strerror(errno));
        std::remove(tmp.c_str());
        return;
    }
    LockGuard lk(mu_);
    stores_++;
}

uint64_t
ResultCache::hits() const
{
    LockGuard lk(mu_);
    return hits_;
}

uint64_t
ResultCache::misses() const
{
    LockGuard lk(mu_);
    return misses_;
}

uint64_t
ResultCache::stores() const
{
    LockGuard lk(mu_);
    return stores_;
}

} // namespace zcomp
