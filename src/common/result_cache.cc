#include "common/result_cache.hh"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include <unistd.h>

#include "common/log.hh"

namespace zcomp {

namespace {

constexpr const char *cacheSchema = "zcomp-result-cache-v1";

/**
 * Per-process store() sequence counter. Only the (pid, seq) pair has
 * to be unique, so a test pinning the counter (two processes forced
 * onto identical sequence numbers) still gets distinct temp names.
 */
std::atomic<uint64_t> &
storeSequence()
{
    static std::atomic<uint64_t> seq{0};
    return seq;
}

/** Read a whole file; nullopt if it cannot be opened or read. */
std::optional<std::string>
readFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return std::nullopt;
    std::string text;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, n);
    bool ok = !std::ferror(f);
    std::fclose(f);
    if (!ok)
        return std::nullopt;
    return text;
}

} // namespace

ResultCache::ResultCache(std::string dir) : dir_(std::move(dir))
{
    fatal_if(dir_.empty(), "result cache needs a directory");
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    fatal_if(ec && !std::filesystem::is_directory(dir_),
             "cannot create result cache directory %s: %s",
             dir_.c_str(), ec.message().c_str());
    sweepStaleTempFiles();
}

void
ResultCache::sweepStaleTempFiles()
{
    // A process killed mid-store() (SIGKILL, crash, hard timeout)
    // leaves its .tmp.<pid>.<seq> file behind forever - rename() never
    // ran. Sweep anything older than this open, minus a grace window
    // so a live writer's in-flight temp (created moments before we
    // opened, renamed moments after) is never yanked from under it.
    using namespace std::chrono_literals;
    auto cutoff = std::filesystem::file_time_type::clock::now() - 60s;
    std::error_code ec;
    size_t removed = 0;
    for (const auto &e :
         std::filesystem::directory_iterator(dir_, ec)) {
        if (!e.is_regular_file(ec))
            continue;
        std::string name = e.path().filename().string();
        if (name.find(".json.tmp.") == std::string::npos)
            continue;
        std::error_code tec;
        auto mtime = std::filesystem::last_write_time(e.path(), tec);
        if (tec || mtime >= cutoff)
            continue;
        if (std::filesystem::remove(e.path(), tec) && !tec)
            removed++;
    }
    if (removed > 0)
        inform("result cache: swept %zu stale temp file(s) from %s",
               removed, dir_.c_str());
}

std::string
ResultCache::tempPath(const std::string &entry_path, uint64_t seq)
{
    return entry_path +
           format(".tmp.%ld.%llu", static_cast<long>(getpid()),
                  static_cast<unsigned long long>(seq));
}

void
ResultCache::setNextStoreSequenceForTest(uint64_t seq)
{
    storeSequence().store(seq, std::memory_order_relaxed);
}

uint64_t
ResultCache::keyHash(const std::string &key)
{
    // FNV-1a 64-bit; collisions are guarded by the full-key compare
    // in lookup(), so the hash only has to spread file names.
    uint64_t h = 14695981039346656037ULL;
    for (unsigned char c : key) {
        h ^= c;
        h *= 1099511628211ULL;
    }
    return h;
}

std::string
ResultCache::entryPath(const std::string &key) const
{
    return dir_ + "/" +
           format("%016llx.json",
                  static_cast<unsigned long long>(keyHash(key)));
}

std::optional<Json>
ResultCache::lookup(const std::string &key)
{
    auto miss = [this]() -> std::optional<Json> {
        LockGuard lk(mu_);
        misses_++;
        return std::nullopt;
    };

    std::string path = entryPath(key);
    std::optional<std::string> text = readFile(path);
    if (!text)
        return miss();

    std::string err;
    Json entry = Json::parse(*text, &err);
    if (!err.empty() || !entry.isObject()) {
        warn("result cache: corrupt entry %s (%s); re-simulating",
             path.c_str(), err.empty() ? "not an object" : err.c_str());
        return miss();
    }
    const Json *schema = entry.find("schema");
    if (!schema || !schema->isString() ||
        schema->asString() != cacheSchema) {
        warn("result cache: %s has unknown schema; re-simulating",
             path.c_str());
        return miss();
    }
    const Json *stored_key = entry.find("key");
    if (!stored_key || !stored_key->isString() ||
        stored_key->asString() != key) {
        // Hash collision or stale layout: never serve a wrong value.
        warn("result cache: key mismatch in %s; re-simulating",
             path.c_str());
        return miss();
    }
    const Json *value = entry.find("value");
    if (!value)
        return miss();

    {
        LockGuard lk(mu_);
        hits_++;
    }
    return *value;
}

void
ResultCache::store(const std::string &key, const Json &value)
{
    Json entry = Json::object();
    entry["schema"] = cacheSchema;
    entry["key"] = key;
    entry["value"] = value;
    std::string text = entry.dump(2);
    text += '\n';

    // Unique temp name per in-flight store; rename() is atomic, so a
    // SIGKILL mid-write leaves only a stray .tmp file behind and the
    // entry itself is either fully old or fully new. The name embeds
    // the PID because the sweep supervisor points many worker
    // processes at one cache dir: a bare per-process counter would
    // let two workers collide on the same .tmp.N and corrupt each
    // other's in-flight writes.
    std::string path = entryPath(key);
    std::string tmp = tempPath(
        path, storeSequence().fetch_add(1, std::memory_order_relaxed));
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f) {
        warn("result cache: cannot write %s: %s", tmp.c_str(),
             std::strerror(errno));
        return;
    }
    size_t wrote = std::fwrite(text.data(), 1, text.size(), f);
    bool ok = wrote == text.size() && std::fclose(f) == 0;
    if (!ok) {
        warn("result cache: short write to %s", tmp.c_str());
        std::remove(tmp.c_str());
        return;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        warn("result cache: cannot rename %s -> %s: %s", tmp.c_str(),
             path.c_str(), std::strerror(errno));
        std::remove(tmp.c_str());
        return;
    }
    LockGuard lk(mu_);
    stores_++;
}

uint64_t
ResultCache::hits() const
{
    LockGuard lk(mu_);
    return hits_;
}

uint64_t
ResultCache::misses() const
{
    LockGuard lk(mu_);
    return misses_;
}

uint64_t
ResultCache::stores() const
{
    LockGuard lk(mu_);
    return stores_;
}

} // namespace zcomp
