#include "common/thread_pool.hh"

#include <atomic>
#include <cstdlib>
#include <memory>

#include "common/check.hh"
#include "common/trace_writer.hh"

namespace zcomp {

ThreadPool::ThreadPool(int jobs) : jobs_(jobs < 1 ? 1 : jobs)
{
    if (jobs_ <= 1)
        return;
    workers_.reserve(static_cast<size_t>(jobs_));
    for (int i = 0; i < jobs_; i++) {
        workers_.emplace_back([this, i] {
            TraceWriter::setThreadLabel("pool worker " +
                                        std::to_string(i));
            workerLoop();
        });
    }
}

ThreadPool::~ThreadPool()
{
    {
        LockGuard lk(mu_);
        stop_ = true;
    }
    cv_.notify_all();
    for (std::thread &t : workers_)
        t.join();
}

void
ThreadPool::enqueue(std::function<void()> fn)
{
    {
        LockGuard lk(mu_);
        // A task enqueued after shutdown began may never run: the
        // workers exit once the pre-stop queue drains, leaving the
        // task's future waiting forever. Fail loudly instead of
        // hanging the caller.
        ZCOMP_CHECK(!stop_, "task submitted to a stopped pool");
        queue_.push_back(std::move(fn));
    }
    cv_.notify_one();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> fn;
        {
            LockGuard lk(mu_);
            // Explicit predicate loop (not a lambda) so the guarded
            // reads of stop_/queue_ stay inside the analyzed scope.
            while (!stop_ && queue_.empty())
                cv_.wait(mu_);
            if (queue_.empty())
                return;     // stop_ and drained
            fn = std::move(queue_.front());
            queue_.pop_front();
        }
        // A span per dequeued task makes harness bottlenecks (e.g.
        // one slow study cell serializing the tail of a run) visible
        // on the worker's lane in the --trace timeline.
        if (TraceWriter *tw = TraceWriter::global()) {
            double t0 = tw->nowUs();
            fn();
            tw->hostSpan("pool.task", t0, tw->nowUs());
        } else {
            fn();
        }
    }
}

namespace {

/** Shared progress of one parallelFor call. */
struct ForState
{
    std::atomic<size_t> next{0};    //!< next unclaimed chunk
    std::atomic<size_t> done{0};    //!< chunks fully executed
    std::atomic<bool> aborted{false};
    size_t chunks = 0;
    size_t begin = 0;
    size_t end = 0;
    size_t grain = 1;
    Mutex mu;
    CondVar cv;
    std::exception_ptr error ZCOMP_GUARDED_BY(mu);
};

/**
 * Claim-and-run chunks until the range is exhausted. Both the caller
 * and the enqueued helpers drive this; whoever finishes the last
 * chunk wakes the caller. body is only dereferenced after a
 * successful claim - a claimed chunk pins the caller (and hence the
 * body object) in parallelFor until the chunk's done increment.
 */
void
drain(ForState &st, const std::function<void(size_t, size_t)> *body)
{
    for (;;) {
        size_t c = st.next.fetch_add(1, std::memory_order_relaxed);
        if (c >= st.chunks)
            return;
        if (!st.aborted.load(std::memory_order_relaxed)) {
            size_t b = st.begin + c * st.grain;
            size_t e = b + st.grain < st.end ? b + st.grain : st.end;
            try {
                (*body)(b, e);
            } catch (...) {
                LockGuard lk(st.mu);
                if (!st.error)
                    st.error = std::current_exception();
                st.aborted.store(true, std::memory_order_relaxed);
            }
        }
        size_t d = st.done.fetch_add(1, std::memory_order_acq_rel) + 1;
        if (d == st.chunks) {
            LockGuard lk(st.mu);
            st.cv.notify_all();
        }
    }
}

} // namespace

void
ThreadPool::parallelFor(size_t begin, size_t end, size_t grain,
                        const std::function<void(size_t, size_t)> &body)
{
    if (end <= begin)
        return;
    if (grain == 0)
        grain = 1;
    size_t n = end - begin;
    size_t chunks = (n + grain - 1) / grain;
    if (chunks == 1 || jobs_ <= 1) {
        body(begin, end);
        return;
    }

    auto st = std::make_shared<ForState>();
    st->chunks = chunks;
    st->begin = begin;
    st->end = end;
    st->grain = grain;

    // Helpers beyond the caller; extras would find nothing to claim.
    size_t helpers = static_cast<size_t>(jobs_) - 1;
    if (helpers > chunks - 1)
        helpers = chunks - 1;
    const auto *bodyp = &body;
    for (size_t h = 0; h < helpers; h++)
        enqueue([st, bodyp] { drain(*st, bodyp); });

    drain(*st, bodyp);

    LockGuard lk(st->mu);
    while (st->done.load(std::memory_order_acquire) != st->chunks)
        st->cv.wait(st->mu);
    if (st->error)
        std::rethrow_exception(st->error);
}

namespace {
Mutex globalMu;
std::unique_ptr<ThreadPool> globalPool ZCOMP_GUARDED_BY(globalMu);
} // namespace

ThreadPool &
ThreadPool::global()
{
    LockGuard lk(globalMu);
    if (!globalPool)
        globalPool = std::make_unique<ThreadPool>(defaultJobs());
    return *globalPool;
}

void
ThreadPool::setGlobalJobs(int jobs)
{
    LockGuard lk(globalMu);
    globalPool = std::make_unique<ThreadPool>(jobs);
}

int
ThreadPool::defaultJobs()
{
    if (const char *env = std::getenv("ZCOMP_JOBS")) {
        char *rest = nullptr;
        long v = std::strtol(env, &rest, 10);
        if (rest && *rest == '\0' && v > 0)
            return static_cast<int>(v);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

} // namespace zcomp
