/**
 * @file
 * Deterministic, seeded, site-based fault injection.
 *
 * A fault *site* is a named point in the simulator where a recoverable
 * failure can be provoked on purpose: an ECC event on a DRAM read, a
 * corrupted ZCOMP header, a truncated compressed stream, a transient
 * kernel fault. Sites are compiled in unconditionally but cost one
 * relaxed atomic load when no fault spec is configured, so production
 * runs are unaffected (and their output stays byte-identical).
 *
 * Configuration comes from the bench harness flag
 *
 *     --fault-spec site:prob[:seed[:max]][,site:prob...]
 *
 * where prob is the per-query injection probability in [0, 1], seed
 * overrides the per-site RNG seed, and max caps the total number of
 * injections at that site (0 = unlimited). Example:
 *
 *     --fault-spec kernel.transient:1:7:2,dram.bitflip:0.001
 *
 * injects exactly two kernel faults (so a study cell fails twice and
 * then succeeds on its third attempt) and flips a DRAM bit on ~0.1% of
 * reads.
 *
 * Determinism: each site draws from its own Rng, so the decision
 * sequence at a site depends only on (seed, query index) - never on
 * what other sites do or on wall-clock time. With --jobs 1 an entire
 * study is exactly reproducible from the spec; with parallel jobs the
 * per-site sequences are still deterministic but their interleaving
 * across cells follows the scheduling order.
 */

#ifndef ZCOMP_COMMON_FAULT_HH
#define ZCOMP_COMMON_FAULT_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <string>

#include "annotate.hh"
#include "json.hh"
#include "rng.hh"

namespace zcomp {

/** Canonical site names. Use these, not string literals, at call sites. */
namespace faultsite {

/** A bit flip (detected + corrected ECC event) on a DRAM line read. */
inline constexpr const char *DramBitflip = "dram.bitflip";
/** Corrupt a ZCOMP per-vector header before decode. */
inline constexpr const char *ZcompHeader = "zcomp.header";
/** Truncate a compressed stream mid-decode. */
inline constexpr const char *StreamTruncate = "zcomp.stream.truncate";
/** A transient fault at kernel launch (exercises study-cell retries). */
inline constexpr const char *KernelTransient = "kernel.transient";

} // namespace faultsite

class FaultInjector
{
  public:
    FaultInjector() = default;

    /** The process-wide injector all simulator components query. */
    static FaultInjector &global();

    /**
     * Parse and apply a --fault-spec string, *replacing* any earlier
     * configuration. Unknown sites, malformed entries, and
     * out-of-range probabilities are user errors and fatal(). An
     * empty spec disables injection and clears all armed sites.
     */
    void configure(const std::string &spec) ZCOMP_EXCLUDES(mutex_);

    /** True once any site is armed. Inline fast path for hot code. */
    bool enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /**
     * Deterministically decide whether the given site fires now.
     * Counts the injection when it does. Sites that were never
     * configured always answer false.
     */
    bool shouldInject(const char *site) ZCOMP_EXCLUDES(mutex_);

    /** Like shouldInject(), but throws FaultInjected when it fires. */
    void maybeInject(const char *site);

    /** Canonical form of the configured spec ("" when disabled). */
    std::string spec() const ZCOMP_EXCLUDES(mutex_);

    /** Total injections fired at one site so far. */
    uint64_t injected(const char *site) const ZCOMP_EXCLUDES(mutex_);

    /** Injections fired across all sites. */
    uint64_t totalInjected() const ZCOMP_EXCLUDES(mutex_);

    /**
     * {"spec": ..., "injected": {site: count, ...}} with only the
     * sites that actually fired, in site-name order.
     */
    Json toJson() const ZCOMP_EXCLUDES(mutex_);

    /** Drop all configuration and counts (tests). */
    void reset() ZCOMP_EXCLUDES(mutex_);

  private:
    struct Site
    {
        double prob = 0;
        uint64_t seed = 0;
        bool hasSeed = false; //!< seed given explicitly in the spec
        uint64_t maxInjections = 0;
        bool hasMax = false; //!< cap given explicitly in the spec
        uint64_t fired = 0;
        Rng rng;
    };

    /** Canonical spec string; caller holds mutex_. */
    std::string specLocked() const ZCOMP_REQUIRES(mutex_);

    // Lock contract: mutex_ guards the site table (and each Site's
    // RNG/counters inside it). enabled_ is a lock-free fast-path
    // mirror of "sites_ is non-empty", updated only while mutex_ is
    // held; readers that see it stale merely take the slow path.
    mutable Mutex mutex_;
    std::atomic<bool> enabled_{false};
    std::map<std::string, Site> sites_ ZCOMP_GUARDED_BY(mutex_);
};

/**
 * The report-facing fault section: the injector's toJson() plus the
 * global zcomp.decode_errors counter.
 */
Json faultStatsJson();

} // namespace zcomp

#endif // ZCOMP_COMMON_FAULT_HH
