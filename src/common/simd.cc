/**
 * @file
 * SIMD backend kernels. This is the ONLY translation unit in the repo
 * allowed to include immintrin.h (zcomp_lint enforces this). The rest
 * of the tree is compiled for the baseline ISA; every kernel here is
 * a non-inline function with an explicit target attribute, selected
 * at runtime via __builtin_cpu_supports.
 *
 * Bit-identity notes (each kernel mirrors a scalar reference loop):
 *  - laneHeader: laneKept() tests raw lane bits: EQZ keeps raw != 0
 *    (integer test), LTEZ keeps raw != 0 && sign-bit clear, which for
 *    an N-bit lane is exactly the signed integer compare lane > 0.
 *  - pack/unpack: exact byte moves; no lane is reinterpreted as FP.
 *  - countNonzeroF32/vecNnzF32: the scalar loops use `d[i] != 0.0f`,
 *    i.e. an IEEE unordered-quiet NEQ (-0.0f is zero, NaN is nonzero)
 *    == _CMP_NEQ_UQ.
 *  - axpyF32/dotPanel16F32: the build's baseline ISA has no FMA, so
 *    scalar code compiles to separate multiply + add; the kernels use
 *    separate _mm*_mul_ps / _mm*_add_ps in the same operand order and
 *    the same ascending accumulation order. GCC's mul/add intrinsics
 *    lower to plain vector operators, and target("avx512f") enables
 *    FMA, so this file is compiled with -ffp-contract=off (see the
 *    CMakeLists rule) to stop GCC fusing those pairs into vfmadd.
 */

#include "common/simd.hh"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "common/check.hh"
#include "common/log.hh"

#if defined(__x86_64__) || defined(__i386__)
#define ZCOMP_SIMD_X86 1
// GCC's AVX-512 intrinsics expand through _mm512_undefined_epi32(),
// which trips -Wuninitialized when optimization inlines them (GCC
// PR105593); the value is immediately overwritten by the intrinsic.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wuninitialized"
#include <immintrin.h>
#else
#define ZCOMP_SIMD_X86 0
#endif

namespace zcomp {
namespace simd {

namespace {

#if ZCOMP_SIMD_X86

// ---------------------------------------------------------------- AVX2
// Lookup tables for 32-bit-lane compress/expand emulation (AVX2 has no
// compress instruction; we permute through an index table and store
// through a lane-count mask so no byte outside the payload is touched).
struct Avx2Tables
{
    alignas(32) int32_t packIdx[256][8] {};
    alignas(32) int32_t unpackIdx[256][8] {};
    alignas(32) int32_t laneMask[256][8] {};
    alignas(32) int32_t cntMask[9][8] {};

    constexpr Avx2Tables()
    {
        for (int m = 0; m < 256; m++) {
            int out = 0;
            for (int i = 0; i < 8; i++) {
                if ((m >> i) & 1) {
                    packIdx[m][out] = i;
                    unpackIdx[m][i] = out;
                    laneMask[m][i] = -1;
                    out++;
                }
            }
        }
        for (int c = 0; c <= 8; c++)
            for (int i = 0; i < c; i++)
                cntMask[c][i] = -1;
    }
};

constexpr Avx2Tables g_avx2;

/** Spread the low 4 bits of m to bit pairs: bit i -> bits 2i, 2i+1. */
constexpr uint32_t kPairExpand[16] = {
    0x00, 0x03, 0x0c, 0x0f, 0x30, 0x33, 0x3c, 0x3f,
    0xc0, 0xc3, 0xcc, 0xcf, 0xf0, 0xf3, 0xfc, 0xff,
};

__attribute__((target("avx2")))
uint64_t
laneHeaderAvx2(const uint8_t *vec, int elemBytes, bool dropNonPositive)
{
    const __m256i zero = _mm256_setzero_si256();
    uint64_t header = 0;
    for (int h = 0; h < 2; h++) {
        const __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(vec + 32 * h));
        uint32_t bits;
        if (elemBytes == 4) {
            const __m256i cmp = dropNonPositive
                ? _mm256_cmpgt_epi32(v, zero)
                : _mm256_cmpeq_epi32(v, zero);
            bits = static_cast<uint32_t>(
                _mm256_movemask_ps(_mm256_castsi256_ps(cmp)));
            if (!dropNonPositive)
                bits = ~bits & 0xffu;
            header |= static_cast<uint64_t>(bits) << (8 * h);
        } else { // elemBytes == 8
            const __m256i cmp = dropNonPositive
                ? _mm256_cmpgt_epi64(v, zero)
                : _mm256_cmpeq_epi64(v, zero);
            bits = static_cast<uint32_t>(
                _mm256_movemask_pd(_mm256_castsi256_pd(cmp)));
            if (!dropNonPositive)
                bits = ~bits & 0xfu;
            header |= static_cast<uint64_t>(bits) << (4 * h);
        }
    }
    return header;
}

__attribute__((target("avx2")))
void
packLanes4Avx2(const uint8_t *vec, uint32_t header16, uint8_t *dst)
{
    for (int h = 0; h < 2; h++) {
        const uint32_t m = (header16 >> (8 * h)) & 0xffu;
        const int cnt = __builtin_popcount(m);
        const __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(vec + 32 * h));
        const __m256i idx = _mm256_load_si256(
            reinterpret_cast<const __m256i *>(g_avx2.packIdx[m]));
        const __m256i packed = _mm256_permutevar8x32_epi32(v, idx);
        _mm256_maskstore_epi32(
            reinterpret_cast<int *>(dst),
            _mm256_load_si256(
                reinterpret_cast<const __m256i *>(g_avx2.cntMask[cnt])),
            packed);
        dst += static_cast<size_t>(cnt) * 4;
    }
}

__attribute__((target("avx2")))
void
unpackLanes4Avx2(const uint8_t *payload, uint32_t header16, uint8_t *out)
{
    for (int h = 0; h < 2; h++) {
        const uint32_t m = (header16 >> (8 * h)) & 0xffu;
        const int cnt = __builtin_popcount(m);
        const __m256i packed = _mm256_maskload_epi32(
            reinterpret_cast<const int *>(payload),
            _mm256_load_si256(
                reinterpret_cast<const __m256i *>(g_avx2.cntMask[cnt])));
        const __m256i idx = _mm256_load_si256(
            reinterpret_cast<const __m256i *>(g_avx2.unpackIdx[m]));
        const __m256i spread = _mm256_and_si256(
            _mm256_permutevar8x32_epi32(packed, idx),
            _mm256_load_si256(
                reinterpret_cast<const __m256i *>(g_avx2.laneMask[m])));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(out + 32 * h),
                            spread);
        payload += static_cast<size_t>(cnt) * 4;
    }
}

__attribute__((target("avx2")))
size_t
countNonzeroF32Avx2(const float *d, size_t n)
{
    const __m256 zero = _mm256_setzero_ps();
    size_t nnz = 0;
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256 v = _mm256_loadu_ps(d + i);
        nnz += __builtin_popcount(static_cast<uint32_t>(
            _mm256_movemask_ps(_mm256_cmp_ps(v, zero, _CMP_NEQ_UQ))));
    }
    if (i < n) {
        const int rem = static_cast<int>(n - i);
        const __m256 v = _mm256_maskload_ps(
            d + i,
            _mm256_load_si256(
                reinterpret_cast<const __m256i *>(g_avx2.cntMask[rem])));
        // Masked-off lanes load as +0.0f and contribute no NEQ bits.
        nnz += __builtin_popcount(static_cast<uint32_t>(
            _mm256_movemask_ps(_mm256_cmp_ps(v, zero, _CMP_NEQ_UQ))));
    }
    return nnz;
}

__attribute__((target("avx2")))
void
vecNnzF32Avx2(const float *d, size_t vecs, uint16_t *out)
{
    const __m256 zero = _mm256_setzero_ps();
    for (size_t v = 0; v < vecs; v++) {
        const float *p = d + v * 16;
        const uint32_t lo = static_cast<uint32_t>(_mm256_movemask_ps(
            _mm256_cmp_ps(_mm256_loadu_ps(p), zero, _CMP_NEQ_UQ)));
        const uint32_t hi = static_cast<uint32_t>(_mm256_movemask_ps(
            _mm256_cmp_ps(_mm256_loadu_ps(p + 8), zero, _CMP_NEQ_UQ)));
        out[v] = static_cast<uint16_t>(__builtin_popcount(lo) +
                                       __builtin_popcount(hi));
    }
}

__attribute__((target("avx2")))
void
axpyF32Avx2(float av, const float *b, float *c, size_t n)
{
    const __m256 a = _mm256_set1_ps(av);
    size_t j = 0;
    for (; j + 8 <= n; j += 8) {
        const __m256 prod = _mm256_mul_ps(a, _mm256_loadu_ps(b + j));
        _mm256_storeu_ps(c + j,
                         _mm256_add_ps(_mm256_loadu_ps(c + j), prod));
    }
    if (j < n) {
        const __m256i m = _mm256_load_si256(
            reinterpret_cast<const __m256i *>(
                g_avx2.cntMask[n - j]));
        const __m256 bb = _mm256_maskload_ps(b + j, m);
        const __m256 cc = _mm256_maskload_ps(c + j, m);
        _mm256_maskstore_ps(c + j, m,
                            _mm256_add_ps(cc, _mm256_mul_ps(a, bb)));
    }
}

__attribute__((target("avx2")))
void
dotPanel16F32Avx2(const float *a, const float *bt, size_t plen,
                  float *acc)
{
    __m256 lo = _mm256_loadu_ps(acc);
    __m256 hi = _mm256_loadu_ps(acc + 8);
    for (size_t p = 0; p < plen; p++) {
        const __m256 ap = _mm256_set1_ps(a[p]);
        lo = _mm256_add_ps(lo, _mm256_mul_ps(ap,
                                             _mm256_loadu_ps(bt + p * 16)));
        hi = _mm256_add_ps(hi,
                           _mm256_mul_ps(ap,
                                         _mm256_loadu_ps(bt + p * 16 + 8)));
    }
    _mm256_storeu_ps(acc, lo);
    _mm256_storeu_ps(acc + 8, hi);
}

__attribute__((target("avx2")))
int
findTag64Avx2(const uint64_t *tags, int n, uint64_t needle)
{
    const __m256i nv = _mm256_set1_epi64x(static_cast<long long>(needle));
    int i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i t = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(tags + i));
        const uint32_t eq = static_cast<uint32_t>(_mm256_movemask_pd(
            _mm256_castsi256_pd(_mm256_cmpeq_epi64(t, nv))));
        if (eq)
            return i + __builtin_ctz(eq);
    }
    for (; i < n; i++) {
        if (tags[i] == needle)
            return i;
    }
    return -1;
}

// -------------------------------------------------------------- AVX512

#define ZCOMP_AVX512_TARGET "avx512f,avx512bw,avx512vl,avx512dq"

__attribute__((target(ZCOMP_AVX512_TARGET)))
uint64_t
laneHeaderAvx512(const uint8_t *vec, int elemBytes, bool dropNonPositive)
{
    const __m512i v = _mm512_loadu_si512(vec);
    const __m512i zero = _mm512_setzero_si512();
    switch (elemBytes) {
      case 1:
        return dropNonPositive
            ? static_cast<uint64_t>(_mm512_cmpgt_epi8_mask(v, zero))
            : static_cast<uint64_t>(_mm512_test_epi8_mask(v, v));
      case 2:
        return dropNonPositive
            ? static_cast<uint64_t>(_mm512_cmpgt_epi16_mask(v, zero))
            : static_cast<uint64_t>(_mm512_test_epi16_mask(v, v));
      case 4:
        return dropNonPositive
            ? static_cast<uint64_t>(_mm512_cmpgt_epi32_mask(v, zero))
            : static_cast<uint64_t>(_mm512_test_epi32_mask(v, v));
      default: // 8
        return dropNonPositive
            ? static_cast<uint64_t>(_mm512_cmpgt_epi64_mask(v, zero))
            : static_cast<uint64_t>(_mm512_test_epi64_mask(v, v));
    }
}

__attribute__((target(ZCOMP_AVX512_TARGET)))
void
packLanesAvx512(const uint8_t *vec, int elemBytes, uint64_t header,
                uint8_t *dst)
{
    const __m512i v = _mm512_loadu_si512(vec);
    // The compress-store memory forms write exactly popcount(mask)
    // elements, so nothing beyond the payload is touched.
    if (elemBytes == 4) {
        _mm512_mask_compressstoreu_epi32(
            dst, static_cast<__mmask16>(header), v);
    } else { // 8
        _mm512_mask_compressstoreu_epi64(
            dst, static_cast<__mmask8>(header), v);
    }
}

__attribute__((target(ZCOMP_AVX512_TARGET)))
void
unpackLanesAvx512(const uint8_t *payload, int elemBytes, uint64_t header,
                  uint8_t *out)
{
    // The expand-load memory forms read exactly popcount(mask)
    // elements; masked-off lanes are zeroed, never loaded.
    __m512i v;
    if (elemBytes == 4) {
        v = _mm512_maskz_expandloadu_epi32(
            static_cast<__mmask16>(header), payload);
    } else { // 8
        v = _mm512_maskz_expandloadu_epi64(
            static_cast<__mmask8>(header), payload);
    }
    _mm512_storeu_si512(out, v);
}

__attribute__((target(ZCOMP_AVX512_TARGET)))
size_t
countNonzeroF32Avx512(const float *d, size_t n)
{
    const __m512 zero = _mm512_setzero_ps();
    size_t nnz = 0;
    size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        nnz += __builtin_popcount(static_cast<uint32_t>(
            _mm512_cmp_ps_mask(_mm512_loadu_ps(d + i), zero,
                               _CMP_NEQ_UQ)));
    }
    if (i < n) {
        const __mmask16 m =
            static_cast<__mmask16>((1u << (n - i)) - 1u);
        const __m512 v = _mm512_maskz_loadu_ps(m, d + i);
        nnz += __builtin_popcount(static_cast<uint32_t>(
            _mm512_cmp_ps_mask(v, zero, _CMP_NEQ_UQ)));
    }
    return nnz;
}

__attribute__((target(ZCOMP_AVX512_TARGET)))
void
vecNnzF32Avx512(const float *d, size_t vecs, uint16_t *out)
{
    const __m512 zero = _mm512_setzero_ps();
    for (size_t v = 0; v < vecs; v++) {
        out[v] = static_cast<uint16_t>(
            __builtin_popcount(static_cast<uint32_t>(_mm512_cmp_ps_mask(
                _mm512_loadu_ps(d + v * 16), zero, _CMP_NEQ_UQ))));
    }
}

/** Compress the even bits of x (positions 0,2,..,30) into bits 0..15. */
inline uint32_t
compressEvenBits(uint32_t x)
{
    x &= 0x55555555u;
    x = (x | (x >> 1)) & 0x33333333u;
    x = (x | (x >> 2)) & 0x0f0f0f0fu;
    x = (x | (x >> 4)) & 0x00ff00ffu;
    x = (x | (x >> 8)) & 0x0000ffffu;
    return x;
}

__attribute__((target(ZCOMP_AVX512_TARGET)))
uint16_t
fpcBitsLineAvx512(const uint8_t *line, uint8_t *bits)
{
    const __m512i w = _mm512_loadu_si512(line);
    const __m512i zero = _mm512_setzero_si512();

    const __mmask16 zeroMask = _mm512_cmpeq_epi32_mask(w, zero);
    // fitsSignExt(w, k): value in [-2^(k-1), 2^(k-1)-1], i.e.
    // (uint32)(w + 2^(k-1)) < 2^k.
    const __mmask16 se4 = _mm512_cmplt_epu32_mask(
        _mm512_add_epi32(w, _mm512_set1_epi32(8)),
        _mm512_set1_epi32(16));
    const __mmask16 se8 = _mm512_cmplt_epu32_mask(
        _mm512_add_epi32(w, _mm512_set1_epi32(128)),
        _mm512_set1_epi32(256));
    const __mmask16 se16 = _mm512_cmplt_epu32_mask(
        _mm512_add_epi32(w, _mm512_set1_epi32(32768)),
        _mm512_set1_epi32(65536));
    const __mmask16 zpHalf = _mm512_cmpeq_epi32_mask(
        _mm512_and_si512(w, _mm512_set1_epi32(0xffff)), zero);
    // Both 16-bit halves of each word fit in a sign-extended byte.
    const uint32_t half8 = static_cast<uint32_t>(_mm512_cmplt_epu16_mask(
        _mm512_add_epi16(w, _mm512_set1_epi16(128)),
        _mm512_set1_epi16(256)));
    const __mmask16 seHalves = static_cast<__mmask16>(
        compressEvenBits(half8 & (half8 >> 1)));
    // All four bytes equal <=> word unchanged by an 8-bit rotate.
    // (Rotate spelled as shift+or: GCC's _mm512_rol_epi32 goes through
    // _mm512_undefined_epi32 and trips -Wuninitialized under -Werror.)
    const __m512i rot8 = _mm512_or_si512(_mm512_slli_epi32(w, 8),
                                         _mm512_srli_epi32(w, 24));
    const __mmask16 repeated = _mm512_cmpeq_epi32_mask(w, rot8);

    // Blend payload-bit counts lowest-priority first so the highest
    // priority class wins (priority: se4 > se8 > se16 > zpHalf >
    // seHalves > repeated > uncompressed; zero handled by the caller).
    __m512i b = _mm512_set1_epi32(32);
    b = _mm512_mask_mov_epi32(b, repeated, _mm512_set1_epi32(8));
    b = _mm512_mask_mov_epi32(b, seHalves, _mm512_set1_epi32(16));
    b = _mm512_mask_mov_epi32(b, zpHalf, _mm512_set1_epi32(16));
    b = _mm512_mask_mov_epi32(b, se16, _mm512_set1_epi32(16));
    b = _mm512_mask_mov_epi32(b, se8, _mm512_set1_epi32(8));
    b = _mm512_mask_mov_epi32(b, se4, _mm512_set1_epi32(4));
    _mm512_mask_cvtepi32_storeu_epi8(bits, 0xffff, b);
    return static_cast<uint16_t>(zeroMask);
}

__attribute__((target(ZCOMP_AVX512_TARGET)))
void
axpyF32Avx512(float av, const float *b, float *c, size_t n)
{
    const __m512 a = _mm512_set1_ps(av);
    size_t j = 0;
    for (; j + 16 <= n; j += 16) {
        const __m512 prod = _mm512_mul_ps(a, _mm512_loadu_ps(b + j));
        _mm512_storeu_ps(c + j,
                         _mm512_add_ps(_mm512_loadu_ps(c + j), prod));
    }
    if (j < n) {
        const __mmask16 m =
            static_cast<__mmask16>((1u << (n - j)) - 1u);
        const __m512 bb = _mm512_maskz_loadu_ps(m, b + j);
        const __m512 cc = _mm512_maskz_loadu_ps(m, c + j);
        _mm512_mask_storeu_ps(c + j, m,
                              _mm512_add_ps(cc, _mm512_mul_ps(a, bb)));
    }
}

__attribute__((target(ZCOMP_AVX512_TARGET)))
void
dotPanel16F32Avx512(const float *a, const float *bt, size_t plen,
                    float *acc)
{
    __m512 s = _mm512_loadu_ps(acc);
    for (size_t p = 0; p < plen; p++) {
        s = _mm512_add_ps(
            s, _mm512_mul_ps(_mm512_set1_ps(a[p]),
                             _mm512_loadu_ps(bt + p * 16)));
    }
    _mm512_storeu_ps(acc, s);
}

__attribute__((target(ZCOMP_AVX512_TARGET)))
int
findTag64Avx512(const uint64_t *tags, int n, uint64_t needle)
{
    const __m512i nv = _mm512_set1_epi64(static_cast<long long>(needle));
    int i = 0;
    for (; i + 8 <= n; i += 8) {
        const __mmask8 eq = _mm512_cmpeq_epu64_mask(
            _mm512_loadu_si512(tags + i), nv);
        if (eq)
            return i + __builtin_ctz(static_cast<uint32_t>(eq));
    }
    if (i < n) {
        const __mmask8 m =
            static_cast<__mmask8>((1u << (n - i)) - 1u);
        const __mmask8 eq = _mm512_mask_cmpeq_epu64_mask(
            m, _mm512_maskz_loadu_epi64(m, tags + i), nv);
        if (eq)
            return i + __builtin_ctz(static_cast<uint32_t>(eq));
    }
    return -1;
}

#endif // ZCOMP_SIMD_X86

std::atomic<int> g_backend{-1};

Backend
resolveBackend()
{
    const char *env = std::getenv("ZCOMP_SIMD");
    if (!env || !*env)
        return bestSupportedBackend();
    Backend req;
    if (!parseBackend(env, req)) {
        warn("ZCOMP_SIMD=%s not recognized (want off|scalar|avx2|"
             "avx512|auto); using auto",
             env);
        return bestSupportedBackend();
    }
    if (!backendSupported(req)) {
        warn("ZCOMP_SIMD=%s unsupported on this host; using %s", env,
             backendName(bestSupportedBackend()));
        return bestSupportedBackend();
    }
    return req;
}

/**
 * First-use trampoline for the findTag64 hot pointer: resolve the
 * backend (installing the real kernel pointer or null-for-scalar),
 * then answer this one probe with the scalar loop — identical result,
 * and every later call goes straight to the installed target.
 */
int
findTag64Resolve(const uint64_t *tags, int n, uint64_t needle)
{
    activeBackend();
    detail::FindTag64Fn fn =
        detail::findTag64Fn.load(std::memory_order_relaxed);
    ZCOMP_DCHECK(fn != findTag64Resolve,
                 "findTag64 trampoline failed to re-point itself");
    if (fn)
        return fn(tags, n, needle);
    for (int w = 0; w < n; w++) {
        if (tags[w] == needle)
            return w;
    }
    return -1;
}

/** Keep the findTag64 hot pointer in sync with the backend. */
void
syncFindTag64(Backend b)
{
    detail::FindTag64Fn fn = nullptr;
#if ZCOMP_SIMD_X86
    if (b == Backend::Avx512)
        fn = findTag64Avx512;
    else if (b == Backend::Avx2)
        fn = findTag64Avx2;
#else
    (void)b;
#endif
    detail::findTag64Fn.store(fn, std::memory_order_relaxed);
}

} // namespace

namespace detail {
std::atomic<FindTag64Fn> findTag64Fn{findTag64Resolve};
} // namespace detail

const char *
backendName(Backend b)
{
    switch (b) {
      case Backend::Scalar: return "scalar";
      case Backend::Avx2: return "avx2";
      case Backend::Avx512: return "avx512";
    }
    return "?";
}

bool
backendSupported(Backend b)
{
    switch (b) {
      case Backend::Scalar:
        return true;
      case Backend::Avx2:
#if ZCOMP_SIMD_X86
        return __builtin_cpu_supports("avx2");
#else
        return false;
#endif
      case Backend::Avx512:
#if ZCOMP_SIMD_X86
        return __builtin_cpu_supports("avx512f") &&
               __builtin_cpu_supports("avx512bw") &&
               __builtin_cpu_supports("avx512vl") &&
               __builtin_cpu_supports("avx512dq");
#else
        return false;
#endif
    }
    return false;
}

Backend
bestSupportedBackend()
{
    if (backendSupported(Backend::Avx512))
        return Backend::Avx512;
    if (backendSupported(Backend::Avx2))
        return Backend::Avx2;
    return Backend::Scalar;
}

Backend
activeBackend()
{
    int b = g_backend.load(std::memory_order_relaxed);
    if (b < 0) {
        int resolved = static_cast<int>(resolveBackend());
        int expected = -1;
        g_backend.compare_exchange_strong(expected, resolved);
        b = g_backend.load(std::memory_order_relaxed);
        syncFindTag64(static_cast<Backend>(b));
    }
    return static_cast<Backend>(b);
}

void
setBackend(Backend b)
{
    ZCOMP_CHECK(backendSupported(b),
                "SIMD backend %s not supported on this host",
                backendName(b));
    g_backend.store(static_cast<int>(b), std::memory_order_relaxed);
    syncFindTag64(b);
}

bool
parseBackend(const char *name, Backend &out)
{
    if (!name)
        return false;
    const auto is = [name](const char *s) {
        return std::strcmp(name, s) == 0;
    };
    if (is("off") || is("scalar") || is("0")) {
        out = Backend::Scalar;
        return true;
    }
    if (is("avx2")) {
        out = Backend::Avx2;
        return true;
    }
    if (is("avx512")) {
        out = Backend::Avx512;
        return true;
    }
    if (is("auto") || is("on") || is("1")) {
        out = bestSupportedBackend();
        return true;
    }
    return false;
}


bool
laneHeader(const uint8_t *vec, int elemBytes, bool dropNonPositive,
           uint64_t &header)
{
#if ZCOMP_SIMD_X86
    switch (activeBackend()) {
      case Backend::Avx512:
        header = laneHeaderAvx512(vec, elemBytes, dropNonPositive);
        return true;
      case Backend::Avx2:
        if (elemBytes == 4 || elemBytes == 8) {
            header = laneHeaderAvx2(vec, elemBytes, dropNonPositive);
            return true;
        }
        break;
      default:
        break;
    }
#else
    (void)vec; (void)elemBytes; (void)dropNonPositive; (void)header;
#endif
    return false;
}

bool
packLanes(const uint8_t *vec, int elemBytes, uint64_t header,
          uint8_t *dst)
{
#if ZCOMP_SIMD_X86
    switch (activeBackend()) {
      case Backend::Avx512:
        // 1- and 2-byte lanes need VBMI2 compress, which we do not
        // require; those widths stay on the scalar reference.
        if (elemBytes == 4 || elemBytes == 8) {
            packLanesAvx512(vec, elemBytes, header, dst);
            return true;
        }
        break;
      case Backend::Avx2:
        if (elemBytes == 4) {
            packLanes4Avx2(vec, static_cast<uint32_t>(header), dst);
            return true;
        }
        if (elemBytes == 8) {
            // Treat each 64-bit lane as an aligned pair of 32-bit
            // lanes; the pair-expanded header selects both halves.
            const uint32_t m =
                kPairExpand[header & 0xf] |
                (kPairExpand[(header >> 4) & 0xf] << 8);
            packLanes4Avx2(vec, m, dst);
            return true;
        }
        break;
      default:
        break;
    }
#else
    (void)vec; (void)elemBytes; (void)header; (void)dst;
#endif
    return false;
}

bool
unpackLanes(const uint8_t *payload, int elemBytes, uint64_t header,
            uint8_t *out)
{
#if ZCOMP_SIMD_X86
    switch (activeBackend()) {
      case Backend::Avx512:
        if (elemBytes == 4 || elemBytes == 8) {
            unpackLanesAvx512(payload, elemBytes, header, out);
            return true;
        }
        break;
      case Backend::Avx2:
        if (elemBytes == 4) {
            unpackLanes4Avx2(payload, static_cast<uint32_t>(header),
                             out);
            return true;
        }
        if (elemBytes == 8) {
            const uint32_t m =
                kPairExpand[header & 0xf] |
                (kPairExpand[(header >> 4) & 0xf] << 8);
            unpackLanes4Avx2(payload, m, out);
            return true;
        }
        break;
      default:
        break;
    }
#else
    (void)payload; (void)elemBytes; (void)header; (void)out;
#endif
    return false;
}

bool
countNonzeroF32(const float *d, size_t n, size_t &nnz)
{
#if ZCOMP_SIMD_X86
    switch (activeBackend()) {
      case Backend::Avx512:
        nnz += countNonzeroF32Avx512(d, n);
        return true;
      case Backend::Avx2:
        nnz += countNonzeroF32Avx2(d, n);
        return true;
      default:
        break;
    }
#else
    (void)d; (void)n; (void)nnz;
#endif
    return false;
}

bool
vecNnzF32(const float *d, size_t vecs, uint16_t *out)
{
#if ZCOMP_SIMD_X86
    switch (activeBackend()) {
      case Backend::Avx512:
        vecNnzF32Avx512(d, vecs, out);
        return true;
      case Backend::Avx2:
        vecNnzF32Avx2(d, vecs, out);
        return true;
      default:
        break;
    }
#else
    (void)d; (void)vecs; (void)out;
#endif
    return false;
}

bool
fpcBitsLine(const uint8_t *line, uint8_t *bits, uint16_t &zeroMask)
{
#if ZCOMP_SIMD_X86
    if (activeBackend() == Backend::Avx512) {
        zeroMask = fpcBitsLineAvx512(line, bits);
        return true;
    }
#else
    (void)line; (void)bits; (void)zeroMask;
#endif
    return false;
}

bool
axpyF32(float av, const float *b, float *c, size_t n)
{
#if ZCOMP_SIMD_X86
    switch (activeBackend()) {
      case Backend::Avx512:
        axpyF32Avx512(av, b, c, n);
        return true;
      case Backend::Avx2:
        axpyF32Avx2(av, b, c, n);
        return true;
      default:
        break;
    }
#else
    (void)av; (void)b; (void)c; (void)n;
#endif
    return false;
}

bool
dotPanel16F32(const float *a, const float *bt, size_t plen, float *acc)
{
#if ZCOMP_SIMD_X86
    switch (activeBackend()) {
      case Backend::Avx512:
        dotPanel16F32Avx512(a, bt, plen, acc);
        return true;
      case Backend::Avx2:
        dotPanel16F32Avx2(a, bt, plen, acc);
        return true;
      default:
        break;
    }
#else
    (void)a; (void)bt; (void)plen; (void)acc;
#endif
    return false;
}

} // namespace simd
} // namespace zcomp

#if ZCOMP_SIMD_X86
#pragma GCC diagnostic pop
#endif
