#include "common/subprocess.hh"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/log.hh"

extern char **environ;

namespace zcomp {

namespace {

/** A pipe pair with close-on-exec set on both ends. */
struct Pipe {
    int rd = -1;
    int wr = -1;
};

Pipe
makePipe()
{
    int fds[2];
    fatal_if(pipe2(fds, O_CLOEXEC) != 0, "pipe2 failed: %s",
             std::strerror(errno));
    return Pipe{fds[0], fds[1]};
}

void
setNonBlocking(int fd)
{
    int flags = fcntl(fd, F_GETFL, 0);
    fatal_if(flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0,
             "fcntl(O_NONBLOCK) failed: %s", std::strerror(errno));
}

} // namespace

std::string
ExitStatus::signalName(int sig)
{
    switch (sig) {
      case SIGHUP: return "SIGHUP";
      case SIGINT: return "SIGINT";
      case SIGQUIT: return "SIGQUIT";
      case SIGILL: return "SIGILL";
      case SIGTRAP: return "SIGTRAP";
      case SIGABRT: return "SIGABRT";
      case SIGBUS: return "SIGBUS";
      case SIGFPE: return "SIGFPE";
      case SIGKILL: return "SIGKILL";
      case SIGUSR1: return "SIGUSR1";
      case SIGSEGV: return "SIGSEGV";
      case SIGUSR2: return "SIGUSR2";
      case SIGPIPE: return "SIGPIPE";
      case SIGALRM: return "SIGALRM";
      case SIGTERM: return "SIGTERM";
      case SIGXCPU: return "SIGXCPU";
      case SIGXFSZ: return "SIGXFSZ";
      default: return format("SIG%d", sig);
    }
}

ExitStatus
ExitStatus::fromWaitStatus(int wstatus)
{
    ExitStatus st;
    if (WIFEXITED(wstatus)) {
        st.kind = Exited;
        st.code = WEXITSTATUS(wstatus);
    } else if (WIFSIGNALED(wstatus)) {
        st.kind = Signaled;
        st.sig = WTERMSIG(wstatus);
    }
    return st;
}

std::string
ExitStatus::describe() const
{
    switch (kind) {
      case Running:
        return "running";
      case Exited:
        return format("exit %d", code);
      case Signaled:
        return format("signal %d (%s)", sig, signalName(sig).c_str());
    }
    return "unknown";
}

bool
LineReader::poll(std::vector<std::string> &out)
{
    if (eof_)
        return false;
    char buf[4096];
    for (;;) {
        ssize_t n = read(fd_, buf, sizeof(buf));
        if (n > 0) {
            partial_.append(buf, static_cast<size_t>(n));
            size_t start = 0, nl;
            while ((nl = partial_.find('\n', start)) !=
                   std::string::npos) {
                out.push_back(partial_.substr(start, nl - start));
                start = nl + 1;
            }
            partial_.erase(0, start);
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            return true;
        // EOF (n == 0) or unrecoverable error: flush any trailing
        // unterminated line so a crash mid-write still surfaces what
        // the child managed to say.
        eof_ = true;
        if (!partial_.empty()) {
            out.push_back(partial_);
            partial_.clear();
        }
        return false;
    }
}

Subprocess::Subprocess(const Options &opt)
{
    fatal_if(opt.argv.empty(), "subprocess needs an argv");

    Pipe out = makePipe();
    Pipe err = makePipe();

    // Materialize argv/envp *before* forking: between fork and exec
    // only async-signal-safe calls are allowed (the parent may hold
    // malloc locks), so the child must not allocate.
    std::vector<char *> argv;
    argv.reserve(opt.argv.size() + 1);
    for (const std::string &a : opt.argv)
        argv.push_back(const_cast<char *>(a.c_str()));
    argv.push_back(nullptr);

    std::vector<std::string> env_storage;
    std::vector<char *> envp;
    for (char **e = environ; e && *e; e++)
        envp.push_back(*e);
    for (const auto &[k, v] : opt.extraEnv) {
        env_storage.push_back(k + "=" + v);
        envp.push_back(const_cast<char *>(env_storage.back().c_str()));
    }
    envp.push_back(nullptr);

    pid_t pid = fork();
    fatal_if(pid < 0, "fork failed: %s", std::strerror(errno));

    if (pid == 0) {
        // Child. dup2 clears O_CLOEXEC on the target fd, so exactly
        // stdin/stdout/stderr survive the exec.
        while (dup2(out.wr, STDOUT_FILENO) < 0 && errno == EINTR) {}
        while (dup2(err.wr, STDERR_FILENO) < 0 && errno == EINTR) {}
        execve(argv[0], argv.data(), envp.data());
        // Exec failed; stderr already points at the parent's pipe.
        const char msg[] = "subprocess: exec failed\n";
        ssize_t ignored = write(STDERR_FILENO, msg, sizeof(msg) - 1);
        (void)ignored;
        _exit(127);
    }

    // Parent.
    close(out.wr);
    close(err.wr);
    setNonBlocking(out.rd);
    setNonBlocking(err.rd);
    pid_ = pid;
    stdout_fd_ = out.rd;
    stderr_fd_ = err.rd;
}

Subprocess::~Subprocess()
{
    if (status_.running() && pid_ > 0)
        kill();
    if (stdout_fd_ >= 0)
        close(stdout_fd_);
    if (stderr_fd_ >= 0)
        close(stderr_fd_);
}

bool
Subprocess::poll()
{
    if (!status_.running())
        return true;
    int wstatus = 0;
    pid_t got = waitpid(pid_, &wstatus, WNOHANG);
    if (got == 0)
        return false;
    if (got < 0) {
        // ECHILD etc. - nothing left to reap; treat as an abnormal
        // exit so the supervisor never spins on a ghost.
        warn("waitpid(%ld) failed: %s", static_cast<long>(pid_),
             std::strerror(errno));
        status_.kind = ExitStatus::Exited;
        status_.code = 127;
        return true;
    }
    ExitStatus st = ExitStatus::fromWaitStatus(wstatus);
    if (st.running())
        return false; // stopped/continued; keep waiting
    status_ = st;
    return true;
}

void
Subprocess::terminate(int grace_millis)
{
    using Clock = std::chrono::steady_clock;
    if (!status_.running())
        return;
    if (grace_millis > 0) {
        ::kill(pid_, SIGTERM);
        Clock::time_point deadline =
            Clock::now() + std::chrono::milliseconds(grace_millis);
        while (Clock::now() < deadline) {
            if (poll())
                return;
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
    }
    ::kill(pid_, SIGKILL);
    // SIGKILL cannot be caught; the blocking reap terminates.
    int wstatus = 0;
    pid_t got;
    do {
        got = waitpid(pid_, &wstatus, 0);
    } while (got < 0 && errno == EINTR);
    if (got == pid_)
        status_ = ExitStatus::fromWaitStatus(wstatus);
    else if (status_.running()) {
        status_.kind = ExitStatus::Signaled;
        status_.sig = SIGKILL;
    }
}

void
Subprocess::kill()
{
    terminate(0);
}

} // namespace zcomp
