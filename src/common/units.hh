/**
 * @file
 * Unit constants and basic typedefs shared across the simulator.
 */

#ifndef ZCOMP_COMMON_UNITS_HH
#define ZCOMP_COMMON_UNITS_HH

#include <cstdint>

namespace zcomp {

/** Simulated byte address in the synthetic virtual address space. */
using Addr = uint64_t;

/** Simulated core clock cycle count. */
using Cycle = uint64_t;

constexpr uint64_t KiB = 1024;
constexpr uint64_t MiB = 1024 * KiB;
constexpr uint64_t GiB = 1024 * MiB;

/** Cache line size used throughout the hierarchy. */
constexpr uint64_t lineBytes = 64;

} // namespace zcomp

#endif // ZCOMP_COMMON_UNITS_HH
