/**
 * @file
 * MemoryHierarchy - the full Table 1 memory system: per-core L1-D and
 * L2 caches, a shared sliced inclusive L3 with a presence directory,
 * stream (L2) and IP-stride (L1) prefetchers, a 2D-mesh NoC, and the
 * multi-channel DRAM model.
 *
 * Inclusion policy: L2 is inclusive of L1 (an L2 eviction
 * back-invalidates the core's L1), and the shared L3 is inclusive of
 * all private caches (an L3 eviction back-invalidates every core whose
 * presence bit is set). Writes allocate and dirty the L1 line; dirty
 * data migrates down on eviction.
 *
 * Traffic accounting per link (bytes):
 *   core<->L1 : exact requested bytes of each load/store (this is the
 *               quantity Figure 12a reports - compressed accesses move
 *               fewer bytes between core and caches)
 *   L1<->L2, L2<->L3, L3<->DRAM : whole-line fills and writebacks.
 */

#ifndef ZCOMP_MEM_HIERARCHY_HH
#define ZCOMP_MEM_HIERARCHY_HH

#include <memory>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"
#include "mem/noc.hh"
#include "mem/prefetcher.hh"

namespace zcomp {

/** Result of one core-issued memory access. */
struct AccessResult
{
    double latency = 0;     //!< cycles until data available
    int level = 1;          //!< deepest level consulted (1..3, 4=DRAM)
};

/** Snapshot of all hierarchy counters for reporting. */
struct HierSnapshot
{
    uint64_t coreL1Bytes = 0;
    uint64_t l1L2Bytes = 0;
    uint64_t l2L3Bytes = 0;
    uint64_t l3DramBytes = 0;

    uint64_t l1Hits = 0, l1Misses = 0;
    uint64_t l2Hits = 0, l2Misses = 0;
    uint64_t l3Hits = 0, l3Misses = 0;

    uint64_t l2PrefIssued = 0;
    uint64_t l2PrefUseful = 0;
    uint64_t l2PrefUnused = 0;
    uint64_t l2DemandMissesBelow = 0;   //!< demand L2 misses (coverage)

    uint64_t nocHops = 0;   //!< mesh hops traversed (demand + prefetch)

    /** Bytes crossing every on-chip link (core-L1 + L1-L2 + L2-L3). */
    uint64_t onChipBytes() const
    {
        return coreL1Bytes + l1L2Bytes + l2L3Bytes;
    }

    /** Total bytes across all links including DRAM. */
    uint64_t totalBytes() const { return onChipBytes() + l3DramBytes; }

    /** Prefetch accuracy: useful / issued. */
    double prefetchAccuracy() const;

    /** Prefetch coverage: useful / (useful + uncovered demand misses). */
    double prefetchCoverage() const;
};

class MemoryHierarchy
{
  public:
    explicit MemoryHierarchy(const ArchConfig &cfg);

    /**
     * Issue one access from a core.
     * @param core  requesting core id
     * @param addr  simulated virtual byte address
     * @param bytes access size (may span lines; may be < a line)
     * @param is_write store (true) or load (false)
     * @param now   core-cycle timestamp of the request
     * @param pc    pseudo instruction pointer (for the L1 prefetcher)
     */
    AccessResult access(int core, Addr addr, uint32_t bytes,
                        bool is_write, double now, uint32_t pc);

    /** Current counter snapshot. */
    HierSnapshot snapshot() const;

    /**
     * Verify the cross-level accounting identities (always-on checks;
     * aborts on violation). Conservation laws enforced:
     *  - L2 accesses  == L1 demand misses + L1 dirty writebacks
     *  - L2 misses    == demand misses counted below L2
     *  - L3 accesses  == L2 demand misses + prefetch fills
     *                    + L2 writeback probes
     *  - DRAM bytes   == bytes accounted on the L3<->DRAM link
     * plus structural sanity (line-granular link counters, even NoC
     * hop totals, per-cache prefetch/writeback bounds, occupancy
     * within capacity). Called from snapshot(), so every stats dump
     * re-validates the run; tests may call it directly.
     */
    void checkInvariants() const;

    /** Populate a gem5-style stats report under the given group. */
    void dumpStats(StatGroup &group) const;

    /** Clear counters but keep cache contents (post-warmup). */
    void resetStats();

    /** Drop all cache contents and counters. */
    void resetAll();

    const ArchConfig &config() const { return cfg_; }
    const Dram &dram() const { return dram_; }

  private:
    /** Serve one line; returns {latency, level}. */
    AccessResult accessLine(int core, Addr line, bool is_write,
                            double now, uint32_t pc);

    /** Fetch a line into L3 (+directory) from DRAM if absent. */
    double fillL3(int core, Addr line, double now, bool count_hit);

    /** Handle an L3 victim: back-invalidate and write back. */
    void evictFromL3(const CacheVictim &victim, double now);

    /** Insert into a core's L2, handling inclusion of L1. */
    void insertL2(int core, Addr line, bool prefetch, double now,
                  double ready_at = 0.0);

    /** Insert into a core's L1. */
    void insertL1(int core, Addr line, bool dirty);

    /** Run the L2 stream prefetcher for a demand access. */
    void runL2Prefetch(int core, Addr line, double now);

    /** Run the L1 IP-stride prefetcher. */
    void runL1Prefetch(int core, Addr line, uint32_t pc, double now);

    ArchConfig cfg_;
    std::vector<std::unique_ptr<Cache>> l1_;
    std::vector<std::unique_ptr<Cache>> l2_;
    std::unique_ptr<Cache> l3_;
    std::vector<StreamPrefetcher> l2Pref_;
    std::vector<IpStridePrefetcher> l1Pref_;
    Mesh2D noc_;
    Dram dram_;

    // Bandwidth servers (busy-until, in cycles).
    std::vector<double> l1Busy_;
    std::vector<double> l2Busy_;
    std::vector<double> l3SliceBusy_;

    // Link traffic counters (bytes).
    uint64_t coreL1Bytes_ = 0;
    uint64_t l1L2Bytes_ = 0;
    uint64_t l2L3Bytes_ = 0;
    uint64_t l3DramBytes_ = 0;
    uint64_t l2DemandMissesBelow_ = 0;
    uint64_t l2PrefFilled_ = 0;     //!< prefetch fills actually performed
    uint64_t l3WbProbes_ = 0;       //!< L2 writebacks probing the L3
    uint64_t nocHops_ = 0;          //!< round-trip mesh hops traversed

    /**
     * Drop DRAM-bound prefetches once a channel queue exceeds this.
     * Healthy bandwidth-bound streaming keeps the queues a few
     * hundred cycles deep; the cap only breaks the runaway feedback
     * where unthrottled fills outpace the channels indefinitely.
     */
    static constexpr double prefetchBacklogCap_ = 3000.0;

    std::vector<Addr> prefetchScratch_;
};

} // namespace zcomp

#endif // ZCOMP_MEM_HIERARCHY_HH
