#include "mem/vspace.hh"

#include <cstring>

#include "common/arena.hh"
#include "common/bitops.hh"
#include "common/log.hh"

namespace zcomp {

const char *
allocClassName(AllocClass c)
{
    switch (c) {
      case AllocClass::Input:
        return "inputs";
      case AllocClass::Weight:
        return "weights";
      case AllocClass::FeatureMap:
        return "feature-maps";
      case AllocClass::GradientMap:
        return "gradient-maps";
      case AllocClass::Scratch:
        return "scratch";
      case AllocClass::Other:
        return "other";
    }
    return "?";
}

VSpace::VSpace(Addr base, bool allocate_host, BumpArena *arena)
    : next_(alignUp(base, 4 * KiB)), allocateHost_(allocate_host),
      arena_(allocate_host ? arena : nullptr)
{
}

Buffer &
VSpace::alloc(const std::string &name, size_t bytes, AllocClass cls)
{
    fatal_if(bytes == 0, "zero-size allocation '%s'", name.c_str());
    auto buf = std::make_unique<Buffer>();
    buf->name = name;
    buf->cls = cls;
    buf->base = next_;
    buf->size = bytes;
    if (arena_) {
        // Arena blocks come back zero-filled already.
        buf->host = arena_->alloc(bytes);
    } else if (allocateHost_) {
        backing_.push_back(std::make_unique<uint8_t[]>(bytes));
        buf->host = backing_.back().get();
        std::memset(buf->host, 0, bytes);
    }

    // Leave a 4 KiB guard gap between regions so off-by-one simulated
    // accesses never silently alias a neighbor.
    next_ = alignUp(next_ + bytes + 4 * KiB, 4 * KiB);
    classBytes_[static_cast<int>(cls)] += bytes;

    buffers_.push_back(std::move(buf));
    return *buffers_.back();
}

void
VSpace::releaseHost(Buffer &buf)
{
    if (arena_) {
        // Arena memory is reclaimed wholesale at the owner's reset();
        // detaching the pointer preserves the "host is gone" contract.
        buf.host = nullptr;
        return;
    }
    for (auto &b : backing_) {
        if (b.get() == buf.host) {
            b.reset();
            buf.host = nullptr;
            return;
        }
    }
}

uint64_t
VSpace::bytesInClass(AllocClass cls) const
{
    return classBytes_[static_cast<int>(cls)];
}

uint64_t
VSpace::totalBytes() const
{
    uint64_t total = 0;
    for (auto b : classBytes_)
        total += b;
    return total;
}

} // namespace zcomp
