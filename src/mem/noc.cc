#include "mem/noc.hh"

#include <cstdlib>

namespace zcomp {

Mesh2D::Mesh2D(const NocConfig &cfg) : cfg_(cfg)
{
}

int
Mesh2D::hops(int tile_a, int tile_b) const
{
    int ax = tile_a % cfg_.meshX;
    int ay = tile_a / cfg_.meshX;
    int bx = tile_b % cfg_.meshX;
    int by = tile_b / cfg_.meshX;
    return std::abs(ax - bx) + std::abs(ay - by);
}

int
Mesh2D::latency(int tile_a, int tile_b) const
{
    return hops(tile_a, tile_b) * cfg_.hopCycles;
}

int
Mesh2D::roundTrip(int tile_a, int tile_b) const
{
    return 2 * latency(tile_a, tile_b);
}

int
Mesh2D::sliceOf(Addr line) const
{
    return static_cast<int>((line / lineBytes) %
                            static_cast<uint64_t>(numTiles()));
}

} // namespace zcomp
