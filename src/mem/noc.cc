#include "mem/noc.hh"

#include <cstdlib>

#include "common/check.hh"

namespace zcomp {

Mesh2D::Mesh2D(const NocConfig &cfg) : cfg_(cfg)
{
    ZCOMP_CHECK(cfg.meshX > 0 && cfg.meshY > 0 && cfg.hopCycles >= 0,
                "degenerate mesh config %dx%d", cfg.meshX, cfg.meshY);
}

int
Mesh2D::hops(int tile_a, int tile_b) const
{
    ZCOMP_DCHECK(tile_a >= 0 && tile_a < numTiles() && tile_b >= 0 &&
                     tile_b < numTiles(),
                 "tiles (%d, %d) outside the %dx%d mesh", tile_a,
                 tile_b, cfg_.meshX, cfg_.meshY);
    int ax = tile_a % cfg_.meshX;
    int ay = tile_a / cfg_.meshX;
    int bx = tile_b % cfg_.meshX;
    int by = tile_b / cfg_.meshX;
    int h = std::abs(ax - bx) + std::abs(ay - by);
    // XY-routing hop count: symmetric, zero only on the same tile,
    // and bounded by the mesh diameter.
    ZCOMP_DCHECK(h <= (cfg_.meshX - 1) + (cfg_.meshY - 1),
                 "hop count %d exceeds the mesh diameter", h);
    ZCOMP_DCHECK((h == 0) == (tile_a == tile_b),
                 "zero hops between distinct tiles");
    return h;
}

int
Mesh2D::latency(int tile_a, int tile_b) const
{
    return hops(tile_a, tile_b) * cfg_.hopCycles;
}

int
Mesh2D::roundTrip(int tile_a, int tile_b) const
{
    return 2 * latency(tile_a, tile_b);
}

int
Mesh2D::sliceOf(Addr line) const
{
    return static_cast<int>((line / lineBytes) %
                            static_cast<uint64_t>(numTiles()));
}

} // namespace zcomp
