#include "mem/replacement.hh"

#include "common/log.hh"

namespace zcomp {

std::unique_ptr<ReplacementPolicy>
ReplacementPolicy::create(ReplPolicy p, int num_sets, int assoc)
{
    switch (p) {
      case ReplPolicy::LRU:
        return std::make_unique<LruPolicy>(num_sets, assoc);
      case ReplPolicy::SRRIP:
        return std::make_unique<SrripPolicy>(num_sets, assoc);
    }
    panic("unknown replacement policy");
}

LruPolicy::LruPolicy(int num_sets, int assoc)
    : assoc_(assoc),
      stamp_(static_cast<size_t>(num_sets) * assoc, 0)
{
}

void
LruPolicy::onInsert(int set, int way)
{
    stamp_[static_cast<size_t>(set) * assoc_ + way] = ++clock_;
}

void
LruPolicy::onHit(int set, int way)
{
    stamp_[static_cast<size_t>(set) * assoc_ + way] = ++clock_;
}

int
LruPolicy::victim(int set)
{
    size_t base = static_cast<size_t>(set) * assoc_;
    int v = 0;
    uint64_t oldest = stamp_[base];
    for (int w = 1; w < assoc_; w++) {
        if (stamp_[base + w] < oldest) {
            oldest = stamp_[base + w];
            v = w;
        }
    }
    return v;
}

SrripPolicy::SrripPolicy(int num_sets, int assoc)
    : assoc_(assoc),
      rrpv_(static_cast<size_t>(num_sets) * assoc, maxRrpv)
{
}

void
SrripPolicy::onInsert(int set, int way)
{
    rrpv_[static_cast<size_t>(set) * assoc_ + way] = insertRrpv;
}

void
SrripPolicy::onHit(int set, int way)
{
    rrpv_[static_cast<size_t>(set) * assoc_ + way] = 0;
}

int
SrripPolicy::victim(int set)
{
    size_t base = static_cast<size_t>(set) * assoc_;
    while (true) {
        for (int w = 0; w < assoc_; w++) {
            if (rrpv_[base + w] >= maxRrpv)
                return w;
        }
        for (int w = 0; w < assoc_; w++)
            rrpv_[base + w]++;
    }
}

} // namespace zcomp
