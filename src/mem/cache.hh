/**
 * @file
 * A set-associative, write-back, write-allocate cache model with
 * pluggable replacement (LRU/SRRIP), prefetch-fill tracking, and an
 * optional per-line presence directory (used by the inclusive shared
 * L3 to back-invalidate private caches).
 *
 * The cache stores only tags and state - data always lives in host
 * memory; the timing and traffic consequences of hits, fills,
 * writebacks and invalidations are handled by MemoryHierarchy.
 */

#ifndef ZCOMP_MEM_CACHE_HH
#define ZCOMP_MEM_CACHE_HH

#include <memory>
#include <string>
#include <vector>

#include "common/check.hh"
#include "common/config.hh"
#include "common/simd.hh"
#include "common/stats.hh"
#include "mem/addr.hh"
#include "mem/replacement.hh"

namespace zcomp {

/** Outcome of a cache lookup-with-fill. */
struct CacheVictim
{
    bool valid = false;     //!< a line was evicted
    bool dirty = false;     //!< ... and it was dirty (writeback needed)
    bool wasPrefetch = false; //!< ... and it was a never-used prefetch
    Addr addr = 0;          //!< line address of the evicted line
    uint16_t presence = 0;  //!< directory bits of the evicted line
};

class Cache
{
  public:
    Cache(std::string name, const CacheConfig &cfg, bool directory);

    /**
     * Look up a line. On a hit, updates replacement state and marks
     * dirty for writes. @return true on hit.
     */
    bool access(Addr line, bool is_write);

    /** True if the line is resident (no state update). */
    bool contains(Addr line) const;

    /**
     * Insert a line (demand fill or prefetch fill), evicting a victim
     * if the set is full. The returned victim describes any line that
     * was displaced.
     *
     * @param ready_at cycle at which the fill data actually arrives;
     *        a demand access before then pays the residual latency
     *        (used to model in-flight prefetches, so a saturated DRAM
     *        makes prefetched lines late rather than free).
     */
    CacheVictim insert(Addr line, bool dirty, bool is_prefetch,
                       double ready_at = 0.0);

    /** Residual wait until a resident line's fill data arrives. */
    double readyWait(Addr line, double now) const;

    /**
     * Invalidate a line if present. @return true if it was dirty
     * (the caller is responsible for the writeback).
     */
    bool invalidate(Addr line);

    /** Set a presence bit (directory caches only). */
    void markPresence(Addr line, int core);

    /** Presence bits for a resident line (0 if absent). */
    uint16_t presence(Addr line) const;

    /** First-use bookkeeping for prefetch accuracy accounting. */
    bool consumePrefetchFlag(Addr line);

    int numSets() const { return numSets_; }
    int assoc() const { return assoc_; }
    const std::string &name() const { return name_; }

    /** Currently valid lines (occupancy probe for tests/benches). */
    uint64_t validLines() const;

    // Event counters, aggregated externally into the hierarchy report.
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t writebacks = 0;        //!< dirty evictions
    uint64_t prefetchFills = 0;
    uint64_t prefetchUseful = 0;    //!< prefetched lines hit by demand
    uint64_t prefetchUnused = 0;    //!< prefetched lines evicted unused
    uint64_t invalidations = 0;
    uint64_t evictions = 0;         //!< total victims displaced

  private:
    /**
     * The tag of an empty way. Lookups are a pure tag-array probe (no
     * valid bit): line addresses are 64-byte aligned so they can never
     * equal the all-ones sentinel, making "tag matches" equivalent to
     * "valid and tag matches". Keeping the tags of each set contiguous
     * lets findWay compare a whole set per vector instruction instead
     * of striding through Line records.
     */
    static constexpr Addr kInvalidTag = ~Addr{0};

    /** Per-line state other than the tag (tag lives in tags_). */
    struct Line
    {
        bool dirty = false;
        bool prefetched = false;    //!< filled by prefetch, not yet used
        uint16_t presence = 0;      //!< cores holding this line (L3 only)
        double readyAt = 0.0;       //!< fill-data arrival time
    };

    int setIndex(Addr line) const;
    int findWay(int set, Addr line) const;

    std::string name_;
    int numSets_;
    int assoc_;
    bool directory_;
    bool hashIndex_ = false;
    std::vector<Addr> tags_;        //!< [set * assoc + way], kInvalidTag = empty
    std::vector<Line> lines_;
    std::unique_ptr<ReplacementPolicy> repl_;
};

// The lookup chain (setIndex -> findWay -> access/contains/readyWait)
// runs billions of times per sweep - the timing model's hottest path -
// so these stay in the header where they inline into the hierarchy
// walk instead of paying a call per tag probe.

inline int
Cache::setIndex(Addr line) const
{
    uint64_t ln = line / lineBytes;
    if (hashIndex_) {
        // Strong multiplicative mix (Intel-LLC style complex set
        // hashing): parallel streams at power-of-two strides spread
        // uniformly over all sets instead of aliasing, and each
        // stream's lines equidistribute across the whole index space.
        ln *= 0x9E3779B97F4A7C15ULL;
        ln ^= ln >> 29;
        ln *= 0xBF58476D1CE4E5B9ULL;
        ln ^= ln >> 32;
    }
    return static_cast<int>(ln % static_cast<uint64_t>(numSets_));
}

inline int
Cache::findWay(int set, Addr line) const
{
    ZCOMP_DCHECK(line != kInvalidTag, "lookup of the invalid-tag sentinel");
    const uint64_t *tags = tags_.data() + static_cast<size_t>(set) * assoc_;
    // A set holds each tag at most once, so first-match == only-match
    // and the result is backend independent.
    int way;
    if (simd::findTag64(tags, assoc_, line, way))
        return way;
    for (int w = 0; w < assoc_; w++) {
        if (tags[w] == line)
            return w;
    }
    return -1;
}

inline bool
Cache::access(Addr line, bool is_write)
{
    int set = setIndex(line);
    int way = findWay(set, line);
    if (way < 0) {
        misses++;
        return false;
    }
    hits++;
    Line &l = lines_[static_cast<size_t>(set) * assoc_ + way];
    if (l.prefetched) {
        prefetchUseful++;
        l.prefetched = false;
    }
    if (is_write)
        l.dirty = true;
    repl_->onHit(set, way);
    return true;
}

inline bool
Cache::contains(Addr line) const
{
    return findWay(setIndex(line), line) >= 0;
}

inline double
Cache::readyWait(Addr line, double now) const
{
    int set = setIndex(line);
    int way = findWay(set, line);
    if (way < 0)
        return 0.0;
    double ready =
        lines_[static_cast<size_t>(set) * assoc_ + way].readyAt;
    return ready > now ? ready - now : 0.0;
}

} // namespace zcomp

#endif // ZCOMP_MEM_CACHE_HH
