/**
 * @file
 * A set-associative, write-back, write-allocate cache model with
 * pluggable replacement (LRU/SRRIP), prefetch-fill tracking, and an
 * optional per-line presence directory (used by the inclusive shared
 * L3 to back-invalidate private caches).
 *
 * The cache stores only tags and state - data always lives in host
 * memory; the timing and traffic consequences of hits, fills,
 * writebacks and invalidations are handled by MemoryHierarchy.
 */

#ifndef ZCOMP_MEM_CACHE_HH
#define ZCOMP_MEM_CACHE_HH

#include <memory>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "mem/addr.hh"
#include "mem/replacement.hh"

namespace zcomp {

/** Outcome of a cache lookup-with-fill. */
struct CacheVictim
{
    bool valid = false;     //!< a line was evicted
    bool dirty = false;     //!< ... and it was dirty (writeback needed)
    bool wasPrefetch = false; //!< ... and it was a never-used prefetch
    Addr addr = 0;          //!< line address of the evicted line
    uint16_t presence = 0;  //!< directory bits of the evicted line
};

class Cache
{
  public:
    Cache(std::string name, const CacheConfig &cfg, bool directory);

    /**
     * Look up a line. On a hit, updates replacement state and marks
     * dirty for writes. @return true on hit.
     */
    bool access(Addr line, bool is_write);

    /** True if the line is resident (no state update). */
    bool contains(Addr line) const;

    /**
     * Insert a line (demand fill or prefetch fill), evicting a victim
     * if the set is full. The returned victim describes any line that
     * was displaced.
     *
     * @param ready_at cycle at which the fill data actually arrives;
     *        a demand access before then pays the residual latency
     *        (used to model in-flight prefetches, so a saturated DRAM
     *        makes prefetched lines late rather than free).
     */
    CacheVictim insert(Addr line, bool dirty, bool is_prefetch,
                       double ready_at = 0.0);

    /** Residual wait until a resident line's fill data arrives. */
    double readyWait(Addr line, double now) const;

    /**
     * Invalidate a line if present. @return true if it was dirty
     * (the caller is responsible for the writeback).
     */
    bool invalidate(Addr line);

    /** Set a presence bit (directory caches only). */
    void markPresence(Addr line, int core);

    /** Presence bits for a resident line (0 if absent). */
    uint16_t presence(Addr line) const;

    /** First-use bookkeeping for prefetch accuracy accounting. */
    bool consumePrefetchFlag(Addr line);

    int numSets() const { return numSets_; }
    int assoc() const { return assoc_; }
    const std::string &name() const { return name_; }

    /** Currently valid lines (occupancy probe for tests/benches). */
    uint64_t validLines() const;

    // Event counters, aggregated externally into the hierarchy report.
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t writebacks = 0;        //!< dirty evictions
    uint64_t prefetchFills = 0;
    uint64_t prefetchUseful = 0;    //!< prefetched lines hit by demand
    uint64_t prefetchUnused = 0;    //!< prefetched lines evicted unused
    uint64_t invalidations = 0;
    uint64_t evictions = 0;         //!< total victims displaced

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
        bool prefetched = false;    //!< filled by prefetch, not yet used
        uint16_t presence = 0;      //!< cores holding this line (L3 only)
        double readyAt = 0.0;       //!< fill-data arrival time
    };

    int setIndex(Addr line) const;
    int findWay(int set, Addr line) const;

    std::string name_;
    int numSets_;
    int assoc_;
    bool directory_;
    bool hashIndex_ = false;
    std::vector<Line> lines_;
    std::unique_ptr<ReplacementPolicy> repl_;
};

} // namespace zcomp

#endif // ZCOMP_MEM_CACHE_HH
