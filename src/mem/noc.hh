/**
 * @file
 * 2D-mesh network-on-chip latency model with XY routing and 2-cycle
 * hops (Table 1). Cores and L3 slices are laid out on the same mesh;
 * an L3 access pays the round-trip hop latency between the requesting
 * core's tile and the slice's tile.
 */

#ifndef ZCOMP_MEM_NOC_HH
#define ZCOMP_MEM_NOC_HH

#include "common/config.hh"
#include "mem/addr.hh"

namespace zcomp {

class Mesh2D
{
  public:
    explicit Mesh2D(const NocConfig &cfg);

    /** Manhattan hop count between two tiles under XY routing. */
    int hops(int tile_a, int tile_b) const;

    /** One-way latency in cycles between two tiles. */
    int latency(int tile_a, int tile_b) const;

    /** Round-trip request+response latency between two tiles. */
    int roundTrip(int tile_a, int tile_b) const;

    /** The L3 slice (tile) an address is homed at. */
    int sliceOf(Addr line) const;

    int numTiles() const { return cfg_.meshX * cfg_.meshY; }

  private:
    NocConfig cfg_;
};

} // namespace zcomp

#endif // ZCOMP_MEM_NOC_HH
