/**
 * @file
 * VSpace - the simulated virtual address space.
 *
 * Buffers used by the simulated workloads are backed by real host
 * memory (so functional kernels compute exact values, including
 * compressed streams) while carrying deterministic simulated virtual
 * addresses that the timing model uses for cache indexing. Each
 * allocation is tagged with a data class so that footprint reports
 * (Figure 3) fall directly out of the allocator.
 */

#ifndef ZCOMP_MEM_VSPACE_HH
#define ZCOMP_MEM_VSPACE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/units.hh"

namespace zcomp {

class BumpArena;

/** Data classes for footprint accounting (Figure 3 categories). */
enum class AllocClass
{
    Input = 0,      //!< input images / batches
    Weight,         //!< model parameters
    FeatureMap,     //!< cross-layer activations
    GradientMap,    //!< cross-layer gradients (backward pass)
    Scratch,        //!< within-layer working buffers (im2col, packs)
    Other,
};

constexpr int numAllocClasses = 6;

/** Human-readable name of an allocation class. */
const char *allocClassName(AllocClass c);

/** One simulated allocation: host backing store + simulated address. */
struct Buffer
{
    std::string name;
    AllocClass cls = AllocClass::Other;
    Addr base = 0;              //!< simulated virtual base address
    size_t size = 0;            //!< bytes
    uint8_t *host = nullptr;    //!< host backing memory (zero-filled)

    /** Simulated address of byte offset off. */
    Addr addrAt(size_t off) const { return base + off; }

    float *f32() { return reinterpret_cast<float *>(host); }
    const float *f32() const { return reinterpret_cast<const float *>(host); }
};

class VSpace
{
  public:
    /**
     * Allocations start at 4 KiB-aligned addresses above base.
     * @param allocate_host back buffers with host memory (default).
     *        Plan-only spaces (allocate_host = false) track addresses
     *        and footprints without reserving host RAM - used for
     *        Figure 1b/3 footprint studies at the paper's full batch
     *        sizes, where functional execution is never run.
     * @param arena optional bump arena supplying the host backing
     *        memory instead of per-buffer heap allocations. The arena
     *        must outlive the VSpace; its owner reclaims all backing
     *        at once with BumpArena::reset() after the VSpace dies
     *        (the study runner does this per cell). Ignored for
     *        plan-only spaces.
     */
    explicit VSpace(Addr base = 0x10000, bool allocate_host = true,
                    BumpArena *arena = nullptr);

    VSpace(const VSpace &) = delete;
    VSpace &operator=(const VSpace &) = delete;

    /** Allocate a zero-initialized buffer; the reference is stable. */
    Buffer &alloc(const std::string &name, size_t bytes, AllocClass cls);

    /** Free the host backing memory of a buffer (footprint stays). */
    void releaseHost(Buffer &buf);

    /** Total bytes allocated in a class. */
    uint64_t bytesInClass(AllocClass cls) const;

    /** Total bytes across all classes. */
    uint64_t totalBytes() const;

    /** False for plan-only spaces (no host memory behind buffers). */
    bool hostBacked() const { return allocateHost_; }

    size_t numBuffers() const { return buffers_.size(); }
    const Buffer &buffer(size_t i) const { return *buffers_[i]; }

  private:
    Addr next_;
    bool allocateHost_;
    BumpArena *arena_;
    std::vector<std::unique_ptr<Buffer>> buffers_;
    std::vector<std::unique_ptr<uint8_t[]>> backing_;
    uint64_t classBytes_[numAllocClasses] = {};
};

} // namespace zcomp

#endif // ZCOMP_MEM_VSPACE_HH
