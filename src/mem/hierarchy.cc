#include "mem/hierarchy.hh"

#include <algorithm>

#include "common/check.hh"
#include "common/log.hh"

namespace zcomp {

double
HierSnapshot::prefetchAccuracy() const
{
    if (l2PrefIssued == 0)
        return 0.0;
    return static_cast<double>(l2PrefUseful) /
           static_cast<double>(l2PrefIssued);
}

double
HierSnapshot::prefetchCoverage() const
{
    uint64_t denom = l2PrefUseful + l2DemandMissesBelow;
    if (denom == 0)
        return 0.0;
    return static_cast<double>(l2PrefUseful) /
           static_cast<double>(denom);
}

MemoryHierarchy::MemoryHierarchy(const ArchConfig &cfg)
    : cfg_(cfg), noc_(cfg.noc), dram_(cfg.dram, cfg.core.freqGHz)
{
    for (int c = 0; c < cfg.numCores; c++) {
        l1_.push_back(std::make_unique<Cache>(format("l1.%d", c), cfg.l1,
                                              false));
        l2_.push_back(std::make_unique<Cache>(format("l2.%d", c), cfg.l2,
                                              false));
        l2Pref_.emplace_back(cfg.prefetch);
        l1Pref_.emplace_back();
    }
    l3_ = std::make_unique<Cache>("l3", cfg.l3, true);
    l1Busy_.assign(static_cast<size_t>(cfg.numCores), 0.0);
    l2Busy_.assign(static_cast<size_t>(cfg.numCores), 0.0);
    l3SliceBusy_.assign(static_cast<size_t>(noc_.numTiles()), 0.0);
}

AccessResult
MemoryHierarchy::access(int core, Addr addr, uint32_t bytes,
                        bool is_write, double now, uint32_t pc)
{
    panic_if(core < 0 || core >= cfg_.numCores, "bad core id %d", core);
    if (bytes == 0)
        return {0.0, 1};

    coreL1Bytes_ += bytes;

    // Split line-crossing accesses; the lines are fetched in parallel
    // (separate fill paths) with a one-cycle split penalty each.
    AccessResult result;
    uint64_t nlines = linesTouched(addr, bytes);
    Addr line = lineAddr(addr);
    for (uint64_t i = 0; i < nlines; i++, line += lineBytes) {
        AccessResult r = accessLine(core, line, is_write, now, pc);
        ZCOMP_DCHECK(r.latency >= 0.0 && r.level >= 1 && r.level <= 4,
                     "bad access result: latency %f level %d",
                     r.latency, r.level);
        result.latency = std::max(result.latency,
                                  r.latency + static_cast<double>(i));
        result.level = std::max(result.level, r.level);
    }
    return result;
}

AccessResult
MemoryHierarchy::accessLine(int core, Addr line, bool is_write,
                            double now, uint32_t pc)
{
    ZCOMP_DCHECK(line % lineBytes == 0, "unaligned line address 0x%llx",
                 static_cast<unsigned long long>(line));
    auto uc = static_cast<size_t>(core);
    AccessResult res;

    // L1 bandwidth server.
    double l1_service =
        static_cast<double>(lineBytes) / cfg_.l1.bytesPerCycle;
    double l1_wait = std::max(0.0, l1Busy_[uc] - now);
    l1Busy_[uc] = std::max(l1Busy_[uc], now) + l1_service;

    runL1Prefetch(core, line, pc, now);

    // The stream prefetcher trains on the full demand line stream
    // (L1 hits included): L1 prefetch promotions would otherwise
    // punch gaps into the sequence it observes and break training.
    runL2Prefetch(core, line, now);

    if (l1_[uc]->access(line, is_write)) {
        res.latency = cfg_.l1.latency + l1_wait;
        res.level = 1;
        return res;
    }

    // L1 miss -> L2.
    double l2_service =
        static_cast<double>(lineBytes) / cfg_.l2.bytesPerCycle;
    double l2_wait = std::max(0.0, l2Busy_[uc] - now);
    l2Busy_[uc] = std::max(l2Busy_[uc], now) + l2_service;

    double lat = cfg_.l1.latency + l1_wait;
    if (l2_[uc]->access(line, false)) {
        // If the line was filled by a still-in-flight prefetch, the
        // demand access waits for the remaining fill latency.
        lat += cfg_.l2.latency + l2_wait +
               l2_[uc]->readyWait(line, now + lat);
        l1L2Bytes_ += lineBytes;    // fill into L1
        insertL1(core, line, is_write);
        res.latency = lat;
        res.level = 2;
        return res;
    }

    // L2 miss -> L3 (through the NoC).
    l2DemandMissesBelow_++;
    int slice = noc_.sliceOf(line);
    double noc_rt = noc_.roundTrip(core, slice);
    nocHops_ += static_cast<uint64_t>(2 * noc_.hops(core, slice));
    double l3_service =
        static_cast<double>(lineBytes) / cfg_.l3.bytesPerCycle;
    auto us = static_cast<size_t>(slice);
    double l3_wait = std::max(0.0, l3SliceBusy_[us] - now);
    l3SliceBusy_[us] = std::max(l3SliceBusy_[us], now) + l3_service;

    lat += cfg_.l2.latency + l2_wait + noc_rt + cfg_.l3.latency + l3_wait;
    res.level = 3;

    if (!l3_->access(line, false)) {
        // L3 miss -> DRAM.
        lat += dram_.access(line, false, now + lat);
        l3DramBytes_ += lineBytes;
        CacheVictim v = l3_->insert(line, false, false);
        evictFromL3(v, now);
        res.level = 4;
    }
    l3_->markPresence(line, core);

    // Fill the private caches.
    l2L3Bytes_ += lineBytes;
    insertL2(core, line, false, now);
    l1L2Bytes_ += lineBytes;
    insertL1(core, line, is_write);

    res.latency = lat;
    return res;
}

double
MemoryHierarchy::fillL3(int core, Addr line, double now, bool count_hit)
{
    double lat = 0;
    if (!l3_->access(line, false)) {
        lat = dram_.access(line, false, now);
        l3DramBytes_ += lineBytes;
        CacheVictim v = l3_->insert(line, false, false);
        evictFromL3(v, now);
    } else if (!count_hit) {
        // The probe above already counted a hit; nothing else to do.
    }
    l3_->markPresence(line, core);
    return lat;
}

void
MemoryHierarchy::evictFromL3(const CacheVictim &victim, double now)
{
    if (!victim.valid)
        return;
    bool dirty = victim.dirty;
    // Inclusive L3: remove the line from every private cache that may
    // hold it; dirty private copies merge into the writeback.
    for (int c = 0; c < cfg_.numCores; c++) {
        if (victim.presence & (1U << c)) {
            auto uc = static_cast<size_t>(c);
            if (l1_[uc]->invalidate(victim.addr)) {
                dirty = true;
                l1L2Bytes_ += lineBytes;
            }
            if (l2_[uc]->invalidate(victim.addr)) {
                dirty = true;
                l2L3Bytes_ += lineBytes;
            }
        }
    }
    if (dirty) {
        dram_.access(victim.addr, true, now);
        l3DramBytes_ += lineBytes;
    }
}

void
MemoryHierarchy::insertL2(int core, Addr line, bool prefetch, double now,
                          double ready_at)
{
    auto uc = static_cast<size_t>(core);
    CacheVictim v = l2_[uc]->insert(line, false, prefetch, ready_at);
    if (v.valid) {
        // Inclusion of L1: the evicted L2 line leaves L1 as well.
        bool l1_dirty = l1_[uc]->invalidate(v.addr);
        if (l1_dirty) {
            l1L2Bytes_ += lineBytes;
            v.dirty = true;
        }
        if (v.dirty) {
            // Write back into L3; the line is still there (inclusive)
            // unless it was already evicted - then it goes to DRAM.
            l2L3Bytes_ += lineBytes;
            if (l3_->contains(v.addr)) {
                l3WbProbes_++;
                l3_->access(v.addr, true);
            } else {
                dram_.access(v.addr, true, now);
                l3DramBytes_ += lineBytes;
            }
        }
    }
}

void
MemoryHierarchy::insertL1(int core, Addr line, bool dirty)
{
    auto uc = static_cast<size_t>(core);
    CacheVictim v = l1_[uc]->insert(line, dirty, false);
    if (v.valid && v.dirty) {
        // Write back into L2 (inclusive of L1, so it must be there).
        l1L2Bytes_ += lineBytes;
        if (l2_[uc]->contains(v.addr)) {
            l2_[uc]->access(v.addr, true);
        } else {
            // Defensive: racing back-invalidation removed it.
            insertL2(core, v.addr, false, 0.0);
            l2_[uc]->access(v.addr, true);
        }
    }
}

void
MemoryHierarchy::runL2Prefetch(int core, Addr line, double now)
{
    if (!cfg_.prefetch.l2Stream)
        return;
    auto uc = static_cast<size_t>(core);
    prefetchScratch_.clear();
    l2Pref_[uc].onAccess(line, prefetchScratch_);
    for (Addr pf : prefetchScratch_) {
        if (l2_[uc]->contains(pf))
            continue;
        // Prefetch throttling: hardware prefetchers drop requests
        // when the memory queues are saturated. Without this, a core
        // running at cache speed can flood DRAM with fills faster
        // than the channels drain, and the ready-time of late fills
        // runs away unboundedly.
        if (!l3_->contains(pf) &&
            dram_.backlog(pf, now) > prefetchBacklogCap_) {
            continue;
        }
        // Fetch from L3/DRAM into L2, consuming real bandwidth. The
        // fill's arrival time is recorded so that a demand access that
        // catches up with a late prefetch still pays the residual
        // latency.
        int slice = noc_.sliceOf(pf);
        auto us = static_cast<size_t>(slice);
        double l3_service =
            static_cast<double>(lineBytes) / cfg_.l3.bytesPerCycle;
        double l3_wait = std::max(0.0, l3SliceBusy_[us] - now);
        l3SliceBusy_[us] = std::max(l3SliceBusy_[us], now) + l3_service;
        double fill_lat = noc_.roundTrip(core, slice) + cfg_.l3.latency +
                          l3_wait + fillL3(core, pf, now, true);
        nocHops_ += static_cast<uint64_t>(2 * noc_.hops(core, slice));
        l2L3Bytes_ += lineBytes;
        l2PrefFilled_++;
        insertL2(core, pf, true, now, now + fill_lat);
    }
}

void
MemoryHierarchy::runL1Prefetch(int core, Addr line, uint32_t pc,
                               double now)
{
    if (!cfg_.prefetch.l1IpStride)
        return;
    auto uc = static_cast<size_t>(core);
    prefetchScratch_.clear();
    l1Pref_[uc].onAccess(pc, line, prefetchScratch_);
    for (Addr pf : prefetchScratch_) {
        if (l1_[uc]->contains(pf))
            continue;
        // L1 prefetch only promotes lines already in this core's L2;
        // it does not cascade misses further down, and it leaves
        // still-in-flight L2 prefetch fills alone (their data has not
        // arrived yet).
        if (!l2_[uc]->contains(pf))
            continue;
        if (l2_[uc]->readyWait(pf, now) > 0)
            continue;
        // Promoting a prefetched L2 line on behalf of an imminent
        // demand access consumes (and credits) the L2 prefetch.
        if (l2_[uc]->consumePrefetchFlag(pf))
            l2_[uc]->prefetchUseful++;
        l1L2Bytes_ += lineBytes;
        insertL1(core, pf, false);
    }
}

void
MemoryHierarchy::checkInvariants() const
{
    uint64_t l1_misses = 0, l1_writebacks = 0;
    uint64_t l2_accesses = 0, l2_misses = 0, l2_pref_fills = 0;
    for (int c = 0; c < cfg_.numCores; c++) {
        auto uc = static_cast<size_t>(c);
        l1_misses += l1_[uc]->misses;
        l1_writebacks += l1_[uc]->writebacks;
        l2_accesses += l2_[uc]->hits + l2_[uc]->misses;
        l2_misses += l2_[uc]->misses;
        l2_pref_fills += l2_[uc]->prefetchFills;
    }

    // Level-N misses + writebacks == level-N+1 accesses: every L2
    // lookup is caused by an L1 demand miss or an L1 dirty writeback.
    ZCOMP_CHECK(l2_accesses == l1_misses + l1_writebacks,
                "L1->L2 conservation: %llu L2 accesses vs %llu misses "
                "+ %llu writebacks",
                (unsigned long long)l2_accesses,
                (unsigned long long)l1_misses,
                (unsigned long long)l1_writebacks);

    // Demand misses leaving the private caches are counted twice,
    // once per L2 and once at the hierarchy; they must agree.
    ZCOMP_CHECK(l2_misses == l2DemandMissesBelow_,
                "L2 miss accounting drifted: %llu vs %llu",
                (unsigned long long)l2_misses,
                (unsigned long long)l2DemandMissesBelow_);

    // Every L3 lookup is a demand L2 miss, a prefetch fill probe, or
    // an L2 dirty writeback landing in the (inclusive) L3.
    ZCOMP_CHECK(l3_->hits + l3_->misses ==
                    l2DemandMissesBelow_ + l2PrefFilled_ + l3WbProbes_,
                "L2->L3 conservation: %llu L3 accesses vs %llu + %llu "
                "+ %llu",
                (unsigned long long)(l3_->hits + l3_->misses),
                (unsigned long long)l2DemandMissesBelow_,
                (unsigned long long)l2PrefFilled_,
                (unsigned long long)l3WbProbes_);

    // Bytes entering or leaving DRAM are exactly the bytes accounted
    // on the L3<->DRAM link.
    ZCOMP_CHECK(dram_.bytesRead + dram_.bytesWritten == l3DramBytes_,
                "L3->DRAM conservation: %llu DRAM bytes vs %llu link "
                "bytes",
                (unsigned long long)(dram_.bytesRead +
                                     dram_.bytesWritten),
                (unsigned long long)l3DramBytes_);

    // DRAM busy-time accounting: accrued busy cycles fit the channel
    // schedules (deferred posted writes only count once drained).
    dram_.checkInvariants();

    // Hierarchy-side and cache-side prefetch fill counts must agree.
    ZCOMP_CHECK(l2_pref_fills == l2PrefFilled_,
                "prefetch fill accounting drifted: %llu vs %llu",
                (unsigned long long)l2_pref_fills,
                (unsigned long long)l2PrefFilled_);

    // Structural sanity.
    ZCOMP_CHECK(l1L2Bytes_ % lineBytes == 0 &&
                    l2L3Bytes_ % lineBytes == 0 &&
                    l3DramBytes_ % lineBytes == 0,
                "link traffic is not line-granular");
    ZCOMP_CHECK(nocHops_ % 2 == 0,
                "round-trip NoC hop total %llu is odd",
                (unsigned long long)nocHops_);

    auto check_cache = [](const Cache &c) {
        ZCOMP_CHECK(c.writebacks <= c.evictions,
                    "cache %s: %llu writebacks exceed %llu evictions",
                    c.name().c_str(), (unsigned long long)c.writebacks,
                    (unsigned long long)c.evictions);
        uint64_t capacity = static_cast<uint64_t>(c.numSets()) *
                            static_cast<uint64_t>(c.assoc());
        // Each counted fill resolves at most once as useful or unused;
        // the capacity slack covers still-flagged lines that survived
        // a resetStats() (their fill predates the counter epoch).
        ZCOMP_CHECK(c.prefetchUseful + c.prefetchUnused <=
                        c.prefetchFills + capacity,
                    "cache %s: prefetch outcome accounting drifted",
                    c.name().c_str());
        // Debug only: the occupancy probe walks every line, too slow
        // for the per-phase snapshot() calls of Release studies.
        ZCOMP_DCHECK(c.validLines() <= capacity,
                     "cache %s: occupancy exceeds capacity",
                     c.name().c_str());
    };
    for (int c = 0; c < cfg_.numCores; c++) {
        auto uc = static_cast<size_t>(c);
        check_cache(*l1_[uc]);
        check_cache(*l2_[uc]);
    }
    check_cache(*l3_);
}

HierSnapshot
MemoryHierarchy::snapshot() const
{
    checkInvariants();
    HierSnapshot s;
    s.coreL1Bytes = coreL1Bytes_;
    s.l1L2Bytes = l1L2Bytes_;
    s.l2L3Bytes = l2L3Bytes_;
    s.l3DramBytes = l3DramBytes_;
    for (int c = 0; c < cfg_.numCores; c++) {
        auto uc = static_cast<size_t>(c);
        s.l1Hits += l1_[uc]->hits;
        s.l1Misses += l1_[uc]->misses;
        s.l2Hits += l2_[uc]->hits;
        s.l2Misses += l2_[uc]->misses;
        s.l2PrefUseful += l2_[uc]->prefetchUseful;
        s.l2PrefUnused += l2_[uc]->prefetchUnused;
    }
    s.l2PrefIssued = l2PrefFilled_;
    s.l3Hits = l3_->hits;
    s.l3Misses = l3_->misses;
    s.l2DemandMissesBelow = l2DemandMissesBelow_;
    s.nocHops = nocHops_;
    return s;
}

void
MemoryHierarchy::dumpStats(StatGroup &group) const
{
    HierSnapshot s = snapshot();
    StatGroup &links = group.addChild("links");
    links.addCounter("core_l1_bytes", "requested bytes at the cores")
        .set(s.coreL1Bytes);
    links.addCounter("l1_l2_bytes", "L1<->L2 fills + writebacks")
        .set(s.l1L2Bytes);
    links.addCounter("l2_l3_bytes", "L2<->L3 fills + writebacks")
        .set(s.l2L3Bytes);
    links.addCounter("l3_dram_bytes", "off-chip DRAM transfers")
        .set(s.l3DramBytes);

    group.addChild("noc")
        .addCounter("hops", "mesh hops traversed (demand + prefetch)")
        .set(s.nocHops);

    auto fill_cache = [](StatGroup &g, const Cache &c) {
        g.addCounter("hits", "demand hits").set(c.hits);
        g.addCounter("misses", "demand misses").set(c.misses);
        g.addCounter("writebacks", "dirty evictions").set(c.writebacks);
        g.addCounter("evictions", "total victims").set(c.evictions);
        g.addCounter("invalidations", "back-invalidations")
            .set(c.invalidations);
        g.addCounter("pf_fills", "prefetch fills").set(c.prefetchFills);
        g.addCounter("pf_useful", "prefetches hit by demand")
            .set(c.prefetchUseful);
        g.addCounter("pf_unused", "prefetches evicted unused")
            .set(c.prefetchUnused);
    };
    for (int c = 0; c < cfg_.numCores; c++) {
        auto uc = static_cast<size_t>(c);
        fill_cache(group.addChild(format("l1_%d", c)), *l1_[uc]);
        fill_cache(group.addChild(format("l2_%d", c)), *l2_[uc]);
    }
    fill_cache(group.addChild("l3"), *l3_);

    StatGroup &dram = group.addChild("dram");
    dram.addCounter("bytes_read", "DRAM read bytes")
        .set(dram_.bytesRead);
    dram.addCounter("bytes_written", "DRAM write bytes")
        .set(dram_.bytesWritten);
    dram.addCounter("busy_cycles", "aggregate channel busy cycles")
        .set(static_cast<uint64_t>(dram_.busyCycles()));
    if (dram_.injectedBitflips() > 0) {
        // Only present under --fault-spec so fault-free stat dumps stay
        // byte-identical to earlier releases.
        dram.addCounter("fault_bitflips", "injected corrected ECC events")
            .set(dram_.injectedBitflips());
    }
}

void
MemoryHierarchy::resetStats()
{
    coreL1Bytes_ = 0;
    l1L2Bytes_ = 0;
    l2L3Bytes_ = 0;
    l3DramBytes_ = 0;
    l2DemandMissesBelow_ = 0;
    l2PrefFilled_ = 0;
    l3WbProbes_ = 0;
    nocHops_ = 0;
    for (int c = 0; c < cfg_.numCores; c++) {
        auto uc = static_cast<size_t>(c);
        l1_[uc]->hits = l1_[uc]->misses = l1_[uc]->writebacks = 0;
        l1_[uc]->prefetchFills = l1_[uc]->prefetchUseful = 0;
        l1_[uc]->prefetchUnused = l1_[uc]->invalidations = 0;
        l2_[uc]->hits = l2_[uc]->misses = l2_[uc]->writebacks = 0;
        l2_[uc]->prefetchFills = l2_[uc]->prefetchUseful = 0;
        l2_[uc]->prefetchUnused = l2_[uc]->invalidations = 0;
        l2Pref_[uc].reset();
        l1Pref_[uc].reset();
    }
    l3_->hits = l3_->misses = l3_->writebacks = 0;
    l3_->invalidations = 0;
    dram_.reset();
}

void
MemoryHierarchy::resetAll()
{
    // Rebuild the caches from scratch: simplest correct flush.
    for (int c = 0; c < cfg_.numCores; c++) {
        auto uc = static_cast<size_t>(c);
        l1_[uc] = std::make_unique<Cache>(format("l1.%d", c), cfg_.l1,
                                          false);
        l2_[uc] = std::make_unique<Cache>(format("l2.%d", c), cfg_.l2,
                                          false);
    }
    l3_ = std::make_unique<Cache>("l3", cfg_.l3, true);
    std::fill(l1Busy_.begin(), l1Busy_.end(), 0.0);
    std::fill(l2Busy_.begin(), l2Busy_.end(), 0.0);
    std::fill(l3SliceBusy_.begin(), l3SliceBusy_.end(), 0.0);
    resetStats();
}

} // namespace zcomp
