/**
 * @file
 * Address arithmetic helpers for the 64-byte-line memory hierarchy.
 */

#ifndef ZCOMP_MEM_ADDR_HH
#define ZCOMP_MEM_ADDR_HH

#include "common/bitops.hh"
#include "common/units.hh"

namespace zcomp {

/** Align an address down to its cache line. */
constexpr Addr
lineAddr(Addr a)
{
    return alignDown(a, lineBytes);
}

/** Offset of an address within its cache line. */
constexpr uint64_t
lineOffset(Addr a)
{
    return a & (lineBytes - 1);
}

/** Number of cache lines an access [addr, addr+size) touches. */
constexpr uint64_t
linesTouched(Addr addr, uint64_t size)
{
    if (size == 0)
        return 0;
    return (lineAddr(addr + size - 1) - lineAddr(addr)) / lineBytes + 1;
}

} // namespace zcomp

#endif // ZCOMP_MEM_ADDR_HH
