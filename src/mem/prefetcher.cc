#include "mem/prefetcher.hh"

namespace zcomp {

StreamPrefetcher::StreamPrefetcher(const PrefetchConfig &cfg)
    : cfg_(cfg), streams_(static_cast<size_t>(cfg.l2StreamTableSize))
{
}

void
StreamPrefetcher::reset()
{
    for (auto &s : streams_)
        s.valid = false;
    issued_ = 0;
    clock_ = 0;
}

StreamPrefetcher::Stream *
StreamPrefetcher::find(Addr page)
{
    for (auto &s : streams_) {
        if (s.valid && s.page == page)
            return &s;
    }
    return nullptr;
}

StreamPrefetcher::Stream *
StreamPrefetcher::allocate()
{
    Stream *lru = &streams_[0];
    for (auto &s : streams_) {
        if (!s.valid)
            return &s;
        if (s.lastUse < lru->lastUse)
            lru = &s;
    }
    return lru;
}

void
StreamPrefetcher::onAccess(Addr line, std::vector<Addr> &out)
{
    clock_++;
    Addr page = alignDown(line, pageBytes);

    Stream *s = find(page);
    if (!s) {
        // A stream crossing into the next page continues seamlessly:
        // retarget the tracker that was following the previous page.
        // Page-neighbour lookups are clamped at the address-space
        // edges - page - pageBytes near 0 (and lastLine - lineBytes
        // below) would otherwise wrap on unsigned Addr.
        Stream *prev =
            page >= pageBytes ? find(page - pageBytes) : nullptr;
        if (prev && prev->direction > 0 && prev->confidence > 0 &&
            line == prev->lastLine + lineBytes) {
            prev->page = page;
            s = prev;
        } else {
            Stream *next = find(page + pageBytes);
            if (next && next->direction < 0 && next->confidence > 0 &&
                next->lastLine >= lineBytes &&
                line == next->lastLine - lineBytes) {
                next->page = page;
                s = next;
            }
        }
    }

    if (!s) {
        s = allocate();
        s->valid = true;
        s->page = page;
        s->lastLine = line;
        s->nextIssue = line + lineBytes;
        s->direction = 1;
        s->confidence = 0;
        s->lastUse = clock_;
        return;
    }

    s->lastUse = clock_;
    int64_t delta = static_cast<int64_t>(line) -
                    static_cast<int64_t>(s->lastLine);
    if (delta == 0)
        return;

    int dir = delta > 0 ? 1 : -1;
    // Allow small jitter (unaligned compressed vectors can touch the
    // same or the next line non-monotonically by one line).
    bool follows = dir == s->direction &&
                   (delta > 0 ? delta : -delta) <=
                       static_cast<int64_t>(2 * lineBytes);
    if (follows) {
        if (s->confidence < 4)
            s->confidence++;
    } else {
        s->direction = dir;
        s->confidence = 1;
        s->nextIssue = dir > 0 ? line + lineBytes
                               : (line >= lineBytes ? line - lineBytes
                                                    : Addr(0));
    }
    s->lastLine = line;

    if (s->confidence < 2)
        return;

    // Issue up to degree prefetches, staying within distance of the
    // demand stream. Downward streams clamp at address zero: the
    // line - lineBytes steps are unsigned, and near 0 they would
    // wrap to huge bogus prefetch addresses.
    Addr dist_bytes =
        static_cast<Addr>(cfg_.l2Distance) * lineBytes;
    if (s->direction > 0) {
        Addr limit = line + dist_bytes;
        if (s->nextIssue <= line)
            s->nextIssue = line + lineBytes;
        for (int i = 0; i < cfg_.l2Degree; i++) {
            if (s->nextIssue > limit)
                break;
            out.push_back(s->nextIssue);
            issued_++;
            s->nextIssue += lineBytes;
        }
    } else {
        if (line < lineBytes)
            return;     // at line zero; nothing below to prefetch
        Addr limit = line > dist_bytes ? line - dist_bytes : Addr(0);
        if (s->nextIssue >= line)
            s->nextIssue = line - lineBytes;
        for (int i = 0; i < cfg_.l2Degree; i++) {
            if (s->nextIssue < limit)
                break;
            out.push_back(s->nextIssue);
            issued_++;
            if (s->nextIssue < lineBytes)
                break;  // issued line zero; the stream ends here
            s->nextIssue -= lineBytes;
        }
    }
}

IpStridePrefetcher::IpStridePrefetcher(int table_size, int degree)
    : table_(static_cast<size_t>(table_size)), degree_(degree)
{
}

void
IpStridePrefetcher::reset()
{
    for (auto &e : table_)
        e.valid = false;
    issued_ = 0;
}

void
IpStridePrefetcher::onAccess(uint32_t pc, Addr line,
                             std::vector<Addr> &out)
{
    Entry &e = table_[pc % table_.size()];
    if (!e.valid || e.pc != pc) {
        e.valid = true;
        e.pc = pc;
        e.lastLine = line;
        e.stride = 0;
        e.confidence = 0;
        return;
    }
    int64_t stride = static_cast<int64_t>(line) -
                     static_cast<int64_t>(e.lastLine);
    if (stride == 0)
        return;
    if (stride == e.stride) {
        if (e.confidence < 4)
            e.confidence++;
    } else {
        e.stride = stride;
        e.confidence = 1;
    }
    e.lastLine = line;
    if (e.confidence >= 2) {
        // Candidates are clamped two ways: line + stride*i can wrap
        // negative through the int64 -> Addr cast (bogus huge
        // addresses), and real IP-stride prefetchers stop at the
        // 4 KiB page boundary. Clamped candidates are not issued and
        // therefore not counted.
        Addr page = alignDown(line, prefetchPageBytes);
        for (int i = 1; i <= degree_; i++) {
            int64_t cand = static_cast<int64_t>(line) + e.stride * i;
            if (cand < 0)
                break;
            Addr a = static_cast<Addr>(cand);
            if (alignDown(a, prefetchPageBytes) != page)
                break;
            out.push_back(a);
            issued_++;
        }
    }
}

} // namespace zcomp
