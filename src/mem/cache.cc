#include "mem/cache.hh"

#include "common/check.hh"
#include "common/log.hh"
#include "common/simd.hh"

namespace zcomp {

Cache::Cache(std::string name, const CacheConfig &cfg, bool directory)
    : name_(std::move(name)), assoc_(cfg.assoc), directory_(directory),
      hashIndex_(cfg.hashIndex)
{
    uint64_t num_lines = cfg.size / lineBytes;
    fatal_if(num_lines % cfg.assoc != 0,
             "cache %s: %llu lines not divisible by associativity %d",
             name_.c_str(), (unsigned long long)num_lines, cfg.assoc);
    numSets_ = static_cast<int>(num_lines / cfg.assoc);
    ZCOMP_CHECK(numSets_ > 0 && assoc_ > 0,
                "cache %s: degenerate geometry %d sets x %d ways",
                name_.c_str(), numSets_, assoc_);
    tags_.assign(num_lines, kInvalidTag);
    lines_.resize(num_lines);
    repl_ = ReplacementPolicy::create(cfg.repl, numSets_, assoc_);
}

CacheVictim
Cache::insert(Addr line, bool dirty, bool is_prefetch, double ready_at)
{
    int set = setIndex(line);
    size_t base = static_cast<size_t>(set) * assoc_;

    // Refresh in place if the line is already resident (e.g. a demand
    // fill racing a prefetch fill).
    int way = findWay(set, line);
    CacheVictim victim;
    if (way < 0) {
        // Prefer the first invalid way (an empty way carries the
        // sentinel tag, so this is just another tag probe).
        if (!simd::findTag64(tags_.data() + base, assoc_, kInvalidTag,
                             way)) {
            way = -1;
            for (int w = 0; w < assoc_; w++) {
                if (tags_[base + w] == kInvalidTag) {
                    way = w;
                    break;
                }
            }
        }
        if (way < 0) {
            way = repl_->victim(set);
            ZCOMP_DCHECK(way >= 0 && way < assoc_,
                         "cache %s: replacement chose bad way %d",
                         name_.c_str(), way);
            Line &v = lines_[base + way];
            victim.valid = true;
            victim.dirty = v.dirty;
            victim.wasPrefetch = v.prefetched;
            victim.addr = tags_[base + way];
            victim.presence = v.presence;
            evictions++;
            if (v.dirty)
                writebacks++;
            if (v.prefetched)
                prefetchUnused++;
        }
        Line &l = lines_[base + way];
        tags_[base + way] = line;
        l.dirty = dirty;
        l.prefetched = is_prefetch;
        l.presence = 0;
        l.readyAt = ready_at;
        repl_->onInsert(set, way);
        if (is_prefetch)
            prefetchFills++;
    } else {
        Line &l = lines_[base + way];
        l.dirty = l.dirty || dirty;
        if (!is_prefetch && l.prefetched) {
            prefetchUseful++;
            l.prefetched = false;
        }
    }
    // Fill postconditions: the line is resident, and any victim left
    // its set for good (it cannot be the line just inserted).
    ZCOMP_DCHECK(contains(line), "cache %s: inserted line not resident",
                 name_.c_str());
    ZCOMP_DCHECK(!victim.valid || victim.addr != line,
                 "cache %s: evicted the line being filled",
                 name_.c_str());
    return victim;
}

bool
Cache::invalidate(Addr line)
{
    int set = setIndex(line);
    int way = findWay(set, line);
    if (way < 0)
        return false;
    size_t idx = static_cast<size_t>(set) * assoc_ + way;
    Line &l = lines_[idx];
    bool was_dirty = l.dirty;
    if (l.prefetched)
        prefetchUnused++;
    tags_[idx] = kInvalidTag;
    l.dirty = false;
    l.prefetched = false;
    l.presence = 0;
    invalidations++;
    return was_dirty;
}

void
Cache::markPresence(Addr line, int core)
{
    panic_if(!directory_, "cache %s has no directory", name_.c_str());
    int set = setIndex(line);
    int way = findWay(set, line);
    if (way >= 0) {
        lines_[static_cast<size_t>(set) * assoc_ + way].presence |=
            static_cast<uint16_t>(1U << core);
    }
}

uint16_t
Cache::presence(Addr line) const
{
    int set = setIndex(line);
    int way = findWay(set, line);
    return way < 0 ? 0
                   : lines_[static_cast<size_t>(set) * assoc_ + way]
                         .presence;
}

uint64_t
Cache::validLines() const
{
    uint64_t n = 0;
    for (Addr t : tags_) {
        if (t != kInvalidTag)
            n++;
    }
    return n;
}

bool
Cache::consumePrefetchFlag(Addr line)
{
    int set = setIndex(line);
    int way = findWay(set, line);
    if (way < 0)
        return false;
    Line &l = lines_[static_cast<size_t>(set) * assoc_ + way];
    bool was = l.prefetched;
    l.prefetched = false;
    return was;
}

} // namespace zcomp
