#include "mem/dram.hh"

#include <algorithm>

namespace zcomp {

Dram::Dram(const DramConfig &cfg, double freq_ghz) : cfg_(cfg)
{
    idleLatency_ = cfg.latencyNs * freq_ghz;
    double total_bytes_per_cycle = cfg.totalBandwidthGBps / freq_ghz;
    double per_channel = total_bytes_per_cycle / cfg.channels;
    cyclesPerLine_ = static_cast<double>(lineBytes) / per_channel;
    busyUntil_.assign(static_cast<size_t>(cfg.channels), 0.0);
}

int
Dram::channelOf(Addr addr) const
{
    return static_cast<int>((addr / cfg_.interleaveBytes) %
                            static_cast<uint64_t>(cfg_.channels));
}

double
Dram::backlog(Addr line, double now) const
{
    double busy = busyUntil_[static_cast<size_t>(channelOf(line))];
    return busy > now ? busy - now : 0.0;
}

double
Dram::access(Addr line, bool is_write, double now)
{
    auto &busy = busyUntil_[static_cast<size_t>(channelOf(line))];
    if (is_write) {
        bytesWritten += lineBytes;
        // Writes are posted: the requester never waits for them, and
        // the controller gives reads priority, draining its write
        // queue during idle gaps. We model this with a bounded write
        // backlog - once the channel queue is deeper than the write
        // buffer, additional writes are assumed to drain later in
        // read gaps rather than head-of-line-blocking future reads
        // (otherwise eviction bursts would make chained readers
        // serialize behind an unbounded, never-drained queue).
        double backlog = busy - now;
        if (backlog < writeBacklogCap_) {
            double start = std::max(now, busy);
            busy = start + cyclesPerLine_;
            busyAccum_ += cyclesPerLine_;
            return busy - now;
        }
        busyAccum_ += cyclesPerLine_;
        return backlog;
    }
    double start = std::max(now, busy);
    double finish = start + cyclesPerLine_;
    busy = finish;
    busyAccum_ += cyclesPerLine_;
    bytesRead += lineBytes;
    return (finish - now) + idleLatency_;
}

double
Dram::busyCycles() const
{
    return busyAccum_;
}

void
Dram::reset()
{
    std::fill(busyUntil_.begin(), busyUntil_.end(), 0.0);
    bytesRead = 0;
    bytesWritten = 0;
    busyAccum_ = 0;
}

} // namespace zcomp
