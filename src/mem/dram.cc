#include "mem/dram.hh"

#include <algorithm>

#include "common/check.hh"

namespace zcomp {

Dram::Dram(const DramConfig &cfg, double freq_ghz) : cfg_(cfg)
{
    ZCOMP_CHECK(cfg.channels > 0 && cfg.interleaveBytes > 0 &&
                    cfg.totalBandwidthGBps > 0 && freq_ghz > 0,
                "degenerate DRAM config");
    idleLatency_ = cfg.latencyNs * freq_ghz;
    double total_bytes_per_cycle = cfg.totalBandwidthGBps / freq_ghz;
    double per_channel = total_bytes_per_cycle / cfg.channels;
    cyclesPerLine_ = static_cast<double>(lineBytes) / per_channel;
    busyUntil_.assign(static_cast<size_t>(cfg.channels), 0.0);
}

int
Dram::channelOf(Addr addr) const
{
    return static_cast<int>((addr / cfg_.interleaveBytes) %
                            static_cast<uint64_t>(cfg_.channels));
}

double
Dram::backlog(Addr line, double now) const
{
    double busy = busyUntil_[static_cast<size_t>(channelOf(line))];
    return busy > now ? busy - now : 0.0;
}

double
Dram::access(Addr line, bool is_write, double now)
{
    ZCOMP_DCHECK(now >= 0.0, "access at negative time %f", now);
    auto &busy = busyUntil_[static_cast<size_t>(channelOf(line))];
    [[maybe_unused]] const double busy_before = busy;
    if (is_write) {
        bytesWritten += lineBytes;
        // Writes are posted: the requester never waits for them, and
        // the controller gives reads priority, draining its write
        // queue during idle gaps. We model this with a bounded write
        // backlog - once the channel queue is deeper than the write
        // buffer, additional writes are assumed to drain later in
        // read gaps rather than head-of-line-blocking future reads
        // (otherwise eviction bursts would make chained readers
        // serialize behind an unbounded, never-drained queue).
        double backlog = busy - now;
        if (backlog < writeBacklogCap_) {
            double start = std::max(now, busy);
            busy = start + cyclesPerLine_;
            busyAccum_ += cyclesPerLine_;
            ZCOMP_DCHECK(busy >= busy_before,
                         "channel busy-until went backwards");
            return busy - now;
        }
        busyAccum_ += cyclesPerLine_;
        return backlog;
    }
    double start = std::max(now, busy);
    double finish = start + cyclesPerLine_;
    busy = finish;
    busyAccum_ += cyclesPerLine_;
    bytesRead += lineBytes;
    // Queue-drain sanity: a read is never served before the channel
    // frees up, and always pays at least the idle latency.
    // Exact in FP: start = max(now, busy) and finish = start + c with
    // c > 0. (finish - now >= c can round false for large now.)
    ZCOMP_DCHECK(busy >= busy_before && start >= now && finish >= start,
                 "channel busy-until went backwards");
    return (finish - now) + idleLatency_;
}

double
Dram::busyCycles() const
{
    return busyAccum_;
}

void
Dram::reset()
{
    std::fill(busyUntil_.begin(), busyUntil_.end(), 0.0);
    bytesRead = 0;
    bytesWritten = 0;
    busyAccum_ = 0;
}

} // namespace zcomp
