#include "mem/dram.hh"

#include <algorithm>

#include "common/check.hh"
#include "common/fault.hh"

namespace zcomp {

Dram::Dram(const DramConfig &cfg, double freq_ghz) : cfg_(cfg)
{
    ZCOMP_CHECK(cfg.channels > 0 && cfg.interleaveBytes > 0 &&
                    cfg.totalBandwidthGBps > 0 && freq_ghz > 0,
                "degenerate DRAM config");
    idleLatency_ = cfg.latencyNs * freq_ghz;
    double total_bytes_per_cycle = cfg.totalBandwidthGBps / freq_ghz;
    double per_channel = total_bytes_per_cycle / cfg.channels;
    cyclesPerLine_ = static_cast<double>(lineBytes) / per_channel;
    busyUntil_.assign(static_cast<size_t>(cfg.channels), 0.0);
    busyAccum_.assign(static_cast<size_t>(cfg.channels), 0.0);
    deferred_.assign(static_cast<size_t>(cfg.channels), 0);
}

int
Dram::channelOf(Addr addr) const
{
    return static_cast<int>((addr / cfg_.interleaveBytes) %
                            static_cast<uint64_t>(cfg_.channels));
}

double
Dram::backlog(Addr line, double now) const
{
    double busy = busyUntil_[static_cast<size_t>(channelOf(line))];
    return busy > now ? busy - now : 0.0;
}

void
Dram::drainDeferred(size_t ch, double now)
{
    uint64_t pending = deferred_[ch];
    if (pending == 0)
        return;
    double gap = now - busyUntil_[ch];
    if (gap < cyclesPerLine_)
        return;
    auto fit = static_cast<uint64_t>(gap / cyclesPerLine_);
    uint64_t drained = std::min(pending, fit);
    deferred_[ch] -= drained;
    double t = static_cast<double>(drained) * cyclesPerLine_;
    // The drained writes fill the idle gap exactly: busyUntil never
    // passes `now`, so the access being served still starts on time.
    busyUntil_[ch] += t;
    busyAccum_[ch] += t;
    ZCOMP_DCHECK(busyUntil_[ch] <= now,
                 "deferred-write drain overran the idle gap");
}

double
Dram::access(Addr line, bool is_write, double now)
{
    ZCOMP_DCHECK(now >= 0.0, "access at negative time %f", now);
    auto ch = static_cast<size_t>(channelOf(line));
    drainDeferred(ch, now);
    auto &busy = busyUntil_[ch];
    [[maybe_unused]] const double busy_before = busy;
    if (is_write) {
        bytesWritten += lineBytes;
        // Writes are posted: the requester never waits for them, and
        // the controller gives reads priority, draining its write
        // queue during idle gaps. We model this with a bounded write
        // backlog - once the channel queue is deeper than the write
        // buffer, additional writes are assumed to drain later in
        // read gaps rather than head-of-line-blocking future reads
        // (otherwise eviction bursts would make chained readers
        // serialize behind an unbounded, never-drained queue).
        double backlog = busy - now;
        if (backlog < writeBacklogCap_) {
            double start = std::max(now, busy);
            busy = start + cyclesPerLine_;
            busyAccum_[ch] += cyclesPerLine_;
            ZCOMP_DCHECK(busy >= busy_before,
                         "channel busy-until went backwards");
            return busy - now;
        }
        // Deferred to the backlog: the channel schedule does not
        // advance, so no busy time accrues here - it accrues when a
        // later idle gap actually drains the write (drainDeferred).
        // Accruing at both points would overstate utilization and let
        // busyCycles() exceed wall-clock under eviction bursts.
        deferred_[ch]++;
        return backlog;
    }
    double start = std::max(now, busy);
    double finish = start + cyclesPerLine_;
    double served = cyclesPerLine_;
    if (FaultInjector::global().enabled() &&
        FaultInjector::global().shouldInject(faultsite::DramBitflip)) {
        // A detected-and-corrected ECC event: the controller retries
        // the transfer, so the channel is occupied for a second line
        // time and the requester sees the extra latency. No data is
        // lost and byte counts are unchanged (the same line is
        // delivered), keeping the hierarchy traffic identities intact.
        finish += cyclesPerLine_;
        served += cyclesPerLine_;
        injectedBitflips_++;
    }
    busy = finish;
    busyAccum_[ch] += served;
    bytesRead += lineBytes;
    // Queue-drain sanity: a read is never served before the channel
    // frees up, and always pays at least the idle latency.
    // Exact in FP: start = max(now, busy) and finish = start + c with
    // c > 0. (finish - now >= c can round false for large now.)
    ZCOMP_DCHECK(busy >= busy_before && start >= now && finish >= start,
                 "channel busy-until went backwards");
    return (finish - now) + idleLatency_;
}

double
Dram::busyCycles() const
{
    double total = 0;
    for (double a : busyAccum_)
        total += a;
    return total;
}

uint64_t
Dram::deferredWrites() const
{
    uint64_t total = 0;
    for (uint64_t d : deferred_)
        total += d;
    return total;
}

void
Dram::checkInvariants(double now) const
{
    for (size_t ch = 0; ch < busyUntil_.size(); ch++) {
        // Every accrued busy interval lies inside [0, busyUntil]: a
        // channel cannot have been busy longer than its schedule
        // extends. Small epsilon for FP accumulation drift.
        double bound = busyUntil_[ch] * (1.0 + 1e-9) + 1e-6;
        ZCOMP_CHECK(busyAccum_[ch] <= bound,
                    "channel %zu busy time %f exceeds schedule %f", ch,
                    busyAccum_[ch], busyUntil_[ch]);
    }
    if (now >= 0.0) {
        // Aggregate utilization bound: elapsed time plus whatever is
        // scheduled beyond `now` caps the accrued busy cycles. Once
        // the queues drain (now past every busyUntil) this is exactly
        // busyCycles() <= now * channels.
        double horizon = 0;
        for (double b : busyUntil_)
            horizon += std::max(0.0, b - now);
        double bound = now * static_cast<double>(cfg_.channels) + horizon;
        ZCOMP_CHECK(busyCycles() <= bound * (1.0 + 1e-9) + 1e-6,
                    "busy cycles %f exceed wall-clock bound %f at t=%f",
                    busyCycles(), bound, now);
    }
}

void
Dram::reset()
{
    std::fill(busyUntil_.begin(), busyUntil_.end(), 0.0);
    std::fill(busyAccum_.begin(), busyAccum_.end(), 0.0);
    std::fill(deferred_.begin(), deferred_.end(), 0);
    bytesRead = 0;
    bytesWritten = 0;
    injectedBitflips_ = 0;
}

} // namespace zcomp
