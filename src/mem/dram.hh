/**
 * @file
 * DRAM model: 4 channels of DDR4-2133 with 68 GB/s aggregate bandwidth
 * (Table 1). Each channel is a bandwidth server: a line transfer
 * occupies the channel for lineBytes / per-channel-bytes-per-cycle
 * cycles, and requests arriving while the channel is busy queue behind
 * it. Addresses interleave across channels at a configurable
 * granularity (256 B default).
 */

#ifndef ZCOMP_MEM_DRAM_HH
#define ZCOMP_MEM_DRAM_HH

#include <cstdint>
#include <vector>

#include "common/config.hh"
#include "mem/addr.hh"

namespace zcomp {

class Dram
{
  public:
    Dram(const DramConfig &cfg, double freq_ghz);

    /**
     * Perform a line transfer at the given core-cycle time.
     * @return total latency in cycles (idle latency + queueing +
     *         transfer time)
     */
    double access(Addr line, bool is_write, double now);

    /** Channel an address maps to. */
    int channelOf(Addr addr) const;

    /** Current queue depth (cycles) of the channel serving `line`. */
    double backlog(Addr line, double now) const;

    uint64_t bytesRead = 0;
    uint64_t bytesWritten = 0;

    /** Total cycles all channels spent busy (utilization numerator). */
    double busyCycles() const;

    void reset();

  private:
    /** Queue depth beyond which posted writes drain in read gaps. */
    static constexpr double writeBacklogCap_ = 512.0;

    DramConfig cfg_;
    double idleLatency_;        //!< cycles
    double cyclesPerLine_;      //!< transfer time per 64 B per channel
    std::vector<double> busyUntil_;
    double busyAccum_ = 0;
};

} // namespace zcomp

#endif // ZCOMP_MEM_DRAM_HH
