/**
 * @file
 * DRAM model: 4 channels of DDR4-2133 with 68 GB/s aggregate bandwidth
 * (Table 1). Each channel is a bandwidth server: a line transfer
 * occupies the channel for lineBytes / per-channel-bytes-per-cycle
 * cycles, and requests arriving while the channel is busy queue behind
 * it. Addresses interleave across channels at a configurable
 * granularity (256 B default).
 *
 * Posted writes beyond the per-channel write-buffer depth do not
 * extend the channel queue (they are assumed to drain later in read
 * gaps); their busy time accrues when an idle gap actually absorbs
 * them, so busyCycles() only ever counts cycles a channel was really
 * scheduled - see checkInvariants().
 */

#ifndef ZCOMP_MEM_DRAM_HH
#define ZCOMP_MEM_DRAM_HH

#include <cstdint>
#include <vector>

#include "common/config.hh"
#include "mem/addr.hh"

namespace zcomp {

class Dram
{
  public:
    Dram(const DramConfig &cfg, double freq_ghz);

    /**
     * Perform a line transfer at the given core-cycle time.
     * @return total latency in cycles (idle latency + queueing +
     *         transfer time)
     */
    double access(Addr line, bool is_write, double now);

    /** Channel an address maps to. */
    int channelOf(Addr addr) const;

    /** Current queue depth (cycles) of the channel serving `line`. */
    double backlog(Addr line, double now) const;

    uint64_t bytesRead = 0;
    uint64_t bytesWritten = 0;

    /**
     * Total cycles all channels spent busy (utilization numerator).
     * Deferred posted writes count only once an idle gap drains them,
     * so this never exceeds the scheduled channel time.
     */
    double busyCycles() const;

    /** Posted line-writes deferred to future read gaps (all channels). */
    uint64_t deferredWrites() const;

    /**
     * Corrected ECC events injected at the dram.bitflip fault site.
     * Each one occupies its channel for an extra line transfer.
     */
    uint64_t injectedBitflips() const { return injectedBitflips_; }

    /**
     * Verify the busy-time accounting identities (aborts on
     * violation):
     *  - per channel, accrued busy time fits the busy-until schedule
     *    (all accrued intervals lie in [0, busyUntil]);
     *  - with now >= the schedule horizon, this implies the
     *    utilization bound busyCycles() <= now * channels.
     * @param now pass the current core-cycle time to additionally
     *        check the wall-clock bound; negative skips it.
     */
    void checkInvariants(double now = -1.0) const;

    void reset();

  private:
    /** Queue depth beyond which posted writes drain in read gaps. */
    static constexpr double writeBacklogCap_ = 512.0;

    /** Absorb deferred writes into the idle gap before `now`. */
    void drainDeferred(size_t ch, double now);

    DramConfig cfg_;
    double idleLatency_;        //!< cycles
    double cyclesPerLine_;      //!< transfer time per 64 B per channel
    std::vector<double> busyUntil_;
    std::vector<double> busyAccum_;     //!< per-channel busy cycles
    std::vector<uint64_t> deferred_;    //!< per-channel deferred writes
    uint64_t injectedBitflips_ = 0;     //!< dram.bitflip site events
};

} // namespace zcomp

#endif // ZCOMP_MEM_DRAM_HH
