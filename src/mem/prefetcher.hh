/**
 * @file
 * Hardware prefetchers per Table 1: a stream/stride prefetcher at L2
 * and an IP-based stride prefetcher at L1.
 *
 * The L2 stream prefetcher tracks up to N concurrent streams at 4 KiB
 * page granularity. Two accesses in the same direction train a
 * stream; once trained it runs `distance` lines ahead of the demand
 * stream, issuing up to `degree` new prefetches per demand access.
 * This is the mechanism Section 3.3 relies on: ZCOMP's sequentially-
 * dependent header/data reads are perfectly sequential in memory, so
 * the stream prefetcher hides their latency (the paper reports 98-99%
 * accuracy and 94-97% coverage, which the bench_ablation_prefetch
 * binary reproduces).
 */

#ifndef ZCOMP_MEM_PREFETCHER_HH
#define ZCOMP_MEM_PREFETCHER_HH

#include <cstdint>
#include <vector>

#include "common/config.hh"
#include "mem/addr.hh"

namespace zcomp {

/**
 * Page granularity the prefetchers reason at: the stream table tracks
 * one stream per 4 KiB page (crossing streams retarget their
 * tracker), and IP-stride candidates stop at the page boundary the
 * way real hardware does (the next page's physical mapping is
 * unknown).
 */
constexpr uint64_t prefetchPageBytes = 4 * KiB;

/** L2 stream/stride prefetcher. */
class StreamPrefetcher
{
  public:
    explicit StreamPrefetcher(const PrefetchConfig &cfg);

    /**
     * Observe a demand access to a line; append up to cfg.degree
     * prefetch line addresses to out.
     */
    void onAccess(Addr line, std::vector<Addr> &out);

    uint64_t issued() const { return issued_; }
    void reset();

  private:
    struct Stream
    {
        bool valid = false;
        Addr page = 0;          //!< 4 KiB region being tracked
        Addr lastLine = 0;      //!< most recent demand line
        Addr nextIssue = 0;     //!< next line to prefetch
        int direction = 1;      //!< +1 ascending, -1 descending
        int confidence = 0;
        uint64_t lastUse = 0;
    };

    static constexpr uint64_t pageBytes = prefetchPageBytes;

    Stream *find(Addr page);
    Stream *allocate();

    PrefetchConfig cfg_;
    std::vector<Stream> streams_;
    uint64_t clock_ = 0;
    uint64_t issued_ = 0;
};

/** L1 IP-based stride prefetcher. */
class IpStridePrefetcher
{
  public:
    explicit IpStridePrefetcher(int table_size = 64, int degree = 2);

    /**
     * Observe a demand access from instruction pc to a line; append
     * prefetch line addresses to out.
     */
    void onAccess(uint32_t pc, Addr line, std::vector<Addr> &out);

    uint64_t issued() const { return issued_; }
    void reset();

  private:
    struct Entry
    {
        bool valid = false;
        uint32_t pc = 0;
        Addr lastLine = 0;
        int64_t stride = 0;
        int confidence = 0;
    };

    std::vector<Entry> table_;
    int degree_;
    uint64_t issued_ = 0;
};

} // namespace zcomp

#endif // ZCOMP_MEM_PREFETCHER_HH
