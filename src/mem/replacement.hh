/**
 * @file
 * Cache replacement policies: LRU (used at L1 per Table 1) and SRRIP
 * (Static Re-Reference Interval Prediction, used at L2 and L3).
 *
 * A ReplacementPolicy instance manages the per-way metadata of one
 * cache and is consulted for victim selection. SRRIP uses 2-bit RRPV
 * counters: lines are inserted with RRPV = 2 (long re-reference), are
 * promoted to 0 on hit, and the victim is any way with RRPV = 3,
 * aging all ways when none qualifies.
 */

#ifndef ZCOMP_MEM_REPLACEMENT_HH
#define ZCOMP_MEM_REPLACEMENT_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/config.hh"

namespace zcomp {

class ReplacementPolicy
{
  public:
    virtual ~ReplacementPolicy() = default;

    /** A line was inserted into (set, way). */
    virtual void onInsert(int set, int way) = 0;

    /** A line in (set, way) was hit. */
    virtual void onHit(int set, int way) = 0;

    /** Choose the victim way in a full set. */
    virtual int victim(int set) = 0;

    /** Factory for the configured policy. */
    static std::unique_ptr<ReplacementPolicy> create(ReplPolicy p,
                                                     int num_sets,
                                                     int assoc);
};

/** Least-recently-used via monotonically increasing stamps. */
class LruPolicy : public ReplacementPolicy
{
  public:
    LruPolicy(int num_sets, int assoc);
    void onInsert(int set, int way) override;
    void onHit(int set, int way) override;
    int victim(int set) override;

  private:
    int assoc_;
    uint64_t clock_ = 0;
    std::vector<uint64_t> stamp_;
};

/** Static RRIP with 2-bit re-reference prediction values. */
class SrripPolicy : public ReplacementPolicy
{
  public:
    static constexpr uint8_t maxRrpv = 3;
    static constexpr uint8_t insertRrpv = 2;

    SrripPolicy(int num_sets, int assoc);
    void onInsert(int set, int way) override;
    void onHit(int set, int way) override;
    int victim(int set) override;

  private:
    int assoc_;
    std::vector<uint8_t> rrpv_;
};

} // namespace zcomp

#endif // ZCOMP_MEM_REPLACEMENT_HH
