#include "workload/deepbench.hh"

#include <algorithm>

#include "common/log.hh"

namespace zcomp {

const char *
benchSuiteName(BenchSuite s)
{
    switch (s) {
      case BenchSuite::ConvTrain:
        return "conv-train";
      case BenchSuite::ConvInfer:
        return "conv-infer";
      case BenchSuite::FcTrain:
        return "fc-train";
      case BenchSuite::FcInfer:
        return "fc-infer";
    }
    return "?";
}

namespace {

std::vector<DeepBenchShape>
buildShapes()
{
    using S = BenchSuite;
    // {name, suite, activation elements, sparsity}
    std::vector<DeepBenchShape> v = {
        // conv-train: vision (VGG/ResNet-style) and speech layers,
        // batch 2-16. Activation = N*K*Hout*Wout.
        {"conv3-64 112x112 n2", S::ConvTrain, 1605632, 0.58},
        {"conv3-128 56x56 n8", S::ConvTrain, 3211264, 0.55},
        {"conv5x20 341x79 k32 n4", S::ConvTrain, 3447424, 0.49},
        {"conv3-256 56x56 n8", S::ConvTrain, 6422528, 0.61},
        {"conv3-64 224x224 n4", S::ConvTrain, 12845056, 0.52},
        {"conv5x5 224x224 k24 n8", S::ConvTrain, 19267584, 0.63},
        {"conv3-64 224x224 n8", S::ConvTrain, 25690112, 0.44},
        {"conv3x3 700x161 k32 n8", S::ConvTrain, 28851200, 0.50},
        {"conv3-64 224x224 n10", S::ConvTrain, 32112640, 0.66},
        {"conv7-64 230x230 n16", S::ConvTrain, 33871872, 0.57},
        {"conv3-128 112x112 n16", S::ConvTrain, 25690112, 0.47},

        // conv-infer (server): batch 1-2, small maps.
        {"conv3-512 4x4 n1", S::ConvInfer, 8192, 0.47},
        {"conv3-512 8x8 n1", S::ConvInfer, 32768, 0.55},
        {"conv3-256 16x16 n1", S::ConvInfer, 65536, 0.39},
        {"conv3-512 16x16 n1", S::ConvInfer, 131072, 0.60},
        {"conv3-256 32x32 n1", S::ConvInfer, 262144, 0.52},
        {"conv3-512 32x32 n1", S::ConvInfer, 524288, 0.45},
        {"conv3-64 112x112 n1", S::ConvInfer, 802816, 0.58},
        {"conv3-96 112x112 n1", S::ConvInfer, 1204224, 0.64},
        {"conv3-64 112x112 n2", S::ConvInfer, 1605632, 0.50},
        {"conv3-128 128x128 n1", S::ConvInfer, 2097152, 0.43},
        {"conv3-96 112x112 n2", S::ConvInfer, 2408448, 0.55},

        // fc-train: GEMM output M x N, batch 64-128 and the 7000-wide
        // speech layers.
        {"gemm 1760x128", S::FcTrain, 225280, 0.56},
        {"gemm 2048x128", S::FcTrain, 262144, 0.49},
        {"gemm 2560x128", S::FcTrain, 327680, 0.61},
        {"gemm 4096x128", S::FcTrain, 524288, 0.43},
        {"gemm 1760x1024", S::FcTrain, 1802240, 0.53},
        {"gemm 2048x2048", S::FcTrain, 4194304, 0.58},
        {"gemm 2560x2048", S::FcTrain, 5242880, 0.47},
        {"gemm 4096x2048", S::FcTrain, 8388608, 0.62},
        {"gemm 1760x7000", S::FcTrain, 12320000, 0.51},
        {"gemm 2560x7133", S::FcTrain, 18260480, 0.55},
        {"gemm 4096x7000", S::FcTrain, 28672000, 0.48},

        // fc-infer (server): batch 1-4.
        {"gemm 1760x1", S::FcInfer, 1760, 0.52},
        {"gemm 2048x1", S::FcInfer, 2048, 0.44},
        {"gemm 2560x1", S::FcInfer, 2560, 0.59},
        {"gemm 4096x1", S::FcInfer, 4096, 0.50},
        {"gemm 1760x4", S::FcInfer, 7040, 0.63},
        {"gemm 2048x4", S::FcInfer, 8192, 0.46},
        {"gemm 2560x4", S::FcInfer, 10240, 0.54},
        {"gemm 4096x4", S::FcInfer, 16384, 0.57},
        {"gemm 5124x4", S::FcInfer, 20496, 0.41},
        {"gemm 7680x4", S::FcInfer, 30720, 0.60},
        {"gemm 10752x4", S::FcInfer, 43008, 0.49},
    };

    // Sort by size within each suite (the Figure 12 x-axis ordering).
    std::stable_sort(v.begin(), v.end(),
                     [](const DeepBenchShape &a, const DeepBenchShape &b) {
                         if (a.suite != b.suite)
                             return static_cast<int>(a.suite) <
                                    static_cast<int>(b.suite);
                         return a.elems < b.elems;
                     });

    for (const auto &s : v)
        panic_if(s.elems % 16 != 0, "shape %s not vector-aligned",
                 s.name.c_str());
    panic_if(v.size() != 44, "expected 44 DeepBench shapes, have %zu",
             v.size());
    return v;
}

} // namespace

const std::vector<DeepBenchShape> &
deepBenchShapes()
{
    static const std::vector<DeepBenchShape> shapes = buildShapes();
    return shapes;
}

std::vector<DeepBenchShape>
shapesOf(BenchSuite suite)
{
    std::vector<DeepBenchShape> out;
    for (const auto &s : deepBenchShapes()) {
        if (s.suite == suite)
            out.push_back(s);
    }
    return out;
}

} // namespace zcomp
