/**
 * @file
 * The 44 DeepBench-derived input shapes used in the Figure 12 ReLU
 * evaluation: 11 each from the conv-train, conv-infer, fc-train and
 * fc-infer (server) suites, sorted by activation size within each
 * group, spanning a few KB to ~140 MB.
 *
 * Substitution note (see DESIGN.md): the original evaluation spans up
 * to 560 MB; we cap activation sizes at ~140 MB to keep single-host
 * simulation memory sane. All regimes the paper's discussion depends
 * on (L1-resident, L2/L3-resident, the L3-fit cliff and deeply
 * DRAM-resident) are preserved, since the cliff sits at the 24 MB L3.
 * Per-shape sparsities are drawn deterministically from the 35-70%
 * range the paper reports (49-63% per network, 53% overall).
 */

#ifndef ZCOMP_WORKLOAD_DEEPBENCH_HH
#define ZCOMP_WORKLOAD_DEEPBENCH_HH

#include <cstddef>
#include <string>
#include <vector>

namespace zcomp {

enum class BenchSuite
{
    ConvTrain = 0,
    ConvInfer,
    FcTrain,
    FcInfer,
};

constexpr int numBenchSuites = 4;

const char *benchSuiteName(BenchSuite s);

struct DeepBenchShape
{
    std::string name;       //!< tensor shape mnemonic
    BenchSuite suite;
    size_t elems;           //!< fp32 activation elements (multiple of 16)
    double sparsity;        //!< snapshot sparsity for this shape

    size_t bytes() const { return elems * 4; }
};

/** All 44 shapes, grouped by suite and sorted by size within groups. */
const std::vector<DeepBenchShape> &deepBenchShapes();

/** Shapes of one suite. */
std::vector<DeepBenchShape> shapesOf(BenchSuite suite);

} // namespace zcomp

#endif // ZCOMP_WORKLOAD_DEEPBENCH_HH
