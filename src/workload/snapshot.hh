/**
 * @file
 * Feature-map snapshot generator.
 *
 * The paper initializes its ReLU-layer inputs with "uncompressed
 * snapshots from the evaluated DNN feature maps (with an average 53%
 * sparsity)". We do not have the authors' snapshots; this generator
 * produces activation data with the same statistics that matter to
 * compression:
 *
 *  - a target fraction of exact zeros (ReLU outputs / dropout),
 *  - zeros that are spatially *clustered* (dead feature-map regions
 *    produce runs of zeros, which matters for pattern-based cache
 *    compression like FPC-D in the Figure 15 comparison),
 *  - a small fraction of negative values (pre-activation leakage /
 *    non-ReLU producers) so that LTEZ-fused compression has work to
 *    do, and
 *  - half-normal positive magnitudes.
 *
 * Clustering is a two-state Markov chain over elements with a
 * configurable mean zero-run length whose stationary distribution hits
 * the target sparsity exactly in expectation.
 */

#ifndef ZCOMP_WORKLOAD_SNAPSHOT_HH
#define ZCOMP_WORKLOAD_SNAPSHOT_HH

#include <cstddef>
#include <vector>

#include "common/rng.hh"

namespace zcomp {

struct SnapshotParams
{
    double sparsity = 0.53;     //!< fraction of exact zeros
    double negFraction = 0.05;  //!< fraction of (non-zero) negatives
    double meanZeroRun = 6.0;   //!< mean length of zero runs (elements)
    double scale = 1.0;         //!< magnitude scale of non-zeros
};

/** Fill buf[0..n) with snapshot-statistics activation data. */
void fillActivations(float *buf, size_t n, const SnapshotParams &params,
                     Rng &rng);

/** Convenience: allocate and fill a vector. */
std::vector<float> makeActivations(size_t n, const SnapshotParams &params,
                                   uint64_t seed);

/** Measured fraction of exact zeros in a buffer. */
double measuredSparsity(const float *buf, size_t n);

} // namespace zcomp

#endif // ZCOMP_WORKLOAD_SNAPSHOT_HH
