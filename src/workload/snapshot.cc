#include "workload/snapshot.hh"

#include <cmath>

#include "common/log.hh"

namespace zcomp {

void
fillActivations(float *buf, size_t n, const SnapshotParams &params,
                Rng &rng)
{
    double s = params.sparsity;
    fatal_if(s < 0.0 || s > 1.0, "sparsity %f out of range", s);

    if (s >= 1.0) {
        for (size_t i = 0; i < n; i++)
            buf[i] = 0.0f;
        return;
    }

    // Two-state Markov chain: P(zero->nonzero) = 1/L keeps zero runs
    // at mean length L; P(nonzero->zero) follows from the stationary
    // distribution pi(zero) = s.
    double leave_zero = 1.0 / std::max(1.0, params.meanZeroRun);
    double enter_zero =
        s >= 1.0 ? 1.0
                 : std::min(1.0, leave_zero * s / std::max(1e-9, 1.0 - s));

    bool in_zero = rng.chance(s);
    for (size_t i = 0; i < n; i++) {
        if (in_zero) {
            buf[i] = 0.0f;
            if (rng.chance(leave_zero))
                in_zero = false;
        } else {
            double mag = std::fabs(rng.gaussian()) * params.scale + 1e-3;
            bool neg = rng.chance(params.negFraction);
            buf[i] = static_cast<float>(neg ? -mag : mag);
            if (rng.chance(enter_zero))
                in_zero = true;
        }
    }
}

std::vector<float>
makeActivations(size_t n, const SnapshotParams &params, uint64_t seed)
{
    std::vector<float> v(n);
    Rng rng(seed);
    fillActivations(v.data(), n, params, rng);
    return v;
}

double
measuredSparsity(const float *buf, size_t n)
{
    if (n == 0)
        return 0.0;
    size_t zeros = 0;
    for (size_t i = 0; i < n; i++) {
        if (buf[i] == 0.0f)
            zeros++;
    }
    return static_cast<double>(zeros) / static_cast<double>(n);
}

} // namespace zcomp
