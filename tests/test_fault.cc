/** @file Unit tests for the FaultInjector and the SimError hierarchy. */

#include <gtest/gtest.h>

#include "common/error.hh"
#include "common/fault.hh"

using namespace zcomp;

TEST(Fault, DisabledByDefault)
{
    FaultInjector fi;
    EXPECT_FALSE(fi.enabled());
    EXPECT_FALSE(fi.shouldInject(faultsite::KernelTransient));
    EXPECT_NO_THROW(fi.maybeInject(faultsite::KernelTransient));
    EXPECT_EQ(fi.spec(), "");
    EXPECT_EQ(fi.totalInjected(), 0u);
}

TEST(Fault, EmptySpecStaysDisabled)
{
    FaultInjector fi;
    fi.configure("");
    EXPECT_FALSE(fi.enabled());
}

TEST(Fault, EmptySpecDisarmsEarlierConfig)
{
    // Regression: configure("") used to return early and leave the
    // previously armed sites live, contradicting "an empty spec
    // disables injection".
    FaultInjector fi;
    fi.configure("kernel.transient:1");
    EXPECT_TRUE(fi.enabled());
    fi.configure("");
    EXPECT_FALSE(fi.enabled());
    EXPECT_FALSE(fi.shouldInject(faultsite::KernelTransient));
    EXPECT_EQ(fi.spec(), "");
}

TEST(Fault, ConfigureReplacesNotMerges)
{
    FaultInjector fi;
    fi.configure("kernel.transient:1");
    fi.configure("dram.bitflip:1");
    EXPECT_FALSE(fi.shouldInject(faultsite::KernelTransient));
    EXPECT_TRUE(fi.shouldInject(faultsite::DramBitflip));
    EXPECT_EQ(fi.spec(), "dram.bitflip:1");
}

TEST(Fault, ProbabilityOneAlwaysFires)
{
    FaultInjector fi;
    fi.configure("kernel.transient:1");
    EXPECT_TRUE(fi.enabled());
    for (int i = 0; i < 10; i++)
        EXPECT_TRUE(fi.shouldInject(faultsite::KernelTransient));
    EXPECT_EQ(fi.injected(faultsite::KernelTransient), 10u);
    EXPECT_EQ(fi.totalInjected(), 10u);
}

TEST(Fault, ProbabilityZeroNeverFires)
{
    FaultInjector fi;
    fi.configure("dram.bitflip:0");
    EXPECT_TRUE(fi.enabled());
    for (int i = 0; i < 1000; i++)
        EXPECT_FALSE(fi.shouldInject(faultsite::DramBitflip));
    EXPECT_EQ(fi.injected(faultsite::DramBitflip), 0u);
}

TEST(Fault, UnconfiguredSiteNeverFires)
{
    FaultInjector fi;
    fi.configure("kernel.transient:1");
    EXPECT_FALSE(fi.shouldInject(faultsite::DramBitflip));
}

TEST(Fault, SameSeedSameDecisionSequence)
{
    auto decisions = [](const std::string &spec) {
        FaultInjector fi;
        fi.configure(spec);
        std::vector<bool> out;
        for (int i = 0; i < 200; i++)
            out.push_back(fi.shouldInject(faultsite::ZcompHeader));
        return out;
    };
    EXPECT_EQ(decisions("zcomp.header:0.3:42"),
              decisions("zcomp.header:0.3:42"));
    EXPECT_NE(decisions("zcomp.header:0.3:42"),
              decisions("zcomp.header:0.3:43"));
}

TEST(Fault, MaxCapsInjections)
{
    FaultInjector fi;
    fi.configure("kernel.transient:1:7:2");
    EXPECT_TRUE(fi.shouldInject(faultsite::KernelTransient));
    EXPECT_TRUE(fi.shouldInject(faultsite::KernelTransient));
    for (int i = 0; i < 10; i++)
        EXPECT_FALSE(fi.shouldInject(faultsite::KernelTransient));
    EXPECT_EQ(fi.injected(faultsite::KernelTransient), 2u);
}

TEST(Fault, MaybeInjectThrowsTypedError)
{
    FaultInjector fi;
    fi.configure("kernel.transient:1");
    try {
        fi.maybeInject(faultsite::KernelTransient);
        FAIL() << "maybeInject did not throw";
    } catch (const FaultInjected &e) {
        EXPECT_EQ(e.site(), faultsite::KernelTransient);
        EXPECT_STREQ(e.kind(), "fault");
        EXPECT_NE(std::string(e.what()).find("kernel.transient"),
                  std::string::npos);
    }
}

TEST(Fault, SpecCanonicalForm)
{
    FaultInjector fi;
    fi.configure("zcomp.header:0.5,kernel.transient:1:7:2");
    // Sites are kept in name order; optional fields only appear when
    // they were given.
    EXPECT_EQ(fi.spec(), "kernel.transient:1:7:2,zcomp.header:0.5");
}

TEST(Fault, MultiSiteSpecArmsEachSite)
{
    FaultInjector fi;
    fi.configure("dram.bitflip:1,zcomp.stream.truncate:1");
    EXPECT_TRUE(fi.shouldInject(faultsite::DramBitflip));
    EXPECT_TRUE(fi.shouldInject(faultsite::StreamTruncate));
    EXPECT_FALSE(fi.shouldInject(faultsite::KernelTransient));
}

TEST(Fault, ToJsonReportsFiredSitesOnly)
{
    FaultInjector fi;
    fi.configure("kernel.transient:1,dram.bitflip:0");
    fi.shouldInject(faultsite::KernelTransient);
    fi.shouldInject(faultsite::KernelTransient);
    fi.shouldInject(faultsite::DramBitflip);
    Json j = fi.toJson();
    ASSERT_TRUE(j.isObject());
    EXPECT_EQ(j["spec"].asString(),
              "dram.bitflip:0,kernel.transient:1");
    const Json &inj = j["injected"];
    EXPECT_EQ(inj.size(), 1u);
    ASSERT_NE(inj.find("kernel.transient"), nullptr);
    EXPECT_EQ(inj.find("kernel.transient")->asUint(), 2u);
    EXPECT_EQ(inj.find("dram.bitflip"), nullptr);
}

TEST(Fault, ResetDisablesAndClears)
{
    FaultInjector fi;
    fi.configure("kernel.transient:1");
    fi.shouldInject(faultsite::KernelTransient);
    fi.reset();
    EXPECT_FALSE(fi.enabled());
    EXPECT_EQ(fi.totalInjected(), 0u);
    EXPECT_EQ(fi.spec(), "");
}

TEST(Fault, ReconfigureResetsSiteCounts)
{
    FaultInjector fi;
    fi.configure("kernel.transient:1");
    fi.shouldInject(faultsite::KernelTransient);
    fi.configure("kernel.transient:1");
    EXPECT_EQ(fi.injected(faultsite::KernelTransient), 0u);
}

TEST(FaultDeath, UnknownSiteIsFatal)
{
    FaultInjector fi;
    EXPECT_DEATH(fi.configure("no.such.site:1"), "unknown fault site");
}

TEST(FaultDeath, MalformedEntriesAreFatal)
{
    EXPECT_DEATH(FaultInjector().configure("kernel.transient"),
                 "site:prob");
    EXPECT_DEATH(FaultInjector().configure("kernel.transient:1.5"),
                 "not in \\[0, 1\\]");
    EXPECT_DEATH(FaultInjector().configure("kernel.transient:-0.5"),
                 "not in \\[0, 1\\]");
    EXPECT_DEATH(FaultInjector().configure("kernel.transient:x"),
                 "not in \\[0, 1\\]");
    EXPECT_DEATH(FaultInjector().configure("kernel.transient:1:abc"),
                 "not a non-negative integer");
    EXPECT_DEATH(FaultInjector().configure("kernel.transient:1:1:1:1"),
                 "site:prob");
}

TEST(Fault, ProbabilityConvergesOnFrequency)
{
    FaultInjector fi;
    fi.configure("dram.bitflip:0.25:99");
    int fired = 0;
    for (int i = 0; i < 10000; i++)
        fired += fi.shouldInject(faultsite::DramBitflip);
    EXPECT_NEAR(fired / 10000.0, 0.25, 0.02);
}

TEST(Error, DecodeErrorBumpsGlobalCounter)
{
    uint64_t before = decodeErrorCount();
    try {
        decodeError("synthetic decode failure %d", 7);
        FAIL() << "decodeError did not throw";
    } catch (const DecodeError &e) {
        EXPECT_STREQ(e.kind(), "decode");
        EXPECT_STREQ(e.what(), "synthetic decode failure 7");
    }
    EXPECT_EQ(decodeErrorCount(), before + 1);
}

TEST(Error, HierarchyCatchableAsSimError)
{
    try {
        throw CellAbort("done for");
    } catch (const SimError &e) {
        EXPECT_STREQ(e.kind(), "abort");
    }
    try {
        throw FaultInjected("dram.bitflip", "zap");
    } catch (const SimError &e) {
        EXPECT_STREQ(e.kind(), "fault");
    }
}

TEST(Error, FaultStatsJsonIncludesDecodeErrors)
{
    FaultInjector::global().reset();
    resetDecodeErrorCount();
    try {
        decodeError("one synthetic error");
    } catch (const DecodeError &) {
    }
    Json j = faultStatsJson();
    ASSERT_NE(j.find("decodeErrors"), nullptr);
    EXPECT_EQ(j.find("decodeErrors")->asUint(), 1u);
    resetDecodeErrorCount();
}
