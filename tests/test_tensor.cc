/** @file Unit tests for tensors and GEMM/im2col primitives. */

#include <gtest/gtest.h>

#include "dnn/gemm.hh"
#include "dnn/im2col.hh"
#include "dnn/tensor.hh"

using namespace zcomp;

TEST(TensorShape, ElemsAndBytes)
{
    TensorShape s{2, 3, 4, 5};
    EXPECT_EQ(s.elems(), 120u);
    EXPECT_EQ(s.bytes(), 480u);
    EXPECT_EQ(s.str(), "2x3x4x5");
}

TEST(Tensor, NchwIndexing)
{
    VSpace vs;
    Tensor t(vs, "t", {2, 3, 4, 5}, AllocClass::FeatureMap);
    t.at(1, 2, 3, 4) = 42.0f;
    // NCHW: offset = ((n*C + c)*H + h)*W + w.
    EXPECT_FLOAT_EQ(t.data()[((1 * 3 + 2) * 4 + 3) * 5 + 4], 42.0f);
    EXPECT_FLOAT_EQ(t.at(1, 2, 3, 4), 42.0f);
}

TEST(Tensor, SparsityAndZero)
{
    VSpace vs;
    Tensor t(vs, "t", {1, 1, 1, 8}, AllocClass::FeatureMap);
    EXPECT_DOUBLE_EQ(t.sparsity(), 1.0);
    t.data()[0] = 1.0f;
    t.data()[5] = -1.0f;
    EXPECT_DOUBLE_EQ(t.sparsity(), 0.75);
    t.zero();
    EXPECT_DOUBLE_EQ(t.sparsity(), 1.0);
}

TEST(Tensor, SimulatedAddresses)
{
    VSpace vs;
    Tensor t(vs, "t", {1, 1, 1, 16}, AllocClass::FeatureMap);
    EXPECT_EQ(t.addrAt(4), t.addrAt(0) + 16);
}

TEST(Gemm, SmallKnownProduct)
{
    // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
    float a[] = {1, 2, 3, 4};
    float b[] = {5, 6, 7, 8};
    float c[4];
    gemm(2, 2, 2, a, b, c);
    EXPECT_FLOAT_EQ(c[0], 19);
    EXPECT_FLOAT_EQ(c[1], 22);
    EXPECT_FLOAT_EQ(c[2], 43);
    EXPECT_FLOAT_EQ(c[3], 50);
}

TEST(Gemm, BetaAccumulates)
{
    float a[] = {1, 0, 0, 1};
    float b[] = {1, 2, 3, 4};
    float c[] = {10, 10, 10, 10};
    gemm(2, 2, 2, a, b, c, 1.0f);
    EXPECT_FLOAT_EQ(c[0], 11);
    EXPECT_FLOAT_EQ(c[3], 14);
}

TEST(Gemm, TransposedVariantsAgree)
{
    // Random small matrices; check A^T B and A B^T against gemm on
    // explicitly transposed inputs.
    const size_t m = 3, n = 4, k = 5;
    float a[m * k], at[k * m], b[k * n], bt[n * k];
    for (size_t i = 0; i < m * k; i++)
        a[i] = static_cast<float>(i % 7) - 3;
    for (size_t i = 0; i < k * n; i++)
        b[i] = static_cast<float>(i % 5) - 2;
    for (size_t i = 0; i < m; i++)
        for (size_t p = 0; p < k; p++)
            at[p * m + i] = a[i * k + p];
    for (size_t p = 0; p < k; p++)
        for (size_t j = 0; j < n; j++)
            bt[j * k + p] = b[p * n + j];

    float ref[m * n], c1[m * n], c2[m * n];
    gemm(m, n, k, a, b, ref);
    gemmAtB(m, n, k, at, b, c1);
    gemmABt(m, n, k, a, bt, c2);
    for (size_t i = 0; i < m * n; i++) {
        EXPECT_FLOAT_EQ(c1[i], ref[i]);
        EXPECT_FLOAT_EQ(c2[i], ref[i]);
    }
}

TEST(Im2col, IdentityKernelIsCopy)
{
    // 1x1 kernel, stride 1, no pad: cols == img.
    ConvGeom g;
    g.cin = 2;
    g.hin = 3;
    g.win = 3;
    float img[18];
    for (int i = 0; i < 18; i++)
        img[i] = static_cast<float>(i);
    float cols[18];
    im2col(g, img, cols);
    for (int i = 0; i < 18; i++)
        EXPECT_FLOAT_EQ(cols[i], img[i]);
}

TEST(Im2col, PaddingProducesZeros)
{
    ConvGeom g;
    g.cin = 1;
    g.hin = 2;
    g.win = 2;
    g.kh = 3;
    g.kw = 3;
    g.pad = 1;
    EXPECT_EQ(g.hout(), 2);
    EXPECT_EQ(g.wout(), 2);
    float img[] = {1, 2, 3, 4};
    float cols[9 * 4];
    im2col(g, img, cols);
    // Patch row (ky=0, kx=0) for output (0,0) samples img(-1,-1) -> 0.
    EXPECT_FLOAT_EQ(cols[0], 0.0f);
    // Center patch row (ky=1, kx=1) equals the image itself.
    EXPECT_FLOAT_EQ(cols[4 * 4 + 0], 1.0f);
    EXPECT_FLOAT_EQ(cols[4 * 4 + 3], 4.0f);
}

TEST(Im2col, StrideSkipsPositions)
{
    ConvGeom g;
    g.cin = 1;
    g.hin = 4;
    g.win = 4;
    g.kh = 2;
    g.kw = 2;
    g.stride = 2;
    EXPECT_EQ(g.hout(), 2);
    EXPECT_EQ(g.outPixels(), 4u);
}

TEST(Im2col, Col2imIsAdjoint)
{
    // <im2col(x), y> == <x, col2im(y)> for random x, y - the defining
    // property that makes the conv backward pass correct.
    ConvGeom g;
    g.cin = 2;
    g.hin = 5;
    g.win = 4;
    g.kh = 3;
    g.kw = 3;
    g.stride = 2;
    g.pad = 1;
    size_t img_elems = static_cast<size_t>(g.cin) * g.hin * g.win;
    size_t col_elems = g.patchRows() * g.outPixels();

    std::vector<float> x(img_elems), y(col_elems);
    for (size_t i = 0; i < img_elems; i++)
        x[i] = static_cast<float>((i * 7) % 11) - 5;
    for (size_t i = 0; i < col_elems; i++)
        y[i] = static_cast<float>((i * 3) % 13) - 6;

    std::vector<float> ax(col_elems);
    im2col(g, x.data(), ax.data());
    std::vector<float> aty(img_elems, 0.0f);
    col2im(g, y.data(), aty.data());

    double lhs = 0, rhs = 0;
    for (size_t i = 0; i < col_elems; i++)
        lhs += static_cast<double>(ax[i]) * y[i];
    for (size_t i = 0; i < img_elems; i++)
        rhs += static_cast<double>(x[i]) * aty[i];
    EXPECT_NEAR(lhs, rhs, 1e-3);
}
