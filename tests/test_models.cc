/**
 * @file
 * Tests for the five-network model zoo: shapes, parameter scale, and
 * forward/backward smoke runs at tiny configurations.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "dnn/models.hh"

using namespace zcomp;

namespace {

ModelOptions
tinyOpts(ModelId id)
{
    ModelOptions opt;
    opt.batch = 1;
    opt.classes = 10;
    opt.fcWidth = 64;
    opt.widthScale = 0.25;
    // Shrink the big ImageNet models for smoke tests; ResNet-32 and
    // Inception-ResNet keep their native sizes (already small-ish).
    switch (id) {
      case ModelId::AlexNet:
        opt.imageSize = 67;     // (67-11)/4+1 = 15
        break;
      case ModelId::GoogLeNet:
      case ModelId::Vgg16:
        opt.imageSize = 64;
        break;
      default:
        break;
    }
    return opt;
}

} // namespace

class ModelZoo : public ::testing::TestWithParam<int>
{
};

TEST_P(ModelZoo, BuildsForwardAndTrains)
{
    auto id = static_cast<ModelId>(GetParam());
    VSpace vs;
    auto net = buildModel(id, vs, tinyOpts(id));
    net->build(true, 11);
    Rng rng(12);
    net->fillSyntheticInput(rng);
    net->forward();

    // Output is a valid probability distribution.
    const Tensor &p = *net->node(net->outputNode()).act;
    double sum = 0;
    for (size_t i = 0; i < p.elems(); i++) {
        EXPECT_GE(p.data()[i], 0.0f);
        EXPECT_FALSE(std::isnan(p.data()[i]));
        sum += p.data()[i];
    }
    EXPECT_NEAR(sum, 1.0, 1e-4);

    // One full train step runs without blowing up.
    std::vector<int> labels(1, 3);
    double loss = net->lossAndBackward(labels);
    EXPECT_GT(loss, 0.0);
    EXPECT_FALSE(std::isnan(loss));
    net->sgdStep(0.001f);
}

TEST_P(ModelZoo, ReluSparsityInPaperRange)
{
    auto id = static_cast<ModelId>(GetParam());
    VSpace vs;
    auto net = buildModel(id, vs, tinyOpts(id));
    net->build(false, 13);
    Rng rng(14);
    net->fillSyntheticInput(rng);
    net->forward();

    // Average sparsity across ReLU outputs: the paper reports 49-63%
    // per network; He-initialized nets sit near 50%.
    double sum = 0;
    int count = 0;
    for (size_t i = 1; i < net->numNodes(); i++) {
        if (net->node(static_cast<int>(i)).layer->kind() ==
            LayerKind::Relu) {
            sum += net->node(static_cast<int>(i)).act->sparsity();
            count++;
        }
    }
    ASSERT_GT(count, 0);
    double avg = sum / count;
    EXPECT_GT(avg, 0.35) << modelName(id);
    EXPECT_LT(avg, 0.75) << modelName(id);
}

INSTANTIATE_TEST_SUITE_P(AllModels, ModelZoo,
                         ::testing::Range(0, numModels));

TEST(ModelZoo, LayerCountsMatchTopologies)
{
    VSpace vs;
    ModelOptions opt = tinyOpts(ModelId::Vgg16);
    auto vgg = buildVgg16(vs, opt);
    int convs = 0, fcs = 0, pools = 0;
    for (size_t i = 0; i < vgg->numNodes(); i++) {
        switch (vgg->node(static_cast<int>(i)).layer->kind()) {
          case LayerKind::Conv:
            convs++;
            break;
          case LayerKind::Fc:
            fcs++;
            break;
          case LayerKind::MaxPool:
            pools++;
            break;
          default:
            break;
        }
    }
    EXPECT_EQ(convs, 13);   // VGG-16 = 13 convs + 3 FCs
    EXPECT_EQ(fcs, 3);
    EXPECT_EQ(pools, 5);
}

TEST(ModelZoo, GoogleNetHasNineInceptionModules)
{
    VSpace vs;
    auto net = buildGoogleNet(vs, tinyOpts(ModelId::GoogLeNet));
    int concats = 0;
    for (size_t i = 0; i < net->numNodes(); i++) {
        if (net->node(static_cast<int>(i)).layer->kind() ==
            LayerKind::Concat) {
            concats++;
        }
    }
    EXPECT_EQ(concats, 9);
}

TEST(ModelZoo, Resnet32HasThirtyThreeConvsInMainPath)
{
    // 1 stem + 15 blocks x 2 convs + 2 projection shortcuts = 33 convs
    // (the "32" counts stem + 30 block convs + the final FC).
    VSpace vs;
    auto net = buildResnet32(vs, tinyOpts(ModelId::Resnet32));
    int convs = 0, adds = 0;
    for (size_t i = 0; i < net->numNodes(); i++) {
        auto kind = net->node(static_cast<int>(i)).layer->kind();
        if (kind == LayerKind::Conv)
            convs++;
        if (kind == LayerKind::EltwiseAdd)
            adds++;
    }
    EXPECT_EQ(adds, 15);    // 3 stages x 5 blocks
    EXPECT_EQ(convs, 1 + 30 + 2);
}

TEST(ModelZoo, WeightsDominatedByFcInVggStyle)
{
    // Figure 1(b): weight data is only dominant in the FC layers.
    VSpace vs;
    ModelOptions opt = tinyOpts(ModelId::Vgg16);
    auto net = buildVgg16(vs, opt);
    net->build(false, 15);
    uint64_t conv_w = 0, fc_w = 0;
    for (size_t i = 0; i < net->numNodes(); i++) {
        const auto &node = net->node(static_cast<int>(i));
        if (node.layer->kind() == LayerKind::Conv)
            conv_w += node.layer->weightBytes();
        if (node.layer->kind() == LayerKind::Fc)
            fc_w += node.layer->weightBytes();
    }
    EXPECT_GT(fc_w, 0u);
    EXPECT_GT(conv_w, 0u);
}

TEST(ModelZoo, NativeSizes)
{
    EXPECT_EQ(nativeImageSize(ModelId::AlexNet), 227);
    EXPECT_EQ(nativeImageSize(ModelId::Vgg16), 224);
    EXPECT_EQ(nativeImageSize(ModelId::Resnet32), 32);
    EXPECT_EQ(nativeImageSize(ModelId::InceptionResnetV2), 149);
}
