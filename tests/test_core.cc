/** @file Unit tests for the core timing model. */

#include <gtest/gtest.h>

#include "cpu/core.hh"

using namespace zcomp;

namespace {

ArchConfig
cfg1core()
{
    ArchConfig cfg;
    cfg.numCores = 1;
    cfg.prefetch.l1IpStride = false;
    cfg.prefetch.l2Stream = false;
    return cfg;
}

/** Run a trace to completion on core 0; returns the core. */
double
run(const ArchConfig &cfg, MemoryHierarchy &mem, const CoreTrace &trace,
    CycleBreakdown *bd = nullptr)
{
    CoreModel core(0, cfg, mem);
    core.startPhase(&trace, 0.0);
    while (!core.done())
        core.step();
    if (bd)
        *bd = core.breakdown();
    return core.time();
}

} // namespace

TEST(Core, PureIssueCostsUopsOverWidth)
{
    ArchConfig cfg = cfg1core();
    MemoryHierarchy mem(cfg);
    CoreTrace t;
    for (int i = 0; i < 100; i++)
        t.push_back(TraceOp::issue(4));
    CycleBreakdown bd;
    double cycles = run(cfg, mem, t, &bd);
    EXPECT_NEAR(cycles, 100.0, 1e-9);   // 4 uops / 4-wide = 1 cyc each
    EXPECT_NEAR(bd.compute, 100.0, 1e-9);
    EXPECT_NEAR(bd.memory, 0.0, 1e-9);
}

TEST(Core, L1HitLoadsDoNotStall)
{
    ArchConfig cfg = cfg1core();
    MemoryHierarchy mem(cfg);
    // Warm one line.
    mem.access(0, 0x1000, 64, false, 0.0, 1);
    CoreTrace t;
    for (int i = 0; i < 100; i++)
        t.push_back(TraceOp::load(0x1000, 64, 4, 1));
    CycleBreakdown bd;
    double cycles = run(cfg, mem, t, &bd);
    EXPECT_NEAR(cycles, 100.0, 2.0);    // issue-bound
    EXPECT_LT(bd.memory, 1.0);
}

TEST(Core, IndependentMissesOverlapUpToMshrs)
{
    ArchConfig cfg = cfg1core();
    cfg.core.mshrs = 8;
    MemoryHierarchy mem(cfg);
    // 64 independent cold misses to distinct lines.
    CoreTrace t;
    for (int i = 0; i < 64; i++) {
        t.push_back(TraceOp::load(0x100000 + static_cast<Addr>(i) * 64,
                                  64, 1, 1));
    }
    double cycles = run(cfg, mem, t);
    // Perfect MLP of 8 over ~150-cycle misses -> around 64/8 * latency,
    // far less than the serialized 64 * 150.
    EXPECT_LT(cycles, 64.0 * 150.0 / 4.0);
    EXPECT_GT(cycles, 150.0);   // but at least one full miss latency
}

TEST(Core, DependentChainSerializes)
{
    ArchConfig cfg = cfg1core();
    MemoryHierarchy mem(cfg);
    // Warm lines so loads are L1 hits, then chain them on stream 0:
    // each load waits for the previous completion + chainLat.
    for (int i = 0; i < 32; i++)
        mem.access(0, 0x1000 + static_cast<Addr>(i) * 64, 64, false,
                   0.0, 1);
    CoreTrace t;
    for (int i = 0; i < 32; i++) {
        TraceOp op = TraceOp::load(0x1000 + static_cast<Addr>(i) * 64,
                                   64, 1, 1);
        op.stream = 0;
        op.chainLat = 2;
        t.push_back(op);
    }
    CycleBreakdown bd;
    double cycles = run(cfg, mem, t, &bd);
    // Each link costs ~ L1 latency (4) + chain (2) = 6 cycles.
    EXPECT_GT(cycles, 32.0 * 5.0);
    EXPECT_GT(bd.memory, bd.compute);
}

TEST(Core, IndependentStreamsBreakTheChain)
{
    ArchConfig cfg = cfg1core();
    MemoryHierarchy mem(cfg);
    for (int i = 0; i < 32; i++)
        mem.access(0, 0x1000 + static_cast<Addr>(i) * 64, 64, false,
                   0.0, 1);
    // Same loads spread over 4 streams (sub-block unrolling).
    CoreTrace t;
    for (int i = 0; i < 32; i++) {
        TraceOp op = TraceOp::load(0x1000 + static_cast<Addr>(i) * 64,
                                   64, 1, 1);
        op.stream = static_cast<int8_t>(i % 4);
        op.chainLat = 2;
        t.push_back(op);
    }
    double chained4 = run(cfg, mem, t);

    MemoryHierarchy mem2(cfg);
    for (int i = 0; i < 32; i++)
        mem2.access(0, 0x1000 + static_cast<Addr>(i) * 64, 64, false,
                    0.0, 1);
    CoreTrace t1;
    for (int i = 0; i < 32; i++) {
        TraceOp op = TraceOp::load(0x1000 + static_cast<Addr>(i) * 64,
                                   64, 1, 1);
        op.stream = 0;
        op.chainLat = 2;
        t1.push_back(op);
    }
    double chained1 = run(cfg, mem2, t1);
    EXPECT_LT(chained4, 0.5 * chained1);
}

TEST(Core, ZcompUnitThroughputLimits)
{
    ArchConfig cfg = cfg1core();
    MemoryHierarchy mem(cfg);
    for (int i = 0; i < 64; i++)
        mem.access(0, 0x1000 + static_cast<Addr>(i) * 64, 64, false,
                   0.0, 1);
    // 1-uop zcomp ops would issue at 4/cycle, but the zcomp unit only
    // accepts 1 per cycle.
    CoreTrace t;
    for (int i = 0; i < 64; i++) {
        TraceOp op = TraceOp::store(0x1000 + static_cast<Addr>(i) * 64,
                                    64, 1, 1);
        op.zcompUnit = true;
        t.push_back(op);
    }
    double cycles = run(cfg, mem, t);
    EXPECT_GE(cycles, 63.0);
}

TEST(Core, StoreBufferAbsorbsStoresUntilFull)
{
    ArchConfig cfg = cfg1core();
    cfg.core.storeBuffer = 4;
    MemoryHierarchy mem(cfg);
    // Cold store misses go to DRAM; with a 4-entry buffer the core
    // must eventually stall on them.
    CoreTrace t;
    for (int i = 0; i < 64; i++) {
        t.push_back(TraceOp::store(
            0x200000 + static_cast<Addr>(i) * 64, 64, 1, 2));
    }
    CycleBreakdown bd;
    run(cfg, mem, t, &bd);
    EXPECT_GT(bd.memory, 0.0);
}

TEST(Core, DrainChargesTrailingLatencyToMemory)
{
    ArchConfig cfg = cfg1core();
    MemoryHierarchy mem(cfg);
    CoreTrace t;
    t.push_back(TraceOp::load(0x300000, 64, 1, 1));     // one cold miss
    CycleBreakdown bd;
    double cycles = run(cfg, mem, t, &bd);
    EXPECT_GT(cycles, 100.0);           // full DRAM latency at drain
    EXPECT_GT(bd.memory, 100.0);
}

TEST(Core, SyncToAccumulatesSyncStall)
{
    ArchConfig cfg = cfg1core();
    MemoryHierarchy mem(cfg);
    CoreModel core(0, cfg, mem);
    CoreTrace t;
    core.startPhase(&t, 0.0);
    while (!core.done())
        core.step();
    core.syncTo(500.0);
    EXPECT_DOUBLE_EQ(core.time(), 500.0);
    EXPECT_DOUBLE_EQ(core.breakdown().sync, 500.0);
}
