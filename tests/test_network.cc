/** @file Integration tests for the Network DAG: training, footprints. */

#include <gtest/gtest.h>

#include "dnn/layers/activation.hh"
#include "dnn/layers/conv.hh"
#include "dnn/layers/fc.hh"
#include "dnn/layers/norm.hh"
#include "dnn/layers/pool.hh"
#include "dnn/layers/structure.hh"
#include "dnn/network.hh"

using namespace zcomp;

namespace {

/** Tiny convnet: conv-relu-pool-fc-softmax on 8x8x2 inputs. */
std::unique_ptr<Network>
tinyNet(VSpace &vs, int batch, int classes = 4)
{
    auto net = std::make_unique<Network>(
        "tiny", vs, TensorShape{batch, 2, 8, 8});
    net->add(std::make_unique<ConvLayer>("conv1", 4, 3, 3, 1, 1));
    net->add(std::make_unique<ReluLayer>("relu1"));
    net->add(std::make_unique<PoolLayer>("pool1", LayerKind::MaxPool, 2,
                                         2));
    net->add(std::make_unique<FcLayer>("fc", classes));
    net->add(std::make_unique<SoftmaxLayer>("prob"));
    return net;
}

/** Tiny residual net exercising multi-consumer gradient accumulation. */
std::unique_ptr<Network>
tinyResNet(VSpace &vs, int batch)
{
    auto net = std::make_unique<Network>(
        "tinyres", vs, TensorShape{batch, 4, 6, 6});
    int stem = net->add(std::make_unique<ConvLayer>("stem", 4, 3, 3, 1,
                                                    1),
                        {0});
    int r = net->add(std::make_unique<ReluLayer>("relu0"), {stem});
    int c1 = net->add(std::make_unique<ConvLayer>("c1", 4, 3, 3, 1, 1),
                      {r});
    int sum = net->add(std::make_unique<EltwiseAddLayer>("add"),
                       {c1, r});
    int r2 = net->add(std::make_unique<ReluLayer>("relu1"), {sum});
    int fc = net->add(std::make_unique<FcLayer>("fc", 3), {r2});
    net->add(std::make_unique<SoftmaxLayer>("prob"), {fc});
    return net;
}

} // namespace

TEST(Network, ShapesInferredThroughChain)
{
    VSpace vs;
    auto net = tinyNet(vs, 2);
    net->build(false);
    EXPECT_EQ(net->node(1).shape, (TensorShape{2, 4, 8, 8}));
    EXPECT_EQ(net->node(3).shape, (TensorShape{2, 4, 4, 4}));
    EXPECT_EQ(net->node(net->outputNode()).shape,
              (TensorShape{2, 4, 1, 1}));
}

TEST(Network, ForwardProducesProbabilities)
{
    VSpace vs;
    auto net = tinyNet(vs, 2);
    net->build(false);
    Rng rng(1);
    net->fillSyntheticInput(rng);
    net->forward();
    const Tensor &p = *net->node(net->outputNode()).act;
    for (int n = 0; n < 2; n++) {
        double sum = 0;
        for (int c = 0; c < 4; c++)
            sum += p.data()[n * 4 + c];
        EXPECT_NEAR(sum, 1.0, 1e-5);
    }
}

TEST(Network, ReluOutputsAreSparse)
{
    VSpace vs;
    auto net = tinyNet(vs, 4);
    net->build(false);
    Rng rng(2);
    net->fillSyntheticInput(rng);
    net->forward();
    // The ReLU node's output should be roughly half zeros.
    double s = net->node(2).act->sparsity();
    EXPECT_GT(s, 0.3);
    EXPECT_LT(s, 0.7);
}

TEST(Network, TrainingReducesLoss)
{
    VSpace vs;
    auto net = tinyNet(vs, 8);
    net->build(true, 7);
    Rng rng(3);
    net->fillSyntheticInput(rng);
    std::vector<int> labels = {0, 1, 2, 3, 0, 1, 2, 3};

    net->forward();
    double first = net->lossAndBackward(labels);
    net->sgdStep(0.05f);
    double last = first;
    for (int step = 0; step < 20; step++) {
        net->forward();
        last = net->lossAndBackward(labels);
        net->sgdStep(0.05f);
    }
    EXPECT_LT(last, first * 0.8);
}

TEST(Network, ResidualGradientAccumulation)
{
    // The relu0 node feeds both c1 and the skip add: its gradient is
    // the sum of both paths. Training must still reduce the loss.
    VSpace vs;
    auto net = tinyResNet(vs, 6);
    net->build(true, 8);
    Rng rng(4);
    net->fillSyntheticInput(rng);
    std::vector<int> labels = {0, 1, 2, 0, 1, 2};
    net->forward();
    double first = net->lossAndBackward(labels);
    for (int step = 0; step < 30; step++) {
        net->sgdStep(0.05f);
        net->forward();
    }
    double last = net->lossAndBackward(labels);
    EXPECT_LT(last, first);
}

TEST(Network, FootprintByClass)
{
    VSpace vs;
    auto net = tinyNet(vs, 2);
    net->build(true);
    Network::Footprint f = net->footprint();
    EXPECT_EQ(f.inputBytes, 2u * 2 * 8 * 8 * 4);
    // conv weights 4*18+4, fc weights 4*64+4 floats.
    EXPECT_EQ(f.weightBytes, (4u * 18 + 4 + 4 * 64 + 4) * 4);
    EXPECT_GT(f.featureMapBytes, 0u);
    // Training build: every non-input node has a gradient map.
    EXPECT_EQ(f.gradientMapBytes, f.featureMapBytes);
}

TEST(Network, InferenceBuildHasNoGradients)
{
    VSpace vs;
    auto net = tinyNet(vs, 2);
    net->build(false);
    EXPECT_EQ(net->footprint().gradientMapBytes, 0u);
    EXPECT_EQ(net->gradient(1), nullptr);
}

TEST(Network, PlanOnlyBuildTracksFootprintWithoutHostMemory)
{
    VSpace vs(0x10000, /*allocate_host=*/false);
    auto net = tinyNet(vs, 64);     // "paper-scale" batch
    net->build(true);
    Network::Footprint f = net->footprint();
    EXPECT_GT(f.featureMapBytes, 0u);
    EXPECT_EQ(net->node(1).act->data(), nullptr);
}

TEST(Network, MacCount)
{
    VSpace vs;
    auto net = tinyNet(vs, 1);
    net->build(false);
    // conv: 4*8*8*18 = 4608; fc: 64*4 = 256.
    EXPECT_EQ(net->totalMacs(), 4608u + 256u);
}
