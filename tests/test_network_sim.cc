/**
 * @file
 * Integration tests for the full-network timing replay: the traffic
 * and speedup relationships of Figures 13/14 and the cycle breakdown
 * of Figure 2.
 */

#include <gtest/gtest.h>

#include "dnn/layers/activation.hh"
#include "dnn/layers/conv.hh"
#include "dnn/layers/fc.hh"
#include "dnn/layers/norm.hh"
#include "dnn/layers/pool.hh"
#include "dnn/network.hh"
#include "sim/network_sim.hh"

using namespace zcomp;

namespace {

/** Medium convnet whose feature maps exceed the private caches. */
std::unique_ptr<Network>
midNet(VSpace &vs, int batch)
{
    auto net = std::make_unique<Network>(
        "mid", vs, TensorShape{batch, 3, 64, 64});
    net->add(std::make_unique<ConvLayer>("conv1", 32, 3, 3, 1, 1));
    net->add(std::make_unique<ReluLayer>("relu1"));
    net->add(std::make_unique<ConvLayer>("conv2", 32, 3, 3, 1, 1));
    net->add(std::make_unique<ReluLayer>("relu2"));
    net->add(std::make_unique<PoolLayer>("pool1", LayerKind::MaxPool, 2,
                                         2));
    net->add(std::make_unique<ConvLayer>("conv3", 64, 3, 3, 1, 1));
    net->add(std::make_unique<ReluLayer>("relu3"));
    net->add(std::make_unique<FcLayer>("fc", 10));
    net->add(std::make_unique<SoftmaxLayer>("prob"));
    return net;
}

struct SimSetup
{
    std::unique_ptr<ExecContext> ctx;
    std::unique_ptr<Network> net;
    std::unique_ptr<NetworkSim> sim;
};

SimSetup
makeSetup(bool training, int batch = 8)
{
    SimSetup s;
    ArchConfig cfg;
    s.ctx = std::make_unique<ExecContext>(cfg);
    s.net = midNet(s.ctx->vs(), batch);
    s.net->build(training, 21);
    Rng rng(22);
    s.net->fillSyntheticInput(rng);
    s.net->forward();
    if (training) {
        std::vector<int> labels(static_cast<size_t>(batch));
        for (int i = 0; i < batch; i++)
            labels[static_cast<size_t>(i)] = i % 10;
        s.net->lossAndBackward(labels);
    }
    s.sim = std::make_unique<NetworkSim>(*s.ctx, *s.net);
    return s;
}

} // namespace

TEST(NetworkSim, PolicyNames)
{
    EXPECT_STREQ(ioPolicyName(IoPolicy::Uncompressed), "uncompressed");
    EXPECT_STREQ(ioPolicyName(IoPolicy::Avx512Comp), "avx512-comp");
    EXPECT_STREQ(ioPolicyName(IoPolicy::Zcomp), "zcomp");
}

TEST(NetworkSim, ProducesPerLayerStats)
{
    SimSetup s = makeSetup(false);
    NetworkSimConfig cfg;
    NetworkSimResult r = s.sim->run(cfg);
    // conv layers contribute three passes each, others one.
    EXPECT_GT(r.layers.size(), s.net->numNodes());
    EXPECT_GT(r.cycles(), 0.0);
    EXPECT_GT(r.trafficBytes(), 0u);
    for (const auto &lp : r.layers)
        EXPECT_FALSE(lp.backward);
}

TEST(NetworkSim, TrainingAddsBackwardPasses)
{
    SimSetup s = makeSetup(true);
    NetworkSimConfig cfg;
    NetworkSimResult r = s.sim->run(cfg);
    int bwd = 0;
    for (const auto &lp : r.layers)
        bwd += lp.backward;
    EXPECT_GT(bwd, 0);
    // Backward roughly doubles the work.
    SimSetup si = makeSetup(false);
    NetworkSimResult ri = si.sim->run(cfg);
    EXPECT_GT(r.cycles(), 1.5 * ri.cycles());
}

TEST(NetworkSim, CompressionReducesTraffic)
{
    // Figure 13: both schemes cut traffic; ZCOMP at least as much as
    // avx512-comp (which moves extra mask arrays).
    uint64_t traffic[numIoPolicies];
    for (int p = 0; p < numIoPolicies; p++) {
        SimSetup s = makeSetup(true);
        NetworkSimConfig cfg;
        cfg.policy = static_cast<IoPolicy>(p);
        traffic[p] = s.sim->run(cfg).trafficBytes();
    }
    EXPECT_LT(traffic[1], traffic[0]);
    EXPECT_LT(traffic[2], traffic[0]);
    // zcomp and avx512-comp move near-identical volumes (2-byte
    // headers vs 2-byte masks); allow a small tolerance either way.
    EXPECT_LE(traffic[2], static_cast<uint64_t>(1.05 * traffic[1]));
    // Reduction lands in a plausible band (paper: ~20-35%).
    double red = 1.0 - static_cast<double>(traffic[2]) / traffic[0];
    EXPECT_GT(red, 0.10);
    EXPECT_LT(red, 0.60);
}

TEST(NetworkSim, ZcompSpeedsUpTraining)
{
    // Figure 14: ZCOMP improves end-to-end training time vs the
    // uncompressed baseline.
    double cycles[numIoPolicies];
    for (int p = 0; p < numIoPolicies; p++) {
        SimSetup s = makeSetup(true);
        NetworkSimConfig cfg;
        cfg.policy = static_cast<IoPolicy>(p);
        cycles[p] = s.sim->run(cfg).cycles();
    }
    EXPECT_LT(cycles[2], cycles[0]);
    // avx512-comp must not beat zcomp (extra instruction overheads).
    EXPECT_LE(cycles[2], cycles[1] * 1.05);
}

TEST(NetworkSim, BreakdownHasAllThreeComponents)
{
    // Figure 2: compute, memory and sync all present.
    SimSetup s = makeSetup(true);
    NetworkSimConfig cfg;
    NetworkSimResult r = s.sim->run(cfg);
    EXPECT_GT(r.total.breakdown.compute, 0.0);
    EXPECT_GT(r.total.breakdown.memory, 0.0);
    EXPECT_GT(r.total.breakdown.sync, 0.0);
    // Memory stalls are a significant but not dominant fraction
    // (paper: 24-41% for the five DNNs).
    double mem_frac = r.total.breakdown.memory /
                      r.total.breakdown.total();
    EXPECT_GT(mem_frac, 0.05);
    EXPECT_LT(mem_frac, 0.9);
}

TEST(NetworkSim, DeterministicAcrossRuns)
{
    SimSetup s = makeSetup(false);
    NetworkSimConfig cfg;
    cfg.policy = IoPolicy::Zcomp;
    NetworkSimResult a = s.sim->run(cfg);
    NetworkSimResult b = s.sim->run(cfg);
    EXPECT_DOUBLE_EQ(a.cycles(), b.cycles());
    EXPECT_EQ(a.trafficBytes(), b.trafficBytes());
}

TEST(NetworkSim, InferenceBenefitSmallerThanTraining)
{
    // Figure 13/14: inference reductions are smaller than training
    // (no gradient maps, weight transfers dominate more).
    auto reduction = [](bool training) {
        uint64_t t[2];
        for (int p = 0; p < 2; p++) {
            SimSetup s = makeSetup(training);
            NetworkSimConfig cfg;
            cfg.policy = p == 0 ? IoPolicy::Uncompressed
                                : IoPolicy::Zcomp;
            t[p] = s.sim->run(cfg).trafficBytes();
        }
        return 1.0 - static_cast<double>(t[1]) / t[0];
    };
    double train_red = reduction(true);
    double infer_red = reduction(false);
    EXPECT_GT(train_red, 0.0);
    EXPECT_GT(infer_red, 0.0);
}

TEST(NetworkSim, SeparateRunsShareFunctionalState)
{
    // Two NetworkSims over the same prepared network agree exactly
    // (the functional pass is the single source of truth for sizes).
    SimSetup s = makeSetup(false, 4);
    NetworkSimConfig cfg;
    cfg.policy = IoPolicy::Avx512Comp;
    NetworkSim other(*s.ctx, *s.net);
    NetworkSimResult a = s.sim->run(cfg);
    NetworkSimResult b = other.run(cfg);
    EXPECT_DOUBLE_EQ(a.cycles(), b.cycles());
    EXPECT_EQ(a.trafficBytes(), b.trafficBytes());
}

TEST(NetworkSim, DenseTensorsStayUncompressed)
{
    // The compressibility gate: with dense inputs and no ReLU fusion
    // possible (inference on raw conv outputs feeding pool only), the
    // zcomp run must not inflate traffic above the baseline by more
    // than the headers it adds on sparse maps.
    SimSetup s = makeSetup(false, 4);
    NetworkSimConfig base, zc;
    zc.policy = IoPolicy::Zcomp;
    uint64_t tb = s.sim->run(base).trafficBytes();
    uint64_t tz = s.sim->run(zc).trafficBytes();
    EXPECT_LE(tz, tb);
}
