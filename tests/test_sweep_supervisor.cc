/** @file Unit tests for the sweep supervisor's process-level
 *  behavior, using /bin/sh stand-ins for the bench worker: sharding,
 *  crash isolation, hard/heartbeat deadlines, work stealing, and the
 *  exited-without-result failure path. The end-to-end crash matrix
 *  against the real study runner lives in test_study_isolation.cc. */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/log.hh"
#include "common/sweep_supervisor.hh"

using namespace zcomp;

namespace {

/**
 * A fake worker: /bin/sh -c <script> worker [--worker-cell <spec>].
 * Inside the script $2 is the cell spec the supervisor appended.
 */
SweepSupervisorOptions
fakeWorker(const std::string &script, int workers)
{
    SweepSupervisorOptions opt;
    opt.workerArgv = {"/bin/sh", "-c", script, "worker"};
    opt.workers = workers;
    opt.workStealing = false;
    return opt;
}

/** Script emitting a hello record then a result row for its cell. */
const char *okScript =
    "printf '{\"schema\":\"zcomp-worker-v1\",\"kind\":\"hello\","
    "\"cell\":\"%s\"}\\n' \"$2\"\n"
    "printf '{\"schema\":\"zcomp-worker-v1\",\"kind\":\"result\","
    "\"cell\":\"%s\",\"row\":{\"cell\":\"%s\",\"value\":42}}\\n' "
    "\"$2\" \"$2\"\n";

std::vector<SweepCell>
cellsNamed(const std::vector<std::string> &names)
{
    std::vector<SweepCell> cells;
    for (const std::string &n : names)
        cells.push_back({n, n});
    return cells;
}

} // namespace

TEST(SweepSupervisor, RunsAllCellsInInputOrder)
{
    SweepSupervisor sup(fakeWorker(okScript, 3));
    std::vector<SweepCellResult> results =
        sup.run(cellsNamed({"a", "b", "c", "d", "e"}));
    ASSERT_EQ(results.size(), 5u);
    const char *want[] = {"a", "b", "c", "d", "e"};
    for (size_t i = 0; i < results.size(); i++) {
        EXPECT_EQ(results[i].spec, want[i]);
        EXPECT_TRUE(results[i].ok) << results[i].error;
        EXPECT_EQ(results[i].attempts, 1);
        const Json *cell = results[i].row.find("cell");
        ASSERT_NE(cell, nullptr);
        EXPECT_EQ(cell->asString(), want[i]);
    }
}

TEST(SweepSupervisor, CrashedCellIsIsolatedAndTyped)
{
    // Cell "boom" dies of SIGSEGV mid-run; every other cell must
    // complete and the failure must carry the signal name.
    std::string script = std::string("if [ \"$2\" = boom ]; then "
                                     "kill -SEGV $$; fi\n") +
                         okScript;
    SweepSupervisorOptions opt = fakeWorker(script, 2);
    int done_calls = 0;
    opt.onCellDone = [&](const SweepCellResult &) { done_calls++; };
    SweepSupervisor sup(opt);
    std::vector<SweepCellResult> results =
        sup.run(cellsNamed({"a", "boom", "c"}));
    ASSERT_EQ(results.size(), 3u);
    EXPECT_TRUE(results[0].ok);
    EXPECT_TRUE(results[2].ok);
    EXPECT_FALSE(results[1].ok);
    EXPECT_EQ(results[1].signalName, "SIGSEGV");
    EXPECT_NE(results[1].error.find("SIGSEGV"), std::string::npos)
        << results[1].error;
    EXPECT_EQ(done_calls, 3);
}

TEST(SweepSupervisor, HungWorkerIsReapedByHeartbeatTimeout)
{
    // The worker says hello, then goes silent forever - only the
    // supervisor's heartbeat deadline can end it.
    std::string script =
        "printf '{\"schema\":\"zcomp-worker-v1\",\"kind\":\"hello\","
        "\"cell\":\"%s\"}\\n' \"$2\"\n"
        "sleep 60\n";
    SweepSupervisorOptions opt = fakeWorker(script, 1);
    opt.heartbeatTimeoutSec = 0.4;
    SweepSupervisor sup(opt);
    std::vector<SweepCellResult> results = sup.run(cellsNamed({"a"}));
    ASSERT_EQ(results.size(), 1u);
    EXPECT_FALSE(results[0].ok);
    EXPECT_EQ(results[0].signalName, "SIGKILL");
    EXPECT_NE(results[0].error.find("no heartbeat"),
              std::string::npos)
        << results[0].error;
}

TEST(SweepSupervisor, SpinningWorkerIsReapedByHardTimeout)
{
    // The worker heartbeats diligently while spinning forever, so
    // only the *hard* wall-clock deadline catches it.
    std::string script =
        "while :; do "
        "printf '{\"schema\":\"zcomp-worker-v1\","
        "\"kind\":\"heartbeat\",\"cell\":\"%s\"}\\n' \"$2\"; "
        "sleep 0.05; done\n";
    SweepSupervisorOptions opt = fakeWorker(script, 1);
    opt.heartbeatTimeoutSec = 10;
    opt.hardTimeoutSec = 0.5;
    SweepSupervisor sup(opt);
    std::vector<SweepCellResult> results = sup.run(cellsNamed({"a"}));
    ASSERT_EQ(results.size(), 1u);
    EXPECT_FALSE(results[0].ok);
    EXPECT_EQ(results[0].signalName, "SIGKILL");
    EXPECT_NE(results[0].error.find("hard timeout"),
              std::string::npos)
        << results[0].error;
}

TEST(SweepSupervisor, ExitWithoutResultIsAFailure)
{
    SweepSupervisor sup(fakeWorker("exit 3\n", 1));
    std::vector<SweepCellResult> results = sup.run(cellsNamed({"a"}));
    ASSERT_EQ(results.size(), 1u);
    EXPECT_FALSE(results[0].ok);
    EXPECT_TRUE(results[0].signalName.empty());
    EXPECT_NE(results[0].error.find("exit 3"), std::string::npos)
        << results[0].error;
}

TEST(SweepSupervisor, WorkStealingDuplicatesStraggler)
{
    // One straggler cell, two slots: once the queue is empty the
    // idle slot must speculatively duplicate the straggler, and the
    // first copy to finish wins.
    std::string script = std::string("sleep 1\n") + okScript;
    SweepSupervisorOptions opt = fakeWorker(script, 2);
    opt.workStealing = true;
    opt.stealAfterMillis = 100;
    SweepSupervisor sup(opt);
    std::vector<SweepCellResult> results = sup.run(cellsNamed({"a"}));
    ASSERT_EQ(results.size(), 1u);
    EXPECT_TRUE(results[0].ok) << results[0].error;
    EXPECT_EQ(results[0].attempts, 2);
}

TEST(SweepSupervisor, StderrIsForwardedWholeLine)
{
    // Worker stderr goes through the status-aware log sink; with
    // quiet() set it must be swallowed entirely (this also exercises
    // the forwarding path without asserting on global stderr).
    std::string script =
        std::string("echo 'info: worker says hi' >&2\n") + okScript;
    setQuiet(true);
    SweepSupervisor sup(fakeWorker(script, 1));
    std::vector<SweepCellResult> results = sup.run(cellsNamed({"a"}));
    setQuiet(false);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_TRUE(results[0].ok);
}

TEST(SweepSupervisor, CrashBackoffDoesNotStallHealthyCells)
{
    // A crashing cell must pace respawns, not block the sweep: all
    // cells still complete and the crasher is typed.
    std::string script = std::string("if [ \"$2\" = boom ]; then "
                                     "kill -KILL $$; fi\n") +
                         okScript;
    SweepSupervisorOptions opt = fakeWorker(script, 2);
    opt.backoffMillis = 20;
    SweepSupervisor sup(opt);
    std::vector<SweepCellResult> results =
        sup.run(cellsNamed({"boom", "b", "c", "d"}));
    ASSERT_EQ(results.size(), 4u);
    EXPECT_FALSE(results[0].ok);
    EXPECT_EQ(results[0].signalName, "SIGKILL");
    for (size_t i = 1; i < 4; i++)
        EXPECT_TRUE(results[i].ok) << results[i].error;
}
