/** @file Unit tests for the study runner's bump arena. */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/arena.hh"
#include "mem/vspace.hh"

using namespace zcomp;

TEST(BumpArena, BlocksAreAlignedZeroedAndDisjoint)
{
    BumpArena arena(1 << 16);
    uint8_t *a = arena.alloc(100);
    uint8_t *b = arena.alloc(200);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(a) % BumpArena::kAlign, 0u);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(b) % BumpArena::kAlign, 0u);
    // Redzone pad keeps neighbouring blocks apart.
    EXPECT_GE(static_cast<size_t>(b - a), 100 + BumpArena::kRedzone);
    for (int i = 0; i < 100; i++)
        EXPECT_EQ(a[i], 0) << i;
    for (int i = 0; i < 200; i++)
        EXPECT_EQ(b[i], 0) << i;
}

TEST(BumpArena, ResetReclaimsAndRezeroesDirtyMemory)
{
    BumpArena arena(1 << 16);
    uint8_t *a = arena.alloc(4096);
    std::memset(a, 0xAB, 4096);
    EXPECT_EQ(arena.allocatedBytes(), 4096u);
    size_t reserved = arena.reservedBytes();

    arena.reset();
    EXPECT_EQ(arena.allocatedBytes(), 0u);
    EXPECT_EQ(arena.allocCount(), 0u);
    EXPECT_EQ(arena.resetCount(), 1u);
    // Chunks are retained across reset, not returned to the heap.
    EXPECT_EQ(arena.reservedBytes(), reserved);

    // The next epoch's block reuses the dirtied memory but must come
    // back zero-filled, exactly like the heap path it replaces.
    uint8_t *b = arena.alloc(4096);
    EXPECT_EQ(b, a);
    for (int i = 0; i < 4096; i++)
        ASSERT_EQ(b[i], 0) << i;
}

TEST(BumpArena, GrowsBeyondOneChunk)
{
    BumpArena arena(1 << 12);
    // Each block overflows the 4 KiB chunk size; every one must still
    // be served (from a dedicated larger chunk).
    std::vector<uint8_t *> blocks;
    for (int i = 0; i < 8; i++) {
        uint8_t *p = arena.alloc(10000);
        ASSERT_NE(p, nullptr);
        std::memset(p, 1 + i, 10000);
        blocks.push_back(p);
    }
    // No block may alias another (the memset pattern survives).
    for (int i = 0; i < 8; i++)
        for (int j = 0; j < 10000; j++)
            ASSERT_EQ(blocks[static_cast<size_t>(i)][j], 1 + i);
    EXPECT_EQ(arena.allocCount(), 8u);
    EXPECT_EQ(arena.allocatedBytes(), 8u * 10000u);
}

TEST(BumpArena, RetryAfterFaultReusesCleanly)
{
    // The study runner's retry pattern: allocate a working set, dirty
    // it, reset, allocate the same set again - repeatedly. Contents
    // must always come back zeroed and stable across epochs.
    BumpArena arena(1 << 14);
    const size_t sizes[] = {100, 8192, 64, 30000, 4096};
    for (int attempt = 0; attempt < 3; attempt++) {
        if (attempt > 0)
            arena.reset();
        for (size_t bytes : sizes) {
            uint8_t *p = arena.alloc(bytes);
            ASSERT_NE(p, nullptr);
            for (size_t i = 0; i < bytes; i++)
                ASSERT_EQ(p[i], 0) << bytes << "@" << i;
            std::memset(p, 0xCD, bytes);
        }
    }
    EXPECT_EQ(arena.resetCount(), 2u);
}

TEST(VSpaceArena, BuffersComeFromTheArena)
{
    BumpArena arena(1 << 16);
    VSpace vs(0x10000, /*allocate_host=*/true, &arena);
    Buffer &a = vs.alloc("a", 1000, AllocClass::FeatureMap);
    Buffer &b = vs.alloc("b", 2000, AllocClass::Weight);
    EXPECT_EQ(arena.allocCount(), 2u);
    EXPECT_EQ(arena.allocatedBytes(), 3000u);
    ASSERT_NE(a.host, nullptr);
    ASSERT_NE(b.host, nullptr);
    for (size_t i = 0; i < a.size; i++)
        ASSERT_EQ(a.host[i], 0);
    // Simulated addressing is unchanged by the backing source.
    EXPECT_EQ(a.base % 4096, 0u);
    EXPECT_GE(b.base, a.base + a.size);
}

TEST(VSpaceArena, ReleaseHostDetachesWithoutFreeing)
{
    BumpArena arena(1 << 16);
    VSpace vs(0x10000, true, &arena);
    Buffer &a = vs.alloc("a", 512, AllocClass::Scratch);
    Buffer &b = vs.alloc("b", 512, AllocClass::Scratch);
    vs.releaseHost(a);
    EXPECT_EQ(a.host, nullptr);
    // The neighbour's memory is untouched and still usable.
    ASSERT_NE(b.host, nullptr);
    b.host[0] = 42;
    EXPECT_EQ(b.host[0], 42);
}

TEST(VSpaceArena, PlanOnlySpacesIgnoreTheArena)
{
    BumpArena arena(1 << 16);
    VSpace vs(0x10000, /*allocate_host=*/false, &arena);
    Buffer &a = vs.alloc("a", 1 << 20, AllocClass::FeatureMap);
    EXPECT_EQ(a.host, nullptr);
    EXPECT_EQ(arena.allocCount(), 0u);
    EXPECT_EQ(vs.totalBytes(), static_cast<uint64_t>(1 << 20));
}
