/** @file Unit tests for the deterministic RNG. */

#include <gtest/gtest.h>

#include "common/rng.hh"

using namespace zcomp;

TEST(Rng, DeterministicFromSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; i++)
        EXPECT_EQ(a.next64(), b.next64());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; i++) {
        if (a.next64() == b.next64())
            same++;
    }
    EXPECT_LT(same, 5);
}

TEST(Rng, UniformInRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; i++) {
        double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanIsCentered)
{
    Rng r(11);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; i++)
        sum += r.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, GaussianMoments)
{
    Rng r(13);
    double sum = 0, sq = 0;
    const int n = 100000;
    for (int i = 0; i < n; i++) {
        double g = r.gaussian();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, ChanceFrequency)
{
    Rng r(17);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; i++) {
        if (r.chance(0.53))
            hits++;
    }
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.53, 0.01);
}

TEST(Rng, BelowStaysInRange)
{
    Rng r(19);
    for (int i = 0; i < 10000; i++)
        EXPECT_LT(r.below(44), 44u);
}
