#include "common/thread_pool.hh"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

using namespace zcomp;

TEST(ThreadPool, SubmitCompletesAllTasks)
{
    ThreadPool pool(4);
    std::atomic<int> ran{0};
    std::vector<std::future<int>> futs;
    for (int i = 0; i < 100; i++) {
        futs.push_back(pool.submit([i, &ran] {
            ran.fetch_add(1);
            return i * i;
        }));
    }
    int sum = 0;
    for (auto &f : futs)
        sum += f.get();
    EXPECT_EQ(ran.load(), 100);
    int expect = 0;
    for (int i = 0; i < 100; i++)
        expect += i * i;
    EXPECT_EQ(sum, expect);
}

TEST(ThreadPool, SubmitPropagatesExceptions)
{
    ThreadPool pool(2);
    auto f = pool.submit(
        []() -> int { throw std::runtime_error("boom"); });
    EXPECT_THROW(f.get(), std::runtime_error);

    // The pool survives a throwing task.
    EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPool, SingleJobRunsInlineOnCaller)
{
    ThreadPool pool(1);
    std::thread::id caller = std::this_thread::get_id();

    auto f = pool.submit([] { return std::this_thread::get_id(); });
    EXPECT_EQ(f.get(), caller);

    std::thread::id body_thread;
    pool.parallelFor(0, 100, 10, [&](size_t, size_t) {
        body_thread = std::this_thread::get_id();
    });
    EXPECT_EQ(body_thread, caller);

    auto g = pool.submit(
        []() -> int { throw std::runtime_error("inline boom"); });
    EXPECT_THROW(g.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(1003);
    pool.parallelFor(3, 1003, 7, [&](size_t b, size_t e) {
        ASSERT_LE(b, e);
        ASSERT_LE(e - b, 7u);
        for (size_t i = b; i < e; i++)
            hits[i].fetch_add(1);
    });
    for (size_t i = 0; i < hits.size(); i++)
        EXPECT_EQ(hits[i].load(), i >= 3 ? 1 : 0) << "index " << i;
}

TEST(ThreadPool, ParallelForEmptyAndSingleChunk)
{
    ThreadPool pool(4);
    int calls = 0;
    pool.parallelFor(5, 5, 4, [&](size_t, size_t) { calls++; });
    EXPECT_EQ(calls, 0);
    pool.parallelFor(0, 3, 16, [&](size_t b, size_t e) {
        calls++;
        EXPECT_EQ(b, 0u);
        EXPECT_EQ(e, 3u);
    });
    EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, ParallelForPropagatesExceptions)
{
    ThreadPool pool(4);
    EXPECT_THROW(
        pool.parallelFor(0, 64, 1,
                         [&](size_t b, size_t) {
                             if (b == 33)
                                 throw std::runtime_error("chunk");
                         }),
        std::runtime_error);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock)
{
    // Outer tasks occupy every worker; the inner loops still finish
    // because the blocked caller participates in its own chunks.
    ThreadPool pool(2);
    std::atomic<size_t> total{0};
    std::vector<std::future<void>> futs;
    for (int t = 0; t < 4; t++) {
        futs.push_back(pool.submit([&] {
            pool.parallelFor(0, 100, 3, [&](size_t b, size_t e) {
                total.fetch_add(e - b);
            });
        }));
    }
    for (auto &f : futs)
        f.get();
    EXPECT_EQ(total.load(), 400u);
}

TEST(ThreadPool, ParallelForCallerParticipatesWhenWorkersAreBusy)
{
    // Regression guard: parallelFor's caller must claim and run
    // chunks itself, not merely block on the helpers. With every
    // worker parked on a latch, a parallelFor issued from the test
    // thread can only finish if the caller drains the whole range -
    // and it must do so without waiting for the workers.
    ThreadPool pool(3);
    std::atomic<bool> release{false};
    std::vector<std::future<void>> blockers;
    for (int t = 0; t < 3; t++) {
        blockers.push_back(pool.submit([&] {
            while (!release.load())
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
        }));
    }

    std::thread::id caller = std::this_thread::get_id();
    std::atomic<size_t> covered{0};
    std::atomic<bool> foreign_thread{false};
    pool.parallelFor(0, 64, 4, [&](size_t b, size_t e) {
        if (std::this_thread::get_id() != caller)
            foreign_thread.store(true);
        covered.fetch_add(e - b);
    });
    EXPECT_EQ(covered.load(), 64u);
    EXPECT_FALSE(foreign_thread.load())
        << "chunks ran on a worker that should have been parked";

    release.store(true);
    for (auto &f : blockers)
        f.get();
}

TEST(ThreadPool, DestructorDrainsPendingTasks)
{
    // Tasks already queued when the pool is torn down must still run:
    // the workers drain the queue on shutdown, so every future is
    // ready (not broken, not forever-pending) once the destructor
    // returns.
    std::atomic<int> ran{0};
    std::vector<std::future<int>> futs;
    {
        ThreadPool pool(2);
        for (int i = 0; i < 64; i++) {
            futs.push_back(pool.submit([i, &ran] {
                ran.fetch_add(1);
                return i;
            }));
        }
    }
    EXPECT_EQ(ran.load(), 64);
    for (int i = 0; i < 64; i++) {
        ASSERT_EQ(futs[static_cast<size_t>(i)].wait_for(
                      std::chrono::seconds(0)),
                  std::future_status::ready);
        EXPECT_EQ(futs[static_cast<size_t>(i)].get(), i);
    }
}

TEST(ThreadPool, ExceptionInTaskPendingAtShutdownPropagates)
{
    std::future<int> f;
    {
        ThreadPool pool(2);
        // Keep the workers busy so the throwing task is likely still
        // queued when the destructor runs.
        for (int i = 0; i < 8; i++) {
            pool.submit([] {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(5));
            });
        }
        f = pool.submit(
            []() -> int { throw std::runtime_error("late boom"); });
    }
    ASSERT_EQ(f.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, DefaultJobsHonoursEnvOverride)
{
    ASSERT_EQ(setenv("ZCOMP_JOBS", "3", 1), 0);
    EXPECT_EQ(ThreadPool::defaultJobs(), 3);
    ASSERT_EQ(setenv("ZCOMP_JOBS", "1", 1), 0);
    EXPECT_EQ(ThreadPool::defaultJobs(), 1);
    // Garbage and non-positive values fall back to the hardware.
    ASSERT_EQ(setenv("ZCOMP_JOBS", "banana", 1), 0);
    EXPECT_GE(ThreadPool::defaultJobs(), 1);
    ASSERT_EQ(setenv("ZCOMP_JOBS", "0", 1), 0);
    EXPECT_GE(ThreadPool::defaultJobs(), 1);
    unsetenv("ZCOMP_JOBS");
}
