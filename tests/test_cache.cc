/** @file Unit tests for the set-associative cache model. */

#include <gtest/gtest.h>

#include "mem/cache.hh"

using namespace zcomp;

namespace {

CacheConfig
tinyCache(int lines, int assoc, ReplPolicy repl = ReplPolicy::LRU)
{
    CacheConfig cfg;
    cfg.size = static_cast<uint64_t>(lines) * lineBytes;
    cfg.assoc = assoc;
    cfg.repl = repl;
    return cfg;
}

} // namespace

TEST(Cache, MissThenHit)
{
    Cache c("t", tinyCache(8, 2), false);
    EXPECT_FALSE(c.access(0x1000, false));
    c.insert(0x1000, false, false);
    EXPECT_TRUE(c.access(0x1000, false));
    EXPECT_EQ(c.hits, 1u);
    EXPECT_EQ(c.misses, 1u);
}

TEST(Cache, WriteMarksDirtyAndEvictionReportsIt)
{
    // 2 lines, direct... 2-way single set: fill both ways then insert a
    // third line; the dirty one must come out as a writeback.
    Cache c("t", tinyCache(2, 2), false);
    c.insert(0x0, false, false);
    c.insert(0x80, false, false);   // set 0 again (2 sets? no: 1 set)
    c.access(0x0, true);            // dirty line 0x0
    c.access(0x80, false);          // 0x80 more recent
    CacheVictim v = c.insert(0x100, false, false);
    EXPECT_TRUE(v.valid);
    EXPECT_EQ(v.addr, 0x0u);
    EXPECT_TRUE(v.dirty);
    EXPECT_EQ(c.writebacks, 1u);
}

TEST(Cache, InvalidateReturnsDirtiness)
{
    Cache c("t", tinyCache(8, 2), false);
    c.insert(0x40, false, false);
    c.access(0x40, true);
    EXPECT_TRUE(c.invalidate(0x40));
    EXPECT_FALSE(c.contains(0x40));
    EXPECT_FALSE(c.invalidate(0x40));   // already gone
    EXPECT_EQ(c.invalidations, 1u);
}

TEST(Cache, PrefetchAccuracyAccounting)
{
    Cache c("t", tinyCache(4, 4), false);
    c.insert(0x000, false, true);   // prefetch fill
    c.insert(0x040, false, true);
    EXPECT_EQ(c.prefetchFills, 2u);
    // Demand hit on one prefetched line -> useful.
    EXPECT_TRUE(c.access(0x000, false));
    EXPECT_EQ(c.prefetchUseful, 1u);
    // Second hit on the same line is no longer counted as prefetch use.
    c.access(0x000, false);
    EXPECT_EQ(c.prefetchUseful, 1u);
    // Evict the unused prefetch (fill the set, then one more).
    c.insert(0x080, false, false);
    c.insert(0x0C0, false, false);
    c.insert(0x100, false, false);
    EXPECT_EQ(c.prefetchUnused, 1u);
}

TEST(Cache, ReadyWaitModelsInFlightFills)
{
    Cache c("t", tinyCache(8, 2), false);
    c.insert(0x40, false, true, /*ready_at=*/100.0);
    EXPECT_DOUBLE_EQ(c.readyWait(0x40, 60.0), 40.0);
    EXPECT_DOUBLE_EQ(c.readyWait(0x40, 150.0), 0.0);
    EXPECT_DOUBLE_EQ(c.readyWait(0x9999, 0.0), 0.0);    // absent line
}

TEST(Cache, DirectoryPresenceBits)
{
    Cache c("l3", tinyCache(8, 2), true);
    c.insert(0x40, false, false);
    c.markPresence(0x40, 3);
    c.markPresence(0x40, 7);
    EXPECT_EQ(c.presence(0x40), (1u << 3) | (1u << 7));
    EXPECT_EQ(c.presence(0x80), 0u);
    // Presence travels with the victim on eviction.
    c.insert(0x240, false, false);  // same set (8 lines/2-way = 4 sets)
    CacheVictim v = c.insert(0x440, false, false);
    EXPECT_TRUE(v.valid);
    EXPECT_EQ(v.presence, (1u << 3) | (1u << 7));
}

TEST(Cache, SetConflictsEvictWithinSetOnly)
{
    // 8 lines, 2-way -> 4 sets. Lines mapping to set 0 are multiples
    // of 4*64 = 0x100.
    Cache c("t", tinyCache(8, 2), false);
    c.insert(0x000, false, false);
    c.insert(0x100, false, false);
    c.insert(0x040, false, false);  // set 1: must not evict set 0
    EXPECT_TRUE(c.contains(0x000));
    EXPECT_TRUE(c.contains(0x100));
    CacheVictim v = c.insert(0x200, false, false);  // set 0 overflows
    EXPECT_TRUE(v.valid);
    EXPECT_TRUE(v.addr == 0x000 || v.addr == 0x100);
    EXPECT_TRUE(c.contains(0x040));
}

TEST(Cache, ReinsertResidentLineIsNotAnEviction)
{
    Cache c("t", tinyCache(8, 2), false);
    c.insert(0x40, false, false);
    CacheVictim v = c.insert(0x40, true, false);
    EXPECT_FALSE(v.valid);
    // Dirty flag merged in.
    CacheVictim v2 = c.insert(0x240, false, false);
    (void)v2;
    c.access(0x40, false);
    EXPECT_TRUE(c.contains(0x40));
}

TEST(Cache, SrripCacheBasics)
{
    Cache c("t", tinyCache(8, 4, ReplPolicy::SRRIP), false);
    c.insert(0x000, false, false);
    EXPECT_TRUE(c.access(0x000, false));
    EXPECT_TRUE(c.contains(0x000));
}

// ---------------------------------------------------------------------
// Property test: the LRU cache model against a straightforward
// reference implementation over a random access stream.
// ---------------------------------------------------------------------

#include <list>
#include <map>

#include "common/rng.hh"

namespace {

/** Reference set-associative LRU cache using std::list recency. */
class RefLru
{
  public:
    RefLru(int sets, int ways) : sets_(sets), ways_(ways),
                                 lru_(static_cast<size_t>(sets))
    {}

    bool
    access(Addr line)
    {
        auto &set = lru_[setOf(line)];
        for (auto it = set.begin(); it != set.end(); ++it) {
            if (*it == line) {
                set.erase(it);
                set.push_front(line);
                return true;
            }
        }
        return false;
    }

    void
    insert(Addr line)
    {
        auto &set = lru_[setOf(line)];
        set.push_front(line);
        if (static_cast<int>(set.size()) > ways_)
            set.pop_back();
    }

  private:
    size_t
    setOf(Addr line) const
    {
        return static_cast<size_t>((line / lineBytes) %
                                   static_cast<uint64_t>(sets_));
    }

    int sets_;
    int ways_;
    std::vector<std::list<Addr>> lru_;
};

} // namespace

TEST(CacheProperty, LruMatchesReferenceModel)
{
    const int sets = 16, ways = 4;
    CacheConfig cfg;
    cfg.size = static_cast<uint64_t>(sets) * ways * lineBytes;
    cfg.assoc = ways;
    cfg.repl = ReplPolicy::LRU;
    Cache dut("dut", cfg, false);
    RefLru ref(sets, ways);

    Rng rng(20260706);
    for (int i = 0; i < 20000; i++) {
        // Mix of hot lines (reuse) and a cold tail.
        Addr line = rng.chance(0.7)
                        ? rng.below(static_cast<uint64_t>(sets * ways))
                              * lineBytes
                        : rng.below(1 << 14) * lineBytes;
        bool hit_dut = dut.access(line, rng.chance(0.3));
        bool hit_ref = ref.access(line);
        ASSERT_EQ(hit_dut, hit_ref) << "divergence at access " << i
                                    << " line 0x" << std::hex << line;
        if (!hit_dut) {
            dut.insert(line, false, false);
            ref.insert(line);
        }
    }
    EXPECT_GT(dut.hits, 0u);
    EXPECT_GT(dut.misses, 0u);
}
