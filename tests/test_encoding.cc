/** @file Unit and property tests for the ZCOMP binary encoding. */

#include <gtest/gtest.h>

#include "isa/encoding.hh"

using namespace zcomp;

TEST(Encoding, EncodeDecodeBasicStore)
{
    ZcompInstr i;
    i.isStore = true;
    i.sepHeader = false;
    i.etype = ElemType::F32;
    i.ccf = Ccf::LTEZ;
    i.vreg = 1;
    i.dataPtrReg = 2;
    auto word = encode(i);
    ASSERT_TRUE(word.has_value());
    auto back = decode(*word);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, i);
}

TEST(Encoding, RejectsOutOfRangeRegisters)
{
    ZcompInstr i;
    i.vreg = 32;
    EXPECT_FALSE(encode(i).has_value());
    i.vreg = 0;
    i.dataPtrReg = -1;
    EXPECT_FALSE(encode(i).has_value());
}

TEST(Encoding, RejectsHeaderRegOnInterleaved)
{
    ZcompInstr i;
    i.sepHeader = false;
    i.hdrPtrReg = 3;
    EXPECT_FALSE(encode(i).has_value());
    i.sepHeader = true;
    EXPECT_TRUE(encode(i).has_value());
}

TEST(Encoding, RejectsCcfOnLoad)
{
    ZcompInstr i;
    i.isStore = false;
    i.ccf = Ccf::LTEZ;
    EXPECT_FALSE(encode(i).has_value());
    i.ccf = Ccf::EQZ;
    EXPECT_TRUE(encode(i).has_value());
}

TEST(Decoding, RejectsNonZcompOpcodes)
{
    EXPECT_FALSE(decode(0).has_value());
    EXPECT_FALSE(decode(0xFFFFFFFF).has_value());
}

TEST(Decoding, RejectsReservedBits)
{
    ZcompInstr i;
    auto word = encode(i);
    ASSERT_TRUE(word.has_value());
    EXPECT_FALSE(decode(*word | 0x1).has_value());
}

TEST(Decoding, RejectsInvalidElemType)
{
    ZcompInstr i;
    auto word = encode(i);
    ASSERT_TRUE(word.has_value());
    // Force elem type field (bits 24:22) to 7 (invalid).
    uint32_t bad = (*word & ~(0x7u << 22)) | (0x7u << 22);
    EXPECT_FALSE(decode(bad).has_value());
}

// Exhaustive-ish round-trip across the full field space.
class EncodingRoundTrip
    : public ::testing::TestWithParam<std::tuple<bool, bool, int>>
{
};

TEST_P(EncodingRoundTrip, AllFieldCombinations)
{
    auto [is_store, sep, et] = GetParam();
    for (int vreg : {0, 7, 31}) {
        for (int dreg : {0, 15, 31}) {
            for (int hreg : {0, 9, 31}) {
                if (!sep && hreg != 0)
                    continue;
                for (Ccf ccf : {Ccf::EQZ, Ccf::LTEZ}) {
                    if (!is_store && ccf != Ccf::EQZ)
                        continue;
                    ZcompInstr i;
                    i.isStore = is_store;
                    i.sepHeader = sep;
                    i.etype = static_cast<ElemType>(et);
                    i.ccf = ccf;
                    i.vreg = vreg;
                    i.dataPtrReg = dreg;
                    i.hdrPtrReg = hreg;
                    auto w = encode(i);
                    ASSERT_TRUE(w.has_value());
                    auto back = decode(*w);
                    ASSERT_TRUE(back.has_value());
                    EXPECT_EQ(*back, i);
                }
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Fields, EncodingRoundTrip,
    ::testing::Combine(::testing::Bool(), ::testing::Bool(),
                       ::testing::Range(0, numElemTypes)));
