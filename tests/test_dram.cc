/** @file Unit tests for the DRAM channel bandwidth/latency model. */

#include <gtest/gtest.h>

#include "mem/dram.hh"

using namespace zcomp;

namespace {

DramConfig
cfg4ch()
{
    DramConfig cfg;    // 4 channels, 68 GB/s, 60 ns, 256 B interleave
    return cfg;
}

} // namespace

TEST(Dram, ChannelInterleaving)
{
    Dram d(cfg4ch(), 2.4);
    EXPECT_EQ(d.channelOf(0), 0);
    EXPECT_EQ(d.channelOf(256), 1);
    EXPECT_EQ(d.channelOf(512), 2);
    EXPECT_EQ(d.channelOf(768), 3);
    EXPECT_EQ(d.channelOf(1024), 0);
}

TEST(Dram, IdleReadLatency)
{
    Dram d(cfg4ch(), 2.4);
    // 60 ns * 2.4 GHz = 144 cycles idle, plus one line transfer time:
    // 68/2.4 = 28.33 B/cyc total, /4 channels = 7.08 B/cyc,
    // 64 B -> ~9.04 cycles.
    double lat = d.access(0x0, false, 0.0);
    EXPECT_NEAR(lat, 144.0 + 64.0 / (68.0 / 2.4 / 4.0), 0.1);
}

TEST(Dram, BackToBackSameChannelQueues)
{
    Dram d(cfg4ch(), 2.4);
    double l1 = d.access(0x0, false, 0.0);
    double l2 = d.access(0x40, false, 0.0);     // same 256 B chunk
    EXPECT_GT(l2, l1);      // queued behind the first transfer
}

TEST(Dram, DifferentChannelsDoNotQueue)
{
    Dram d(cfg4ch(), 2.4);
    double l1 = d.access(0x0, false, 0.0);
    double l2 = d.access(0x100, false, 0.0);    // next channel
    EXPECT_DOUBLE_EQ(l1, l2);
}

TEST(Dram, SustainedBandwidthMatchesConfig)
{
    Dram d(cfg4ch(), 2.4);
    // Stream lines across all channels at zero inter-arrival time and
    // measure how long the channels stay busy.
    const int n = 4000;
    for (int i = 0; i < n; i++)
        d.access(static_cast<Addr>(i) * 64, false, 0.0);
    double bytes = static_cast<double>(n) * 64.0;
    double cycles = d.busyCycles() / 4.0;   // per-channel busy time
    double bw = bytes / cycles;             // bytes per cycle
    EXPECT_NEAR(bw, 68.0 / 2.4, 0.5);
}

TEST(Dram, WritesArePosted)
{
    Dram d(cfg4ch(), 2.4);
    double wl = d.access(0x0, true, 0.0);
    // A posted write on an idle channel costs only the transfer slot.
    EXPECT_LT(wl, 20.0);
    EXPECT_EQ(d.bytesWritten, 64u);
    EXPECT_EQ(d.bytesRead, 0u);
}

TEST(Dram, ResetClearsState)
{
    Dram d(cfg4ch(), 2.4);
    d.access(0x0, false, 0.0);
    d.access(0x0, true, 0.0);
    d.reset();
    EXPECT_EQ(d.bytesRead, 0u);
    EXPECT_EQ(d.bytesWritten, 0u);
    EXPECT_DOUBLE_EQ(d.busyCycles(), 0.0);
}

TEST(Dram, BacklogReflectsQueueDepth)
{
    Dram d(cfg4ch(), 2.4);
    EXPECT_DOUBLE_EQ(d.backlog(0x0, 0.0), 0.0);
    d.access(0x0, false, 0.0);
    EXPECT_GT(d.backlog(0x0, 0.0), 0.0);
    // Other channels unaffected.
    EXPECT_DOUBLE_EQ(d.backlog(0x100, 0.0), 0.0);
    // Backlog drains as time advances.
    EXPECT_DOUBLE_EQ(d.backlog(0x0, 1e6), 0.0);
}

TEST(Dram, WriteBacklogIsBounded)
{
    // Posted writes must not head-of-line-block future reads forever:
    // beyond the write-buffer depth they drain in read gaps instead
    // of extending the queue.
    Dram d(cfg4ch(), 2.4);
    for (int i = 0; i < 4000; i++)
        d.access(static_cast<Addr>(i % 4) * 64, true, 0.0);
    // All writes to 1 chunk group of channels at t=0: the queue seen
    // by a read stays bounded (writes beyond the cap deferred).
    double lat = d.access(0x0, false, 0.0);
    EXPECT_LT(lat, 2000.0);
    // The write bytes are still fully accounted.
    EXPECT_EQ(d.bytesWritten, 4000u * 64);
}

TEST(Dram, CappedWritesDoNotInflateBusyTime)
{
    // Regression: writes dropped to the deferred backlog used to
    // accrue busy time without advancing the channel schedule, so
    // utilization could exceed wall-clock. Deferred writes must only
    // count as busy once they drain into real idle gaps.
    Dram d(cfg4ch(), 2.4);
    for (int i = 0; i < 4000; i++)
        d.access(0x0, true, 0.0);   // one channel, far past the cap

    // Only the in-queue writes (bounded by the backlog cap) may have
    // accrued busy time; the rest sit in the deferred backlog.
    // 512 capped writes * ~1.13 cyc/line is well under 600 cycles.
    EXPECT_LT(d.busyCycles(), 600.0);
    EXPECT_GT(d.deferredWrites(), 0u);
    EXPECT_EQ(d.bytesWritten, 4000u * 64);
    d.checkInvariants(0.0);

    // A read long after drains the backlog into the idle gap; busy
    // time now covers every write but still fits inside wall-clock.
    double now = 100000.0;
    d.access(0x0, false, now);
    EXPECT_EQ(d.deferredWrites(), 0u);
    // All 4000 lines accounted: ~9.04 cycles each.
    EXPECT_GT(d.busyCycles(), 4000.0 * 9.0);
    EXPECT_LE(d.busyCycles(), now * 4.0);
    d.checkInvariants(now);
}
