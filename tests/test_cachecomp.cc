/**
 * @file
 * Tests for FPC, FPC-D and the cache-compression architecture models
 * behind the Figure 15 comparison.
 */

#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "cachecomp/cache_model.hh"
#include "cachecomp/fpc.hh"
#include "cachecomp/fpcd.hh"
#include "workload/snapshot.hh"

using namespace zcomp;

namespace {

std::vector<uint8_t>
lineOf(std::initializer_list<uint32_t> words)
{
    std::vector<uint8_t> line(64, 0);
    int i = 0;
    for (uint32_t w : words) {
        std::memcpy(line.data() + i * 4, &w, 4);
        i++;
    }
    return line;
}

std::vector<uint8_t>
snapshotBytes(size_t elems, double sparsity, uint64_t seed)
{
    SnapshotParams p;
    p.sparsity = sparsity;
    auto floats = makeActivations(elems, p, seed);
    std::vector<uint8_t> bytes(elems * 4);
    std::memcpy(bytes.data(), floats.data(), bytes.size());
    return bytes;
}

} // namespace

TEST(Fpc, PatternClassification)
{
    EXPECT_EQ(fpcClassify(0), FpcPattern::ZeroRun);
    EXPECT_EQ(fpcClassify(3), FpcPattern::SignExt4);
    EXPECT_EQ(fpcClassify(0xFFFFFFFF), FpcPattern::SignExt4);   // -1
    EXPECT_EQ(fpcClassify(100), FpcPattern::SignExt8);
    EXPECT_EQ(fpcClassify(30000), FpcPattern::SignExt16);
    EXPECT_EQ(fpcClassify(0x12340000), FpcPattern::ZeroPaddedHalf);
    EXPECT_EQ(fpcClassify(0x00050006), FpcPattern::SignExtHalves);
    EXPECT_EQ(fpcClassify(0xABABABAB), FpcPattern::RepeatedBytes);
    EXPECT_EQ(fpcClassify(0x3F8CC0DE), FpcPattern::Uncompressed);
}

TEST(Fpc, AllZeroLineCompressesHard)
{
    auto line = lineOf({});
    // Two zero runs of 8: 2 * (3 prefix + 3 run) = 12 bits -> 2 bytes.
    EXPECT_EQ(fpcLineBits(line.data()), 12);
    EXPECT_EQ(fpcLineBytes(line.data()), 2);
}

TEST(Fpc, IncompressibleLineCapsAtRawSize)
{
    std::vector<uint8_t> line(64);
    for (int i = 0; i < 64; i++)
        line[static_cast<size_t>(i)] = static_cast<uint8_t>(37 + i * 71);
    EXPECT_EQ(fpcLineBytes(line.data()), 64);
}

TEST(Fpc, ClassificationBoundaries)
{
    // Sign-extension class edges, including the negative end where an
    // off-by-one in the range test would misclassify.
    EXPECT_EQ(fpcClassify(0xFFFFFFF8u), FpcPattern::SignExt4);      // -8
    EXPECT_EQ(fpcClassify(0xFFFFFFF7u), FpcPattern::SignExt8);      // -9
    EXPECT_EQ(fpcClassify(7), FpcPattern::SignExt4);
    EXPECT_EQ(fpcClassify(8), FpcPattern::SignExt8);
    EXPECT_EQ(fpcClassify(127), FpcPattern::SignExt8);
    EXPECT_EQ(fpcClassify(128), FpcPattern::SignExt16);
    EXPECT_EQ(fpcClassify(0xFFFFFF80u), FpcPattern::SignExt8);      // -128
    EXPECT_EQ(fpcClassify(0xFFFFFF7Fu), FpcPattern::SignExt16);     // -129
    EXPECT_EQ(fpcClassify(32767), FpcPattern::SignExt16);
    EXPECT_EQ(fpcClassify(0xFFFF8000u), FpcPattern::SignExt16);     // -32768
    // 32768 overflows SignExt16 and its low half 0x8000 does not fit
    // an 8-bit sign extension, so nothing catches it.
    EXPECT_EQ(fpcClassify(32768), FpcPattern::Uncompressed);
}

TEST(Fpc, ZeroRunSplitsAtEight)
{
    // Eight zeros fill one run; the ninth opens a second one.
    std::vector<uint8_t> line(64, 0);
    uint32_t marker = 0x3F8CC0DEu;      // Uncompressed class
    std::memcpy(line.data() + 9 * 4, &marker, 4);
    // Run of 8 (6 bits) + run of 1 (6 bits) + marker (35 bits)
    // + run of 6 (6 bits).
    EXPECT_EQ(fpcLineBits(line.data()), 6 + 6 + 35 + 6);
}

TEST(Fpc, MaxSizeEncodingCapsAtRawLine)
{
    // Sixteen uncompressible words want 16 * (3 + 32) = 560 bits
    // (70 B) - more than the raw line; the byte size must cap at 64.
    std::vector<uint8_t> line(64);
    for (int w = 0; w < 16; w++) {
        uint32_t word = 0x3F8CC0DEu + static_cast<uint32_t>(w) * 0x01010101u;
        ASSERT_EQ(fpcClassify(word), FpcPattern::Uncompressed);
        std::memcpy(line.data() + w * 4, &word, 4);
    }
    EXPECT_EQ(fpcLineBits(line.data()), 560);
    EXPECT_EQ(fpcLineBytes(line.data()), 64);
}

TEST(Fpc, AlternatingSignFloats)
{
    // +-1.0f alternating: every word is ZeroPaddedHalf (mantissa low
    // half zero), 16 * (3 + 16) = 304 bits -> 38 bytes. The sign flip
    // defeats zero runs but not the significance patterns.
    std::vector<uint8_t> line(64);
    for (int i = 0; i < 16; i++) {
        float v = (i % 2 == 0) ? 1.0f : -1.0f;
        std::memcpy(line.data() + i * 4, &v, 4);
    }
    EXPECT_EQ(fpcLineBits(line.data()), 304);
    EXPECT_EQ(fpcLineBytes(line.data()), 38);
}

TEST(FpcD, ZeroLineIsPrefixOnly)
{
    auto line = lineOf({});
    EXPECT_EQ(fpcdLineBytes(line.data()), fpcdPrefixBytes);
}

TEST(FpcD, DictionaryCatchesRepeatedFloats)
{
    // The same fp32 value repeated: first word uncompressed, the rest
    // dictionary hits of 1 bit.
    std::vector<uint8_t> line(64);
    float v = 1.234567f;
    for (int i = 0; i < 16; i++)
        std::memcpy(line.data() + i * 4, &v, 4);
    int sz = fpcdLineBytes(line.data());
    EXPECT_LT(sz, 16);
    EXPECT_GE(sz, fpcdPrefixBytes);
}

TEST(FpcD, PartialMatchesShareHighBytes)
{
    // Floats with identical exponent/high-mantissa differ only in the
    // low byte: partial dictionary hits.
    std::vector<uint8_t> line(64);
    for (int i = 0; i < 16; i++) {
        uint32_t w = 0x3F800000u | static_cast<uint32_t>(i);
        std::memcpy(line.data() + i * 4, &w, 4);
    }
    EXPECT_LT(fpcdLineBytes(line.data()), 32);
}

TEST(FpcD, AlternatingSignFloatsHitDictionary)
{
    // +-1.0f alternating: the first two words miss (16 payload bits
    // each as ZeroPaddedHalf) and fill the two-entry dictionary; the
    // remaining 14 are full 1-bit hits. 16 + 16 + 14 = 46 bits -> 6 B
    // payload + 8 B prefix.
    std::vector<uint8_t> line(64);
    for (int i = 0; i < 16; i++) {
        float v = (i % 2 == 0) ? 1.0f : -1.0f;
        std::memcpy(line.data() + i * 4, &v, 4);
    }
    EXPECT_EQ(fpcdLineBytes(line.data()), fpcdPrefixBytes + 6);
}

TEST(FpcD, PartialMatchExactSize)
{
    // Words sharing the upper 24 bits: first word misses
    // (ZeroPaddedHalf, 16 bits), the other 15 are partial hits at
    // 1 + 8 bits. 16 + 15 * 9 = 151 bits -> 19 B payload + prefix.
    std::vector<uint8_t> line(64);
    for (int i = 0; i < 16; i++) {
        uint32_t w = 0x3F800000u | static_cast<uint32_t>(i);
        std::memcpy(line.data() + i * 4, &w, 4);
    }
    EXPECT_EQ(fpcdLineBytes(line.data()), fpcdPrefixBytes + 19);
}

TEST(FpcD, MaxSizeEncodingCapsAtRawLine)
{
    // Distinct uncompressible words with distinct upper-24 prefixes:
    // no dictionary help, 16 * 32 = 512 payload bits + the 8-byte
    // prefix would be 72 B; the line must cap at the raw 64.
    std::vector<uint8_t> line(64);
    for (int w = 0; w < 16; w++) {
        uint32_t word = 0x3F8CC0DEu + static_cast<uint32_t>(w) * 0x01010101u;
        std::memcpy(line.data() + w * 4, &word, 4);
    }
    EXPECT_EQ(fpcdLineBytes(line.data()), 64);
}

TEST(FpcD, RandomFloatsBarelyCompress)
{
    auto bytes = snapshotBytes(16 * 64, 0.0, 5);
    uint64_t total = 0;
    for (size_t off = 0; off < bytes.size(); off += 64)
        total += static_cast<uint64_t>(fpcdLineBytes(bytes.data() + off));
    // Dense gaussian floats: prefix overhead eats most of the gains.
    EXPECT_GT(total, bytes.size() / 2);
}

TEST(CacheModel, ZcompRatioTracksSparsity)
{
    auto bytes = snapshotBytes(1 << 16, 0.53, 7);
    double r = zcompSnapshotRatio(bytes.data(), bytes.size());
    // 64 / (2 + 0.47*64) ~ 2.0.
    EXPECT_NEAR(r, 2.0, 0.25);
}

TEST(CacheModel, LimitCCBeatsTwoTag)
{
    auto bytes = snapshotBytes(1 << 16, 0.53, 9);
    CompRatios r = analyzeSnapshot(bytes.data(), bytes.size());
    EXPECT_GT(r.limitCC, r.twoTagCC);
    EXPECT_GE(r.twoTagCC, 1.0);
}

TEST(CacheModel, Figure15Ordering)
{
    // ZCOMP > LimitCC > TwoTagCC on feature-map snapshots (Figure 15:
    // geomeans 1.8 / 1.54 / 1.1).
    std::vector<double> z, l, t;
    for (double s : {0.49, 0.53, 0.58, 0.62, 0.55}) {
        auto bytes =
            snapshotBytes(1 << 16, s, static_cast<uint64_t>(s * 100));
        CompRatios r = analyzeSnapshot(bytes.data(), bytes.size());
        z.push_back(r.zcomp);
        l.push_back(r.limitCC);
        t.push_back(r.twoTagCC);
    }
    double gz = geomean(z), gl = geomean(l), gt = geomean(t);
    EXPECT_GT(gz, gl);
    EXPECT_GT(gl, gt);
    EXPECT_NEAR(gz, 1.8, 0.45);
    EXPECT_NEAR(gl, 1.54, 0.45);
    EXPECT_NEAR(gt, 1.1, 0.3);
}

TEST(CacheModel, TwoTagPairsOnlyWithinSets)
{
    // All-zero snapshot: every pair fits, ratio approaches 2.
    std::vector<uint8_t> zeros(64 * 128, 0);
    EXPECT_NEAR(twoTagCCRatio(zeros.data(), zeros.size(), 4), 2.0,
                0.05);
    // Incompressible snapshot: no pairs fit, ratio 1.
    auto dense = snapshotBytes(64 * 32, 0.0, 11);
    EXPECT_NEAR(twoTagCCRatio(dense.data(), dense.size(), 4), 1.0,
                0.05);
}

TEST(CacheModel, Geomean)
{
    EXPECT_DOUBLE_EQ(geomean({}), 1.0);
    EXPECT_DOUBLE_EQ(geomean({2.0, 2.0}), 2.0);
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-9);
}
