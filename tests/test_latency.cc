/** @file Unit tests for the instruction cost tables and KernelBody. */

#include <gtest/gtest.h>

#include "isa/latency.hh"

using namespace zcomp;

TEST(Latency, ZcompMatchesSection33)
{
    // Section 3.3: logic component has 2-cycle latency and 1/cycle
    // throughput for both zcomps and zcompl.
    EXPECT_EQ(instrCost(InstrClass::ZcompS).latency, 2);
    EXPECT_EQ(instrCost(InstrClass::ZcompL).latency, 2);
    EXPECT_DOUBLE_EQ(instrCost(InstrClass::ZcompS).throughput, 1.0);
    EXPECT_DOUBLE_EQ(instrCost(InstrClass::ZcompL).throughput, 1.0);
}

TEST(Latency, CompressExpandCostMoreThanPlainMoves)
{
    EXPECT_GT(instrCost(InstrClass::VecCompressStore).uops,
              instrCost(InstrClass::VecStore).uops);
    EXPECT_GT(instrCost(InstrClass::VecExpandLoad).uops,
              instrCost(InstrClass::VecLoad).uops);
}

TEST(Latency, NamesAreDistinct)
{
    EXPECT_STREQ(instrClassName(InstrClass::ZcompS), "zcomps");
    EXPECT_STREQ(instrClassName(InstrClass::ZcompL), "zcompl");
    EXPECT_STRNE(instrClassName(InstrClass::VecLoad),
                 instrClassName(InstrClass::VecStore));
}

TEST(KernelBody, CountsInstrsAndUops)
{
    KernelBody body;
    body.name = "demo";
    body.instrs = {
        {InstrClass::VecLoad, 1},
        {InstrClass::VecCompressStore, 1},
        {InstrClass::LoopOverhead, 1},
    };
    body.vecRegs = 2;
    body.maskRegs = 1;
    body.scalarRegs = 3;
    EXPECT_EQ(body.totalInstrs(), 3);
    EXPECT_EQ(body.totalUops(), 1 + 4 + 2);
    EXPECT_EQ(body.totalRegs(), 6);
}
