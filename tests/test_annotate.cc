/**
 * @file
 * Unit tests for the annotated synchronization wrappers in
 * common/annotate.hh: Mutex lock/try_lock semantics, LockGuard RAII,
 * CondVar wakeups, and that the annotation macros compile away to
 * nothing on non-clang builds.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/annotate.hh"

using namespace zcomp;

namespace {

/**
 * Probe whether mu is currently free, from whichever thread runs
 * this. The try_lock/unlock juggling is conditional in a way the
 * static analysis cannot follow, so it is opted out and verified
 * dynamically (TSan leg) instead.
 */
int
probeTryLock(Mutex &mu) ZCOMP_NO_ANALYSIS
{
    if (!mu.try_lock())
        return 0;
    mu.unlock();
    return 1;
}

} // namespace

TEST(Annotate, TryLockReflectsOwnership)
{
    Mutex mu;
    mu.lock();

    // Contended probe must come from another thread: self-try_lock
    // on an owned std::mutex is undefined behavior.
    std::atomic<int> probed{-1};
    std::thread t([&] { probed = probeTryLock(mu); });
    t.join();
    EXPECT_EQ(probed.load(), 0);

    mu.unlock();
    std::thread t2([&] { probed = probeTryLock(mu); });
    t2.join();
    EXPECT_EQ(probed.load(), 1);
}

TEST(Annotate, LockGuardReleasesOnScopeExit)
{
    Mutex mu;
    std::atomic<int> probed{-1};
    {
        LockGuard lk(mu);
        std::thread t([&] { probed = probeTryLock(mu); });
        t.join();
        EXPECT_EQ(probed.load(), 0);
    }
    std::thread t2([&] { probed = probeTryLock(mu); });
    t2.join();
    EXPECT_EQ(probed.load(), 1);
}

TEST(Annotate, MutexExcludesConcurrentCriticalSections)
{
    Mutex mu;
    int counter = 0;
    constexpr int threads = 4;
    constexpr int iters = 2000;
    std::vector<std::thread> ts;
    for (int i = 0; i < threads; i++) {
        ts.emplace_back([&] {
            for (int j = 0; j < iters; j++) {
                LockGuard lk(mu);
                counter++;
            }
        });
    }
    for (auto &t : ts)
        t.join();
    LockGuard lk(mu);
    EXPECT_EQ(counter, threads * iters);
}

TEST(Annotate, CondVarProducerConsumer)
{
    Mutex mu;
    CondVar cv;
    int ready = 0;
    std::atomic<int> consumed{0};

    std::thread consumer([&] {
        for (int want = 1; want <= 3; want++) {
            LockGuard lk(mu);
            // Explicit predicate loop per the annotate.hh contract.
            while (ready < want)
                cv.wait(mu);
            consumed = ready;
        }
    });
    for (int i = 1; i <= 3; i++) {
        LockGuard lk(mu);
        ready = i;
        cv.notify_one();
    }
    consumer.join();
    EXPECT_EQ(consumed.load(), 3);
}

TEST(Annotate, MacrosAreNoOpsWhenAnalysisIsOff)
{
    // Under GCC (and clang with ZCOMP_DISABLE_THREAD_SAFETY_ANALYSIS)
    // every capability macro must expand to nothing, so annotated
    // declarations are plain declarations. This test compiling at all
    // is most of the point; the stringize check pins the expansion.
#if !defined(__clang__) || defined(ZCOMP_DISABLE_THREAD_SAFETY_ANALYSIS)
#define ZCOMP_TEST_STR2(x) #x
#define ZCOMP_TEST_STR(x) ZCOMP_TEST_STR2(x)
    EXPECT_STREQ(ZCOMP_TEST_STR(ZCOMP_GUARDED_BY(mu_)), "");
    EXPECT_STREQ(ZCOMP_TEST_STR(ZCOMP_REQUIRES(mu_)), "");
    EXPECT_STREQ(ZCOMP_TEST_STR(ZCOMP_EXCLUDES(mu_)), "");
#undef ZCOMP_TEST_STR
#undef ZCOMP_TEST_STR2
#endif
    SUCCEED();
}
