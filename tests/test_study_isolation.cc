/** @file End-to-end tests for --isolate-cells: the real study runner
 *  sharded across worker processes (this very binary, re-invoked via
 *  the hidden --worker-cell flag). Covers row byte-identity against
 *  the in-process path, the SIGSEGV/SIGKILL crash matrix with
 *  byte-identical --resume healing, hard-timeout reaping of a
 *  spinning cell, and tear-free worker output under a sticky status
 *  line. Process-level supervisor mechanics (deadlines, stealing,
 *  backoff) are unit-tested in test_sweep_supervisor.cc. */

#include "bench/bench_common.hh"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/log.hh"
#include "common/subprocess.hh"

using namespace zcomp;
using namespace zcomp::bench;

namespace fs = std::filesystem;

namespace {

// The quick two-cell sweep every test uses: ResNet-32 at tiny
// batches, training + inference (same set as test_study_runner).
StudyOptions
quickOptions()
{
    StudyOptions opt;
    opt.models = {{ModelId::Resnet32, 2, 1, 0, 1.0}};
    return opt;
}

// A harness tuned for tests: isolated, fast backoff, and a generous
// heartbeat so slow CI machines never trip it by accident.
StudyHarness
isolatedHarness(int workers)
{
    StudyHarness h;
    h.isolateCells = true;
    h.workers = workers;
    h.backoffMillis = 1;
    h.heartbeatTimeoutSec = 60;
    return h;
}

/**
 * Canonical row bytes modulo host wall-clock: the only fields two
 * runs of the same cell may legitimately differ in are the prep/sim
 * millisecond timings, so zero them and compare the full dump.
 */
std::string
canonRow(StudyRow row)
{
    row.prepMillis = 0;
    for (double &ms : row.simMillis)
        ms = 0;
    return studyRowToJson(row).dump(2);
}

std::vector<StudyRow>
runQuiet(const StudyOptions &opt)
{
    setQuiet(true);
    std::vector<StudyRow> rows = runStudy(opt);
    setQuiet(false);
    return rows;
}

/** Scoped ZCOMP_TEST_CRASH_CELL so no test leaks a crash spec. */
class ScopedCrashEnv
{
  public:
    explicit ScopedCrashEnv(const std::string &spec)
    {
        setenv("ZCOMP_TEST_CRASH_CELL", spec.c_str(), 1);
    }
    ~ScopedCrashEnv() { unsetenv("ZCOMP_TEST_CRASH_CELL"); }
};

class ScopedDir
{
  public:
    explicit ScopedDir(std::string path) : path_(std::move(path))
    {
        fs::remove_all(path_);
    }
    ~ScopedDir() { fs::remove_all(path_); }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

} // namespace

/**
 * The determinism half of DESIGN.md section 4.11: sharding cells
 * across worker processes must yield rows byte-identical (modulo
 * wall-clock) to the in-process pool path.
 */
TEST(StudyIsolation, IsolatedRowsMatchInProcessRowsExactly)
{
    StudyOptions opt = quickOptions();
    ThreadPool seq(1);
    opt.pool = &seq;
    std::vector<StudyRow> inproc = runQuiet(opt);

    StudyHarness h = isolatedHarness(2);
    opt.harness = &h;
    std::vector<StudyRow> isolated = runQuiet(opt);

    ASSERT_EQ(inproc.size(), 2u);
    ASSERT_EQ(isolated.size(), inproc.size());
    for (size_t i = 0; i < inproc.size(); i++) {
        EXPECT_EQ(isolated[i].status, CellStatus::Simulated);
        EXPECT_EQ(canonRow(isolated[i]), canonRow(inproc[i]))
            << "row " << i;
    }
}

/**
 * The crash matrix: a worker dying of SIGSEGV or SIGKILL mid-cell
 * costs exactly that cell (typed with the signal name), and a
 * --resume afterwards heals the sweep into a report byte-identical
 * (modulo wall-clock) to an uninterrupted run.
 */
TEST(StudyIsolation, CrashedCellIsTypedAndResumeHealsByteIdentically)
{
    // Uninterrupted reference rows, computed once for both signals.
    StudyOptions opt = quickOptions();
    StudyHarness h = isolatedHarness(2);
    opt.harness = &h;
    std::vector<StudyRow> ref = runQuiet(opt);
    ASSERT_EQ(ref.size(), 2u);

    struct Crash {
        const char *how;
        const char *signal;
    };
    for (const Crash &c : {Crash{"sigsegv", "SIGSEGV"},
                           Crash{"sigkill", "SIGKILL"}}) {
        SCOPED_TRACE(c.how);
        ScopedDir cache(std::string("study_isolation_cache_") +
                        c.how);
        h.cacheDir = cache.path();
        h.failBudget = 1;

        // Crashed sweep: the training cell dies, the inference cell
        // completes and lands in the cache.
        std::vector<StudyRow> crashed;
        {
            ScopedCrashEnv env(std::string("resnet-32:training:") +
                               c.how);
            crashed = runQuiet(opt);
        }
        ASSERT_EQ(crashed.size(), 2u);
        EXPECT_EQ(crashed[0].status, CellStatus::Failed);
        EXPECT_NE(crashed[0].error.find(c.signal), std::string::npos)
            << crashed[0].error;
        EXPECT_EQ(crashed[1].status, CellStatus::Simulated);
        EXPECT_EQ(canonRow(crashed[1]), canonRow(ref[1]));

        // Resume (crash hook disarmed): the failed cell re-simulates,
        // the surviving cell restores from cache, and both rows match
        // the uninterrupted run byte for byte.
        h.resume = true;
        std::vector<StudyRow> healed = runQuiet(opt);
        h.resume = false;
        ASSERT_EQ(healed.size(), 2u);
        EXPECT_EQ(healed[0].status, CellStatus::Simulated);
        EXPECT_EQ(healed[1].status, CellStatus::Cached);
        for (size_t i = 0; i < healed.size(); i++)
            EXPECT_EQ(canonRow(healed[i]), canonRow(ref[i]))
                << "row " << i;
        h.cacheDir.clear();
        h.failBudget = 0;
    }
}

/**
 * A cell spinning forever while its heartbeat thread keeps beating
 * can only be ended by the hard wall-clock deadline; the sweep must
 * reap it within that budget and type the row accordingly.
 */
TEST(StudyIsolation, SpinningCellIsReapedWithinHardTimeout)
{
    ScopedCrashEnv env("resnet-32:training:spin");
    StudyOptions opt = quickOptions();
    opt.trainingOnly = true;
    StudyHarness h = isolatedHarness(1);
    h.hardTimeoutSec = 2;
    h.failBudget = 1;
    opt.harness = &h;

    auto t0 = std::chrono::steady_clock::now();
    std::vector<StudyRow> rows = runQuiet(opt);
    double elapsed = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count();

    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].status, CellStatus::Failed);
    EXPECT_NE(rows[0].error.find("hard timeout"), std::string::npos)
        << rows[0].error;
    // The deadline is 2s; allow generous slack for load, but a spin
    // surviving this long means the reaper never fired.
    EXPECT_LT(elapsed, 30.0);
}

/**
 * Satellite guarantee for --progress: worker log output forwarded by
 * the supervisor must never tear the sticky status line, even with
 * four workers emitting concurrently. The child half (below main())
 * runs a 4-cell sweep at --workers 4 with a status line pinned;
 * here we spawn it and check every stderr line decodes as
 * [status][erase]<whole log line> - a torn write would surface a
 * fragment with no erase sequence or no log prefix.
 */
TEST(StudyIsolation, WorkerOutputDoesNotTearTheStatusLine)
{
    Subprocess::Options sopt;
    sopt.argv = {"/proc/self/exe", "--tear-test-child"};
    Subprocess p(sopt);
    LineReader err(p.stderrFd());
    std::vector<std::string> lines;
    while (err.poll(lines))
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    while (!p.poll())
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    ASSERT_TRUE(p.status().ok()) << p.status().describe();

    const std::string erase = "\r\x1b[2K";
    int forwarded = 0;
    for (const std::string &line : lines) {
        size_t pos = line.rfind(erase);
        // Every emission while the status line is pinned starts by
        // erasing it; a line with no erase sequence is a torn write.
        ASSERT_NE(pos, std::string::npos) << "torn line: " << line;
        std::string rest = line.substr(pos + erase.size());
        if (rest.empty())
            continue; // the final clearStatusLine()
        EXPECT_TRUE(rest.rfind("info: ", 0) == 0 ||
                    rest.rfind("warn: ", 0) == 0)
            << "torn line: " << line;
        forwarded++;
    }
    // Vacuous-pass guard: 4 workers x (preparing + row done) lines.
    EXPECT_GE(forwarded, 8);
}

namespace {

/** The --tear-test-child body: see the test above. */
int
runTearTestChild()
{
    setQuiet(false);
    setStatusLine("sweep: 0/4 cells");
    StudyOptions opt;
    opt.models = {{ModelId::Resnet32, 2, 1, 0, 1.0},
                  {ModelId::Resnet32, 4, 2, 0, 1.0}};
    StudyHarness h = isolatedHarness(4);
    opt.harness = &h;
    std::vector<StudyRow> rows = runStudy(opt);
    clearStatusLine();
    return rows.size() == 4 ? 0 : 1;
}

} // namespace

/**
 * Custom main: the supervisor re-invokes this very binary as its
 * worker (--worker-cell), so that mode must be intercepted before
 * gtest ever sees argv - exactly what the bench binaries do via
 * parseBenchArgs().
 */
int
main(int argc, char **argv)
{
    zcomp::bench::maybeRunWorkerCell(argc, argv);
    if (argc > 1 && std::strcmp(argv[1], "--tear-test-child") == 0)
        return runTearTestChild();
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
