/** @file Unit and property tests for compressed stream reader/writer. */

#include <vector>

#include <gtest/gtest.h>

#include "common/error.hh"
#include "common/fault.hh"
#include "common/rng.hh"
#include "zcomp/stream.hh"

using namespace zcomp;

namespace {

std::vector<float>
makeSparse(size_t n, double sparsity, uint64_t seed)
{
    Rng rng(seed);
    std::vector<float> v(n);
    for (auto &x : v)
        x = rng.chance(sparsity) ? 0.0f
                                 : static_cast<float>(rng.gaussian(0, 1)) +
                                       3.0f;
    return v;
}

} // namespace

TEST(Stream, CompressExpandRoundTrip)
{
    const size_t n = 16 * 100;
    auto src = makeSparse(n, 0.5, 1);
    std::vector<uint8_t> buf(n * 4 + 2 * (n / 16));
    StreamStats cs = compressBufferPs(src.data(), n, buf.data(),
                                      buf.size(), Ccf::EQZ);
    std::vector<float> out(n, -1.0f);
    StreamStats es = expandBufferPs(buf.data(), buf.size(), out.data(), n);
    EXPECT_EQ(cs.vectors, es.vectors);
    EXPECT_EQ(cs.nnz, es.nnz);
    EXPECT_EQ(out, src);
}

TEST(Stream, StatsMatchSparsity)
{
    const size_t n = 16 * 4096;
    auto src = makeSparse(n, 0.53, 2);
    std::vector<uint8_t> buf(n * 4 + 2 * (n / 16));
    StreamStats s = compressBufferPs(src.data(), n, buf.data(),
                                     buf.size(), Ccf::EQZ);
    EXPECT_EQ(s.vectors, n / 16);
    EXPECT_NEAR(s.sparsity(ElemType::F32), 0.53, 0.02);
    // With ~53% sparsity: compressed = 0.47*64 + 2 bytes per vector.
    double expected_ratio = 64.0 / (0.47 * 64.0 + 2.0);
    EXPECT_NEAR(s.ratio(), expected_ratio, 0.15);
}

TEST(Stream, InterleavedFitsOriginalAllocationAtModestSparsity)
{
    // Section 4.1: >= 3.125% compressibility amortizes the metadata for
    // fp32/512-bit, so the stream fits in the original allocation.
    const size_t n = 16 * 1024;
    auto src = makeSparse(n, 0.10, 3);
    std::vector<uint8_t> buf(n * 4);    // exactly the original size
    StreamStats s = compressBufferPs(src.data(), n, buf.data(),
                                     buf.size(), Ccf::EQZ);
    EXPECT_LE(s.totalBytes(), n * 4);
}

TEST(StreamDeath, IncompressibleDataOverflowsOriginalAllocation)
{
    const size_t n = 16 * 8;
    std::vector<float> src(n, 1.0f);    // fully dense
    std::vector<uint8_t> buf(n * 4);    // no room for headers
    EXPECT_DEATH(
        compressBufferPs(src.data(), n, buf.data(), buf.size(), Ccf::EQZ),
        "memory violation");
}

TEST(Stream, WriterRecordsPerVectorNnz)
{
    const size_t n = 16 * 3;
    std::vector<float> src(n, 0.0f);
    src[0] = 1.0f;              // vector 0: nnz 1
    src[16] = 1.0f;             // vector 1: nnz 2
    src[17] = 2.0f;
    std::vector<uint8_t> buf(n * 4 + 8);
    CompressedWriter w(buf.data(), buf.size(), ElemType::F32, Ccf::EQZ);
    for (size_t i = 0; i < n; i += 16)
        w.put(Vec512::load(src.data() + i));
    ASSERT_EQ(w.nnzRecord().size(), 3u);
    EXPECT_EQ(w.nnzRecord()[0], 1);
    EXPECT_EQ(w.nnzRecord()[1], 2);
    EXPECT_EQ(w.nnzRecord()[2], 0);
}

TEST(Stream, SeparateHeaderWriterReader)
{
    const size_t n = 16 * 64;
    auto src = makeSparse(n, 0.6, 4);
    std::vector<uint8_t> data(n * 4);
    std::vector<uint8_t> hdrs(2 * (n / 16));
    CompressedWriter w(data.data(), data.size(), hdrs.data(), hdrs.size(),
                       ElemType::F32, Ccf::EQZ);
    for (size_t i = 0; i < n; i += 16)
        w.put(Vec512::load(src.data() + i));
    EXPECT_EQ(w.hdrBytesWritten(), hdrs.size());

    CompressedReader r(data.data(), w.bytesWritten(), hdrs.data(),
                       hdrs.size(), ElemType::F32);
    for (size_t i = 0; i < n; i += 16) {
        Vec512 v = r.get();
        for (int l = 0; l < 16; l++)
            EXPECT_FLOAT_EQ(v.lane<float>(l), src[i + l]);
    }
}

TEST(Stream, ValidateStreamAcceptsWellFormed)
{
    const size_t n = 16 * 10;
    auto src = makeSparse(n, 0.5, 5);
    std::vector<uint8_t> buf(n * 4 + 2 * (n / 16));
    StreamStats s = compressBufferPs(src.data(), n, buf.data(),
                                     buf.size(), Ccf::EQZ);
    EXPECT_EQ(validateStream(buf.data(), buf.size(), n / 16,
                             ElemType::F32),
              s.totalBytes());
}

TEST(Stream, ValidateStreamRejectsTruncated)
{
    const size_t n = 16 * 10;
    auto src = makeSparse(n, 0.2, 6);
    std::vector<uint8_t> buf(n * 4 + 2 * (n / 16));
    StreamStats s = compressBufferPs(src.data(), n, buf.data(),
                                     buf.size(), Ccf::EQZ);
    EXPECT_EQ(validateStream(buf.data(), s.totalBytes() - 1, n / 16,
                             ElemType::F32),
              0u);
}

TEST(Stream, RatioOfEmptyStreamIsOne)
{
    StreamStats s;
    EXPECT_DOUBLE_EQ(s.ratio(), 1.0);
    EXPECT_DOUBLE_EQ(s.sparsity(ElemType::F32), 0.0);
}

class StreamSparsitySweep : public ::testing::TestWithParam<double>
{
};

TEST_P(StreamSparsitySweep, RoundTripAndRatioMonotonicity)
{
    double sparsity = GetParam();
    const size_t n = 16 * 512;
    auto src = makeSparse(n, sparsity, 7);
    std::vector<uint8_t> buf(n * 4 + 2 * (n / 16));
    StreamStats s = compressBufferPs(src.data(), n, buf.data(),
                                     buf.size(), Ccf::EQZ);
    std::vector<float> out(n);
    expandBufferPs(buf.data(), buf.size(), out.data(), n);
    EXPECT_EQ(out, src);
    // Ratio must be at least the worst case and grow with sparsity.
    EXPECT_GE(s.ratio(), 64.0 / 66.0 - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sparsities, StreamSparsitySweep,
                         ::testing::Values(0.0, 0.1, 0.3, 0.49, 0.62,
                                           0.8, 0.95, 1.0));

TEST(Stream, SeparateHeaderImmuneToIncompressibleData)
{
    // Section 4.1 option 2: with a decoupled header store, fully
    // dense data still fits - payload occupies exactly the original
    // allocation and the headers live in their own region.
    const size_t n = 16 * 32;
    std::vector<float> src(n, 1.0f);
    std::vector<uint8_t> data(n * 4);
    std::vector<uint8_t> hdrs(2 * (n / 16));
    CompressedWriter w(data.data(), data.size(), hdrs.data(),
                       hdrs.size(), ElemType::F32, Ccf::EQZ);
    for (size_t i = 0; i < n; i += 16)
        w.put(Vec512::load(src.data() + i));
    EXPECT_EQ(w.bytesWritten(), n * 4);
    EXPECT_EQ(w.hdrBytesWritten(), hdrs.size());
    EXPECT_DOUBLE_EQ(w.stats().sparsity(ElemType::F32), 0.0);
}

TEST(Stream, TruncatedStreamRaisesDecodeError)
{
    const size_t n = 16 * 4;
    auto src = makeSparse(n, 0.4, 8);
    std::vector<uint8_t> buf(n * 4 + 2 * (n / 16));
    StreamStats s = compressBufferPs(src.data(), n, buf.data(),
                                     buf.size(), Ccf::EQZ);
    uint64_t before = decodeErrorCount();
    CompressedReader r(buf.data(), s.totalBytes() - 1, ElemType::F32);
    EXPECT_THROW(
        {
            for (size_t i = 0; i < n / 16; i++)
                r.get();
        },
        DecodeError);
    EXPECT_GT(decodeErrorCount(), before);
}

TEST(Stream, FinishRejectsTrailingBytes)
{
    const size_t n = 16 * 4;
    auto src = makeSparse(n, 0.4, 9);
    std::vector<uint8_t> buf(n * 4 + 2 * (n / 16));
    StreamStats s = compressBufferPs(src.data(), n, buf.data(),
                                     buf.size(), Ccf::EQZ);

    CompressedReader exact(buf.data(), s.totalBytes(), ElemType::F32);
    for (size_t i = 0; i < n / 16; i++)
        exact.get();
    EXPECT_NO_THROW(exact.finish());

    // Same stream with 3 extra capacity bytes: a truncated decode
    // loop (one vector short) leaves undecoded bytes behind.
    CompressedReader leftover(buf.data(), s.totalBytes(),
                              ElemType::F32);
    for (size_t i = 0; i < n / 16 - 1; i++)
        leftover.get();
    EXPECT_THROW(leftover.finish(), DecodeError);
}

TEST(Stream, NnzRecordMismatchRaisesDecodeError)
{
    const size_t n = 16 * 3;
    auto src = makeSparse(n, 0.4, 10);
    std::vector<uint8_t> buf(n * 4 + 2 * (n / 16));
    CompressedWriter w(buf.data(), buf.size(), ElemType::F32,
                       Ccf::EQZ);
    for (size_t i = 0; i < n; i += 16)
        w.put(Vec512::load(src.data() + i));

    // Intact stream + intact record decodes clean.
    {
        CompressedReader r(buf.data(), w.bytesWritten(), ElemType::F32);
        r.expectNnzRecord(&w.nnzRecord());
        for (int i = 0; i < 3; i++)
            r.get();
        EXPECT_NO_THROW(r.finish());
    }

    // A header bitflip in vector 1 disagrees with the record at
    // exactly that vector.
    std::vector<uint8_t> corrupt(buf.begin(), buf.end());
    size_t v1_hdr = 2 + static_cast<size_t>(w.nnzRecord()[0]) * 4;
    corrupt[v1_hdr] ^= 0x01;
    CompressedReader r(corrupt.data(), w.bytesWritten(), ElemType::F32);
    r.expectNnzRecord(&w.nnzRecord());
    r.get();
    uint64_t before = decodeErrorCount();
    EXPECT_THROW(r.get(), DecodeError);
    EXPECT_EQ(decodeErrorCount(), before + 1);

    // Reading past the recorded vector count is also a mismatch.
    CompressedReader over(buf.data(), w.bytesWritten(), ElemType::F32);
    std::vector<uint8_t> short_record(w.nnzRecord().begin(),
                                      w.nnzRecord().begin() + 2);
    over.expectNnzRecord(&short_record);
    over.get();
    over.get();
    EXPECT_THROW(over.get(), DecodeError);
}

TEST(Stream, SeparateHeaderStoreTruncationRaisesDecodeError)
{
    const size_t n = 16 * 4;
    auto src = makeSparse(n, 0.5, 11);
    std::vector<uint8_t> data(n * 4);
    std::vector<uint8_t> hdrs(2 * (n / 16));
    CompressedWriter w(data.data(), data.size(), hdrs.data(),
                       hdrs.size(), ElemType::F32, Ccf::EQZ);
    for (size_t i = 0; i < n; i += 16)
        w.put(Vec512::load(src.data() + i));

    CompressedReader r(data.data(), w.bytesWritten(), hdrs.data(),
                       hdrs.size() - 1, ElemType::F32);
    EXPECT_THROW(
        {
            for (size_t i = 0; i < n / 16; i++)
                r.get();
        },
        DecodeError);
}

TEST(Stream, InjectedFaultSitesRaiseDecodeError)
{
    const size_t n = 16;
    auto src = makeSparse(n, 0.5, 12);
    std::vector<uint8_t> buf(n * 4 + 2);
    StreamStats s = compressBufferPs(src.data(), n, buf.data(),
                                     buf.size(), Ccf::EQZ);

    FaultInjector::global().configure("zcomp.header:1");
    uint64_t before = decodeErrorCount();
    CompressedReader r(buf.data(), s.totalBytes(), ElemType::F32);
    EXPECT_THROW(r.get(), DecodeError);
    EXPECT_EQ(decodeErrorCount(), before + 1);
    EXPECT_EQ(FaultInjector::global().injected(faultsite::ZcompHeader),
              1u);
    FaultInjector::global().reset();

    FaultInjector::global().configure("zcomp.stream.truncate:1");
    CompressedReader r2(buf.data(), s.totalBytes(), ElemType::F32);
    EXPECT_THROW(r2.get(), DecodeError);
    EXPECT_EQ(
        FaultInjector::global().injected(faultsite::StreamTruncate),
        1u);
    FaultInjector::global().reset();

    // Disarmed again: the same stream decodes clean.
    CompressedReader r3(buf.data(), s.totalBytes(), ElemType::F32);
    EXPECT_NO_THROW(r3.get());
}

TEST(Stream, FitsWorstCaseReportsHonestly)
{
    std::vector<uint8_t> buf(100);
    CompressedWriter w(buf.data(), buf.size(), ElemType::F32,
                       Ccf::EQZ);
    EXPECT_TRUE(w.fitsWorstCase());     // 66 <= 100
    // Write one dense vector (66 bytes): only 34 left.
    Vec512 dense;
    for (int i = 0; i < 16; i++)
        dense.setLane<float>(i, 1.0f + i);
    w.put(dense);
    EXPECT_FALSE(w.fitsWorstCase());
}
