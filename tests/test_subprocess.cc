/** @file Unit tests for the fork/exec wrapper behind the sweep
 *  supervisor: exit-status decoding, non-blocking line reads, and
 *  the SIGTERM -> SIGKILL escalation. */

#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <thread>

#include "common/subprocess.hh"

using namespace zcomp;

namespace {

/** Spawn /bin/sh -c <script> (extra env optional). */
Subprocess::Options
shell(const std::string &script)
{
    Subprocess::Options opt;
    opt.argv = {"/bin/sh", "-c", script};
    return opt;
}

/** Block (with sleeps) until the child is reaped; returns status. */
ExitStatus
waitFor(Subprocess &p)
{
    while (!p.poll())
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    return p.status();
}

/** Drain a LineReader until EOF, collecting every line. */
std::vector<std::string>
drainAll(Subprocess &p, LineReader &r)
{
    std::vector<std::string> lines;
    while (r.poll(lines))
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    waitFor(p);
    return lines;
}

} // namespace

TEST(ExitStatus, DescribesExitAndSignals)
{
    ExitStatus st;
    EXPECT_TRUE(st.running());
    EXPECT_EQ(st.describe(), "running");
    st.kind = ExitStatus::Exited;
    st.code = 3;
    EXPECT_EQ(st.describe(), "exit 3");
    EXPECT_FALSE(st.ok());
    st.code = 0;
    EXPECT_TRUE(st.ok());
    st.kind = ExitStatus::Signaled;
    st.sig = SIGSEGV;
    EXPECT_EQ(st.describe(), "signal 11 (SIGSEGV)");
    EXPECT_TRUE(st.signaled());
}

TEST(ExitStatus, SignalNames)
{
    EXPECT_EQ(ExitStatus::signalName(SIGKILL), "SIGKILL");
    EXPECT_EQ(ExitStatus::signalName(SIGSEGV), "SIGSEGV");
    EXPECT_EQ(ExitStatus::signalName(SIGTERM), "SIGTERM");
    EXPECT_EQ(ExitStatus::signalName(SIGABRT), "SIGABRT");
    // Exotic signals still round-trip to something unambiguous.
    EXPECT_EQ(ExitStatus::signalName(63), "SIG63");
}

TEST(Subprocess, ExitCodeIsDecoded)
{
    Subprocess p(shell("exit 7"));
    ExitStatus st = waitFor(p);
    EXPECT_EQ(st.kind, ExitStatus::Exited);
    EXPECT_EQ(st.code, 7);
    EXPECT_FALSE(st.ok());
}

TEST(Subprocess, SignalDeathIsDecoded)
{
    Subprocess p(shell("kill -9 $$"));
    ExitStatus st = waitFor(p);
    EXPECT_EQ(st.kind, ExitStatus::Signaled);
    EXPECT_EQ(st.sig, SIGKILL);
    EXPECT_EQ(ExitStatus::signalName(st.sig), "SIGKILL");
}

TEST(Subprocess, ExecFailureIs127)
{
    Subprocess::Options opt;
    opt.argv = {"/nonexistent/zcomp-no-such-binary"};
    Subprocess p(opt);
    ExitStatus st = waitFor(p);
    EXPECT_EQ(st.kind, ExitStatus::Exited);
    EXPECT_EQ(st.code, 127);
}

TEST(Subprocess, CapturesStdoutAndStderrSeparately)
{
    Subprocess p(shell("echo out-line; echo err-line >&2"));
    LineReader out(p.stdoutFd());
    LineReader err(p.stderrFd());
    std::vector<std::string> out_lines = drainAll(p, out);
    std::vector<std::string> err_lines;
    while (err.poll(err_lines)) {}
    ASSERT_EQ(out_lines.size(), 1u);
    EXPECT_EQ(out_lines[0], "out-line");
    ASSERT_EQ(err_lines.size(), 1u);
    EXPECT_EQ(err_lines[0], "err-line");
}

TEST(Subprocess, ExtraEnvReachesChild)
{
    Subprocess::Options opt = shell("echo \"var=$ZCOMP_TEST_SUB_VAR\"");
    opt.extraEnv.push_back({"ZCOMP_TEST_SUB_VAR", "hello-42"});
    Subprocess p(opt);
    LineReader out(p.stdoutFd());
    std::vector<std::string> lines = drainAll(p, out);
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_EQ(lines[0], "var=hello-42");
}

TEST(LineReader, FlushesTrailingPartialLineAtEof)
{
    // A child SIGKILLed mid-record leaves an unterminated line in
    // the pipe; the reader must still surface it at EOF.
    Subprocess p(shell("printf 'complete\\nhalf'"));
    LineReader out(p.stdoutFd());
    std::vector<std::string> lines = drainAll(p, out);
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_EQ(lines[0], "complete");
    EXPECT_EQ(lines[1], "half");
    EXPECT_TRUE(out.eof());
}

TEST(LineReader, DoesNotEmitIncompleteLinesEarly)
{
    // While the writer is alive and mid-line, poll() must buffer -
    // no torn half-line may ever surface.
    Subprocess p(shell("printf 'part-a'; sleep 0.3; "
                       "printf 'part-b\\n'"));
    LineReader out(p.stdoutFd());
    std::vector<std::string> lines;
    auto t0 = std::chrono::steady_clock::now();
    // Poll for up to 150ms: the first fragment must stay buffered.
    while (std::chrono::steady_clock::now() - t0 <
           std::chrono::milliseconds(150)) {
        out.poll(lines);
        EXPECT_TRUE(lines.empty());
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    while (out.poll(lines))
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    waitFor(p);
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_EQ(lines[0], "part-apart-b");
}

TEST(Subprocess, TerminateEscalatesToSigkill)
{
    // The child ignores SIGTERM, so only the KILL escalation can
    // end it - exactly the hung-worker scenario.
    Subprocess p(shell("trap '' TERM; while :; do sleep 0.05; done"));
    // Give the shell a moment to install the trap.
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    p.terminate(150);
    const ExitStatus &st = p.status();
    ASSERT_FALSE(st.running());
    EXPECT_EQ(st.kind, ExitStatus::Signaled);
    EXPECT_EQ(st.sig, SIGKILL);
}

TEST(Subprocess, TerminateIsGracefulWhenChildCooperates)
{
    Subprocess p(shell("trap 'exit 5' TERM; while :; do sleep 0.02; "
                       "done"));
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    p.terminate(2000);
    const ExitStatus &st = p.status();
    ASSERT_FALSE(st.running());
    // The shell exits 5 from its TERM trap - no KILL needed.
    EXPECT_EQ(st.kind, ExitStatus::Exited);
    EXPECT_EQ(st.code, 5);
}

TEST(Subprocess, KillIsImmediate)
{
    Subprocess p(shell("sleep 30"));
    p.kill();
    const ExitStatus &st = p.status();
    EXPECT_EQ(st.kind, ExitStatus::Signaled);
    EXPECT_EQ(st.sig, SIGKILL);
}

TEST(Subprocess, DestructorReapsRunningChild)
{
    pid_t pid;
    {
        Subprocess p(shell("sleep 30"));
        pid = p.pid();
    }
    // After destruction the pid must be gone (kill(pid, 0) fails
    // once the child is reaped and the pid recycled away from us).
    // zcomp-lint: allow(process-isolation)
    EXPECT_NE(::kill(pid, 0), 0);
}
