/**
 * @file
 * Unit tests for the CompressionScheme registry and the Figure 15
 * comparators: hand-computed EBPC/ZVC golden encodings, registry
 * determinism and miss behavior, the 64-byte per-line clamp on
 * incompressible data, and the typed DecodeError on misaligned
 * snapshots.
 */

#include "cachecomp/scheme.hh"

#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "cachecomp/cache_model.hh"
#include "cachecomp/ebpc.hh"
#include "cachecomp/zvc.hh"
#include "common/error.hh"
#include "common/rng.hh"
#include "sim/network_sim.hh"

using namespace zcomp;

namespace {

using Line = std::vector<uint8_t>;

Line
lineOf(const std::vector<float> &words)
{
    EXPECT_EQ(words.size(), 16u);
    Line line(64);
    std::memcpy(line.data(), words.data(), 64);
    return line;
}

Line
zeroLine()
{
    return lineOf(std::vector<float>(16, 0.0f));
}

Line
denseIdenticalLine()
{
    return lineOf(std::vector<float>(16, 1.0f));
}

/** 1.0, 0, 1.0, 0, ... - 8 nonzeros, 8 single-zero runs. */
Line
alternatingLine()
{
    std::vector<float> w(16, 0.0f);
    for (int i = 0; i < 16; i += 2)
        w[static_cast<size_t>(i)] = 1.0f;
    return lineOf(w);
}

/** Incompressible data: every word a full-entropy random bit
 *  pattern, no zeros, no shared planes. */
Line
randomDenseLine(uint64_t seed)
{
    Rng rng(seed);
    Line line(64);
    for (int w = 0; w < 16; w++) {
        uint32_t word = 0;
        while (word == 0)
            word = static_cast<uint32_t>(rng.next64());
        std::memcpy(line.data() + w * 4, &word, 4);
    }
    return line;
}

std::vector<uint8_t>
randomSnapshot(size_t lines, uint64_t seed)
{
    std::vector<uint8_t> snap;
    snap.reserve(lines * 64);
    for (size_t l = 0; l < lines; l++) {
        Line line = randomDenseLine(seed + l);
        snap.insert(snap.end(), line.begin(), line.end());
    }
    return snap;
}

} // namespace

// --- EBPC golden values (derivations in cachecomp/ebpc.hh) ---------

TEST(Ebpc, GoldenAllZero)
{
    // One 16-word zero run: 5 bits -> 1 byte.
    EXPECT_EQ(ebpcLineBytes(zeroLine().data()), 1);
}

TEST(Ebpc, GoldenDenseIdentical)
{
    // 16 keep flags + 32 verbatim + 32 empty planes = 80 bits.
    EXPECT_EQ(ebpcLineBytes(denseIdenticalLine().data()), 10);
}

TEST(Ebpc, GoldenAlternating)
{
    // 8 keep flags + 8 runs * 5 + 32 verbatim + 32 empty planes
    // = 112 bits.
    EXPECT_EQ(ebpcLineBytes(alternatingLine().data()), 14);
}

TEST(Ebpc, ClampsIncompressibleLine)
{
    // Full-entropy nonzeros populate every delta plane: 16 flags +
    // 32 + 32 * (1 + 15) bits >> 64 bytes, clamped to the line.
    EXPECT_EQ(ebpcLineBytes(randomDenseLine(7).data()), 64);
}

// --- ZVC golden values (derivation in cachecomp/zvc.hh) ------------

TEST(Zvc, GoldenAllZero)
{
    // 2 mask bytes padded to the 8-byte DMA beat.
    EXPECT_EQ(zvcLineBytes(zeroLine().data()), 8);
}

TEST(Zvc, GoldenDense)
{
    // 2 + 64 payload bytes -> 72 after padding, clamped to 64.
    EXPECT_EQ(zvcLineBytes(denseIdenticalLine().data()), 64);
}

TEST(Zvc, GoldenAlternating)
{
    // 2 + 8 * 4 = 34 bytes -> one 40-byte burst.
    EXPECT_EQ(zvcLineBytes(alternatingLine().data()), 40);
}

TEST(Zvc, PadsToBurstBeat)
{
    std::vector<float> w(16, 0.0f);
    w[3] = 2.5f;    // 2 + 4 = 6 bytes -> one 8-byte beat
    EXPECT_EQ(zvcLineBytes(lineOf(w).data()), 8);
}

// --- Registry contract ---------------------------------------------

TEST(SchemeRegistry, OrderIsStableAndComplete)
{
    const std::vector<const char *> expected = {
        "uncompressed", "avx512-comp", "zcomp", "limitcc",
        "twotagcc", "ebpc", "zvc"};
    const auto &schemes = allSchemes();
    ASSERT_EQ(schemes.size(), expected.size());
    for (size_t i = 0; i < expected.size(); i++)
        EXPECT_STREQ(schemes[i]->name(), expected[i]) << "index " << i;

    // Repeated calls return the identical sequence (same singletons,
    // same order) - the determinism the report/cache keys rely on.
    const auto &again = allSchemes();
    ASSERT_EQ(again.size(), schemes.size());
    for (size_t i = 0; i < schemes.size(); i++)
        EXPECT_EQ(again[i], schemes[i]);
}

TEST(SchemeRegistry, ByNameHitAndMiss)
{
    for (const CompressionScheme *s : allSchemes())
        EXPECT_EQ(schemeByName(s->name()), s);
    EXPECT_EQ(schemeByName("no-such-scheme"), nullptr);
    EXPECT_EQ(schemeByName(""), nullptr);
    EXPECT_EQ(schemeByName("ZCOMP"), nullptr);  // names are exact
}

TEST(SchemeRegistry, UncompressedIsIdentity)
{
    const CompressionScheme *u = schemeByName("uncompressed");
    ASSERT_NE(u, nullptr);
    EXPECT_EQ(u->lineBytes(zeroLine().data()), 64);
    EXPECT_EQ(u->lineBytes(randomDenseLine(3).data()), 64);
    std::vector<uint8_t> snap = randomSnapshot(8, 11);
    EXPECT_DOUBLE_EQ(u->snapshotRatio(snap.data(), snap.size()), 1.0);
}

// --- 64-byte clamp: no ratio below 1 on incompressible data --------

TEST(SchemeClamp, NoSchemeExpandsIncompressibleData)
{
    std::vector<uint8_t> snap = randomSnapshot(256, 23);
    for (const CompressionScheme *s : allSchemes()) {
        EXPECT_GE(s->snapshotRatio(snap.data(), snap.size()), 1.0)
            << s->name();
        for (size_t off = 0; off < snap.size(); off += 64) {
            int sz = s->lineBytes(snap.data() + off);
            ASSERT_GE(sz, 1) << s->name();
            ASSERT_LE(sz, 64) << s->name();
        }
    }
}

TEST(SchemeClamp, CacheModelRatiosAtLeastOneOnRandomData)
{
    // The ISSUE 9 regression: FPC-D can expand incompressible lines,
    // and the unclamped models let that deflate limitCC below 1 and
    // wedge TwoTagCC pending slots past any partner.
    std::vector<uint8_t> snap = randomSnapshot(512, 41);
    CompRatios r = analyzeSnapshot(snap.data(), snap.size());
    EXPECT_GE(r.zcomp, 1.0);
    EXPECT_GE(r.limitCC, 1.0);
    EXPECT_GE(r.twoTagCC, 1.0);
}

// --- Misaligned snapshots raise typed DecodeError ------------------

TEST(SchemeDecode, MisalignedSnapshotThrowsDecodeError)
{
    resetDecodeErrorCount();
    std::vector<uint8_t> snap(65, 0);   // cut off mid-line
    uint64_t thrown = 0;
    for (const CompressionScheme *s : allSchemes()) {
        EXPECT_THROW(s->snapshotRatio(snap.data(), snap.size()),
                     DecodeError)
            << s->name();
        thrown++;
    }
    EXPECT_THROW(zcompSnapshotRatio(snap.data(), snap.size()),
                 DecodeError);
    EXPECT_THROW(limitCCRatio(snap.data(), snap.size()), DecodeError);
    EXPECT_THROW(twoTagCCRatio(snap.data(), snap.size()), DecodeError);
    EXPECT_THROW(analyzeSnapshot(snap.data(), snap.size()),
                 DecodeError);
    // Every detection is observable in the global counter.
    EXPECT_EQ(decodeErrorCount(), thrown + 4);
    resetDecodeErrorCount();
}

// --- IoPolicy name dispatch (ISSUE 9 satellite) --------------------

TEST(IoPolicyName, RoundTripsThroughFromName)
{
    for (int p = 0; p < numIoPolicies; p++) {
        IoPolicy pol = static_cast<IoPolicy>(p);
        IoPolicy back = IoPolicy::Uncompressed;
        ASSERT_TRUE(ioPolicyFromName(ioPolicyName(pol), back));
        EXPECT_EQ(back, pol);
    }
    IoPolicy out = IoPolicy::Zcomp;
    EXPECT_FALSE(ioPolicyFromName("?", out));
    EXPECT_FALSE(ioPolicyFromName("no-such-policy", out));
    EXPECT_EQ(out, IoPolicy::Zcomp);    // untouched on miss
}

using IoPolicyNameDeathTest = ::testing::Test;

TEST(IoPolicyNameDeathTest, PanicsOnOutOfRangeValue)
{
    // Formerly returned "?" - which flowed into report rows and
    // result-cache keys, colliding distinct invalid policies on one
    // cached entry.
    EXPECT_DEATH(ioPolicyName(static_cast<IoPolicy>(99)),
                 "invalid IoPolicy 99");
}
