/** @file Unit tests for the simulated virtual address space. */

#include <gtest/gtest.h>

#include "mem/vspace.hh"

using namespace zcomp;

TEST(VSpace, AllocationsAreAlignedAndDisjoint)
{
    VSpace vs;
    Buffer &a = vs.alloc("a", 1000, AllocClass::FeatureMap);
    Buffer &b = vs.alloc("b", 5000, AllocClass::Weight);
    EXPECT_EQ(a.base % 4096, 0u);
    EXPECT_EQ(b.base % 4096, 0u);
    EXPECT_GE(b.base, a.base + a.size);
    EXPECT_NE(a.host, b.host);
}

TEST(VSpace, GuardGapBetweenRegions)
{
    VSpace vs;
    Buffer &a = vs.alloc("a", 4096, AllocClass::Other);
    Buffer &b = vs.alloc("b", 64, AllocClass::Other);
    EXPECT_GE(b.base - (a.base + a.size), 4096u);
}

TEST(VSpace, HostMemoryIsZeroed)
{
    VSpace vs;
    Buffer &a = vs.alloc("a", 256, AllocClass::Scratch);
    for (size_t i = 0; i < a.size; i++)
        EXPECT_EQ(a.host[i], 0);
}

TEST(VSpace, ClassFootprintAccounting)
{
    VSpace vs;
    vs.alloc("fm1", 1024, AllocClass::FeatureMap);
    vs.alloc("fm2", 2048, AllocClass::FeatureMap);
    vs.alloc("w", 512, AllocClass::Weight);
    EXPECT_EQ(vs.bytesInClass(AllocClass::FeatureMap), 3072u);
    EXPECT_EQ(vs.bytesInClass(AllocClass::Weight), 512u);
    EXPECT_EQ(vs.bytesInClass(AllocClass::GradientMap), 0u);
    EXPECT_EQ(vs.totalBytes(), 3584u);
}

TEST(VSpace, StableReferencesAcrossManyAllocations)
{
    VSpace vs;
    Buffer &first = vs.alloc("first", 64, AllocClass::Other);
    Addr base = first.base;
    uint8_t *host = first.host;
    for (int i = 0; i < 1000; i++)
        vs.alloc("x" + std::to_string(i), 64, AllocClass::Other);
    EXPECT_EQ(first.base, base);
    EXPECT_EQ(first.host, host);
}

TEST(VSpace, ReleaseHostKeepsFootprint)
{
    VSpace vs;
    Buffer &a = vs.alloc("a", 1 * MiB, AllocClass::FeatureMap);
    vs.releaseHost(a);
    EXPECT_EQ(a.host, nullptr);
    EXPECT_EQ(vs.bytesInClass(AllocClass::FeatureMap), 1 * MiB);
}

TEST(VSpace, AddrAtAndTypedAccess)
{
    VSpace vs;
    Buffer &a = vs.alloc("a", 64, AllocClass::Other);
    EXPECT_EQ(a.addrAt(16), a.base + 16);
    a.f32()[3] = 1.5f;
    EXPECT_FLOAT_EQ(a.f32()[3], 1.5f);
}

TEST(VSpace, AllocClassNames)
{
    EXPECT_STREQ(allocClassName(AllocClass::FeatureMap), "feature-maps");
    EXPECT_STREQ(allocClassName(AllocClass::GradientMap),
                 "gradient-maps");
    EXPECT_STREQ(allocClassName(AllocClass::Weight), "weights");
}
