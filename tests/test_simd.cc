/**
 * @file
 * Differential tests for the runtime-dispatched SIMD backend: every
 * kernel in common/simd.hh must be bit-identical to the scalar
 * reference loop at its call site, on every backend the host
 * supports, across the adversarial value classes (denormals, NaN
 * payload bit patterns, signed zeros, all-zero / all-dense vectors)
 * and on unaligned buffers.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "cachecomp/fpc.hh"
#include "common/rng.hh"
#include "common/simd.hh"
#include "isa/ccf.hh"
#include "isa/dtype.hh"
#include "isa/vec.hh"
#include "isa/zcomp_isa.hh"

using namespace zcomp;

namespace {

/** Restore the entry backend after each test body. */
class BackendGuard
{
  public:
    BackendGuard() : saved_(simd::activeBackend()) {}
    ~BackendGuard() { simd::setBackend(saved_); }

  private:
    simd::Backend saved_;
};

/** The non-scalar backends this host can actually run. */
std::vector<simd::Backend>
nativeBackends()
{
    std::vector<simd::Backend> v;
    for (simd::Backend b : {simd::Backend::Avx2, simd::Backend::Avx512})
        if (simd::backendSupported(b))
            v.push_back(b);
    return v;
}

/** fp32 bit patterns covering every adversarial class. */
const std::vector<uint32_t> &
adversarialF32Bits()
{
    static const std::vector<uint32_t> bits = {
        0x00000000u,  // +0.0
        0x80000000u,  // -0.0
        0x00000001u,  // smallest positive denormal
        0x80000001u,  // smallest negative denormal
        0x007FFFFFu,  // largest denormal
        0x7F800000u,  // +inf
        0xFF800000u,  // -inf
        0x7FC00000u,  // canonical qNaN
        0x7F800001u,  // sNaN, minimal payload
        0xFFC01234u,  // negative NaN with payload bits
        0x3F800000u,  // 1.0
        0xBF800000u,  // -1.0
        0x00800000u,  // smallest normal
    };
    return bits;
}

/** A corpus of 64-byte vectors per element width. */
std::vector<Vec512>
vectorCorpus(int eb)
{
    std::vector<Vec512> corpus;
    corpus.push_back(Vec512::zero());           // all-zero
    Vec512 dense;
    std::memset(dense.bytes, 0xA5, 64);         // all-dense, signs set
    corpus.push_back(dense);
    std::memset(dense.bytes, 0x11, 64);         // all-dense, signs clear
    corpus.push_back(dense);

    // One lane nonzero at each position; sign bit only; adversarial
    // fp32 patterns tiled; random mixtures.
    for (int pos = 0; pos < 64 / eb; pos += (64 / eb > 16 ? 7 : 1)) {
        Vec512 v = Vec512::zero();
        v.bytes[pos * eb] = 1;
        corpus.push_back(v);
        v = Vec512::zero();
        v.bytes[pos * eb + eb - 1] = 0x80;      // negative zero-ish
        corpus.push_back(v);
    }
    if (eb == 4) {
        Vec512 v;
        const auto &adv = adversarialF32Bits();
        for (int i = 0; i < 16; i++) {
            uint32_t w = adv[static_cast<size_t>(i) % adv.size()];
            std::memcpy(v.bytes + i * 4, &w, 4);
        }
        corpus.push_back(v);
    }
    Rng rng(7 + static_cast<uint64_t>(eb));
    for (int r = 0; r < 24; r++) {
        Vec512 v;
        for (int b = 0; b < 64; b++)
            v.bytes[b] = rng.chance(0.4)
                             ? 0
                             : static_cast<uint8_t>(rng.below(256));
        corpus.push_back(v);
    }
    return corpus;
}

/** Scalar header reference straight off laneKept(). */
uint64_t
refHeader(const Vec512 &v, ElemType t, Ccf ccf)
{
    uint64_t h = 0;
    for (int i = 0; i < lanesPerVec(t); i++) {
        uint64_t raw = 0;
        std::memcpy(&raw, v.bytes + i * elemBytes(t),
                    static_cast<size_t>(elemBytes(t)));
        if (laneKept(raw, t, ccf))
            h |= 1ULL << i;
    }
    return h;
}

} // namespace

TEST(SimdDispatch, ParseAndNames)
{
    simd::Backend b;
    EXPECT_TRUE(simd::parseBackend("off", b));
    EXPECT_EQ(b, simd::Backend::Scalar);
    EXPECT_TRUE(simd::parseBackend("scalar", b));
    EXPECT_EQ(b, simd::Backend::Scalar);
    EXPECT_TRUE(simd::parseBackend("auto", b));
    EXPECT_EQ(b, simd::bestSupportedBackend());
    EXPECT_FALSE(simd::parseBackend("sse9", b));
    EXPECT_STREQ(simd::backendName(simd::Backend::Scalar), "scalar");
    EXPECT_STREQ(simd::backendName(simd::Backend::Avx512), "avx512");
    EXPECT_TRUE(simd::backendSupported(simd::Backend::Scalar));
}

TEST(SimdDispatch, ScalarBackendHandlesNothing)
{
    BackendGuard guard;
    simd::setBackend(simd::Backend::Scalar);
    uint64_t h;
    uint8_t buf[64] = {};
    int way;
    uint64_t tags[4] = {};
    size_t nnz = 0;
    float f[16] = {};
    uint16_t u16[1];
    uint8_t bits[16];
    uint16_t zm;
    EXPECT_FALSE(simd::laneHeader(buf, 4, false, h));
    EXPECT_FALSE(simd::packLanes(buf, 4, 0xFFFF, buf));
    EXPECT_FALSE(simd::unpackLanes(buf, 4, 0xFFFF, buf));
    EXPECT_FALSE(simd::findTag64(tags, 4, 1, way));
    EXPECT_FALSE(simd::countNonzeroF32(f, 16, nnz));
    EXPECT_FALSE(simd::vecNnzF32(f, 1, u16));
    EXPECT_FALSE(simd::fpcBitsLine(buf, bits, zm));
    EXPECT_FALSE(simd::axpyF32(1.0f, f, f, 16));
    EXPECT_FALSE(simd::dotPanel16F32(f, f, 0, f));
}

TEST(SimdDiff, LaneHeaderAllTypesAndCcfs)
{
    BackendGuard guard;
    for (simd::Backend b : nativeBackends()) {
        simd::setBackend(b);
        for (int ti = 0; ti < numElemTypes; ti++) {
            auto t = static_cast<ElemType>(ti);
            for (Ccf ccf : {Ccf::EQZ, Ccf::LTEZ}) {
                for (const Vec512 &v : vectorCorpus(elemBytes(t))) {
                    uint64_t h = 0;
                    if (!simd::laneHeader(v.bytes, elemBytes(t),
                                          ccf == Ccf::LTEZ, h))
                        continue;  // width not handled by this backend
                    EXPECT_EQ(h, refHeader(v, t, ccf))
                        << simd::backendName(b) << " "
                        << elemSuffix(t) << " " << ccfName(ccf);
                }
            }
        }
        // AVX-512 must handle every lane width.
        if (b == simd::Backend::Avx512) {
            for (int eb : {1, 2, 4, 8}) {
                uint64_t h;
                Vec512 v = Vec512::zero();
                EXPECT_TRUE(simd::laneHeader(v.bytes, eb, false, h));
            }
        }
    }
}

TEST(SimdDiff, PackUnpackLanesExactAndUnaligned)
{
    BackendGuard guard;
    for (simd::Backend b : nativeBackends()) {
        simd::setBackend(b);
        for (int eb : {1, 2, 4, 8}) {
            const int lanes = 64 / eb;
            for (const Vec512 &v : vectorCorpus(eb)) {
                // Headers: derived (EQZ), all-set, alternating.
                const uint64_t full =
                    lanes >= 64 ? ~uint64_t{0}
                                : ((uint64_t{1} << lanes) - 1);
                uint64_t ref = refHeader(
                    v, eb == 4 ? ElemType::F32 : ElemType::I8,
                    Ccf::EQZ);
                if (eb != 1)
                    ref &= full;
                for (uint64_t header :
                     {ref, full, uint64_t{0},
                      full & uint64_t{0x5555555555555555}}) {
                    const int nnz = __builtin_popcountll(header);

                    // +1 offsets make the buffers deliberately
                    // misaligned for every vector width.
                    std::vector<uint8_t> packedBuf(64 + 1, 0xEE);
                    uint8_t *packed = packedBuf.data() + 1;
                    if (!simd::packLanes(v.bytes, eb, header, packed))
                        continue;

                    // Scalar pack reference.
                    std::vector<uint8_t> expect;
                    for (int i = 0; i < lanes; i++)
                        if ((header >> i) & 1)
                            expect.insert(expect.end(),
                                          v.bytes + i * eb,
                                          v.bytes + (i + 1) * eb);
                    ASSERT_EQ(expect.size(),
                              static_cast<size_t>(nnz * eb));
                    // expect.data() is null when the header is empty;
                    // memcmp's arguments are declared nonnull.
                    if (!expect.empty())
                        EXPECT_EQ(std::memcmp(packed, expect.data(),
                                              expect.size()),
                                  0)
                            << simd::backendName(b) << " eb=" << eb;
                    // Nothing beyond popcount*eb may be written.
                    for (size_t i = expect.size(); i < 64; i++)
                        ASSERT_EQ(packed[i], 0xEE);

                    std::vector<uint8_t> outBuf(64 + 1, 0xDD);
                    uint8_t *out = outBuf.data() + 1;
                    ASSERT_TRUE(
                        simd::unpackLanes(packed, eb, header, out));
                    Vec512 expectV = Vec512::zero();
                    size_t in = 0;
                    for (int i = 0; i < lanes; i++) {
                        if (!((header >> i) & 1))
                            continue;
                        std::memcpy(expectV.bytes + i * eb,
                                    expect.data() + in,
                                    static_cast<size_t>(eb));
                        in += static_cast<size_t>(eb);
                    }
                    EXPECT_EQ(std::memcmp(out, expectV.bytes, 64), 0)
                        << simd::backendName(b) << " eb=" << eb;
                }
            }
        }
    }
}

TEST(SimdDiff, CountNonzeroF32TailsAndSpecials)
{
    BackendGuard guard;
    const auto &adv = adversarialF32Bits();
    std::vector<float> data(67 + 1);
    // Fill with a rotation of the adversarial patterns, unaligned by
    // one float (so AVX loads start off a 64-byte boundary).
    float *d = data.data() + 1;
    for (size_t i = 0; i < 67; i++) {
        uint32_t w = adv[i % adv.size()];
        std::memcpy(&d[i], &w, 4);
    }
    for (simd::Backend b : nativeBackends()) {
        simd::setBackend(b);
        for (size_t n = 0; n <= 67; n++) {
            size_t ref = 0;
            for (size_t i = 0; i < n; i++)
                ref += d[i] != 0.0f;
            size_t nnz = 100;  // must ADD into the accumulator
            ASSERT_TRUE(simd::countNonzeroF32(d, n, nnz));
            EXPECT_EQ(nnz, 100 + ref)
                << simd::backendName(b) << " n=" << n;
        }
    }
}

TEST(SimdDiff, VecNnzF32MatchesPerVectorCounts)
{
    BackendGuard guard;
    Rng rng(99);
    const size_t vecs = 33;
    std::vector<float> data(vecs * 16 + 1);
    float *d = data.data() + 1;  // unaligned
    const auto &adv = adversarialF32Bits();
    for (size_t i = 0; i < vecs * 16; i++) {
        if (rng.chance(0.5)) {
            d[i] = 0.0f;
        } else {
            uint32_t w = adv[rng.below(adv.size())];
            std::memcpy(&d[i], &w, 4);
        }
    }
    for (simd::Backend b : nativeBackends()) {
        simd::setBackend(b);
        std::vector<uint16_t> out(vecs, 0xFFFF);
        ASSERT_TRUE(simd::vecNnzF32(d, vecs, out.data()));
        for (size_t v = 0; v < vecs; v++) {
            uint16_t ref = 0;
            for (int i = 0; i < 16; i++)
                ref += d[v * 16 + i] != 0.0f;
            EXPECT_EQ(out[v], ref)
                << simd::backendName(b) << " vec=" << v;
        }
    }
}

TEST(SimdDiff, FpcBitsLineMatchesClassifier)
{
    BackendGuard guard;
    // Per-class crafted words plus random lines.
    std::vector<std::vector<uint32_t>> lines;
    lines.push_back({0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0});
    lines.push_back({0x00000007u, 0xFFFFFFF9u,       // signext4
                     0x0000007Fu, 0xFFFFFF80u,       // signext8
                     0x00007FFFu, 0xFFFF8000u,       // signext16
                     0x12340000u, 0xABCD0000u,       // zero-padded half
                     0x007F0080u, 0xFF80007Fu,       // signext halves
                     0x5A5A5A5Au, 0x01010101u,       // repeated bytes
                     0xDEADBEEFu, 0x7FC00000u,       // uncompressed/NaN
                     0x80000000u, 0x00000000u});     // -0.0f, zero
    Rng rng(123);
    for (int r = 0; r < 32; r++) {
        std::vector<uint32_t> line(16);
        for (auto &w : line)
            w = rng.chance(0.3)
                    ? 0u
                    : static_cast<uint32_t>(rng.next64());
        lines.push_back(line);
    }
    for (simd::Backend b : nativeBackends()) {
        simd::setBackend(b);
        for (const auto &line : lines) {
            uint8_t raw[64];
            std::memcpy(raw, line.data(), 64);
            uint8_t bits[16];
            uint16_t zmask = 0;
            if (!simd::fpcBitsLine(raw, bits, zmask))
                continue;  // backend has no fpc kernel (avx2)
            for (int w = 0; w < 16; w++) {
                const uint32_t word = line[static_cast<size_t>(w)];
                EXPECT_EQ((zmask >> w) & 1, word == 0 ? 1 : 0);
                if (word != 0) {
                    EXPECT_EQ(bits[w],
                              fpcPayloadBits(fpcClassify(word)))
                        << simd::backendName(b) << " word 0x"
                        << std::hex << word;
                }
            }
        }
    }
}

TEST(SimdDiff, GemmKernelsBitExact)
{
    BackendGuard guard;
    Rng rng(55);
    const size_t n = 37;  // deliberately not a multiple of 8/16
    std::vector<float> bv(n), cRef(n), cSimd(n), acc0(16);
    for (size_t i = 0; i < n; i++) {
        bv[i] = static_cast<float>(rng.gaussian());
        cRef[i] = cSimd[i] = static_cast<float>(rng.gaussian());
    }
    // Include a denormal scale: the kernels must not flush.
    for (float av : {1.5f, -0.33f, 1e-42f}) {
        for (simd::Backend b : nativeBackends()) {
            simd::setBackend(b);
            std::vector<float> c1 = cRef, c2 = cSimd;
            for (size_t j = 0; j < n; j++)
                c1[j] += av * bv[j];
            ASSERT_TRUE(simd::axpyF32(av, bv.data(), c2.data(), n));
            EXPECT_EQ(std::memcmp(c1.data(), c2.data(), n * 4), 0)
                << simd::backendName(b) << " av=" << av;
        }
    }

    const size_t plen = 29;
    std::vector<float> a(plen), bt(plen * 16);
    for (auto &x : a)
        x = static_cast<float>(rng.gaussian());
    for (auto &x : bt)
        x = static_cast<float>(rng.gaussian());
    for (simd::Backend b : nativeBackends()) {
        simd::setBackend(b);
        std::vector<float> accRef(16, 0.25f), accSimd(16, 0.25f);
        for (size_t p = 0; p < plen; p++)
            for (int l = 0; l < 16; l++)
                accRef[static_cast<size_t>(l)] +=
                    a[p] * bt[p * 16 + static_cast<size_t>(l)];
        ASSERT_TRUE(simd::dotPanel16F32(a.data(), bt.data(), plen,
                                        accSimd.data()));
        EXPECT_EQ(std::memcmp(accRef.data(), accSimd.data(), 64), 0)
            << simd::backendName(b);
    }
}

TEST(SimdDiff, FindTag64AllPositions)
{
    BackendGuard guard;
    for (simd::Backend b : nativeBackends()) {
        simd::setBackend(b);
        for (int assoc = 1; assoc <= 17; assoc++) {
            std::vector<uint64_t> tags(static_cast<size_t>(assoc));
            for (int i = 0; i < assoc; i++)
                tags[static_cast<size_t>(i)] =
                    0x4000 + static_cast<uint64_t>(i) * 64;
            for (int hit = 0; hit < assoc; hit++) {
                int way = -2;
                ASSERT_TRUE(simd::findTag64(
                    tags.data(), assoc,
                    0x4000 + static_cast<uint64_t>(hit) * 64, way));
                EXPECT_EQ(way, hit)
                    << simd::backendName(b) << " assoc=" << assoc;
            }
            int way = -2;
            ASSERT_TRUE(
                simd::findTag64(tags.data(), assoc, 0x9999, way));
            EXPECT_EQ(way, -1);
        }
    }
}

TEST(SimdDiff, ZcompRoundTripIdenticalAcrossBackends)
{
    // End-to-end: the full zcomps/zcompl byte streams must not depend
    // on the backend for any (ElemType, Ccf) combination.
    BackendGuard guard;
    for (int ti = 0; ti < numElemTypes; ti++) {
        auto t = static_cast<ElemType>(ti);
        for (Ccf ccf : {Ccf::EQZ, Ccf::LTEZ}) {
            for (const Vec512 &v : vectorCorpus(elemBytes(t))) {
                simd::setBackend(simd::Backend::Scalar);
                uint8_t streamRef[80];
                std::memset(streamRef, 0xCC, sizeof(streamRef));
                ZcompResult rRef =
                    zcompsInterleaved(v, t, ccf, streamRef);
                Vec512 outRef;
                zcomplInterleaved(streamRef, t, outRef);

                for (simd::Backend b : nativeBackends()) {
                    simd::setBackend(b);
                    uint8_t stream[80];
                    std::memset(stream, 0xCC, sizeof(stream));
                    ZcompResult r = zcompsInterleaved(v, t, ccf, stream);
                    EXPECT_EQ(r.header, rRef.header);
                    EXPECT_EQ(r.totalBytes, rRef.totalBytes);
                    EXPECT_EQ(std::memcmp(stream, streamRef,
                                          sizeof(stream)),
                              0)
                        << simd::backendName(b) << " "
                        << elemSuffix(t) << " " << ccfName(ccf);
                    Vec512 out;
                    zcomplInterleaved(stream, t, out);
                    EXPECT_TRUE(out == outRef);
                }
            }
        }
    }
}
