/** @file Unit tests for the Json value tree and its parser. */

#include <cmath>
#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "common/json.hh"

using namespace zcomp;

namespace {

/** parse(dump(v)) must reproduce v exactly. */
void
expectRoundTrip(const Json &v)
{
    for (int indent : {-1, 0, 2}) {
        std::string text = v.dump(indent);
        std::string err;
        Json back = Json::parse(text, &err);
        EXPECT_EQ(err, "");
        EXPECT_EQ(back, v) << "dump(" << indent << ") = " << text;
    }
}

} // namespace

TEST(Json, KindsAndAccessors)
{
    EXPECT_TRUE(Json().isNull());
    EXPECT_TRUE(Json(true).isBool());
    EXPECT_TRUE(Json(7).isNumber());
    EXPECT_TRUE(Json(3.5).isNumber());
    EXPECT_TRUE(Json("hi").isString());
    EXPECT_TRUE(Json::array().isArray());
    EXPECT_TRUE(Json::object().isObject());

    EXPECT_EQ(Json(-42).asInt(), -42);
    EXPECT_EQ(Json(42u).asUint(), 42u);
    EXPECT_DOUBLE_EQ(Json(2.25).asDouble(), 2.25);
    EXPECT_EQ(Json("s").asString(), "s");
}

TEST(Json, ObjectKeepsInsertionOrder)
{
    Json j = Json::object();
    j["zebra"] = 1;
    j["apple"] = 2;
    j["mango"] = 3;
    ASSERT_EQ(j.size(), 3u);
    EXPECT_EQ(j.members()[0].first, "zebra");
    EXPECT_EQ(j.members()[1].first, "apple");
    EXPECT_EQ(j.members()[2].first, "mango");
    // Re-assigning an existing key keeps its slot.
    j["apple"] = 9;
    EXPECT_EQ(j.members()[1].first, "apple");
    EXPECT_EQ(j.members()[1].second.asInt(), 9);
}

TEST(Json, NullPromotesOnUse)
{
    Json obj;
    obj["k"] = 1;               // Null -> Object
    EXPECT_TRUE(obj.isObject());
    Json arr;
    arr.push(1);                // Null -> Array
    EXPECT_TRUE(arr.isArray());
}

TEST(Json, FindDoesNotInsert)
{
    Json j = Json::object();
    j["present"] = 1;
    EXPECT_NE(j.find("present"), nullptr);
    EXPECT_EQ(j.find("absent"), nullptr);
    EXPECT_EQ(j.size(), 1u);
}

TEST(Json, RoundTripScalars)
{
    expectRoundTrip(Json());
    expectRoundTrip(Json(true));
    expectRoundTrip(Json(false));
    expectRoundTrip(Json(0));
    expectRoundTrip(Json(-1));
    expectRoundTrip(Json(std::numeric_limits<int64_t>::min()));
    expectRoundTrip(Json(std::numeric_limits<uint64_t>::max()));
    expectRoundTrip(Json(0.1));
    expectRoundTrip(Json(1e300));
    expectRoundTrip(Json(-2.5e-10));
    expectRoundTrip(Json(1.0 / 3.0));
    expectRoundTrip(Json(""));
    expectRoundTrip(Json("plain"));
}

TEST(Json, RoundTripEscapes)
{
    expectRoundTrip(Json("quote\" slash\\ tab\t nl\n cr\r"));
    expectRoundTrip(Json(std::string("nul\0byte", 8)));
    expectRoundTrip(Json("control \x01\x1f"));
    expectRoundTrip(Json("utf8 \xc3\xa9\xe2\x82\xac"));   // e-acute, euro
}

TEST(Json, RoundTripNested)
{
    Json doc = Json::object();
    doc["schema"] = "test-v1";
    doc["count"] = 3u;
    Json arr = Json::array();
    for (int i = 0; i < 3; i++) {
        Json row = Json::object();
        row["i"] = i;
        row["sq"] = static_cast<double>(i) * i + 0.5;
        row["flag"] = i % 2 == 0;
        row["nothing"] = Json();
        arr.push(std::move(row));
    }
    doc["rows"] = std::move(arr);
    expectRoundTrip(doc);
}

TEST(Json, NonFiniteDumpsAsNull)
{
    EXPECT_EQ(Json(std::nan("")).dump(), "null");
    EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).dump(),
              "null");
}

TEST(Json, ParseAcceptsStandardForms)
{
    std::string err;
    Json j = Json::parse(
        " { \"a\" : [ 1 , -2.5e3 , true , null ] , \"b\" : {} } ",
        &err);
    EXPECT_EQ(err, "");
    ASSERT_TRUE(j.isObject());
    const Json *a = j.find("a");
    ASSERT_NE(a, nullptr);
    ASSERT_EQ(a->size(), 4u);
    EXPECT_EQ(a->at(0).asInt(), 1);
    EXPECT_DOUBLE_EQ(a->at(1).asDouble(), -2500.0);
    EXPECT_TRUE(a->at(2).asBool());
    EXPECT_TRUE(a->at(3).isNull());
}

TEST(Json, ParseUnicodeEscapes)
{
    std::string err;
    Json j = Json::parse("\"\\u0041\\u00e9\\ud83d\\ude00\"", &err);
    EXPECT_EQ(err, "");
    EXPECT_EQ(j.asString(), "A\xc3\xa9\xf0\x9f\x98\x80");
}

TEST(Json, ParseRejectsGarbage)
{
    const char *bad[] = {
        "",             // empty document
        "{",            // unterminated object
        "[1,]",         // trailing comma
        "{\"a\":1,}",   // trailing comma in object
        "01",           // leading zero
        "+1",           // explicit plus
        "1.",           // missing fraction digits
        ".5",           // missing integer part
        "1e",           // missing exponent digits
        "nul",          // truncated keyword
        "\"\\x41\"",    // invalid escape
        "\"\\ud83d\"",  // lone high surrogate
        "'single'",     // wrong quotes
        "{\"a\" 1}",    // missing colon
        "[1] tail",     // trailing garbage
        "nan",          // not JSON
    };
    for (const char *text : bad) {
        std::string err;
        Json j = Json::parse(text, &err);
        EXPECT_TRUE(j.isNull()) << "accepted: " << text;
        EXPECT_NE(err, "") << "no error for: " << text;
    }
}

TEST(Json, IntegersStayExact)
{
    // Values above 2^53 lose precision as doubles; Int/Uint must not.
    uint64_t big = (1ull << 53) + 1;
    Json j(big);
    std::string text = j.dump();
    EXPECT_EQ(text, "9007199254740993");
    Json back = Json::parse(text);
    EXPECT_EQ(back.asUint(), big);
}

TEST(Json, EqualityIsStructural)
{
    Json a = Json::object();
    a["x"] = 1;
    a["y"] = 2;
    Json b = Json::object();
    b["x"] = 1;
    b["y"] = 2;
    EXPECT_EQ(a, b);
    b["y"] = 3;
    EXPECT_NE(a, b);
}

TEST(JsonHelpers, EscapeAndNumber)
{
    EXPECT_EQ(jsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    EXPECT_EQ(jsonNumber(1.5), "1.5");
    double v = 0.1;
    EXPECT_EQ(std::stod(jsonNumber(v)), v);
}

TEST(Json, PathologicalNestingIsRejectedNotCrashed)
{
    // 10k-deep inputs must come back as a clean parse error from the
    // depth limit, not a stack overflow. The parser recurses per
    // nesting level, so the limit is what keeps this test alive.
    const int depth = 10000;
    std::string arrays(depth, '[');
    arrays += std::string(depth, ']');
    std::string err;
    Json j = Json::parse(arrays, &err);
    EXPECT_TRUE(j.isNull());
    EXPECT_NE(err.find("nesting too deep"), std::string::npos) << err;

    std::string objects;
    objects.reserve(depth * 8);
    for (int i = 0; i < depth; i++)
        objects += "{\"k\":";
    objects += "null";
    objects += std::string(depth, '}');
    err.clear();
    j = Json::parse(objects, &err);
    EXPECT_TRUE(j.isNull());
    EXPECT_NE(err.find("nesting too deep"), std::string::npos) << err;

    // Nesting at the documented limit still parses.
    std::string ok(256, '[');
    ok += std::string(256, ']');
    err.clear();
    j = Json::parse(ok, &err);
    EXPECT_EQ(err, "");
    EXPECT_TRUE(j.isArray());
}
