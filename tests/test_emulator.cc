/**
 * @file
 * Integration tests for the ZCOMP architectural emulator: assembly ->
 * encoding -> execution -> memory/register state, including the
 * iterative Figure 8/9 loop pattern run entirely through the ISA.
 */

#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hh"
#include "common/rng.hh"
#include "isa/emulator.hh"
#include "workload/snapshot.hh"
#include "zcomp/stream.hh"

using namespace zcomp;

namespace {

constexpr Addr memBase = 0x1000;

struct Machine
{
    std::vector<uint8_t> mem;
    ZcompEmulator emu;

    explicit Machine(size_t bytes)
        : mem(bytes, 0), emu(mem.data(), bytes, memBase)
    {}
};

} // namespace

TEST(Emulator, Figure4ThroughTheIsa)
{
    Machine m(256);
    Vec512 v = Vec512::zero();
    for (int lane : {2, 3, 4, 8, 12, 15})
        v.setLane<float>(lane, static_cast<float>(lane));
    m.emu.vreg(1) = v;
    m.emu.reg(2) = 0x1000;

    ZcompResult r = m.emu.exec("zcomps.i.ps [r2], zmm1, eqz");
    EXPECT_EQ(r.header, 0x911Cu);
    EXPECT_EQ(m.emu.reg(2), 0x101Au);   // auto-increment by 26

    // Read it back through the ISA into another register.
    m.emu.reg(3) = 0x1000;
    m.emu.exec("zcompl.i.ps zmm7, [r3]");
    EXPECT_TRUE(m.emu.vreg(7) == v);
    EXPECT_EQ(m.emu.reg(3), 0x101Au);
    EXPECT_EQ(m.emu.retired(), 2u);
}

TEST(Emulator, ExecutesRawInstructionWords)
{
    Machine m(256);
    m.emu.vreg(0).setLane<float>(5, 2.5f);
    m.emu.reg(1) = memBase;
    ZcompInstr instr;
    instr.isStore = true;
    instr.vreg = 0;
    instr.dataPtrReg = 1;
    m.emu.exec(*encode(instr));
    // 2-byte header + one fp32.
    EXPECT_EQ(m.emu.reg(1), memBase + 6);
    float stored;
    std::memcpy(&stored, m.mem.data() + 2, 4);
    EXPECT_FLOAT_EQ(stored, 2.5f);
}

TEST(Emulator, IterativeLoopFigure8And9)
{
    // Compress 64 vectors through the ISA in a loop, then expand them
    // back, exactly as the paper's code snippets do.
    const size_t n = 64 * 16;
    auto data = makeActivations(n, SnapshotParams{}, 3);

    Machine m(n * 4 + 2 * (n / 16) + 128);
    m.emu.reg(2) = memBase;     // compressed stream cursor
    for (size_t i = 0; i < n; i += 16) {
        m.emu.vreg(1) = Vec512::load(data.data() + i);
        m.emu.exec("zcomps.i.ps [r2], zmm1, ltez");
    }
    uint64_t end = m.emu.reg(2);
    EXPECT_GT(end, memBase);
    EXPECT_LT(end, memBase + n * 4);    // it compressed

    m.emu.reg(3) = memBase;
    for (size_t i = 0; i < n; i += 16) {
        m.emu.exec("zcompl.i.ps zmm4, [r3]");
        for (int l = 0; l < 16; l++) {
            float x = data[i + static_cast<size_t>(l)];
            EXPECT_FLOAT_EQ(m.emu.vreg(4).lane<float>(l),
                            x > 0 ? x : 0.0f);
        }
    }
    EXPECT_EQ(m.emu.reg(3), end);   // cursors agree end-to-end
}

TEST(Emulator, SeparateHeaderProgram)
{
    Machine m(4096);
    Rng rng(4);
    std::vector<Vec512> vecs;
    for (int i = 0; i < 8; i++) {
        Vec512 v = Vec512::zero();
        for (int l = 0; l < 16; l++) {
            if (rng.chance(0.5))
                v.setLane<float>(l, static_cast<float>(l + i) + 0.5f);
        }
        vecs.push_back(v);
    }

    m.emu.reg(2) = memBase;             // payload cursor
    m.emu.reg(3) = memBase + 2048;      // header store cursor
    for (const Vec512 &v : vecs) {
        m.emu.vreg(9) = v;
        m.emu.exec("zcomps.s.ps [r2], zmm9, [r3], eqz");
    }
    EXPECT_EQ(m.emu.reg(3), memBase + 2048 + 8 * 2);

    m.emu.reg(2) = memBase;
    m.emu.reg(3) = memBase + 2048;
    for (const Vec512 &v : vecs) {
        m.emu.exec("zcompl.s.ps zmm10, [r2], [r3]");
        EXPECT_TRUE(m.emu.vreg(10) == v);
    }
}

TEST(Emulator, Int8Variant)
{
    Machine m(256);
    Vec512 v = Vec512::zero();
    v.setLane<int8_t>(0, 11);
    v.setLane<int8_t>(63, -7);
    m.emu.vreg(2) = v;
    m.emu.reg(4) = memBase;
    ZcompResult r = m.emu.exec("zcomps.i.b [r4], zmm2, eqz");
    EXPECT_EQ(r.nnz, 2);
    EXPECT_EQ(m.emu.reg(4), memBase + 8 + 2);   // 8B header + 2 bytes

    m.emu.reg(5) = memBase;
    m.emu.exec("zcompl.i.b zmm3, [r5]");
    EXPECT_TRUE(m.emu.vreg(3) == v);
}

TEST(Emulator, OutOfWindowAccessRaisesDecodeError)
{
    Machine m(64);
    m.emu.reg(2) = memBase + 60;    // worst case would overflow
    m.emu.vreg(0).setLane<float>(0, 1.0f);
    uint64_t before = decodeErrorCount();
    EXPECT_THROW(m.emu.exec("zcomps.i.ps [r2], zmm0, eqz"), DecodeError);
    EXPECT_EQ(decodeErrorCount(), before + 1);
}

TEST(Emulator, IllegalWordRaisesDecodeError)
{
    Machine m(64);
    uint64_t before = decodeErrorCount();
    EXPECT_THROW(m.emu.exec(static_cast<uint32_t>(0xFFFFFFFF)),
                 DecodeError);
    EXPECT_EQ(decodeErrorCount(), before + 1);
}

TEST(EmulatorDeath, SyntaxErrorFaults)
{
    Machine m(64);
    EXPECT_DEATH(m.emu.exec(std::string("zcomps.q.ps [r0], zmm0")),
                 "syntax error");
}

TEST(Emulator, Fp16AndInt32Variants)
{
    Machine m(512);
    // fp16: 32 lanes, 4-byte header. Raw half bits set directly.
    Vec512 h = Vec512::zero();
    h.setLane<uint16_t>(3, 0x3C00);     // 1.0 in fp16
    h.setLane<uint16_t>(31, 0xC000);    // -2.0 in fp16
    m.emu.vreg(1) = h;
    m.emu.reg(2) = memBase;
    ZcompResult r = m.emu.exec("zcomps.i.ph [r2], zmm1, eqz");
    EXPECT_EQ(r.nnz, 2);
    EXPECT_EQ(m.emu.reg(2), memBase + 4 + 2 * 2);
    m.emu.reg(3) = memBase;
    m.emu.exec("zcompl.i.ph zmm2, [r3]");
    EXPECT_TRUE(m.emu.vreg(2) == h);

    // int32: 16 lanes, 2-byte header; LTEZ uses two's-complement sign.
    Vec512 d = Vec512::zero();
    d.setLane<int32_t>(0, -5);
    d.setLane<int32_t>(7, 9);
    m.emu.vreg(4) = d;
    m.emu.reg(5) = memBase + 128;
    ZcompResult rd = m.emu.exec("zcomps.i.d [r5], zmm4, ltez");
    EXPECT_EQ(rd.nnz, 1);               // only the positive survives
    m.emu.reg(6) = memBase + 128;
    m.emu.exec("zcompl.i.d zmm5, [r6]");
    EXPECT_EQ(m.emu.vreg(5).lane<int32_t>(0), 0);
    EXPECT_EQ(m.emu.vreg(5).lane<int32_t>(7), 9);
}

TEST(Emulator, InteroperatesWithLibraryStreams)
{
    // A stream produced by the software CompressedWriter must be
    // readable through the ISA (and vice versa): one on-memory format.
    const size_t n = 8 * 16;
    auto data = makeActivations(n, SnapshotParams{}, 12);
    Machine m(4096);

    // Library writes at memBase...
    CompressedWriter w(m.mem.data(), m.mem.size(), ElemType::F32,
                       Ccf::EQZ);
    for (size_t i = 0; i < n; i += 16)
        w.put(Vec512::load(data.data() + i));

    // ... the ISA reads it back.
    m.emu.reg(2) = memBase;
    for (size_t i = 0; i < n; i += 16) {
        m.emu.exec("zcompl.i.ps zmm1, [r2]");
        for (int l = 0; l < 16; l++) {
            EXPECT_FLOAT_EQ(m.emu.vreg(1).lane<float>(l),
                            data[i + static_cast<size_t>(l)]);
        }
    }
    EXPECT_EQ(m.emu.reg(2), memBase + w.bytesWritten());

    // And the other direction: ISA writes, library reads.
    m.emu.reg(3) = memBase + 2048;
    for (size_t i = 0; i < n; i += 16) {
        m.emu.vreg(7) = Vec512::load(data.data() + i);
        m.emu.exec("zcomps.i.ps [r3], zmm7, eqz");
    }
    CompressedReader rd(m.mem.data() + 2048, 2048, ElemType::F32);
    for (size_t i = 0; i < n; i += 16) {
        Vec512 v = rd.get();
        for (int l = 0; l < 16; l++) {
            EXPECT_FLOAT_EQ(v.lane<float>(l),
                            data[i + static_cast<size_t>(l)]);
        }
    }
}
