/** @file Unit tests for partitioned parallel compression (Section 4.3). */

#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "zcomp/partition.hh"

using namespace zcomp;

namespace {

std::vector<float>
makeSparse(size_t n, double sparsity, uint64_t seed)
{
    Rng rng(seed);
    std::vector<float> v(n);
    for (auto &x : v)
        x = rng.chance(sparsity) ? 0.0f : 1.0f + rng.uniform();
    return v;
}

} // namespace

TEST(Partition, CoversAllElementsWithoutOverlap)
{
    auto chunks = partitionElements(16 * 100, 16, ElemType::F32);
    ASSERT_EQ(chunks.size(), 16u);
    size_t expect_begin = 0;
    for (const auto &c : chunks) {
        EXPECT_EQ(c.elemBegin, expect_begin);
        EXPECT_EQ(c.elemBegin % 16, 0u);
        EXPECT_EQ(c.regionOffset, c.elemBegin * 4);
        EXPECT_EQ(c.regionBytes, c.elems() * 4);
        expect_begin = c.elemEnd;
    }
    EXPECT_EQ(expect_begin, 16u * 100u);
}

TEST(Partition, UnevenVectorCountsStayVectorAligned)
{
    // 10 vectors over 3 chunks: sizes must be multiples of 16 elements.
    auto chunks = partitionElements(16 * 10, 3, ElemType::F32);
    size_t total = 0;
    for (const auto &c : chunks) {
        EXPECT_EQ(c.elems() % 16, 0u);
        total += c.elems();
    }
    EXPECT_EQ(total, 16u * 10u);
}

TEST(Partition, MoreChunksThanVectorsYieldsEmptyChunks)
{
    auto chunks = partitionElements(16 * 2, 4, ElemType::F32);
    size_t total = 0, nonempty = 0;
    for (const auto &c : chunks) {
        total += c.elems();
        if (c.elems() > 0)
            nonempty++;
    }
    EXPECT_EQ(total, 32u);
    EXPECT_EQ(nonempty, 2u);
}

TEST(Partition, SubPartitionNestsInsideChunk)
{
    auto chunks = partitionElements(16 * 64, 4, ElemType::F32);
    auto subs = subPartition(chunks[1], 4, ElemType::F32);
    ASSERT_EQ(subs.size(), 4u);
    EXPECT_EQ(subs.front().elemBegin, chunks[1].elemBegin);
    EXPECT_EQ(subs.back().elemEnd, chunks[1].elemEnd);
    for (const auto &s : subs) {
        EXPECT_GE(s.regionOffset, chunks[1].regionOffset);
        EXPECT_LE(s.regionOffset + s.regionBytes,
                  chunks[1].regionOffset + chunks[1].regionBytes);
    }
}

TEST(Partition, CompressExpandRoundTrip)
{
    const size_t n = 16 * 1000;
    auto src = makeSparse(n, 0.53, 11);
    std::vector<uint8_t> region(n * 4);
    PartitionedStream ps = compressPartitionedPs(
        src.data(), n, region.data(), region.size(), 16, Ccf::EQZ);
    EXPECT_EQ(ps.chunks.size(), 16u);
    EXPECT_EQ(ps.stats.vectors, n / 16);

    std::vector<float> out(n, -9.0f);
    expandPartitionedPs(ps, region.data(), region.size(), out.data(), n);
    EXPECT_EQ(out, src);
}

TEST(Partition, StreamsAreIsolatedPerChunk)
{
    // Each chunk's compressed bytes must fit within its own region so
    // that threads never cross into a neighbor's slice.
    const size_t n = 16 * 256;
    auto src = makeSparse(n, 0.49, 12);
    std::vector<uint8_t> region(n * 4);
    PartitionedStream ps = compressPartitionedPs(
        src.data(), n, region.data(), region.size(), 8, Ccf::EQZ);
    for (size_t c = 0; c < ps.chunks.size(); c++)
        EXPECT_LE(ps.chunkBytes[c], ps.chunks[c].regionBytes);
}

TEST(Partition, SingleChunkEqualsSequential)
{
    const size_t n = 16 * 128;
    auto src = makeSparse(n, 0.6, 13);
    std::vector<uint8_t> a(n * 4), b(n * 4);
    PartitionedStream ps = compressPartitionedPs(src.data(), n, a.data(),
                                                 a.size(), 1, Ccf::EQZ);
    StreamStats seq = compressBufferPs(src.data(), n, b.data(), b.size(),
                                       Ccf::EQZ);
    EXPECT_EQ(ps.stats.totalBytes(), seq.totalBytes());
    EXPECT_EQ(ps.chunkBytes[0], seq.totalBytes());
    EXPECT_EQ(std::memcmp(a.data(), b.data(), seq.totalBytes()), 0);
}

TEST(Partition, LtezAppliesReluPerChunk)
{
    const size_t n = 16 * 32;
    std::vector<float> src(n);
    for (size_t i = 0; i < n; i++)
        src[i] = (i % 2 == 0) ? -1.0f : 2.0f;
    std::vector<uint8_t> region(n * 4);
    PartitionedStream ps = compressPartitionedPs(
        src.data(), n, region.data(), region.size(), 4, Ccf::LTEZ);
    std::vector<float> out(n);
    expandPartitionedPs(ps, region.data(), region.size(), out.data(), n);
    for (size_t i = 0; i < n; i++)
        EXPECT_FLOAT_EQ(out[i], src[i] > 0 ? src[i] : 0.0f);
}
