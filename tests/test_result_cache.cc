/** @file Unit tests for the on-disk ResultCache. */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include <sys/wait.h>
#include <unistd.h>

#include "common/result_cache.hh"

using namespace zcomp;

namespace {

/**
 * Fresh cache directory under the test's working directory; each test
 * uses its own name so parallel ctest invocations cannot collide.
 */
std::string
freshDir(const std::string &name)
{
    std::string dir = "result_cache_test_" + name;
    std::filesystem::remove_all(dir);
    return dir;
}

Json
sampleValue()
{
    Json v = Json::object();
    v["cycles"] = 12345.5;
    v["bytes"] = 987654321ULL;
    Json layers = Json::array();
    layers.push("conv1");
    layers.push("pool1");
    v["layers"] = std::move(layers);
    return v;
}

} // namespace

TEST(ResultCache, RoundTrip)
{
    ResultCache cache(freshDir("round_trip"));
    Json v = sampleValue();
    EXPECT_FALSE(cache.lookup("key-a").has_value());
    cache.store("key-a", v);
    std::optional<Json> got = cache.lookup("key-a");
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, v);
    EXPECT_EQ(got->dump(2), v.dump(2));     // byte-identical re-dump
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.stores(), 1u);
}

TEST(ResultCache, DistinctKeysDistinctEntries)
{
    ResultCache cache(freshDir("distinct"));
    cache.store("key-a", Json(1));
    cache.store("key-b", Json(2));
    ASSERT_TRUE(cache.lookup("key-a").has_value());
    ASSERT_TRUE(cache.lookup("key-b").has_value());
    EXPECT_EQ(cache.lookup("key-a")->asInt(), 1);
    EXPECT_EQ(cache.lookup("key-b")->asInt(), 2);
}

TEST(ResultCache, CorruptEntryRecovers)
{
    std::string dir = freshDir("corrupt");
    ResultCache cache(dir);
    cache.store("key-a", sampleValue());

    // Truncate the entry mid-document, as a crash mid-read or a bad
    // disk would; the cache must miss (not crash, not serve garbage)
    // and a re-store must fully repair it.
    {
        std::ofstream f(cache.entryPath("key-a"), std::ios::trunc);
        f << "{ \"schema\": \"zcomp-result-ca";
    }
    EXPECT_FALSE(cache.lookup("key-a").has_value());
    cache.store("key-a", sampleValue());
    std::optional<Json> got = cache.lookup("key-a");
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, sampleValue());
}

TEST(ResultCache, KeyMismatchIsAMiss)
{
    // Simulate a hash collision / stale layout: an entry file whose
    // stored key differs from the probed key must never be served.
    std::string dir = freshDir("mismatch");
    ResultCache cache(dir);
    cache.store("key-a", sampleValue());

    Json entry = Json::object();
    entry["schema"] = "zcomp-result-cache-v1";
    entry["key"] = "some-other-key";
    entry["value"] = Json(42);
    {
        std::ofstream f(cache.entryPath("key-a"), std::ios::trunc);
        f << entry.dump(2) << "\n";
    }
    EXPECT_FALSE(cache.lookup("key-a").has_value());
}

TEST(ResultCache, UnknownSchemaIsAMiss)
{
    std::string dir = freshDir("schema");
    ResultCache cache(dir);
    cache.store("key-a", sampleValue());

    Json entry = Json::object();
    entry["schema"] = "zcomp-result-cache-v999";
    entry["key"] = "key-a";
    entry["value"] = Json(42);
    {
        std::ofstream f(cache.entryPath("key-a"), std::ios::trunc);
        f << entry.dump(2) << "\n";
    }
    EXPECT_FALSE(cache.lookup("key-a").has_value());
}

TEST(ResultCache, KeyHashIsStableAndSpreads)
{
    // FNV-1a is part of the on-disk layout: entry file names must not
    // change across builds or --resume would silently miss.
    EXPECT_EQ(ResultCache::keyHash(""), 14695981039346656037ULL);
    EXPECT_NE(ResultCache::keyHash("key-a"), ResultCache::keyHash("key-b"));
    std::string dir = freshDir("hash");
    ResultCache cache(dir);
    EXPECT_NE(cache.entryPath("key-a"), cache.entryPath("key-b"));
    EXPECT_EQ(cache.entryPath("key-a").rfind(dir, 0), 0u);
}

TEST(ResultCache, StoreOverwrites)
{
    ResultCache cache(freshDir("overwrite"));
    cache.store("key-a", Json(1));
    cache.store("key-a", Json(2));
    std::optional<Json> got = cache.lookup("key-a");
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->asInt(), 2);
}

TEST(ResultCache, TempNamesEmbedPidAndSeq)
{
    std::string tmp = ResultCache::tempPath("dir/abc.json", 42);
    std::string want = "dir/abc.json.tmp." +
                       std::to_string(static_cast<long>(getpid())) +
                       ".42";
    EXPECT_EQ(tmp, want);
    EXPECT_NE(tmp, ResultCache::tempPath("dir/abc.json", 43));
}

TEST(ResultCache, ConcurrentStoresWithIdenticalSequenceNumbers)
{
    // Regression: temp names once used only a process-local counter,
    // so two processes sharing a cache dir could both write .tmp.42
    // and corrupt each other's in-flight entries. Force parent and
    // child onto the *same* sequence number and prove the PID keeps
    // their temp names distinct and both stores land intact.
    std::string dir = freshDir("same_seq");
    ResultCache cache(dir);
    std::string child_tmp_file = dir + "/child_tmp_name.txt";

    ResultCache::setNextStoreSequenceForTest(42);
    pid_t pid = fork(); // zcomp-lint: allow(process-isolation)
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        // Child: pin the counter to the parent's value, record the
        // temp name this process would use, store, and exit.
        ResultCache::setNextStoreSequenceForTest(42);
        std::ofstream f(child_tmp_file, std::ios::trunc);
        f << ResultCache::tempPath(cache.entryPath("key-child"), 42);
        f.close();
        cache.store("key-child", Json(111));
        std::_Exit(0);
    }
    cache.store("key-parent", Json(222));
    int status = 0;
    // zcomp-lint: allow(process-isolation)
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);

    std::ifstream f(child_tmp_file);
    std::string child_tmp;
    ASSERT_TRUE(std::getline(f, child_tmp));
    std::string parent_tmp =
        ResultCache::tempPath(cache.entryPath("key-child"), 42);
    EXPECT_NE(child_tmp, parent_tmp)
        << "temp names must differ across processes at equal seq";

    std::optional<Json> got = cache.lookup("key-parent");
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->asInt(), 222);
    got = cache.lookup("key-child");
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->asInt(), 111);
}

TEST(ResultCache, SweepsStaleTempFilesOnOpen)
{
    std::string dir = freshDir("sweep");
    std::string entry_path;
    {
        ResultCache cache(dir);
        cache.store("key-a", sampleValue());
        entry_path = cache.entryPath("key-a");
    }

    // A writer SIGKILLed mid-store leaves its temp file behind; age
    // it past the sweep's grace window. A *fresh* temp (a live
    // writer's in-flight store) must survive the sweep.
    std::string stale = entry_path + ".tmp.99999.7";
    std::string fresh = entry_path + ".tmp.99998.3";
    { std::ofstream f(stale); f << "{ \"partial"; }
    { std::ofstream f(fresh); f << "{ \"partial"; }
    std::filesystem::last_write_time(
        stale, std::filesystem::file_time_type::clock::now() -
                   std::chrono::hours(2));

    ResultCache reopened(dir);
    EXPECT_FALSE(std::filesystem::exists(stale));
    EXPECT_TRUE(std::filesystem::exists(fresh));
    EXPECT_TRUE(std::filesystem::exists(entry_path));
    std::optional<Json> got = reopened.lookup("key-a");
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, sampleValue());
}
