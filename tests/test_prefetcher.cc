/** @file Unit tests for the L2 stream and L1 IP-stride prefetchers. */

#include <gtest/gtest.h>

#include "mem/prefetcher.hh"

using namespace zcomp;

namespace {

PrefetchConfig
defaultCfg()
{
    PrefetchConfig cfg;
    return cfg;
}

} // namespace

TEST(StreamPrefetcher, TrainsOnSequentialAccesses)
{
    StreamPrefetcher pf(defaultCfg());
    std::vector<Addr> out;
    Addr base = 0x10000;
    pf.onAccess(base, out);
    EXPECT_TRUE(out.empty());               // first touch: allocate
    pf.onAccess(base + 64, out);
    EXPECT_TRUE(out.empty());               // confidence building
    pf.onAccess(base + 128, out);
    EXPECT_FALSE(out.empty());              // trained
    // Prefetches run ahead of the demand stream.
    for (Addr a : out)
        EXPECT_GT(a, base + 128);
}

TEST(StreamPrefetcher, SequentialStreamStaysAhead)
{
    PrefetchConfig cfg = defaultCfg();
    StreamPrefetcher pf(cfg);
    std::vector<Addr> all;
    Addr base = 0x40000;
    for (int i = 0; i < 64; i++) {
        std::vector<Addr> out;
        pf.onAccess(base + static_cast<Addr>(i) * 64, out);
        all.insert(all.end(), out.begin(), out.end());
    }
    // Nearly every demand line (except the training prefix and the
    // distance tail) must have been prefetched exactly once.
    std::vector<Addr> sorted = all;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()),
              sorted.end())
        << "duplicate prefetches issued";
    int covered = 0;
    for (int i = 3; i < 64; i++) {
        Addr line = base + static_cast<Addr>(i) * 64;
        if (std::find(all.begin(), all.end(), line) != all.end())
            covered++;
    }
    EXPECT_GE(covered, 58);
}

TEST(StreamPrefetcher, CrossesPageBoundaries)
{
    StreamPrefetcher pf(defaultCfg());
    std::vector<Addr> all;
    Addr base = 0x100000 - 4 * 64;  // 4 lines before a 4 KiB boundary
    for (int i = 0; i < 16; i++) {
        std::vector<Addr> out;
        pf.onAccess(base + static_cast<Addr>(i) * 64, out);
        all.insert(all.end(), out.begin(), out.end());
    }
    // Lines beyond the page boundary must have been prefetched.
    int beyond = 0;
    for (Addr a : all) {
        if (a >= 0x100000)
            beyond++;
    }
    EXPECT_GT(beyond, 4);
}

TEST(StreamPrefetcher, DescendingStreams)
{
    StreamPrefetcher pf(defaultCfg());
    std::vector<Addr> all;
    Addr base = 0x80000;
    for (int i = 0; i < 16; i++) {
        std::vector<Addr> out;
        pf.onAccess(base - static_cast<Addr>(i) * 64, out);
        all.insert(all.end(), out.begin(), out.end());
    }
    EXPECT_FALSE(all.empty());
    for (Addr a : all)
        EXPECT_LT(a, base - 64);
}

TEST(StreamPrefetcher, RandomAccessesDoNotTrain)
{
    StreamPrefetcher pf(defaultCfg());
    std::vector<Addr> all;
    // Far-apart random-ish pages, never two sequential lines.
    Addr addrs[] = {0x10000, 0x50000, 0x20000, 0x90000,
                    0x30000, 0x70000, 0x15000, 0x85000};
    for (Addr a : addrs) {
        std::vector<Addr> out;
        pf.onAccess(a, out);
        all.insert(all.end(), out.begin(), out.end());
    }
    EXPECT_TRUE(all.empty());
}

TEST(StreamPrefetcher, TracksMultipleConcurrentStreams)
{
    StreamPrefetcher pf(defaultCfg());
    uint64_t covered = 0;
    // Interleave 4 streams, as partitioned ZCOMP chunks do.
    Addr bases[] = {0x100000, 0x200000, 0x300000, 0x400000};
    for (int i = 0; i < 32; i++) {
        for (Addr b : bases) {
            std::vector<Addr> out;
            pf.onAccess(b + static_cast<Addr>(i) * 64, out);
            covered += out.size();
        }
    }
    EXPECT_GT(covered, 4u * 20u);
}

TEST(StreamPrefetcher, DownwardStreamAtAddressZero)
{
    // Regression: a descending stream near address 0 used to compute
    // line - lineBytes on unsigned Addr, wrapping to huge bogus
    // prefetch addresses. The stream must clamp at line zero instead.
    StreamPrefetcher pf(defaultCfg());
    std::vector<Addr> all;
    Addr base = 0x100;
    for (int i = 0; i <= 4; i++) {
        std::vector<Addr> out;
        pf.onAccess(base - static_cast<Addr>(i) * 64, out);
        all.insert(all.end(), out.begin(), out.end());
    }
    EXPECT_FALSE(all.empty());  // the stream did train and issue
    for (Addr a : all) {
        EXPECT_LT(a, base);     // below the stream, like any
                                // descending prefetch
        EXPECT_LT(a, 0x1000u) << "wrapped past zero";
    }
}

TEST(IpStridePrefetcher, NegativeStrideClampsAtZero)
{
    // Regression: line + stride*i with a negative stride used to wrap
    // negative through the int64 -> Addr cast. Candidates below zero
    // must be dropped (and not counted as issued).
    IpStridePrefetcher pf;
    std::vector<Addr> out;
    pf.onAccess(9, 0x300, out);
    pf.onAccess(9, 0x200, out);     // stride -0x100, conf 1
    pf.onAccess(9, 0x100, out);     // conf 2 -> issue
    ASSERT_EQ(out.size(), 1u);      // 0x0 fits; -0x100 is clamped
    EXPECT_EQ(out[0], 0x0u);
    EXPECT_EQ(pf.issued(), out.size());
}

TEST(IpStridePrefetcher, StopsAtPageBoundary)
{
    // Large strides must stop at the 4 KiB page boundary like real
    // hardware (the next page's mapping is unknown); clamped
    // candidates are not counted as issued.
    IpStridePrefetcher pf;
    std::vector<Addr> out;
    pf.onAccess(11, 0x1000, out);
    pf.onAccess(11, 0x1400, out);   // stride +0x400, conf 1
    pf.onAccess(11, 0x1800, out);   // conf 2 -> issue
    ASSERT_EQ(out.size(), 1u);      // 0x1C00 fits; 0x2000 is the
                                    // next page
    EXPECT_EQ(out[0], 0x1C00u);
    EXPECT_EQ(pf.issued(), out.size());
}

TEST(IpStridePrefetcher, TableCollisionRetrains)
{
    // Two pcs that hash to the same table entry (69 % 64 == 5) must
    // evict each other instead of blending their strides into bogus
    // trained patterns.
    IpStridePrefetcher pf;
    std::vector<Addr> out;
    for (int i = 0; i < 8; i++) {
        pf.onAccess(5, 0x1000 + static_cast<Addr>(i) * 64, out);
        pf.onAccess(69, 0x9000 + static_cast<Addr>(i) * 128, out);
    }
    EXPECT_TRUE(out.empty());
    EXPECT_EQ(pf.issued(), 0u);
}

TEST(IpStridePrefetcher, DetectsStridedPattern)
{
    IpStridePrefetcher pf;
    std::vector<Addr> out;
    // Stride of 2 lines from one pc.
    pf.onAccess(7, 0x1000, out);
    pf.onAccess(7, 0x1080, out);
    EXPECT_TRUE(out.empty());
    pf.onAccess(7, 0x1100, out);
    ASSERT_FALSE(out.empty());
    EXPECT_EQ(out[0], 0x1180u);
}

TEST(IpStridePrefetcher, SeparatePcsTrackSeparateStrides)
{
    IpStridePrefetcher pf;
    std::vector<Addr> out1, out2;
    for (int i = 0; i < 4; i++) {
        pf.onAccess(1, 0x1000 + static_cast<Addr>(i) * 64, out1);
        pf.onAccess(2, 0x8000 + static_cast<Addr>(i) * 128, out2);
    }
    EXPECT_FALSE(out1.empty());
    EXPECT_FALSE(out2.empty());
    for (Addr a : out1)
        EXPECT_LT(a, 0x8000u);
    for (Addr a : out2)
        EXPECT_GE(a, 0x8000u);
}

TEST(IpStridePrefetcher, ChangingStrideRetrains)
{
    IpStridePrefetcher pf;
    std::vector<Addr> out;
    pf.onAccess(3, 0x1000, out);
    pf.onAccess(3, 0x1040, out);
    pf.onAccess(3, 0x1080, out);    // trained at +64
    out.clear();
    pf.onAccess(3, 0x2000, out);    // stride break
    EXPECT_TRUE(out.empty());
    pf.onAccess(3, 0x2100, out);    // new stride +256, conf 1
    EXPECT_TRUE(out.empty());
    pf.onAccess(3, 0x2200, out);    // conf 2 -> issue
    EXPECT_FALSE(out.empty());
}
