/** @file Unit tests for the functional AVX512 subset. */

#include <gtest/gtest.h>

#include "isa/avx512.hh"

using namespace zcomp;

namespace {

Vec512
iota()
{
    Vec512 v;
    for (int i = 0; i < 16; i++)
        v.setLane<float>(i, static_cast<float>(i) - 7.5f);
    return v;
}

} // namespace

TEST(Avx512, CmpNeqZeroBuildsSparsityMask)
{
    Vec512 v = setzeroPs();
    v.setLane<float>(3, 1.0f);
    v.setLane<float>(10, -2.0f);
    Mask16 m = cmpPsMask(v, setzeroPs(), CmpPred::NEQ);
    EXPECT_EQ(m, (1u << 3) | (1u << 10));
}

TEST(Avx512, CmpPredicates)
{
    Vec512 a = set1Ps(1.0f);
    Vec512 b = set1Ps(2.0f);
    EXPECT_EQ(cmpPsMask(a, b, CmpPred::LT), 0xFFFF);
    EXPECT_EQ(cmpPsMask(a, b, CmpPred::LE), 0xFFFF);
    EXPECT_EQ(cmpPsMask(a, b, CmpPred::GT), 0x0000);
    EXPECT_EQ(cmpPsMask(a, a, CmpPred::EQ), 0xFFFF);
    EXPECT_EQ(cmpPsMask(a, a, CmpPred::GE), 0xFFFF);
    EXPECT_EQ(cmpPsMask(a, b, CmpPred::NEQ), 0xFFFF);
}

TEST(Avx512, MaxPsIsRelu)
{
    Vec512 v = iota();
    Vec512 r = maxPs(v, setzeroPs());
    for (int i = 0; i < 16; i++) {
        float x = v.lane<float>(i);
        EXPECT_FLOAT_EQ(r.lane<float>(i), x > 0 ? x : 0.0f);
    }
}

TEST(Avx512, Arithmetic)
{
    Vec512 a = set1Ps(3.0f);
    Vec512 b = set1Ps(4.0f);
    Vec512 c = set1Ps(10.0f);
    EXPECT_FLOAT_EQ(addPs(a, b).lane<float>(5), 7.0f);
    EXPECT_FLOAT_EQ(mulPs(a, b).lane<float>(0), 12.0f);
    EXPECT_FLOAT_EQ(fmaddPs(a, b, c).lane<float>(15), 22.0f);
    EXPECT_FLOAT_EQ(reduceAddPs(set1Ps(0.5f)), 8.0f);
}

TEST(Avx512, Popcnt)
{
    EXPECT_EQ(popcnt32(0), 0);
    EXPECT_EQ(popcnt32(0x911C), 6);
    EXPECT_EQ(popcnt32(0xFFFF), 16);
}

TEST(Avx512, CompressStoreExpandLoadRoundTrip)
{
    Vec512 v = iota();
    Mask16 mask = cmpPsMask(v, setzeroPs(), CmpPred::NEQ);
    float packed[16] = {};
    int n = maskCompressStoreuPs(packed, mask, v);
    EXPECT_EQ(n, popcnt32(mask));
    Vec512 back = maskzExpandLoaduPs(mask, packed);
    for (int i = 0; i < 16; i++) {
        if ((mask >> i) & 1) {
            EXPECT_FLOAT_EQ(back.lane<float>(i), v.lane<float>(i));
        } else {
            EXPECT_FLOAT_EQ(back.lane<float>(i), 0.0f);
        }
    }
}

TEST(Avx512, CompressStorePacksInLaneOrder)
{
    Vec512 v = setzeroPs();
    v.setLane<float>(2, 2.0f);
    v.setLane<float>(9, 9.0f);
    v.setLane<float>(14, 14.0f);
    float packed[16] = {};
    int n = maskCompressStoreuPs(
        packed, (1u << 2) | (1u << 9) | (1u << 14), v);
    ASSERT_EQ(n, 3);
    EXPECT_FLOAT_EQ(packed[0], 2.0f);
    EXPECT_FLOAT_EQ(packed[1], 9.0f);
    EXPECT_FLOAT_EQ(packed[2], 14.0f);
}
