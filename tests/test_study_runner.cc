#include "bench/bench_common.hh"

#include <gtest/gtest.h>

#include "common/log.hh"
#include "common/thread_pool.hh"

using namespace zcomp;
using namespace zcomp::bench;

namespace {

// A cut-down study cell set (ResNet-32 at small batches) so the test
// stays quick while still covering training + inference and all
// three policies.
StudyOptions
quickOptions()
{
    StudyOptions opt;
    opt.models = {{ModelId::Resnet32, 2, 1, 0, 1.0}};
    return opt;
}

void
expectStatsEqual(const RunStats &a, const RunStats &b,
                 const std::string &what)
{
    EXPECT_EQ(a.cycles, b.cycles) << what << " cycles";
    EXPECT_EQ(a.breakdown.compute, b.breakdown.compute)
        << what << " compute";
    EXPECT_EQ(a.breakdown.memory, b.breakdown.memory)
        << what << " memory";
    EXPECT_EQ(a.breakdown.sync, b.breakdown.sync) << what << " sync";
    EXPECT_EQ(a.traffic.coreL1Bytes, b.traffic.coreL1Bytes)
        << what << " core-L1";
    EXPECT_EQ(a.traffic.l1L2Bytes, b.traffic.l1L2Bytes)
        << what << " L1-L2";
    EXPECT_EQ(a.traffic.l2L3Bytes, b.traffic.l2L3Bytes)
        << what << " L2-L3";
    EXPECT_EQ(a.traffic.l3DramBytes, b.traffic.l3DramBytes)
        << what << " L3-DRAM";
}

} // namespace

/**
 * The determinism guarantee behind the figure benches: a parallel
 * runStudy() produces NetworkSimResult numbers identical to the
 * sequential path, row for row and layer for layer.
 */
TEST(StudyRunner, ParallelMatchesSequentialExactly)
{
    setQuiet(true);
    // Exercise the parallel GEMM in functional preparation too.
    ThreadPool::setGlobalJobs(4);

    ThreadPool seq(1), par(4);
    StudyOptions opt = quickOptions();
    opt.pool = &seq;
    auto a = runStudy(opt);
    opt.pool = &par;
    auto b = runStudy(opt);

    ThreadPool::setGlobalJobs(ThreadPool::defaultJobs());
    setQuiet(false);

    ASSERT_EQ(a.size(), 2u);
    ASSERT_EQ(b.size(), a.size());
    for (size_t r = 0; r < a.size(); r++) {
        const StudyRow &ra = a[r], &rb = b[r];
        EXPECT_EQ(ra.model, rb.model);
        EXPECT_EQ(ra.training, rb.training);
        for (int pol = 0; pol < numIoPolicies; pol++) {
            std::string what =
                ra.model + (ra.training ? "/train/" : "/infer/") +
                ioPolicyName(static_cast<IoPolicy>(pol));
            const NetworkSimResult &sa = ra.results[pol];
            const NetworkSimResult &sb = rb.results[pol];
            expectStatsEqual(sa.total, sb.total, what);
            ASSERT_EQ(sa.layers.size(), sb.layers.size()) << what;
            for (size_t l = 0; l < sa.layers.size(); l++) {
                EXPECT_EQ(sa.layers[l].name, sb.layers[l].name);
                EXPECT_EQ(sa.layers[l].backward,
                          sb.layers[l].backward);
                expectStatsEqual(sa.layers[l].stats,
                                 sb.layers[l].stats,
                                 what + "." + sa.layers[l].name);
            }
        }
    }
}

/** Row order must match the sequential (model, mode) nesting. */
TEST(StudyRunner, RowOrderIsDeterministic)
{
    setQuiet(true);
    ThreadPool par(3);
    StudyOptions opt;
    opt.models = {{ModelId::Resnet32, 2, 1, 0, 1.0},
                  {ModelId::AlexNet, 2, 1, 0, 1.0}};
    opt.pool = &par;
    auto rows = runStudy(opt);
    setQuiet(false);

    ASSERT_EQ(rows.size(), 4u);
    EXPECT_EQ(rows[0].model, "resnet-32");
    EXPECT_TRUE(rows[0].training);
    EXPECT_EQ(rows[1].model, "resnet-32");
    EXPECT_FALSE(rows[1].training);
    EXPECT_EQ(rows[2].model, "alexnet");
    EXPECT_TRUE(rows[2].training);
    EXPECT_EQ(rows[3].model, "alexnet");
    EXPECT_FALSE(rows[3].training);
}

/** trainingOnly / inferenceOnly filters prune the cell grid. */
TEST(StudyRunner, ModeFilters)
{
    setQuiet(true);
    ThreadPool seq(1);
    StudyOptions opt = quickOptions();
    opt.pool = &seq;
    opt.trainingOnly = true;
    auto train = runStudy(opt);
    opt.trainingOnly = false;
    opt.inferenceOnly = true;
    auto infer = runStudy(opt);
    setQuiet(false);

    ASSERT_EQ(train.size(), 1u);
    EXPECT_TRUE(train[0].training);
    ASSERT_EQ(infer.size(), 1u);
    EXPECT_FALSE(infer[0].training);
}
