#include "bench/bench_common.hh"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <thread>

#include "cachecomp/cache_model.hh"
#include "common/error.hh"
#include "common/fault.hh"
#include "common/log.hh"
#include "common/result_cache.hh"
#include "common/thread_pool.hh"

using namespace zcomp;
using namespace zcomp::bench;

namespace {

// A cut-down study cell set (ResNet-32 at small batches) so the test
// stays quick while still covering training + inference and all
// three policies.
StudyOptions
quickOptions()
{
    StudyOptions opt;
    opt.models = {{ModelId::Resnet32, 2, 1, 0, 1.0}};
    return opt;
}

void
expectStatsEqual(const RunStats &a, const RunStats &b,
                 const std::string &what)
{
    EXPECT_EQ(a.cycles, b.cycles) << what << " cycles";
    EXPECT_EQ(a.breakdown.compute, b.breakdown.compute)
        << what << " compute";
    EXPECT_EQ(a.breakdown.memory, b.breakdown.memory)
        << what << " memory";
    EXPECT_EQ(a.breakdown.sync, b.breakdown.sync) << what << " sync";
    EXPECT_EQ(a.traffic.coreL1Bytes, b.traffic.coreL1Bytes)
        << what << " core-L1";
    EXPECT_EQ(a.traffic.l1L2Bytes, b.traffic.l1L2Bytes)
        << what << " L1-L2";
    EXPECT_EQ(a.traffic.l2L3Bytes, b.traffic.l2L3Bytes)
        << what << " L2-L3";
    EXPECT_EQ(a.traffic.l3DramBytes, b.traffic.l3DramBytes)
        << what << " L3-DRAM";
}

} // namespace

/**
 * The determinism guarantee behind the figure benches: a parallel
 * runStudy() produces NetworkSimResult numbers identical to the
 * sequential path, row for row and layer for layer.
 */
TEST(StudyRunner, ParallelMatchesSequentialExactly)
{
    setQuiet(true);
    // Exercise the parallel GEMM in functional preparation too.
    ThreadPool::setGlobalJobs(4);

    ThreadPool seq(1), par(4);
    StudyOptions opt = quickOptions();
    opt.pool = &seq;
    auto a = runStudy(opt);
    opt.pool = &par;
    auto b = runStudy(opt);

    ThreadPool::setGlobalJobs(ThreadPool::defaultJobs());
    setQuiet(false);

    ASSERT_EQ(a.size(), 2u);
    ASSERT_EQ(b.size(), a.size());
    for (size_t r = 0; r < a.size(); r++) {
        const StudyRow &ra = a[r], &rb = b[r];
        EXPECT_EQ(ra.model, rb.model);
        EXPECT_EQ(ra.training, rb.training);
        for (int pol = 0; pol < numIoPolicies; pol++) {
            std::string what =
                ra.model + (ra.training ? "/train/" : "/infer/") +
                ioPolicyName(static_cast<IoPolicy>(pol));
            const NetworkSimResult &sa = ra.results[pol];
            const NetworkSimResult &sb = rb.results[pol];
            expectStatsEqual(sa.total, sb.total, what);
            ASSERT_EQ(sa.layers.size(), sb.layers.size()) << what;
            for (size_t l = 0; l < sa.layers.size(); l++) {
                EXPECT_EQ(sa.layers[l].name, sb.layers[l].name);
                EXPECT_EQ(sa.layers[l].backward,
                          sb.layers[l].backward);
                expectStatsEqual(sa.layers[l].stats,
                                 sb.layers[l].stats,
                                 what + "." + sa.layers[l].name);
            }
        }
    }
}

/** Row order must match the sequential (model, mode) nesting. */
TEST(StudyRunner, RowOrderIsDeterministic)
{
    setQuiet(true);
    ThreadPool par(3);
    StudyOptions opt;
    opt.models = {{ModelId::Resnet32, 2, 1, 0, 1.0},
                  {ModelId::AlexNet, 2, 1, 0, 1.0}};
    opt.pool = &par;
    auto rows = runStudy(opt);
    setQuiet(false);

    ASSERT_EQ(rows.size(), 4u);
    EXPECT_EQ(rows[0].model, "resnet-32");
    EXPECT_TRUE(rows[0].training);
    EXPECT_EQ(rows[1].model, "resnet-32");
    EXPECT_FALSE(rows[1].training);
    EXPECT_EQ(rows[2].model, "alexnet");
    EXPECT_TRUE(rows[2].training);
    EXPECT_EQ(rows[3].model, "alexnet");
    EXPECT_FALSE(rows[3].training);
}

/** trainingOnly / inferenceOnly filters prune the cell grid. */
TEST(StudyRunner, ModeFilters)
{
    setQuiet(true);
    ThreadPool seq(1);
    StudyOptions opt = quickOptions();
    opt.pool = &seq;
    opt.trainingOnly = true;
    auto train = runStudy(opt);
    opt.trainingOnly = false;
    opt.inferenceOnly = true;
    auto infer = runStudy(opt);
    setQuiet(false);

    ASSERT_EQ(train.size(), 1u);
    EXPECT_TRUE(train[0].training);
    ASSERT_EQ(infer.size(), 1u);
    EXPECT_FALSE(infer[0].training);
}

/**
 * A cell whose attempts all throw becomes a Failed row (within the
 * failure budget) instead of killing the sweep; other cells complete
 * normally.
 */
TEST(StudyRunner, FaultIsolation)
{
    setQuiet(true);
    ThreadPool seq(1);
    StudyHarness h;
    h.failBudget = 2;
    StudyOptions opt = quickOptions();
    opt.pool = &seq;
    opt.harness = &h;
    opt.faultHook = [](const StudyModel &, bool training, int) {
        if (training)
            throw std::runtime_error("injected cell fault");
    };
    auto rows = runStudy(opt);
    setQuiet(false);

    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0].status, CellStatus::Failed);
    EXPECT_TRUE(rows[0].training);
    EXPECT_EQ(rows[0].error, "injected cell fault");
    EXPECT_EQ(rows[0].attempts, 1);
    EXPECT_EQ(rows[1].status, CellStatus::Simulated);
    EXPECT_GT(rows[1].results[0].cycles(), 0.0);

    // Failed rows serialize in the compact failure schema.
    Json j = studyRowToJson(rows[0]);
    const Json *failed = j.find("failed");
    ASSERT_NE(failed, nullptr);
    EXPECT_TRUE(failed->asBool());
    EXPECT_EQ(j.find("error")->asString(), "injected cell fault");
    EXPECT_EQ(j.find("policies"), nullptr);
}

/** A transient fault is retried and the cell then succeeds. */
TEST(StudyRunner, TransientFaultRetries)
{
    setQuiet(true);
    ThreadPool seq(1);
    StudyHarness h;
    h.retries = 2;
    h.backoffMillis = 1;    // keep the test fast
    StudyOptions opt = quickOptions();
    opt.inferenceOnly = true;
    opt.pool = &seq;
    opt.harness = &h;
    opt.faultHook = [](const StudyModel &, bool, int attempt) {
        if (attempt == 1)
            throw std::runtime_error("transient fault");
    };
    auto rows = runStudy(opt);
    setQuiet(false);

    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].status, CellStatus::Simulated);
    EXPECT_EQ(rows[0].attempts, 2);
    EXPECT_GT(rows[0].results[0].cycles(), 0.0);
}

/**
 * End-to-end --fault-spec path: a capped kernel.transient site faults
 * the first two attempts inside NetworkSim::run() itself (no test
 * hook), and the retry loop recovers the cell once the cap is hit.
 */
TEST(StudyRunner, InjectedKernelFaultIsRetriedEndToEnd)
{
    FaultInjector::global().reset();
    resetDecodeErrorCount();
    setQuiet(true);
    ThreadPool seq(1);
    StudyHarness h;
    h.retries = 2;
    h.backoffMillis = 1;
    StudyOptions opt = quickOptions();
    opt.inferenceOnly = true;
    opt.pool = &seq;
    opt.harness = &h;
    // prob 1, seed 1, at most 2 injections: attempts 1 and 2 fault on
    // their first policy run, attempt 3 completes all policies clean.
    FaultInjector::global().configure("kernel.transient:1:1:2");
    auto rows = runStudy(opt);
    setQuiet(false);

    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].status, CellStatus::Simulated);
    EXPECT_EQ(rows[0].attempts, 3);
    EXPECT_GT(rows[0].results[0].cycles(), 0.0);
    EXPECT_EQ(
        FaultInjector::global().injected(faultsite::KernelTransient),
        2u);
    FaultInjector::global().reset();
}

/** An uncapped always-fire fault site exhausts retries into a
 *  typed Failed row whose error names the site. */
TEST(StudyRunner, InjectedKernelFaultExhaustsRetries)
{
    FaultInjector::global().reset();
    setQuiet(true);
    ThreadPool seq(1);
    StudyHarness h;
    h.retries = 2;
    h.backoffMillis = 1;
    h.failBudget = 1;
    StudyOptions opt = quickOptions();
    opt.inferenceOnly = true;
    opt.pool = &seq;
    opt.harness = &h;
    FaultInjector::global().configure("kernel.transient:1");
    auto rows = runStudy(opt);
    setQuiet(false);
    FaultInjector::global().reset();

    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].status, CellStatus::Failed);
    EXPECT_EQ(rows[0].attempts, 3);
    EXPECT_NE(rows[0].error.find("fault:"), std::string::npos)
        << rows[0].error;
    EXPECT_NE(rows[0].error.find("kernel.transient"),
              std::string::npos)
        << rows[0].error;
}

/** CellAbort bypasses the retry loop entirely. */
TEST(StudyRunner, CellAbortSkipsRetries)
{
    setQuiet(true);
    ThreadPool seq(1);
    StudyHarness h;
    h.retries = 5;
    h.backoffMillis = 1;
    h.failBudget = 1;
    StudyOptions opt = quickOptions();
    opt.inferenceOnly = true;
    opt.pool = &seq;
    opt.harness = &h;
    opt.faultHook = [](const StudyModel &, bool, int) {
        throw CellAbort("operator stop");
    };
    auto rows = runStudy(opt);
    setQuiet(false);

    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].status, CellStatus::Failed);
    EXPECT_EQ(rows[0].attempts, 1);
    EXPECT_EQ(rows[0].error, "aborted: operator stop");
}

/** Arming fault injection changes the cell cache key, so faulted
 *  sweeps can never poison (or reuse) clean cached rows. */
TEST(StudyRunner, FaultSpecIsPartOfCellKey)
{
    StudyOptions opt = quickOptions();
    FaultInjector::global().reset();
    std::string clean = studyCellKey(opt.models[0], true, false);
    FaultInjector::global().configure("kernel.transient:0.5");
    std::string faulted = studyCellKey(opt.models[0], true, false);
    FaultInjector::global().reset();
    EXPECT_NE(clean, faulted);
    EXPECT_EQ(clean, studyCellKey(opt.models[0], true, false));
}

/** An attempt that overruns --cell-timeout is recorded as failed. */
TEST(StudyRunner, CellTimeout)
{
    setQuiet(true);
    ThreadPool seq(1);
    StudyHarness h;
    h.cellTimeoutSec = 0.02;
    h.failBudget = 1;
    StudyOptions opt = quickOptions();
    opt.inferenceOnly = true;
    opt.pool = &seq;
    opt.harness = &h;
    opt.faultHook = [](const StudyModel &, bool, int) {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
    };
    auto rows = runStudy(opt);
    setQuiet(false);

    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].status, CellStatus::Failed);
    EXPECT_NE(rows[0].error.find("timed out"), std::string::npos)
        << rows[0].error;
}

/** Successful study rows round-trip through JSON byte-identically. */
TEST(StudyRunner, RowJsonRoundTripsExactly)
{
    setQuiet(true);
    ThreadPool seq(1);
    StudyOptions opt = quickOptions();
    opt.inferenceOnly = true;
    opt.pool = &seq;
    auto rows = runStudy(opt);
    setQuiet(false);

    ASSERT_EQ(rows.size(), 1u);
    Json j = studyRowToJson(rows[0]);
    std::string dumped = j.dump(2);
    std::string err;
    Json parsed = Json::parse(dumped, &err);
    ASSERT_TRUE(err.empty()) << err;
    StudyRow restored = studyRowFromJson(parsed);
    EXPECT_EQ(studyRowToJson(restored).dump(2), dumped);
    EXPECT_EQ(restored.model, rows[0].model);
    EXPECT_EQ(restored.results[0].total.cycles,
              rows[0].results[0].total.cycles);
}

/**
 * The tentpole guarantee: a resumed sweep restores cached cells with
 * bitwise-identical rows, a corrupted cache entry degrades to a
 * re-simulation, and the cell key distinguishes modes.
 */
TEST(StudyRunner, CacheResumeIsByteIdentical)
{
    std::string dir = "study_cache_test";
    std::filesystem::remove_all(dir);

    setQuiet(true);
    ThreadPool seq(1);
    StudyHarness h;
    h.cacheDir = dir;
    StudyOptions opt = quickOptions();
    opt.pool = &seq;
    opt.harness = &h;
    auto fresh = runStudy(opt);     // populates the cache

    h.resume = true;
    auto resumed = runStudy(opt);   // must restore every cell
    setQuiet(false);

    ASSERT_EQ(fresh.size(), 2u);
    ASSERT_EQ(resumed.size(), fresh.size());
    for (size_t r = 0; r < fresh.size(); r++) {
        EXPECT_EQ(fresh[r].status, CellStatus::Simulated);
        EXPECT_EQ(resumed[r].status, CellStatus::Cached);
        EXPECT_EQ(studyRowToJson(resumed[r]).dump(2),
                  studyRowToJson(fresh[r]).dump(2))
            << "row " << r << " not byte-identical after resume";
    }

    // Corrupt one entry: that cell (and only that cell) re-simulates,
    // and its numbers still match the fresh run exactly.
    ResultCache cache(dir);
    std::string key =
        studyCellKey(opt.models[0], /*training=*/true,
                     /*want_stats=*/false);
    {
        std::ofstream f(cache.entryPath(key), std::ios::trunc);
        f << "not json";
    }
    setQuiet(true);
    auto repaired = runStudy(opt);
    setQuiet(false);
    ASSERT_EQ(repaired.size(), 2u);
    EXPECT_EQ(repaired[0].status, CellStatus::Simulated);
    EXPECT_EQ(repaired[1].status, CellStatus::Cached);
    // The re-simulated cell has new wall-clock timings but identical
    // simulation numbers.
    for (int pol = 0; pol < numIoPolicies; pol++)
        expectStatsEqual(repaired[0].results[pol].total,
                         fresh[0].results[pol].total, "repaired cell");

    // Training and inference cells must never share a key.
    EXPECT_NE(studyCellKey(opt.models[0], true, false),
              studyCellKey(opt.models[0], false, false));
    EXPECT_NE(studyCellKey(opt.models[0], true, false),
              studyCellKey(opt.models[0], true, true));
}

/**
 * A truncated (non-line-aligned) snapshot surfacing mid-cell raises a
 * typed DecodeError: the runner treats it as a recoverable SimError -
 * retried per the harness, then recorded as a failed row with the
 * "decode" kind - instead of fatal()ing the whole sweep (ISSUE 9).
 */
TEST(StudyRunner, TruncatedSnapshotFailsCellInIsolation)
{
    resetDecodeErrorCount();
    setQuiet(true);
    ThreadPool seq(1);
    StudyHarness h;
    h.retries = 1;
    h.backoffMillis = 1;
    h.failBudget = 1;
    StudyOptions opt = quickOptions();
    opt.inferenceOnly = true;
    opt.pool = &seq;
    opt.harness = &h;
    opt.faultHook = [](const StudyModel &, bool, int) {
        // 65 bytes: a snapshot cut off mid-line.
        std::vector<uint8_t> snap(65, 0);
        zcompSnapshotRatio(snap.data(), snap.size());
    };
    auto rows = runStudy(opt);
    setQuiet(false);

    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].status, CellStatus::Failed);
    EXPECT_EQ(rows[0].attempts, 2);
    EXPECT_NE(rows[0].error.find("decode"), std::string::npos)
        << rows[0].error;
    EXPECT_NE(rows[0].error.find("line-aligned"), std::string::npos)
        << rows[0].error;
    // Every detection bumped the observable counter (one per attempt).
    EXPECT_EQ(decodeErrorCount(), 2u);
}
