/** @file Unit tests for LRU and SRRIP replacement policies. */

#include <gtest/gtest.h>

#include "mem/replacement.hh"

using namespace zcomp;

TEST(Lru, EvictsLeastRecentlyUsed)
{
    LruPolicy lru(1, 4);
    for (int w = 0; w < 4; w++)
        lru.onInsert(0, w);
    // Touch ways 0, 2, 3 -> way 1 is LRU.
    lru.onHit(0, 0);
    lru.onHit(0, 2);
    lru.onHit(0, 3);
    EXPECT_EQ(lru.victim(0), 1);
}

TEST(Lru, HitRefreshesRecency)
{
    LruPolicy lru(1, 2);
    lru.onInsert(0, 0);
    lru.onInsert(0, 1);
    lru.onHit(0, 0);
    EXPECT_EQ(lru.victim(0), 1);
    lru.onHit(0, 1);
    EXPECT_EQ(lru.victim(0), 0);
}

TEST(Lru, SetsAreIndependent)
{
    LruPolicy lru(2, 2);
    lru.onInsert(0, 0);
    lru.onInsert(0, 1);
    lru.onInsert(1, 1);
    lru.onInsert(1, 0);
    lru.onHit(0, 0);
    EXPECT_EQ(lru.victim(0), 1);
    EXPECT_EQ(lru.victim(1), 1);    // hit in set 0 must not affect set 1
}

TEST(Srrip, InsertsAtLongRereference)
{
    SrripPolicy srrip(1, 4);
    // All ways start at max RRPV -> way 0 is a valid victim.
    EXPECT_EQ(srrip.victim(0), 0);
    srrip.onInsert(0, 0);       // rrpv = 2
    // Next victim must not be way 0 (others are at 3).
    EXPECT_NE(srrip.victim(0), 0);
}

TEST(Srrip, HitPromotesToZeroAndAgingWorks)
{
    SrripPolicy srrip(1, 2);
    srrip.onInsert(0, 0);   // 2
    srrip.onInsert(0, 1);   // 2
    srrip.onHit(0, 0);      // 0
    // Victim search: nobody at 3 -> age twice -> way 1 reaches 3 first.
    EXPECT_EQ(srrip.victim(0), 1);
}

TEST(Srrip, ScanResistance)
{
    // A hot way that was hit stays resident while scan insertions keep
    // replacing the other way - the signature SRRIP behaviour.
    SrripPolicy srrip(1, 2);
    srrip.onInsert(0, 0);
    srrip.onInsert(0, 1);       // scan line
    for (int i = 0; i < 5; i++) {
        srrip.onHit(0, 0);      // way 0 stays hot (re-referenced)
        int v = srrip.victim(0);
        EXPECT_EQ(v, 1);        // scans evict scans, not the hot line
        srrip.onInsert(0, v);
    }
}

TEST(Replacement, FactoryCreatesRequestedPolicy)
{
    auto lru = ReplacementPolicy::create(ReplPolicy::LRU, 4, 4);
    auto srrip = ReplacementPolicy::create(ReplPolicy::SRRIP, 4, 4);
    EXPECT_NE(dynamic_cast<LruPolicy *>(lru.get()), nullptr);
    EXPECT_NE(dynamic_cast<SrripPolicy *>(srrip.get()), nullptr);
}
