/** @file Unit tests for the 2D-mesh NoC latency model. */

#include <gtest/gtest.h>

#include "mem/noc.hh"

using namespace zcomp;

TEST(Noc, HopCountsOn4x4Mesh)
{
    NocConfig cfg;      // 4x4, 2-cycle hops
    Mesh2D mesh(cfg);
    EXPECT_EQ(mesh.numTiles(), 16);
    EXPECT_EQ(mesh.hops(0, 0), 0);
    EXPECT_EQ(mesh.hops(0, 1), 1);      // same row
    EXPECT_EQ(mesh.hops(0, 4), 1);      // same column
    EXPECT_EQ(mesh.hops(0, 5), 2);      // diagonal neighbor
    EXPECT_EQ(mesh.hops(0, 15), 6);     // corner to corner
    EXPECT_EQ(mesh.hops(15, 0), 6);     // symmetric
}

TEST(Noc, LatencyScalesWithHops)
{
    NocConfig cfg;
    Mesh2D mesh(cfg);
    EXPECT_EQ(mesh.latency(0, 15), 12);
    EXPECT_EQ(mesh.roundTrip(0, 15), 24);
    EXPECT_EQ(mesh.roundTrip(3, 3), 0);
}

TEST(Noc, SliceHashCoversAllTiles)
{
    NocConfig cfg;
    Mesh2D mesh(cfg);
    std::vector<int> counts(16, 0);
    for (Addr line = 0; line < 16 * 64; line += 64)
        counts[static_cast<size_t>(mesh.sliceOf(line))]++;
    for (int c : counts)
        EXPECT_EQ(c, 1);    // consecutive lines round-robin the slices
}

TEST(Noc, CustomMeshDimensions)
{
    NocConfig cfg;
    cfg.meshX = 2;
    cfg.meshY = 3;
    cfg.hopCycles = 5;
    Mesh2D mesh(cfg);
    EXPECT_EQ(mesh.numTiles(), 6);
    EXPECT_EQ(mesh.hops(0, 5), 3);      // (0,0) -> (1,2)
    EXPECT_EQ(mesh.latency(0, 5), 15);
}
