/** @file Unit tests for the Vec512 register value type. */

#include <gtest/gtest.h>

#include "isa/vec.hh"

using namespace zcomp;

TEST(Vec512, ZeroIsAllZeroBytes)
{
    Vec512 v = Vec512::zero();
    for (uint8_t b : v.bytes)
        EXPECT_EQ(b, 0);
}

TEST(Vec512, FloatLaneRoundTrip)
{
    Vec512 v = Vec512::zero();
    for (int i = 0; i < 16; i++)
        v.setLane<float>(i, static_cast<float>(i) * 1.5f);
    for (int i = 0; i < 16; i++)
        EXPECT_FLOAT_EQ(v.lane<float>(i), static_cast<float>(i) * 1.5f);
}

TEST(Vec512, Int8LaneRoundTrip)
{
    Vec512 v = Vec512::zero();
    for (int i = 0; i < 64; i++)
        v.setLane<int8_t>(i, static_cast<int8_t>(i - 32));
    for (int i = 0; i < 64; i++)
        EXPECT_EQ(v.lane<int8_t>(i), static_cast<int8_t>(i - 32));
}

TEST(Vec512, DoubleLaneRoundTrip)
{
    Vec512 v = Vec512::zero();
    for (int i = 0; i < 8; i++)
        v.setLane<double>(i, i * 0.25);
    for (int i = 0; i < 8; i++)
        EXPECT_DOUBLE_EQ(v.lane<double>(i), i * 0.25);
}

TEST(Vec512, LoadStoreRoundTrip)
{
    float buf[16];
    for (int i = 0; i < 16; i++)
        buf[i] = static_cast<float>(i);
    Vec512 v = Vec512::load(buf);
    float out[16] = {};
    v.store(out);
    for (int i = 0; i < 16; i++)
        EXPECT_FLOAT_EQ(out[i], buf[i]);
}

TEST(Vec512, EqualityComparesAllBytes)
{
    Vec512 a = Vec512::zero();
    Vec512 b = Vec512::zero();
    EXPECT_TRUE(a == b);
    b.setLane<uint8_t>(63, 1);
    EXPECT_FALSE(a == b);
}
