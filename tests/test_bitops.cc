/** @file Unit tests for common/bitops.hh. */

#include <gtest/gtest.h>

#include "common/bitops.hh"

using namespace zcomp;

TEST(Bitops, Popcount64)
{
    EXPECT_EQ(popcount64(0), 0);
    EXPECT_EQ(popcount64(1), 1);
    EXPECT_EQ(popcount64(0x911C), 6);   // header example from Figure 4
    EXPECT_EQ(popcount64(~0ULL), 64);
}

TEST(Bitops, IsPow2)
{
    EXPECT_FALSE(isPow2(0));
    EXPECT_TRUE(isPow2(1));
    EXPECT_TRUE(isPow2(64));
    EXPECT_FALSE(isPow2(65));
    EXPECT_TRUE(isPow2(1ULL << 63));
}

TEST(Bitops, FloorCeilLog2)
{
    EXPECT_EQ(floorLog2(1), 0);
    EXPECT_EQ(floorLog2(2), 1);
    EXPECT_EQ(floorLog2(3), 1);
    EXPECT_EQ(floorLog2(64), 6);
    EXPECT_EQ(ceilLog2(64), 6);
    EXPECT_EQ(ceilLog2(65), 7);
    EXPECT_EQ(ceilLog2(1), 0);
}

TEST(Bitops, Align)
{
    EXPECT_EQ(alignUp(0, 64), 0u);
    EXPECT_EQ(alignUp(1, 64), 64u);
    EXPECT_EQ(alignUp(64, 64), 64u);
    EXPECT_EQ(alignUp(65, 64), 128u);
    EXPECT_EQ(alignDown(63, 64), 0u);
    EXPECT_EQ(alignDown(127, 64), 64u);
}

TEST(Bitops, DivCeil)
{
    EXPECT_EQ(divCeil(0, 16), 0);
    EXPECT_EQ(divCeil(1, 16), 1);
    EXPECT_EQ(divCeil(16, 16), 1);
    EXPECT_EQ(divCeil(17, 16), 2);
}

TEST(Bitops, BitsExtractInsert)
{
    EXPECT_EQ(bits(0xABCD, 15, 8), 0xABu);
    EXPECT_EQ(bits(0xABCD, 7, 0), 0xCDu);
    EXPECT_EQ(bits(~0ULL, 63, 0), ~0ULL);
    uint64_t w = 0;
    w = insertBits(w, 15, 8, 0xAB);
    w = insertBits(w, 7, 0, 0xCD);
    EXPECT_EQ(w, 0xABCDu);
    // Overwrite a field.
    w = insertBits(w, 15, 8, 0x12);
    EXPECT_EQ(w, 0x12CDu);
}

TEST(Bitops, LoadStoreAsRoundTripsUnaligned)
{
    uint8_t buf[16] = {};
    // Offset 1 is misaligned for every multi-byte type.
    storeAs<uint32_t>(buf + 1, 0xDEADBEEFu);
    EXPECT_EQ(loadAs<uint32_t>(buf + 1), 0xDEADBEEFu);
    storeAs<float>(buf + 3, -1.5f);
    EXPECT_EQ(loadAs<float>(buf + 3), -1.5f);

    // Bounds-checked flavor, including the last valid offset.
    storeAs<uint64_t>(buf, sizeof(buf), 8, 0x0123456789ABCDEFull);
    EXPECT_EQ(loadAs<uint64_t>(buf, sizeof(buf), 8),
              0x0123456789ABCDEFull);
}

TEST(Bitops, BytesLeRoundTripAllWidths)
{
    for (int nbytes = 0; nbytes <= 8; nbytes++) {
        uint64_t mask =
            nbytes == 8 ? ~0ull : (1ull << (8 * nbytes)) - 1;
        uint64_t v = 0xF1E2D3C4B5A69788ull & mask;
        uint8_t buf[8] = {};
        storeBytesLe(buf, nbytes, v);
        EXPECT_EQ(loadBytesLe(buf, nbytes), v) << "nbytes=" << nbytes;
    }
    // Byte order is little-endian regardless of host.
    uint8_t two[2] = {0x34, 0x12};
    EXPECT_EQ(loadBytesLe(two, 2), 0x1234u);
}

#if ZCOMP_DCHECK_ENABLED
TEST(BitopsDeathTest, BoundsCheckedAccessorsCatchOverruns)
{
    uint8_t buf[8] = {};
    EXPECT_DEATH(loadAs<uint32_t>(buf, sizeof(buf), 5), "overruns");
    EXPECT_DEATH(storeAs<uint32_t>(buf, sizeof(buf), 5, 1u), "overruns");
    EXPECT_DEATH(loadBytesLe(buf, 9), "bad field width");
}
#endif

TEST(BitopsProperty, InsertThenExtractRoundTrips)
{
    for (int first = 0; first < 60; first += 7) {
        for (int width = 1; width <= 4; width++) {
            int last = first + width - 1;
            uint64_t val = 0x5A5A5A5A5A5A5A5AULL & ((1ULL << width) - 1);
            uint64_t w = insertBits(0xFFFFFFFFFFFFFFFFULL, last, first, val);
            EXPECT_EQ(bits(w, last, first), val)
                << "first=" << first << " width=" << width;
        }
    }
}
