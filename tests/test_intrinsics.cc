/** @file Unit tests for the intrinsic-style ZCOMP software interface. */

#include <gtest/gtest.h>

#include "zcomp/intrinsics.hh"

using namespace zcomp;

namespace {

Vec512
vecWith(std::initializer_list<std::pair<int, float>> vals)
{
    Vec512 v = Vec512::zero();
    for (auto [lane, x] : vals)
        v.setLane<float>(lane, x);
    return v;
}

} // namespace

TEST(Intrinsics, InterleavedAutoIncrement)
{
    uint8_t buf[256];
    uint8_t *dst = buf;
    // First vector: 2 non-zeros -> 2 + 8 = 10 bytes.
    zcompsIPs(dst, vecWith({{0, 1.0f}, {8, 2.0f}}), Ccf::EQZ);
    EXPECT_EQ(dst - buf, 10);
    // Second vector: all zero -> 2 bytes.
    zcompsIPs(dst, Vec512::zero(), Ccf::EQZ);
    EXPECT_EQ(dst - buf, 12);

    const uint8_t *src = buf;
    Vec512 a = zcomplIPs(src);
    EXPECT_EQ(src - buf, 10);
    EXPECT_FLOAT_EQ(a.lane<float>(0), 1.0f);
    EXPECT_FLOAT_EQ(a.lane<float>(8), 2.0f);
    Vec512 b = zcomplIPs(src);
    EXPECT_EQ(src - buf, 12);
    EXPECT_TRUE(b == Vec512::zero());
}

TEST(Intrinsics, SeparateHeaderAutoIncrement)
{
    uint8_t data[256];
    uint8_t hdrs[32];
    uint8_t *dptr = data;
    uint8_t *hptr = hdrs;
    zcompsSPs(dptr, vecWith({{3, -4.0f}}), hptr, Ccf::EQZ);
    EXPECT_EQ(dptr - data, 4);  // one fp32 payload
    EXPECT_EQ(hptr - hdrs, 2);  // one 16-bit header
    zcompsSPs(dptr, Vec512::zero(), hptr, Ccf::EQZ);
    EXPECT_EQ(dptr - data, 4);  // no payload for the all-zero vector
    EXPECT_EQ(hptr - hdrs, 4);

    const uint8_t *rd = data;
    const uint8_t *rh = hdrs;
    Vec512 a = zcomplSPs(rd, rh);
    EXPECT_FLOAT_EQ(a.lane<float>(3), -4.0f);
    Vec512 b = zcomplSPs(rd, rh);
    EXPECT_TRUE(b == Vec512::zero());
    EXPECT_EQ(rd - data, 4);
    EXPECT_EQ(rh - hdrs, 4);
}

TEST(Intrinsics, IterativeLoopMatchesFigure8And9)
{
    // The Figure 8/9 usage pattern: compress n elements in a loop via
    // one intrinsic per vector, then retrieve them back in order.
    constexpr size_t n = 16 * 32;
    float x[n];
    for (size_t i = 0; i < n; i++)
        x[i] = (i % 3 == 0) ? -1.0f : static_cast<float>(i);

    uint8_t region[n * 4 + 2 * (n / 16)];
    uint8_t *y_ptr = region;
    for (size_t i = 0; i < n; i += 16)
        zcompsIPs(y_ptr, Vec512::load(x + i), Ccf::LTEZ);    // fused ReLU

    const uint8_t *x_ptr = region;
    for (size_t i = 0; i < n; i += 16) {
        Vec512 t = zcomplIPs(x_ptr);
        for (int l = 0; l < 16; l++) {
            float expect = x[i + l] > 0 ? x[i + l] : 0.0f;
            EXPECT_FLOAT_EQ(t.lane<float>(l), expect);
        }
    }
}

TEST(Intrinsics, GenericTypeVariants)
{
    uint8_t buf[256];
    Vec512 v = Vec512::zero();
    v.setLane<double>(2, 3.5);
    uint8_t *dst = buf;
    ZcompResult r = zcompsI(dst, v, ElemType::F64, Ccf::EQZ);
    EXPECT_EQ(r.nnz, 1);
    EXPECT_EQ(dst - buf, 1 + 8);    // 1-byte header + one fp64
    const uint8_t *src = buf;
    Vec512 out = zcomplI(src, ElemType::F64);
    EXPECT_DOUBLE_EQ(out.lane<double>(2), 3.5);
}
