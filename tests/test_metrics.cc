/**
 * @file
 * Tests for the time-series telemetry subsystem (common/metrics.hh):
 * probe pattern matching, windowed-delta math, drain semantics, the
 * sweep progress stream, and the invariant that sampling never
 * perturbs simulation results.
 */

#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.hh"
#include "common/metrics.hh"
#include "common/stats.hh"
#include "dnn/layers/activation.hh"
#include "dnn/layers/conv.hh"
#include "dnn/layers/fc.hh"
#include "dnn/layers/norm.hh"
#include "dnn/layers/pool.hh"
#include "dnn/network.hh"
#include "sim/network_sim.hh"

using namespace zcomp;

namespace {

struct TempPath
{
    std::string path;
    explicit TempPath(const std::string &p) : path(p) {}
    ~TempPath() { std::remove(path.c_str()); }
};

/** Parse every line of a JSONL file; fails the test on bad JSON. */
std::vector<Json>
readJsonl(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "cannot open " << path;
    std::vector<Json> records;
    std::string line;
    while (std::getline(in, line)) {
        std::string err;
        records.push_back(Json::parse(line, &err));
        EXPECT_EQ(err, "") << "line " << records.size() << ": " << line;
    }
    return records;
}

/** Numeric member or test failure. */
double
num(const Json &rec, const char *key)
{
    const Json *p = rec.find(key);
    EXPECT_NE(p, nullptr) << "missing " << key;
    return p ? p->asDouble() : 0.0;
}

const Json &
sub(const Json &rec, const char *key)
{
    const Json *p = rec.find(key);
    EXPECT_NE(p, nullptr) << "missing " << key;
    static const Json null_json;
    return p ? *p : null_json;
}

/** The test convnet from test_network_sim, for end-to-end runs. */
std::unique_ptr<Network>
midNet(VSpace &vs, int batch)
{
    auto net = std::make_unique<Network>(
        "mid", vs, TensorShape{batch, 3, 64, 64});
    net->add(std::make_unique<ConvLayer>("conv1", 32, 3, 3, 1, 1));
    net->add(std::make_unique<ReluLayer>("relu1"));
    net->add(std::make_unique<PoolLayer>("pool1", LayerKind::MaxPool, 2,
                                         2));
    net->add(std::make_unique<ConvLayer>("conv2", 64, 3, 3, 1, 1));
    net->add(std::make_unique<ReluLayer>("relu2"));
    net->add(std::make_unique<FcLayer>("fc", 10));
    net->add(std::make_unique<SoftmaxLayer>("prob"));
    return net;
}

struct SimSetup
{
    std::unique_ptr<ExecContext> ctx;
    std::unique_ptr<Network> net;
    std::unique_ptr<NetworkSim> sim;
};

SimSetup
makeSetup(int batch = 4)
{
    SimSetup s;
    ArchConfig cfg;
    s.ctx = std::make_unique<ExecContext>(cfg);
    s.net = midNet(s.ctx->vs(), batch);
    s.net->build(false, 21);
    Rng rng(22);
    s.net->fillSyntheticInput(rng);
    s.net->forward();
    s.sim = std::make_unique<NetworkSim>(*s.ctx, *s.net);
    return s;
}

} // namespace

TEST(MetricsSampler, WildcardProbesSumSubtrees)
{
    TempPath tmp("test_metrics_wildcard.jsonl");
    MetricsSink sink(tmp.path);

    uint64_t l1_0 = 0, l1_1 = 0, busy0 = 0, busy1 = 0;
    auto provider = [&](StatGroup &g) {
        StatGroup &mem = g.addChild("mem");
        mem.addChild("l1_0").addCounter("hits", "").set(l1_0);
        mem.addChild("l1_1").addCounter("hits", "").set(l1_1);
        g.addChild("core0")
            .addCounter("zcomp_busy_cycles", "")
            .set(busy0);
        g.addChild("core1")
            .addCounter("zcomp_busy_cycles", "")
            .set(busy1);
    };
    MetricsSampler s(&sink, "cell", "policy", 100, 2, provider);
    s.addCounterProbe("mem.l1_*.hits");
    s.addCounterProbe("core*.zcomp_busy_cycles");
    s.rebase(0);

    l1_0 = 10;
    l1_1 = 32;
    busy0 = 5;
    busy1 = 7;
    s.sample(100);
    // A second window sees only the increments since the first.
    l1_0 = 11;
    s.sample(200);

    std::vector<Json> recs = readJsonl(tmp.path);
    ASSERT_EQ(recs.size(), 2u);
    const Json &c0 = sub(recs[0], "counters");
    EXPECT_DOUBLE_EQ(num(c0, "mem.l1_*.hits"), 42.0);
    EXPECT_DOUBLE_EQ(num(c0, "core*.zcomp_busy_cycles"), 12.0);
    const Json &c1 = sub(recs[1], "counters");
    EXPECT_DOUBLE_EQ(num(c1, "mem.l1_*.hits"), 1.0);
    EXPECT_DOUBLE_EQ(num(c1, "core*.zcomp_busy_cycles"), 0.0);
}

TEST(MetricsSampler, WindowedDeltasAndDerivedRates)
{
    TempPath tmp("test_metrics_window.jsonl");
    MetricsSink sink(tmp.path);

    uint64_t rd = 1000, wr = 0;
    auto provider = [&](StatGroup &g) {
        StatGroup &dram = g.addChild("mem").addChild("dram");
        dram.addCounter("bytes_read", "").set(rd);
        dram.addCounter("bytes_written", "").set(wr);
    };
    MetricsSampler s(&sink, "resnet", "zcomp", 100, 4, provider);
    s.addCounterProbe("mem.dram.bytes_read");
    s.addCounterProbe("mem.dram.bytes_written");
    // rebase() captures the warm-start baseline; the 1000 preexisting
    // bytes must never appear in any delta.
    s.rebase(0);
    s.setLayerContext("conv1", 2.5);

    rd = 5000;
    wr = 2000;
    s.sample(100);
    rd = 5000;  // idle window
    s.sample(300);
    EXPECT_EQ(s.samplesEmitted(), 2u);

    std::vector<Json> recs = readJsonl(tmp.path);
    ASSERT_EQ(recs.size(), 2u);

    const Json &r0 = recs[0];
    EXPECT_EQ(sub(r0, "schema").asString(), metricsSchemaVersion);
    EXPECT_EQ(sub(r0, "kind").asString(), "sample");
    EXPECT_EQ(sub(r0, "cell").asString(), "resnet");
    EXPECT_EQ(sub(r0, "policy").asString(), "zcomp");
    EXPECT_EQ(sub(r0, "layer").asString(), "conv1");
    EXPECT_DOUBLE_EQ(num(r0, "cycle"), 100.0);
    EXPECT_DOUBLE_EQ(num(r0, "window"), 100.0);
    EXPECT_EQ(r0.find("drain"), nullptr);
    EXPECT_DOUBLE_EQ(num(sub(r0, "counters"), "mem.dram.bytes_read"),
                     4000.0);
    const Json &d0 = sub(r0, "derived");
    EXPECT_DOUBLE_EQ(num(d0, "dramReadBytesPerCycle"), 40.0);
    EXPECT_DOUBLE_EQ(num(d0, "dramWriteBytesPerCycle"), 20.0);
    EXPECT_DOUBLE_EQ(num(d0, "layerCompressionRatio"), 2.5);

    const Json &r1 = recs[1];
    EXPECT_DOUBLE_EQ(num(r1, "cycle"), 300.0);
    EXPECT_DOUBLE_EQ(num(r1, "window"), 200.0);
    EXPECT_DOUBLE_EQ(num(sub(r1, "counters"), "mem.dram.bytes_read"),
                     0.0);
    EXPECT_DOUBLE_EQ(num(sub(r1, "derived"), "dramReadBytesPerCycle"),
                     0.0);
}

TEST(MetricsSampler, ShortRunYieldsOneDrainRecord)
{
    TempPath tmp("test_metrics_drain.jsonl");
    MetricsSink sink(tmp.path);

    uint64_t hops = 0;
    auto provider = [&](StatGroup &g) {
        g.addChild("mem").addChild("noc").addCounter("hops", "").set(
            hops);
    };
    // Interval far beyond the run length: the loop never crosses it.
    MetricsSampler s(&sink, "c", "p", 1e9, 1, provider);
    s.addCounterProbe("mem.noc.hops");
    s.rebase(0);

    hops = 17;
    s.finish(123.5);
    // finish() is a no-op once everything is drained.
    s.finish(123.5);
    EXPECT_EQ(s.samplesEmitted(), 1u);

    std::vector<Json> recs = readJsonl(tmp.path);
    ASSERT_EQ(recs.size(), 1u);
    EXPECT_TRUE(recs[0].find("drain") != nullptr);
    EXPECT_DOUBLE_EQ(num(recs[0], "cycle"), 123.5);
    EXPECT_DOUBLE_EQ(num(recs[0], "window"), 123.5);
    EXPECT_DOUBLE_EQ(num(sub(recs[0], "counters"), "mem.noc.hops"),
                     17.0);
}

TEST(MetricsSampler, NextSampleCycleAdvances)
{
    auto provider = [](StatGroup &) {};
    MetricsSampler s(nullptr, "c", "p", 100, 1, provider);
    EXPECT_DOUBLE_EQ(s.nextSampleCycle(), 100.0);

    // rebase into the middle of a window: next crossing is the next
    // interval multiple, not lastCycle + interval.
    s.rebase(250);
    EXPECT_DOUBLE_EQ(s.nextSampleCycle(), 300.0);

    // A crossing observed late (at 305) still advances to 400, never
    // re-firing inside the same interval.
    s.sample(305);
    EXPECT_DOUBLE_EQ(s.nextSampleCycle(), 400.0);

    s.finish(450);
    EXPECT_EQ(s.nextSampleCycle(),
              std::numeric_limits<double>::infinity());
}

TEST(Metrics, SamplingDoesNotPerturbSimResults)
{
    // Byte-identity invariant: the same cell simulated with and
    // without a metrics sink produces identical cycles and traffic.
    NetworkSimConfig cfg;
    cfg.policy = IoPolicy::Zcomp;

    SimSetup plain = makeSetup();
    NetworkSimResult base = plain.sim->run(cfg);

    TempPath tmp("test_metrics_perturb.jsonl");
    MetricsSink::enableGlobal(tmp.path, 20000);
    SimSetup metered = makeSetup();
    NetworkSimResult sampled = metered.sim->run(cfg);
    MetricsSink::finishGlobal();

    EXPECT_EQ(base.cycles(), sampled.cycles());
    EXPECT_EQ(base.trafficBytes(), sampled.trafficBytes());
    ASSERT_EQ(base.layers.size(), sampled.layers.size());
    for (size_t i = 0; i < base.layers.size(); i++)
        EXPECT_EQ(base.layers[i].stats.cycles,
                  sampled.layers[i].stats.cycles);

    // And the stream the metered run produced is well-formed: samples
    // for the ("mid", "zcomp") series with strictly increasing cycles.
    std::vector<Json> recs = readJsonl(tmp.path);
    ASSERT_FALSE(recs.empty());
    double last = -1;
    for (const Json &rec : recs) {
        EXPECT_EQ(sub(rec, "kind").asString(), "sample");
        EXPECT_EQ(sub(rec, "cell").asString(), "mid");
        EXPECT_EQ(sub(rec, "policy").asString(), "zcomp");
        double cycle = num(rec, "cycle");
        EXPECT_GT(cycle, last);
        last = cycle;
        EXPECT_GT(num(rec, "window"), 0.0);
    }
    // The run ends mid-window, so the last record is the drain.
    EXPECT_NE(recs.back().find("drain"), nullptr);
}

TEST(Metrics, SampleStreamIsDeterministicModuloHostMs)
{
    NetworkSimConfig cfg;
    cfg.policy = IoPolicy::Avx512Comp;

    auto run = [&](const std::string &path) {
        MetricsSink::enableGlobal(path, 50000);
        SimSetup s = makeSetup();
        s.sim->run(cfg);
        MetricsSink::finishGlobal();
        std::vector<std::string> lines;
        for (Json &rec : readJsonl(path)) {
            if (sub(rec, "kind").asString() != "sample")
                continue;
            rec["hostMs"] = 0;  // the only host-timing field
            lines.push_back(rec.dump());
        }
        return lines;
    };

    TempPath a("test_metrics_det_a.jsonl");
    TempPath b("test_metrics_det_b.jsonl");
    std::vector<std::string> la = run(a.path);
    std::vector<std::string> lb = run(b.path);
    ASSERT_FALSE(la.empty());
    ASSERT_EQ(la.size(), lb.size());
    for (size_t i = 0; i < la.size(); i++)
        EXPECT_EQ(la[i], lb[i]) << "record " << i;
}

TEST(SweepProgress, EmitsProgressRecords)
{
    TempPath tmp("test_metrics_progress.jsonl");
    MetricsSink::enableGlobal(tmp.path);
    {
        SweepProgress sp(3, /*live=*/false);
        sp.cellDone(/*cached=*/false, /*failed=*/false, /*attempts=*/1);
        sp.cellDone(/*cached=*/true, /*failed=*/false, /*attempts=*/1);
        sp.cellDone(/*cached=*/false, /*failed=*/true, /*attempts=*/3);
        EXPECT_EQ(sp.done(), 3u);
    }
    MetricsSink::finishGlobal();

    std::vector<Json> recs = readJsonl(tmp.path);
    ASSERT_EQ(recs.size(), 3u);
    for (size_t i = 0; i < recs.size(); i++) {
        const Json &rec = recs[i];
        EXPECT_EQ(sub(rec, "schema").asString(), metricsSchemaVersion);
        EXPECT_EQ(sub(rec, "kind").asString(), "progress");
        EXPECT_DOUBLE_EQ(num(rec, "done"), static_cast<double>(i + 1));
        EXPECT_DOUBLE_EQ(num(rec, "total"), 3.0);
        EXPECT_GE(num(rec, "cellsPerSec"), 0.0);
        EXPECT_GE(num(rec, "etaSec"), 0.0);
        EXPECT_GE(num(rec, "hostMs"), 0.0);
    }
    const Json &last = recs.back();
    EXPECT_DOUBLE_EQ(num(last, "cached"), 1.0);
    EXPECT_DOUBLE_EQ(num(last, "failed"), 1.0);
    EXPECT_DOUBLE_EQ(num(last, "retried"), 1.0);
    EXPECT_DOUBLE_EQ(num(last, "etaSec"), 0.0);
}
