/**
 * @file
 * Integration tests for the ReLU experiment kernels: functional
 * correctness, traffic ordering across implementations, and the
 * qualitative performance regimes of Figure 12.
 */

#include <gtest/gtest.h>

#include "sim/kernels.hh"

using namespace zcomp;

namespace {

ArchConfig
cfgSmall()
{
    ArchConfig cfg;     // full Table 1 machine
    return cfg;
}

ReluExperimentConfig
expCfg(size_t elems, double sparsity = 0.53)
{
    ReluExperimentConfig c;
    c.elems = elems;
    c.sparsity = sparsity;
    c.verify = true;
    return c;
}

} // namespace

TEST(ReluKernels, ImplNames)
{
    EXPECT_STREQ(reluImplName(ReluImpl::Avx512Vec), "avx512-vec");
    EXPECT_STREQ(reluImplName(ReluImpl::Avx512Comp), "avx512-comp");
    EXPECT_STREQ(reluImplName(ReluImpl::Zcomp), "zcomp");
}

TEST(ReluKernels, FunctionalVerificationPasses)
{
    for (int i = 0; i < numReluImpls; i++) {
        ExecContext ctx(cfgSmall());
        ReluExperimentConfig c = expCfg(16 * 1024);
        runReluExperiment(ctx, static_cast<ReluImpl>(i), c);
    }
}

TEST(ReluKernels, CompressionStatsMatchSparsity)
{
    ExecContext ctx(cfgSmall());
    ReluExperimentConfig c = expCfg(16 * 4096, 0.53);
    auto r = runReluExperiment(ctx, ReluImpl::Zcomp, c);
    EXPECT_NEAR(r.xStream.sparsity(ElemType::F32), 0.53, 0.04);
    // Y adds the ReLU-clamped negatives on top of the zeros.
    EXPECT_GT(r.yStream.sparsity(ElemType::F32),
              r.xStream.sparsity(ElemType::F32));
    EXPECT_GT(r.yStream.ratio(), 1.5);
}

TEST(ReluKernels, CoreTrafficOrdering)
{
    // Figure 12a: both compression schemes cut core<->cache traffic
    // vs the baseline, and ZCOMP cuts slightly more than avx512-comp
    // (no separate mask arrays).
    const size_t elems = 16 * 8192;     // 512 KiB: L3-resident
    uint64_t traffic[numReluImpls];
    for (int i = 0; i < numReluImpls; i++) {
        ExecContext ctx(cfgSmall());
        auto r = runReluExperiment(ctx, static_cast<ReluImpl>(i),
                                   expCfg(elems));
        traffic[i] = r.total().traffic.coreL1Bytes;
    }
    uint64_t vec = traffic[0], comp = traffic[1], zc = traffic[2];
    // Interleaved headers and separate mask arrays move the same
    // requested bytes at the core; avx512-comp's extra cost shows in
    // dynamic instructions and deeper-link traffic instead.
    EXPECT_LE(zc, comp);
    EXPECT_LT(comp, vec);
    // ~53% sparsity on all three accesses: expect roughly half.
    EXPECT_NEAR(static_cast<double>(zc) / vec, 0.52, 0.10);
}

TEST(ReluKernels, DramTrafficReducedForLargeMaps)
{
    // Figure 12b: a DRAM-resident feature map (>> 24 MiB L3) sees its
    // off-chip traffic cut by roughly the compression ratio.
    const size_t elems = 16u * 1024u * 1024u;   // 64 MiB
    uint64_t dram[numReluImpls];
    for (int i = 0; i < numReluImpls; i++) {
        ExecContext ctx(cfgSmall());
        ReluExperimentConfig c = expCfg(elems);
        c.verify = false;
        auto r = runReluExperiment(ctx, static_cast<ReluImpl>(i), c);
        dram[i] = r.total().traffic.l3DramBytes;
    }
    EXPECT_LT(dram[2], 0.70 * dram[0]);     // zcomp strictly better
    EXPECT_LT(dram[1], 0.80 * dram[0]);
    // zcomp and avx512-comp move nearly the same DRAM volume (the
    // interleaved headers vs separate mask arrays trade within a few
    // percent at line granularity).
    EXPECT_LE(dram[2], 1.10 * dram[1]);
}

TEST(ReluKernels, SmallMapsAreNotHurtMuchByZcomp)
{
    // Figure 12c outliers: for L1-resident inputs ZCOMP has little
    // headroom but must not collapse (paper: worst case -2%/-4%).
    const size_t elems = 16 * 512;      // 32 KiB total
    double cycles[numReluImpls];
    for (int i = 0; i < numReluImpls; i++) {
        ExecContext ctx(cfgSmall());
        auto r = runReluExperiment(ctx, static_cast<ReluImpl>(i),
                                   expCfg(elems));
        cycles[i] = r.total().cycles;
    }
    EXPECT_LT(cycles[2], 1.35 * cycles[0]);
}

TEST(ReluKernels, LargeMapsZcompWinsBig)
{
    // DRAM-bound regime: runtime follows traffic, so ZCOMP should be
    // markedly faster than the baseline and beat avx512-comp.
    const size_t elems = 16u * 1024u * 1024u;   // 64 MiB
    double cycles[numReluImpls];
    for (int i = 0; i < numReluImpls; i++) {
        ExecContext ctx(cfgSmall());
        ReluExperimentConfig c = expCfg(elems);
        c.verify = false;
        auto r = runReluExperiment(ctx, static_cast<ReluImpl>(i), c);
        cycles[i] = r.total().cycles;
    }
    EXPECT_LT(cycles[2], 0.8 * cycles[0]);
    EXPECT_LE(cycles[2], cycles[1] * 1.25);
}

TEST(ReluKernels, Avx512CompHasInstructionOverheadOnSmallMaps)
{
    // Figure 12c: avx512-comp degrades cache-resident shapes because
    // of its extra instructions.
    const size_t elems = 16 * 512;
    ExecContext a(cfgSmall()), b(cfgSmall());
    auto vec = runReluExperiment(a, ReluImpl::Avx512Vec, expCfg(elems));
    auto comp = runReluExperiment(b, ReluImpl::Avx512Comp,
                                  expCfg(elems));
    EXPECT_GT(comp.total().cycles, vec.total().cycles);
}

TEST(ReluKernels, StaticBodiesMatchSection44)
{
    // avx512-comp needs 5-6 extra static instructions and 4-5 extra
    // registers in the loop body compared to ZCOMP.
    KernelBody z = reluStoreBody(ReluImpl::Zcomp);
    KernelBody a = reluStoreBody(ReluImpl::Avx512Comp);
    int extra_instrs = a.totalInstrs() - z.totalInstrs();
    int extra_regs = a.totalRegs() - z.totalRegs();
    EXPECT_GE(extra_instrs, 5);
    EXPECT_LE(extra_instrs, 6);
    EXPECT_GE(extra_regs, 4);
    EXPECT_LE(extra_regs, 5);

    KernelBody zr = reluRetrieveBody(ReluImpl::Zcomp);
    KernelBody ar = reluRetrieveBody(ReluImpl::Avx512Comp);
    EXPECT_GE(ar.totalInstrs() - zr.totalInstrs(), 3);
    EXPECT_GE(ar.totalRegs() - zr.totalRegs(), 3);
}

TEST(ReluKernels, SubBlockUnrollingHelpsZcomp)
{
    // Section 4.3: sub-block unrolling breaks the pointer chain; with
    // a single stream per thread the chained latency shows.
    const size_t elems = 16 * 16384;    // 1 MiB: L2/L3 resident
    ReluExperimentConfig c1 = expCfg(elems);
    c1.subBlocks = 1;
    c1.verify = false;
    ReluExperimentConfig c4 = c1;
    c4.subBlocks = 4;

    ExecContext a(cfgSmall()), b(cfgSmall());
    double one = runReluExperiment(a, ReluImpl::Zcomp, c1)
                     .total().cycles;
    double four = runReluExperiment(b, ReluImpl::Zcomp, c4)
                      .total().cycles;
    EXPECT_LT(four, one);
}

TEST(ReluKernels, SeparateHeaderVariantWorks)
{
    // Section 3.2: the separate-header variant produces the same
    // payload statistics with decoupled metadata, costs slightly more
    // traffic (an extra stream), and never risks memory violations.
    const size_t elems = 16 * 16384;
    ReluExperimentConfig ci = expCfg(elems);
    ci.verify = false;
    ReluExperimentConfig cs = ci;
    cs.separateHeader = true;

    ExecContext a(cfgSmall()), b(cfgSmall());
    auto inter = runReluExperiment(a, ReluImpl::Zcomp, ci);
    auto sep = runReluExperiment(b, ReluImpl::Zcomp, cs);
    EXPECT_EQ(inter.yStream.nnz, sep.yStream.nnz);
    // Same compressed payload either way; headers live elsewhere.
    EXPECT_EQ(inter.yStream.payloadBytes, sep.yStream.payloadBytes);
    // The decoupled metadata stream costs extra L1 accesses per
    // vector, which shows on cache-resident maps (and fades once
    // memory-bound); it must stay within 2x.
    EXPECT_LT(sep.total().cycles, 2.0 * inter.total().cycles);
    EXPECT_GT(sep.total().cycles, inter.total().cycles);
}

TEST(ReluKernels, SeparateHeaderHandlesIncompressibleData)
{
    // Fully dense data would overflow interleaved windows without
    // allocation slack; the separate-header variant is immune by
    // construction (Section 4.1).
    ReluExperimentConfig c = expCfg(16 * 1024, /*sparsity=*/0.0);
    c.negFraction = 0.0;
    c.separateHeader = true;
    c.verify = false;
    ExecContext ctx(cfgSmall());
    auto r = runReluExperiment(ctx, ReluImpl::Zcomp, c);
    EXPECT_DOUBLE_EQ(r.yStream.sparsity(ElemType::F32), 0.0);
    EXPECT_GT(r.total().cycles, 0.0);
}

TEST(ReluKernels, RepeatsScaleMeasuredWork)
{
    ReluExperimentConfig c1 = expCfg(16 * 2048);
    c1.verify = false;
    ReluExperimentConfig c4 = c1;
    c4.repeats = 4;
    ExecContext a(cfgSmall()), b(cfgSmall());
    auto r1 = runReluExperiment(a, ReluImpl::Avx512Vec, c1);
    auto r4 = runReluExperiment(b, ReluImpl::Avx512Vec, c4);
    EXPECT_NEAR(static_cast<double>(
                    r4.total().traffic.coreL1Bytes),
                4.0 * static_cast<double>(
                          r1.total().traffic.coreL1Bytes),
                0.01 * static_cast<double>(
                           r4.total().traffic.coreL1Bytes));
}
