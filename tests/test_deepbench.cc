/** @file Unit tests for the DeepBench shape table. */

#include <gtest/gtest.h>

#include "workload/deepbench.hh"

using namespace zcomp;

TEST(DeepBench, Exactly44ShapesElevenPerSuite)
{
    const auto &all = deepBenchShapes();
    EXPECT_EQ(all.size(), 44u);
    EXPECT_EQ(shapesOf(BenchSuite::ConvTrain).size(), 11u);
    EXPECT_EQ(shapesOf(BenchSuite::ConvInfer).size(), 11u);
    EXPECT_EQ(shapesOf(BenchSuite::FcTrain).size(), 11u);
    EXPECT_EQ(shapesOf(BenchSuite::FcInfer).size(), 11u);
}

TEST(DeepBench, SortedBySizeWithinSuite)
{
    for (int s = 0; s < numBenchSuites; s++) {
        auto shapes = shapesOf(static_cast<BenchSuite>(s));
        for (size_t i = 1; i < shapes.size(); i++)
            EXPECT_LE(shapes[i - 1].elems, shapes[i].elems);
    }
}

TEST(DeepBench, AllVectorAligned)
{
    for (const auto &s : deepBenchShapes())
        EXPECT_EQ(s.elems % 16, 0u) << s.name;
}

TEST(DeepBench, SizeRangeCoversRegimes)
{
    const auto &all = deepBenchShapes();
    size_t min_e = all[0].elems, max_e = all[0].elems;
    for (const auto &s : all) {
        min_e = std::min(min_e, s.elems);
        max_e = std::max(max_e, s.elems);
    }
    EXPECT_LE(min_e * 4, 32u * 1024u);              // L1-resident shapes
    EXPECT_GE(max_e * 4, 100u * 1024u * 1024u);     // DRAM-resident
    // Shapes straddle the 24 MiB L3 for the Figure 12b cliff.
    bool below = false, above = false;
    for (const auto &s : shapesOf(BenchSuite::ConvTrain)) {
        if (s.bytes() < 24u * 1024u * 1024u)
            below = true;
        if (s.bytes() > 24u * 1024u * 1024u)
            above = true;
    }
    EXPECT_TRUE(below && above);
}

TEST(DeepBench, SparsitiesMatchPaperRange)
{
    double sum = 0;
    for (const auto &s : deepBenchShapes()) {
        EXPECT_GE(s.sparsity, 0.35) << s.name;
        EXPECT_LE(s.sparsity, 0.70) << s.name;
        sum += s.sparsity;
    }
    EXPECT_NEAR(sum / 44.0, 0.53, 0.02);    // paper: average 53%
}

TEST(DeepBench, InferShapesAreSmall)
{
    // Inference uses small batches; conv-infer feature maps should
    // (almost) always fit in the on-chip caches (Section 5.2).
    for (const auto &s : shapesOf(BenchSuite::ConvInfer))
        EXPECT_LE(s.bytes(), 24u * 1024u * 1024u) << s.name;
    for (const auto &s : shapesOf(BenchSuite::FcInfer))
        EXPECT_LE(s.bytes(), 1u * 1024u * 1024u) << s.name;
}

TEST(DeepBench, SuiteNames)
{
    EXPECT_STREQ(benchSuiteName(BenchSuite::ConvTrain), "conv-train");
    EXPECT_STREQ(benchSuiteName(BenchSuite::FcInfer), "fc-infer");
}
