/** @file Integration-level tests for the full memory hierarchy. */

#include <gtest/gtest.h>

#include "mem/hierarchy.hh"

using namespace zcomp;

namespace {

/** A small configuration so capacity effects are easy to trigger. */
ArchConfig
smallCfg()
{
    ArchConfig cfg;
    cfg.numCores = 4;
    cfg.l1.size = 4 * KiB;
    cfg.l2.size = 16 * KiB;
    cfg.l3.size = 64 * KiB;
    cfg.l3.assoc = 8;   // 64 KiB / 64 B = 1024 lines, 8-way
    cfg.prefetch.l1IpStride = false;
    cfg.prefetch.l2Stream = false;
    return cfg;
}

} // namespace

TEST(Hierarchy, ColdMissGoesToDramThenHitsInL1)
{
    MemoryHierarchy mem(smallCfg());
    AccessResult r1 = mem.access(0, 0x100000, 64, false, 0.0, 1);
    EXPECT_EQ(r1.level, 4);
    EXPECT_GT(r1.latency, 100.0);

    AccessResult r2 = mem.access(0, 0x100000, 64, false, 10000.0, 1);
    EXPECT_EQ(r2.level, 1);
    EXPECT_NEAR(r2.latency, 4.0, 1.0);
}

TEST(Hierarchy, TrafficCountersPerLink)
{
    MemoryHierarchy mem(smallCfg());
    mem.access(0, 0x100000, 64, false, 0.0, 1);
    HierSnapshot s = mem.snapshot();
    EXPECT_EQ(s.coreL1Bytes, 64u);
    EXPECT_EQ(s.l1L2Bytes, 64u);
    EXPECT_EQ(s.l2L3Bytes, 64u);
    EXPECT_EQ(s.l3DramBytes, 64u);
}

TEST(Hierarchy, SmallAccessCountsRequestedBytesOnly)
{
    MemoryHierarchy mem(smallCfg());
    mem.access(0, 0x100000, 10, false, 0.0, 1);
    HierSnapshot s = mem.snapshot();
    // Core<->L1 moves the 10 requested bytes; fills move whole lines.
    EXPECT_EQ(s.coreL1Bytes, 10u);
    EXPECT_EQ(s.l1L2Bytes, 64u);
}

TEST(Hierarchy, LineCrossingAccessTouchesTwoLines)
{
    MemoryHierarchy mem(smallCfg());
    mem.access(0, 0x100000 + 60, 8, false, 0.0, 1);
    HierSnapshot s = mem.snapshot();
    EXPECT_EQ(s.coreL1Bytes, 8u);
    EXPECT_EQ(s.l1L2Bytes, 128u);   // two line fills
}

TEST(Hierarchy, DirtyEvictionWritesBack)
{
    ArchConfig cfg = smallCfg();
    MemoryHierarchy mem(cfg);
    // Write one line, then stream enough lines through to evict it
    // from every level.
    mem.access(0, 0x0, 64, true, 0.0, 1);
    uint64_t span = cfg.l3.size * 4;
    for (Addr a = 0x100000; a < 0x100000 + span; a += 64)
        mem.access(0, a, 64, false, 1e6, 2);
    HierSnapshot s = mem.snapshot();
    // The dirty line must eventually have been written back to DRAM:
    // DRAM write bytes appear on the l3<->dram link beyond the fills.
    EXPECT_GT(mem.dram().bytesWritten, 0u);
    EXPECT_GT(s.l3DramBytes, span);
}

TEST(Hierarchy, L3IsSharedAcrossCores)
{
    MemoryHierarchy mem(smallCfg());
    mem.access(0, 0x100000, 64, false, 0.0, 1);
    // Another core finds the line in L3 (not DRAM).
    AccessResult r = mem.access(1, 0x100000, 64, false, 1000.0, 1);
    EXPECT_EQ(r.level, 3);
}

TEST(Hierarchy, PrivateCachesAreNotShared)
{
    MemoryHierarchy mem(smallCfg());
    mem.access(0, 0x100000, 64, false, 0.0, 1);
    mem.access(0, 0x100000, 64, false, 100.0, 1);   // L1 hit for core 0
    AccessResult r = mem.access(1, 0x100000, 64, false, 200.0, 1);
    EXPECT_GT(r.level, 2);  // core 1 misses its own L1/L2
}

TEST(Hierarchy, WorkingSetRegimes)
{
    // Working set < L1: after warmup everything hits L1 and no L1<->L2
    // traffic accrues.
    ArchConfig cfg = smallCfg();
    MemoryHierarchy mem(cfg);
    auto stream = [&](uint64_t bytes, double t0) {
        for (Addr a = 0; a < bytes; a += 64)
            mem.access(0, 0x400000 + a, 64, false, t0 + a, 3);
    };
    stream(2 * KiB, 0);         // warmup, fits in 4 KiB L1
    mem.resetStats();
    stream(2 * KiB, 1e6);
    HierSnapshot s = mem.snapshot();
    EXPECT_EQ(s.l1Misses, 0u);
    EXPECT_EQ(s.l1L2Bytes, 0u);

    // Working set > L3: every pass goes to DRAM.
    mem.resetStats();
    uint64_t big = cfg.l3.size * 4;
    for (int pass = 0; pass < 2; pass++) {
        for (Addr a = 0; a < big; a += 64)
            mem.access(0, 0x800000 + a, 64, false, 2e6 + a, 4);
    }
    s = mem.snapshot();
    EXPECT_GT(s.l3DramBytes, big);  // both passes stream from DRAM
}

TEST(Hierarchy, InclusiveL3BackInvalidatesPrivateCaches)
{
    ArchConfig cfg = smallCfg();
    MemoryHierarchy mem(cfg);
    // Core 0 caches a line in L1/L2.
    mem.access(0, 0x0, 64, false, 0.0, 1);
    EXPECT_EQ(mem.access(0, 0x0, 64, false, 1.0, 1).level, 1);
    // Core 1 streams through far more than L3 capacity, evicting the
    // line from L3 and (by inclusion) from core 0's private caches.
    for (Addr a = 0; a < cfg.l3.size * 8; a += 64)
        mem.access(1, 0x1000000 + a, 64, false, 100.0 + a, 2);
    AccessResult r = mem.access(0, 0x0, 64, false, 1e9, 1);
    EXPECT_GT(r.level, 2);
}

TEST(Hierarchy, StreamPrefetcherHidesStreamingLatency)
{
    // Production-size caches: with a tiny L2 the SRRIP aging can evict
    // in-flight prefetches before their demand use, which is not the
    // regime the Section 3.3 accuracy/coverage claim is about.
    ArchConfig cfg;
    cfg.prefetch.l1IpStride = false;
    cfg.prefetch.l2Stream = true;
    MemoryHierarchy mem(cfg);
    // Stream far beyond L3 capacity with generous inter-arrival time so
    // prefetches have time to land.
    double t = 0;
    uint64_t dram_level_hits = 0, total = 0;
    for (Addr a = 0; a < 2 * MiB; a += 64) {
        AccessResult r = mem.access(0, 0x2000000 + a, 64, false, t, 5);
        t += 50.0;
        total++;
        if (r.level == 4)
            dram_level_hits++;
    }
    HierSnapshot s = mem.snapshot();
    // Nearly all demand accesses are served above DRAM.
    EXPECT_LT(static_cast<double>(dram_level_hits),
              0.05 * static_cast<double>(total));
    // Prefetcher quality in the range Section 3.3 reports.
    EXPECT_GT(s.prefetchAccuracy(), 0.95);
    EXPECT_GT(s.prefetchCoverage(), 0.90);
}

TEST(Hierarchy, PrefetchConsumesDramBandwidth)
{
    ArchConfig cfg = smallCfg();
    cfg.prefetch.l2Stream = true;
    MemoryHierarchy mem(cfg);
    double t = 0;
    for (Addr a = 0; a < 1 * MiB; a += 64) {
        mem.access(0, 0x2000000 + a, 64, false, t, 5);
        t += 50.0;
    }
    // All streamed lines came from DRAM exactly once (no duplicate
    // fetches from prefetch + demand).
    EXPECT_NEAR(static_cast<double>(mem.dram().bytesRead),
                static_cast<double>(1 * MiB), 64.0 * 64.0);
}

TEST(Hierarchy, ResetStatsKeepsContents)
{
    MemoryHierarchy mem(smallCfg());
    mem.access(0, 0x100000, 64, false, 0.0, 1);
    mem.resetStats();
    HierSnapshot s = mem.snapshot();
    EXPECT_EQ(s.coreL1Bytes, 0u);
    // Line still cached.
    EXPECT_EQ(mem.access(0, 0x100000, 64, false, 1.0, 1).level, 1);
}

TEST(Hierarchy, ResetAllDropsContents)
{
    MemoryHierarchy mem(smallCfg());
    mem.access(0, 0x100000, 64, false, 0.0, 1);
    mem.resetAll();
    EXPECT_EQ(mem.access(0, 0x100000, 64, false, 1.0, 1).level, 4);
}

TEST(Hierarchy, PrefetchThrottledUnderDramSaturation)
{
    // Issue a demand stream with zero inter-arrival time: the
    // prefetcher must not run the DRAM queue away unboundedly; the
    // worst single-access latency stays within a sane multiple of the
    // queue cap.
    auto worst_latency = [](bool prefetch) {
        ArchConfig cfg;
        cfg.prefetch.l2Stream = prefetch;
        cfg.prefetch.l1IpStride = prefetch;
        MemoryHierarchy mem(cfg);
        double worst = 0;
        for (Addr a = 0; a < 4 * MiB; a += 64) {
            AccessResult r =
                mem.access(0, 0x30000000 + a, 64, false, 0.0, 6);
            worst = std::max(worst, r.latency);
        }
        return worst;
    };
    // The demand stream alone legitimately queues ~(lines/channels) *
    // cycles-per-line; prefetching must not amplify that materially.
    double off = worst_latency(false);
    double on = worst_latency(true);
    EXPECT_LT(on, 1.3 * off);
}

TEST(Hierarchy, InvariantsHoldUnderMixedTraffic)
{
    // Drive reads, writes, evictions, writebacks, prefetches and
    // cross-core sharing, then let the conservation checks (level-N
    // misses + writebacks == level-N+1 accesses, link bytes vs DRAM
    // bytes, ...) fire. checkInvariants() panics on violation, so
    // reaching the end is the assertion; a couple of spot checks guard
    // against the whole thing being vacuous.
    ArchConfig cfg = smallCfg();
    cfg.prefetch.l2Stream = true;
    MemoryHierarchy mem(cfg);
    double t = 0;
    for (int pass = 0; pass < 3; pass++) {
        for (Addr a = 0; a < cfg.l3.size * 2; a += 64) {
            int core = static_cast<int>((a / 64) % 4);
            bool write = (a / 64) % 3 == 0;
            mem.access(core, 0x500000 + a, 64, write, t, 2);
            t += 10.0;
        }
    }
    mem.checkInvariants();
    HierSnapshot s = mem.snapshot();    // snapshot() re-checks
    EXPECT_GT(s.l1Misses, 0u);
    EXPECT_GT(mem.dram().bytesWritten, 0u);

    // The invariants must also hold across a stats reset (counters
    // restart but cache contents persist).
    mem.resetStats();
    for (Addr a = 0; a < cfg.l3.size; a += 64)
        mem.access(0, 0x500000 + a, 64, false, t + a, 2);
    mem.checkInvariants();
}

TEST(Hierarchy, DumpStatsStandalone)
{
    ArchConfig cfg = smallCfg();
    MemoryHierarchy mem(cfg);
    mem.access(0, 0x1000, 64, false, 0.0, 1);
    StatGroup g("mem");
    mem.dumpStats(g);
    ASSERT_NE(g.findCounter("links.core_l1_bytes"), nullptr);
    EXPECT_EQ(g.findCounter("links.core_l1_bytes")->value(), 64u);
    ASSERT_NE(g.findCounter("l1_0.misses"), nullptr);
    EXPECT_EQ(g.findCounter("l1_0.misses")->value(), 1u);
}
