/** @file Unit tests for RunReport and the study-row report schema. */

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "bench/bench_common.hh"
#include "common/report.hh"
#include "common/stats.hh"
#include "sim/exec_context.hh"

using namespace zcomp;
using namespace zcomp::bench;

namespace {

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

struct TempPath
{
    std::string path;
    explicit TempPath(const std::string &p) : path(p) {}
    ~TempPath() { std::remove(path.c_str()); }
};

/** A StudyRow with recognizable synthetic numbers in every field. */
StudyRow
fakeRow()
{
    StudyRow row;
    row.model = "TestNet";
    row.training = true;
    row.prepMillis = 12.5;
    row.results.resize(studyPolicies().size());
    row.simMillis.resize(studyPolicies().size());
    for (size_t pol = 0; pol < studyPolicies().size(); pol++) {
        row.simMillis[pol] = 100.0 + pol;
        RunStats &t = row.results[pol].total;
        t.cycles = 1000.0 * (pol + 1);
        t.breakdown.compute = 600.0;
        t.breakdown.memory = 300.0;
        t.breakdown.sync = 100.0;
        t.traffic.coreL1Bytes = 1111;
        t.traffic.l1L2Bytes = 2222;
        t.traffic.l2L3Bytes = 3333;
        t.traffic.l3DramBytes = 4444;
        t.traffic.nocHops = 55;
        LayerPassStats lp;
        lp.name = "conv1";
        lp.backward = pol == 1;
        lp.stats.cycles = 10.0;
        row.results[pol].layers.push_back(lp);
    }
    StatGroup sg("system");
    sg.addCounter("x", "").inc(9);
    row.stats = sg.dumpJson();
    return row;
}

} // namespace

TEST(MachineJson, HasEverySection)
{
    Json m = machineToJson(ArchConfig{});
    for (const char *key :
         {"summary", "numCores", "core", "l1", "l2", "l3", "prefetch",
          "dram", "noc", "zcomp"}) {
        EXPECT_NE(m.find(key), nullptr) << "missing " << key;
    }
    EXPECT_NE(m.find("core")->find("freqGHz"), nullptr);
    EXPECT_NE(m.find("l2")->find("sizeBytes"), nullptr);
    EXPECT_NE(m.find("zcomp")->find("logicThroughput"), nullptr);
}

TEST(StudyRowJson, ContainsEveryField)
{
    StudyRow row = fakeRow();
    Json j = studyRowToJson(row);

    EXPECT_EQ(j.find("model")->asString(), "TestNet");
    EXPECT_EQ(j.find("mode")->asString(), "training");
    EXPECT_DOUBLE_EQ(j.find("prepMillis")->asDouble(), 12.5);

    const Json *pols = j.find("policies");
    ASSERT_NE(pols, nullptr);
    ASSERT_EQ(pols->size(), static_cast<size_t>(numIoPolicies));
    for (int pol = 0; pol < numIoPolicies; pol++) {
        const char *pname = ioPolicyName(static_cast<IoPolicy>(pol));
        const Json *p = pols->find(pname);
        ASSERT_NE(p, nullptr) << "missing policy " << pname;
        EXPECT_DOUBLE_EQ(p->find("simMillis")->asDouble(),
                         100.0 + pol);

        const Json *total = p->find("total");
        ASSERT_NE(total, nullptr);
        EXPECT_DOUBLE_EQ(total->find("cycles")->asDouble(),
                         1000.0 * (pol + 1));
        const Json *bd = total->find("breakdown");
        ASSERT_NE(bd, nullptr);
        EXPECT_DOUBLE_EQ(bd->find("compute")->asDouble(), 600.0);
        const Json *tr = total->find("traffic");
        ASSERT_NE(tr, nullptr);
        EXPECT_EQ(tr->find("coreL1Bytes")->asUint(), 1111u);
        EXPECT_EQ(tr->find("l3DramBytes")->asUint(), 4444u);
        EXPECT_EQ(tr->find("nocHops")->asUint(), 55u);
        // Derived aggregates come along too.
        EXPECT_EQ(tr->find("totalBytes")->asUint(),
                  1111u + 2222u + 3333u + 4444u);

        const Json *layers = p->find("layers");
        ASSERT_NE(layers, nullptr);
        ASSERT_EQ(layers->size(), 1u);
        const Json &l = layers->at(0);
        EXPECT_EQ(l.find("name")->asString(), "conv1");
        EXPECT_EQ(l.find("backward")->asBool(), pol == 1);
        EXPECT_DOUBLE_EQ(
            l.find("stats")->find("cycles")->asDouble(), 10.0);
    }

    const Json *stats = j.find("stats");
    ASSERT_NE(stats, nullptr);
    EXPECT_EQ(stats->find("counters")->find("x")->asUint(), 9u);
}

TEST(StudyRowJson, OmitsStatsWhenNotCaptured)
{
    StudyRow row = fakeRow();
    row.stats = Json();
    Json j = studyRowToJson(row);
    EXPECT_EQ(j.find("stats"), nullptr);
}

TEST(RunReport, FileFollowsSchema)
{
    TempPath tmp("test_report_out.json");
    {
        RunReport rep(tmp.path, "unit test run", {"prog", "--flag"});
        rep.setMachine(ArchConfig{});
        rep.addRow(studyRowToJson(fakeRow()));
        rep.write();
    }

    std::string err;
    Json doc = Json::parse(slurp(tmp.path), &err);
    ASSERT_EQ(err, "");
    EXPECT_EQ(doc.find("schema")->asString(), "zcomp-run-report-v1");
    EXPECT_EQ(doc.find("title")->asString(), "unit test run");
    ASSERT_EQ(doc.find("argv")->size(), 2u);
    EXPECT_EQ(doc.find("argv")->at(1).asString(), "--flag");
    EXPECT_NE(doc.find("machine")->find("summary"), nullptr);
    const Json *host = doc.find("host");
    ASSERT_NE(host, nullptr);
    EXPECT_GE(host->find("wallMillis")->asDouble(), 0.0);
    EXPECT_GE(host->find("jobs")->asInt(), 1);
    ASSERT_EQ(doc.find("rows")->size(), 1u);
    EXPECT_EQ(doc.find("rows")->at(0).find("model")->asString(),
              "TestNet");
}

TEST(RunReport, GlobalInstallAndFinish)
{
    EXPECT_EQ(RunReport::global(), nullptr);
    TempPath tmp("test_report_global.json");
    RunReport::enableGlobal(tmp.path, "global test", {"prog"});
    ASSERT_NE(RunReport::global(), nullptr);
    RunReport::global()->addRow(studyRowToJson(fakeRow()));
    RunReport::finishGlobal();
    EXPECT_EQ(RunReport::global(), nullptr);

    std::string err;
    Json doc = Json::parse(slurp(tmp.path), &err);
    ASSERT_EQ(err, "");
    EXPECT_EQ(doc.find("rows")->size(), 1u);
}

/**
 * The numbers ExecContext::run() returns (and hence the per-phase
 * numbers in a report) must equal the deltas of the stats-tree
 * counters around the phase - the two views come from the same
 * underlying counters and must never drift apart.
 */
TEST(RunReport, ExecRunDeltaMatchesStatsTree)
{
    ArchConfig cfg;
    cfg.numCores = 2;
    ExecContext ctx(cfg);

    auto counter = [&](const char *path) {
        StatGroup sg("system");
        ctx.sys().dumpStats(sg);
        const Counter *c = sg.findCounter(path);
        EXPECT_NE(c, nullptr) << path;
        return c ? c->value() : 0;
    };

    uint64_t l1_before = counter("mem.links.core_l1_bytes");
    uint64_t dram_before = counter("mem.links.l3_dram_bytes");
    uint64_t hops_before = counter("mem.noc.hops");

    TracePhase phase("loads", 2);
    for (int i = 0; i < 64; i++) {
        phase.perCore[0].push_back(TraceOp::load(
            0x100000 + static_cast<Addr>(i) * 64, 64, 1, 1));
    }
    RunStats r = ctx.run(phase);
    Json j = runStatsToJson(r);

    EXPECT_EQ(j.find("traffic")->find("coreL1Bytes")->asUint(),
              counter("mem.links.core_l1_bytes") - l1_before);
    EXPECT_EQ(j.find("traffic")->find("l3DramBytes")->asUint(),
              counter("mem.links.l3_dram_bytes") - dram_before);
    EXPECT_EQ(j.find("traffic")->find("nocHops")->asUint(),
              counter("mem.noc.hops") - hops_before);
    EXPECT_DOUBLE_EQ(j.find("cycles")->asDouble(), r.cycles);
}
