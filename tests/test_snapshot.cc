/** @file Unit tests for the feature-map snapshot generator. */

#include <gtest/gtest.h>

#include "workload/snapshot.hh"

using namespace zcomp;

TEST(Snapshot, HitsTargetSparsity)
{
    for (double s : {0.35, 0.49, 0.53, 0.62, 0.70}) {
        SnapshotParams p;
        p.sparsity = s;
        auto v = makeActivations(1 << 18, p, 42);
        EXPECT_NEAR(measuredSparsity(v.data(), v.size()), s, 0.03)
            << "target " << s;
    }
}

TEST(Snapshot, Deterministic)
{
    SnapshotParams p;
    auto a = makeActivations(4096, p, 7);
    auto b = makeActivations(4096, p, 7);
    EXPECT_EQ(a, b);
    auto c = makeActivations(4096, p, 8);
    EXPECT_NE(a, c);
}

TEST(Snapshot, NegativeFraction)
{
    SnapshotParams p;
    p.sparsity = 0.5;
    p.negFraction = 0.10;
    auto v = makeActivations(1 << 18, p, 3);
    size_t neg = 0, nonzero = 0;
    for (float x : v) {
        if (x != 0.0f) {
            nonzero++;
            if (x < 0)
                neg++;
        }
    }
    EXPECT_NEAR(static_cast<double>(neg) / nonzero, 0.10, 0.02);
}

TEST(Snapshot, ZerosAreClustered)
{
    SnapshotParams p;
    p.sparsity = 0.5;
    p.meanZeroRun = 6.0;
    auto v = makeActivations(1 << 18, p, 9);
    // Count zero runs; mean run length should approach meanZeroRun,
    // far above the ~1.0 of unclustered Bernoulli zeros.
    size_t runs = 0, zeros = 0;
    bool in_run = false;
    for (float x : v) {
        if (x == 0.0f) {
            zeros++;
            if (!in_run) {
                runs++;
                in_run = true;
            }
        } else {
            in_run = false;
        }
    }
    double mean_run = static_cast<double>(zeros) / runs;
    EXPECT_GT(mean_run, 3.0);
    EXPECT_LT(mean_run, 12.0);
}

TEST(Snapshot, ExtremeSparsities)
{
    SnapshotParams p;
    p.sparsity = 0.0;
    auto dense = makeActivations(4096, p, 1);
    EXPECT_DOUBLE_EQ(measuredSparsity(dense.data(), dense.size()), 0.0);
    p.sparsity = 1.0;
    auto empty = makeActivations(4096, p, 1);
    EXPECT_DOUBLE_EQ(measuredSparsity(empty.data(), empty.size()), 1.0);
}

TEST(Snapshot, NonZeroMagnitudesArePositiveScale)
{
    SnapshotParams p;
    p.sparsity = 0.3;
    p.scale = 2.0;
    auto v = makeActivations(1 << 14, p, 5);
    for (float x : v) {
        if (x != 0.0f) {
            EXPECT_GT(std::abs(x), 0.0f);
        }
    }
}
