/** @file Unit tests for the ZCOMP assembler and disassembler. */

#include <gtest/gtest.h>

#include "isa/assembler.hh"

using namespace zcomp;

TEST(Assembler, InterleavedStore)
{
    auto i = assemble("zcomps.i.ps [r2], zmm1, ltez");
    ASSERT_TRUE(i.has_value());
    EXPECT_TRUE(i->isStore);
    EXPECT_FALSE(i->sepHeader);
    EXPECT_EQ(i->etype, ElemType::F32);
    EXPECT_EQ(i->ccf, Ccf::LTEZ);
    EXPECT_EQ(i->vreg, 1);
    EXPECT_EQ(i->dataPtrReg, 2);
}

TEST(Assembler, SeparateStore)
{
    auto i = assemble("zcomps.s.ps [r2], zmm1, [r3], eqz");
    ASSERT_TRUE(i.has_value());
    EXPECT_TRUE(i->sepHeader);
    EXPECT_EQ(i->hdrPtrReg, 3);
    EXPECT_EQ(i->ccf, Ccf::EQZ);
}

TEST(Assembler, InterleavedLoad)
{
    auto i = assemble("zcompl.i.ps zmm5, [r10]");
    ASSERT_TRUE(i.has_value());
    EXPECT_FALSE(i->isStore);
    EXPECT_EQ(i->vreg, 5);
    EXPECT_EQ(i->dataPtrReg, 10);
}

TEST(Assembler, SeparateLoad)
{
    auto i = assemble("zcompl.s.pd zmm31, [r1], [r2]");
    ASSERT_TRUE(i.has_value());
    EXPECT_TRUE(i->sepHeader);
    EXPECT_EQ(i->etype, ElemType::F64);
    EXPECT_EQ(i->vreg, 31);
}

TEST(Assembler, AllTypeSuffixes)
{
    EXPECT_EQ(assemble("zcompl.i.ps zmm0, [r0]")->etype, ElemType::F32);
    EXPECT_EQ(assemble("zcompl.i.ph zmm0, [r0]")->etype, ElemType::F16);
    EXPECT_EQ(assemble("zcompl.i.b zmm0, [r0]")->etype, ElemType::I8);
    EXPECT_EQ(assemble("zcompl.i.d zmm0, [r0]")->etype, ElemType::I32);
    EXPECT_EQ(assemble("zcompl.i.pd zmm0, [r0]")->etype, ElemType::F64);
}

TEST(Assembler, IgnoresComments)
{
    auto i = assemble("zcompl.i.ps zmm1, [r2] ; expand next vector");
    ASSERT_TRUE(i.has_value());
    EXPECT_EQ(i->vreg, 1);
}

TEST(Assembler, RejectsMalformedInput)
{
    EXPECT_FALSE(assemble("").has_value());
    EXPECT_FALSE(assemble("nop").has_value());
    EXPECT_FALSE(assemble("zcomps.i.ps zmm1, [r2], ltez").has_value());
    EXPECT_FALSE(assemble("zcomps.i.ps [r2], zmm1").has_value());
    EXPECT_FALSE(assemble("zcomps.i.ps [r2], zmm1, nope").has_value());
    EXPECT_FALSE(assemble("zcomps.x.ps [r2], zmm1, eqz").has_value());
    EXPECT_FALSE(assemble("zcomps.i.qq [r2], zmm1, eqz").has_value());
    EXPECT_FALSE(assemble("zcomps.i.ps [r32], zmm1, eqz").has_value());
    EXPECT_FALSE(assemble("zcomps.i.ps [r2], zmm32, eqz").has_value());
    EXPECT_FALSE(assemble("zcompl.i.ps zmm1, [r2], [r3]").has_value());
}

TEST(Assembler, DisassembleAssembleRoundTrip)
{
    const char *cases[] = {
        "zcomps.i.ps [r2], zmm1, ltez",
        "zcomps.s.b [r4], zmm9, [r5], eqz",
        "zcompl.i.ph zmm0, [r31]",
        "zcompl.s.pd zmm17, [r8], [r9]",
    };
    for (const char *line : cases) {
        auto i = assemble(line);
        ASSERT_TRUE(i.has_value()) << line;
        EXPECT_EQ(disassemble(*i), line);
        // And through the binary encoding as well.
        auto w = encode(*i);
        ASSERT_TRUE(w.has_value());
        auto back = decode(*w);
        ASSERT_TRUE(back.has_value());
        EXPECT_EQ(disassemble(*back), line);
    }
}
