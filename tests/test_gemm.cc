#include "dnn/gemm.hh"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "common/rng.hh"
#include "common/thread_pool.hh"

using namespace zcomp;

namespace {

// Reference implementations: the pre-blocking naive triple loops.
void
refGemm(size_t m, size_t n, size_t k, const float *a, const float *b,
        float *c, float beta)
{
    if (beta == 0.0f)
        std::memset(c, 0, m * n * sizeof(float));
    for (size_t i = 0; i < m; i++) {
        for (size_t p = 0; p < k; p++) {
            float av = a[i * k + p];
            if (av == 0.0f)
                continue;
            for (size_t j = 0; j < n; j++)
                c[i * n + j] += av * b[p * n + j];
        }
    }
}

void
refGemmAtB(size_t m, size_t n, size_t k, const float *a, const float *b,
           float *c, float beta)
{
    if (beta == 0.0f)
        std::memset(c, 0, m * n * sizeof(float));
    for (size_t p = 0; p < k; p++) {
        for (size_t i = 0; i < m; i++) {
            float av = a[p * m + i];
            if (av == 0.0f)
                continue;
            for (size_t j = 0; j < n; j++)
                c[i * n + j] += av * b[p * n + j];
        }
    }
}

void
refGemmABt(size_t m, size_t n, size_t k, const float *a, const float *b,
           float *c, float beta)
{
    for (size_t i = 0; i < m; i++) {
        for (size_t j = 0; j < n; j++) {
            float acc = beta == 0.0f ? 0.0f : beta * c[i * n + j];
            for (size_t p = 0; p < k; p++)
                acc += a[i * k + p] * b[j * k + p];
            c[i * n + j] = acc;
        }
    }
}

/** ~40% zeros, like a post-ReLU map, to exercise the zero skip. */
std::vector<float>
randomMatrix(Rng &rng, size_t elems)
{
    std::vector<float> v(elems);
    for (float &x : v)
        x = rng.chance(0.4) ? 0.0f
                            : static_cast<float>(rng.gaussian());
    return v;
}

struct Shape
{
    size_t m, n, k;
};

// Odd shapes: nothing is a multiple of the Mc=32/Kc=256 tiles, plus
// degenerate single-row/column cases and one tile-aligned shape.
const Shape oddShapes[] = {
    {1, 1, 1},   {3, 5, 7},    {33, 65, 17}, {37, 1, 259},
    {1, 130, 300}, {50, 31, 257}, {64, 128, 256}, {67, 129, 513},
};

void
expectNear(const std::vector<float> &got, const std::vector<float> &want,
           const char *what)
{
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); i++) {
        ASSERT_NEAR(got[i], want[i],
                    1e-5 * (1.0 + std::abs(want[i])))
            << what << " at " << i;
    }
}

} // namespace

TEST(Gemm, BlockedMatchesNaiveOddShapes)
{
    Rng rng(42);
    for (const Shape &s : oddShapes) {
        for (float beta : {0.0f, 1.0f}) {
            auto a = randomMatrix(rng, s.m * s.k);
            auto b = randomMatrix(rng, s.k * s.n);
            auto c0 = randomMatrix(rng, s.m * s.n);
            auto c1 = c0;
            refGemm(s.m, s.n, s.k, a.data(), b.data(), c0.data(), beta);
            gemm(s.m, s.n, s.k, a.data(), b.data(), c1.data(), beta);
            expectNear(c1, c0, "gemm");
        }
    }
}

TEST(Gemm, BlockedAtBMatchesNaiveOddShapes)
{
    Rng rng(43);
    for (const Shape &s : oddShapes) {
        for (float beta : {0.0f, 1.0f}) {
            auto a = randomMatrix(rng, s.k * s.m);
            auto b = randomMatrix(rng, s.k * s.n);
            auto c0 = randomMatrix(rng, s.m * s.n);
            auto c1 = c0;
            refGemmAtB(s.m, s.n, s.k, a.data(), b.data(), c0.data(),
                       beta);
            gemmAtB(s.m, s.n, s.k, a.data(), b.data(), c1.data(),
                    beta);
            expectNear(c1, c0, "gemmAtB");
        }
    }
}

TEST(Gemm, BlockedABtMatchesNaiveOddShapes)
{
    Rng rng(44);
    for (const Shape &s : oddShapes) {
        for (float beta : {0.0f, 1.0f}) {
            auto a = randomMatrix(rng, s.m * s.k);
            auto b = randomMatrix(rng, s.n * s.k);
            auto c0 = randomMatrix(rng, s.m * s.n);
            auto c1 = c0;
            refGemmABt(s.m, s.n, s.k, a.data(), b.data(), c0.data(),
                       beta);
            gemmABt(s.m, s.n, s.k, a.data(), b.data(), c1.data(),
                    beta);
            expectNear(c1, c0, "gemmABt");
        }
    }
}

TEST(Gemm, ParallelBitwiseMatchesSequential)
{
    // Big enough to clear the parallel threshold; the partitioning
    // into Mc row blocks must make the result bitwise independent of
    // the worker count.
    const size_t m = 123, n = 257, k = 511;
    Rng rng(45);
    auto a = randomMatrix(rng, m * k);
    auto b = randomMatrix(rng, k * n);
    auto at = randomMatrix(rng, k * m);
    auto bt = randomMatrix(rng, n * k);
    auto cInit = randomMatrix(rng, m * n);

    struct Case
    {
        const char *name;
        void (*fn)(size_t, size_t, size_t, const float *,
                   const float *, float *, float);
        const std::vector<float> *a, *b;
    };
    const Case cases[] = {
        {"gemm", gemm, &a, &b},
        {"gemmAtB", gemmAtB, &at, &b},
        {"gemmABt", gemmABt, &a, &bt},
    };

    for (const Case &cs : cases) {
        for (float beta : {0.0f, 1.0f}) {
            ThreadPool::setGlobalJobs(1);
            auto cSeq = cInit;
            cs.fn(m, n, k, cs.a->data(), cs.b->data(), cSeq.data(),
                  beta);
            ThreadPool::setGlobalJobs(4);
            auto cPar = cInit;
            cs.fn(m, n, k, cs.a->data(), cs.b->data(), cPar.data(),
                  beta);
            for (size_t i = 0; i < cSeq.size(); i++) {
                ASSERT_EQ(cPar[i], cSeq[i])
                    << cs.name << " beta=" << beta << " at " << i;
            }
        }
    }
    ThreadPool::setGlobalJobs(ThreadPool::defaultJobs());
}
