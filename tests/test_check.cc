/** Tests for the ZCOMP_CHECK / ZCOMP_DCHECK invariant macros. */

#include <gtest/gtest.h>

#include "common/check.hh"

namespace zcomp {
namespace {

TEST(Check, PassingCheckIsSilent)
{
    int calls = 0;
    auto bump = [&] {
        calls++;
        return true;
    };
    ZCOMP_CHECK(bump());
    ZCOMP_CHECK(calls == 1, "condition evaluated %d times", calls);
}

TEST(CheckDeathTest, FailureAbortsWithCondition)
{
    EXPECT_DEATH(ZCOMP_CHECK(1 + 1 == 3), "check failed: 1 \\+ 1 == 3");
}

TEST(CheckDeathTest, FailureFormatsMessage)
{
    int want = 7;
    EXPECT_DEATH(ZCOMP_CHECK(want == 8, "want %d lanes, got %d", want, 8),
                 "check failed: want == 8: want 7 lanes, got 8");
}

TEST(Check, DcheckMatchesBuildMode)
{
#if ZCOMP_DCHECK_ENABLED
    EXPECT_DEATH(ZCOMP_DCHECK(false, "dchecks are on"), "dchecks are on");
#else
    // Disabled DCHECKs must not evaluate their condition...
    int calls = 0;
    auto bump = [&] {
        calls++;
        return false;
    };
    ZCOMP_DCHECK(bump());
    EXPECT_EQ(calls, 0);
#endif
}

TEST(Check, DisabledDcheckStillTypeChecks)
{
    // Whatever the build mode, the expression below must compile;
    // the side effect only happens when DCHECKs are enabled.
    int evaluated = 0;
    ZCOMP_DCHECK([&] {
        evaluated++;
        return true;
    }());
    EXPECT_EQ(evaluated, ZCOMP_DCHECK_ENABLED ? 1 : 0);
}

TEST(Check, ConditionEvaluatedExactlyOnce)
{
    int calls = 0;
    auto bump = [&] {
        calls++;
        return true;
    };
    ZCOMP_CHECK(bump(), "calls=%d", calls);
    EXPECT_EQ(calls, 1);
}

} // namespace
} // namespace zcomp
