/** @file Unit tests for the stats package. */

#include <sstream>

#include <gtest/gtest.h>

#include "common/stats.hh"

using namespace zcomp;

TEST(Counter, IncAndReset)
{
    Counter c("hits", "cache hits");
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Histogram, BucketsAndMean)
{
    Histogram h("lat", "latency", 100, 10);
    h.sample(5);
    h.sample(5);
    h.sample(95);
    EXPECT_EQ(h.samples(), 3u);
    EXPECT_NEAR(h.mean(), 35.0, 1e-9);
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(9), 1u);
}

TEST(Histogram, OverflowGoesToLastBucket)
{
    Histogram h("lat", "latency", 10, 5);
    h.sample(1000);
    EXPECT_EQ(h.bucketCount(4), 1u);
}

TEST(StatGroup, StableAddresses)
{
    StatGroup g("top");
    Counter &a = g.addCounter("a", "first");
    // Adding more counters must not invalidate earlier references.
    for (int i = 0; i < 100; i++)
        g.addCounter("c" + std::to_string(i), "filler");
    a.inc(7);
    EXPECT_EQ(g.findCounter("a")->value(), 7u);
}

TEST(StatGroup, SameNameReturnsSameCounter)
{
    StatGroup g("top");
    Counter &a = g.addCounter("x", "");
    // zcomp-lint: allow(stat-names)
    Counter &b = g.addCounter("x", "");
    EXPECT_EQ(&a, &b);
}

TEST(StatGroup, NestedLookupByPath)
{
    StatGroup g("sys");
    StatGroup &l1 = g.addChild("l1");
    StatGroup &pf = l1.addChild("prefetch");
    pf.addCounter("issued", "prefetches issued").inc(3);
    const Counter *c = g.findCounter("l1.prefetch.issued");
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->value(), 3u);
    EXPECT_EQ(g.findCounter("l1.nothere"), nullptr);
    EXPECT_EQ(g.findCounter("bogus.path"), nullptr);
}

TEST(StatGroup, ResetAllRecurses)
{
    StatGroup g("sys");
    g.addCounter("top", "").inc(1);
    g.addChild("c").addCounter("inner", "").inc(5);
    g.resetAll();
    EXPECT_EQ(g.findCounter("top")->value(), 0u);
    EXPECT_EQ(g.findCounter("c.inner")->value(), 0u);
}

TEST(StatGroup, DumpContainsNamesAndValues)
{
    StatGroup g("sys");
    g.addCounter("traffic", "bytes").inc(1234);
    std::ostringstream os;
    g.dump(os);
    EXPECT_NE(os.str().find("traffic"), std::string::npos);
    EXPECT_NE(os.str().find("1234"), std::string::npos);
}

TEST(StatGroup, FindHistogramByPath)
{
    StatGroup g("sys");
    StatGroup &l2 = g.addChild("l2");
    l2.addHistogram("lat", "latency", 100, 10).sample(42);

    const Histogram *h = g.findHistogram("l2.lat");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->samples(), 1u);
    EXPECT_EQ(h->sum(), 42u);

    // Direct (undotted) lookup in the owning group.
    EXPECT_EQ(l2.findHistogram("lat"), h);

    // Missing leaves and missing intermediate groups.
    EXPECT_EQ(g.findHistogram("l2.nothere"), nullptr);
    EXPECT_EQ(g.findHistogram("bogus.lat"), nullptr);
    EXPECT_EQ(g.findHistogram("lat"), nullptr);
}

TEST(StatGroup, LookupKindsDoNotCollide)
{
    // A child group, a counter and a histogram sharing the name "x"
    // must each be found only by their own lookup.
    StatGroup g("sys");
    g.addChild("x").addCounter("inner", "").inc(3);
    // zcomp-lint: allow(stat-names)
    g.addCounter("x", "").inc(7);
    g.addHistogram("x", "", 10, 2).sample(1);

    const Counter *c = g.findCounter("x");
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->value(), 7u);

    const Histogram *h = g.findHistogram("x");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->samples(), 1u);

    // Dotted paths still descend into the child group named "x".
    EXPECT_EQ(g.findCounter("x.inner")->value(), 3u);
    EXPECT_EQ(g.findHistogram("x.inner"), nullptr);
}

TEST(StatGroup, DumpJsonShape)
{
    StatGroup g("sys");
    g.addCounter("bytes", "").inc(512);
    g.addHistogram("lat", "", 100, 10).sample(5);
    g.addChild("l1").addCounter("hits", "").inc(2);

    Json j = g.dumpJson();
    ASSERT_TRUE(j.isObject());
    EXPECT_EQ(j.find("counters")->find("bytes")->asUint(), 512u);

    const Json *h = j.find("histograms")->find("lat");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->find("samples")->asUint(), 1u);
    EXPECT_EQ(h->find("sum")->asUint(), 5u);
    EXPECT_NE(h->find("mean"), nullptr);
    EXPECT_NE(h->find("maxValue"), nullptr);
    EXPECT_EQ(h->find("buckets")->size(), 10u);

    const Json *l1 = j.find("children")->find("l1");
    ASSERT_NE(l1, nullptr);
    EXPECT_EQ(l1->find("counters")->find("hits")->asUint(), 2u);
    // Empty sections are omitted, not emitted as empty objects.
    EXPECT_EQ(l1->find("histograms"), nullptr);
    EXPECT_EQ(l1->find("children"), nullptr);

    // The whole tree survives a serialize/parse round trip.
    std::string err;
    EXPECT_EQ(Json::parse(j.dump(2), &err), j);
    EXPECT_EQ(err, "");
}
