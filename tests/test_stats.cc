/** @file Unit tests for the stats package. */

#include <sstream>

#include <gtest/gtest.h>

#include "common/stats.hh"

using namespace zcomp;

TEST(Counter, IncAndReset)
{
    Counter c("hits", "cache hits");
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Histogram, BucketsAndMean)
{
    Histogram h("lat", "latency", 100, 10);
    h.sample(5);
    h.sample(5);
    h.sample(95);
    EXPECT_EQ(h.samples(), 3u);
    EXPECT_NEAR(h.mean(), 35.0, 1e-9);
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(9), 1u);
}

TEST(Histogram, OverflowGoesToLastBucket)
{
    Histogram h("lat", "latency", 10, 5);
    h.sample(1000);
    EXPECT_EQ(h.bucketCount(4), 1u);
}

TEST(StatGroup, StableAddresses)
{
    StatGroup g("top");
    Counter &a = g.addCounter("a", "first");
    // Adding more counters must not invalidate earlier references.
    for (int i = 0; i < 100; i++)
        g.addCounter("c" + std::to_string(i), "filler");
    a.inc(7);
    EXPECT_EQ(g.findCounter("a")->value(), 7u);
}

TEST(StatGroup, SameNameReturnsSameCounter)
{
    StatGroup g("top");
    Counter &a = g.addCounter("x", "");
    Counter &b = g.addCounter("x", "");
    EXPECT_EQ(&a, &b);
}

TEST(StatGroup, NestedLookupByPath)
{
    StatGroup g("sys");
    StatGroup &l1 = g.addChild("l1");
    StatGroup &pf = l1.addChild("prefetch");
    pf.addCounter("issued", "prefetches issued").inc(3);
    const Counter *c = g.findCounter("l1.prefetch.issued");
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->value(), 3u);
    EXPECT_EQ(g.findCounter("l1.nothere"), nullptr);
    EXPECT_EQ(g.findCounter("bogus.path"), nullptr);
}

TEST(StatGroup, ResetAllRecurses)
{
    StatGroup g("sys");
    g.addCounter("top", "").inc(1);
    g.addChild("c").addCounter("inner", "").inc(5);
    g.resetAll();
    EXPECT_EQ(g.findCounter("top")->value(), 0u);
    EXPECT_EQ(g.findCounter("c.inner")->value(), 0u);
}

TEST(StatGroup, DumpContainsNamesAndValues)
{
    StatGroup g("sys");
    g.addCounter("traffic", "bytes").inc(1234);
    std::ostringstream os;
    g.dump(os);
    EXPECT_NE(os.str().find("traffic"), std::string::npos);
    EXPECT_NE(os.str().find("1234"), std::string::npos);
}
