/**
 * @file
 * Unit tests for the DNN layers, including finite-difference gradient
 * checks for conv and fc.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "dnn/layers/activation.hh"
#include "dnn/layers/conv.hh"
#include "dnn/layers/fc.hh"
#include "dnn/layers/norm.hh"
#include "dnn/layers/pool.hh"
#include "dnn/layers/structure.hh"

using namespace zcomp;

namespace {

/** Fill with small deterministic pseudo-random values. */
void
fill(Tensor &t, uint64_t seed)
{
    Rng rng(seed);
    for (size_t i = 0; i < t.elems(); i++)
        t.data()[i] = static_cast<float>(rng.gaussian(0, 0.5));
}

/**
 * Finite-difference check: for loss L = sum(out * w_loss), compare the
 * layer's analytic input gradient against (L(x+eps) - L(x-eps)) / 2eps
 * at a few sampled elements.
 */
void
gradCheck(Layer &layer, VSpace &vs, TensorShape in_shape, uint64_t seed)
{
    Rng rng(seed);
    Workspace ws;
    std::vector<TensorShape> in_shapes{in_shape};
    layer.init(vs, in_shapes, rng);
    ws.ensure(layer.workspaceElems(in_shapes));

    Tensor x(vs, "x", in_shape, AllocClass::FeatureMap);
    fill(x, seed + 1);
    TensorShape out_shape = layer.outputShape(in_shapes);
    Tensor y(vs, "y", out_shape, AllocClass::FeatureMap);
    Tensor dy(vs, "dy", out_shape, AllocClass::GradientMap);
    Tensor dx(vs, "dx", in_shape, AllocClass::GradientMap);
    fill(dy, seed + 2);     // dL/dy = random weighting

    std::vector<const Tensor *> ins{&x};
    layer.forward(ins, y, ws);
    layer.backward(ins, y, dy, {&dx}, ws);

    auto loss = [&]() {
        layer.forward(ins, y, ws);
        double l = 0;
        for (size_t i = 0; i < y.elems(); i++)
            l += static_cast<double>(y.data()[i]) * dy.data()[i];
        return l;
    };

    const float eps = 1e-2f;
    for (size_t probe = 0; probe < 8; probe++) {
        size_t i = rng.below(x.elems());
        float keep = x.data()[i];
        x.data()[i] = keep + eps;
        double lp = loss();
        x.data()[i] = keep - eps;
        double lm = loss();
        x.data()[i] = keep;
        double fd = (lp - lm) / (2 * eps);
        EXPECT_NEAR(dx.data()[i], fd, 2e-2 + 0.05 * std::fabs(fd))
            << "element " << i;
    }
}

} // namespace

TEST(ConvLayer, ShapeInference)
{
    ConvLayer conv("c", 8, 3, 3, 1, 1);
    TensorShape out = conv.outputShape({{2, 4, 16, 16}});
    EXPECT_EQ(out, (TensorShape{2, 8, 16, 16}));

    ConvLayer strided("s", 8, 3, 3, 2, 0);
    EXPECT_EQ(strided.outputShape({{1, 4, 17, 17}}),
              (TensorShape{1, 8, 8, 8}));
}

TEST(ConvLayer, KnownConvolution)
{
    // 1x1 input channel, 2x2 image, identity-like 1x1 kernel.
    VSpace vs;
    ConvLayer conv("c", 1, 1, 1, 1, 0);
    Rng rng(1);
    conv.init(vs, {{1, 1, 2, 2}}, rng);
    // Overwrite weight with 2.0 and bias with 1.0.
    const_cast<Tensor &>(conv.weights()).data()[0] = 2.0f;

    Tensor x(vs, "x", {1, 1, 2, 2}, AllocClass::FeatureMap);
    for (int i = 0; i < 4; i++)
        x.data()[i] = static_cast<float>(i + 1);
    Tensor y(vs, "y", {1, 1, 2, 2}, AllocClass::FeatureMap);
    Workspace ws;
    ws.ensure(conv.workspaceElems({x.shape()}));
    std::vector<const Tensor *> ins{&x};
    conv.forward(ins, y, ws);
    for (int i = 0; i < 4; i++)
        EXPECT_FLOAT_EQ(y.data()[i], 2.0f * (i + 1));
}

TEST(ConvLayer, GradientCheck)
{
    VSpace vs;
    ConvLayer conv("c", 3, 3, 3, 2, 1);
    gradCheck(conv, vs, {2, 2, 6, 6}, 5);
}

TEST(ConvLayer, MacsAndWeights)
{
    VSpace vs;
    ConvLayer conv("c", 8, 3, 3, 1, 1);
    Rng rng(1);
    conv.init(vs, {{1, 4, 8, 8}}, rng);
    // MACs = N * Cout * Hout*Wout * Cin*kh*kw.
    EXPECT_EQ(conv.forwardMacs({{1, 4, 8, 8}}), 1u * 8 * 64 * 36);
    EXPECT_EQ(conv.weightBytes(), (8u * 36 + 8u) * 4);
}

TEST(FcLayer, GradientCheck)
{
    VSpace vs;
    FcLayer fc("f", 5);
    gradCheck(fc, vs, {3, 7, 1, 1}, 6);
}

TEST(FcLayer, FlattensSpatialInput)
{
    VSpace vs;
    FcLayer fc("f", 4);
    EXPECT_EQ(fc.outputShape({{2, 3, 4, 4}}), (TensorShape{2, 4, 1, 1}));
    Rng rng(1);
    fc.init(vs, {{2, 3, 4, 4}}, rng);
    EXPECT_EQ(fc.weightBytes(), (4u * 48 + 4u) * 4);
}

TEST(ReluLayer, ForwardClampsAndBackwardMasks)
{
    VSpace vs;
    ReluLayer relu("r");
    Tensor x(vs, "x", {1, 1, 1, 4}, AllocClass::FeatureMap);
    x.data()[0] = -1;
    x.data()[1] = 2;
    x.data()[2] = 0;
    x.data()[3] = -0.5;
    Tensor y(vs, "y", x.shape(), AllocClass::FeatureMap);
    Tensor dy(vs, "dy", x.shape(), AllocClass::GradientMap);
    Tensor dx(vs, "dx", x.shape(), AllocClass::GradientMap);
    for (int i = 0; i < 4; i++)
        dy.data()[i] = 1.0f;
    Workspace ws;
    std::vector<const Tensor *> ins{&x};
    relu.forward(ins, y, ws);
    EXPECT_FLOAT_EQ(y.data()[0], 0);
    EXPECT_FLOAT_EQ(y.data()[1], 2);
    relu.backward(ins, y, dy, {&dx}, ws);
    EXPECT_FLOAT_EQ(dx.data()[0], 0);
    EXPECT_FLOAT_EQ(dx.data()[1], 1);
    EXPECT_FLOAT_EQ(dx.data()[2], 0);
}

TEST(PoolLayer, MaxPoolForwardAndArgmaxBackward)
{
    VSpace vs;
    PoolLayer pool("p", LayerKind::MaxPool, 2, 2);
    Tensor x(vs, "x", {1, 1, 2, 2}, AllocClass::FeatureMap);
    x.data()[0] = 1;
    x.data()[1] = 5;
    x.data()[2] = 3;
    x.data()[3] = 2;
    Tensor y(vs, "y", {1, 1, 1, 1}, AllocClass::FeatureMap);
    Workspace ws;
    std::vector<const Tensor *> ins{&x};
    pool.forward(ins, y, ws);
    EXPECT_FLOAT_EQ(y.data()[0], 5);

    Tensor dy(vs, "dy", y.shape(), AllocClass::GradientMap);
    Tensor dx(vs, "dx", x.shape(), AllocClass::GradientMap);
    dy.data()[0] = 7;
    pool.backward(ins, y, dy, {&dx}, ws);
    EXPECT_FLOAT_EQ(dx.data()[1], 7);   // the argmax position
    EXPECT_FLOAT_EQ(dx.data()[0], 0);
}

TEST(PoolLayer, AvgPoolSpreadsGradient)
{
    VSpace vs;
    PoolLayer pool("p", LayerKind::AvgPool, 2, 2);
    Tensor x(vs, "x", {1, 1, 2, 2}, AllocClass::FeatureMap);
    for (int i = 0; i < 4; i++)
        x.data()[i] = static_cast<float>(i);
    Tensor y(vs, "y", {1, 1, 1, 1}, AllocClass::FeatureMap);
    Workspace ws;
    std::vector<const Tensor *> ins{&x};
    pool.forward(ins, y, ws);
    EXPECT_FLOAT_EQ(y.data()[0], 1.5f);
    Tensor dy(vs, "dy", y.shape(), AllocClass::GradientMap);
    Tensor dx(vs, "dx", x.shape(), AllocClass::GradientMap);
    dy.data()[0] = 4;
    pool.backward(ins, y, dy, {&dx}, ws);
    for (int i = 0; i < 4; i++)
        EXPECT_FLOAT_EQ(dx.data()[i], 1.0f);
}

TEST(PoolLayer, GlobalAvgPool)
{
    VSpace vs;
    auto pool = PoolLayer::globalAvg("g");
    EXPECT_EQ(pool->outputShape({{2, 8, 7, 7}}),
              (TensorShape{2, 8, 1, 1}));
}

TEST(PoolLayer, MaxPoolReducesSparsity)
{
    // Section 2.2: pooling layers reduce the sparsity at their inputs.
    VSpace vs;
    PoolLayer pool("p", LayerKind::MaxPool, 2, 2);
    Tensor x(vs, "x", {1, 1, 8, 8}, AllocClass::FeatureMap);
    Rng rng(3);
    for (size_t i = 0; i < x.elems(); i++)
        x.data()[i] = rng.chance(0.5) ? 0.0f
                                      : static_cast<float>(
                                            std::fabs(rng.gaussian()));
    Tensor y(vs, "y", {1, 1, 4, 4}, AllocClass::FeatureMap);
    Workspace ws;
    std::vector<const Tensor *> ins{&x};
    pool.forward(ins, y, ws);
    EXPECT_LT(y.sparsity(), x.sparsity());
}

TEST(LrnLayer, PreservesZerosAndNormalizes)
{
    // Section 2.2: LRN carries over the sparsity from earlier layers.
    VSpace vs;
    LrnLayer lrn("n");
    Tensor x(vs, "x", {1, 8, 2, 2}, AllocClass::FeatureMap);
    Rng rng(4);
    for (size_t i = 0; i < x.elems(); i++)
        x.data()[i] = rng.chance(0.5) ? 0.0f
                                      : static_cast<float>(
                                            rng.gaussian(0, 2));
    Tensor y(vs, "y", x.shape(), AllocClass::FeatureMap);
    Workspace ws;
    std::vector<const Tensor *> ins{&x};
    lrn.forward(ins, y, ws);
    for (size_t i = 0; i < x.elems(); i++) {
        if (x.data()[i] == 0.0f) {
            EXPECT_FLOAT_EQ(y.data()[i], 0.0f);
        } else {
            // Normalization shrinks magnitudes (k >= 1).
            EXPECT_LE(std::fabs(y.data()[i]),
                      std::fabs(x.data()[i]) + 1e-6);
        }
    }
    EXPECT_DOUBLE_EQ(x.sparsity(), y.sparsity());
}

TEST(DropoutLayer, TrainingDropsInferencePasses)
{
    VSpace vs;
    DropoutLayer drop("d", 0.5);
    Tensor x(vs, "x", {1, 1, 1, 4096}, AllocClass::FeatureMap);
    for (size_t i = 0; i < x.elems(); i++)
        x.data()[i] = 1.0f;
    Tensor y(vs, "y", x.shape(), AllocClass::FeatureMap);
    Workspace ws;
    std::vector<const Tensor *> ins{&x};

    drop.setTraining(true);
    drop.forward(ins, y, ws);
    EXPECT_NEAR(y.sparsity(), 0.5, 0.05);
    // Kept values are scaled by 1/(1-p).
    for (size_t i = 0; i < y.elems(); i++) {
        if (y.data()[i] != 0.0f) {
            EXPECT_FLOAT_EQ(y.data()[i], 2.0f);
        }
    }

    drop.setTraining(false);
    drop.forward(ins, y, ws);
    EXPECT_DOUBLE_EQ(y.sparsity(), 0.0);
}

TEST(SoftmaxLayer, RowsSumToOne)
{
    VSpace vs;
    SoftmaxLayer sm("s");
    Tensor x(vs, "x", {2, 4, 1, 1}, AllocClass::FeatureMap);
    fill(x, 9);
    Tensor y(vs, "y", x.shape(), AllocClass::FeatureMap);
    Workspace ws;
    std::vector<const Tensor *> ins{&x};
    sm.forward(ins, y, ws);
    for (int n = 0; n < 2; n++) {
        double sum = 0;
        for (int c = 0; c < 4; c++) {
            float p = y.data()[n * 4 + c];
            EXPECT_GT(p, 0.0f);
            sum += p;
        }
        EXPECT_NEAR(sum, 1.0, 1e-5);
    }
}

TEST(EltwiseAdd, ForwardAndFanoutBackward)
{
    VSpace vs;
    EltwiseAddLayer add("a");
    Tensor a(vs, "a", {1, 1, 1, 4}, AllocClass::FeatureMap);
    Tensor b(vs, "b", a.shape(), AllocClass::FeatureMap);
    for (int i = 0; i < 4; i++) {
        a.data()[i] = static_cast<float>(i);
        b.data()[i] = 10.0f;
    }
    Tensor y(vs, "y", a.shape(), AllocClass::FeatureMap);
    Workspace ws;
    std::vector<const Tensor *> ins{&a, &b};
    add.forward(ins, y, ws);
    EXPECT_FLOAT_EQ(y.data()[3], 13.0f);

    Tensor dy(vs, "dy", a.shape(), AllocClass::GradientMap);
    Tensor da(vs, "da", a.shape(), AllocClass::GradientMap);
    Tensor db(vs, "db", a.shape(), AllocClass::GradientMap);
    for (int i = 0; i < 4; i++)
        dy.data()[i] = static_cast<float>(i + 1);
    add.backward(ins, y, dy, {&da, &db}, ws);
    for (int i = 0; i < 4; i++) {
        EXPECT_FLOAT_EQ(da.data()[i], dy.data()[i]);
        EXPECT_FLOAT_EQ(db.data()[i], dy.data()[i]);
    }
}

TEST(Concat, SplitsChannelsOnBackward)
{
    VSpace vs;
    ConcatLayer cat("c");
    Tensor a(vs, "a", {1, 1, 2, 2}, AllocClass::FeatureMap);
    Tensor b(vs, "b", {1, 2, 2, 2}, AllocClass::FeatureMap);
    for (size_t i = 0; i < a.elems(); i++)
        a.data()[i] = 1.0f;
    for (size_t i = 0; i < b.elems(); i++)
        b.data()[i] = 2.0f;
    EXPECT_EQ(cat.outputShape({a.shape(), b.shape()}),
              (TensorShape{1, 3, 2, 2}));
    Tensor y(vs, "y", {1, 3, 2, 2}, AllocClass::FeatureMap);
    Workspace ws;
    std::vector<const Tensor *> ins{&a, &b};
    cat.forward(ins, y, ws);
    EXPECT_FLOAT_EQ(y.data()[0], 1.0f);     // channel 0 from a
    EXPECT_FLOAT_EQ(y.data()[4], 2.0f);     // channel 1 from b

    Tensor dy(vs, "dy", y.shape(), AllocClass::GradientMap);
    for (size_t i = 0; i < dy.elems(); i++)
        dy.data()[i] = static_cast<float>(i);
    Tensor da(vs, "da", a.shape(), AllocClass::GradientMap);
    Tensor db(vs, "db", b.shape(), AllocClass::GradientMap);
    cat.backward(ins, y, dy, {&da, &db}, ws);
    EXPECT_FLOAT_EQ(da.data()[0], 0.0f);
    EXPECT_FLOAT_EQ(db.data()[0], 4.0f);    // channel 1 of dy
}

namespace {

/** Naive direct convolution used as a reference for the im2col path. */
void
directConv(const Tensor &x, const Tensor &w, int cout, int kh, int kw,
           int stride, int pad, Tensor &y)
{
    const TensorShape &is = x.shape();
    const TensorShape &os = y.shape();
    for (int n = 0; n < os.n; n++) {
        for (int co = 0; co < cout; co++) {
            for (int oy = 0; oy < os.h; oy++) {
                for (int ox = 0; ox < os.w; ox++) {
                    double acc = 0;
                    for (int ci = 0; ci < is.c; ci++) {
                        for (int ky = 0; ky < kh; ky++) {
                            for (int kx = 0; kx < kw; kx++) {
                                int iy = oy * stride - pad + ky;
                                int ix = ox * stride - pad + kx;
                                if (iy < 0 || iy >= is.h || ix < 0 ||
                                    ix >= is.w) {
                                    continue;
                                }
                                size_t wi =
                                    (static_cast<size_t>(co) * is.c +
                                     ci) *
                                        kh * kw +
                                    static_cast<size_t>(ky) * kw + kx;
                                acc += static_cast<double>(
                                           x.at(n, ci, iy, ix)) *
                                       w.data()[wi];
                            }
                        }
                    }
                    y.at(n, co, oy, ox) = static_cast<float>(acc);
                }
            }
        }
    }
}

} // namespace

TEST(ConvLayer, Im2colPathMatchesDirectConvolution)
{
    VSpace vs;
    ConvLayer conv("c", 5, 3, 3, 2, 1);
    Rng rng(31);
    TensorShape in_shape{2, 3, 9, 7};
    conv.init(vs, {in_shape}, rng);

    Tensor x(vs, "x", in_shape, AllocClass::FeatureMap);
    fill(x, 32);
    TensorShape out_shape = conv.outputShape({in_shape});
    Tensor y(vs, "y", out_shape, AllocClass::FeatureMap);
    Tensor ref(vs, "ref", out_shape, AllocClass::FeatureMap);

    Workspace ws;
    ws.ensure(conv.workspaceElems({in_shape}));
    std::vector<const Tensor *> ins{&x};
    conv.forward(ins, y, ws);

    directConv(x, conv.weights(), 5, 3, 3, 2, 1, ref);
    // The layer adds bias; replicate it on the reference.
    // (bias was gaussian-initialized to 0 by init: conv biases start 0)
    for (size_t i = 0; i < y.elems(); i++)
        EXPECT_NEAR(y.data()[i], ref.data()[i], 1e-3) << "at " << i;
}
