/** @file Unit tests for ExecContext and RunStats accounting. */

#include <gtest/gtest.h>

#include "sim/exec_context.hh"

using namespace zcomp;

namespace {

ArchConfig
cfg2()
{
    ArchConfig cfg;
    cfg.numCores = 2;
    cfg.prefetch.l1IpStride = false;
    cfg.prefetch.l2Stream = false;
    return cfg;
}

TracePhase
loadPhase(Addr base, int n, int cores)
{
    TracePhase p("loads", cores);
    for (int i = 0; i < n; i++) {
        p.perCore[0].push_back(TraceOp::load(
            base + static_cast<Addr>(i) * 64, 64, 1, 1));
    }
    return p;
}

} // namespace

TEST(ExecContext, RunReturnsPerPhaseDeltas)
{
    ExecContext ctx(cfg2());
    RunStats a = ctx.run(loadPhase(0x100000, 64, 2));
    EXPECT_GT(a.cycles, 0.0);
    EXPECT_EQ(a.traffic.coreL1Bytes, 64u * 64);
    // The second run re-touches warm lines: far less deep traffic.
    RunStats b = ctx.run(loadPhase(0x100000, 64, 2));
    EXPECT_EQ(b.traffic.coreL1Bytes, 64u * 64);
    EXPECT_LT(b.traffic.l3DramBytes, a.traffic.l3DramBytes);
    EXPECT_LT(b.cycles, a.cycles);
}

TEST(ExecContext, WarmDoesNotShowUpInNextDelta)
{
    ExecContext ctx(cfg2());
    ctx.warm(loadPhase(0x200000, 64, 2));
    RunStats r = ctx.run(loadPhase(0x200000, 64, 2));
    // All warm: no DRAM traffic in the measured delta.
    EXPECT_EQ(r.traffic.l3DramBytes, 0u);
}

TEST(ExecContext, RunStatsAccumulate)
{
    ExecContext ctx(cfg2());
    RunStats a = ctx.run(loadPhase(0x300000, 32, 2));
    RunStats b = ctx.run(loadPhase(0x340000, 32, 2));
    RunStats sum = a;
    sum += b;
    EXPECT_DOUBLE_EQ(sum.cycles, a.cycles + b.cycles);
    EXPECT_EQ(sum.traffic.coreL1Bytes,
              a.traffic.coreL1Bytes + b.traffic.coreL1Bytes);
    EXPECT_DOUBLE_EQ(sum.breakdown.memory,
                     a.breakdown.memory + b.breakdown.memory);
}

TEST(ExecContext, VSpaceIsShared)
{
    ExecContext ctx(cfg2());
    Buffer &buf = ctx.vs().alloc("b", 4096, AllocClass::Scratch);
    EXPECT_NE(buf.host, nullptr);
    EXPECT_EQ(ctx.vs().bytesInClass(AllocClass::Scratch), 4096u);
}
