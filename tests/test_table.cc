/** @file Unit tests for the console table printer. */

#include <sstream>

#include <gtest/gtest.h>

#include "common/table.hh"

using namespace zcomp;

TEST(Table, AlignsColumns)
{
    Table t("demo");
    t.setHeader({"name", "value"});
    t.addRow({"a", "1"});
    t.addRow({"longer-name", "22"});
    std::ostringstream os;
    t.print(os);
    std::string s = os.str();
    EXPECT_NE(s.find("demo"), std::string::npos);
    EXPECT_NE(s.find("longer-name"), std::string::npos);
    // Header separator rule exists.
    EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(Table, FmtHelpers)
{
    EXPECT_EQ(Table::fmt(1.2345, 2), "1.23");
    EXPECT_EQ(Table::fmt(1.0, 0), "1");
    EXPECT_EQ(Table::fmtPct(0.31), "31.0%");
    EXPECT_EQ(Table::fmtPct(-0.02), "-2.0%");
    EXPECT_EQ(Table::fmtBytes(512), "512.00 B");
    EXPECT_EQ(Table::fmtBytes(2048), "2.00 KiB");
    EXPECT_EQ(Table::fmtBytes(3.5 * 1024 * 1024), "3.50 MiB");
    EXPECT_EQ(Table::fmtBytes(2.0 * 1024 * 1024 * 1024), "2.00 GiB");
}

TEST(Table, EmptyTablePrintsNothing)
{
    Table t;
    std::ostringstream os;
    t.print(os);
    EXPECT_TRUE(os.str().empty());
}

TEST(TableDeath, RowWidthMismatchPanics)
{
    Table t;
    t.setHeader({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "table row");
}
