/** @file Unit tests for the multicore system and phase barriers. */

#include <sstream>

#include <gtest/gtest.h>

#include "cpu/system.hh"

using namespace zcomp;

namespace {

ArchConfig
cfg4()
{
    ArchConfig cfg;
    cfg.numCores = 4;
    cfg.prefetch.l1IpStride = false;
    cfg.prefetch.l2Stream = false;
    return cfg;
}

} // namespace

TEST(System, EmptyPhaseIsFree)
{
    MultiCoreSystem sys(cfg4());
    TracePhase p("empty", 4);
    PhaseResult r = sys.runPhase(p);
    EXPECT_DOUBLE_EQ(r.cycles, 0.0);
}

TEST(System, BalancedPhaseHasNoSync)
{
    MultiCoreSystem sys(cfg4());
    TracePhase p("balanced", 4);
    for (auto &t : p.perCore) {
        for (int i = 0; i < 100; i++)
            t.push_back(TraceOp::issue(4));
    }
    sys.runPhase(p);
    CycleBreakdown bd = sys.breakdown();
    EXPECT_NEAR(bd.sync, 0.0, 1.0);
    EXPECT_NEAR(bd.compute, 400.0, 1.0);
}

TEST(System, ImbalancedPhaseChargesSyncToIdleCores)
{
    MultiCoreSystem sys(cfg4());
    TracePhase p("imbalanced", 4);
    for (int i = 0; i < 400; i++)
        p.perCore[0].push_back(TraceOp::issue(4));  // 400 cycles
    PhaseResult r = sys.runPhase(p);
    EXPECT_NEAR(r.cycles, 400.0, 1.0);
    CycleBreakdown bd = sys.breakdown();
    EXPECT_NEAR(bd.sync, 3 * 400.0, 3.0);   // 3 idle cores wait
}

TEST(System, PhasesRunBackToBack)
{
    MultiCoreSystem sys(cfg4());
    TracePhase p("a", 4);
    for (int i = 0; i < 10; i++)
        p.perCore[0].push_back(TraceOp::issue(4));
    PhaseResult r1 = sys.runPhase(p);
    PhaseResult r2 = sys.runPhase(p);
    EXPECT_DOUBLE_EQ(r2.startTime, r1.endTime);
    EXPECT_NEAR(r2.cycles, r1.cycles, 1e-9);
}

TEST(System, SharedDramContentionSlowsParallelStreams)
{
    // One core streaming from DRAM is MSHR-latency-limited
    // (10 in-flight misses of ~150 cycles each) and leaves DRAM
    // bandwidth to spare. Sixteen cores streaming disjoint regions
    // together demand ~16x that and must saturate the 68 GB/s DRAM,
    // slowing every core down.
    ArchConfig cfg;
    cfg.prefetch.l1IpStride = false;
    cfg.prefetch.l2Stream = false;
    auto stream_trace = [](Addr base) {
        CoreTrace t;
        for (int i = 0; i < 4096; i++) {
            t.push_back(TraceOp::load(base + static_cast<Addr>(i) * 64,
                                      64, 1, 1));
        }
        return t;
    };

    MultiCoreSystem solo(cfg);
    TracePhase p1("solo", 16);
    p1.perCore[0] = stream_trace(0x10000000);
    double solo_cycles = solo.runPhase(p1).cycles;

    MultiCoreSystem full(cfg);
    TracePhase p16("full", 16);
    for (int c = 0; c < 16; c++) {
        p16.perCore[static_cast<size_t>(c)] = stream_trace(
            0x10000000 + static_cast<Addr>(c) * 0x4000000);
    }
    double full_cycles = full.runPhase(p16).cycles;

    EXPECT_GT(full_cycles, 1.5 * solo_cycles);
    // ... but far less than 16x: the solo run had bandwidth headroom.
    EXPECT_LT(full_cycles, 12.0 * solo_cycles);
}

TEST(System, SecondsFollowFrequency)
{
    ArchConfig cfg = cfg4();
    MultiCoreSystem sys(cfg);
    TracePhase p("a", 4);
    for (int i = 0; i < 2400; i++)
        p.perCore[0].push_back(TraceOp::issue(4));
    sys.runPhase(p);
    EXPECT_NEAR(sys.seconds(), 2400.0 / (2.4e9), 1e-12);
}

TEST(System, FewerTracesThanCoresIsAllowed)
{
    MultiCoreSystem sys(cfg4());
    TracePhase p("partial", 2);
    for (int i = 0; i < 10; i++)
        p.perCore[1].push_back(TraceOp::issue(4));
    PhaseResult r = sys.runPhase(p);
    EXPECT_NEAR(r.cycles, 10.0, 1.0);
}

TEST(System, DumpStatsReport)
{
    MultiCoreSystem sys(cfg4());
    TracePhase p("work", 4);
    for (int c = 0; c < 4; c++) {
        for (int i = 0; i < 64; i++) {
            p.perCore[static_cast<size_t>(c)].push_back(
                TraceOp::load(0x10000000 + static_cast<Addr>(c) *
                                               0x100000 +
                                  static_cast<Addr>(i) * 64,
                              64, 1, 1));
        }
    }
    sys.runPhase(p);

    StatGroup stats("sim");
    sys.dumpStats(stats);
    const Counter *cycles = stats.findCounter("cycles");
    ASSERT_NE(cycles, nullptr);
    EXPECT_GT(cycles->value(), 0u);
    // Per-core and hierarchy subtrees are populated.
    EXPECT_NE(stats.findCounter("core0.memory_cycles"), nullptr);
    const Counter *dram_read =
        stats.findCounter("mem.dram.bytes_read");
    ASSERT_NE(dram_read, nullptr);
    EXPECT_EQ(dram_read->value(), 4u * 64 * 64);
    EXPECT_NE(stats.findCounter("mem.l3.misses"), nullptr);
    EXPECT_NE(stats.findCounter("mem.links.l3_dram_bytes"), nullptr);

    // The report renders without crashing and contains key names.
    std::ostringstream os;
    stats.dump(os);
    EXPECT_NE(os.str().find("bytes_read"), std::string::npos);
}
