/** @file Unit tests for the Chrome-trace-event writer. */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.hh"
#include "common/trace_writer.hh"

using namespace zcomp;

namespace {

/** Read a whole file (the writer's output is small in tests). */
std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

struct TempPath
{
    std::string path;
    explicit TempPath(const std::string &p) : path(p) {}
    ~TempPath() { std::remove(path.c_str()); }
};

} // namespace

TEST(TraceWriter, SpansBufferAndMerge)
{
    TempPath tmp("test_trace_spans.json");
    TraceWriter tw(tmp.path);
    int pid = tw.newProcess("sim A");
    EXPECT_GE(pid, 1);

    // Emit out of order; the snapshot must come back sorted per lane.
    tw.span(pid, 0, 300, 10, "late", "sim");
    tw.span(pid, 0, 100, 10, "early", "sim");
    tw.span(pid, 1, 200, 10, "other lane", "sim");
    EXPECT_EQ(tw.pendingEvents(), 3u);

    std::vector<TraceWriter::Event> evs = tw.snapshotEvents();
    ASSERT_EQ(evs.size(), 3u);
    double last_ts = -1;
    std::pair<int, int> last_lane{-1, -1};
    for (const TraceWriter::Event &ev : evs) {
        std::pair<int, int> lane{ev.pid, ev.tid};
        if (lane != last_lane) {
            EXPECT_GE(lane, last_lane);     // lanes grouped, in order
            last_lane = lane;
            last_ts = -1;
        }
        EXPECT_GE(ev.ts, last_ts);          // monotonic within a lane
        last_ts = ev.ts;
    }
    EXPECT_EQ(evs[0].name, "early");
    EXPECT_EQ(evs[1].name, "late");
}

TEST(TraceWriter, FileIsValidJsonWithMetadata)
{
    TempPath tmp("test_trace_file.json");
    {
        TraceWriter tw(tmp.path);
        int pid = tw.newProcess("my sim");
        tw.nameThread(pid, 0, "core 0");
        Json args = Json::object();
        args["ops"] = 12;
        tw.span(pid, 0, 0, 50, "phase one", "sim", args);
        tw.hostSpan("host work", 1.0, 2.0);
        tw.finish();
    }

    std::string text = slurp(tmp.path);
    ASSERT_FALSE(text.empty());
    std::string err;
    Json doc = Json::parse(text, &err);
    ASSERT_EQ(err, "");
    ASSERT_TRUE(doc.isObject());
    EXPECT_NE(doc.find("displayTimeUnit"), nullptr);

    const Json *events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());

    bool saw_process_name = false, saw_thread_name = false;
    bool saw_span = false, saw_host = false;
    for (size_t i = 0; i < events->size(); i++) {
        const Json &ev = events->at(i);
        const Json *ph = ev.find("ph");
        ASSERT_NE(ph, nullptr);
        if (ph->asString() == "M") {
            const std::string &what = ev.find("name")->asString();
            if (what == "process_name")
                saw_process_name = true;
            if (what == "thread_name")
                saw_thread_name = true;
        } else if (ph->asString() == "X") {
            const std::string &name = ev.find("name")->asString();
            if (name == "phase one") {
                saw_span = true;
                EXPECT_DOUBLE_EQ(ev.find("dur")->asDouble(), 50.0);
                const Json *a = ev.find("args");
                ASSERT_NE(a, nullptr);
                EXPECT_EQ(a->find("ops")->asInt(), 12);
            }
            if (name == "host work") {
                saw_host = true;
                EXPECT_EQ(ev.find("pid")->asInt(),
                          TraceWriter::hostPid);
            }
        }
    }
    EXPECT_TRUE(saw_process_name);
    EXPECT_TRUE(saw_thread_name);
    EXPECT_TRUE(saw_span);
    EXPECT_TRUE(saw_host);
}

TEST(TraceWriter, MultiThreadedHostSpans)
{
    TempPath tmp("test_trace_mt.json");
    TraceWriter tw(tmp.path);

    constexpr int threads = 4, per = 50;
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; t++) {
        pool.emplace_back([&tw, t] {
            TraceWriter::setThreadLabel("worker " + std::to_string(t));
            for (int i = 0; i < per; i++) {
                double ts = i * 10.0;
                tw.hostSpan("tick", ts, ts + 5.0);
            }
        });
    }
    for (std::thread &t : pool)
        t.join();

    EXPECT_EQ(tw.pendingEvents(),
              static_cast<size_t>(threads) * per);

    // Each worker got its own host lane; every lane is monotonic.
    std::vector<TraceWriter::Event> evs = tw.snapshotEvents();
    std::pair<int, int> lane{-1, -1};
    double last_ts = -1;
    int lanes = 0;
    for (const TraceWriter::Event &ev : evs) {
        EXPECT_EQ(ev.pid, TraceWriter::hostPid);
        if (std::pair<int, int>{ev.pid, ev.tid} != lane) {
            lane = {ev.pid, ev.tid};
            lanes++;
            last_ts = -1;
        }
        EXPECT_GE(ev.ts, last_ts);
        last_ts = ev.ts;
    }
    EXPECT_EQ(lanes, threads);
}

TEST(TraceWriter, CounterEventsRoundTrip)
{
    TempPath tmp("test_trace_counter.json");
    {
        TraceWriter tw(tmp.path);
        int pid = tw.newProcess("sim");
        tw.counter(pid, 100, "dramReadBytesPerCycle", 3.5);
        tw.counter(pid, 200, "dramReadBytesPerCycle", 4.25);
        tw.span(pid, 0, 0, 50, "phase", "sim");

        std::vector<TraceWriter::Event> evs = tw.snapshotEvents();
        ASSERT_EQ(evs.size(), 3u);
        int counters = 0;
        for (const TraceWriter::Event &ev : evs)
            counters += ev.ph == 'C';
        EXPECT_EQ(counters, 2);
        tw.finish();
    }

    std::string err;
    Json doc = Json::parse(slurp(tmp.path), &err);
    ASSERT_EQ(err, "");
    const Json *events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);

    int counters = 0;
    for (size_t i = 0; i < events->size(); i++) {
        const Json &ev = events->at(i);
        if (ev.find("ph")->asString() != "C")
            continue;
        counters++;
        EXPECT_EQ(ev.find("name")->asString(),
                  "dramReadBytesPerCycle");
        EXPECT_EQ(ev.find("cat")->asString(), "metrics");
        // Counter samples live on a (pid, name) track: no tid or dur.
        EXPECT_EQ(ev.find("tid"), nullptr);
        EXPECT_EQ(ev.find("dur"), nullptr);
        const Json *args = ev.find("args");
        ASSERT_NE(args, nullptr);
        const Json *value = args->find("value");
        ASSERT_NE(value, nullptr);
        if (ev.find("ts")->asDouble() == 100)
            EXPECT_DOUBLE_EQ(value->asDouble(), 3.5);
        else
            EXPECT_DOUBLE_EQ(value->asDouble(), 4.25);
    }
    EXPECT_EQ(counters, 2);
}

TEST(TraceWriter, FinishIsIdempotent)
{
    TempPath tmp("test_trace_idem.json");
    TraceWriter tw(tmp.path);
    tw.hostSpan("once", 0, 1);
    tw.finish();
    std::string first = slurp(tmp.path);
    tw.finish();    // must not rewrite or crash
    EXPECT_EQ(slurp(tmp.path), first);
    std::string err;
    Json::parse(first, &err);
    EXPECT_EQ(err, "");
}

TEST(TraceWriter, GlobalInstallAndFinish)
{
    EXPECT_EQ(TraceWriter::global(), nullptr);
    TempPath tmp("test_trace_global.json");
    TraceWriter::enableGlobal(tmp.path);
    ASSERT_NE(TraceWriter::global(), nullptr);
    TraceWriter::global()->hostSpan("global span", 0, 3);
    TraceWriter::finishGlobal();
    EXPECT_EQ(TraceWriter::global(), nullptr);

    std::string err;
    Json doc = Json::parse(slurp(tmp.path), &err);
    EXPECT_EQ(err, "");
    EXPECT_NE(doc.find("traceEvents"), nullptr);
}

TEST(TraceWriter, ThreadLabelAppliesToLane)
{
    TempPath tmp("test_trace_label.json");
    {
        TraceWriter::enableGlobal(tmp.path);
        std::thread t([] {
            TraceWriter::setThreadLabel("custom label");
            TraceWriter::global()->hostSpan("w", 0, 1);
        });
        t.join();
        TraceWriter::finishGlobal();
    }
    std::string text = slurp(tmp.path);
    EXPECT_NE(text.find("custom label"), std::string::npos);
}
