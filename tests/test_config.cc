/** @file Unit tests for ArchConfig (Table 1 defaults and overrides). */

#include <gtest/gtest.h>

#include "common/config.hh"

using namespace zcomp;

TEST(Config, Table1Defaults)
{
    ArchConfig cfg;
    EXPECT_EQ(cfg.numCores, 16);
    EXPECT_EQ(cfg.core.issueWidth, 4);
    EXPECT_DOUBLE_EQ(cfg.core.freqGHz, 2.4);
    EXPECT_EQ(cfg.l1.size, 32 * KiB);
    EXPECT_EQ(cfg.l1.assoc, 8);
    EXPECT_EQ(cfg.l1.repl, ReplPolicy::LRU);
    EXPECT_EQ(cfg.l2.size, 1 * MiB);
    EXPECT_EQ(cfg.l2.assoc, 16);
    EXPECT_EQ(cfg.l2.repl, ReplPolicy::SRRIP);
    EXPECT_EQ(cfg.l3.size, 24 * MiB);
    EXPECT_EQ(cfg.l3.assoc, 12);
    EXPECT_EQ(cfg.dram.channels, 4);
    EXPECT_DOUBLE_EQ(cfg.dram.totalBandwidthGBps, 68.0);
    EXPECT_EQ(cfg.noc.hopCycles, 2);
    EXPECT_EQ(cfg.zcomp.logicLatency, 2);
}

TEST(Config, DerivedQuantities)
{
    ArchConfig cfg;
    // 68 GB/s at 2.4 GHz -> ~28.3 bytes/cycle.
    EXPECT_NEAR(cfg.dramBytesPerCycle(), 68.0 / 2.4, 1e-9);
    // 60 ns at 2.4 GHz -> 144 cycles.
    EXPECT_EQ(cfg.dramLatencyCycles(), 144);
}

TEST(Config, ApplyOverride)
{
    ArchConfig cfg;
    EXPECT_TRUE(cfg.applyOverride("numCores=8"));
    EXPECT_EQ(cfg.numCores, 8);
    EXPECT_TRUE(cfg.applyOverride("l3.size=8388608"));
    EXPECT_EQ(cfg.l3.size, 8 * MiB);
    EXPECT_TRUE(cfg.applyOverride("prefetch.l2Stream=0"));
    EXPECT_FALSE(cfg.prefetch.l2Stream);
    EXPECT_TRUE(cfg.applyOverride("zcomp.logicLatency=3"));
    EXPECT_EQ(cfg.zcomp.logicLatency, 3);
    EXPECT_TRUE(cfg.applyOverride("dram.totalBandwidthGBps=34.0"));
    EXPECT_DOUBLE_EQ(cfg.dram.totalBandwidthGBps, 34.0);
}

TEST(Config, UnknownOverrideRejected)
{
    ArchConfig cfg;
    EXPECT_FALSE(cfg.applyOverride("nonsense=1"));
    EXPECT_FALSE(cfg.applyOverride("missingequals"));
}

TEST(Config, SummaryMentionsKeyNumbers)
{
    ArchConfig cfg;
    std::string s = cfg.summary();
    EXPECT_NE(s.find("16 cores"), std::string::npos);
    EXPECT_NE(s.find("2.4 GHz"), std::string::npos);
    EXPECT_NE(s.find("24MB"), std::string::npos);
}

TEST(Config, ApplyOverridesVector)
{
    ArchConfig cfg;
    cfg.applyOverrides({"numCores=4", "l2.size=524288"});
    EXPECT_EQ(cfg.numCores, 4);
    EXPECT_EQ(cfg.l2.size, 512 * KiB);
}

TEST(ConfigDeath, MalformedValueIsFatal)
{
    ArchConfig cfg;
    EXPECT_DEATH(cfg.applyOverride("numCores=abc"),
                 "expected integer");
    EXPECT_DEATH(cfg.applyOverrides({"definitely.unknown=1"}),
                 "unknown configuration override");
}
