/**
 * @file
 * Unit and property tests for the functional ZCOMP semantics,
 * including the worked example of Figure 4 (header 0x911C, 26 bytes
 * written, pointer 0x1000 -> 0x101A).
 */

#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "isa/zcomp_isa.hh"

using namespace zcomp;

namespace {

/** fp32 vector with non-zero values in exactly the given lanes. */
Vec512
sparseVec(std::initializer_list<int> lanes)
{
    Vec512 v = Vec512::zero();
    for (int i : lanes)
        v.setLane<float>(i, static_cast<float>(i) + 1.0f);
    return v;
}

} // namespace

TEST(ZcompIsa, HeaderSizesPerType)
{
    EXPECT_EQ(headerBytes(ElemType::F64), 1);
    EXPECT_EQ(headerBytes(ElemType::F32), 2);
    EXPECT_EQ(headerBytes(ElemType::F16), 4);
    EXPECT_EQ(headerBytes(ElemType::I8), 8);
    EXPECT_EQ(lanesPerVec(ElemType::F32), 16);
    EXPECT_EQ(lanesPerVec(ElemType::I8), 64);
    EXPECT_EQ(maxCompressedBytes(ElemType::F32), 66);
}

TEST(ZcompIsa, Figure4WorkedExample)
{
    // Figure 4: 6 non-zero fp32 elements, comparison result
    // 1001000100011100 (bit 15 .. bit 0) = 0x911C, so the non-zero
    // lanes are {2,3,4,8,12,15}. Total output = 2-byte header +
    // 6*4 bytes = 26 bytes, advancing reg2 from 0x1000 to 0x101A.
    Vec512 v = sparseVec({2, 3, 4, 8, 12, 15});
    uint8_t buf[66];
    ZcompResult r = zcompsInterleaved(v, ElemType::F32, Ccf::EQZ, buf);
    EXPECT_EQ(r.header, 0x911Cu);
    EXPECT_EQ(r.nnz, 6);
    EXPECT_EQ(r.dataBytes, 24);
    EXPECT_EQ(r.totalBytes, 26);
    EXPECT_EQ(0x1000 + r.totalBytes, 0x101A);

    // Header is stored little-endian in the first two bytes.
    EXPECT_EQ(buf[0], 0x1C);
    EXPECT_EQ(buf[1], 0x91);
}

TEST(ZcompIsa, CompressedPayloadKeepsLaneOrder)
{
    Vec512 v = sparseVec({1, 5, 13});
    uint8_t buf[66];
    zcompsInterleaved(v, ElemType::F32, Ccf::EQZ, buf);
    float f0, f1, f2;
    std::memcpy(&f0, buf + 2, 4);
    std::memcpy(&f1, buf + 6, 4);
    std::memcpy(&f2, buf + 10, 4);
    EXPECT_FLOAT_EQ(f0, 2.0f);
    EXPECT_FLOAT_EQ(f1, 6.0f);
    EXPECT_FLOAT_EQ(f2, 14.0f);
}

TEST(ZcompIsa, AllZeroVectorCompressesToHeaderOnly)
{
    uint8_t buf[66];
    ZcompResult r = zcompsInterleaved(Vec512::zero(), ElemType::F32,
                                      Ccf::EQZ, buf);
    EXPECT_EQ(r.header, 0u);
    EXPECT_EQ(r.nnz, 0);
    EXPECT_EQ(r.totalBytes, 2);

    Vec512 out;
    ZcompResult e = zcomplInterleaved(buf, ElemType::F32, out);
    EXPECT_EQ(e.totalBytes, 2);
    EXPECT_TRUE(out == Vec512::zero());
}

TEST(ZcompIsa, DenseVectorIsIncompressible)
{
    Vec512 v;
    for (int i = 0; i < 16; i++)
        v.setLane<float>(i, 1.0f + i);
    uint8_t buf[66];
    ZcompResult r = zcompsInterleaved(v, ElemType::F32, Ccf::EQZ, buf);
    EXPECT_EQ(r.nnz, 16);
    EXPECT_EQ(r.totalBytes, 66);    // 64 payload + 2 header
}

TEST(ZcompIsa, LtezFusesRelu)
{
    Vec512 v = Vec512::zero();
    v.setLane<float>(0, -3.0f);
    v.setLane<float>(1, 2.0f);
    v.setLane<float>(2, 0.0f);
    v.setLane<float>(3, -0.0f);   // sign bit set, magnitude zero
    v.setLane<float>(4, 5.0f);
    uint8_t buf[66];
    ZcompResult r = zcompsInterleaved(v, ElemType::F32, Ccf::LTEZ, buf);
    EXPECT_EQ(r.header, (1u << 1) | (1u << 4));
    EXPECT_EQ(r.nnz, 2);

    Vec512 out;
    zcomplInterleaved(buf, ElemType::F32, out);
    EXPECT_FLOAT_EQ(out.lane<float>(0), 0.0f);  // ReLU'd away
    EXPECT_FLOAT_EQ(out.lane<float>(1), 2.0f);
    EXPECT_FLOAT_EQ(out.lane<float>(4), 5.0f);
}

TEST(ZcompIsa, EqzKeepsNegativeValues)
{
    Vec512 v = Vec512::zero();
    v.setLane<float>(7, -1.25f);
    uint8_t buf[66];
    ZcompResult r = zcompsInterleaved(v, ElemType::F32, Ccf::EQZ, buf);
    EXPECT_EQ(r.nnz, 1);
    Vec512 out;
    zcomplInterleaved(buf, ElemType::F32, out);
    EXPECT_FLOAT_EQ(out.lane<float>(7), -1.25f);
}

TEST(ZcompIsa, SeparateHeaderSplitsMetadata)
{
    Vec512 v = sparseVec({0, 15});
    uint8_t data[64];
    uint8_t hdr[2];
    ZcompResult r =
        zcompsSeparate(v, ElemType::F32, Ccf::EQZ, data, hdr);
    EXPECT_EQ(r.nnz, 2);
    EXPECT_EQ(r.dataBytes, 8);
    EXPECT_EQ(r.totalBytes, 8);     // payload only; header is decoupled

    Vec512 out;
    ZcompResult e = zcomplSeparate(data, hdr, ElemType::F32, out);
    EXPECT_EQ(e.totalBytes, 8);
    EXPECT_TRUE(out == v);
}

TEST(ZcompIsa, Int8SignHandling)
{
    Vec512 v = Vec512::zero();
    v.setLane<int8_t>(0, -5);
    v.setLane<int8_t>(1, 7);
    v.setLane<int8_t>(63, -128);
    uint8_t buf[72];
    ZcompResult eqz = zcompsInterleaved(v, ElemType::I8, Ccf::EQZ, buf);
    EXPECT_EQ(eqz.nnz, 3);
    ZcompResult ltez = zcompsInterleaved(v, ElemType::I8, Ccf::LTEZ, buf);
    EXPECT_EQ(ltez.nnz, 1);     // only lane 1 is positive
    EXPECT_EQ(ltez.header, 2u);
}

// ---------------------------------------------------------------------
// Property tests: round-trip over random vectors at swept sparsities
// for every element type and both header variants.
// ---------------------------------------------------------------------

class ZcompRoundTrip
    : public ::testing::TestWithParam<std::tuple<ElemType, double>>
{
};

TEST_P(ZcompRoundTrip, ExpandInvertsCompressEqz)
{
    auto [etype, sparsity] = GetParam();
    Rng rng(static_cast<uint64_t>(sparsity * 1000) + 77 +
            static_cast<uint64_t>(etype));
    const int eb = elemBytes(etype);
    const int lanes = lanesPerVec(etype);

    for (int iter = 0; iter < 200; iter++) {
        Vec512 v = Vec512::zero();
        for (int i = 0; i < lanes; i++) {
            if (!rng.chance(sparsity)) {
                // Non-zero raw lane bits (any bit pattern except 0).
                uint64_t raw = rng.next64() | 1;
                std::memcpy(v.bytes + i * eb, &raw,
                            static_cast<size_t>(eb));
            }
        }
        uint8_t buf[72];
        ZcompResult c = zcompsInterleaved(v, etype, Ccf::EQZ, buf);
        Vec512 out;
        ZcompResult e = zcomplInterleaved(buf, etype, out);
        EXPECT_EQ(c.header, e.header);
        EXPECT_EQ(c.totalBytes, e.totalBytes);
        EXPECT_TRUE(out == v);

        // Separate-header variant agrees with interleaved.
        uint8_t data[64], hdr[8];
        ZcompResult cs = zcompsSeparate(v, etype, Ccf::EQZ, data, hdr);
        EXPECT_EQ(cs.header, c.header);
        Vec512 out2;
        zcomplSeparate(data, hdr, etype, out2);
        EXPECT_TRUE(out2 == v);
    }
}

TEST_P(ZcompRoundTrip, CompressedSizeMatchesSparsity)
{
    auto [etype, sparsity] = GetParam();
    Rng rng(42);
    const int eb = elemBytes(etype);
    const int lanes = lanesPerVec(etype);
    uint64_t total_bytes = 0;
    const int iters = 2000;
    for (int iter = 0; iter < iters; iter++) {
        Vec512 v = Vec512::zero();
        for (int i = 0; i < lanes; i++) {
            if (!rng.chance(sparsity)) {
                uint64_t raw = rng.next64() | 1;
                std::memcpy(v.bytes + i * eb, &raw,
                            static_cast<size_t>(eb));
            }
        }
        uint8_t buf[72];
        total_bytes += static_cast<uint64_t>(
            zcompsInterleaved(v, etype, Ccf::EQZ, buf).totalBytes);
    }
    double expect = iters * (headerBytes(etype) +
                             (1.0 - sparsity) * 64.0);
    double got = static_cast<double>(total_bytes);
    EXPECT_NEAR(got / expect, 1.0, 0.05);
}

INSTANTIATE_TEST_SUITE_P(
    AllTypesAndSparsities, ZcompRoundTrip,
    ::testing::Combine(
        ::testing::Values(ElemType::F32, ElemType::F16, ElemType::I8,
                          ElemType::I32, ElemType::F64),
        ::testing::Values(0.0, 0.25, 0.53, 0.9, 1.0)));
