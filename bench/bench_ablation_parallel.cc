/**
 * @file
 * Section 4.3 / Figure 7 ablation: parallelization strategies for
 * ZCOMP compression.
 *
 *  - "naive serialized" (Figure 7a): one compressed stream shared by
 *    everyone - modeled as a single core with a single dependency
 *    chain (the compressed-pointer handoff fully serializes).
 *  - "partitioned" (Figure 7b): each of the 16 threads compresses its
 *    own chunk as an independent stream.
 *  - sub-block unrolling: each thread's chunk further sliced into
 *    1/2/4/8 independent sub-streams, the loop-unrolling enabler.
 */

#include <iostream>

#include "bench/bench_common.hh"
#include "common/log.hh"
#include "common/table.hh"
#include "sim/kernels.hh"

using namespace zcomp;

namespace {

double
runCase(int cores, int sub_blocks, size_t elems)
{
    ArchConfig cfg;
    cfg.numCores = cores;
    ExecContext ctx(cfg);
    ReluExperimentConfig rc;
    rc.elems = elems;
    rc.subBlocks = sub_blocks;
    return runReluExperiment(ctx, ReluImpl::Zcomp, rc).total().cycles;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::parseBenchArgs(argc, argv,
        "Figure 7 ablation: ZCOMP parallelization strategies");

    const size_t elems = 16 * 262144;   // 16 MiB feature map

    Table table("ReLU + retrieval on a 16 MiB map (zcomp)");
    table.setHeader({"strategy", "cycles", "speedup vs naive"});
    double naive = runCase(1, 1, elems);
    table.addRow({"naive serialized (Fig 7a)", Table::fmt(naive, 0),
                  "1.00x"});
    for (int subs : {1, 2, 4, 8}) {
        double cycles = runCase(16, subs, elems);
        table.addRow({format("partitioned, 16 threads, %d sub-block%s",
                             subs, subs > 1 ? "s" : ""),
                      Table::fmt(cycles, 0),
                      Table::fmt(naive / cycles, 2) + "x"});
    }
    table.print(std::cout);

    std::cout << "\npaper: partitioned compression avoids the heavy "
                 "serialization of the shared\ncompressed-data "
                 "pointer; sub-block unrolling restores instruction "
                 "throughput\n(matched to the compiler's unrolling of "
                 "the baseline).\n";
    return 0;
}
