/**
 * @file
 * Shared helpers for the figure-reproduction bench binaries: the
 * scaled-down model configurations used for full-network simulation
 * (documented in EXPERIMENTS.md), functional execution driving, and
 * the per-policy study runner behind Figures 2, 13 and 14.
 */

#ifndef ZCOMP_BENCH_BENCH_COMMON_HH
#define ZCOMP_BENCH_BENCH_COMMON_HH

#include <memory>
#include <string>
#include <vector>

#include "dnn/models.hh"
#include "sim/network_sim.hh"

namespace zcomp::bench {

/**
 * Simulation-scale model configuration. The paper trains at batch 64
 * (ResNet: 128) and infers at batch 4 on full-resolution inputs;
 * single-host simulation uses the batches/images below, chosen so the
 * early-layer feature maps preserve their cache-residency regimes
 * (see EXPERIMENTS.md).
 */
struct StudyModel
{
    ModelId id;
    int trainBatch;
    int inferBatch;
    int imageSize;      //!< 0 = native
    double widthScale;  //!< Inception-ResNet channel scale
};

/** The five-network study set (Section 5.3). */
const std::vector<StudyModel> &studyModels();

/** Build + functionally execute one model (forward [+ backward]). */
struct PreparedNet
{
    std::unique_ptr<ExecContext> ctx;
    std::unique_ptr<Network> net;
};

PreparedNet prepareNet(const StudyModel &m, bool training,
                       uint64_t seed = 1);

/** One (model, mode) row of the Figures 13/14 study. */
struct StudyRow
{
    std::string model;
    bool training = false;
    NetworkSimResult results[numIoPolicies];
};

/**
 * Run the full five-network study: every model in both training and
 * inference mode under all three policies.
 * @param quick restrict to fewer models (smoke runs)
 */
std::vector<StudyRow> runFullStudy(bool training_only = false,
                                   bool inference_only = false);

/** Print the Table 1 machine banner. */
void printBanner(const std::string &title);

} // namespace zcomp::bench

#endif // ZCOMP_BENCH_BENCH_COMMON_HH
