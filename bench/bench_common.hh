/**
 * @file
 * Shared helpers for the figure-reproduction bench binaries: the
 * scaled-down model configurations used for full-network simulation
 * (documented in EXPERIMENTS.md), functional execution driving, and
 * the per-policy study runner behind Figures 2, 13 and 14.
 *
 * The study runner fans its (model, mode) cells out over a
 * ThreadPool - each cell owns a private ExecContext/MemoryHierarchy,
 * prepares its network once, and times the three I/O policies
 * sequentially against those shared read-only tensors. Rows come
 * back in the same deterministic order as the old sequential loop
 * and with bitwise-identical numbers for any worker count;
 * parallelism only ever spans independent simulations, never the
 * inside of one timing run.
 */

#ifndef ZCOMP_BENCH_BENCH_COMMON_HH
#define ZCOMP_BENCH_BENCH_COMMON_HH

#include <memory>
#include <string>
#include <vector>

#include "common/json.hh"
#include "common/thread_pool.hh"
#include "dnn/models.hh"
#include "sim/network_sim.hh"

namespace zcomp::bench {

/**
 * Simulation-scale model configuration. The paper trains at batch 64
 * (ResNet: 128) and infers at batch 4 on full-resolution inputs;
 * single-host simulation uses the batches/images below, chosen so the
 * early-layer feature maps preserve their cache-residency regimes
 * (see EXPERIMENTS.md).
 */
struct StudyModel
{
    ModelId id;
    int trainBatch;
    int inferBatch;
    int imageSize;      //!< 0 = native
    double widthScale;  //!< Inception-ResNet channel scale
};

/** The five-network study set (Section 5.3). */
const std::vector<StudyModel> &studyModels();

/** Build + functionally execute one model (forward [+ backward]). */
struct PreparedNet
{
    std::unique_ptr<ExecContext> ctx;
    std::unique_ptr<Network> net;
};

PreparedNet prepareNet(const StudyModel &m, bool training,
                       uint64_t seed = 1);

/** One (model, mode) row of the Figures 13/14 study. */
struct StudyRow
{
    std::string model;
    bool training = false;
    NetworkSimResult results[numIoPolicies];

    // Harness wall-clock (host seconds, not simulated cycles), logged
    // per row so BENCH_*.json entries can track runner speed.
    double prepMillis = 0;
    double simMillis[numIoPolicies] = {0, 0, 0};

    /**
     * gem5-style stats-tree snapshot of the cell's system after all
     * three policy runs (StatGroup::dumpJson() form). Only populated
     * when a --report is being collected; Null otherwise so the
     * default path stays cheap.
     */
    Json stats;
};

/**
 * Serialize one StudyRow into the report schema: model/mode, prep and
 * per-policy sim wall-clock, and for each policy the total RunStats
 * (cycles, breakdown, per-level traffic) plus per-layer attribution.
 */
Json studyRowToJson(const StudyRow &row);

/** Knobs for runStudy(); the defaults reproduce the full study. */
struct StudyOptions
{
    bool trainingOnly = false;
    bool inferenceOnly = false;
    std::vector<StudyModel> models; //!< empty = studyModels()
    ThreadPool *pool = nullptr;     //!< null = ThreadPool::global()
};

/**
 * Run every (model, mode) cell of the study under all three
 * policies, in parallel across cells on the pool. Row order and
 * simulation numbers are independent of the worker count.
 */
std::vector<StudyRow> runStudy(const StudyOptions &opt);

/**
 * Run the full five-network study: every model in both training and
 * inference mode under all three policies.
 */
std::vector<StudyRow> runFullStudy(bool training_only = false,
                                   bool inference_only = false);

/**
 * Parse the arguments shared by all bench mains and print the Table 1
 * machine banner. fatal()s on unknown arguments.
 *
 *   --jobs N, -j N   size the global ThreadPool (env: ZCOMP_JOBS)
 *   --quiet, -q      silence inform()/warn() (setQuiet)
 *   --report PATH    write a structured JSON RunReport at exit
 *   --trace PATH     write a Perfetto/Chrome trace at exit
 *
 * --report and --trace install the process-wide RunReport/TraceWriter
 * and register atexit flushes, so every bench binary gets them
 * without touching its main(). With neither flag the run is
 * byte-identical to before.
 */
void parseBenchArgs(int argc, char **argv, const std::string &title);

/** Print the Table 1 machine banner. */
void printBanner(const std::string &title);

} // namespace zcomp::bench

#endif // ZCOMP_BENCH_BENCH_COMMON_HH
