/**
 * @file
 * Shared helpers for the figure-reproduction bench binaries: the
 * scaled-down model configurations used for full-network simulation
 * (documented in EXPERIMENTS.md), functional execution driving, and
 * the per-policy study runner behind Figures 2, 13 and 14.
 *
 * The study runner fans its (model, mode) cells out over a
 * ThreadPool - each cell owns a private ExecContext/MemoryHierarchy,
 * prepares its network once, and times every studyPolicies() I/O
 * policy sequentially against those shared read-only tensors. Rows come
 * back in the same deterministic order as the old sequential loop
 * and with bitwise-identical numbers for any worker count;
 * parallelism only ever spans independent simulations, never the
 * inside of one timing run.
 *
 * The runner is fault-tolerant and resumable (see EXPERIMENTS.md):
 *  - every completed cell can be written to an on-disk ResultCache
 *    (--cache DIR) keyed by a content hash of the machine config,
 *    the cell parameters and a code-schema version, and --resume
 *    restores those cells with bitwise-identical rows instead of
 *    re-simulating them;
 *  - a cell that throws or overruns --cell-timeout is retried up to
 *    --retries times with exponential backoff and then recorded as a
 *    failed row instead of killing the whole sweep; the process only
 *    exits non-zero once more than --fail-budget cells have failed.
 */

#ifndef ZCOMP_BENCH_BENCH_COMMON_HH
#define ZCOMP_BENCH_BENCH_COMMON_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/arena.hh"
#include "common/json.hh"
#include "common/thread_pool.hh"
#include "dnn/models.hh"
#include "sim/network_sim.hh"

namespace zcomp::bench {

/**
 * Simulation-scale model configuration. The paper trains at batch 64
 * (ResNet: 128) and infers at batch 4 on full-resolution inputs;
 * single-host simulation uses the batches/images below, chosen so the
 * early-layer feature maps preserve their cache-residency regimes
 * (see EXPERIMENTS.md).
 */
struct StudyModel
{
    ModelId id;
    int trainBatch;
    int inferBatch;
    int imageSize;      //!< 0 = native
    double widthScale;  //!< Inception-ResNet channel scale
};

/** The five-network study set (Section 5.3). */
const std::vector<StudyModel> &studyModels();

/** Build + functionally execute one model (forward [+ backward]). */
struct PreparedNet
{
    std::unique_ptr<ExecContext> ctx;
    std::unique_ptr<Network> net;
};

/**
 * @param arena optional caller-owned bump arena backing every tensor
 *        and scratch buffer of the prepared network (see
 *        ExecContext(const ArchConfig &, BumpArena *)). The study
 *        runner passes one arena per (model, mode) cell and resets it
 *        between retry attempts so a faulted attempt's memory is
 *        reclaimed wholesale.
 */
PreparedNet prepareNet(const StudyModel &m, bool training,
                       uint64_t seed = 1, BumpArena *arena = nullptr);

/** How a study cell's row came to be. */
enum class CellStatus
{
    Simulated,  //!< freshly simulated in this process
    Cached,     //!< restored from the --cache result cache
    Failed,     //!< all attempts threw or timed out
};

/**
 * One I/O policy the study sweeps: a registered CompressionScheme
 * name paired with its NetworkSim dispatch value.
 */
struct StudyPolicy
{
    std::string name;   //!< == the CompressionScheme's name()
    IoPolicy policy;
};

/**
 * The policies every study cell runs, derived once from the scheme
 * registry (the registered schemes that have a NetworkSim IoPolicy
 * behind them) in registration order - which matches the historical
 * uncompressed / avx512-comp / zcomp sequence, keeping row layout,
 * report keys and figure output identical.
 */
const std::vector<StudyPolicy> &studyPolicies();

/** One (model, mode) row of the Figures 13/14 study. */
struct StudyRow
{
    std::string model;
    bool training = false;

    /** Per-policy simulation results, indexed like studyPolicies().
     *  Empty on failed rows; use result(name) for keyed access. */
    std::vector<NetworkSimResult> results;

    // Harness wall-clock (host seconds, not simulated cycles), logged
    // per row so BENCH_*.json entries can track runner speed.
    double prepMillis = 0;
    std::vector<double> simMillis;

    /** The results entry for one policy/scheme name; panics when the
     *  name is not a study policy or the row carries no results. */
    const NetworkSimResult &result(const std::string &policy) const;

    /**
     * gem5-style stats-tree snapshot of the cell's system after all
     * three policy runs (StatGroup::dumpJson() form). Only populated
     * when a --report is being collected; Null otherwise so the
     * default path stays cheap.
     */
    Json stats;

    CellStatus status = CellStatus::Simulated;
    std::string error;  //!< failure reason (status == Failed only)
    int attempts = 1;   //!< simulation attempts consumed
};

/**
 * Serialize one StudyRow into the report schema: model/mode, prep and
 * per-policy sim wall-clock, and for each policy the total RunStats
 * (cycles, breakdown, per-level traffic) plus per-layer attribution.
 * Successful rows serialize identically whether simulated or cached
 * (the determinism guarantee behind --resume); failed rows serialize
 * as { model, mode, failed, error, attempts }.
 */
Json studyRowToJson(const StudyRow &row);

/**
 * Rebuild a successful StudyRow from its studyRowToJson() form.
 * Round-trips exactly (doubles print with full precision, integers
 * verbatim), so a cached row re-serializes byte-identically. Throws
 * std::runtime_error on missing/mistyped fields or failed rows, so
 * corrupt cache entries degrade to a re-simulation.
 */
StudyRow studyRowFromJson(const Json &j);

/**
 * Code-schema version folded into every result-cache key. Bump it
 * whenever simulation semantics, the row schema or the cell
 * preparation change, so stale caches miss instead of resurrecting
 * rows the current code would not reproduce.
 */
constexpr const char *studyCellSchemaVersion = "zcomp-study-cell-v3";

/**
 * Canonical result-cache key of one (model, mode) study cell: a JSON
 * dump of the schema version, the full Table 1 machine config and
 * every cell parameter (including whether a stats snapshot is
 * collected). Two runs share a key exactly when they are guaranteed
 * to produce bitwise-identical rows.
 */
std::string studyCellKey(const StudyModel &m, bool training,
                         bool want_stats);

/**
 * Resilience knobs of the study runner, normally filled in from the
 * CLI (--cache/--resume/--retries/--cell-timeout/--fail-budget) via
 * parseBenchArgs(). Tests construct their own and point
 * StudyOptions::harness at it.
 */
struct StudyHarness
{
    std::string cacheDir;       //!< empty = no result cache
    bool resume = false;        //!< restore cached cells (needs cacheDir)
    int retries = 0;            //!< extra attempts after a cell fault
    double cellTimeoutSec = 0;  //!< per-attempt budget; 0 = unlimited
    int failBudget = 0;         //!< failed cells tolerated before exit(1)
    int backoffMillis = 50;     //!< base retry backoff (doubles per retry)
    bool progress = false;      //!< live sweep status line (--progress)

    // --- out-of-process execution (--isolate-cells; DESIGN.md §4.11)
    bool isolateCells = false;  //!< one worker process per cell
    int workers = 2;            //!< concurrent worker processes
    /** Per-cell wall-clock *hard* deadline enforced by SIGKILL from
     *  the supervisor; 0 = none. Unlike --cell-timeout this catches
     *  cells that SIGSEGV'd into a handler, deadlocked or spin. */
    double hardTimeoutSec = 0;
    /** Max seconds of worker status-channel silence before the
     *  supervisor declares it hung and SIGKILLs it; 0 = none. */
    double heartbeatTimeoutSec = 30;
    /** The --fault-spec string verbatim, re-armed in every worker so
     *  isolated and in-process sweeps inject identically. */
    std::string faultSpec;
    /** Worker re-invocation argv; empty = /proc/self/exe plus the
     *  harness flags above (tests override to add their own). */
    std::vector<std::string> workerArgv;
};

/** The process-wide harness knobs parseBenchArgs() populates. */
StudyHarness &studyHarness();

/** Knobs for runStudy(); the defaults reproduce the full study. */
struct StudyOptions
{
    bool trainingOnly = false;
    bool inferenceOnly = false;
    std::vector<StudyModel> models; //!< empty = studyModels()
    ThreadPool *pool = nullptr;     //!< null = ThreadPool::global()

    /** Resilience knobs; null = the CLI-driven studyHarness(). */
    const StudyHarness *harness = nullptr;

    /**
     * Test hook, invoked at the start of every cell attempt (before
     * any simulation work). A throw from the hook is treated exactly
     * like a cell fault: retried per the harness, then recorded as a
     * failed row. A hook that sleeps past the cell timeout exercises
     * the timeout path.
     */
    std::function<void(const StudyModel &m, bool training, int attempt)>
        faultHook;
};

/**
 * Run every (model, mode) cell of the study under every
 * studyPolicies() policy, in parallel across cells on the pool. Row order and
 * simulation numbers are independent of the worker count and of
 * which cells were restored from the cache.
 *
 * Faulting cells never abort the process: they come back as rows
 * with status == CellStatus::Failed. Only when more than
 * harness.failBudget cells failed does runStudy() exit(1) - after
 * appending every row (including the failures) to the global
 * RunReport, so the partial report survives for inspection.
 */
std::vector<StudyRow> runStudy(const StudyOptions &opt);

/**
 * Run the full five-network study: every model in both training and
 * inference mode under every study policy.
 */
std::vector<StudyRow> runFullStudy(bool training_only = false,
                                   bool inference_only = false);

/**
 * Parse the arguments shared by all bench mains and print the Table 1
 * machine banner. fatal()s on unknown arguments.
 *
 *   --jobs N, -j N     size the global ThreadPool (env: ZCOMP_JOBS)
 *   --quiet, -q        silence inform()/warn() (setQuiet)
 *   --report PATH      write a structured JSON RunReport at exit
 *   --trace PATH       write a Perfetto/Chrome trace at exit
 *   --cache DIR        record completed study cells on disk
 *   --resume           restore cached cells instead of re-simulating
 *   --retries N        retry a faulting cell N times (backoff)
 *   --cell-timeout S   per-attempt budget in seconds (fractional ok)
 *   --fail-budget N    tolerate up to N failed cells (default 0)
 *   --fault-spec SPEC  arm deterministic fault injection
 *                      (site:prob[:seed[:max]][,...]; common/fault.hh)
 *   --metrics PATH     append time-series telemetry JSONL (schema
 *                      zcomp-metrics-v1; cycle-domain samples + host
 *                      sweep progress; common/metrics.hh)
 *   --metrics-interval N  cycles between samples (default 100000)
 *   --progress         live one-line sweep status on stderr (TTY
 *                      only, off under --quiet)
 *   --isolate-cells    run every study cell in its own worker
 *                      process (crash isolation; DESIGN.md §4.11)
 *   --workers N        concurrent worker processes (default 2;
 *                      needs --isolate-cells)
 *   --hard-timeout S   per-cell wall-clock hard deadline - a cell
 *                      still running after S seconds is SIGKILLed
 *                      and recorded as a typed failed row (needs
 *                      --isolate-cells)
 *   --heartbeat-timeout S  SIGKILL a worker silent for S seconds
 *                      (default 30; needs --isolate-cells)
 *
 * --report and --trace install the process-wide RunReport/TraceWriter
 * and register atexit flushes, so every bench binary gets them
 * without touching its main(). The resilience flags land in
 * studyHarness(), which runStudy() consults by default. With no
 * flags the run is byte-identical to before.
 */
void parseBenchArgs(int argc, char **argv, const std::string &title);

/**
 * Worker-mode entry point for --isolate-cells. When argv carries the
 * hidden `--worker-cell <spec>` flag this computes exactly that one
 * study cell, speaking the supervisor's JSONL protocol on stdout
 * (hello / heartbeat / result records, schema zcomp-worker-v1),
 * stores the row into --cache when given one, and never returns
 * (std::exit). Without the flag it is a no-op.
 *
 * parseBenchArgs() calls this first, so every bench binary doubles
 * as its own worker; test binaries with a custom main() call it
 * before InitGoogleTest for the same reason.
 */
void maybeRunWorkerCell(int argc, char **argv);

/** Print the Table 1 machine banner. */
void printBanner(const std::string &title);

} // namespace zcomp::bench

#endif // ZCOMP_BENCH_BENCH_COMMON_HH
