/**
 * @file
 * Section 3.3 ablation: hardware prefetching under ZCOMP streams.
 *
 * ZCOMP expansion is sequentially dependent (header -> size -> next
 * address), so it leans on the L2 stream prefetcher. Paper: "we
 * observe L2 prefetcher accuracy of 98-99% and coverage of 94-97%"
 * on the analyzed workloads, and the latency is effectively hidden.
 */

#include <iostream>

#include "bench/bench_common.hh"
#include "common/table.hh"
#include "sim/kernels.hh"

using namespace zcomp;

namespace {

struct Case
{
    double cycles;
    double accuracy;
    double coverage;
};

Case
runCase(bool prefetch, size_t elems)
{
    ArchConfig cfg;
    cfg.prefetch.l2Stream = prefetch;
    cfg.prefetch.l1IpStride = prefetch;
    ExecContext ctx(cfg);
    ReluExperimentConfig rc;
    rc.elems = elems;
    RunStats total =
        runReluExperiment(ctx, ReluImpl::Zcomp, rc).total();
    return {total.cycles, total.traffic.prefetchAccuracy(),
            total.traffic.prefetchCoverage()};
}

} // namespace

int
main(int argc, char **argv)
{
    bench::parseBenchArgs(argc, argv,
        "Section 3.3 ablation: prefetching for ZCOMP streams");

    Table table("zcomp ReLU + retrieval, prefetchers on vs off");
    table.setHeader({"feature map", "pf off", "pf on", "speedup",
                     "accuracy", "coverage"});
    for (size_t elems : {16u * 65536u, 16u * 262144u,
                         16u * 1024u * 1024u}) {
        Case off = runCase(false, elems);
        Case on = runCase(true, elems);
        table.addRow(
            {Table::fmtBytes(static_cast<double>(elems) * 4),
             Table::fmt(off.cycles, 0), Table::fmt(on.cycles, 0),
             Table::fmt(off.cycles / on.cycles, 2) + "x",
             Table::fmtPct(on.accuracy), Table::fmtPct(on.coverage)});
    }
    table.print(std::cout);

    std::cout << "\npaper: accuracy 98-99%, coverage 94-97%; "
                 "prefetching hides the sequential\nheader/data "
                 "dependence of zcompl.\n";
    return 0;
}
