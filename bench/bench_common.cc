#include "bench/bench_common.hh"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>

#include "common/log.hh"
#include "common/report.hh"
#include "common/stats.hh"
#include "common/trace_writer.hh"

namespace zcomp::bench {

namespace {

using Clock = std::chrono::steady_clock;

double
msSince(Clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
}

} // namespace

const std::vector<StudyModel> &
studyModels()
{
    // Batches/images scaled from the paper's 64 (ResNet 128) / 4 so
    // that early-layer feature maps keep their cache-residency
    // regimes on a single host (see EXPERIMENTS.md).
    static const std::vector<StudyModel> models = {
        {ModelId::AlexNet, 16, 2, 0, 1.0},
        {ModelId::GoogLeNet, 4, 1, 0, 1.0},
        {ModelId::InceptionResnetV2, 4, 1, 0, 0.5},
        {ModelId::Resnet32, 64, 4, 0, 1.0},
        {ModelId::Vgg16, 3, 1, 0, 1.0},
    };
    return models;
}

PreparedNet
prepareNet(const StudyModel &m, bool training, uint64_t seed)
{
    PreparedNet p;
    ArchConfig cfg;
    p.ctx = std::make_unique<ExecContext>(cfg);

    ModelOptions opt;
    opt.batch = training ? m.trainBatch : m.inferBatch;
    opt.imageSize = m.imageSize;
    opt.widthScale = m.widthScale;
    p.net = buildModel(m.id, p.ctx->vs(), opt);
    p.net->build(training, seed);

    Rng rng(seed + 17);
    p.net->fillSyntheticInput(rng);
    p.net->forward();
    if (training) {
        std::vector<int> labels(
            static_cast<size_t>(opt.batch));
        for (size_t i = 0; i < labels.size(); i++)
            labels[i] = static_cast<int>(rng.below(
                static_cast<uint64_t>(opt.classes)));
        p.net->lossAndBackward(labels);
    }
    return p;
}

namespace {

/**
 * One (model, mode) study cell: build + functionally execute the
 * network (the preparation tensors are then shared read-only by the
 * policy runs), and time all three policies back to back. Each cell
 * owns its ExecContext and MemoryHierarchy, so cells are mutually
 * independent; the policies within a cell stay sequential because
 * they share the cell's simulated address space.
 */
StudyRow
runStudyCell(const StudyModel &m, bool training)
{
    const char *mode = training ? "training" : "inference";
    inform("preparing %s (%s)...", modelName(m.id), mode);
    TraceWriter *tw = TraceWriter::global();
    std::string cell =
        std::string(modelName(m.id)) + " (" + mode + ")";

    Clock::time_point t0 = Clock::now();
    double tus0 = tw ? tw->nowUs() : 0;
    PreparedNet p = prepareNet(m, training);
    StudyRow row;
    row.model = modelName(m.id);
    row.training = training;
    row.prepMillis = msSince(t0);
    if (tw)
        tw->hostSpan("prep " + cell, tus0, tw->nowUs());

    NetworkSim sim(*p.ctx, *p.net);
    for (int pol = 0; pol < numIoPolicies; pol++) {
        NetworkSimConfig cfg;
        cfg.policy = static_cast<IoPolicy>(pol);
        cfg.traceLabel = cell;
        Clock::time_point t1 = Clock::now();
        double tus1 = tw ? tw->nowUs() : 0;
        row.results[pol] = sim.run(cfg);
        row.simMillis[pol] = msSince(t1);
        if (tw) {
            tw->hostSpan(std::string("sim ") +
                             ioPolicyName(cfg.policy) + " " + cell,
                         tus1, tw->nowUs());
        }
    }

    // Snapshot the cell's full stats tree only when a report wants
    // it. Each policy run resets the counters (coldCaches), so the
    // tree reflects the final (Zcomp) run; the per-policy numbers
    // live in results[] either way.
    if (RunReport::global()) {
        StatGroup sg("system");
        p.ctx->sys().dumpStats(sg);
        row.stats = sg.dumpJson();
    }
    inform("%s (%s) row done: prep %.0f ms, sim %.0f/%.0f/%.0f ms",
           modelName(m.id), mode, row.prepMillis, row.simMillis[0],
           row.simMillis[1], row.simMillis[2]);
    return row;
}

} // namespace

Json
studyRowToJson(const StudyRow &row)
{
    Json j = Json::object();
    j["model"] = row.model;
    j["mode"] = row.training ? "training" : "inference";
    j["prepMillis"] = row.prepMillis;

    Json &pols = j["policies"];
    pols = Json::object();
    for (int pol = 0; pol < numIoPolicies; pol++) {
        const NetworkSimResult &res = row.results[pol];
        Json p = Json::object();
        p["simMillis"] = row.simMillis[pol];
        p["total"] = runStatsToJson(res.total);

        Json layers = Json::array();
        for (const LayerPassStats &lp : res.layers) {
            Json l = Json::object();
            l["name"] = lp.name;
            l["backward"] = lp.backward;
            l["stats"] = runStatsToJson(lp.stats);
            layers.push(std::move(l));
        }
        p["layers"] = std::move(layers);
        pols[ioPolicyName(static_cast<IoPolicy>(pol))] = std::move(p);
    }
    if (!row.stats.isNull())
        j["stats"] = row.stats;
    return j;
}

std::vector<StudyRow>
runStudy(const StudyOptions &opt)
{
    const std::vector<StudyModel> &models =
        opt.models.empty() ? studyModels() : opt.models;
    ThreadPool &pool = opt.pool ? *opt.pool : ThreadPool::global();

    struct Cell
    {
        StudyModel m;
        bool training;
    };
    std::vector<Cell> cells;
    for (const StudyModel &m : models) {
        for (int mode = 0; mode < 2; mode++) {
            bool training = mode == 0;
            if (training && opt.inferenceOnly)
                continue;
            if (!training && opt.trainingOnly)
                continue;
            cells.push_back({m, training});
        }
    }

    // Fan the cells out; collecting the futures in submission order
    // keeps the row order (and hence the figure output) identical to
    // the sequential loop. With a 1-job pool, submit() runs inline
    // and this *is* the sequential loop.
    std::vector<std::future<StudyRow>> futs;
    futs.reserve(cells.size());
    for (const Cell &cell : cells) {
        StudyModel m = cell.m;
        bool training = cell.training;
        futs.push_back(pool.submit(
            [m, training] { return runStudyCell(m, training); }));
    }
    std::vector<StudyRow> rows;
    rows.reserve(futs.size());
    for (std::future<StudyRow> &f : futs)
        rows.push_back(f.get());

    // Rows land in the report here, after the ordered collection
    // above, so the report's row order matches the printed tables no
    // matter how the pool scheduled the cells.
    if (RunReport *rep = RunReport::global()) {
        for (const StudyRow &row : rows)
            rep->addRow(studyRowToJson(row));
    }
    return rows;
}

std::vector<StudyRow>
runFullStudy(bool training_only, bool inference_only)
{
    StudyOptions opt;
    opt.trainingOnly = training_only;
    opt.inferenceOnly = inference_only;
    return runStudy(opt);
}

namespace {

/**
 * Match "--name V" / "--name=V"; on a hit *value points at V and i is
 * advanced past any consumed extra argv slot.
 */
bool
valueArg(int argc, char **argv, int &i, const char *name,
         const char *shortName, const char **value)
{
    const char *arg = argv[i];
    if (std::strcmp(arg, name) == 0 ||
        (shortName && std::strcmp(arg, shortName) == 0)) {
        fatal_if(i + 1 >= argc, "%s needs a value", arg);
        *value = argv[++i];
        return true;
    }
    size_t n = std::strlen(name);
    if (std::strncmp(arg, name, n) == 0 && arg[n] == '=') {
        *value = arg + n + 1;
        return true;
    }
    return false;
}

} // namespace

void
parseBenchArgs(int argc, char **argv, const std::string &title)
{
    std::string report_path, trace_path;
    for (int i = 1; i < argc; i++) {
        const char *arg = argv[i];
        const char *value = nullptr;
        if (std::strcmp(arg, "--help") == 0 ||
            std::strcmp(arg, "-h") == 0) {
            std::printf(
                "usage: %s [--jobs N] [--quiet] [--report PATH] "
                "[--trace PATH]\n\n"
                "  --jobs N, -j N  run N study cells in parallel "
                "(default: ZCOMP_JOBS\n"
                "                  or the hardware thread count; "
                "1 = sequential)\n"
                "  --quiet, -q     suppress informational messages "
                "(tables still print)\n"
                "  --report PATH   write a structured JSON run "
                "report (schema\n"
                "                  zcomp-run-report-v1; see "
                "EXPERIMENTS.md)\n"
                "  --trace PATH    write a Chrome/Perfetto trace of "
                "the run\n"
                "                  (open at ui.perfetto.dev)\n",
                argv[0]);
            std::exit(0);
        } else if (std::strcmp(arg, "--quiet") == 0 ||
                   std::strcmp(arg, "-q") == 0) {
            setQuiet(true);
        } else if (valueArg(argc, argv, i, "--jobs", "-j", &value)) {
            char *rest = nullptr;
            long jobs = std::strtol(value, &rest, 10);
            fatal_if(*value == '\0' || (rest && *rest != '\0') ||
                         jobs < 1 || jobs > 1024,
                     "bad --jobs value '%s' (want an integer in "
                     "[1, 1024])", value);
            ThreadPool::setGlobalJobs(static_cast<int>(jobs));
        } else if (valueArg(argc, argv, i, "--report", nullptr,
                            &value)) {
            report_path = value;
        } else if (valueArg(argc, argv, i, "--trace", nullptr,
                            &value)) {
            trace_path = value;
        } else {
            fatal("unknown argument '%s' (try --help)", arg);
        }
    }

    // Install the process-wide report/trace sinks before any work
    // runs, and flush them at exit so every bench main gets both
    // without being edited. The atexit handlers are idempotent.
    if (!report_path.empty()) {
        std::vector<std::string> args(argv, argv + argc);
        RunReport::enableGlobal(report_path, title, std::move(args));
        RunReport::global()->setMachine(ArchConfig{});
        std::atexit(RunReport::finishGlobal);
    }
    if (!trace_path.empty()) {
        TraceWriter::enableGlobal(trace_path);
        std::atexit(TraceWriter::finishGlobal);
    }
    printBanner(title);
}

void
printBanner(const std::string &title)
{
    ArchConfig cfg;
    std::printf("=============================================="
                "==============================\n");
    std::printf("%s\n", title.c_str());
    std::printf("machine: %s\n", cfg.summary().c_str());
    std::printf("=============================================="
                "==============================\n");
}

} // namespace zcomp::bench
