#include "bench/bench_common.hh"

#include <cstdio>

#include "common/log.hh"

namespace zcomp::bench {

const std::vector<StudyModel> &
studyModels()
{
    // Batches/images scaled from the paper's 64 (ResNet 128) / 4 so
    // that early-layer feature maps keep their cache-residency
    // regimes on a single host (see EXPERIMENTS.md).
    static const std::vector<StudyModel> models = {
        {ModelId::AlexNet, 16, 2, 0, 1.0},
        {ModelId::GoogLeNet, 4, 1, 0, 1.0},
        {ModelId::InceptionResnetV2, 4, 1, 0, 0.5},
        {ModelId::Resnet32, 64, 4, 0, 1.0},
        {ModelId::Vgg16, 3, 1, 0, 1.0},
    };
    return models;
}

PreparedNet
prepareNet(const StudyModel &m, bool training, uint64_t seed)
{
    PreparedNet p;
    ArchConfig cfg;
    p.ctx = std::make_unique<ExecContext>(cfg);

    ModelOptions opt;
    opt.batch = training ? m.trainBatch : m.inferBatch;
    opt.imageSize = m.imageSize;
    opt.widthScale = m.widthScale;
    p.net = buildModel(m.id, p.ctx->vs(), opt);
    p.net->build(training, seed);

    Rng rng(seed + 17);
    p.net->fillSyntheticInput(rng);
    p.net->forward();
    if (training) {
        std::vector<int> labels(
            static_cast<size_t>(opt.batch));
        for (size_t i = 0; i < labels.size(); i++)
            labels[i] = static_cast<int>(rng.below(
                static_cast<uint64_t>(opt.classes)));
        p.net->lossAndBackward(labels);
    }
    return p;
}

std::vector<StudyRow>
runFullStudy(bool training_only, bool inference_only)
{
    std::vector<StudyRow> rows;
    for (const StudyModel &m : studyModels()) {
        for (int mode = 0; mode < 2; mode++) {
            bool training = mode == 0;
            if (training && inference_only)
                continue;
            if (!training && training_only)
                continue;
            inform("preparing %s (%s)...", modelName(m.id),
                   training ? "training" : "inference");
            PreparedNet p = prepareNet(m, training);
            NetworkSim sim(*p.ctx, *p.net);
            StudyRow row;
            row.model = modelName(m.id);
            row.training = training;
            for (int pol = 0; pol < numIoPolicies; pol++) {
                NetworkSimConfig cfg;
                cfg.policy = static_cast<IoPolicy>(pol);
                row.results[pol] = sim.run(cfg);
            }
            rows.push_back(std::move(row));
        }
    }
    return rows;
}

void
printBanner(const std::string &title)
{
    ArchConfig cfg;
    std::printf("=============================================="
                "==============================\n");
    std::printf("%s\n", title.c_str());
    std::printf("machine: %s\n", cfg.summary().c_str());
    std::printf("=============================================="
                "==============================\n");
}

} // namespace zcomp::bench
